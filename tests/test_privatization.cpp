//===- tests/test_privatization.cpp - Privatizer unit tests ---------------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "cfg/Hcg.h"
#include "xform/Privatization.h"

using namespace iaa;
using namespace iaa::mf;
using namespace iaa::xform;
using iaa::test::parseOrDie;

namespace {

struct PrivFixture {
  std::unique_ptr<Program> P;
  std::unique_ptr<analysis::SymbolUses> Uses;
  std::unique_ptr<cfg::Hcg> G;
  std::unique_ptr<Privatizer> Priv;

  explicit PrivFixture(const std::string &Source, bool EnableIAA = true) {
    P = iaa::test::parseOrDie(Source);
    Uses = std::make_unique<analysis::SymbolUses>(*P);
    G = std::make_unique<cfg::Hcg>(*P);
    Priv = std::make_unique<Privatizer>(*G, *Uses, EnableIAA);
  }

  PrivatizationResult analyze(const std::string &Label) {
    DoStmt *L = P->findLoop(Label);
    EXPECT_NE(L, nullptr);
    return Priv->analyze(L);
  }

  bool privatizable(const PrivatizationResult &R, const char *Name) {
    return R.Arrays.count(P->findSymbol(Name)) != 0;
  }
};

TEST(Privatization, AffineFullInitCoversReads) {
  PrivFixture F(R"(program t
    integer i, j, n, m
    real tmp(50), out(100)
    n = 100
    m = 50
    lp: do i = 1, n
      do j = 1, m
        tmp(j) = i * j * 1.0
      end do
      do j = 1, m
        out(i) = out(i) + tmp(j)
      end do
    end do
  end)");
  PrivatizationResult R = F.analyze("lp");
  EXPECT_TRUE(F.privatizable(R, "tmp"));
}

TEST(Privatization, PartialInitExposes) {
  PrivFixture F(R"(program t
    integer i, j, n, m
    real tmp(50), out(100)
    n = 100
    m = 50
    lp: do i = 1, n
      do j = 2, m
        tmp(j) = i * j * 1.0
      end do
      do j = 1, m
        out(i) = out(i) + tmp(j)
      end do
    end do
  end)");
  PrivatizationResult R = F.analyze("lp");
  EXPECT_FALSE(F.privatizable(R, "tmp")) << "tmp(1) is upward exposed";
}

TEST(Privatization, ConditionalWriteExposes) {
  PrivFixture F(R"(program t
    integer i, j, n, m
    real tmp(50), sel(100), out(100)
    n = 100
    m = 50
    lp: do i = 1, n
      do j = 1, m
        if (sel(i) > 0) then
          tmp(j) = 1.0
        end if
      end do
      do j = 1, m
        out(i) = out(i) + tmp(j)
      end do
    end do
  end)");
  PrivatizationResult R = F.analyze("lp");
  EXPECT_FALSE(F.privatizable(R, "tmp"));
}

TEST(Privatization, BothBranchesWritingCover) {
  PrivFixture F(R"(program t
    integer i, j, n, m
    real tmp(50), sel(100), out(100)
    n = 100
    m = 50
    lp: do i = 1, n
      do j = 1, m
        if (sel(i) > 0) then
          tmp(j) = 1.0
        else
          tmp(j) = 2.0
        end if
      end do
      do j = 1, m
        out(i) = out(i) + tmp(j)
      end do
    end do
  end)");
  PrivatizationResult R = F.analyze("lp");
  EXPECT_TRUE(F.privatizable(R, "tmp"));
}

TEST(Privatization, ReadBeforeWriteExposes) {
  PrivFixture F(R"(program t
    integer i, j, n, m
    real tmp(50), out(100)
    n = 100
    m = 50
    lp: do i = 1, n
      do j = 1, m
        out(i) = out(i) + tmp(j)
      end do
      do j = 1, m
        tmp(j) = i * 1.0
      end do
    end do
  end)");
  PrivatizationResult R = F.analyze("lp");
  EXPECT_FALSE(F.privatizable(R, "tmp"));
}

TEST(Privatization, WriteOnlyTemporaryIsPrivate) {
  PrivFixture F(R"(program t
    integer i, j, n
    real tmp(50)
    n = 100
    lp: do i = 1, n
      do j = 1, 50
        tmp(j) = i * 1.0
      end do
    end do
  end)");
  PrivatizationResult R = F.analyze("lp");
  EXPECT_TRUE(F.privatizable(R, "tmp"));
}

TEST(Privatization, ScalarValueTrackingThroughReset) {
  // The written section [c+1 : p] only exists when the reset value c is
  // known; with an unknown base the CW contribution is dropped.
  PrivFixture F(R"(program t
    integer k, i, n, m, p, base
    real x(500), y(200), dz(50, 500)
    n = 50
    m = 100
    lp: do k = 1, n
      p = 0
      while (p < m)
        p = p + 1
        x(p) = y(mod(p, 100) + 1)
      end while
      do i = 1, p
        dz(k, i) = x(i)
      end do
    end do
  end)");
  PrivatizationResult R = F.analyze("lp");
  EXPECT_TRUE(F.privatizable(R, "x"));
  bool UsedCW = false;
  for (const auto &O : R.Outcomes)
    if (O.Array->name() == "x" && O.Reason == "CW")
      UsedCW = true;
  EXPECT_TRUE(UsedCW);
}

TEST(Privatization, IndirectReadNeedsIAA) {
  const char *Src = R"(program t
    integer i, j, n, p, q
    integer ind(200)
    real work(200), out(100)
    n = 100
    p = 200
    lp: do i = 1, n
      q = 0
      do j = 1, p
        if (mod(j + i, 4) == 0) then
          q = q + 1
          ind(q) = j
        end if
      end do
      do j = 1, p
        work(j) = 0.0
      end do
      do j = 1, q
        out(i) = out(i) + work(ind(j))
      end do
    end do
  end)";
  PrivFixture With(Src, /*EnableIAA=*/true);
  PrivatizationResult R1 = With.analyze("lp");
  EXPECT_TRUE(With.privatizable(R1, "work"));

  PrivFixture Without(Src, /*EnableIAA=*/false);
  PrivatizationResult R2 = Without.analyze("lp");
  EXPECT_FALSE(Without.privatizable(R2, "work"));
}

TEST(Privatization, ScalarClassification) {
  PrivFixture F(R"(program t
    integer i, n, tmp, carry
    real s
    real x(100)
    n = 100
    lp: do i = 1, n
      tmp = i * 2
      x(i) = tmp * 1.0 + carry
      carry = i
      s = s + x(i)
    end do
  end)");
  PrivatizationResult R = F.analyze("lp");
  EXPECT_TRUE(R.Scalars.Private.count(F.P->findSymbol("tmp")));
  EXPECT_TRUE(R.Scalars.Carried.count(F.P->findSymbol("carry")))
      << "carry is read before it is written in the iteration";
  EXPECT_TRUE(R.Scalars.Reductions.count(F.P->findSymbol("s")));
}

TEST(Privatization, ReductionVarUsedElsewhereNotReduction) {
  PrivFixture F(R"(program t
    integer i, n
    real s
    real x(100)
    n = 100
    lp: do i = 1, n
      s = s + x(i)
      x(i) = s
    end do
  end)");
  PrivatizationResult R = F.analyze("lp");
  EXPECT_FALSE(R.Scalars.Reductions.count(F.P->findSymbol("s")));
  EXPECT_TRUE(R.Scalars.Carried.count(F.P->findSymbol("s")));
}

TEST(Privatization, ConditionalScalarWriteStaysCarried) {
  PrivFixture F(R"(program t
    integer i, n, flag
    real x(100), y(100)
    n = 100
    lp: do i = 1, n
      if (y(i) > 0) then
        flag = i
      end if
      x(i) = flag * 1.0
    end do
  end)");
  PrivatizationResult R = F.analyze("lp");
  EXPECT_TRUE(R.Scalars.Carried.count(F.P->findSymbol("flag")));
}

TEST(Privatization, InnerLoopIndexIsPrivate) {
  PrivFixture F(R"(program t
    integer i, j, n
    real x(100)
    n = 100
    lp: do i = 1, n
      do j = 1, 10
        x(i) = x(i) + j
      end do
    end do
  end)");
  PrivatizationResult R = F.analyze("lp");
  EXPECT_TRUE(R.Scalars.Private.count(F.P->findSymbol("j")));
  EXPECT_TRUE(R.Scalars.Carried.empty());
}

TEST(Privatization, ZeroTripInnerLoopDemotesCoverage) {
  // The covering write loop has data-dependent bounds: it may not execute,
  // so reads after it are exposed.
  PrivFixture F(R"(program t
    integer i, j, n, m
    integer cnt(100)
    real tmp(50), out(100)
    n = 100
    lp: do i = 1, n
      do j = 1, cnt(i)
        tmp(j) = 1.0
      end do
      do j = 1, 50
        out(i) = out(i) + tmp(j)
      end do
    end do
  end)");
  PrivatizationResult R = F.analyze("lp");
  EXPECT_FALSE(F.privatizable(R, "tmp"));
}

TEST(Privatization, LiveOutFlagComputed) {
  PrivFixture F(R"(program t
    integer i, j, n
    real tmp(50), final(50)
    n = 100
    lp: do i = 1, n
      do j = 1, 50
        tmp(j) = i * 1.0
      end do
    end do
    do j = 1, 50
      final(j) = tmp(j)
    end do
  end)");
  PrivatizationResult R = F.analyze("lp");
  bool Found = false;
  for (const auto &O : R.Outcomes)
    if (O.Array->name() == "tmp") {
      Found = true;
      EXPECT_TRUE(O.LiveOut);
    }
  EXPECT_TRUE(Found);
}

} // namespace
