//===- tests/test_racecheck.cpp - Shadow-memory race checker tests --------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// The differential harness of the plan auditor: every certified plan must
/// run race-free under the interpreter's shadow-memory checker, and every
/// seeded plan mutation the auditor flags statically must also surface as a
/// concrete dynamic race. A planner bug that slipped past both layers would
/// need to fool two independent oracles — a symbolic one and a concrete one.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "benchprogs/Benchmarks.h"
#include "interp/Interpreter.h"
#include "verify/PlanAudit.h"
#include "verify/PlanMutator.h"
#include "xform/Parallelizer.h"

#include <cmath>

using namespace iaa;
using namespace iaa::interp;
using namespace iaa::mf;
using namespace iaa::verify;
using iaa::test::parseOrDie;

namespace {

struct Harness {
  std::unique_ptr<Program> P;
  xform::PipelineResult Plan;

  explicit Harness(const std::string &Source) : P(parseOrDie(Source)) {
    Plan = xform::parallelize(*P, xform::PipelineMode::Full);
  }

  /// Executes under the shadow-memory checker and returns the stats.
  ExecStats check() {
    Interpreter I(*P);
    ExecOptions Opts;
    Opts.Plans = &Plan;
    Opts.RaceCheck = true;
    ExecStats Stats;
    I.run(Opts, &Stats);
    return Stats;
  }
};

//===----------------------------------------------------------------------===//
// Certified plans are dynamically race-free
//===----------------------------------------------------------------------===//

class BenchmarkRaceCheck : public ::testing::TestWithParam<int> {};

TEST_P(BenchmarkRaceCheck, CertifiedPlanHasNoRaces) {
  auto All = benchprogs::allBenchmarks(/*Scale=*/0.05);
  const benchprogs::BenchmarkProgram &B = All[GetParam()];
  Harness R(B.Source);

  // The static certificate first: the auditor accepts the plan.
  PlanAuditor Auditor(*R.P);
  ASSERT_TRUE(Auditor.audit(R.Plan).allCertified());

  // Then the dynamic cross-check: zero conflicts observed.
  ExecStats Stats = R.check();
  EXPECT_EQ(Stats.RacesFound, 0u) << B.Name << ": "
                                  << (Stats.Races.empty()
                                          ? std::string()
                                          : Stats.Races.front().str());
}

std::string raceCaseName(const ::testing::TestParamInfo<int> &Info) {
  static const char *Names[] = {"TRFD", "DYFESM", "BDNA", "P3M", "TREE"};
  return Names[Info.param];
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, BenchmarkRaceCheck,
                         ::testing::Values(0, 1, 2, 3, 4), raceCaseName);

TEST(RaceCheck, FigureKernelsAreRaceFree) {
  for (const std::string &Source :
       {benchprogs::fig1aSource(), benchprogs::fig1bSource(),
        benchprogs::fig3Source(), benchprogs::fig14Source()}) {
    ExecStats Stats = Harness(Source).check();
    EXPECT_EQ(Stats.RacesFound, 0u)
        << (Stats.Races.empty() ? std::string() : Stats.Races.front().str());
  }
}

TEST(RaceCheck, ShadowRunMatchesSerialResult) {
  // The monitored execution is a serial execution with bookkeeping: the
  // final memory must be bit-identical to a plain serial run.
  auto B = benchprogs::p3m(0.05);
  Harness R(B.Source);
  Interpreter I(*R.P);
  Memory Serial = I.run(ExecOptions{});

  ExecOptions Opts;
  Opts.Plans = &R.Plan;
  Opts.RaceCheck = true;
  Memory Shadowed = I.run(Opts);
  EXPECT_EQ(Serial.checksum(), Shadowed.checksum());
}

//===----------------------------------------------------------------------===//
// Seeded mutations: each flagged statically AND confirmed dynamically
//===----------------------------------------------------------------------===//

/// Applies \p M, asserts the auditor refuses to certify the mutated plan,
/// and returns the dynamic race count observed when executing it.
unsigned auditThenRun(Harness &R, const Mutation &M) {
  EXPECT_TRUE(applyMutation(R.Plan, *R.P, M))
      << mutationKindName(M.Kind) << " did not apply";
  PlanAuditor Auditor(*R.P);
  AuditResult A = Auditor.audit(R.Plan);
  const LoopAudit *LA = A.auditFor(M.Loop);
  EXPECT_NE(LA, nullptr);
  if (LA) {
    EXPECT_NE(LA->Verdict, AuditVerdict::Certified)
        << "auditor missed the seeded bug:\n"
        << LA->str();
  }
  return R.check().RacesFound;
}

TEST(RaceCheck, DropPrivatizationRaces) {
  auto B = benchprogs::bdna(0.05);
  Harness R(B.Source);
  const DoStmt *L = R.P->findLoop("do240");
  ASSERT_NE(L, nullptr);
  const xform::LoopPlan *Plan = R.Plan.planFor(L);
  ASSERT_NE(Plan, nullptr);
  ASSERT_FALSE(Plan->PrivateArrays.empty());
  std::string Dropped = (*Plan->PrivateArrays.begin())->name();

  unsigned Races = auditThenRun(
      R, {MutationKind::DropPrivatization, "do240", Dropped});
  EXPECT_GT(Races, 0u) << "unprivatized " << Dropped
                       << " raced in no iteration pair";
}

TEST(RaceCheck, DropReductionRaces) {
  Harness R(R"(program t
    integer i, n
    real s, x(100)
    n = 100
    s = 0.0
    red: do i = 1, n
      s = s + x(i)
    end do
  end)");
  unsigned Races = auditThenRun(R, {MutationKind::DropReduction, "red", "s"});
  EXPECT_GT(Races, 0u);

  // The shared-scalar update is a flow dependence between every pair of
  // adjacent iterations.
  ExecStats Stats = R.check();
  ASSERT_FALSE(Stats.Races.empty());
  bool SawFlow = false;
  for (const RaceRecord &Rec : Stats.Races)
    if (Rec.Var == "s" && Rec.Kind == RaceKind::ReadAfterWrite)
      SawFlow = true;
  EXPECT_TRUE(SawFlow) << Stats.Races.front().str();
}

TEST(RaceCheck, SkipLastValueLosesTheLiveOutElement) {
  // n is small enough that every conflict record fits under the storage
  // cap: the post-loop LastValueLoss scan must still find room.
  Harness R(R"(program t
    integer i, j, n, m
    real w(9), y(100), z(100)
    n = 24
    m = 8
    lv: do i = 1, n
      do j = 1, m
        w(j) = y(i) * 2.0
      end do
      if (i <= 4) then
        w(m + 1) = y(i)
      end if
      z(i) = w(1) + w(m + 1)
    end do
    y(1) = w(m + 1)
  end)");
  const xform::LoopReport *Rep = R.Plan.reportFor("lv");
  ASSERT_NE(Rep, nullptr);
  ASSERT_FALSE(Rep->Parallel) << "planner should refuse: " << Rep->WhyNot;

  unsigned Races = auditThenRun(R, {MutationKind::SkipLastValue, "lv", "w"});
  EXPECT_GT(Races, 0u);

  // w(m+1) is written only by iterations 1..4: its final write is not in
  // the final iteration (the writeback loses it), and later iterations
  // read it before any write of their own.
  ExecStats Stats = R.check();
  bool SawLoss = false, SawExposed = false;
  for (const RaceRecord &Rec : Stats.Races) {
    if (Rec.Var != "w")
      continue;
    SawLoss |= Rec.Kind == RaceKind::LastValueLoss;
    SawExposed |= Rec.Kind == RaceKind::ExposedPrivateRead;
  }
  EXPECT_TRUE(SawLoss);
  EXPECT_TRUE(SawExposed);
}

TEST(RaceCheck, DroppedInjectivityPremiseRaces) {
  // ind() maps pairs of iterations to the same element; a plan that
  // trusted a bogus injectivity fact produces write-write conflicts.
  Harness R(R"(program t
    integer i, n
    integer ind(100)
    real x(200)
    n = 100
    do i = 1, n
      ind(i) = i - (i / 2) * 2 + 1
    end do
    gather: do i = 1, n
      x(ind(i)) = x(ind(i)) + 1.0
    end do
  end)");
  unsigned Races = auditThenRun(R, {MutationKind::ForceParallel, "gather", ""});
  EXPECT_GT(Races, 0u);

  ExecStats Stats = R.check();
  bool SawWW = false;
  for (const RaceRecord &Rec : Stats.Races)
    SawWW |= Rec.Var == "x" && Rec.Kind == RaceKind::WriteWrite;
  EXPECT_TRUE(SawWW);
}

TEST(RaceCheck, WidenedSectionRacesOnTheBoundaryElement) {
  // Adjacent segments share exactly their boundary element; the race is
  // real but sparse — one conflicting element per iteration pair.
  Harness R(R"(program t
    integer i, n
    integer ptr(101), len(100)
    real x(1000)
    integer j, lo, hi
    n = 100
    do i = 1, n
      len(i) = 3
    end do
    ptr(1) = 1
    do i = 1, n
      ptr(i + 1) = ptr(i) + len(i)
    end do
    widened: do i = 1, n
      lo = ptr(i)
      hi = ptr(i) + len(i)
      do j = lo, hi
        x(j) = x(j) + 1.0
      end do
    end do
  end)");
  unsigned Races = auditThenRun(R, {MutationKind::ForceParallel,
                                    "widened", ""});
  EXPECT_GT(Races, 0u);
}

//===----------------------------------------------------------------------===//
// Record plumbing
//===----------------------------------------------------------------------===//

TEST(RaceCheck, RecordsNameTheLoopAndKind) {
  Harness R(R"(program t
    integer i, n
    real a(101)
    n = 100
    carried: do i = 1, n
      a(i + 1) = a(i) + 1.0
    end do
  end)");
  ASSERT_TRUE(applyMutation(R.Plan, *R.P,
                            {MutationKind::ForceParallel, "carried", ""}));
  ExecStats Stats = R.check();
  ASSERT_GT(Stats.RacesFound, 0u);
  ASSERT_FALSE(Stats.Races.empty());
  const RaceRecord &Rec = Stats.Races.front();
  EXPECT_EQ(Rec.Loop, "carried");
  EXPECT_EQ(Rec.Var, "a");
  EXPECT_LT(Rec.IterA, Rec.IterB);
  EXPECT_NE(std::string(raceKindName(Rec.Kind)), "");
  EXPECT_NE(Rec.str().find("carried"), std::string::npos);
  // The cap bounds stored records, never the count.
  EXPECT_LE(Stats.Races.size(), 64u);
  EXPECT_GE(Stats.RacesFound, static_cast<unsigned>(Stats.Races.size()));
}

} // namespace
