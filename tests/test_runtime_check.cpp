//===- tests/test_runtime_check.cpp - Inspector/executor tests ------------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// The inspector/executor runtime-check subsystem end to end: statically
/// serial gather/scatter and sparse-segment loops must come out of the
/// pipeline as runtime-conditional plans, run parallel exactly when the
/// O(n) inspection of their index arrays passes, fall back to serial when
/// it fails, cache verdicts keyed on index-array versions (and re-inspect
/// after the index array is rewritten), and stay bit-identical to serial
/// execution throughout. The auditor certifies conditional plans modulo
/// their recorded checks, and a seeded drop-runtime-check mutation is
/// caught both statically (auditor) and dynamically (race checker).
///
/// Suite names here start with "RuntimeCheck" so the CI ThreadSanitizer
/// job's --gtest_filter picks them up.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "interp/Inspector.h"
#include "interp/Interpreter.h"
#include "verify/PlanAudit.h"
#include "verify/PlanMutator.h"
#include "xform/Parallelizer.h"

#include <set>

using namespace iaa;
using namespace iaa::interp;
using namespace iaa::mf;
using namespace iaa::verify;
using iaa::deptest::RuntimeCheck;
using iaa::deptest::RuntimeCheckKind;
using iaa::test::parseOrDie;

namespace {

const Schedule AllSchedules[] = {Schedule::Static, Schedule::Dynamic,
                                 Schedule::Guided};
const unsigned ThreadCounts[] = {1, 2, 4, 7};

/// Gather/scatter whose index array is a permutation of 1..n at run time
/// (gcd(7, 1000) = 1) but opaque to the static analysis: the scat loop is
/// statically serial and parallelizable only via an injectivity inspection.
const char *PermutationScatter = R"(program t
    integer i, n
    integer ind(1000)
    real x(1000), y(1000)
    n = 1000
    init: do i = 1, n
      ind(i) = mod(i * 7, n) + 1
      x(i) = i * 0.5
      y(i) = mod(i, 9) * 0.25
    end do
    scat: do i = 1, n
      x(ind(i)) = x(ind(i)) + y(i) * 0.5
    end do
  end)";

/// Same shape, but every index value occurs twice (range 1..500 over 1000
/// iterations): the inspection must fail and the loop must run serially.
const char *DuplicateScatter = R"(program t
    integer i, n
    integer ind(1000)
    real x(1000), y(1000)
    n = 1000
    init: do i = 1, n
      ind(i) = mod(i * 7, 500) + 1
      x(i) = i * 0.5
      y(i) = mod(i, 9) * 0.25
    end do
    scat: do i = 1, n
      x(ind(i)) = x(ind(i)) + y(i) * 0.5
    end do
  end)";

/// CCS-style segment kernel: colcnt is written through a permutation (the
/// identity at run time, but the recurrence solver cannot prove that
/// statically), so colptr's building recurrence stays unbounded and the
/// scale loop needs the monotone + offset-length inspection to run
/// parallel.
const char *CcsScale = R"(program t
    integer i, j, n
    integer colptr(101), colcnt(100), perm(100)
    real vals(800)
    n = 100
    colptr(1) = 1
    mkperm: do i = 1, n
      perm(i) = i
    end do
    build: do i = 1, n
      colcnt(perm(i)) = mod(i * 5, 7) + 1
      colptr(i + 1) = colptr(i) + colcnt(i)
    end do
    fill: do i = 1, 800
      vals(i) = mod(i, 13) * 0.125
    end do
    scale: do i = 1, n
      do j = 1, colcnt(i)
        vals(colptr(i) + j - 1) = vals(colptr(i) + j - 1) * 1.5 + 0.25
      end do
    end do
  end)";

struct Harness {
  std::unique_ptr<Program> P;
  xform::PipelineResult Plan;

  explicit Harness(const std::string &Source) : P(parseOrDie(Source)) {
    Plan = xform::parallelize(*P, xform::PipelineMode::Full);
  }

  /// Serial-reference checksum, excluding dead privatized arrays.
  double serialChecksum() {
    Interpreter I(*P);
    Memory Serial = I.run(ExecOptions{});
    return Serial.checksumExcluding(deadPrivateIds(Plan));
  }

  /// Runs with runtime checks enabled and returns the stats.
  ExecStats runChecked(Memory *OutMem = nullptr, unsigned Threads = 4,
                       Schedule S = Schedule::Static,
                       sched::LocalityMode L = sched::LocalityMode::Off) {
    Interpreter I(*P);
    ExecOptions Opts;
    Opts.Plans = &Plan;
    Opts.Threads = Threads;
    Opts.Sched = S;
    Opts.MinParallelWork = 0;
    Opts.RuntimeChecks = true;
    Opts.Locality = L;
    ExecStats Stats;
    Memory M = I.run(Opts, &Stats);
    if (OutMem)
      *OutMem = std::move(M);
    return Stats;
  }
};

//===----------------------------------------------------------------------===//
// Plan emission
//===----------------------------------------------------------------------===//

TEST(RuntimeCheckPlan, GatherScatterEmitsConditionalPlan) {
  Harness R(PermutationScatter);
  const xform::LoopReport *Rep = R.Plan.reportFor("scat");
  ASSERT_NE(Rep, nullptr);
  EXPECT_FALSE(Rep->Parallel) << "mod-built index must stay statically serial";
  EXPECT_TRUE(Rep->RuntimeConditional) << Rep->WhyNot;

  const DoStmt *L = R.P->findLoop("scat");
  ASSERT_NE(L, nullptr);
  EXPECT_EQ(R.Plan.planFor(L), nullptr);
  const xform::LoopPlan *Cond = R.Plan.conditionalPlanFor(L);
  ASSERT_NE(Cond, nullptr);
  EXPECT_FALSE(Cond->Parallel);

  bool SawInjective = false, SawBounds = false;
  for (const RuntimeCheck &C : Cond->RuntimeChecks) {
    if (C.Kind == RuntimeCheckKind::InjectiveOnRange) {
      SawInjective = true;
      ASSERT_NE(C.Index, nullptr);
      EXPECT_EQ(C.Index->name(), "ind");
    }
    if (C.Kind == RuntimeCheckKind::BoundsWithin)
      SawBounds = true;
  }
  EXPECT_TRUE(SawInjective);
  EXPECT_TRUE(SawBounds);
}

TEST(RuntimeCheckPlan, CcsEmitsMonotoneAndOffsetLength) {
  Harness R(CcsScale);
  const xform::LoopReport *Rep = R.Plan.reportFor("scale");
  ASSERT_NE(Rep, nullptr);
  EXPECT_FALSE(Rep->Parallel);
  EXPECT_TRUE(Rep->RuntimeConditional) << Rep->WhyNot;

  const DoStmt *L = R.P->findLoop("scale");
  ASSERT_NE(L, nullptr);
  const xform::LoopPlan *Cond = R.Plan.conditionalPlanFor(L);
  ASSERT_NE(Cond, nullptr);

  bool SawMono = false, SawDisjoint = false;
  for (const RuntimeCheck &C : Cond->RuntimeChecks) {
    if (C.Kind == RuntimeCheckKind::MonotonicNonDecreasing) {
      SawMono = true;
      ASSERT_NE(C.Index, nullptr);
      EXPECT_EQ(C.Index->name(), "colptr");
    }
    if (C.Kind == RuntimeCheckKind::OffsetLengthDisjoint) {
      SawDisjoint = true;
      ASSERT_NE(C.Length, nullptr);
      EXPECT_EQ(C.Length->name(), "colcnt");
    }
  }
  EXPECT_TRUE(SawMono);
  EXPECT_TRUE(SawDisjoint);
}

//===----------------------------------------------------------------------===//
// Execution: parallel on pass, serial on fail, bit-identical throughout
//===----------------------------------------------------------------------===//

TEST(RuntimeCheckExec, PermutationRunsParallelBitIdentical) {
  Harness R(PermutationScatter);
  double Want = R.serialChecksum();
  std::set<unsigned> Dead = deadPrivateIds(R.Plan);

  for (Schedule S : AllSchedules)
    for (unsigned T : ThreadCounts) {
      Memory M(*R.P);
      ExecStats Stats = R.runChecked(&M, T, S);
      EXPECT_EQ(M.checksumExcluding(Dead), Want)
          << "schedule " << scheduleName(S) << ", T=" << T;
      if (T > 1) {
        EXPECT_EQ(Stats.RuntimeCheckFails, 0u)
            << (Stats.RuntimeDecisions.empty()
                    ? std::string()
                    : Stats.RuntimeDecisions.front().str());
        EXPECT_GE(Stats.InspectionsRun, 1u);
        EXPECT_GE(Stats.ParallelLoopRuns, 1u)
            << "passing inspection must license parallel dispatch";
      }
    }
}

TEST(RuntimeCheckExec, CcsRunsParallelBitIdentical) {
  Harness R(CcsScale);
  double Want = R.serialChecksum();
  std::set<unsigned> Dead = deadPrivateIds(R.Plan);

  for (Schedule S : AllSchedules)
    for (unsigned T : ThreadCounts) {
      Memory M(*R.P);
      ExecStats Stats = R.runChecked(&M, T, S);
      EXPECT_EQ(M.checksumExcluding(Dead), Want)
          << "schedule " << scheduleName(S) << ", T=" << T;
      if (T > 1) {
        EXPECT_EQ(Stats.RuntimeCheckFails, 0u);
      }
    }
}

TEST(RuntimeCheckExec, DuplicateIndexFallsBackSerial) {
  Harness R(DuplicateScatter);
  double Want = R.serialChecksum();

  Memory M(*R.P);
  ExecStats Stats = R.runChecked(&M);
  EXPECT_EQ(M.checksumExcluding(deadPrivateIds(R.Plan)), Want)
      << "serial fallback must reproduce the serial result exactly";
  EXPECT_GE(Stats.RuntimeCheckFails, 1u);

  bool SawScatFail = false;
  for (const ExecStats::RuntimeDecision &D : Stats.RuntimeDecisions) {
    if (D.Loop == "scat" && !D.Pass) {
      SawScatFail = true;
      EXPECT_FALSE(D.Detail.empty());
    }
  }
  EXPECT_TRUE(SawScatFail);
}

TEST(RuntimeCheckExec, DisabledFlagNeverInspects) {
  Harness R(PermutationScatter);
  Interpreter I(*R.P);
  ExecOptions Opts;
  Opts.Plans = &R.Plan;
  Opts.Threads = 4;
  Opts.MinParallelWork = 0;
  ExecStats Stats;
  Memory M = I.run(Opts, &Stats);
  EXPECT_EQ(Stats.InspectionsRun, 0u);
  EXPECT_EQ(Stats.InspectionsCached, 0u);
  EXPECT_TRUE(Stats.RuntimeDecisions.empty());
  EXPECT_EQ(M.checksumExcluding(deadPrivateIds(R.Plan)), R.serialChecksum());
}

//===----------------------------------------------------------------------===//
// Verdict cache and invalidation
//===----------------------------------------------------------------------===//

TEST(RuntimeCheckCache, RepeatedInvocationUsesCachedVerdict) {
  // The scat loop runs three times with ind untouched in between: one
  // fresh inspection, two cache hits.
  Harness R(R"(program t
    integer i, r, n
    integer ind(1000)
    real x(1000), y(1000)
    n = 1000
    init: do i = 1, n
      ind(i) = mod(i * 7, n) + 1
      x(i) = i * 0.5
      y(i) = mod(i, 9) * 0.25
    end do
    rep: do r = 1, 3
      scat: do i = 1, n
        x(ind(i)) = x(ind(i)) + y(i) * 0.5
      end do
    end do
  end)");
  double Want = R.serialChecksum();

  Memory M(*R.P);
  ExecStats Stats = R.runChecked(&M);
  EXPECT_EQ(M.checksumExcluding(deadPrivateIds(R.Plan)), Want);
  EXPECT_EQ(Stats.InspectionsRun, 1u);
  EXPECT_GE(Stats.InspectionsCached, 1u);
  EXPECT_EQ(Stats.InspectionsCached, 2u);
  EXPECT_EQ(Stats.RuntimeCheckFails, 0u);
}

TEST(RuntimeCheckCache, WriteToIndexArrayInvalidates) {
  // Between the two invocations ind(5) is overwritten with ind(6): the
  // write bumps ind's version, so the second invocation must re-inspect,
  // find the duplicate, and fall back to serial — with the final memory
  // still bit-identical to a full serial run.
  Harness R(R"(program t
    integer i, r, n
    integer ind(1000)
    real x(1000), y(1000)
    n = 1000
    init: do i = 1, n
      ind(i) = mod(i * 7, n) + 1
      x(i) = i * 0.5
      y(i) = mod(i, 9) * 0.25
    end do
    rep: do r = 1, 2
      scat: do i = 1, n
        x(ind(i)) = x(ind(i)) + y(i) * 0.5
      end do
      if (r == 1) then
        ind(5) = ind(6)
      end if
    end do
  end)");
  double Want = R.serialChecksum();

  Memory M(*R.P);
  ExecStats Stats = R.runChecked(&M);
  EXPECT_EQ(M.checksumExcluding(deadPrivateIds(R.Plan)), Want);
  EXPECT_EQ(Stats.InspectionsRun, 2u)
      << "rewriting the index array must force re-inspection";
  EXPECT_EQ(Stats.InspectionsCached, 0u);
  EXPECT_EQ(Stats.RuntimeCheckFails, 1u)
      << "the duplicated index must flip the verdict to serial";
}

TEST(RuntimeCheckCache, WriteToSegmentLengthArrayInvalidates) {
  // Regression: the verdict (and reorder-permutation) cache key must cover
  // *every* array the checks read — Length arrays included — not just the
  // primary index array. Here the CRS offset array colptr never changes,
  // but the segment-length array seglen is widened between the two
  // invocations so that adjacent segments overlap. A cache keyed on colptr
  // alone would serve the stale Pass verdict (and, under --locality=
  // reorder, a stale permutation) and race; the second invocation must
  // instead re-inspect, fail, and fall back to serial.
  Harness R(R"(program t
    integer i, j, k, n
    integer colptr(101), colcnt(100), seglen(100)
    real vals(900)
    n = 100
    colptr(1) = 1
    build: do i = 1, n
      colcnt(i) = mod(i * 5, 7) + 1
      colptr(i + 1) = colptr(i) + colcnt(i)
      seglen(i) = colcnt(i)
    end do
    fill: do i = 1, 900
      vals(i) = mod(i, 13) * 0.125
    end do
    outer: do k = 1, 2
      scale: do i = 1, n
        do j = 1, seglen(i)
          vals(colptr(i) + j - 1) = vals(colptr(i) + j - 1) * 1.5 + 0.25
        end do
      end do
      if (k == 1) then
        widen: do i = 1, n
          seglen(i) = colcnt(i) + 1
        end do
      end if
    end do
  end)");
  double Want = R.serialChecksum();

  Memory M(*R.P);
  ExecStats Stats =
      R.runChecked(&M, 4, Schedule::Static, sched::LocalityMode::Reorder);
  EXPECT_EQ(M.checksumExcluding(deadPrivateIds(R.Plan)), Want);
  EXPECT_EQ(Stats.InspectionsRun, 2u)
      << "widening seglen must force re-inspection even though the "
         "checked offset array colptr is unchanged";
  EXPECT_EQ(Stats.InspectionsCached, 0u)
      << "a verdict cached on colptr alone would poison the second "
         "invocation";
  EXPECT_EQ(Stats.RuntimeCheckFails, 1u)
      << "the widened segments overlap, so the re-inspection must fail";
  EXPECT_EQ(Stats.LocalityReordersCached, 0u)
      << "no stale permutation may be served after a source array changed";
}

TEST(RuntimeCheckCache, UntouchedSegmentLengthArrayStillHits) {
  // Control for the poisoning regression above: with seglen untouched
  // between invocations, the second one must reuse both the verdict and
  // the reorder permutation (only vals — not a check source — changed).
  Harness R(R"(program t
    integer i, j, k, n
    integer colptr(101), colcnt(100), seglen(100)
    real vals(900)
    n = 100
    colptr(1) = 1
    build: do i = 1, n
      colcnt(i) = mod(i * 5, 7) + 1
      colptr(i + 1) = colptr(i) + colcnt(i)
      seglen(i) = colcnt(i)
    end do
    fill: do i = 1, 900
      vals(i) = mod(i, 13) * 0.125
    end do
    outer: do k = 1, 2
      scale: do i = 1, n
        do j = 1, seglen(i)
          vals(colptr(i) + j - 1) = vals(colptr(i) + j - 1) * 1.5 + 0.25
        end do
      end do
    end do
  end)");
  double Want = R.serialChecksum();

  Memory M(*R.P);
  ExecStats Stats =
      R.runChecked(&M, 4, Schedule::Static, sched::LocalityMode::Reorder);
  EXPECT_EQ(M.checksumExcluding(deadPrivateIds(R.Plan)), Want);
  EXPECT_EQ(Stats.InspectionsRun, 1u);
  EXPECT_EQ(Stats.InspectionsCached, 1u);
  EXPECT_EQ(Stats.RuntimeCheckFails, 0u);
  EXPECT_EQ(Stats.LocalityReorders, 1u);
  EXPECT_EQ(Stats.LocalityReordersCached, 1u);
}

//===----------------------------------------------------------------------===//
// Inspector unit tests
//===----------------------------------------------------------------------===//

/// A bare program whose arrays the tests fill by hand.
struct InspectorFixture {
  std::unique_ptr<Program> P;
  Memory Mem;
  const Symbol *Ind, *Len, *X;

  InspectorFixture()
      : P(parseOrDie(R"(program t
          integer ind(16), len(16)
          real x(8)
        end)")),
        Mem(*P), Ind(P->findSymbol("ind")), Len(P->findSymbol("len")),
        X(P->findSymbol("x")) {}

  void setInd(std::vector<int64_t> V) {
    Buffer &B = Mem.buffer(Ind);
    for (size_t I = 0; I < V.size(); ++I)
      B.I[I] = V[I];
  }
  void setLen(std::vector<int64_t> V) {
    Buffer &B = Mem.buffer(Len);
    for (size_t I = 0; I < V.size(); ++I)
      B.I[I] = V[I];
  }
};

TEST(RuntimeCheckInspector, InjectiveDetectsDuplicates) {
  InspectorFixture F;
  RuntimeCheck C;
  C.Kind = RuntimeCheckKind::InjectiveOnRange;
  C.Index = F.Ind;

  F.setInd({4, 2, 7, 1, 9, 3});
  EXPECT_TRUE(inspectRuntimeCheck(C, F.Mem, 1, 6, nullptr, 1).Pass);

  F.setInd({4, 2, 7, 1, 2, 3});
  InspectionOutcome O = inspectRuntimeCheck(C, F.Mem, 1, 6, nullptr, 1);
  EXPECT_FALSE(O.Pass);
  EXPECT_NE(O.Detail.find("ind"), std::string::npos) << O.Detail;
}

TEST(RuntimeCheckInspector, InjectiveSparseValuesUseSortFallback) {
  // A value spread far beyond 8*N forces the sort + adjacent-pair path.
  InspectorFixture F;
  RuntimeCheck C;
  C.Kind = RuntimeCheckKind::InjectiveOnRange;
  C.Index = F.Ind;

  F.setInd({1, 1000000000, 2000000000, 5});
  EXPECT_TRUE(inspectRuntimeCheck(C, F.Mem, 1, 4, nullptr, 1).Pass);
  F.setInd({1, 1000000000, 2000000000, 1000000000});
  EXPECT_FALSE(inspectRuntimeCheck(C, F.Mem, 1, 4, nullptr, 1).Pass);
}

TEST(RuntimeCheckInspector, BoundsAgainstConstantsAndArrayExtent) {
  InspectorFixture F;
  RuntimeCheck C;
  C.Kind = RuntimeCheckKind::BoundsWithin;
  C.Index = F.Ind;
  C.LoBound = 1;
  C.UpBound = 8;

  F.setInd({1, 8, 3});
  EXPECT_TRUE(inspectRuntimeCheck(C, F.Mem, 1, 3, nullptr, 1).Pass);
  F.setInd({1, 9, 3});
  EXPECT_FALSE(inspectRuntimeCheck(C, F.Mem, 1, 3, nullptr, 1).Pass);

  // With BoundedArray the upper bound is x's runtime extent (8), not
  // UpBound.
  C.UpBound = 0;
  C.BoundedArray = F.X;
  F.setInd({1, 8, 3});
  EXPECT_TRUE(inspectRuntimeCheck(C, F.Mem, 1, 3, nullptr, 1).Pass);
  F.setInd({0, 8, 3});
  EXPECT_FALSE(inspectRuntimeCheck(C, F.Mem, 1, 3, nullptr, 1).Pass);
}

TEST(RuntimeCheckInspector, MonotoneScan) {
  InspectorFixture F;
  RuntimeCheck C;
  C.Kind = RuntimeCheckKind::MonotonicNonDecreasing;
  C.Index = F.Ind;

  F.setInd({1, 3, 3, 7, 12});
  EXPECT_TRUE(inspectRuntimeCheck(C, F.Mem, 1, 5, nullptr, 1).Pass);
  F.setInd({1, 3, 2, 7, 12});
  InspectionOutcome O = inspectRuntimeCheck(C, F.Mem, 1, 5, nullptr, 1);
  EXPECT_FALSE(O.Pass);
  EXPECT_NE(O.Detail.find("decreases"), std::string::npos) << O.Detail;
}

TEST(RuntimeCheckInspector, OffsetLengthSegments) {
  InspectorFixture F;
  RuntimeCheck C;
  C.Kind = RuntimeCheckKind::OffsetLengthDisjoint;
  C.Index = F.Ind;
  C.Length = F.Len;
  C.AccessLo = 0;
  C.HasHiLen = true;
  C.AccessHiLen = -1; // Segment i spans [ind(i), ind(i) + len(i) - 1].

  // Back-to-back segments: 1..3, 4..5, 6..9.
  F.setInd({1, 4, 6});
  F.setLen({3, 2, 4});
  EXPECT_TRUE(inspectRuntimeCheck(C, F.Mem, 1, 3, nullptr, 1).Pass);

  // Second segment reaches into the third.
  F.setLen({3, 3, 4});
  InspectionOutcome O = inspectRuntimeCheck(C, F.Mem, 1, 3, nullptr, 1);
  EXPECT_FALSE(O.Pass);
  EXPECT_NE(O.Detail.find("overlap"), std::string::npos) << O.Detail;

  // Negative length.
  F.setLen({3, -1, 4});
  EXPECT_FALSE(inspectRuntimeCheck(C, F.Mem, 1, 3, nullptr, 1).Pass);

  // Non-monotone offsets.
  F.setInd({4, 1, 6});
  F.setLen({1, 1, 1});
  EXPECT_FALSE(inspectRuntimeCheck(C, F.Mem, 1, 3, nullptr, 1).Pass);
}

TEST(RuntimeCheckInspector, WindowEdgeCases) {
  InspectorFixture F;
  RuntimeCheck C;
  C.Kind = RuntimeCheckKind::InjectiveOnRange;
  C.Index = F.Ind;

  // Zero-trip window passes vacuously.
  EXPECT_TRUE(inspectRuntimeCheck(C, F.Mem, 5, 4, nullptr, 1).Pass);

  // Window beyond the array extent fails (ind has 16 elements).
  InspectionOutcome O = inspectRuntimeCheck(C, F.Mem, 1, 17, nullptr, 1);
  EXPECT_FALSE(O.Pass);
  EXPECT_NE(O.Detail.find("extent"), std::string::npos) << O.Detail;

  // Window adjusts shift the inspected positions.
  C.LoAdjust = 1;
  C.UpAdjust = 1;
  F.setInd({7, 1, 2, 3, 7});
  // Positions 2..5 are {1, 2, 3, 7}: injective even though position 1
  // repeats the value 7.
  EXPECT_TRUE(inspectRuntimeCheck(C, F.Mem, 1, 4, nullptr, 1).Pass);
}

TEST(RuntimeCheckInspector, ParallelScanMatchesSerialVerdict) {
  // A window big enough to cross MinParallelWindow, scanned serially and
  // on a pool: identical verdicts, and the parallel failure report names
  // the smallest failing position (deterministic counterexample).
  auto P = parseOrDie(R"(program t
      integer ind(20000)
    end)");
  Memory Mem(*P);
  const Symbol *Ind = P->findSymbol("ind");
  ASSERT_NE(Ind, nullptr);
  Buffer &B = Mem.buffer(Ind);
  const int64_t N = 20000;
  for (int64_t I = 0; I < N; ++I)
    B.I[I] = (I * 7919) % N + 1; // gcd(7919, 20000) = 1: a permutation.

  RuntimeCheck C;
  C.Kind = RuntimeCheckKind::InjectiveOnRange;
  C.Index = Ind;

  WorkerPool Pool(4);
  EXPECT_TRUE(inspectRuntimeCheck(C, Mem, 1, N, nullptr, 1).Pass);
  EXPECT_TRUE(inspectRuntimeCheck(C, Mem, 1, N, &Pool, 4).Pass);

  B.I[12345] = B.I[123]; // Seed one duplicate.
  InspectionOutcome Serial = inspectRuntimeCheck(C, Mem, 1, N, nullptr, 1);
  InspectionOutcome Par = inspectRuntimeCheck(C, Mem, 1, N, &Pool, 4);
  EXPECT_FALSE(Serial.Pass);
  EXPECT_FALSE(Par.Pass);

  RuntimeCheck M;
  M.Kind = RuntimeCheckKind::MonotonicNonDecreasing;
  M.Index = Ind;
  for (int64_t I = 0; I < N; ++I)
    B.I[I] = I / 3;
  EXPECT_TRUE(inspectRuntimeCheck(M, Mem, 1, N, &Pool, 4).Pass);
  B.I[N / 2] = 0;
  EXPECT_FALSE(inspectRuntimeCheck(M, Mem, 1, N, &Pool, 4).Pass);
}

//===----------------------------------------------------------------------===//
// Auditor certification and the drop-runtime-check mutation
//===----------------------------------------------------------------------===//

TEST(RuntimeCheckAudit, ConditionalPlansCertifiedConditionally) {
  for (const char *Source : {PermutationScatter, CcsScale}) {
    Harness R(Source);
    const char *Label =
        Source == PermutationScatter ? "scat" : "scale";
    PlanAuditor Auditor(*R.P);
    AuditResult A = Auditor.audit(R.Plan);
    const LoopAudit *LA = A.auditFor(Label);
    ASSERT_NE(LA, nullptr) << Label;
    EXPECT_EQ(LA->Verdict, AuditVerdict::Certified)
        << Label << ":\n" << LA->str();
    EXPECT_TRUE(LA->Conditional)
        << "certification must be conditional on the runtime checks";
  }
}

TEST(RuntimeCheckAudit, UnmutatedConditionalPlanIsRaceFree) {
  // A runtime-conditional plan never runs parallel under the race checker
  // (the checker monitors parallel-marked plans): zero conflicts.
  Harness R(DuplicateScatter);
  Interpreter I(*R.P);
  ExecOptions Opts;
  Opts.Plans = &R.Plan;
  Opts.RaceCheck = true;
  ExecStats Stats;
  I.run(Opts, &Stats);
  EXPECT_EQ(Stats.RacesFound, 0u)
      << (Stats.Races.empty() ? std::string() : Stats.Races.front().str());
}

TEST(RuntimeCheckAudit, DropRuntimeCheckCaughtByBothOracles) {
  // Strip the checks from the duplicate-index kernel's conditional plan
  // and mark it unconditionally parallel, as if the inspector had been
  // skipped. The auditor must refuse the certificate (the injectivity the
  // checks were guarding is undischarged), and the shadow-memory race
  // checker must observe the concrete write-write conflicts the duplicate
  // indices produce.
  Harness R(DuplicateScatter);
  ASSERT_TRUE(applyMutation(
      R.Plan, *R.P, {MutationKind::DropRuntimeCheck, "scat", ""}));

  const DoStmt *L = R.P->findLoop("scat");
  ASSERT_NE(L, nullptr);
  ASSERT_NE(R.Plan.planFor(L), nullptr)
      << "mutation must leave an unconditionally parallel plan behind";

  PlanAuditor Auditor(*R.P);
  AuditResult A = Auditor.audit(R.Plan);
  const LoopAudit *LA = A.auditFor("scat");
  ASSERT_NE(LA, nullptr);
  EXPECT_NE(LA->Verdict, AuditVerdict::Certified)
      << "auditor missed the dropped runtime checks:\n" << LA->str();

  Interpreter I(*R.P);
  ExecOptions Opts;
  Opts.Plans = &R.Plan;
  Opts.RaceCheck = true;
  ExecStats Stats;
  I.run(Opts, &Stats);
  EXPECT_GT(Stats.RacesFound, 0u)
      << "duplicate indices must surface as dynamic conflicts";
}

TEST(RuntimeCheckAudit, StrictModeStripsUncertifiedConditionalPlan) {
  // recordAudit under strict mode must strip the runtime-conditional
  // dispatch of a plan the auditor could not certify. Corrupt the plan's
  // recorded window so the checks no longer cover the accesses.
  Harness R(PermutationScatter);
  const DoStmt *L = R.P->findLoop("scat");
  ASSERT_NE(L, nullptr);
  auto It = R.Plan.Plans.find(L);
  ASSERT_NE(It, R.Plan.Plans.end());
  for (RuntimeCheck &C : It->second.RuntimeChecks)
    if (C.Kind == RuntimeCheckKind::InjectiveOnRange)
      C.LoAdjust = 5; // Window no longer covers iterations 1..4.

  PlanAuditor Auditor(*R.P);
  AuditResult A = Auditor.audit(R.Plan);
  const LoopAudit *LA = A.auditFor("scat");
  ASSERT_NE(LA, nullptr);
  EXPECT_NE(LA->Verdict, AuditVerdict::Certified);

  recordAudit(R.Plan, A, AuditMode::Strict);
  EXPECT_EQ(R.Plan.conditionalPlanFor(L), nullptr)
      << "strict demotion must strip the conditional dispatch";
}

} // namespace
