//===- tests/test_audit.cpp - Plan auditor certification tests ------------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// The plan auditor re-derives every parallel-marked loop's race freedom
/// without reusing the dependence tester's conclusions. These tests pin
/// the two sides of its contract: every loop the paper parallelizes is
/// independently Certified (zero Rejected anywhere), and seeded planner
/// bugs — dropped privatization, dropped reduction, unproved last-value
/// writeback, force-parallelized dependences — are flagged.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "benchprogs/Benchmarks.h"
#include "verify/PlanAudit.h"
#include "verify/PlanMutator.h"
#include "xform/Parallelizer.h"

using namespace iaa;
using namespace iaa::mf;
using namespace iaa::verify;
using namespace iaa::xform;
using iaa::test::parseOrDie;

namespace {

struct Audited {
  std::unique_ptr<Program> P;
  PipelineResult R;
  AuditResult A;

  explicit Audited(const std::string &Source) : P(parseOrDie(Source)) {
    R = parallelize(*P, PipelineMode::Full);
    PlanAuditor Auditor(*P);
    A = Auditor.audit(R);
  }
};

AuditVerdict verdictOf(const Audited &Au, const std::string &Label) {
  const LoopAudit *LA = Au.A.auditFor(Label);
  EXPECT_NE(LA, nullptr) << Label << " was not audited (not parallel?)";
  return LA ? LA->Verdict : AuditVerdict::Rejected;
}

//===----------------------------------------------------------------------===//
// Certification of the paper's parallel loops
//===----------------------------------------------------------------------===//

TEST(Audit, CertifiesFig16Kernels) {
  for (const std::string &Source :
       {benchprogs::fig1aSource(), benchprogs::fig1bSource(),
        benchprogs::fig3Source(), benchprogs::fig14Source()}) {
    Audited Au(Source);
    EXPECT_FALSE(Au.A.Loops.empty()) << "kernel parallelized no loops";
    EXPECT_TRUE(Au.A.allCertified())
        << "auditor disagrees with the planner:\n"
        << Au.A.str();
    EXPECT_EQ(Au.A.numWithVerdict(AuditVerdict::Rejected), 0u) << Au.A.str();
  }
}

class BenchmarkAudit : public ::testing::TestWithParam<int> {};

TEST_P(BenchmarkAudit, CertifiesEveryParallelLoop) {
  auto All = benchprogs::allBenchmarks(/*Scale=*/0.05);
  const benchprogs::BenchmarkProgram &B = All[GetParam()];
  Audited Au(B.Source);

  // Zero Rejected: the auditor never contradicts a plan the paper's
  // analyses justified.
  EXPECT_EQ(Au.A.numWithVerdict(AuditVerdict::Rejected), 0u)
      << B.Name << ":\n"
      << Au.A.str();

  // Every irregular loop of Table 3 is not just accepted but independently
  // re-proved.
  for (const std::string &Label : B.IrregularLoops)
    EXPECT_EQ(verdictOf(Au, Label), AuditVerdict::Certified)
        << B.Name << "/" << Label << ":\n"
        << Au.A.str();

  // And the audit is total over parallel-marked loops.
  EXPECT_TRUE(Au.A.allCertified()) << B.Name << ":\n" << Au.A.str();
}

std::string auditCaseName(const ::testing::TestParamInfo<int> &Info) {
  static const char *Names[] = {"TRFD", "DYFESM", "BDNA", "P3M", "TREE"};
  return Names[Info.param];
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, BenchmarkAudit,
                         ::testing::Values(0, 1, 2, 3, 4), auditCaseName);

//===----------------------------------------------------------------------===//
// Outcome recording and strict demotion
//===----------------------------------------------------------------------===//

TEST(Audit, RecordAuditFillsOutcomesAndRemarks) {
  Audited Au(benchprogs::fig3Source());
  size_t RemarksBefore = Au.R.Remarks.size();
  unsigned Demoted = recordAudit(Au.R, Au.A, AuditMode::Warn);
  EXPECT_EQ(Demoted, 0u);
  ASSERT_EQ(Au.R.AuditOutcomes.size(), Au.A.Loops.size());
  EXPECT_EQ(Au.R.Remarks.size(), RemarksBefore + Au.A.Loops.size());
  for (const auto &O : Au.R.AuditOutcomes) {
    EXPECT_EQ(O.Verdict, "certified");
    EXPECT_FALSE(O.Demoted);
  }
  bool SawAuditRemark = false;
  for (const Remark &M : Au.R.Remarks)
    if (M.K == Remark::Kind::Audit)
      SawAuditRemark = true;
  EXPECT_TRUE(SawAuditRemark);
}

TEST(Audit, StrictDemotesUncertifiedPlans) {
  // A loop with a genuine loop-carried array dependence, force-marked
  // parallel as a planner bug would.
  Audited Au(R"(program t
    integer i, n
    real a(101)
    n = 100
    carried: do i = 1, n
      a(i + 1) = a(i) + 1.0
    end do
  end)");
  ASSERT_TRUE(applyMutation(Au.R, *Au.P, {MutationKind::ForceParallel,
                                          "carried", ""}));
  PlanAuditor Auditor(*Au.P);
  AuditResult A2 = Auditor.audit(Au.R);
  const LoopAudit *LA = A2.auditFor("carried");
  ASSERT_NE(LA, nullptr);
  EXPECT_NE(LA->Verdict, AuditVerdict::Certified) << LA->str();

  unsigned Demoted = recordAudit(Au.R, A2, AuditMode::Strict);
  EXPECT_EQ(Demoted, 1u);
  const DoStmt *L = Au.P->findLoop("carried");
  EXPECT_EQ(Au.R.planFor(L), nullptr) << "strict mode must clear the plan";
  ASSERT_FALSE(Au.R.AuditOutcomes.empty());
  EXPECT_TRUE(Au.R.AuditOutcomes.front().Demoted);
  const LoopReport *Rep = Au.R.reportFor("carried");
  ASSERT_NE(Rep, nullptr);
  EXPECT_FALSE(Rep->Parallel);
}

TEST(Audit, RejectedCarriesStructuredCounterexample) {
  // Every iteration writes the same whole section [1, m]: a definite
  // write-write overlap between iterations 1 and 2.
  Audited Au(R"(program t
    integer i, j, n, m
    real a(8)
    n = 100
    m = 8
    conflict: do i = 1, n
      do j = 1, m
        a(j) = a(j) + 1.0
      end do
    end do
  end)");
  ASSERT_TRUE(applyMutation(Au.R, *Au.P, {MutationKind::ForceParallel,
                                          "conflict", ""}));
  PlanAuditor Auditor(*Au.P);
  AuditResult A2 = Auditor.audit(Au.R);
  const LoopAudit *LA = A2.auditFor("conflict");
  ASSERT_NE(LA, nullptr);
  EXPECT_EQ(LA->Verdict, AuditVerdict::Rejected) << LA->str();
  ASSERT_TRUE(LA->Counterexample.has_value());
  const AuditCounterexample &CE = *LA->Counterexample;
  ASSERT_NE(CE.Var, nullptr);
  EXPECT_EQ(CE.Var->name(), "a");
  EXPECT_EQ(CE.IterA, "i = 1");
  EXPECT_EQ(CE.IterB, "i = 2");
  EXPECT_FALSE(CE.SectionA.empty());
  EXPECT_FALSE(CE.SectionB.empty());
}

//===----------------------------------------------------------------------===//
// The audit re-checks premises, not just conclusions
//===----------------------------------------------------------------------===//

TEST(Audit, DropPrivatizationIsFlagged) {
  auto B = benchprogs::bdna(0.05);
  Audited Au(B.Source);
  ASSERT_EQ(verdictOf(Au, "do240"), AuditVerdict::Certified);

  // Find the privatized array of do240 and drop it from the plan.
  const DoStmt *L = Au.P->findLoop("do240");
  ASSERT_NE(L, nullptr);
  const LoopPlan *Plan = Au.R.planFor(L);
  ASSERT_NE(Plan, nullptr);
  ASSERT_FALSE(Plan->PrivateArrays.empty());
  std::string Dropped = (*Plan->PrivateArrays.begin())->name();
  ASSERT_TRUE(applyMutation(Au.R, *Au.P, {MutationKind::DropPrivatization,
                                          "do240", Dropped}));

  PlanAuditor Auditor(*Au.P);
  AuditResult A2 = Auditor.audit(Au.R);
  const LoopAudit *LA = A2.auditFor("do240");
  ASSERT_NE(LA, nullptr);
  EXPECT_NE(LA->Verdict, AuditVerdict::Certified)
      << "dropping privatization of " << Dropped << " must be flagged:\n"
      << LA->str();
}

TEST(Audit, DropReductionIsFlagged) {
  Audited Au(R"(program t
    integer i, n
    real s, x(100)
    n = 100
    s = 0.0
    red: do i = 1, n
      s = s + x(i)
    end do
  end)");
  ASSERT_EQ(verdictOf(Au, "red"), AuditVerdict::Certified);
  ASSERT_TRUE(applyMutation(Au.R, *Au.P, {MutationKind::DropReduction,
                                          "red", "s"}));
  PlanAuditor Auditor(*Au.P);
  AuditResult A2 = Auditor.audit(Au.R);
  const LoopAudit *LA = A2.auditFor("red");
  ASSERT_NE(LA, nullptr);
  EXPECT_EQ(LA->Verdict, AuditVerdict::Rejected) << LA->str();
  ASSERT_TRUE(LA->Counterexample.has_value());
  EXPECT_EQ(LA->Counterexample->Var->name(), "s");
}

TEST(Audit, SkipLastValueIsFlagged) {
  // The planner stays serial here: w is live after the loop and iteration
  // i only rewrites w(1..m) fully, while early iterations also write
  // w(m+1) — the final iteration's copy would lose it. The mutation
  // claims the proof anyway.
  Audited Au(R"(program t
    integer i, j, n, m
    real w(9), y(100), z(100)
    n = 100
    m = 8
    lv: do i = 1, n
      do j = 1, m
        w(j) = y(i) * 2.0
      end do
      if (i <= 4) then
        w(m + 1) = y(i)
      end if
      z(i) = w(1) + w(m + 1)
    end do
    y(1) = w(m + 1)
  end)");
  const LoopReport *Rep = Au.R.reportFor("lv");
  ASSERT_NE(Rep, nullptr);
  ASSERT_FALSE(Rep->Parallel) << "planner should refuse: " << Rep->WhyNot;
  ASSERT_TRUE(applyMutation(Au.R, *Au.P, {MutationKind::SkipLastValue,
                                          "lv", "w"}));
  PlanAuditor Auditor(*Au.P);
  AuditResult A2 = Auditor.audit(Au.R);
  const LoopAudit *LA = A2.auditFor("lv");
  ASSERT_NE(LA, nullptr);
  EXPECT_NE(LA->Verdict, AuditVerdict::Certified) << LA->str();
  bool SawFailedLastValue = false;
  for (const ObligationCheck &O : LA->Obligations)
    if (O.Kind == "live-out-reproducible" && !O.Ok)
      SawFailedLastValue = true;
  EXPECT_TRUE(SawFailedLastValue) << LA->str();
}

TEST(Audit, DroppedInjectivityPremiseIsFlagged) {
  // ind() has duplicate values, so the planner's injectivity proof fails
  // and the loop stays serial; force-parallelizing reproduces a planner
  // that trusted a wrong INJ fact. The auditor re-checks the premise with
  // its own solver and must refuse to certify.
  Audited Au(R"(program t
    integer i, n
    integer ind(100)
    real x(200)
    n = 100
    do i = 1, n
      ind(i) = i - (i / 2) * 2 + 1
    end do
    gather: do i = 1, n
      x(ind(i)) = x(ind(i)) + 1.0
    end do
  end)");
  const LoopReport *Rep = Au.R.reportFor("gather");
  ASSERT_NE(Rep, nullptr);
  ASSERT_FALSE(Rep->Parallel) << "planner should refuse: " << Rep->WhyNot;
  ASSERT_TRUE(applyMutation(Au.R, *Au.P, {MutationKind::ForceParallel,
                                          "gather", ""}));
  PlanAuditor Auditor(*Au.P);
  AuditResult A2 = Auditor.audit(Au.R);
  const LoopAudit *LA = A2.auditFor("gather");
  ASSERT_NE(LA, nullptr);
  EXPECT_NE(LA->Verdict, AuditVerdict::Certified) << LA->str();
}

TEST(Audit, WidenedSectionIsRejectedWithWitness) {
  // Segments [ptr(i), ptr(i) + len(i)] overlap by exactly one element at
  // each boundary (a widened section): ptr(i+1) = ptr(i) + len(i), and
  // iteration i writes up to ptr(i) + len(i) inclusive. The CFD rewrite
  // lets the auditor prove the overlap, not merely fail to certify.
  Audited Au(R"(program t
    integer i, n
    integer ptr(101), len(100)
    real x(1000)
    integer j, lo, hi
    n = 100
    do i = 1, n
      len(i) = 3
    end do
    ptr(1) = 1
    do i = 1, n
      ptr(i + 1) = ptr(i) + len(i)
    end do
    widened: do i = 1, n
      lo = ptr(i)
      hi = ptr(i) + len(i)
      do j = lo, hi
        x(j) = x(j) + 1.0
      end do
    end do
  end)");
  const LoopReport *Rep = Au.R.reportFor("widened");
  ASSERT_NE(Rep, nullptr);
  ASSERT_FALSE(Rep->Parallel) << "planner should refuse: " << Rep->WhyNot;
  ASSERT_TRUE(applyMutation(Au.R, *Au.P, {MutationKind::ForceParallel,
                                          "widened", ""}));
  PlanAuditor Auditor(*Au.P);
  AuditResult A2 = Auditor.audit(Au.R);
  const LoopAudit *LA = A2.auditFor("widened");
  ASSERT_NE(LA, nullptr);
  EXPECT_EQ(LA->Verdict, AuditVerdict::Rejected) << LA->str();
  ASSERT_TRUE(LA->Counterexample.has_value());
  EXPECT_EQ(LA->Counterexample->Var->name(), "x");
}

} // namespace
