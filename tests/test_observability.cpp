//===- tests/test_observability.cpp - Stats, trace, and remark tests ------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// Tests for the observability layer: statistic counters register and
/// accumulate across pipeline runs and reset to zero; the tracer emits
/// well-formed Chrome trace-event JSON (parsed back here) whose spans nest
/// correctly per thread under real multi-threaded interpretation; and the
/// optimization remarks match golden expectations for a known-parallel and
/// a known-serial loop, both as text and as JSONL.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "benchprogs/Benchmarks.h"
#include "interp/Interpreter.h"
#include "support/Json.h"
#include "support/Remarks.h"
#include "support/Statistic.h"
#include "support/Trace.h"
#include "xform/Parallelizer.h"

#include <map>
#include <set>
#include <sstream>
#include <vector>

using namespace iaa;
using namespace iaa::xform;
using iaa::test::parseOrDie;

namespace {

// The paper's Fig. 1(a): x() is consecutively written (established by the
// bounded DFS) and privatizing it parallelizes loop "dok" — the repo's
// known-parallel case.
std::string parallelSource() { return benchprogs::fig1aSource(); }

// A loop-carried flow dependence: provably serial.
const char *SerialSource = R"(program t
  integer i, n
  real x(100)
  n = 100
  ls: do i = 2, n
    x(i) = x(i - 1) + 1.0
  end do
end)";

const Remark *remarkFor(const PipelineResult &R, const std::string &Loop) {
  for (const Remark &M : R.Remarks)
    if (M.Loop == Loop)
      return &M;
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Statistics
//===----------------------------------------------------------------------===//

TEST(Observability, StatsRegisterIncrementAndReset) {
  stat::resetAll();

  // The acceptance-relevant counters must be registered even before any
  // work runs (namespace-scope constructors).
  ASSERT_NE(stat::find("bdfs_nodes_visited"), nullptr);
  ASSERT_NE(stat::find("prop_cache_hits"), nullptr);
  ASSERT_NE(stat::find("prop_cache_misses"), nullptr);
  ASSERT_NE(stat::find("pipeline_loops_analyzed"), nullptr);
  EXPECT_EQ(stat::find("no_such_counter"), nullptr);

  auto P = parseOrDie(parallelSource());
  PipelineResult R = parallelize(*P, PipelineMode::Full);
  ASSERT_TRUE(R.reportFor("dok") != nullptr);

  stat::Statistic *Loops = stat::find("pipeline_loops_analyzed");
  EXPECT_GT(Loops->value(), 0u);
  EXPECT_GT(stat::find("bdfs_searches")->value(), 0u)
      << "consecutively-written detection runs the bounded DFS";
  EXPECT_GT(stat::find("bdfs_nodes_visited")->value(), 0u);

  // A second run accumulates on top of the first.
  uint64_t After1 = Loops->value();
  auto P2 = parseOrDie(parallelSource());
  parallelize(*P2, PipelineMode::Full);
  EXPECT_EQ(Loops->value(), 2 * After1);

  // DYFESM's indirect accesses (pptr:CFD, iblen:CFB) go through the
  // demand-driven property solver.
  auto P3 = parseOrDie(benchprogs::dyfesm(0.05).Source);
  parallelize(*P3, PipelineMode::Full);
  stat::Statistic *Queries = stat::find("prop_queries");
  ASSERT_NE(Queries, nullptr);
  EXPECT_GT(Queries->value(), 0u);

  // The table shows nonzero counters, and all counters with IncludeZero.
  std::string Table = stat::table();
  EXPECT_NE(Table.find("pipeline_loops_analyzed"), std::string::npos);
  std::string Full = stat::table(/*IncludeZero=*/true);
  EXPECT_NE(Full.find("bdfs_nodes_visited"), std::string::npos);
  EXPECT_NE(Full.find("prop_cache_hits"), std::string::npos);
  EXPECT_NE(Full.find("prop_cache_misses"), std::string::npos);

  // The JSON dump is well-formed and carries the same value.
  auto Doc = json::parse(stat::json());
  ASSERT_TRUE(Doc.has_value());
  ASSERT_TRUE(Doc->isObject());
  const json::Value *V = Doc->member("pipeline.pipeline_loops_analyzed");
  ASSERT_NE(V, nullptr);
  EXPECT_TRUE(V->isNumber());
  EXPECT_EQ(static_cast<uint64_t>(V->N), Loops->value());

  stat::resetAll();
  for (const stat::Statistic *S : stat::all())
    EXPECT_EQ(S->value(), 0u) << S->name();
}

TEST(Observability, StatsDumpsAreSortedByGroupThenName) {
  // --stats output must be deterministic regardless of static-initializer
  // registration order (which varies across link order and toolchains),
  // so dumps from two builds diff cleanly. Both the table and the JSON
  // emit counters sorted by (group, name).
  std::string Full = stat::table(/*IncludeZero=*/true);
  std::vector<std::pair<std::string, std::string>> Seen;
  std::istringstream Rows(Full);
  std::string Line;
  while (std::getline(Rows, Line)) {
    // Counter rows are "<value> <group> <name> <description...>" columns.
    std::istringstream Cols(Line);
    std::string Value, Group, Name;
    if (!(Cols >> Value >> Group >> Name))
      continue;
    if (Value.find_first_not_of("0123456789") != std::string::npos)
      continue; // Header line.
    Seen.emplace_back(Group, Name);
  }
  ASSERT_GT(Seen.size(), 5u) << "expected many registered counters";
  for (size_t I = 1; I < Seen.size(); ++I)
    EXPECT_LT(Seen[I - 1], Seen[I])
        << "table out of order at " << Seen[I - 1].first << "."
        << Seen[I - 1].second << " vs " << Seen[I].first << "."
        << Seen[I].second;

  // JSON object keys "group.name" in document order.
  std::string Json = stat::json();
  std::vector<std::string> Keys;
  for (size_t At = Json.find('"'); At != std::string::npos;
       At = Json.find('"', At + 1)) {
    size_t End = Json.find('"', At + 1);
    ASSERT_NE(End, std::string::npos);
    Keys.push_back(Json.substr(At + 1, End - At - 1));
    At = End;
  }
  ASSERT_GT(Keys.size(), 5u);
  for (size_t I = 1; I < Keys.size(); ++I)
    EXPECT_LT(Keys[I - 1], Keys[I]) << "json keys out of order";
}

//===----------------------------------------------------------------------===//
// Tracing
//===----------------------------------------------------------------------===//

TEST(Observability, TraceJsonWellFormedAndNested) {
  trace::clear();
  trace::enable(true);

  auto P = parseOrDie(parallelSource());
  PipelineResult R = parallelize(*P, PipelineMode::Full);
  const LoopReport *Rep = R.reportFor("dok");
  ASSERT_NE(Rep, nullptr);
  ASSERT_TRUE(Rep->Parallel) << Rep->WhyNot;

  // A DYFESM compile adds demand-driven property-query spans to the trace.
  auto PDyfesm = parseOrDie(benchprogs::dyfesm(0.05).Source);
  parallelize(*PDyfesm, PipelineMode::Full);

  // Real threaded execution (not simulated): two workers, no profitability
  // guard, so the parallel loop genuinely forks.
  interp::Interpreter I(*P);
  interp::ExecOptions Opts;
  Opts.Plans = &R;
  Opts.Threads = 2;
  Opts.MinParallelWork = 0;
  I.run(Opts);

  trace::enable(false);
  ASSERT_GT(trace::eventCount(), 0u);

  auto Doc = json::parse(trace::json());
  ASSERT_TRUE(Doc.has_value()) << "trace JSON must parse";
  ASSERT_TRUE(Doc->isObject());
  const json::Value *Events = Doc->member("traceEvents");
  ASSERT_NE(Events, nullptr);
  ASSERT_TRUE(Events->isArray());
  ASSERT_EQ(Events->Elems.size(), trace::eventCount());

  struct Span {
    std::string Name;
    double Ts, Dur;
  };
  std::map<double, std::vector<Span>> ByTid;
  std::set<std::string> Names;
  std::set<double> ChunkTids;
  for (const json::Value &E : Events->Elems) {
    ASSERT_TRUE(E.isObject());
    const json::Value *Ph = E.member("ph");
    ASSERT_NE(Ph, nullptr);
    EXPECT_EQ(Ph->S, "X") << "complete events only";
    const json::Value *Name = E.member("name");
    ASSERT_NE(Name, nullptr);
    ASSERT_TRUE(Name->isString());
    const json::Value *Ts = E.member("ts");
    const json::Value *Dur = E.member("dur");
    const json::Value *Pid = E.member("pid");
    const json::Value *Tid = E.member("tid");
    ASSERT_TRUE(Ts && Ts->isNumber());
    ASSERT_TRUE(Dur && Dur->isNumber());
    ASSERT_TRUE(Pid && Pid->isNumber());
    ASSERT_TRUE(Tid && Tid->isNumber());
    EXPECT_GE(Ts->N, 0.0);
    EXPECT_GE(Dur->N, 0.0);
    Names.insert(Name->S);
    ByTid[Tid->N].push_back({Name->S, Ts->N, Dur->N});
    if (Name->S == "chunk")
      ChunkTids.insert(Tid->N);
  }

  // The pipeline, the loop analysis, and the threaded run all left spans.
  EXPECT_TRUE(Names.count("parallelize"));
  EXPECT_TRUE(Names.count("analyze-loop"));
  EXPECT_TRUE(Names.count("dep-test"));
  EXPECT_TRUE(Names.count("property-query"));
  EXPECT_TRUE(Names.count("interp-run"));
  EXPECT_TRUE(Names.count("parallel-loop"));
  EXPECT_TRUE(Names.count("fork-join"));
  EXPECT_TRUE(Names.count("chunk"));
  // The two chunks ran on distinct threads.
  EXPECT_GE(ChunkTids.size(), 2u);

  // Within a thread, RAII spans must nest: any two either disjoint or one
  // containing the other (tolerance for double rounding in the JSON).
  const double Eps = 1e-3;
  for (auto &[Tid, Spans] : ByTid) {
    for (size_t A = 0; A < Spans.size(); ++A)
      for (size_t B = A + 1; B < Spans.size(); ++B) {
        const Span &X = Spans[A], &Y = Spans[B];
        bool Disjoint = X.Ts + X.Dur <= Y.Ts + Eps || Y.Ts + Y.Dur <= X.Ts + Eps;
        bool XInY = Y.Ts <= X.Ts + Eps && X.Ts + X.Dur <= Y.Ts + Y.Dur + Eps;
        bool YInX = X.Ts <= Y.Ts + Eps && Y.Ts + Y.Dur <= X.Ts + X.Dur + Eps;
        EXPECT_TRUE(Disjoint || XInY || YInX)
            << X.Name << " [" << X.Ts << "," << X.Ts + X.Dur << ") vs "
            << Y.Name << " [" << Y.Ts << "," << Y.Ts + Y.Dur << ") on tid "
            << Tid;
      }
  }
  trace::clear();
}

TEST(Observability, TraceDisabledCollectsNothing) {
  trace::clear();
  ASSERT_FALSE(trace::enabled());
  auto P = parseOrDie(SerialSource);
  parallelize(*P, PipelineMode::Full);
  EXPECT_EQ(trace::eventCount(), 0u);

  // A span constructed while disabled stays inactive even if tracing is
  // enabled before it closes (no unbalanced events).
  {
    trace::TraceScope Span("late", "test");
    EXPECT_FALSE(Span.active());
    trace::enable(true);
  }
  trace::enable(false);
  EXPECT_EQ(trace::eventCount(), 0u);
  trace::clear();
}

TEST(Observability, TraceBufferDropsOldestWhenCapped) {
  trace::clear();
  stat::resetAll();
  trace::setMaxEvents(8);
  trace::enable(true);

  for (int I = 0; I < 20; ++I) {
    trace::TraceScope Span("span", "test");
    Span.arg("i", std::to_string(I));
  }
  trace::enable(false);

  // The buffer holds the *newest* 8 events; the 12 oldest were dropped
  // and counted both by the query API and the trace_dropped statistic.
  EXPECT_EQ(trace::eventCount(), 8u);
  EXPECT_EQ(trace::droppedCount(), 12u);
  stat::Statistic *Dropped = stat::find("trace_dropped");
  ASSERT_NE(Dropped, nullptr);
  EXPECT_EQ(Dropped->value(), 12u);
  std::vector<trace::Event> Events = trace::events();
  ASSERT_EQ(Events.size(), 8u);
  EXPECT_EQ(Events.front().Args.at(0).second, "12");
  EXPECT_EQ(Events.back().Args.at(0).second, "19");

  // The JSON document stays well-formed and reports the drop count.
  auto Doc = json::parse(trace::json());
  ASSERT_TRUE(Doc.has_value());
  const json::Value *DroppedField = Doc->member("droppedEvents");
  ASSERT_NE(DroppedField, nullptr);
  EXPECT_EQ(static_cast<uint64_t>(DroppedField->N), 12u);

  // Counter samples ('C' events) flow through the same capped buffer.
  trace::clear();
  trace::enable(true);
  trace::counter("loop-locality demo", 0.75);
  trace::enable(false);
  Events = trace::events();
  ASSERT_EQ(Events.size(), 1u);
  EXPECT_EQ(Events[0].Ph, 'C');
  EXPECT_DOUBLE_EQ(Events[0].Value, 0.75);
  std::string Json = trace::json();
  EXPECT_NE(Json.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(Json.find("\"value\""), std::string::npos);

  trace::setMaxEvents(0); // Restore the default cap.
  trace::clear();
  stat::resetAll();
}

//===----------------------------------------------------------------------===//
// Remarks
//===----------------------------------------------------------------------===//

TEST(Observability, RemarksForParallelAndSerialLoops) {
  auto P = parseOrDie(parallelSource());
  PipelineResult R = parallelize(*P, PipelineMode::Full);
  ASSERT_EQ(R.Remarks.size(), R.Loops.size());

  const Remark *Par = remarkFor(R, "dok");
  ASSERT_NE(Par, nullptr);
  EXPECT_EQ(Par->K, Remark::Kind::Parallelized);
  EXPECT_NE(Par->Reason.find("privatized"), std::string::npos)
      << "dok parallelizes by privatizing x: " << Par->Reason;
  // Evidence records the privatization outcome and the property queries.
  bool SawPriv = false, SawQueries = false;
  for (const auto &[Key, Val] : Par->Evidence) {
    if (Key == "priv:x") {
      SawPriv = true;
      EXPECT_NE(Val.find("private"), std::string::npos);
    }
    if (Key == "property-queries")
      SawQueries = true;
  }
  EXPECT_TRUE(SawPriv);
  EXPECT_TRUE(SawQueries);

  auto P2 = parseOrDie(SerialSource);
  PipelineResult R2 = parallelize(*P2, PipelineMode::Full);
  const Remark *Ser = remarkFor(R2, "ls");
  ASSERT_NE(Ser, nullptr);
  EXPECT_EQ(Ser->K, Remark::Kind::Missed);
  const LoopReport *Rep = R2.reportFor("ls");
  ASSERT_NE(Rep, nullptr);
  EXPECT_FALSE(Rep->Parallel);
  EXPECT_EQ(Ser->Reason, Rep->WhyNot) << "remark backs the WhyNot string";
  EXPECT_NE(Ser->Reason.find("x"), std::string::npos)
      << "reason names the offending array";

  // Human-readable rendering mentions both verdicts.
  std::string Text = remarksText(R.Remarks) + remarksText(R2.Remarks);
  EXPECT_NE(Text.find("parallelized"), std::string::npos);
  EXPECT_NE(Text.find("missed"), std::string::npos);
  EXPECT_NE(Text.find("dok"), std::string::npos);
  EXPECT_NE(Text.find("ls"), std::string::npos);
}

TEST(Observability, RemarksJsonlParsesLineByLine) {
  auto P = parseOrDie(parallelSource());
  PipelineResult R = parallelize(*P, PipelineMode::Full);
  std::string Jsonl = remarksJsonl(R.Remarks);

  size_t Lines = 0, Pos = 0;
  while (Pos < Jsonl.size()) {
    size_t End = Jsonl.find('\n', Pos);
    ASSERT_NE(End, std::string::npos) << "every record is newline-terminated";
    std::string Line = Jsonl.substr(Pos, End - Pos);
    Pos = End + 1;
    ++Lines;
    auto Doc = json::parse(Line);
    ASSERT_TRUE(Doc.has_value()) << Line;
    ASSERT_TRUE(Doc->isObject());
    const json::Value *Loop = Doc->member("loop");
    const json::Value *Kind = Doc->member("kind");
    const json::Value *Reason = Doc->member("reason");
    const json::Value *Evidence = Doc->member("evidence");
    ASSERT_TRUE(Loop && Loop->isString());
    ASSERT_TRUE(Kind && Kind->isString());
    EXPECT_TRUE(Kind->S == "parallelized" || Kind->S == "missed");
    ASSERT_TRUE(Reason && Reason->isString());
    ASSERT_TRUE(Evidence && Evidence->isObject());
  }
  EXPECT_EQ(Lines, R.Remarks.size());
}

//===----------------------------------------------------------------------===//
// Phase timings
//===----------------------------------------------------------------------===//

TEST(Observability, PipelinePhaseSeconds) {
  auto P = parseOrDie(parallelSource());
  PipelineResult R = parallelize(*P, PipelineMode::Full);
  std::set<std::string> Phases;
  for (const auto &[Name, Secs] : R.PhaseSeconds) {
    EXPECT_GE(Secs, 0.0) << Name;
    EXPECT_TRUE(Phases.insert(Name).second) << "duplicate phase " << Name;
  }
  for (const char *Expected :
       {"normalize", "induction-subst", "const-prop", "forward-subst", "dce",
        "hcg-build", "loop-analysis", "property-analysis"})
    EXPECT_TRUE(Phases.count(Expected)) << Expected;
}

} // namespace
