//===- tests/test_locality.cpp - Locality-aware scheduling tests ----------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// Tests for locality-aware scheduling: the GatherFootprintModel's access
/// classification and schedule picks; the inspector's iteration-reorder
/// pass (bijection, line bucketing, last-iteration pinning, refusal
/// cases); checksum bit-identity across every --locality mode x schedule
/// x thread count; verdict/permutation cache reuse across invocations;
/// the model's line predictions validated against the profiler's measured
/// footprints; and fault containment under a reordered dispatch (rollback
/// + serial replay with original-order iteration attribution).
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "interp/Inspector.h"
#include "interp/Interpreter.h"
#include "prof/Profiler.h"
#include "sched/FootprintModel.h"
#include "verify/FaultInjector.h"
#include "xform/Parallelizer.h"

#include <algorithm>
#include <set>
#include <vector>

using namespace iaa;
using namespace iaa::interp;
using namespace iaa::mf;
using iaa::test::parseOrDie;

namespace {

const Schedule AllSchedules[] = {Schedule::Static, Schedule::Dynamic,
                                 Schedule::Guided};
const unsigned ThreadCounts[] = {1, 2, 4, 7};
const sched::LocalityMode AllModes[] = {sched::LocalityMode::Off,
                                        sched::LocalityMode::Model,
                                        sched::LocalityMode::Reorder};

/// Gather/scatter whose index array is a permutation of 1..n at run time
/// but opaque to the static analysis: parallel only via inspection.
const char *PermutationScatter = R"(program t
    integer i, n
    integer ind(1000)
    real x(1000), y(1000)
    n = 1000
    init: do i = 1, n
      ind(i) = mod(i * 7, n) + 1
      x(i) = i * 0.5
      y(i) = mod(i, 9) * 0.25
    end do
    scat: do i = 1, n
      x(ind(i)) = x(ind(i)) + y(i) * 0.5
    end do
  end)";

/// CCS-style segment kernel needing the monotone + offset-length checks
/// (colcnt written through an identity permutation keeps the recurrence
/// solver from proving the colptr build statically).
const char *CcsScale = R"(program t
    integer i, j, n
    integer colptr(101), colcnt(100), perm(100)
    real vals(800)
    n = 100
    colptr(1) = 1
    mkperm: do i = 1, n
      perm(i) = i
    end do
    build: do i = 1, n
      colcnt(perm(i)) = mod(i * 5, 7) + 1
      colptr(i + 1) = colptr(i) + colcnt(i)
    end do
    fill: do i = 1, 800
      vals(i) = mod(i, 13) * 0.125
    end do
    scale: do i = 1, n
      do j = 1, colcnt(i)
        vals(colptr(i) + j - 1) = vals(colptr(i) + j - 1) * 1.5 + 0.25
      end do
    end do
  end)";

struct Harness {
  std::unique_ptr<Program> P;
  xform::PipelineResult Plan;

  explicit Harness(const std::string &Source) : P(parseOrDie(Source)) {
    Plan = xform::parallelize(*P, xform::PipelineMode::Full);
  }

  const DoStmt *loop(const std::string &Label) {
    const xform::LoopReport *R = Plan.reportFor(Label);
    return R ? R->Loop : nullptr;
  }

  double serialChecksum() {
    Interpreter I(*P);
    Memory Serial = I.run(ExecOptions{});
    EXPECT_FALSE(I.faultState().Faulted) << I.faultState().str();
    return Serial.checksumExcluding(deadPrivateIds(Plan));
  }

  /// Runtime-checked run under the given locality mode; fills \p Stats.
  double run(sched::LocalityMode L, unsigned Threads, Schedule S,
             ExecStats *Stats = nullptr) {
    Interpreter I(*P);
    ExecOptions Opts;
    Opts.Plans = &Plan;
    Opts.Threads = Threads;
    Opts.Sched = S;
    Opts.MinParallelWork = 0;
    Opts.RuntimeChecks = true;
    Opts.Locality = L;
    Memory M = I.run(Opts, Stats);
    EXPECT_FALSE(I.faultState().Faulted) << I.faultState().str();
    return M.checksumExcluding(deadPrivateIds(Plan));
  }
};

const sched::ArrayFootprint *footprintFor(const sched::FootprintScore &S,
                                          const std::string &Name) {
  for (const sched::ArrayFootprint &A : S.Arrays)
    if (A.Array && A.Array->name() == Name)
      return &A;
  ADD_FAILURE() << "no footprint for array " << Name << " in\n" << S.str();
  return nullptr;
}

//===----------------------------------------------------------------------===//
// GatherFootprintModel: access classification
//===----------------------------------------------------------------------===//

TEST(LocalityModel, ParsesAndNamesModes) {
  sched::LocalityMode M;
  EXPECT_TRUE(sched::parseLocalityMode("off", M));
  EXPECT_EQ(M, sched::LocalityMode::Off);
  EXPECT_TRUE(sched::parseLocalityMode("model", M));
  EXPECT_EQ(M, sched::LocalityMode::Model);
  EXPECT_TRUE(sched::parseLocalityMode("reorder", M));
  EXPECT_EQ(M, sched::LocalityMode::Reorder);
  EXPECT_FALSE(sched::parseLocalityMode("reoder", M));
  EXPECT_STREQ(sched::localityModeName(sched::LocalityMode::Reorder),
               "reorder");
}

TEST(LocalityModel, ClassifiesAccessPatterns) {
  Harness H(R"(program t
    integer i, n
    integer ind(512)
    real x(512), y(512), z(512)
    n = 512
    init: do i = 1, n
      ind(i) = mod(i * 7, n) + 1
      x(i) = i * 0.5
      y(i) = 0.0
      z(i) = 1.0
    end do
    cont: do i = 1, n
      y(i) = x(i) * 2.0
    end do
    strid: do i = 1, 64
      y(i * 8) = x(i * 8) + 1.0
    end do
    gath: do i = 1, n
      y(i) = z(ind(i))
    end do
  end)");
  sched::GatherFootprintModel Model(*H.P);
  ASSERT_EQ(Model.lineElems(), sched::DefaultLineElems);

  sched::FootprintScore Cont = Model.score(H.loop("cont"));
  EXPECT_FALSE(Cont.HasGather);
  const sched::ArrayFootprint *Fx = footprintFor(Cont, "x");
  ASSERT_NE(Fx, nullptr);
  EXPECT_EQ(Fx->Pattern, sched::AccessPattern::Contiguous);
  EXPECT_FALSE(Fx->Written);
  const sched::ArrayFootprint *Fy = footprintFor(Cont, "y");
  ASSERT_NE(Fy, nullptr);
  EXPECT_TRUE(Fy->Written);
  // Two contiguous arrays: 2/8 lines per iteration, 2 sites per line x 8.
  EXPECT_NEAR(Cont.LinesPerIter, 0.25, 1e-12);
  EXPECT_NEAR(Cont.ReuseDensity, 8.0, 1e-9);

  sched::FootprintScore Strid = Model.score(H.loop("strid"));
  const sched::ArrayFootprint *Sy = footprintFor(Strid, "y");
  ASSERT_NE(Sy, nullptr);
  EXPECT_EQ(Sy->Pattern, sched::AccessPattern::Strided);
  EXPECT_EQ(Sy->Stride, 8);
  // Stride == line size: a fresh line per access per array.
  EXPECT_NEAR(Strid.LinesPerIter, 2.0, 1e-12);
  EXPECT_NEAR(Strid.ReuseDensity, 1.0, 1e-9);

  sched::FootprintScore Gath = Model.score(H.loop("gath"));
  EXPECT_TRUE(Gath.HasGather);
  ASSERT_NE(Gath.GatherIndex, nullptr);
  EXPECT_EQ(Gath.GatherIndex->name(), "ind");
  const sched::ArrayFootprint *Gz = footprintFor(Gath, "z");
  ASSERT_NE(Gz, nullptr);
  EXPECT_EQ(Gz->Pattern, sched::AccessPattern::Gather);
  ASSERT_NE(Gz->IndexArray, nullptr);
  EXPECT_EQ(Gz->IndexArray->name(), "ind");
  // The index array itself is a contiguous read of the gather.
  const sched::ArrayFootprint *Gi = footprintFor(Gath, "ind");
  ASSERT_NE(Gi, nullptr);
  EXPECT_EQ(Gi->Pattern, sched::AccessPattern::Contiguous);
}

TEST(LocalityModel, PicksScheduleByPattern) {
  Harness H(R"(program t
    integer i, n
    integer ind(512)
    real x(512), y(512)
    n = 512
    init: do i = 1, n
      ind(i) = mod(i * 3, n) + 1
      x(i) = i * 0.5
      y(i) = 0.0
    end do
    reuse: do i = 1, n
      y(i) = x(i) * 2.0
    end do
    stream: do i = 1, 64
      y(i * 8) = x(i * 8) + 1.0
    end do
    gath: do i = 1, n
      y(i) = x(ind(i))
    end do
  end)");
  sched::GatherFootprintModel Model(*H.P);

  sched::SchedulePick G =
      Model.pick(Model.score(H.loop("gath")), 512, 4);
  EXPECT_EQ(G.Sched, Schedule::Static)
      << "gathers want contiguous per-worker blocks: " << G.Rationale;
  EXPECT_EQ(G.Align, int64_t(sched::DefaultLineElems));

  sched::SchedulePick R =
      Model.pick(Model.score(H.loop("reuse")), 512, 4);
  EXPECT_EQ(R.Sched, Schedule::Static) << R.Rationale;
  EXPECT_EQ(R.Align, int64_t(sched::DefaultLineElems));

  sched::SchedulePick S =
      Model.pick(Model.score(H.loop("stream")), 64, 4);
  EXPECT_EQ(S.Sched, Schedule::Guided)
      << "streaming loops want guided tails: " << S.Rationale;
  EXPECT_EQ(S.ChunkSize, int64_t(sched::DefaultLineElems));

  // Tiny trip counts drop the alignment: rounding would idle workers.
  sched::SchedulePick Tiny =
      Model.pick(Model.score(H.loop("reuse")), 4, 4);
  EXPECT_EQ(Tiny.Align, 1);
}

TEST(LocalityModel, PredictLinesClosedForms) {
  sched::ArrayFootprint A;
  A.Accesses = 1;
  A.Pattern = sched::AccessPattern::Contiguous;
  EXPECT_EQ(A.predictLines(1000, 8), 125u);
  A.Pattern = sched::AccessPattern::Strided;
  A.Stride = 2;
  EXPECT_EQ(A.predictLines(1000, 8), 250u);
  A.Stride = 16; // Wider than a line: still at most one line per iter.
  EXPECT_EQ(A.predictLines(1000, 8), 1000u);
  A.Pattern = sched::AccessPattern::Gather;
  EXPECT_EQ(A.predictLines(1000, 8), 1000u);
  A.Pattern = sched::AccessPattern::Invariant;
  // An invariant access still touches its one line.
  EXPECT_EQ(A.predictLines(1000, 8), 1u);
  A.Pattern = sched::AccessPattern::Contiguous;
  A.Accesses = 0; // Never-touched arrays predict nothing.
  EXPECT_EQ(A.predictLines(1000, 8), 0u);
}

//===----------------------------------------------------------------------===//
// Inspector reorder pass
//===----------------------------------------------------------------------===//

/// A bare program whose arrays the tests fill by hand.
struct ReorderFixture {
  std::unique_ptr<Program> P;
  Memory Mem;
  const Symbol *Ind, *X;

  ReorderFixture()
      : P(parseOrDie(R"(program t
          integer ind(16)
          real x(8)
        end)")),
        Mem(*P), Ind(P->findSymbol("ind")), X(P->findSymbol("x")) {}

  void setInd(std::vector<int64_t> V) {
    Buffer &B = Mem.buffer(Ind);
    for (size_t I = 0; I < V.size(); ++I)
      B.I[I] = V[I];
  }

  deptest::RuntimeCheck check() const {
    deptest::RuntimeCheck C;
    C.Kind = deptest::RuntimeCheckKind::InjectiveOnRange;
    C.Index = Ind;
    return C;
  }
};

TEST(LocalityReorder, BucketsByLineAndPinsLastIteration) {
  ReorderFixture F;
  // Targets alternate between line 2 (values 9..12) and line 0 (1..4)
  // at 4 elements per line; iteration 8's target lands on line 0.
  F.setInd({9, 1, 10, 2, 11, 3, 12, 4});
  ReorderOutcome O =
      buildIterationReorder(F.check(), F.Mem, 1, 8, /*LineElems=*/4);
  ASSERT_NE(O.Order, nullptr) << O.Detail;
  // Stable bucket sort of iterations 1..7 by target line, then 8 pinned.
  EXPECT_EQ(*O.Order, (std::vector<int64_t>{2, 4, 6, 1, 3, 5, 7, 8}));
  EXPECT_EQ(O.LinesTouched, 2u);
}

TEST(LocalityReorder, OrderIsAlwaysABijectionWithUpLast) {
  ReorderFixture F;
  F.setInd({7, 7, 1, 3, 3, 8, 2, 5, 4, 6, 1, 2});
  for (int64_t Up : {2, 5, 12}) {
    ReorderOutcome O =
        buildIterationReorder(F.check(), F.Mem, 1, Up, /*LineElems=*/4);
    ASSERT_NE(O.Order, nullptr) << O.Detail;
    ASSERT_EQ(O.Order->size(), size_t(Up));
    EXPECT_EQ(O.Order->back(), Up)
        << "original last iteration must run last";
    std::set<int64_t> Seen(O.Order->begin(), O.Order->end());
    EXPECT_EQ(Seen.size(), size_t(Up));
    EXPECT_EQ(*Seen.begin(), 1);
    EXPECT_EQ(*Seen.rbegin(), Up);
  }
}

TEST(LocalityReorder, RefusesUnreorderableShapes) {
  ReorderFixture F;
  F.setInd({1, 2, 3, 4, 5, 6, 7, 8});

  // Fewer than two iterations: nothing to reorder.
  ReorderOutcome One = buildIterationReorder(F.check(), F.Mem, 3, 3, 8);
  EXPECT_EQ(One.Order, nullptr);
  EXPECT_FALSE(One.Detail.empty());

  // A window that is not a 1:1 map of the iteration space.
  deptest::RuntimeCheck Shifted = F.check();
  Shifted.LoAdjust = 0;
  Shifted.UpAdjust = 1;
  EXPECT_EQ(buildIterationReorder(Shifted, F.Mem, 1, 8, 8).Order, nullptr);

  // No index array at all.
  deptest::RuntimeCheck NoIndex;
  NoIndex.Kind = deptest::RuntimeCheckKind::InjectiveOnRange;
  EXPECT_EQ(buildIterationReorder(NoIndex, F.Mem, 1, 8, 8).Order, nullptr);

  // A real-typed buffer cannot drive the bucketing.
  deptest::RuntimeCheck RealIdx = F.check();
  RealIdx.Index = F.X;
  EXPECT_EQ(buildIterationReorder(RealIdx, F.Mem, 1, 8, 8).Order, nullptr);

  // The window reaches past the index array's extent.
  EXPECT_EQ(buildIterationReorder(F.check(), F.Mem, 1, 20, 8).Order,
            nullptr);
}

//===----------------------------------------------------------------------===//
// Checksum bit-identity across modes x schedules x threads
//===----------------------------------------------------------------------===//

TEST(LocalityChecksum, BitIdenticalAcrossModesSchedulesAndThreads) {
  for (const char *Source : {PermutationScatter, CcsScale}) {
    Harness H(Source);
    const double Want = H.serialChecksum();
    for (sched::LocalityMode L : AllModes)
      for (Schedule S : AllSchedules)
        for (unsigned T : ThreadCounts) {
          ExecStats Stats;
          const double Got = H.run(L, T, S, &Stats);
          EXPECT_EQ(Got, Want)
              << "locality=" << sched::localityModeName(L)
              << " sched=" << scheduleName(S) << " T=" << T;
          if (L == sched::LocalityMode::Reorder && T >= 2) {
            EXPECT_GE(Stats.LocalityReorders + Stats.LocalityReordersCached,
                      1u)
                << "reorder mode must permute the inspected gather (T=" << T
                << ")";
          }
        }
  }
}

TEST(LocalityChecksum, ModelPicksAreCountedAndOffIsUntouched) {
  Harness H(PermutationScatter);
  ExecStats Off;
  H.run(sched::LocalityMode::Off, 4, Schedule::Static, &Off);
  EXPECT_EQ(Off.LocalityModelPicks, 0u);
  EXPECT_EQ(Off.LocalityReorders, 0u);
  ExecStats Model;
  H.run(sched::LocalityMode::Model, 4, Schedule::Static, &Model);
  EXPECT_GE(Model.LocalityModelPicks, 1u);
  EXPECT_EQ(Model.LocalityReorders, 0u)
      << "model mode must not permute iterations";
}

//===----------------------------------------------------------------------===//
// Permutation caching across invocations
//===----------------------------------------------------------------------===//

TEST(LocalityCache, SecondInvocationReusesVerdictAndPermutation) {
  // The scat loop runs twice; ind is untouched in between (only x, which
  // is not a check source, changes), so the second invocation must reuse
  // both the cached inspection verdict and the cached permutation.
  Harness H(R"(program t
    integer i, k, n
    integer ind(1000)
    real x(1000), y(1000)
    n = 1000
    init: do i = 1, n
      ind(i) = mod(i * 7, n) + 1
      x(i) = i * 0.5
      y(i) = mod(i, 9) * 0.25
    end do
    outer: do k = 1, 2
      scat: do i = 1, n
        x(ind(i)) = x(ind(i)) + y(i) * 0.5
      end do
    end do
  end)");
  const double Want = H.serialChecksum();
  ExecStats Stats;
  EXPECT_EQ(H.run(sched::LocalityMode::Reorder, 4, Schedule::Static, &Stats),
            Want);
  EXPECT_EQ(Stats.InspectionsRun, 1u);
  EXPECT_EQ(Stats.InspectionsCached, 1u);
  EXPECT_EQ(Stats.LocalityReorders, 1u);
  EXPECT_EQ(Stats.LocalityReordersCached, 1u);
}

//===----------------------------------------------------------------------===//
// Model predictions vs. measured footprints
//===----------------------------------------------------------------------===//

TEST(LocalityValidation, PredictedLinesBoundMeasuredFootprints) {
  // Serial run under an exact (period 1) profiler: for every array the
  // model classifies, the measured distinct-line footprint must satisfy
  // measured <= predicted <= measured * LineElems — the model is a sound
  // upper bound, and never slack by more than one full line per element.
  const char *Source = R"(program t
    integer i, n
    integer ind(1000)
    real x(1000), y(1000), z(1000)
    n = 1000
    init: do i = 1, n
      ind(i) = mod(i * 7, n) + 1
      x(i) = i * 0.5
      y(i) = 0.0
      z(i) = 1.0
    end do
    cont: do i = 1, n
      y(i) = x(i) * 2.0
    end do
    gath: do i = 1, n
      y(i) = z(ind(i)) + y(i)
    end do
  end)";
  Harness H(Source);
  prof::SessionOptions O;
  O.SamplePeriod = 1;
  O.MaxSamplesPerArray = 1 << 20;
  O.HardwareCounters = false;
  prof::Session S(O);
  {
    Interpreter I(*H.P);
    ExecOptions Opts;
    Opts.Prof = &S;
    I.run(Opts);
    S.finalizeAnalysis();
  }
  sched::GatherFootprintModel Model(*H.P);
  const unsigned Elems = Model.lineElems();
  unsigned Checked = 0;
  for (const prof::LoopProfile &LP : S.invocations()) {
    if (LP.Label != "cont" && LP.Label != "gath")
      continue;
    sched::FootprintScore Score = Model.score(H.loop(LP.Label));
    for (const prof::ArrayProfile &A : LP.Arrays) {
      const sched::ArrayFootprint *F = footprintFor(Score, A.Name);
      ASSERT_NE(F, nullptr) << LP.Label << "/" << A.Name;
      const uint64_t Predicted = F->predictLines(LP.NIter, Elems);
      EXPECT_LE(A.FootprintLines, Predicted)
          << LP.Label << "/" << A.Name << ": model must be an upper bound";
      EXPECT_LE(Predicted, A.FootprintLines * Elems)
          << LP.Label << "/" << A.Name << ": model too slack";
      ++Checked;
    }
  }
  EXPECT_GE(Checked, 5u) << "expected arrays from both loops";
}

//===----------------------------------------------------------------------===//
// Fault containment under a reordered dispatch
//===----------------------------------------------------------------------===//

TEST(LocalityFaultReplay, ReorderedLoopRollsBackAndReplaysBitIdentically) {
  Harness H(PermutationScatter);
  const double Want = H.serialChecksum();
  // Fault original iteration 500 mid-chunk, parallel dispatch only: the
  // reordered loop must roll back and the serial (source-order) replay
  // must recover bit-identical results.
  verify::FaultInjector Inj;
  Inj.faultAt("scat", 500, /*ParallelOnly=*/true);
  Interpreter I(*H.P);
  ExecOptions Opts;
  Opts.Plans = &H.Plan;
  Opts.Threads = 4;
  Opts.MinParallelWork = 0;
  Opts.RuntimeChecks = true;
  Opts.Locality = sched::LocalityMode::Reorder;
  Opts.Injector = &Inj;
  ASSERT_EQ(Opts.OnFault, FaultAction::Replay);
  ExecStats Stats;
  Memory M = I.run(Opts, &Stats);
  const FaultState &FS = I.faultState();
  EXPECT_FALSE(FS.Faulted) << FS.str();
  EXPECT_GE(FS.FaultsObserved, 1u);
  EXPECT_EQ(FS.Rollbacks, 1u);
  EXPECT_EQ(FS.Replays, 1u);
  EXPECT_EQ(FS.ReplaysRecovered, 1u);
  EXPECT_EQ(Stats.LocalityReorders, 1u)
      << "the faulting dispatch must actually have been reordered";
  EXPECT_EQ(M.checksumExcluding(deadPrivateIds(H.Plan)), Want)
      << "recovered reordered run must be bit-identical to serial";
}

TEST(LocalityFaultReplay, ReplayAttributesOriginalIterationOrder) {
  // A poisoned index (entry 500 targets element 2000 of a 1000-element
  // array) vouched for by a lying inspector: the reordered parallel
  // dispatch traps, and the serial replay must attribute the fault to the
  // *original* iteration 500 — permuted positions must never leak into
  // fault reports.
  Harness H(R"(program t
    integer i, n
    integer ind(1000)
    real x(1000)
    n = 1000
    fill: do i = 1, n
      ind(i) = mod(i * 7, n) + 1
      x(i) = i * 0.25
    end do
    ind(500) = 2000
    scat: do i = 1, n
      x(ind(i)) = x(ind(i)) + 1.0
    end do
  end)");
  const xform::LoopReport *Rep = H.Plan.reportFor("scat");
  ASSERT_NE(Rep, nullptr);
  ASSERT_TRUE(Rep->RuntimeConditional);
  verify::FaultInjector Inj;
  Inj.skipInspectionOf("scat");
  Interpreter I(*H.P);
  ExecOptions Opts;
  Opts.Plans = &H.Plan;
  Opts.Threads = 4;
  Opts.MinParallelWork = 0;
  Opts.RuntimeChecks = true;
  Opts.Locality = sched::LocalityMode::Reorder;
  Opts.Injector = &Inj;
  ExecStats Stats;
  I.run(Opts, &Stats);
  const FaultState &FS = I.faultState();
  ASSERT_TRUE(FS.Faulted);
  const RuntimeFault &F = FS.Fault;
  EXPECT_EQ(F.Kind, FaultKind::OutOfBounds);
  EXPECT_TRUE(F.DuringReplay);
  EXPECT_FALSE(F.InParallel);
  EXPECT_EQ(F.Loop, "scat");
  ASSERT_TRUE(F.HasIteration);
  EXPECT_EQ(F.Iteration, 500);
  ASSERT_TRUE(F.HasValue);
  EXPECT_EQ(F.Value, 2000);
  EXPECT_EQ(FS.Rollbacks, 1u);
  EXPECT_EQ(FS.Replays, 1u);
  EXPECT_EQ(FS.ReplaysRecovered, 0u);
}

} // namespace
