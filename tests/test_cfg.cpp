//===- tests/test_cfg.cpp - FlatCfg and HCG structure tests ---------------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "analysis/BoundedDfs.h"
#include "cfg/FlatCfg.h"
#include "cfg/Hcg.h"

using namespace iaa;
using namespace iaa::cfg;
using namespace iaa::mf;
using iaa::test::parseOrDie;

namespace {

TEST(FlatCfg, StraightLine) {
  auto P = parseOrDie(R"(program t
    integer a, b
    a = 1
    b = 2
    a = 3
  end)");
  FlatCfg G(P->mainProcedure()->body());
  // entry + 3 stmts + exit.
  EXPECT_EQ(G.size(), 5u);
  EXPECT_EQ(G.node(G.entry()).Succs.size(), 1u);
  EXPECT_EQ(G.node(G.exit()).Preds.size(), 1u);
}

TEST(FlatCfg, IfDiamond) {
  auto P = parseOrDie(R"(program t
    integer a, b
    a = 1
    if (a > 0) then
      b = 1
    else
      b = 2
    end if
    a = 4
  end)");
  FlatCfg G(P->mainProcedure()->body());
  const auto *If = P->mainProcedure()->body()[1];
  unsigned Cond = G.nodeFor(If);
  ASSERT_NE(Cond, ~0u);
  EXPECT_EQ(G.node(Cond).Succs.size(), 2u);
  // The statement after the if has two predecessors (both branch ends).
  unsigned After = G.nodeFor(P->mainProcedure()->body()[2]);
  EXPECT_EQ(G.node(After).Preds.size(), 2u);
}

TEST(FlatCfg, EmptyElseFallsThrough) {
  auto P = parseOrDie(R"(program t
    integer a, b
    a = 1
    if (a > 0) then
      b = 1
    end if
    a = 4
  end)");
  FlatCfg G(P->mainProcedure()->body());
  unsigned After = G.nodeFor(P->mainProcedure()->body()[2]);
  // Preds: the then body's end and the condition itself.
  EXPECT_EQ(G.node(After).Preds.size(), 2u);
}

TEST(FlatCfg, LoopBackEdges) {
  auto P = parseOrDie(R"(program t
    integer i, n, a
    n = 3
    do i = 1, n
      a = i
    end do
  end)");
  FlatCfg WithBack(P->mainProcedure()->body(), true);
  FlatCfg NoBack(P->mainProcedure()->body(), false);
  const auto *Loop = P->mainProcedure()->body()[1];
  unsigned HeadW = WithBack.nodeFor(Loop);
  unsigned HeadN = NoBack.nodeFor(Loop);
  // With back edges the header has two predecessors (entry path + body).
  EXPECT_EQ(WithBack.node(HeadW).Preds.size(), 2u);
  EXPECT_EQ(NoBack.node(HeadN).Preds.size(), 1u);
}

TEST(FlatCfg, WhileLoopCyclic) {
  auto P = parseOrDie(R"(program t
    integer p
    p = 3
    while (p > 0)
      p = p - 1
    end while
  end)");
  FlatCfg G(P->mainProcedure()->body(), true);
  const auto *Wh = P->mainProcedure()->body()[1];
  unsigned Head = G.nodeFor(Wh);
  // A cycle exists: the decrement's successor includes the header.
  bool FoundCycle = false;
  for (unsigned I = 0; I < G.size(); ++I)
    for (unsigned S : G.node(I).Succs)
      if (S == Head && I != G.entry())
        FoundCycle = true;
  EXPECT_TRUE(FoundCycle);
}

TEST(FlatCfg, NestedLoopsFlattened) {
  auto P = parseOrDie(R"(program t
    integer i, j, n, a
    n = 2
    do i = 1, n
      do j = 1, n
        a = i + j
      end do
    end do
  end)");
  FlatCfg G(P->mainProcedure()->body());
  // Inner loop statements appear in the same graph.
  const auto *Outer = cast<DoStmt>(P->mainProcedure()->body()[1]);
  const auto *Inner = cast<DoStmt>(Outer->body()[0]);
  EXPECT_NE(G.nodeFor(Inner), ~0u);
  EXPECT_NE(G.nodeFor(Inner->body()[0]), ~0u);
}

//===----------------------------------------------------------------------===//
// Bounded DFS semantics
//===----------------------------------------------------------------------===//

TEST(BoundedDfs, BoundStopsExpansion) {
  auto P = parseOrDie(R"(program t
    integer a, b, c
    a = 1
    b = 2
    c = 3
  end)");
  FlatCfg G(P->mainProcedure()->body());
  unsigned Start = G.nodeFor(P->mainProcedure()->body()[0]);
  unsigned Bound = G.nodeFor(P->mainProcedure()->body()[1]);
  unsigned Jail = G.nodeFor(P->mainProcedure()->body()[2]);
  analysis::BdfsStats Stats;
  bool Ok = analysis::boundedDfs(
      G, Start, [&](unsigned N) { return N == Bound; },
      [&](unsigned N) { return N == Jail; }, &Stats);
  // The jail lies beyond the bound: never reached.
  EXPECT_TRUE(Ok);
  EXPECT_EQ(Stats.NodesVisited, 2u); // Start + bound.
}

TEST(BoundedDfs, JailFails) {
  auto P = parseOrDie(R"(program t
    integer a, b
    a = 1
    b = 2
  end)");
  FlatCfg G(P->mainProcedure()->body());
  unsigned Start = G.nodeFor(P->mainProcedure()->body()[0]);
  unsigned Jail = G.nodeFor(P->mainProcedure()->body()[1]);
  bool Ok = analysis::boundedDfs(
      G, Start, [](unsigned) { return false; },
      [&](unsigned N) { return N == Jail; });
  EXPECT_FALSE(Ok);
}

TEST(BoundedDfs, CycleReachesStartAgain) {
  // Within a loop, a jailed start node must be re-reachable through the
  // back edge (the paper checks fjailed before the visited test).
  auto P = parseOrDie(R"(program t
    integer i, n, p
    n = 3
    do i = 1, n
      p = p + 1
    end do
  end)");
  const auto *Loop = cast<DoStmt>(P->mainProcedure()->body()[1]);
  FlatCfg G(P->mainProcedure()->body(), true);
  unsigned Inc = G.nodeFor(Loop->body()[0]);
  bool Ok = analysis::boundedDfs(
      G, Inc, [](unsigned) { return false; },
      [&](unsigned N) { return N == Inc; });
  EXPECT_FALSE(Ok) << "the increment reaches itself through the back edge";
}

//===----------------------------------------------------------------------===//
// HCG
//===----------------------------------------------------------------------===//

TEST(Hcg, SectionsPerProcedureAndLoop) {
  auto P = parseOrDie(R"(program t
    integer i, n, a
    procedure helper
      a = 1
    end
    n = 3
    do i = 1, n
      a = i
    end do
    call helper
  end)");
  Hcg G(*P);
  HcgSection *MainSec = G.procSection(P->mainProcedure());
  ASSERT_NE(MainSec, nullptr);
  HcgSection *HelperSec = G.procSection(P->findProcedure("helper"));
  ASSERT_NE(HelperSec, nullptr);
  const auto *Loop = cast<DoStmt>(P->mainProcedure()->body()[1]);
  HcgSection *LoopSec = G.loopSection(Loop);
  ASSERT_NE(LoopSec, nullptr);
  EXPECT_EQ(LoopSec->ownerNode()->S, Loop);
  EXPECT_EQ(LoopSec->ownerNode()->Parent, MainSec);
}

TEST(Hcg, TopoOrderRespectsEdges) {
  auto P = parseOrDie(R"(program t
    integer a, b
    a = 1
    if (a > 0) then
      b = 1
    else
      b = 2
    end if
    a = 3
  end)");
  Hcg G(*P);
  HcgSection *Sec = G.procSection(P->mainProcedure());
  for (const auto &N : Sec->nodes())
    for (HcgNode *Succ : N->Succs)
      EXPECT_LT(N->TopoIdx, Succ->TopoIdx);
  EXPECT_EQ(Sec->entry()->TopoIdx, 0u);
}

TEST(Hcg, OnAllPathsExcludesBranchArms) {
  auto P = parseOrDie(R"(program t
    integer a, b
    a = 1
    if (a > 0) then
      b = 1
    end if
    a = 3
  end)");
  Hcg G(*P);
  const auto *Main = P->mainProcedure();
  EXPECT_TRUE(G.nodeFor(Main->body()[0])->OnAllPaths);
  EXPECT_TRUE(G.nodeFor(Main->body()[2])->OnAllPaths);
  const auto *If = cast<IfStmt>(Main->body()[1]);
  EXPECT_FALSE(G.nodeFor(If->thenBody()[0])->OnAllPaths);
}

TEST(Hcg, CallSitesResolved) {
  auto P = parseOrDie(R"(program t
    integer a
    procedure f
      a = 1
    end
    call f
    call f
  end)");
  Hcg G(*P);
  EXPECT_EQ(G.callSites(P->findProcedure("f")).size(), 2u);
  EXPECT_EQ(G.callSites(P->mainProcedure()).size(), 0u);
}

TEST(Hcg, NestedLoopSections) {
  auto P = parseOrDie(R"(program t
    integer i, j, n, a
    n = 3
    do i = 1, n
      do j = 1, n
        a = i
      end do
    end do
  end)");
  Hcg G(*P);
  const auto *Outer = cast<DoStmt>(P->mainProcedure()->body()[1]);
  const auto *Inner = cast<DoStmt>(Outer->body()[0]);
  HcgSection *OuterSec = G.loopSection(Outer);
  HcgSection *InnerSec = G.loopSection(Inner);
  ASSERT_NE(OuterSec, nullptr);
  ASSERT_NE(InnerSec, nullptr);
  EXPECT_EQ(InnerSec->ownerNode()->Parent, OuterSec);
}

TEST(Hcg, WhileIsOpaqueNode) {
  auto P = parseOrDie(R"(program t
    integer p
    p = 5
    while (p > 0)
      p = p - 1
    end while
  end)");
  Hcg G(*P);
  HcgNode *N = G.nodeFor(P->mainProcedure()->body()[1]);
  ASSERT_NE(N, nullptr);
  EXPECT_EQ(N->K, HcgNode::Kind::While);
  EXPECT_EQ(N->BodySection, nullptr);
}

} // namespace
