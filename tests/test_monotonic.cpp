//===- tests/test_monotonic.cpp - Monotonicity property tests -------------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "analysis/PropertySolver.h"
#include "cfg/Hcg.h"
#include "deptest/DependenceTest.h"

using namespace iaa;
using namespace iaa::analysis;
using namespace iaa::mf;
using namespace iaa::sec;
using namespace iaa::sym;
using iaa::test::parseOrDie;

namespace {

struct MonoFixture {
  std::unique_ptr<Program> P;
  std::unique_ptr<SymbolUses> Uses;
  std::unique_ptr<cfg::Hcg> G;
  std::unique_ptr<PropertySolver> Solver;

  explicit MonoFixture(const std::string &Source) {
    P = iaa::test::parseOrDie(Source);
    Uses = std::make_unique<SymbolUses>(*P);
    G = std::make_unique<cfg::Hcg>(*P);
    Solver = std::make_unique<PropertySolver>(*G, *Uses);
  }

  PropertyResult verify(const std::string &AtLabel, const char *Array,
                        bool Strict, int64_t LoC, const SymExpr &Hi) {
    MonotonicChecker C(P->findSymbol(Array), Strict, *Uses);
    Section S = Section::interval(SymExpr::constant(LoC), Hi);
    return Solver->verifyBefore(P->findLoop(AtLabel), C, S);
  }
};

TEST(Monotonic, PositiveStepRecurrenceIsStrict) {
  MonoFixture F(R"(program t
    integer i, n, t
    integer off(101)
    n = 100
    off(1) = 1
    do i = 1, n
      off(i + 1) = off(i) + i
    end do
    use: do i = 1, n
      t = off(i)
    end do
  end)");
  const Symbol *N = F.P->findSymbol("n");
  PropertyResult R =
      F.verify("use", "off", /*Strict=*/true, 1, SymExpr::var(N) - 1);
  EXPECT_TRUE(R.Verified);
}

TEST(Monotonic, ZeroStepIsNonStrictOnly) {
  MonoFixture F(R"(program t
    integer i, n, t
    integer off(101), len(100)
    n = 100
    do i = 1, n
      len(i) = mod(i, 5)
    end do
    off(1) = 1
    do i = 1, n
      off(i + 1) = off(i) + len(i)
    end do
    use: do i = 1, n
      t = off(i)
    end do
  end)");
  const Symbol *N = F.P->findSymbol("n");
  // len can be zero: strictness is not provable; and because len's bounds
  // are not visible at statement level, even the non-strict check must
  // fail conservatively (the step is an opaque array element).
  PropertyResult Strict =
      F.verify("use", "off", true, 1, SymExpr::var(N) - 1);
  EXPECT_FALSE(Strict.Verified);
}

TEST(Monotonic, GatherLoopIsStrictlyIncreasing) {
  MonoFixture F(R"(program t
    integer i, j, n, p, q, t
    real x(500)
    integer ind(500)
    n = 10
    p = 400
    q = 0
    do i = 1, p
      if (x(i) > 0) then
        q = q + 1
        ind(q) = i
      end if
    end do
    use: do j = 1, q
      t = ind(j)
    end do
  end)");
  const Symbol *Q = F.P->findSymbol("q");
  PropertyResult R =
      F.verify("use", "ind", true, 1, SymExpr::var(Q) - 1);
  EXPECT_TRUE(R.Verified);
}

// Pins the strict/non-strict verdicts across the constant-step sweep
// d ∈ {-1, 0, 2}: negative steps prove nothing, a zero step is monotone
// but not strict, and any positive step proves both variants.
TEST(Monotonic, ConstantStepSweep) {
  struct Case {
    const char *Step;  ///< Source text of the recurrence step.
    bool NonStrict;    ///< Expected non-strict verdict.
    bool Strict;       ///< Expected strict verdict.
  };
  const Case Cases[] = {
      {"- 1", false, false},
      {"+ 0", true, false},
      {"+ 2", true, true},
  };
  for (const Case &C : Cases) {
    std::string Source = R"(program t
      integer i, n, t
      integer off(101)
      n = 100
      off(1) = 1000
      do i = 1, n
        off(i + 1) = off(i) )" + std::string(C.Step) + R"(
      end do
      use: do i = 1, n
        t = off(i)
      end do
    end)";
    MonoFixture F(Source);
    const Symbol *N = F.P->findSymbol("n");
    EXPECT_EQ(F.verify("use", "off", false, 1, SymExpr::var(N) - 1).Verified,
              C.NonStrict)
        << "non-strict, step " << C.Step;
    EXPECT_EQ(F.verify("use", "off", true, 1, SymExpr::var(N) - 1).Verified,
              C.Strict)
        << "strict, step " << C.Step;
  }
}

// A non-unit build stride writes only every other element: the pairs the
// recurrence skips are unordered, so both variants must fail (the generic
// loop summary kills on non-unit steps, and the recurrence solver derives
// no fact for such loops).
TEST(Monotonic, NonUnitBuildStrideFails) {
  MonoFixture F(R"(program t
    integer i, n, t
    integer off(102)
    n = 100
    off(1) = 1
    do i = 1, n, 2
      off(i + 1) = off(i) + 1
    end do
    use: do i = 1, n
      t = off(i)
    end do
  end)");
  const Symbol *N = F.P->findSymbol("n");
  EXPECT_FALSE(
      F.verify("use", "off", false, 1, SymExpr::var(N) - 1).Verified);
  EXPECT_FALSE(
      F.verify("use", "off", true, 1, SymExpr::var(N) - 1).Verified);
}

TEST(Monotonic, DecreasingRecurrenceFails) {
  MonoFixture F(R"(program t
    integer i, n, t
    integer off(101)
    n = 100
    off(1) = 1000
    do i = 1, n
      off(i + 1) = off(i) - 1
    end do
    use: do i = 1, n
      t = off(i)
    end do
  end)");
  const Symbol *N = F.P->findSymbol("n");
  EXPECT_FALSE(
      F.verify("use", "off", false, 1, SymExpr::var(N) - 1).Verified);
}

TEST(Monotonic, ScatterWriteKills) {
  MonoFixture F(R"(program t
    integer i, n, t
    integer off(101), perm(10)
    n = 100
    off(1) = 1
    do i = 1, n
      off(i + 1) = off(i) + i
    end do
    off(perm(1)) = 0
    use: do i = 1, n
      t = off(i)
    end do
  end)");
  const Symbol *N = F.P->findSymbol("n");
  EXPECT_FALSE(
      F.verify("use", "off", true, 1, SymExpr::var(N) - 1).Verified);
}

TEST(Monotonic, DependenceTestUsesStrictMonotonicity) {
  // y(off(i)): off is strictly increasing but was NOT built by a gather
  // loop, so the injective checker cannot help — the monotonic extension
  // proves distinctness instead.
  auto P = parseOrDie(R"(program t
    integer i, n, t
    integer off(101)
    real y(6000), tot
    n = 100
    off(1) = 1
    do i = 1, n
      off(i + 1) = off(i) + i
    end do
    lp: do i = 1, n
      y(off(i)) = y(off(i)) + 1.0
    end do
    tot = y(off(3))
  end)");
  SymbolUses Uses(*P);
  cfg::Hcg G(*P);
  deptest::DependenceTester T(G, Uses, /*EnableIAA=*/true);
  deptest::LoopDepResult R = T.testLoop(P->findLoop("lp"), {});
  EXPECT_TRUE(R.Independent);
  ASSERT_EQ(R.Arrays.size(), 1u);
  bool UsedMono = false;
  for (const std::string &Prop : R.Arrays[0].PropertiesUsed)
    if (Prop.find("MONO") != std::string::npos)
      UsedMono = true;
  EXPECT_TRUE(UsedMono) << R.Arrays[0].Detail;
}

TEST(Monotonic, PropertyKindNames) {
  EXPECT_STREQ(propertyKindName(PropertyKind::Monotonic), "MONO");
  EXPECT_STREQ(propertyKindName(PropertyKind::Injective), "INJ");
  EXPECT_STREQ(propertyKindName(PropertyKind::ClosedFormValue), "CFV");
  EXPECT_STREQ(propertyKindName(PropertyKind::ClosedFormDistance), "CFD");
  EXPECT_STREQ(propertyKindName(PropertyKind::ClosedFormBound), "CFB");
}

} // namespace
