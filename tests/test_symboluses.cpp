//===- tests/test_symboluses.cpp - Use sets, constants, postpass ----------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "analysis/GlobalConstants.h"
#include "analysis/SymbolUses.h"
#include "benchprogs/Benchmarks.h"
#include "xform/Parallelizer.h"
#include "xform/Postpass.h"

using namespace iaa;
using namespace iaa::analysis;
using namespace iaa::mf;
using iaa::test::parseOrDie;

namespace {

TEST(SymbolUses, DirectReadsAndWrites) {
  auto P = parseOrDie(R"(program t
    integer a, b, c
    real x(10)
    a = b + 1
    x(c) = 2.0
  end)");
  SymbolUses U(*P);
  UseSet Main = U.bodyUses(P->mainProcedure()->body());
  EXPECT_TRUE(Main.writes(P->findSymbol("a")));
  EXPECT_TRUE(Main.reads(P->findSymbol("b")));
  EXPECT_TRUE(Main.writes(P->findSymbol("x")));
  EXPECT_TRUE(Main.reads(P->findSymbol("c"))) << "subscripts are reads";
  EXPECT_FALSE(Main.reads(P->findSymbol("a")));
}

TEST(SymbolUses, TransitiveThroughCalls) {
  auto P = parseOrDie(R"(program t
    integer a, b
    procedure leaf
      a = b
    end
    procedure mid
      call leaf
    end
    call mid
  end)");
  SymbolUses U(*P);
  const UseSet &Mid = U.procedureUses(P->findProcedure("mid"));
  EXPECT_TRUE(Mid.writes(P->findSymbol("a")));
  EXPECT_TRUE(Mid.reads(P->findSymbol("b")));
}

TEST(SymbolUses, MutualCallsConverge) {
  // Procedures calling each other in sequence (non-recursive chain) must
  // stabilize with the union of all effects.
  auto P = parseOrDie(R"(program t
    integer a, b, c
    procedure pc
      c = 1
    end
    procedure pb
      b = 1
      call pc
    end
    procedure pa
      a = 1
      call pb
    end
    call pa
  end)");
  SymbolUses U(*P);
  const UseSet &Pa = U.procedureUses(P->findProcedure("pa"));
  EXPECT_TRUE(Pa.writes(P->findSymbol("a")));
  EXPECT_TRUE(Pa.writes(P->findSymbol("b")));
  EXPECT_TRUE(Pa.writes(P->findSymbol("c")));
}

TEST(SymbolUses, LoopHeaderExprsCounted) {
  auto P = parseOrDie(R"(program t
    integer i, lo, hi, st, a
    do i = lo, hi, st
      a = 1
    end do
  end)");
  SymbolUses U(*P);
  UseSet Main = U.bodyUses(P->mainProcedure()->body());
  EXPECT_TRUE(Main.reads(P->findSymbol("lo")));
  EXPECT_TRUE(Main.reads(P->findSymbol("hi")));
  EXPECT_TRUE(Main.reads(P->findSymbol("st")));
  EXPECT_TRUE(Main.writes(P->findSymbol("i")));
}

TEST(GlobalConstants, SingleConstantAssignment) {
  auto P = parseOrDie(R"(program t
    integer n, m, k, i
    n = 100
    m = n + 1
    k = 5
    k = 6
    do i = 1, 3
    end do
  end)");
  GlobalConstants C(*P);
  EXPECT_EQ(C.valueOf(P->findSymbol("n")), 100);
  EXPECT_FALSE(C.valueOf(P->findSymbol("m")).has_value())
      << "m's RHS was not a literal at collection time";
  EXPECT_FALSE(C.valueOf(P->findSymbol("k")).has_value())
      << "k is assigned twice";
  EXPECT_FALSE(C.valueOf(P->findSymbol("i")).has_value())
      << "loop indices are never constants";
}

TEST(GlobalConstants, FoldedExpressionCounts) {
  auto P = parseOrDie(R"(program t
    integer n
    n = 2 * 50 + 7
  end)");
  GlobalConstants C(*P);
  EXPECT_EQ(C.valueOf(P->findSymbol("n")), 107);
}

TEST(GlobalConstants, BindAllProvidesRanges) {
  auto P = parseOrDie(R"(program t
    integer n
    n = 42
  end)");
  GlobalConstants C(*P);
  sym::RangeEnv Env;
  C.bindAll(Env);
  EXPECT_TRUE(sym::provablyLE(sym::SymExpr::var(P->findSymbol("n")),
                              sym::SymExpr::constant(42), Env));
  EXPECT_TRUE(sym::provablyLE(sym::SymExpr::constant(42),
                              sym::SymExpr::var(P->findSymbol("n")), Env));
}

//===----------------------------------------------------------------------===//
// Postpass
//===----------------------------------------------------------------------===//

TEST(Postpass, DirectivesInFrontOfParallelLoops) {
  auto P = parseOrDie(R"(program t
    integer i, n
    real s
    real x(100)
    n = 100
    init: do i = 1, n
      x(i) = i * 1.0
    end do
    red: do i = 1, n
      s = s + x(i)
    end do
  end)");
  xform::PipelineResult R =
      xform::parallelize(*P, xform::PipelineMode::Full);
  std::string Out = xform::emitAnnotatedSource(*P, R);
  EXPECT_NE(Out.find("!$iaa parallel do"), std::string::npos);
  EXPECT_NE(Out.find("reduction(+:s)"), std::string::npos);
}

TEST(Postpass, SerialLoopsUnannotated) {
  auto P = parseOrDie(R"(program t
    integer i, n
    real x(101)
    n = 100
    rec: do i = 1, n
      x(i + 1) = x(i) * 0.5
    end do
  end)");
  xform::PipelineResult R =
      xform::parallelize(*P, xform::PipelineMode::Full);
  std::string Out = xform::emitAnnotatedSource(*P, R);
  EXPECT_EQ(Out.find("!$iaa"), std::string::npos);
}

TEST(Postpass, OutputReparses) {
  auto P = parseOrDie(benchprogs::fig14Source());
  xform::PipelineResult R =
      xform::parallelize(*P, xform::PipelineMode::Full);
  std::string Out = xform::emitAnnotatedSource(*P, R);
  DiagnosticEngine Diags;
  auto P2 = mf::parseProgram(Out, Diags);
  EXPECT_NE(P2, nullptr) << Diags.str() << "\n" << Out;
}

TEST(Postpass, PrivateClauseListsPlanSymbols) {
  auto P = parseOrDie(benchprogs::fig1aSource());
  xform::PipelineResult R =
      xform::parallelize(*P, xform::PipelineMode::Full);
  std::string Out = xform::emitAnnotatedSource(*P, R);
  // Fig. 1(a)'s dok loop privatizes x (the CW array) and the scalars.
  size_t Dok = Out.find("dok: do");
  ASSERT_NE(Dok, std::string::npos);
  size_t Dir = Out.rfind("!$iaa", Dok);
  ASSERT_NE(Dir, std::string::npos);
  std::string Directive = Out.substr(Dir, Dok - Dir);
  EXPECT_NE(Directive.find("x"), std::string::npos) << Directive;
  EXPECT_NE(Directive.find("p"), std::string::npos) << Directive;
}

} // namespace
