//===- tests/test_support.cpp - Support layer tests -----------------------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "support/Casting.h"
#include "support/Diagnostics.h"
#include "support/Saturating.h"
#include "support/Timer.h"

#include <limits>

using namespace iaa;
using namespace iaa::mf;
using iaa::test::parseOrDie;

namespace {

TEST(Support, CastingTemplates) {
  auto P = parseOrDie(R"(program t
    integer a
    real x(3)
    a = 1
    x(1) = 2.0
  end)");
  Stmt *S0 = P->mainProcedure()->body()[0];
  Stmt *S1 = P->mainProcedure()->body()[1];

  EXPECT_TRUE(isa<AssignStmt>(S0));
  EXPECT_FALSE(isa<IfStmt>(S0));
  EXPECT_TRUE((isa<IfStmt, AssignStmt>(S0))) << "variadic isa";

  AssignStmt *AS = dyn_cast<AssignStmt>(S0);
  ASSERT_NE(AS, nullptr);
  EXPECT_TRUE(isa<VarRef>(AS->lhs()));
  EXPECT_EQ(dyn_cast<IfStmt>(S0), nullptr);

  const AssignStmt *AS1 = cast<AssignStmt>(static_cast<const Stmt *>(S1));
  EXPECT_NE(AS1->arrayTarget(), nullptr);

  Stmt *Null = nullptr;
  EXPECT_FALSE(isa_and_present<AssignStmt>(Null));
  EXPECT_EQ(dyn_cast_if_present<AssignStmt>(Null), nullptr);
  EXPECT_TRUE(isa_and_present<AssignStmt>(S0));
}

TEST(Support, DiagnosticsFormatting) {
  DiagnosticEngine D;
  D.error({3, 7}, "bad thing");
  D.warning({1, 1}, "odd thing");
  D.note(SourceLoc{}, "context");
  EXPECT_TRUE(D.hasErrors());
  EXPECT_EQ(D.errorCount(), 1u);
  EXPECT_EQ(D.diagnostics().size(), 3u);
  std::string S = D.str();
  EXPECT_NE(S.find("3:7: error: bad thing"), std::string::npos);
  EXPECT_NE(S.find("1:1: warning: odd thing"), std::string::npos);
  EXPECT_NE(S.find("<unknown>: note: context"), std::string::npos);
}

TEST(Support, SourceLocValidity) {
  SourceLoc Unknown;
  EXPECT_FALSE(Unknown.isValid());
  SourceLoc Known{4, 2};
  EXPECT_TRUE(Known.isValid());
  EXPECT_EQ(Known.str(), "4:2");
  EXPECT_TRUE((SourceLoc{4, 2} == Known));
}

TEST(Support, AccumulatingTimer) {
  AccumulatingTimer T;
  EXPECT_DOUBLE_EQ(T.seconds(), 0.0);
  {
    TimeRegion R(T);
    volatile double Sink = 0;
    for (int I = 0; I < 100000; ++I)
      Sink = Sink + I * 0.5;
    (void)Sink;
  }
  double First = T.seconds();
  EXPECT_GT(First, 0.0);
  {
    TimeRegion R(T);
  }
  EXPECT_GE(T.seconds(), First);
  T.clear();
  EXPECT_DOUBLE_EQ(T.seconds(), 0.0);
}

TEST(Support, AccumulatingTimerDoubleStart) {
  // start() while running must bank the open interval instead of silently
  // discarding it.
  AccumulatingTimer T;
  T.start();
  volatile double Sink = 0;
  for (int I = 0; I < 100000; ++I)
    Sink = Sink + I * 0.5;
  (void)Sink;
  double Banked = T.seconds();
  EXPECT_GT(Banked, 0.0);
  T.start(); // Restart mid-interval: the elapsed time above must survive.
  T.stop();
  EXPECT_GE(T.seconds(), Banked);

  // stop() when not running is a no-op.
  double AfterStop = T.seconds();
  T.stop();
  EXPECT_DOUBLE_EQ(T.seconds(), AfterStop);
}

TEST(Support, ProgramTraversalOrder) {
  auto P = parseOrDie(R"(program t
    integer a, i
    procedure f
      a = 1
    end
    a = 2
    do i = 1, 3
      a = 3
    end do
  end)");
  std::vector<StmtKind> Kinds;
  P->forEachStmt([&](Stmt *S) { Kinds.push_back(S->kind()); });
  // Procedure f first (assign), then main: assign, do, inner assign.
  ASSERT_EQ(Kinds.size(), 4u);
  EXPECT_EQ(Kinds[0], StmtKind::Assign);
  EXPECT_EQ(Kinds[1], StmtKind::Assign);
  EXPECT_EQ(Kinds[2], StmtKind::Do);
  EXPECT_EQ(Kinds[3], StmtKind::Assign);
}

TEST(Support, FindLoopReturnsFirstMatch) {
  auto P = parseOrDie(R"(program t
    integer i, a
    x1: do i = 1, 3
      a = 1
    end do
    x2: do i = 1, 3
      a = 2
    end do
  end)");
  EXPECT_NE(P->findLoop("x1"), nullptr);
  EXPECT_NE(P->findLoop("x2"), nullptr);
  EXPECT_EQ(P->findLoop("nope"), nullptr);
  EXPECT_NE(P->findLoop("x1"), P->findLoop("x2"));
}

TEST(Support, StmtIdsAreDense) {
  auto P = parseOrDie(R"(program t
    integer a, i
    a = 1
    do i = 1, 2
      a = 2
    end do
  end)");
  std::set<unsigned> Ids;
  P->forEachStmt([&](Stmt *S) { Ids.insert(S->id()); });
  EXPECT_EQ(Ids.size(), 3u);
  for (unsigned Id : Ids)
    EXPECT_LT(Id, P->numStmts());
}

TEST(Support, SaturatingMultiply) {
  constexpr int64_t Max = std::numeric_limits<int64_t>::max();
  constexpr int64_t Min = std::numeric_limits<int64_t>::min();

  // In-range products are exact.
  EXPECT_EQ(satMul(6, 7), 42);
  EXPECT_EQ(satMul(-6, 7), -42);
  EXPECT_EQ(satMul(0, Max), 0);
  EXPECT_EQ(satMul(1, Min), Min);

  // The profitability-guard shape: a huge trip count times a deeply nested
  // body weight (16 per nesting level) must clamp, not wrap negative.
  int64_t Weight = 2;
  for (int Level = 0; Level < 20; ++Level)
    Weight = satMul(16, Weight);
  EXPECT_EQ(Weight, Max);
  EXPECT_EQ(satMul(int64_t(1) << 40, Weight), Max);
  EXPECT_GE(satMul(int64_t(1) << 40, int64_t(1) << 40), 1024)
      << "a clamped estimate still clears any positive threshold";

  // Sign handling at the extremes.
  EXPECT_EQ(satMul(Max, 2), Max);
  EXPECT_EQ(satMul(Max, -2), Min);
  EXPECT_EQ(satMul(Min, 2), Min);
  EXPECT_EQ(satMul(Min, -1), Max);
}

TEST(Support, SaturatingAdd) {
  constexpr int64_t Max = std::numeric_limits<int64_t>::max();
  constexpr int64_t Min = std::numeric_limits<int64_t>::min();
  EXPECT_EQ(satAdd(2, 3), 5);
  EXPECT_EQ(satAdd(Max, 1), Max);
  EXPECT_EQ(satAdd(Max, Max), Max);
  EXPECT_EQ(satAdd(Min, -1), Min);
  EXPECT_EQ(satAdd(Max, Min), -1);
}

} // namespace
