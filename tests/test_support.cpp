//===- tests/test_support.cpp - Support layer tests -----------------------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "support/Casting.h"
#include "support/Diagnostics.h"
#include "support/Timer.h"

using namespace iaa;
using namespace iaa::mf;
using iaa::test::parseOrDie;

namespace {

TEST(Support, CastingTemplates) {
  auto P = parseOrDie(R"(program t
    integer a
    real x(3)
    a = 1
    x(1) = 2.0
  end)");
  Stmt *S0 = P->mainProcedure()->body()[0];
  Stmt *S1 = P->mainProcedure()->body()[1];

  EXPECT_TRUE(isa<AssignStmt>(S0));
  EXPECT_FALSE(isa<IfStmt>(S0));
  EXPECT_TRUE((isa<IfStmt, AssignStmt>(S0))) << "variadic isa";

  AssignStmt *AS = dyn_cast<AssignStmt>(S0);
  ASSERT_NE(AS, nullptr);
  EXPECT_TRUE(isa<VarRef>(AS->lhs()));
  EXPECT_EQ(dyn_cast<IfStmt>(S0), nullptr);

  const AssignStmt *AS1 = cast<AssignStmt>(static_cast<const Stmt *>(S1));
  EXPECT_NE(AS1->arrayTarget(), nullptr);

  Stmt *Null = nullptr;
  EXPECT_FALSE(isa_and_present<AssignStmt>(Null));
  EXPECT_EQ(dyn_cast_if_present<AssignStmt>(Null), nullptr);
  EXPECT_TRUE(isa_and_present<AssignStmt>(S0));
}

TEST(Support, DiagnosticsFormatting) {
  DiagnosticEngine D;
  D.error({3, 7}, "bad thing");
  D.warning({1, 1}, "odd thing");
  D.note({}, "context");
  EXPECT_TRUE(D.hasErrors());
  EXPECT_EQ(D.errorCount(), 1u);
  EXPECT_EQ(D.diagnostics().size(), 3u);
  std::string S = D.str();
  EXPECT_NE(S.find("3:7: error: bad thing"), std::string::npos);
  EXPECT_NE(S.find("1:1: warning: odd thing"), std::string::npos);
  EXPECT_NE(S.find("<unknown>: note: context"), std::string::npos);
}

TEST(Support, SourceLocValidity) {
  SourceLoc Unknown;
  EXPECT_FALSE(Unknown.isValid());
  SourceLoc Known{4, 2};
  EXPECT_TRUE(Known.isValid());
  EXPECT_EQ(Known.str(), "4:2");
  EXPECT_TRUE((SourceLoc{4, 2} == Known));
}

TEST(Support, AccumulatingTimer) {
  AccumulatingTimer T;
  EXPECT_DOUBLE_EQ(T.seconds(), 0.0);
  {
    TimeRegion R(T);
    volatile double Sink = 0;
    for (int I = 0; I < 100000; ++I)
      Sink = Sink + I * 0.5;
    (void)Sink;
  }
  double First = T.seconds();
  EXPECT_GT(First, 0.0);
  {
    TimeRegion R(T);
  }
  EXPECT_GE(T.seconds(), First);
  T.clear();
  EXPECT_DOUBLE_EQ(T.seconds(), 0.0);
}

TEST(Support, AccumulatingTimerDoubleStart) {
  // start() while running must bank the open interval instead of silently
  // discarding it.
  AccumulatingTimer T;
  T.start();
  volatile double Sink = 0;
  for (int I = 0; I < 100000; ++I)
    Sink = Sink + I * 0.5;
  (void)Sink;
  double Banked = T.seconds();
  EXPECT_GT(Banked, 0.0);
  T.start(); // Restart mid-interval: the elapsed time above must survive.
  T.stop();
  EXPECT_GE(T.seconds(), Banked);

  // stop() when not running is a no-op.
  double AfterStop = T.seconds();
  T.stop();
  EXPECT_DOUBLE_EQ(T.seconds(), AfterStop);
}

TEST(Support, ProgramTraversalOrder) {
  auto P = parseOrDie(R"(program t
    integer a, i
    procedure f
      a = 1
    end
    a = 2
    do i = 1, 3
      a = 3
    end do
  end)");
  std::vector<StmtKind> Kinds;
  P->forEachStmt([&](Stmt *S) { Kinds.push_back(S->kind()); });
  // Procedure f first (assign), then main: assign, do, inner assign.
  ASSERT_EQ(Kinds.size(), 4u);
  EXPECT_EQ(Kinds[0], StmtKind::Assign);
  EXPECT_EQ(Kinds[1], StmtKind::Assign);
  EXPECT_EQ(Kinds[2], StmtKind::Do);
  EXPECT_EQ(Kinds[3], StmtKind::Assign);
}

TEST(Support, FindLoopReturnsFirstMatch) {
  auto P = parseOrDie(R"(program t
    integer i, a
    x1: do i = 1, 3
      a = 1
    end do
    x2: do i = 1, 3
      a = 2
    end do
  end)");
  EXPECT_NE(P->findLoop("x1"), nullptr);
  EXPECT_NE(P->findLoop("x2"), nullptr);
  EXPECT_EQ(P->findLoop("nope"), nullptr);
  EXPECT_NE(P->findLoop("x1"), P->findLoop("x2"));
}

TEST(Support, StmtIdsAreDense) {
  auto P = parseOrDie(R"(program t
    integer a, i
    a = 1
    do i = 1, 2
      a = 2
    end do
  end)");
  std::set<unsigned> Ids;
  P->forEachStmt([&](Stmt *S) { Ids.insert(S->id()); });
  EXPECT_EQ(Ids.size(), 3u);
  for (unsigned Id : Ids)
    EXPECT_LT(Id, P->numStmts());
}

} // namespace
