//===- tests/test_section.cpp - Array section algebra tests ---------------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "section/Section.h"

using namespace iaa;
using namespace iaa::sec;
using namespace iaa::sym;
using iaa::test::parseOrDie;

namespace {

class SectionTest : public ::testing::Test {
protected:
  void SetUp() override {
    P = parseOrDie(R"(program t
      integer i, n, q
      n = 1
    end)");
    I = P->findSymbol("i");
    N = P->findSymbol("n");
    Q = P->findSymbol("q");
    Env.bindVar(N, SymRange::of(SymExpr::constant(1), SymExpr::constant(1000)));
  }

  Section ival(int64_t Lo, int64_t Hi) {
    return Section::interval(SymExpr::constant(Lo), SymExpr::constant(Hi));
  }

  std::unique_ptr<mf::Program> P;
  mf::Symbol *I, *N, *Q;
  RangeEnv Env;
};

TEST_F(SectionTest, Basics) {
  EXPECT_TRUE(Section::empty().isEmpty());
  EXPECT_TRUE(Section::universe().isUniverse());
  Section S = ival(1, 10);
  EXPECT_TRUE(S.isInterval());
  EXPECT_EQ(S.str(), "[1:10]");
}

TEST_F(SectionTest, DisjointProvable) {
  EXPECT_TRUE(Section::provablyDisjoint(ival(1, 5), ival(6, 9), Env));
  EXPECT_FALSE(Section::provablyDisjoint(ival(1, 5), ival(5, 9), Env));
  EXPECT_TRUE(Section::provablyDisjoint(Section::empty(), ival(1, 2), Env));
  EXPECT_FALSE(
      Section::provablyDisjoint(Section::universe(), ival(1, 2), Env));
}

TEST_F(SectionTest, DisjointSymbolic) {
  // [1:n] vs [n+1 : 2n] are provably disjoint.
  Section A = Section::interval(SymExpr::constant(1), SymExpr::var(N));
  Section B = Section::interval(SymExpr::var(N) + 1, SymExpr::var(N) * 2);
  EXPECT_TRUE(Section::provablyDisjoint(A, B, Env));
  EXPECT_FALSE(Section::provablyDisjoint(A, A, Env));
}

TEST_F(SectionTest, Contains) {
  EXPECT_TRUE(Section::provablyContains(ival(1, 10), ival(2, 5), Env));
  EXPECT_FALSE(Section::provablyContains(ival(2, 5), ival(1, 10), Env));
  EXPECT_TRUE(Section::provablyContains(Section::universe(), ival(1, 2), Env));
  EXPECT_TRUE(Section::provablyContains(ival(1, 2), Section::empty(), Env));
  // Symbolic: [1:n] contains [1:n-1].
  Section A = Section::interval(SymExpr::constant(1), SymExpr::var(N));
  Section B = Section::interval(SymExpr::constant(1), SymExpr::var(N) - 1);
  EXPECT_TRUE(Section::provablyContains(A, B, Env));
}

TEST_F(SectionTest, UnionMay) {
  Section U = Section::unionMay(ival(1, 5), ival(3, 9), Env);
  EXPECT_TRUE(U.equals(ival(1, 9)));
  // Unordered bounds widen to the universe (sound for MAY).
  Section V = Section::unionMay(
      Section::interval(SymExpr::var(Q), SymExpr::var(Q) + 1), ival(1, 2),
      Env);
  EXPECT_TRUE(V.isUniverse());
}

TEST_F(SectionTest, UnionMustAdjacent) {
  Section U = Section::unionMust(ival(1, 5), ival(6, 9), Env);
  EXPECT_TRUE(U.equals(ival(1, 9))) << U.str();
  // A gap means the exact union is not an interval; either piece is a valid
  // MUST under-approximation.
  Section V = Section::unionMust(ival(1, 5), ival(8, 9), Env);
  EXPECT_TRUE(V.equals(ival(1, 5)) || V.equals(ival(8, 9)));
}

TEST_F(SectionTest, IntersectMust) {
  EXPECT_TRUE(
      Section::intersectMust(ival(1, 5), ival(3, 9), Env).equals(ival(3, 5)));
  EXPECT_TRUE(Section::intersectMust(ival(1, 5), ival(7, 9), Env).isEmpty());
  // Unknown relation must yield empty (MUST-safe).
  Section Unknown = Section::interval(SymExpr::var(Q), SymExpr::var(Q));
  EXPECT_TRUE(Section::intersectMust(Unknown, ival(1, 5), Env).isEmpty());
}

TEST_F(SectionTest, SubtractMayTrims) {
  EXPECT_TRUE(
      Section::subtractMay(ival(1, 10), ival(1, 4), Env).equals(ival(5, 10)));
  EXPECT_TRUE(
      Section::subtractMay(ival(1, 10), ival(7, 10), Env).equals(ival(1, 6)));
  EXPECT_TRUE(Section::subtractMay(ival(1, 10), ival(1, 10), Env).isEmpty());
  EXPECT_TRUE(
      Section::subtractMay(ival(1, 10), ival(20, 30), Env).equals(ival(1, 10)));
  // Middle cut: must keep everything (over-approximation).
  EXPECT_TRUE(
      Section::subtractMay(ival(1, 10), ival(4, 6), Env).equals(ival(1, 10)));
}

TEST_F(SectionTest, SubtractMaySymbolic) {
  // [1:q] - [1:q] = empty even with unknown q.
  Section S = Section::interval(SymExpr::constant(1), SymExpr::var(Q));
  EXPECT_TRUE(Section::subtractMay(S, S, Env).isEmpty());
}

TEST_F(SectionTest, SubtractMustIsUnderApprox) {
  EXPECT_TRUE(
      Section::subtractMust(ival(1, 10), ival(1, 4), Env).equals(ival(5, 10)));
  // Unknown overlap must collapse to empty.
  Section Unknown = Section::interval(SymExpr::var(Q), SymExpr::var(Q) + 3);
  EXPECT_TRUE(Section::subtractMust(ival(1, 10), Unknown, Env).isEmpty());
  // Disjoint leaves the section intact.
  EXPECT_TRUE(
      Section::subtractMust(ival(1, 10), ival(40, 50), Env).equals(ival(1, 10)));
}

TEST_F(SectionTest, AggregateMayAffine) {
  // S(i) = [i : i+2] for i in [1, n] -> [1 : n+2].
  Section S = Section::interval(SymExpr::var(I), SymExpr::var(I) + 2);
  Section A = Section::aggregateMay(S, I, SymExpr::constant(1),
                                    SymExpr::var(N), Env);
  ASSERT_TRUE(A.isInterval());
  EXPECT_TRUE(A.lo().equals(SymExpr::constant(1)));
  EXPECT_TRUE(A.hi().equals(SymExpr::var(N) + 2));
}

TEST_F(SectionTest, AggregateMayNonlinearWidens) {
  Section S = Section::point(
      SymExpr::arrayElem(P->findSymbol("q") ? P->findSymbol("q") : N,
                         {SymExpr::var(I)}));
  // q is scalar; build a real array-based point section instead via mul.
  Section T = Section::point(SymExpr::mul(SymExpr::var(I), SymExpr::var(I)));
  Section A = Section::aggregateMay(T, I, SymExpr::constant(1),
                                    SymExpr::var(N), Env);
  EXPECT_TRUE(A.isUniverse());
  (void)S;
}

TEST_F(SectionTest, AggregateMustDense) {
  // S(i) = [i : i] for i in [1, n] -> [1 : n] with no holes.
  RangeEnv E2 = Env;
  E2.bindVar(I, SymRange::of(SymExpr::constant(1), SymExpr::var(N)));
  Section S = Section::point(SymExpr::var(I));
  Section A =
      Section::aggregateMust(S, I, SymExpr::constant(1), SymExpr::var(N), E2);
  ASSERT_TRUE(A.isInterval()) << A.str();
  EXPECT_TRUE(A.lo().equals(SymExpr::constant(1)));
  EXPECT_TRUE(A.hi().equals(SymExpr::var(N)));
}

TEST_F(SectionTest, AggregateMustDetectsHoles) {
  // S(i) = [2i : 2i] leaves odd holes: no MUST aggregation.
  RangeEnv E2 = Env;
  E2.bindVar(I, SymRange::of(SymExpr::constant(1), SymExpr::var(N)));
  Section S = Section::point(SymExpr::var(I) * 2);
  Section A =
      Section::aggregateMust(S, I, SymExpr::constant(1), SymExpr::var(N), E2);
  EXPECT_TRUE(A.isEmpty());
}

TEST_F(SectionTest, AggregateMustZeroTripUnprovable) {
  // Bounds [1, q] with unknown q: the loop may be zero-trip, so no MUST.
  Section S = Section::point(SymExpr::var(I));
  Section A =
      Section::aggregateMust(S, I, SymExpr::constant(1), SymExpr::var(Q), Env);
  EXPECT_TRUE(A.isEmpty());
}

TEST_F(SectionTest, AggregateMustOverlappingWindows) {
  // S(i) = [i : i+4]: windows overlap, union is [1 : n+4].
  RangeEnv E2 = Env;
  E2.bindVar(I, SymRange::of(SymExpr::constant(1), SymExpr::var(N)));
  Section S = Section::interval(SymExpr::var(I), SymExpr::var(I) + 4);
  Section A =
      Section::aggregateMust(S, I, SymExpr::constant(1), SymExpr::var(N), E2);
  ASSERT_TRUE(A.isInterval());
  EXPECT_TRUE(A.hi().equals(SymExpr::var(N) + 4));
}

TEST_F(SectionTest, AggregateMustDecreasingSweep) {
  // S(i) = [n-i+1 : n-i+1] for i in [1, n]: positions n..1, dense.
  RangeEnv E2 = Env;
  E2.bindVar(I, SymRange::of(SymExpr::constant(1), SymExpr::var(N)));
  Section S = Section::point(SymExpr::var(N) - SymExpr::var(I) + 1);
  Section A =
      Section::aggregateMust(S, I, SymExpr::constant(1), SymExpr::var(N), E2);
  ASSERT_TRUE(A.isInterval()) << A.str();
  EXPECT_TRUE(A.lo().equals(SymExpr::constant(1)));
  EXPECT_TRUE(A.hi().equals(SymExpr::var(N)));
}

TEST_F(SectionTest, AggregateMustDecreasingWithHoles) {
  RangeEnv E2 = Env;
  E2.bindVar(I, SymRange::of(SymExpr::constant(1), SymExpr::var(N)));
  Section S = Section::point(SymExpr::var(I) * -2 + 100);
  Section A =
      Section::aggregateMust(S, I, SymExpr::constant(1), SymExpr::var(N), E2);
  EXPECT_TRUE(A.isEmpty());
}

} // namespace
