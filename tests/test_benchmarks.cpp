//===- tests/test_benchmarks.cpp - Benchmark integration expectations -----===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// Detailed per-benchmark expectations beyond the headline parallel/serial
/// outcomes: which test fired for which array, which properties were
/// consumed, and that the postpass output round-trips.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "benchprogs/Benchmarks.h"
#include "xform/Parallelizer.h"
#include "xform/Postpass.h"

using namespace iaa;
using namespace iaa::mf;
using namespace iaa::xform;
using iaa::test::parseOrDie;

namespace {

struct Analyzed {
  std::unique_ptr<Program> P;
  PipelineResult R;

  explicit Analyzed(const benchprogs::BenchmarkProgram &B) {
    P = iaa::test::parseOrDie(B.Source);
    R = parallelize(*P, PipelineMode::Full);
  }

  bool depProp(const char *Loop, const char *Entry) const {
    const LoopReport *Rep = R.reportFor(Loop);
    if (!Rep)
      return false;
    for (const auto &D : Rep->DepOutcomes)
      for (const std::string &Prop : D.PropertiesUsed)
        if (Prop == Entry)
          return true;
    return false;
  }

  bool privProp(const char *Loop, const char *Entry) const {
    const LoopReport *Rep = R.reportFor(Loop);
    if (!Rep)
      return false;
    for (const auto &Pv : Rep->PrivOutcomes)
      for (const std::string &Prop : Pv.PropertiesUsed)
        if (Prop == Entry)
          return true;
    return false;
  }
};

TEST(Benchmarks, TrfdDetails) {
  Analyzed A(benchprogs::trfd(0.05));
  EXPECT_TRUE(A.depProp("do140", "ia:CFD"));
  // The offset-length test fired on the host array v.
  const LoopReport *Rep = A.R.reportFor("do140");
  bool OffLen = false;
  for (const auto &D : Rep->DepOutcomes)
    if (D.Array->name() == "v" &&
        D.Test == deptest::TestKind::OffsetLength)
      OffLen = true;
  EXPECT_TRUE(OffLen) << A.R.str();
  // ia itself is reported CFV-capable (constant base).
  EXPECT_TRUE(analysis::ClosedFormDistanceChecker::hasConstantBase(
      *A.P, A.P->findSymbol("ia")));
}

TEST(Benchmarks, DyfesmDetails) {
  Analyzed A(benchprogs::dyfesm(0.05));
  for (const char *Loop : {"do4", "do10", "do30", "do50", "hop20"}) {
    EXPECT_TRUE(A.R.reportFor(Loop)) << Loop;
    EXPECT_TRUE(A.R.reportFor(Loop)->Parallel) << Loop << "\n" << A.R.str();
    EXPECT_TRUE(A.depProp(Loop, "pptr:CFD")) << Loop;
    EXPECT_TRUE(A.depProp(Loop, "iblen:CFB")) << Loop;
  }
}

TEST(Benchmarks, BdnaDetails) {
  Analyzed A(benchprogs::bdna(0.05));
  EXPECT_TRUE(A.privProp("do240", "ind:CFB"));
  EXPECT_TRUE(A.privProp("do240", "ind:CW"));
  const LoopReport *Rep = A.R.reportFor("do240");
  // Exactly xdt and ind end up private; f must stay shared (distinct-dim).
  std::set<std::string> Private;
  for (const auto &Pv : Rep->PrivOutcomes)
    if (Pv.Privatizable)
      Private.insert(Pv.Array->name());
  EXPECT_TRUE(Private.count("xdt"));
  EXPECT_TRUE(Private.count("ind"));
  const LoopPlan *Plan = A.R.planFor(A.P->findLoop("do240"));
  ASSERT_NE(Plan, nullptr);
  EXPECT_FALSE(Plan->PrivateArrays.count(A.P->findSymbol("f")))
      << "f(i) is covered by the distinct-dimension test, not privatization";
}

TEST(Benchmarks, P3mDetails) {
  Analyzed A(benchprogs::p3m(0.05));
  EXPECT_TRUE(A.privProp("do100", "jpr:CFB"));
  const LoopPlan *Plan = A.R.planFor(A.P->findLoop("do100"));
  ASSERT_NE(Plan, nullptr);
  EXPECT_TRUE(Plan->PrivateArrays.count(A.P->findSymbol("x0")));
  EXPECT_TRUE(Plan->PrivateArrays.count(A.P->findSymbol("r2")));
}

TEST(Benchmarks, TreeDetails) {
  Analyzed A(benchprogs::tree(0.05));
  EXPECT_TRUE(A.privProp("do10", "stack:STACK"));
  const LoopPlan *Plan = A.R.planFor(A.P->findLoop("do10"));
  ASSERT_NE(Plan, nullptr);
  EXPECT_TRUE(Plan->PrivateArrays.count(A.P->findSymbol("stack")));
  // The walk scalars are private.
  EXPECT_TRUE(Plan->PrivateScalars.count(A.P->findSymbol("sptr")));
  EXPECT_TRUE(Plan->PrivateScalars.count(A.P->findSymbol("node")));
}

TEST(Benchmarks, PostpassRoundTripsAllPrograms) {
  for (const auto &B : benchprogs::allBenchmarks(0.05)) {
    Analyzed A(B);
    std::string Out = emitAnnotatedSource(*A.P, A.R);
    EXPECT_NE(Out.find("!$iaa parallel do"), std::string::npos) << B.Name;
    DiagnosticEngine Diags;
    auto P2 = mf::parseProgram(Out, Diags);
    EXPECT_NE(P2, nullptr) << B.Name << "\n" << Diags.str();
  }
}

TEST(Benchmarks, HelperLoopsReportedButSerial) {
  Analyzed A(benchprogs::bdna(0.05));
  const LoopReport *Gather = A.R.reportFor("do236");
  ASSERT_NE(Gather, nullptr);
  EXPECT_FALSE(Gather->Parallel);
  EXPECT_FALSE(Gather->WhyNot.empty());
}

TEST(Benchmarks, PropertyQueryCountsAreDemandDriven) {
  // TREE needs no property queries at all (stack analysis only).
  Analyzed Tree(benchprogs::tree(0.05));
  unsigned TreeQueries = 0;
  for (const auto &Rep : Tree.R.Loops)
    TreeQueries += Rep.PropertyQueries;
  EXPECT_EQ(TreeQueries, 0u);

  // DYFESM needs them (one CFD + one CFB per irregular loop, memoized).
  Analyzed Dy(benchprogs::dyfesm(0.05));
  unsigned DyQueries = 0;
  for (const auto &Rep : Dy.R.Loops)
    DyQueries += Rep.PropertyQueries;
  EXPECT_GT(DyQueries, 0u);
}

} // namespace
