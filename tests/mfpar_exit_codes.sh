#!/bin/sh
# Smoke-tests mfpar's exit-code taxonomy against a real binary:
#   0  success
#   2  bad flag / flag value
#   4  the program faulted at runtime (--on-fault=report/replay)
#   5  the --deadline-ms wall-clock deadline fired mid-run
#   6  the --mem-limit-mb array-memory budget was exceeded
#   SIGABRT under --on-fault=abort (the driver aborts; the interpreter
#   itself always unwinds cleanly)
#
# Usage: mfpar_exit_codes.sh path/to/mfpar
set -u

MFPAR=${1:?usage: mfpar_exit_codes.sh path/to/mfpar}
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT
ulimit -c 0 2>/dev/null || true

FAILURES=0
check() {
  WANT=$1
  DESC=$2
  shift 2
  "$@" >"$TMP/out" 2>"$TMP/err"
  GOT=$?
  if [ "$GOT" -ne "$WANT" ]; then
    echo "FAIL: $DESC: expected exit $WANT, got $GOT" >&2
    sed 's/^/  stderr: /' "$TMP/err" >&2
    FAILURES=$((FAILURES + 1))
  else
    echo "ok: $DESC (exit $GOT)"
  fi
}

# A program whose scatter subscripts x out of bounds at iteration 500.
cat >"$TMP/oob.mf" <<'EOF'
program t
  integer i, n
  integer ind(1000)
  real x(1000)
  n = 1000
  fill: do i = 1, n
    ind(i) = i
    x(i) = 0.0
  end do
  ind(500) = 2000
  oob: do i = 1, n
    x(ind(i)) = x(ind(i)) + 1.0
  end do
end
EOF

cat >"$TMP/good.mf" <<'EOF'
program t
  integer i, n
  real x(100)
  n = 100
  lp: do i = 1, n
    x(i) = i * 2.0
  end do
end
EOF

check 0 "clean analyze+run" "$MFPAR" "$TMP/good.mf" --run=2
check 1 "missing input file" "$MFPAR" "$TMP/does-not-exist.mf"
check 2 "unknown flag" "$MFPAR" --no-such-flag
check 2 "bad --on-fault value" "$MFPAR" --on-fault=bogus
check 2 "bad --schedule value" "$MFPAR" "$TMP/good.mf" --schedule=gided
check 2 "empty --profile= value" "$MFPAR" "$TMP/good.mf" --profile=
check 0 "profiled run writes JSONL" \
  "$MFPAR" "$TMP/good.mf" --profile="$TMP/profile.jsonl" --run=2
[ -s "$TMP/profile.jsonl" ] ||
  { echo "FAIL: --profile wrote no JSONL" >&2; FAILURES=$((FAILURES + 1)); }
check 4 "runtime fault, replay policy" \
  "$MFPAR" "$TMP/oob.mf" --run=2 --on-fault=replay
check 4 "runtime fault, report policy" \
  "$MFPAR" "$TMP/oob.mf" --run=2 --on-fault=report

# A loop big enough (8M iterations) that a 1 ms deadline always fires
# mid-run, while 60 s never does; its array (64 MB) also overflows a 1 MB
# budget at allocation time, before a single iteration runs.
cat >"$TMP/big.mf" <<'EOF'
program t
  integer i
  real x(8000000)
  lp: do i = 1, 8000000
    x(i) = i * 1.0
  end do
end
EOF

check 2 "bad --deadline-ms value" "$MFPAR" "$TMP/big.mf" --deadline-ms=soon
check 2 "negative --deadline-ms" "$MFPAR" "$TMP/big.mf" --deadline-ms=-5
check 2 "bad --mem-limit-mb value" "$MFPAR" "$TMP/big.mf" --mem-limit-mb=big
check 2 "zero --mem-limit-mb" "$MFPAR" "$TMP/big.mf" --mem-limit-mb=0
check 0 "generous deadline" "$MFPAR" "$TMP/big.mf" --run=2 --deadline-ms=60000
check 5 "blown deadline" "$MFPAR" "$TMP/big.mf" --run=2 --deadline-ms=1
grep -q "deadline-exceeded" "$TMP/err" ||
  { echo "FAIL: deadline fault missing from stderr" >&2; FAILURES=$((FAILURES + 1)); }
check 0 "generous memory budget" \
  "$MFPAR" "$TMP/big.mf" --run=2 --mem-limit-mb=256
check 6 "blown memory budget" "$MFPAR" "$TMP/big.mf" --run=2 --mem-limit-mb=1
grep -q "resource-exhausted" "$TMP/err" ||
  { echo "FAIL: budget fault missing from stderr" >&2; FAILURES=$((FAILURES + 1)); }

# --on-fault=abort keeps the legacy behavior: the driver aborts the
# process (SIGABRT = 134 from sh) after printing the fault.
"$MFPAR" "$TMP/oob.mf" --run=2 --on-fault=abort >"$TMP/out" 2>"$TMP/err"
GOT=$?
if [ "$GOT" -lt 128 ]; then
  echo "FAIL: abort policy: expected a signal death, got exit $GOT" >&2
  FAILURES=$((FAILURES + 1))
else
  echo "ok: abort policy dies by signal (exit $GOT)"
fi

grep -q "runtime fault" "$TMP/err" ||
  { echo "FAIL: fault report missing from stderr" >&2; FAILURES=$((FAILURES + 1)); }

if [ "$FAILURES" -ne 0 ]; then
  echo "$FAILURES exit-code check(s) failed" >&2
  exit 1
fi
echo "all exit-code checks passed"
