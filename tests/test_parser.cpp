//===- tests/test_parser.cpp - MF lexer and parser tests ------------------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "mf/Lexer.h"

using namespace iaa;
using namespace iaa::mf;
using iaa::test::parseOrDie;
using iaa::test::parseExpectingErrors;

TEST(Lexer, BasicTokens) {
  DiagnosticEngine Diags;
  Lexer L("do i = 1, n x(i) = y(i) + 2.5 end do", Diags);
  std::vector<Token> Toks = L.lexAll();
  ASSERT_FALSE(Diags.hasErrors());
  ASSERT_GE(Toks.size(), 10u);
  EXPECT_EQ(Toks[0].Kind, TokenKind::KwDo);
  EXPECT_EQ(Toks[1].Kind, TokenKind::Identifier);
  EXPECT_EQ(Toks[1].Text, "i");
  EXPECT_EQ(Toks[2].Kind, TokenKind::Assign);
  EXPECT_EQ(Toks[3].Kind, TokenKind::IntLiteral);
  EXPECT_EQ(Toks[3].IntValue, 1);
  EXPECT_EQ(Toks.back().Kind, TokenKind::Eof);
}

TEST(Lexer, CaseInsensitiveKeywords) {
  DiagnosticEngine Diags;
  Lexer L("DO While IF Then", Diags);
  std::vector<Token> Toks = L.lexAll();
  EXPECT_EQ(Toks[0].Kind, TokenKind::KwDo);
  EXPECT_EQ(Toks[1].Kind, TokenKind::KwWhile);
  EXPECT_EQ(Toks[2].Kind, TokenKind::KwIf);
  EXPECT_EQ(Toks[3].Kind, TokenKind::KwThen);
}

TEST(Lexer, CommentsSkipped) {
  DiagnosticEngine Diags;
  Lexer L("x ! this is a comment\ny # another\nz", Diags);
  std::vector<Token> Toks = L.lexAll();
  ASSERT_EQ(Toks.size(), 4u); // x y z eof
  EXPECT_EQ(Toks[0].Text, "x");
  EXPECT_EQ(Toks[1].Text, "y");
  EXPECT_EQ(Toks[2].Text, "z");
}

TEST(Lexer, RealLiterals) {
  DiagnosticEngine Diags;
  Lexer L("1.5 2e3 7", Diags);
  std::vector<Token> Toks = L.lexAll();
  EXPECT_EQ(Toks[0].Kind, TokenKind::RealLiteral);
  EXPECT_DOUBLE_EQ(Toks[0].RealValue, 1.5);
  EXPECT_EQ(Toks[1].Kind, TokenKind::RealLiteral);
  EXPECT_DOUBLE_EQ(Toks[1].RealValue, 2000.0);
  EXPECT_EQ(Toks[2].Kind, TokenKind::IntLiteral);
}

TEST(Lexer, ComparisonOperators) {
  DiagnosticEngine Diags;
  Lexer L("< <= > >= == /=", Diags);
  std::vector<Token> Toks = L.lexAll();
  EXPECT_EQ(Toks[0].Kind, TokenKind::Less);
  EXPECT_EQ(Toks[1].Kind, TokenKind::LessEq);
  EXPECT_EQ(Toks[2].Kind, TokenKind::Greater);
  EXPECT_EQ(Toks[3].Kind, TokenKind::GreaterEq);
  EXPECT_EQ(Toks[4].Kind, TokenKind::EqEq);
  EXPECT_EQ(Toks[5].Kind, TokenKind::NotEq);
}

TEST(Lexer, TracksLineNumbers) {
  DiagnosticEngine Diags;
  Lexer L("a\nb\nc", Diags);
  std::vector<Token> Toks = L.lexAll();
  EXPECT_EQ(Toks[0].Loc.Line, 1u);
  EXPECT_EQ(Toks[1].Loc.Line, 2u);
  EXPECT_EQ(Toks[2].Loc.Line, 3u);
}

TEST(Parser, MinimalProgram) {
  auto P = parseOrDie("program t\ninteger n\nn = 4\nend");
  ASSERT_NE(P->mainProcedure(), nullptr);
  EXPECT_EQ(P->mainProcedure()->body().size(), 1u);
  EXPECT_NE(P->findSymbol("n"), nullptr);
}

TEST(Parser, Declarations) {
  auto P = parseOrDie(R"(program t
    integer n, m
    real x(100), z(10, 20)
    integer ind(50)
    n = 1
  end)");
  Symbol *X = P->findSymbol("x");
  ASSERT_NE(X, nullptr);
  EXPECT_EQ(X->rank(), 1u);
  EXPECT_EQ(X->elementKind(), ScalarKind::Real);
  Symbol *Z = P->findSymbol("z");
  ASSERT_NE(Z, nullptr);
  EXPECT_EQ(Z->rank(), 2u);
  Symbol *Ind = P->findSymbol("ind");
  ASSERT_NE(Ind, nullptr);
  EXPECT_EQ(Ind->elementKind(), ScalarKind::Int);
}

TEST(Parser, DoLoopWithLabel) {
  auto P = parseOrDie(R"(program t
    integer n, i
    real x(100)
    n = 100
    do140: do i = 1, n
      x(i) = 0
    end do
  end)");
  DoStmt *L = P->findLoop("do140");
  ASSERT_NE(L, nullptr);
  EXPECT_EQ(L->indexVar()->name(), "i");
  EXPECT_EQ(L->body().size(), 1u);
  EXPECT_EQ(L->label(), "do140");
}

TEST(Parser, NestedControlFlow) {
  auto P = parseOrDie(R"(program t
    integer n, i, j, p
    real x(100)
    n = 10
    p = 0
    do i = 1, n
      if (i > 3) then
        p = p + 1
        x(p) = 1
      else
        x(1) = 2
      end if
      while (p > 0)
        p = p - 1
      end while
    end do
  end)");
  const StmtList &Body = P->mainProcedure()->body();
  ASSERT_EQ(Body.size(), 3u);
  auto *Loop = dyn_cast<DoStmt>(Body[2]);
  ASSERT_NE(Loop, nullptr);
  ASSERT_EQ(Loop->body().size(), 2u);
  EXPECT_TRUE(isa<IfStmt>(Loop->body()[0]));
  EXPECT_TRUE(isa<WhileStmt>(Loop->body()[1]));
  auto *If = cast<IfStmt>(Loop->body()[0]);
  EXPECT_EQ(If->thenBody().size(), 2u);
  EXPECT_EQ(If->elseBody().size(), 1u);
}

TEST(Parser, ProceduresAndCalls) {
  auto P = parseOrDie(R"(program t
    integer n
    procedure setup
      n = 5
    end
    call setup
  end)");
  Procedure *Setup = P->findProcedure("setup");
  ASSERT_NE(Setup, nullptr);
  auto *CS = dyn_cast<CallStmt>(P->mainProcedure()->body()[0]);
  ASSERT_NE(CS, nullptr);
  EXPECT_EQ(CS->callee(), Setup);
}

TEST(Parser, IntrinsicsParseAsBinary) {
  auto P = parseOrDie(R"(program t
    integer a, b, c
    a = min(b, 3)
    b = max(a, c)
    c = mod(a, 7)
  end)");
  auto *AS = cast<AssignStmt>(P->mainProcedure()->body()[0]);
  auto *BE = dyn_cast<BinaryExpr>(AS->rhs());
  ASSERT_NE(BE, nullptr);
  EXPECT_EQ(BE->op(), BinaryOp::Min);
}

TEST(Parser, OperatorPrecedence) {
  auto P = parseOrDie(R"(program t
    integer a, b, c
    a = b + c * 2
  end)");
  auto *AS = cast<AssignStmt>(P->mainProcedure()->body()[0]);
  auto *Add = dyn_cast<BinaryExpr>(AS->rhs());
  ASSERT_NE(Add, nullptr);
  EXPECT_EQ(Add->op(), BinaryOp::Add);
  auto *Mul = dyn_cast<BinaryExpr>(Add->rhs());
  ASSERT_NE(Mul, nullptr);
  EXPECT_EQ(Mul->op(), BinaryOp::Mul);
}

TEST(Parser, ParentLinks) {
  auto P = parseOrDie(R"(program t
    integer i, n
    real x(10)
    n = 5
    do i = 1, n
      if (i > 1) then
        x(i) = 0
      end if
    end do
  end)");
  auto *Loop = cast<DoStmt>(P->mainProcedure()->body()[1]);
  auto *If = cast<IfStmt>(Loop->body()[0]);
  auto *Assign = cast<AssignStmt>(If->thenBody()[0]);
  EXPECT_EQ(Assign->parent(), If);
  EXPECT_EQ(If->parent(), Loop);
  EXPECT_EQ(Loop->parent(), nullptr);
  EXPECT_EQ(Assign->procedure(), P->mainProcedure());
}

TEST(Parser, ErrorUndeclaredVariable) {
  parseExpectingErrors("program t\nx = 1\nend");
}

TEST(Parser, ErrorRedeclaration) {
  parseExpectingErrors("program t\ninteger n\nreal n\nn = 1\nend");
}

TEST(Parser, ErrorRankMismatch) {
  parseExpectingErrors(R"(program t
    real z(10, 10)
    z(1) = 0
  end)");
}

TEST(Parser, ErrorSubscriptOnScalar) {
  parseExpectingErrors("program t\ninteger n\nn(1) = 0\nend");
}

TEST(Parser, ErrorArrayWithoutSubscript) {
  parseExpectingErrors("program t\nreal x(5)\ninteger a\na = x\nend");
}

TEST(Parser, ErrorUnknownCallTarget) {
  parseExpectingErrors("program t\ncall nosuch\nend");
}

TEST(Parser, ErrorNonIntegerLoopIndex) {
  parseExpectingErrors(R"(program t
    real r
    do r = 1, 5
    end do
  end)");
}

TEST(Parser, ErrorLabelOnNonLoop) {
  parseExpectingErrors(R"(program t
    integer a
    lab: a = 1
  end)");
}

TEST(Parser, RoundTripPrinting) {
  const char *Src = R"(program t
    integer i, n, p
    real x(100)
    n = 10
    k1: do i = 1, n
      x(i) = x(i) + 1.5
    end do
  end)";
  auto P = parseOrDie(Src);
  std::string Printed = P->str();
  // The printed program must re-parse to the same shape.
  auto P2 = parseOrDie(Printed);
  EXPECT_EQ(P2->mainProcedure()->body().size(),
            P->mainProcedure()->body().size());
  EXPECT_NE(P2->findLoop("k1"), nullptr);
}
