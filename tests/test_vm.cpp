//===- tests/test_vm.cpp - Register-bytecode VM differential tests --------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// The bytecode engine end to end, with the tree-walking interpreter as the
/// differential oracle: --engine=both runs every program twice and demands
/// bit-identical final-memory checksums (or matching fault kinds), across
/// every schedule x thread-count combination, on the Fig. 16 benchmark
/// reconstructions, the recurrence-promoted kernels, conditional-dispatch
/// loops (inspection pass and fail), a locality-reordered dispatch, and a
/// mid-chunk fault with rollback + serial replay. Compiler-level tests pin
/// the fusion peepholes and the bailout taxonomy.
///
/// Suite names here start with "Vm" so the CI ThreadSanitizer job's
/// --gtest_filter picks them up.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "benchprogs/Benchmarks.h"
#include "interp/Interpreter.h"
#include "verify/FaultInjector.h"
#include "vm/Bytecode.h"
#include "vm/Compiler.h"
#include "xform/Parallelizer.h"

#include <set>
#include <string>

using namespace iaa;
using namespace iaa::interp;
using namespace iaa::mf;
using iaa::test::parseOrDie;

namespace {

const Schedule AllSchedules[] = {Schedule::Static, Schedule::Dynamic,
                                 Schedule::Guided};
const unsigned ThreadCounts[] = {1, 2, 4, 7};

/// The recurrence-promoted kernels of test_recurrence.cpp: a fused CCS
/// build + segment scale, and a strictly-increasing prefix-sum scatter.
const char *FusedCcs = R"(program t
    integer i, j, n
    integer colptr(101), colcnt(100)
    real vals(800)
    n = 100
    colptr(1) = 1
    build: do i = 1, n
      colcnt(i) = mod(i * 5, 7) + 1
      colptr(i + 1) = colptr(i) + colcnt(i)
    end do
    fill: do i = 1, 800
      vals(i) = mod(i, 13) * 0.125
    end do
    scale: do i = 1, n
      do j = 1, colcnt(i)
        vals(colptr(i) + j - 1) = vals(colptr(i) + j - 1) * 1.5 + 0.25
      end do
    end do
  end)";

const char *PrefixSumScatter = R"(program t
    integer i, n, p
    integer pos(1000)
    real x(3100), y(1000)
    n = 1000
    p = 0
    build: do i = 1, n
      p = p + mod(i, 3) + 1
      pos(i) = p
    end do
    init: do i = 1, n
      y(i) = mod(i, 9) * 0.25
    end do
    scat: do i = 1, n
      x(pos(i)) = x(pos(i)) + y(i) * 0.5
    end do
  end)";

/// Conditional-dispatch kernels of test_runtime_check.cpp: the permutation
/// index passes inspection (parallel), the duplicate-heavy one fails it
/// (serial fallback) — the VM must agree with the interpreter either way.
const char *PermutationScatter = R"(program t
    integer i, n
    integer ind(1000)
    real x(1000), y(1000)
    n = 1000
    init: do i = 1, n
      ind(i) = mod(i * 7, n) + 1
      x(i) = i * 0.5
      y(i) = mod(i, 9) * 0.25
    end do
    scat: do i = 1, n
      x(ind(i)) = x(ind(i)) + y(i) * 0.5
    end do
  end)";

const char *DuplicateScatter = R"(program t
    integer i, n
    integer ind(1000)
    real x(1000), y(1000)
    n = 1000
    init: do i = 1, n
      ind(i) = mod(i * 7, 500) + 1
      x(i) = i * 0.5
      y(i) = mod(i, 9) * 0.25
    end do
    scat: do i = 1, n
      x(ind(i)) = x(ind(i)) + y(i) * 0.5
    end do
  end)";

struct Harness {
  std::unique_ptr<Program> P;
  xform::PipelineResult Plan;

  explicit Harness(const std::string &Source) : P(parseOrDie(Source)) {
    Plan = xform::parallelize(*P, xform::PipelineMode::Full);
  }

  double serialChecksum() {
    Interpreter I(*P);
    Memory Serial = I.run(ExecOptions{});
    EXPECT_FALSE(I.faultState().Faulted) << I.faultState().str();
    return Serial.checksumExcluding(deadPrivateIds(Plan));
  }

  ExecOptions baseOptions(unsigned T, Schedule S, ExecEngine E) {
    ExecOptions Opts;
    Opts.Plans = &Plan;
    Opts.Threads = T;
    Opts.Sched = S;
    Opts.MinParallelWork = 0;
    Opts.RuntimeChecks = true;
    Opts.Engine = E;
    return Opts;
  }

  /// Runs under --engine=both and asserts the oracle saw no divergence.
  ExecStats runBoth(unsigned T, Schedule S, const std::string &Ctx) {
    Interpreter I(*P);
    ExecStats Stats;
    I.run(baseOptions(T, S, ExecEngine::Both), &Stats);
    EXPECT_FALSE(I.faultState().Faulted) << Ctx << ": "
                                         << I.faultState().str();
    EXPECT_EQ(Stats.BothComparisons, 1u) << Ctx;
    EXPECT_EQ(Stats.BothMismatches, 0u) << Ctx;
    return Stats;
  }
};

//===----------------------------------------------------------------------===//
// Compiler: lowering, fusion, bailouts
//===----------------------------------------------------------------------===//

/// Per-symbol-id dimension extents for direct compileLoop calls, derived
/// from an allocated Memory (rank-1 constant-extent test programs only).
std::vector<std::vector<int64_t>> extentsOf(const Program &P) {
  Memory M(P);
  std::vector<std::vector<int64_t>> Out(P.numSymbols());
  for (const Symbol *S : P.symbols())
    if (S->isArray() && S->rank() == 1)
      Out[S->id()] = {static_cast<int64_t>(M.buffer(S).size())};
  return Out;
}

TEST(VmCompile, GatherScatterFusesToSuperinstructions) {
  Harness H(PermutationScatter);
  const DoStmt *L = H.P->findLoop("scat");
  ASSERT_NE(L, nullptr);
  vm::CompileResult R = vm::compileLoop(L, extentsOf(*H.P));
  ASSERT_TRUE(R.Ok) << R.Bailout;
  // x(ind(i)) = x(ind(i)) + y(i)*0.5 must lower to one fused
  // gather-modify-scatter (sctadd) — the re-gather of x folds into the
  // superinstruction, so no standalone gather or address arithmetic
  // survives for it.
  EXPECT_EQ(R.Prog.FusedScatters, 1u) << R.Prog.str();
  EXPECT_EQ(R.Prog.FusedGathers, 1u) << R.Prog.str();
  std::string Dis = R.Prog.str();
  EXPECT_NE(Dis.find("sctaddd"), std::string::npos) << Dis;
}

TEST(VmCompile, PureGatherLowersToGth) {
  Harness H(R"(program t
    integer i, n
    integer ind(1000)
    real x(1000), y(1000)
    n = 1000
    init: do i = 1, n
      ind(i) = mod(i * 7, n) + 1
      x(i) = i * 0.5
    end do
    gat: do i = 1, n
      y(i) = x(ind(i)) * 2.0
    end do
  end)");
  const DoStmt *L = H.P->findLoop("gat");
  ASSERT_NE(L, nullptr);
  vm::CompileResult R = vm::compileLoop(L, extentsOf(*H.P));
  ASSERT_TRUE(R.Ok) << R.Bailout;
  EXPECT_EQ(R.Prog.FusedGathers, 1u) << R.Prog.str();
  EXPECT_NE(R.Prog.str().find("gthd"), std::string::npos) << R.Prog.str();
}

TEST(VmCompile, BailoutTaxonomy) {
  // While loops (unbounded trip count) are the canonical structural
  // bailout; the xform pre-check and the compiler must agree.
  auto P = parseOrDie(R"(program t
    integer i, n, k
    real x(100)
    n = 100
    lp: do i = 1, n
      k = 1
      while (k < 3)
        x(i) = x(i) + 1.0
        k = k + 1
      end while
    end do
  end)");
  const DoStmt *L = P->findLoop("lp");
  ASSERT_NE(L, nullptr);
  const char *Why = vm::structuralBailout(L);
  ASSERT_NE(Why, nullptr);
  EXPECT_NE(std::string(Why).find("while"), std::string::npos);
  vm::CompileResult R = vm::compileLoop(L, extentsOf(*P));
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Bailout, Why);
}

TEST(VmCompile, PlansMarkEligibility) {
  Harness H(PermutationScatter);
  const DoStmt *L = H.P->findLoop("scat");
  ASSERT_NE(L, nullptr);
  const xform::LoopPlan *Cond = H.Plan.conditionalPlanFor(L);
  ASSERT_NE(Cond, nullptr);
  EXPECT_TRUE(Cond->VmEligible) << Cond->VmBailout;
}

//===----------------------------------------------------------------------===//
// Differential oracle: benchmarks x schedules x thread counts
//===----------------------------------------------------------------------===//

TEST(VmDifferential, Fig16BenchmarksBitIdenticalEverywhere) {
  for (const auto &B : benchprogs::allBenchmarks(0.05)) {
    Harness H(B.Source);
    for (Schedule S : AllSchedules)
      for (unsigned T : ThreadCounts) {
        std::string Ctx = B.Name + "/" + scheduleName(S) +
                          "/T=" + std::to_string(T);
        ExecStats Stats = H.runBoth(T, S, Ctx);
        if (T > 1)
          EXPECT_GT(Stats.VmParallelLoopRuns, 0u)
              << Ctx << ": the VM engine never engaged";
      }
  }
}

TEST(VmDifferential, RecurrencePromotedKernels) {
  for (const char *Source : {FusedCcs, PrefixSumScatter}) {
    Harness H(Source);
    for (Schedule S : AllSchedules)
      for (unsigned T : ThreadCounts) {
        std::string Ctx = std::string(Source == FusedCcs ? "ccs" : "psum") +
                          "/" + scheduleName(S) + "/T=" + std::to_string(T);
        H.runBoth(T, S, Ctx);
      }
  }
}

TEST(VmDifferential, ConditionalDispatchPassAndFail) {
  {
    Harness H(PermutationScatter);
    for (Schedule S : AllSchedules)
      for (unsigned T : ThreadCounts) {
        ExecStats Stats =
            H.runBoth(T, S, std::string("perm/") + scheduleName(S) +
                                "/T=" + std::to_string(T));
        if (T > 1)
          EXPECT_GT(Stats.VmParallelLoopRuns, 0u);
      }
  }
  {
    // Failed inspection: the loop never dispatches parallel, so the VM
    // never engages — but both engines must still agree bit for bit.
    Harness H(DuplicateScatter);
    ExecStats Stats = H.runBoth(4, Schedule::Static, "dup");
    EXPECT_GT(Stats.RuntimeCheckFails, 0u);
  }
}

TEST(VmDifferential, LocalityReorderedDispatch) {
  Harness H(PermutationScatter);
  double Want = H.serialChecksum();
  for (unsigned T : {2u, 4u}) {
    Interpreter I(*H.P);
    ExecOptions Opts = H.baseOptions(T, Schedule::Static, ExecEngine::Vm);
    Opts.Locality = sched::LocalityMode::Reorder;
    ExecStats Stats;
    Memory M = I.run(Opts, &Stats);
    ASSERT_FALSE(I.faultState().Faulted) << I.faultState().str();
    EXPECT_EQ(M.checksumExcluding(deadPrivateIds(H.Plan)), Want) << "T=" << T;
    EXPECT_GT(Stats.VmParallelLoopRuns, 0u) << "T=" << T;
    EXPECT_GT(Stats.LocalityReorders, 0u)
        << "T=" << T << ": the permuted dispatch must actually be in force";
  }
}

//===----------------------------------------------------------------------===//
// Engine selection, stats, and graceful bailout
//===----------------------------------------------------------------------===//

TEST(VmEngine, ParseAndNames) {
  ExecEngine E;
  EXPECT_TRUE(parseEngine("interp", E));
  EXPECT_EQ(E, ExecEngine::Interp);
  EXPECT_TRUE(parseEngine("vm", E));
  EXPECT_EQ(E, ExecEngine::Vm);
  EXPECT_TRUE(parseEngine("both", E));
  EXPECT_EQ(E, ExecEngine::Both);
  EXPECT_FALSE(parseEngine("jit", E));
  EXPECT_STREQ(engineName(ExecEngine::Vm), "vm");
  EXPECT_STREQ(engineName(ExecEngine::Both), "both");
}

TEST(VmEngine, InterpEngineNeverCompiles) {
  Harness H(PermutationScatter);
  Interpreter I(*H.P);
  ExecStats Stats;
  I.run(H.baseOptions(4, Schedule::Static, ExecEngine::Interp), &Stats);
  EXPECT_EQ(Stats.VmLoopsCompiled, 0u);
  EXPECT_EQ(Stats.VmParallelLoopRuns, 0u);
  EXPECT_EQ(Stats.VmChunksRun, 0u);
}

TEST(VmEngine, VmEngineCompilesOncePerLoop) {
  Harness H(PermutationScatter);
  Interpreter I(*H.P);
  ExecStats Stats;
  Memory M = I.run(H.baseOptions(4, Schedule::Static, ExecEngine::Vm), &Stats);
  ASSERT_FALSE(I.faultState().Faulted) << I.faultState().str();
  EXPECT_GT(Stats.VmLoopsCompiled, 0u);
  EXPECT_GT(Stats.VmChunksRun, 0u);
  EXPECT_EQ(M.checksumExcluding(deadPrivateIds(H.Plan)), H.serialChecksum());
}

TEST(VmEngine, UnsupportedBodyFallsBackPerLoop) {
  // lp is certified parallel but calls through a 9-deep chain — past the
  // VM compiler's inline budget, so it must bail back to the tree walk;
  // par is clean and runs on bytecode. The program result is unchanged.
  Harness H(R"(program t
    integer i, n
    real t
    real x(2000), y(2000)
    procedure s9
      t = t * 2.0 + 1.0
    end
    procedure s8
      call s9
    end
    procedure s7
      call s8
    end
    procedure s6
      call s7
    end
    procedure s5
      call s6
    end
    procedure s4
      call s5
    end
    procedure s3
      call s4
    end
    procedure s2
      call s3
    end
    procedure s1
      call s2
    end
    n = 2000
    par: do i = 1, n
      y(i) = i * 0.5
    end do
    lp: do i = 1, n
      t = y(i)
      call s1
      x(i) = t
    end do
  end)");
  const xform::LoopReport *Rep = H.Plan.reportFor("lp");
  ASSERT_NE(Rep, nullptr);
  ASSERT_TRUE(Rep->Parallel) << Rep->WhyNot;
  const DoStmt *L = H.P->findLoop("lp");
  ASSERT_NE(L, nullptr);
  const xform::LoopPlan *Plan = H.Plan.planFor(L);
  ASSERT_NE(Plan, nullptr);
  EXPECT_FALSE(Plan->VmEligible);
  EXPECT_NE(Plan->VmBailout.find("too deep"), std::string::npos)
      << Plan->VmBailout;

  double Want = H.serialChecksum();
  Interpreter I(*H.P);
  ExecStats Stats;
  Memory M = I.run(H.baseOptions(4, Schedule::Static, ExecEngine::Vm), &Stats);
  ASSERT_FALSE(I.faultState().Faulted) << I.faultState().str();
  EXPECT_EQ(M.checksumExcluding(deadPrivateIds(H.Plan)), Want);
  EXPECT_GT(Stats.VmBailouts, 0u);
  EXPECT_GT(Stats.VmParallelLoopRuns, 0u) << "par must still run on the VM";
}

//===----------------------------------------------------------------------===//
// Fault containment on the VM path
//===----------------------------------------------------------------------===//

TEST(VmFault, MidChunkFaultRollsBackAndReplays) {
  // The injected fault fires inside a VM-executed parallel chunk; the
  // transaction must roll back and the serial replay (always on the tree
  // walk — the semantic reference) must recover bit-identically.
  Harness H(R"(program t
    integer i, n
    real x(2000)
    n = 2000
    init: do i = 1, n
      x(i) = i * 0.5
    end do
    lp: do i = 1, n
      x(i) = x(i) * 2.0 + 1.0
    end do
  end)");
  double Want = H.serialChecksum();
  for (Schedule S : AllSchedules) {
    verify::FaultInjector Inj;
    Inj.faultAt("lp", 1000, /*ParallelOnly=*/true);
    Interpreter I(*H.P);
    ExecOptions Opts = H.baseOptions(4, S, ExecEngine::Vm);
    Opts.Injector = &Inj;
    ExecStats Stats;
    Memory M = I.run(Opts, &Stats);
    const FaultState &FS = I.faultState();
    EXPECT_FALSE(FS.Faulted) << scheduleName(S) << ": " << FS.str();
    EXPECT_EQ(FS.Rollbacks, 1u) << scheduleName(S);
    EXPECT_EQ(FS.ReplaysRecovered, 1u) << scheduleName(S);
    EXPECT_EQ(M.checksumExcluding(deadPrivateIds(H.Plan)), Want)
        << scheduleName(S);
    EXPECT_GT(Stats.VmParallelLoopRuns, 0u) << scheduleName(S);
    EXPECT_EQ(Stats.DispatchReplay, 1u) << scheduleName(S);
  }
}

TEST(VmFault, GenuineFaultIdenticalAttributionAcrossEngines) {
  // A poisoned index dispatched past a lying inspector: both engines must
  // trap the out-of-bounds subscript, roll back, and reproduce it in the
  // serial replay with the same exact attribution.
  const char *Poisoned = R"(program t
    integer i, n
    integer ind(1000)
    real x(1000)
    n = 1000
    fill: do i = 1, n
      ind(i) = mod(i * 7, n) + 1
      x(i) = i * 0.25
    end do
    ind(500) = 2000
    scat: do i = 1, n
      x(ind(i)) = x(ind(i)) + 1.0
    end do
  end)";
  for (ExecEngine E : {ExecEngine::Interp, ExecEngine::Vm}) {
    Harness H(Poisoned);
    verify::FaultInjector Inj;
    Inj.skipInspectionOf("scat");
    Interpreter I(*H.P);
    ExecOptions Opts = H.baseOptions(4, Schedule::Static, E);
    Opts.Injector = &Inj;
    I.run(Opts);
    const FaultState &FS = I.faultState();
    std::string Ctx = engineName(E);
    ASSERT_TRUE(FS.Faulted) << Ctx;
    EXPECT_EQ(FS.Fault.Kind, FaultKind::OutOfBounds) << Ctx;
    EXPECT_TRUE(FS.Fault.DuringReplay) << Ctx;
    EXPECT_EQ(FS.Fault.Loop, "scat") << Ctx;
    EXPECT_EQ(FS.Fault.Iteration, 500) << Ctx;
    EXPECT_EQ(FS.Fault.Value, 2000) << Ctx;
    EXPECT_EQ(FS.Fault.Bound, 1000) << Ctx;
    EXPECT_EQ(FS.Rollbacks, 1u) << Ctx;
  }
}

} // namespace
