//===- tests/test_profiler.cpp - Memory-access profiler tests -------------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// Tests for the iaa::prof sampling profiler: reuse-distance histograms
/// match closed-form expectations on access patterns with known locality
/// (sequential, strided, random-permutation, repeated-single-line) at
/// sample period 1; program results are bit-identical with profiling on
/// or off across every schedule x thread-count combination; conditional
/// dispatch outcomes are attributed per invocation; the invocation cap
/// demotes later invocations to light (counted, unsampled) records; the
/// JSONL export round-trips through the strict parser; and absent
/// hardware counters degrade to "perf": null rather than failing.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "benchprogs/Benchmarks.h"
#include "interp/Interpreter.h"
#include "prof/Profiler.h"
#include "support/Json.h"
#include "verify/FaultInjector.h"
#include "xform/Parallelizer.h"

#include <regex>
#include <set>
#include <string>

using namespace iaa;
using namespace iaa::interp;
using iaa::test::parseOrDie;

namespace {

//===----------------------------------------------------------------------===//
// Harness
//===----------------------------------------------------------------------===//

/// Compiles \p Source through the full pipeline and runs it serially with
/// an exact-recording profiler (period 1, generous caps), returning the
/// session for inspection.
struct Profiled {
  std::unique_ptr<mf::Program> P;
  xform::PipelineResult Plan;
  prof::Session S;

  explicit Profiled(const std::string &Source,
                    prof::SessionOptions O = exactOptions())
      : P(parseOrDie(Source)),
        Plan(xform::parallelize(*P, xform::PipelineMode::Full)), S(O) {}

  static prof::SessionOptions exactOptions() {
    prof::SessionOptions O;
    O.SamplePeriod = 1; // Record every access: closed forms are exact.
    O.MaxSamplesPerArray = 1 << 20;
    return O;
  }

  /// Serial run (single worker, deterministic access order).
  void runSerial() {
    Interpreter I(*P);
    ExecOptions Opts;
    Opts.Prof = &S;
    I.run(Opts);
    S.finalizeAnalysis();
  }

  /// Parallel run against the pipeline plan.
  ExecStats runParallel(unsigned Threads, bool RuntimeChecks = false) {
    Interpreter I(*P);
    ExecOptions Opts;
    Opts.Plans = &Plan;
    Opts.Threads = Threads;
    Opts.MinParallelWork = 0;
    Opts.RuntimeChecks = RuntimeChecks;
    Opts.Prof = &S;
    ExecStats Stats;
    I.run(Opts, &Stats);
    S.finalizeAnalysis();
    return Stats;
  }

  /// The array profile named \p Array inside loop \p Loop's first
  /// recorded invocation; fails the test when absent.
  const prof::ArrayProfile *arrayProfile(const std::string &Loop,
                                         const std::string &Array) {
    for (const prof::LoopProfile &LP : S.invocations()) {
      if (LP.Label != Loop)
        continue;
      for (const prof::ArrayProfile &A : LP.Arrays)
        if (A.Name == Array)
          return &A;
    }
    ADD_FAILURE() << "no profile for array " << Array << " in loop " << Loop;
    return nullptr;
  }
};

/// Sum of every reuse bucket except \p Keep (for "all mass in one bucket"
/// assertions).
uint64_t bucketsExcept(const prof::ReuseHistogram &H, unsigned Keep) {
  uint64_t Sum = 0;
  for (unsigned I = 0; I < prof::ReuseHistogram::NumBuckets; ++I)
    if (I != Keep)
      Sum += H.Buckets[I];
  return Sum;
}

//===----------------------------------------------------------------------===//
// Closed-form reuse-distance histograms (period 1, serial, 8 elems/line)
//===----------------------------------------------------------------------===//

TEST(ProfilerReuse, SequentialSweepIsAllDistanceZero) {
  // x(i) = x(i) + 1 over 512 elements: each 64-byte line (8 elements) is
  // touched 16 consecutive times (read + write per element). One cold
  // miss per line; every other access reuses the current line at
  // distance 0.
  Profiled H(R"(program t
    integer i, n
    real x(512)
    n = 512
    seq: do i = 1, n
      x(i) = x(i) + 1.0
    end do
  end)");
  H.runSerial();
  const prof::ArrayProfile *A = H.arrayProfile("seq", "x");
  ASSERT_NE(A, nullptr);
  EXPECT_EQ(A->Reads, 512u);
  EXPECT_EQ(A->Writes, 512u);
  EXPECT_EQ(A->Sampled, 1024u);
  EXPECT_EQ(A->FootprintLines, 64u);
  EXPECT_EQ(A->Hist.Cold, 64u);
  EXPECT_EQ(A->Hist.Buckets[0], 960u); // 1024 accesses - 64 cold.
  EXPECT_EQ(bucketsExcept(A->Hist, 0), 0u);
  EXPECT_NEAR(A->Hist.localityScore(), 960.0 / 1024.0, 1e-12);
}

TEST(ProfilerReuse, LineStrideNeverReusesALine) {
  // x(i * 8) hits a fresh cache line every iteration: 64 cold misses and
  // an empty reuse histogram — the classic stride-8 worst case.
  Profiled H(R"(program t
    integer i
    real x(512)
    str: do i = 1, 64
      x(i * 8) = 1.0
    end do
  end)");
  H.runSerial();
  const prof::ArrayProfile *A = H.arrayProfile("str", "x");
  ASSERT_NE(A, nullptr);
  EXPECT_EQ(A->Writes, 64u);
  EXPECT_EQ(A->Reads, 0u);
  EXPECT_EQ(A->FootprintLines, 64u);
  EXPECT_EQ(A->Hist.Cold, 64u);
  EXPECT_EQ(A->Hist.Total, 0u);
  EXPECT_DOUBLE_EQ(A->Hist.localityScore(), 0.0);
}

TEST(ProfilerReuse, RepeatedSingleLineIsOneColdMiss) {
  // Reading x(1) a hundred times touches one line: 1 cold, 99 at
  // distance 0, locality 99/100.
  Profiled H(R"(program t
    integer i
    real s
    real x(8)
    rep: do i = 1, 100
      s = s + x(1)
    end do
  end)");
  H.runSerial();
  const prof::ArrayProfile *A = H.arrayProfile("rep", "x");
  ASSERT_NE(A, nullptr);
  EXPECT_EQ(A->Reads, 100u);
  EXPECT_EQ(A->FootprintLines, 1u);
  EXPECT_EQ(A->Hist.Cold, 1u);
  EXPECT_EQ(A->Hist.Buckets[0], 99u);
  EXPECT_EQ(bucketsExcept(A->Hist, 0), 0u);
  EXPECT_NEAR(A->Hist.localityScore(), 0.99, 1e-12);
}

TEST(ProfilerReuse, PermutationRevisitPutsAllMassAtDistance63) {
  // Two identical passes over a random permutation of 64 distinct lines
  // (ind(j) * 8 lands element ind(j)*8-1 on line ind(j)-1). The first
  // pass is 64 cold misses; on the second pass every line was last seen
  // exactly 63 distinct lines ago, so the entire reuse mass lands in
  // bucket log2(63) = 6 — the signature of a working Olken stack
  // distance, which a simple "lines since last access" counter would get
  // wrong for any pattern with repeats.
  Profiled H(R"(program t
    integer i, j, n
    real s
    integer ind(64)
    real x(512)
    n = 64
    init: do i = 1, n
      ind(i) = mod(i * 13, n) + 1
    end do
    prm: do i = 1, 128
      j = mod(i - 1, n) + 1
      s = s + x(ind(j) * 8)
    end do
  end)");
  H.runSerial();
  const prof::ArrayProfile *A = H.arrayProfile("prm", "x");
  ASSERT_NE(A, nullptr);
  EXPECT_EQ(A->Reads, 128u);
  EXPECT_EQ(A->FootprintLines, 64u);
  EXPECT_EQ(A->Hist.Cold, 64u);
  EXPECT_EQ(A->Hist.Buckets[6], 64u); // bucketFor(63) == 6.
  EXPECT_EQ(bucketsExcept(A->Hist, 6), 0u);
  // Distance 63 is far beyond the 32-line locality horizon.
  EXPECT_DOUBLE_EQ(A->Hist.localityScore(), 0.0);
}

//===----------------------------------------------------------------------===//
// Observation only: results are bit-identical with profiling on or off
//===----------------------------------------------------------------------===//

TEST(ProfilerInvariance, ChecksumsBitIdenticalAcrossSchedulesAndThreads) {
  const Schedule AllSchedules[] = {Schedule::Static, Schedule::Dynamic,
                                   Schedule::Guided};
  const unsigned ThreadCounts[] = {1, 2, 4, 7};

  auto P = parseOrDie(benchprogs::fig1aSource());
  xform::PipelineResult Plan =
      xform::parallelize(*P, xform::PipelineMode::Full);
  Interpreter I(*P);
  std::set<unsigned> Dead = deadPrivateIds(Plan);
  double Want = I.run(ExecOptions{}).checksumExcluding(Dead);

  for (Schedule S : AllSchedules)
    for (unsigned T : ThreadCounts) {
      ExecOptions Opts;
      Opts.Plans = &Plan;
      Opts.Threads = T;
      Opts.Sched = S;
      Opts.MinParallelWork = 0;
      prof::Session Prof; // Default sampling, as mfpar --profile uses.
      Opts.Prof = &Prof;
      Memory M = I.run(Opts);
      EXPECT_EQ(M.checksumExcluding(Dead), Want)
          << "schedule " << scheduleName(S) << ", T=" << T;
      EXPECT_FALSE(Prof.invocations().empty());
    }
}

//===----------------------------------------------------------------------===//
// Dispatch attribution
//===----------------------------------------------------------------------===//

TEST(ProfilerDispatch, ConditionalPassAndFailAreAttributed) {
  // A permutation index passes its injectivity inspection: the scat loop
  // must be recorded as conditional-parallel with the inspection cost
  // attributed. A duplicate-heavy index fails it: conditional-serial.
  const char *Permutation = R"(program t
    integer i, n
    integer ind(1000)
    real x(1000), y(1000)
    n = 1000
    init: do i = 1, n
      ind(i) = mod(i * 7, n) + 1
      y(i) = i * 0.5
    end do
    scat: do i = 1, n
      x(ind(i)) = x(ind(i)) + y(i) * 0.5
    end do
  end)";
  {
    Profiled H(Permutation);
    H.runParallel(4, /*RuntimeChecks=*/true);
    bool Saw = false;
    for (const prof::LoopProfile &LP : H.S.invocations())
      if (LP.Label == "scat") {
        Saw = true;
        EXPECT_EQ(LP.Kind, prof::DispatchKind::CondParallel);
        EXPECT_EQ(LP.Threads, 4u);
        EXPECT_GT(LP.InspectUs, 0.0);
      }
    EXPECT_TRUE(Saw);
  }
  {
    const char *Duplicates = R"(program t
      integer i, n
      integer ind(1000)
      real x(1000), y(1000)
      n = 1000
      init: do i = 1, n
        ind(i) = mod(i * 7, 500) + 1
        y(i) = i * 0.5
      end do
      scat: do i = 1, n
        x(ind(i)) = x(ind(i)) + y(i) * 0.5
      end do
    end)";
    Profiled H(Duplicates);
    H.runParallel(4, /*RuntimeChecks=*/true);
    bool Saw = false;
    for (const prof::LoopProfile &LP : H.S.invocations())
      if (LP.Label == "scat") {
        Saw = true;
        EXPECT_EQ(LP.Kind, prof::DispatchKind::CondSerial);
        EXPECT_GT(LP.InspectUs, 0.0);
      }
    EXPECT_TRUE(Saw);
  }
}

TEST(ProfilerDispatch, ParallelLoopRecordsWorkerTimelines) {
  Profiled H(benchprogs::fig1aSource());
  H.runParallel(4);
  bool SawParallel = false;
  for (const prof::LoopProfile &LP : H.S.invocations()) {
    // Every recorded invocation carries a timeline, even serial ones
    // (synthesized single-worker lane with busy == wall).
    ASSERT_FALSE(LP.Workers.empty()) << LP.Label;
    if (LP.Kind != prof::DispatchKind::Parallel)
      continue;
    SawParallel = true;
    unsigned Chunks = 0;
    for (const prof::WorkerTimeline &W : LP.Workers) {
      Chunks += W.Chunks;
      EXPECT_GE(W.BusyUs, 0.0);
    }
    EXPECT_GE(Chunks, LP.Workers.size())
        << LP.Label << ": every engaged worker ran at least one chunk";
  }
  EXPECT_TRUE(SawParallel);
}

TEST(ProfilerDispatch, InvocationCapDemotesToLightRecords) {
  // The inner loop runs 40 times but only the first 32 invocations are
  // fully recorded; the rest are counted in the health aggregate without
  // per-access sampling.
  Profiled H(R"(program t
    integer i, k, n
    real x(64)
    n = 64
    out: do k = 1, 40
      inn: do i = 1, n
        x(i) = x(i) + 1.0
      end do
    end do
  end)");
  H.runSerial();
  unsigned InnRecorded = 0;
  for (const prof::LoopProfile &LP : H.S.invocations())
    if (LP.Label == "inn")
      ++InnRecorded;
  EXPECT_EQ(InnRecorded, 32u);
  bool Saw = false;
  for (const prof::LoopHealth &LH : H.S.health(&H.Plan))
    if (LH.Label == "inn") {
      Saw = true;
      EXPECT_EQ(LH.Invocations, 40u);
      EXPECT_EQ(LH.Recorded, 32u);
    }
  EXPECT_TRUE(Saw);
}

TEST(ProfilerDispatch, CancelledDrainClampsTimelineAndImbalance) {
  // Regression: when a worker's first dynamic poll found the dispenser
  // already cancelled (a sibling faulted immediately), its timeline
  // recorded a zero-chunk lane whose dispatch span could exceed the loop
  // wall, driving StallUs and the aggregated imbalance percentage
  // negative. Single-iteration dynamic chunks with an every-iteration
  // parallel-only fault make the cancelled-drain path all but certain;
  // the pinned invariants must hold regardless of which worker loses the
  // race.
  Profiled H(R"(program t
    integer i, n
    real x(2000)
    n = 2000
    init: do i = 1, n
      x(i) = i * 0.5
    end do
    lp: do i = 1, n
      x(i) = x(i) * 2.0 + 1.0
    end do
  end)");
  verify::FaultInjector Inj;
  Inj.faultAt("lp", verify::InjectionPoint::EveryIteration,
              /*ParallelOnly=*/true);
  for (int Round = 0; Round < 4; ++Round) {
    Interpreter I(*H.P);
    ExecOptions Opts;
    Opts.Plans = &H.Plan;
    Opts.Threads = 7;
    Opts.Sched = Schedule::Dynamic;
    Opts.ChunkSize = 1;
    Opts.MinParallelWork = 0;
    Opts.Injector = &Inj;
    Opts.Prof = &H.S;
    I.run(Opts);
    ASSERT_FALSE(I.faultState().Faulted) << I.faultState().str();
  }
  H.S.finalizeAnalysis();
  for (const prof::LoopProfile &LP : H.S.invocations()) {
    if (LP.Label != "lp")
      continue;
    for (const prof::WorkerTimeline &W : LP.Workers) {
      EXPECT_GE(W.DispatchUs, 0.0) << LP.Invocation << "/" << W.Worker;
      EXPECT_LE(W.DispatchUs, LP.WallUs) << LP.Invocation << "/" << W.Worker
                                         << ": dispatch span past loop wall";
      EXPECT_GE(W.StallUs, 0.0) << LP.Invocation << "/" << W.Worker;
    }
  }
  for (const prof::LoopHealth &LH : H.S.health(&H.Plan))
    EXPECT_GE(LH.ImbalancePct, 0.0) << LH.Label;
}

//===----------------------------------------------------------------------===//
// Export
//===----------------------------------------------------------------------===//

TEST(ProfilerExport, JsonlRoundTripsThroughStrictParser) {
  Profiled H(benchprogs::fig1aSource());
  H.runParallel(4);
  std::string Out = H.S.jsonl(&H.Plan);

  size_t SessionRecords = 0, LoopRecords = 0, HealthRecords = 0;
  size_t Pos = 0;
  while (Pos < Out.size()) {
    size_t End = Out.find('\n', Pos);
    ASSERT_NE(End, std::string::npos) << "jsonl must end in a newline";
    std::string Line = Out.substr(Pos, End - Pos);
    Pos = End + 1;
    std::optional<json::Value> V = json::parse(Line);
    ASSERT_TRUE(V.has_value()) << "unparsable JSONL line: " << Line;
    ASSERT_TRUE(V->isObject()) << Line;
    const json::Value *Type = V->member("type");
    ASSERT_NE(Type, nullptr) << Line;
    if (Type->S == "session")
      ++SessionRecords;
    else if (Type->S == "loop") {
      ++LoopRecords;
      EXPECT_NE(V->member("arrays"), nullptr) << Line;
      EXPECT_NE(V->member("workers"), nullptr) << Line;
      EXPECT_NE(V->member("perf"), nullptr) << Line;
    } else if (Type->S == "health") {
      ++HealthRecords;
      EXPECT_NE(V->member("verdict"), nullptr) << Line;
      EXPECT_NE(V->member("locality"), nullptr) << Line;
    }
  }
  EXPECT_EQ(SessionRecords, 1u);
  EXPECT_FALSE(Out.empty());
  EXPECT_GT(LoopRecords, 0u);
  EXPECT_GT(HealthRecords, 0u);
  // Every executed labeled loop has a health record.
  EXPECT_EQ(HealthRecords, H.S.health(&H.Plan).size());
}

TEST(ProfilerExport, MissingHardwareCountersDegradeToNull) {
  Profiled H(R"(program t
    integer i, n
    real x(100)
    n = 100
    lp: do i = 1, n
      x(i) = i * 2.0
    end do
  end)");
  H.runSerial();
  // On hosts without perf_event access the session must still produce
  // complete records with "perf": null — never fail or omit the field.
  if (!H.S.countersAvailable()) {
    for (const prof::LoopProfile &LP : H.S.invocations()) {
      EXPECT_FALSE(LP.Perf.Valid);
      EXPECT_NE(LP.jsonLine().find("\"perf\": null"), std::string::npos);
    }
  } else {
    // Counters opened: the deltas must be populated and sane.
    for (const prof::LoopProfile &LP : H.S.invocations()) {
      if (LP.Perf.Valid) {
        EXPECT_GT(LP.Perf.Cycles, 0u);
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Sampling determinism (per-worker xorshift reseeding)
//===----------------------------------------------------------------------===//

/// Strips wall-clock noise from a profiler JSONL dump: every timing value
/// (any key ending in _us, plus the timing-derived health percentages),
/// the global chunk-dispatch sequence number (which races across workers
/// even under a static schedule), and the perf object are zeroed, so two
/// runs of the same program compare byte-identical iff the *sampling
/// decisions* were identical.
std::string normalizedJsonl(prof::Session &S,
                            const xform::PipelineResult *Plans) {
  std::string Out = S.jsonl(Plans);
  Out = std::regex_replace(
      Out,
      std::regex("\"([a-z_]*_us|seconds|imbalance_pct|analysis_pct|chunk)\": "
                 "[-+0-9.eE]+"),
      "\"$1\": 0");
  Out = std::regex_replace(
      Out, std::regex("\"perf\": (null|\\{[^}]*\\})"), "\"perf\": null");
  return Out;
}

const char *DeterminismKernel = R"(program t
    integer i, n
    integer ind(2048)
    real x(2048), y(2048)
    n = 2048
    init: do i = 1, n
      ind(i) = mod(i * 11, n) + 1
      x(i) = i * 0.5
      y(i) = mod(i, 5) * 0.25
    end do
    scat: do i = 1, n
      x(ind(i)) = x(ind(i)) + y(i)
    end do
  end)";

TEST(ProfilerDeterminism, TwoRunsProduceByteIdenticalNormalizedJsonl) {
  // The per-worker RNG is reseeded from the worker id at every loop entry,
  // so two fresh sessions over the same program must make exactly the same
  // sampling decisions — in exact mode (period 1) and jittered mode
  // (period 16) alike. Static schedule keeps chunk->worker assignment
  // deterministic; timings are normalized away.
  for (uint64_t Period : {uint64_t(1), uint64_t(16)}) {
    prof::SessionOptions O;
    O.SamplePeriod = Period;
    O.MaxSamplesPerArray = 1 << 20;
    O.HardwareCounters = false;
    std::string Dump[2];
    for (int Run = 0; Run < 2; ++Run) {
      Profiled H(DeterminismKernel, O);
      H.runParallel(4, /*RuntimeChecks=*/true);
      Dump[Run] = normalizedJsonl(H.S, &H.Plan);
    }
    EXPECT_FALSE(Dump[0].empty());
    EXPECT_EQ(Dump[0], Dump[1])
        << "period " << Period
        << ": sampling decisions must be reproducible run-to-run";
  }
}

TEST(ProfilerDeterminism, RepeatedInvocationsSampleIdentically) {
  // Regression for RNG state leaking across invocations: the inner loop
  // runs three times over identical data, so every invocation must admit
  // exactly the same samples (the per-worker RNG and skip distance are
  // reset at loop entry, not carried over).
  prof::SessionOptions O;
  O.SamplePeriod = 4;
  O.MaxSamplesPerArray = 1 << 20;
  O.HardwareCounters = false;
  Profiled H(R"(program t
    integer i, j, n
    real x(1024)
    n = 1024
    outer: do j = 1, 3
      rep: do i = 1, n
        x(i) = i * 1.5 + j
      end do
    end do
  end)",
             O);
  H.runSerial();
  std::vector<uint64_t> Sampled;
  for (const prof::LoopProfile &LP : H.S.invocations()) {
    if (LP.Label != "rep")
      continue;
    ASSERT_EQ(LP.Arrays.size(), 1u);
    Sampled.push_back(LP.Arrays[0].Sampled);
    EXPECT_GT(LP.Arrays[0].Sampled, 0u);
  }
  ASSERT_EQ(Sampled.size(), 3u);
  EXPECT_EQ(Sampled[0], Sampled[1]);
  EXPECT_EQ(Sampled[1], Sampled[2]);
}

TEST(ProfilerDeterminism, TinyChunksDoNotOversample) {
  // Regression for the per-chunk skip reset: with dynamic chunk size 1
  // every chunk is a single iteration, and a skip distance reset at each
  // chunk boundary would degenerate to sampling (nearly) every access.
  // The skip must persist across chunks so an expected 1-in-8 period
  // stays an honest 1-in-8.
  prof::SessionOptions O;
  O.SamplePeriod = 8;
  O.MaxSamplesPerArray = 1 << 20;
  O.HardwareCounters = false;
  Profiled H(R"(program t
    integer i, n
    real x(4096)
    n = 4096
    lp: do i = 1, n
      x(i) = i * 2.0
    end do
  end)",
             O);
  Interpreter I(*H.P);
  ExecOptions Opts;
  Opts.Plans = &H.Plan;
  Opts.Threads = 4;
  Opts.MinParallelWork = 0;
  Opts.Sched = Schedule::Dynamic;
  Opts.ChunkSize = 1;
  Opts.Prof = &H.S;
  I.run(Opts);
  H.S.finalizeAnalysis();
  const prof::ArrayProfile *A = H.arrayProfile("lp", "x");
  ASSERT_NE(A, nullptr);
  EXPECT_GT(A->Sampled, 0u);
  // 4096 accesses at period 8 expect ~512 samples; allow generous jitter
  // but fail the old behavior (one sample per 1-iteration chunk ~= 4096).
  EXPECT_LE(A->Sampled, 4096u / 2)
      << "1-iteration chunks must not defeat the sampling period";
}

} // namespace
