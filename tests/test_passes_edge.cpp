//===- tests/test_passes_edge.cpp - Normalization pass edge cases ---------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "interp/Interpreter.h"
#include "xform/Passes.h"

using namespace iaa;
using namespace iaa::mf;
using namespace iaa::xform;
using iaa::test::parseOrDie;

namespace {

/// Every pass must preserve program semantics; check by checksum.
double checksumOf(const Program &P) {
  interp::Interpreter I(P);
  return I.run({}).checksum();
}

TEST(PassesEdge, ForwardSubstPreservesSemanticsEverywhere) {
  const char *Sources[] = {
      // Substitution into an if condition and both branches.
      R"(program t
        integer a, b, c
        real x(10)
        b = 7
        a = b + 1
        if (a > 5) then
          x(1) = a * 1.0
        else
          x(2) = a * 2.0
        end if
        c = a
        x(3) = c * 1.0
      end)",
      // Substitution stops at a conditional redefinition of a dependency.
      R"(program t
        integer a, b, c
        real x(10)
        b = 7
        a = b + 1
        if (b > 3) then
          b = 0
        end if
        c = a
        x(1) = c * 1.0
        x(2) = b * 1.0
      end)",
      // Do-loop bounds use the substituted value captured at entry.
      R"(program t
        integer a, b, i, c
        real x(30)
        b = 3
        a = b * 2
        do i = 1, a
          x(i) = i * 1.0
        end do
        c = i
        x(20) = c * 1.0
      end)",
  };
  for (const char *Src : Sources) {
    auto P1 = parseOrDie(Src);
    double Before = checksumOf(*P1);
    forwardSubstitute(*P1);
    EXPECT_DOUBLE_EQ(checksumOf(*P1), Before) << Src;
  }
}

TEST(PassesEdge, WhileConditionNotSubstitutedWhenBodyWrites) {
  auto P = parseOrDie(R"(program t
    integer i, lim, c
    real x(20)
    lim = 5
    i = lim
    c = 0
    while (i > 0)
      c = c + 1
      i = i - 1
    end while
    x(1) = c * 1.0
  end)");
  double Before = checksumOf(*P);
  forwardSubstitute(*P);
  EXPECT_DOUBLE_EQ(checksumOf(*P), Before)
      << "substituting `i = lim` into the while condition would loop forever";
}

TEST(PassesEdge, ConstPropIntoAllExpressionPositions) {
  auto P = parseOrDie(R"(program t
    integer n, i, a
    real x(100)
    n = 10
    do i = 1, n
      if (i < n) then
        x(i) = n * 1.0
      end if
    end do
    a = n
    x(50) = a * 1.0
  end)");
  double Before = checksumOf(*P);
  unsigned Changes = propagateConstants(*P);
  EXPECT_GE(Changes, 4u); // Bound, condition, RHS, copy.
  EXPECT_DOUBLE_EQ(checksumOf(*P), Before);
}

TEST(PassesEdge, DcePreservesSemantics) {
  auto P = parseOrDie(R"(program t
    integer a, b, c
    real x(10)
    a = 1
    b = a + 2
    c = b * 3
    x(1) = 5.0
  end)");
  unsigned Removed = eliminateDeadCode(*P);
  EXPECT_EQ(Removed, 3u) << "the whole dead chain must fold";
  // Live state (the array) is untouched; the dead scalars simply stay zero.
  interp::Interpreter I(*P);
  interp::Memory M = I.run({});
  EXPECT_DOUBLE_EQ(M.buffer(P->findSymbol("x")).D[0], 5.0);
  EXPECT_EQ(M.intScalar(P->findSymbol("c")), 0);
}

TEST(PassesEdge, DceKeepsConditionReads) {
  auto P = parseOrDie(R"(program t
    integer a
    real x(10)
    a = 1
    if (a > 0) then
      x(1) = 1.0
    end if
  end)");
  EXPECT_EQ(eliminateDeadCode(*P), 0u)
      << "a is read by the condition and must stay";
}

TEST(PassesEdge, DceKeepsLoopBoundReads) {
  auto P = parseOrDie(R"(program t
    integer a, i
    real x(10)
    a = 5
    do i = 1, a
      x(i) = 1.0
    end do
  end)");
  EXPECT_EQ(eliminateDeadCode(*P), 0u);
}

TEST(PassesEdge, InductionSubstitutionPreservesSemantics) {
  auto P = parseOrDie(R"(program t
    integer i, n, p
    real x(100), y(100)
    n = 50
    p = 0
    do i = 1, n
      p = p + 1
      x(p) = i * 1.0
    end do
    y(1) = p * 1.0
  end)");
  double Before = checksumOf(*P);
  EXPECT_EQ(substituteInductions(*P), 1u);
  EXPECT_DOUBLE_EQ(checksumOf(*P), Before)
      << "the increment stays, so p's final value is unchanged";
}

TEST(PassesEdge, InductionSkipsNonUnitCoefficient) {
  auto P = parseOrDie(R"(program t
    integer i, n, p
    real x(200)
    n = 50
    p = 0
    do i = 1, n
      p = p + 3
      x(p) = 1.0
    end do
  end)");
  // Step 3 is supported (delta constant), so this *does* substitute.
  EXPECT_EQ(substituteInductions(*P), 1u);
  auto *Loop = cast<DoStmt>(P->mainProcedure()->body()[2]);
  const auto *AS = cast<AssignStmt>(Loop->body()[1]);
  sym::SymExpr Sub = sym::SymExpr::fromAst(AS->arrayTarget()->subscript(0));
  EXPECT_EQ(Sub.coeffOfVar(P->findSymbol("i")), 3);
}

TEST(PassesEdge, InductionSkipsMultipleDefs) {
  auto P = parseOrDie(R"(program t
    integer i, n, p
    real x(200)
    n = 50
    p = 0
    do i = 1, n
      p = p + 1
      x(p) = 1.0
      p = p + 1
    end do
  end)");
  EXPECT_EQ(substituteInductions(*P), 0u);
}

TEST(PassesEdge, InductionSkipsNonConstantInit) {
  auto P = parseOrDie(R"(program t
    integer i, n, p, q
    real x(400)
    n = 50
    q = n
    p = q
    do i = 1, n
      p = p + 1
      x(p) = 1.0
    end do
  end)");
  EXPECT_EQ(substituteInductions(*P), 0u)
      << "p's initial value is not a literal after parsing";
}

TEST(PassesEdge, NormalizeRejectsVariableStep) {
  auto P = parseOrDie(R"(program t
    integer i, n, s
    real x(100)
    n = 10
    s = 2
    do i = 1, n, s
      x(i) = 1.0
    end do
  end)");
  DiagnosticEngine Diags;
  EXPECT_FALSE(normalizeProgram(*P, Diags));
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(PassesEdge, NormalizeAcceptsConstantSteps) {
  auto P = parseOrDie(R"(program t
    integer i
    real x(100)
    do i = 1, 99, 2
      x(i) = 1.0
    end do
    do i = 99, 1, -3
      x(i) = 2.0
    end do
  end)");
  DiagnosticEngine Diags;
  EXPECT_TRUE(normalizeProgram(*P, Diags));
}

} // namespace
