//===- tests/test_schedule.cpp - Schedule equivalence suite ---------------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// Every scheduling policy must compute exactly what the serial loop
/// computes: for each Fig. 16 benchmark kernel the memory checksum is
/// bit-identical across {serial, static, dynamic, guided} x T in
/// {1, 2, 4, 7} (7 deliberately does not divide the common trip counts, so
/// ceil splits produce ragged and empty chunks), in both threaded and
/// simulated execution, including scalar-reduction loops.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "benchprogs/Benchmarks.h"
#include "interp/Interpreter.h"
#include "xform/Parallelizer.h"

#include <set>

using namespace iaa;
using namespace iaa::interp;
using iaa::test::parseOrDie;

namespace {

const Schedule AllSchedules[] = {Schedule::Static, Schedule::Dynamic,
                                 Schedule::Guided};
const unsigned ThreadCounts[] = {1, 2, 4, 7};

/// Runs \p P under every schedule x thread-count combination and asserts
/// the checksum (excluding dead privatized arrays) equals the serial run's
/// bit for bit.
void expectScheduleEquivalence(const mf::Program &P,
                               const xform::PipelineResult &Plan,
                               const std::string &Name,
                               int64_t MinParallelWork = 0) {
  Interpreter I(P);
  Memory Serial = I.run(ExecOptions{});
  std::set<unsigned> Dead = deadPrivateIds(Plan);
  double Want = Serial.checksumExcluding(Dead);

  for (Schedule S : AllSchedules)
    for (unsigned T : ThreadCounts) {
      ExecOptions Par;
      Par.Plans = &Plan;
      Par.Threads = T;
      Par.Sched = S;
      Par.MinParallelWork = MinParallelWork;
      ExecStats Stats;
      Memory M = I.run(Par, &Stats);
      EXPECT_EQ(M.checksumExcluding(Dead), Want)
          << Name << ": schedule " << scheduleName(S) << ", T=" << T;
      EXPECT_GE(Stats.ChunksRun, Stats.WorkersEngaged)
          << Name << ": every engaged worker ran at least one chunk";
    }
}

class ScheduleEquiv : public ::testing::TestWithParam<int> {};

TEST_P(ScheduleEquiv, ChecksumBitIdenticalAcrossSchedules) {
  auto All = benchprogs::allBenchmarks(/*Scale=*/0.08);
  const benchprogs::BenchmarkProgram &B = All[GetParam()];
  auto P = parseOrDie(B.Source);
  xform::PipelineResult Plan =
      xform::parallelize(*P, xform::PipelineMode::Full);
  expectScheduleEquivalence(*P, Plan, B.Name);
}

std::string benchCaseName(const ::testing::TestParamInfo<int> &Info) {
  static const char *Names[] = {"TRFD", "DYFESM", "BDNA", "P3M", "TREE"};
  return Names[Info.param];
}

INSTANTIATE_TEST_SUITE_P(Fig16Kernels, ScheduleEquiv,
                         ::testing::Values(0, 1, 2, 3, 4), benchCaseName);

TEST(ScheduleEquivExtra, ReductionLoop) {
  // A scalar sum reduction with a dyadic-exact increment: per-worker
  // partials must merge to the serial sum under every schedule, for every
  // chunk decomposition.
  auto P = parseOrDie(R"(program t
    integer i, n
    real s
    real x(997)
    n = 997
    do i = 1, n
      x(i) = mod(i * 13, 7) * 0.25 + 0.5
    end do
    s = 2.0
    red: do i = 1, n
      s = s + x(i)
    end do
  end)");
  xform::PipelineResult Plan =
      xform::parallelize(*P, xform::PipelineMode::Full);
  ASSERT_NE(Plan.reportFor("red"), nullptr);
  ASSERT_TRUE(Plan.reportFor("red")->Parallel);
  expectScheduleEquivalence(*P, Plan, "reduction");
}

TEST(ScheduleEquivExtra, ExplicitChunkSizes) {
  // Chunk sizes that do and do not divide the trip count, under every
  // policy, must not change the result either.
  auto All = benchprogs::allBenchmarks(/*Scale=*/0.05);
  auto P = parseOrDie(All[4].Source); // TREE: array stacks + reductions.
  xform::PipelineResult Plan =
      xform::parallelize(*P, xform::PipelineMode::Full);
  Interpreter I(*P);
  Memory Serial = I.run(ExecOptions{});
  std::set<unsigned> Dead = deadPrivateIds(Plan);
  double Want = Serial.checksumExcluding(Dead);
  for (Schedule S : AllSchedules)
    for (int64_t Chunk : {1, 3, 64}) {
      ExecOptions Par;
      Par.Plans = &Plan;
      Par.Threads = 4;
      Par.Sched = S;
      Par.ChunkSize = Chunk;
      Par.MinParallelWork = 0;
      Memory M = I.run(Par);
      EXPECT_EQ(M.checksumExcluding(Dead), Want)
          << scheduleName(S) << " chunk=" << Chunk;
    }
}

TEST(ScheduleEquivExtra, SimulateModelsTheSameSchedule) {
  // Simulated execution must produce the same memory state as the serial
  // run under every schedule (it models the dispenser, not just a ceil
  // split).
  auto All = benchprogs::allBenchmarks(/*Scale=*/0.05);
  for (int Which : {1, 3}) { // DYFESM, P3M.
    auto P = parseOrDie(All[Which].Source);
    xform::PipelineResult Plan =
        xform::parallelize(*P, xform::PipelineMode::Full);
    Interpreter I(*P);
    Memory Serial = I.run(ExecOptions{});
    std::set<unsigned> Dead = deadPrivateIds(Plan);
    for (Schedule S : AllSchedules) {
      ExecOptions Par;
      Par.Plans = &Plan;
      Par.Threads = 7;
      Par.Sched = S;
      Par.Simulate = true;
      Par.MinParallelWork = 0;
      Memory M = I.run(Par);
      EXPECT_EQ(M.checksumExcluding(Dead), Serial.checksumExcluding(Dead))
          << All[Which].Name << " simulated " << scheduleName(S);
    }
  }
}

} // namespace
