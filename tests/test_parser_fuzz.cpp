//===- tests/test_parser_fuzz.cpp - Deterministic parser smoke fuzzing ----===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// A deterministic fuzz-smoke pass over the MF parser: handcrafted malformed
/// programs plus seeded byte-level mutations of valid sources. The contract
/// under test is narrow but absolute — the parser either returns a program
/// or returns null with at least one error recorded; it never crashes,
/// never hangs, and never fails silently.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "benchprogs/Benchmarks.h"

#include <cstdint>
#include <string>
#include <vector>

using namespace iaa;

namespace {

/// Runs one input through the parser and checks the no-silent-failure
/// contract.
void smoke(const std::string &Source) {
  DiagnosticEngine Diags;
  std::unique_ptr<mf::Program> P = mf::parseProgram(Source, Diags);
  if (!P)
    EXPECT_TRUE(Diags.hasErrors())
        << "parser returned null without recording an error for:\n"
        << Source;
}

TEST(ParserFuzz, HandcraftedMalformedPrograms) {
  const std::vector<std::string> Cases = {
      // Truncation and structure errors.
      "",
      "program",
      "program t",
      "program t\nend",       // minimal valid — must not error
      "program t\n",          // missing end
      "end",
      "program t\ninteger i\ndo i = 1, 10\nend",       // unclosed do
      "program t\ninteger i\ndo i = 1, 10\nend do",    // missing final end
      "program t\ninteger i\nif (i) then\nend",        // unclosed if
      "program t\nend do\nend",
      "program t\nelse\nend",
      "program t\nend if\nend",
      "program t\nprocedure p\nend",                   // unclosed procedure
      "program t\ncall\nend",
      "program t\ncall nowhere\nend",
      // Declaration errors.
      "program t\ninteger\nend",
      "program t\ninteger 5\nend",
      "program t\nreal a(\nend",
      "program t\nreal a()\nend",
      "program t\nreal a(0\nend",
      "program t\ninteger i, i\nend",
      "program t\nbanana i\nend",
      // Statement and expression errors.
      "program t\ninteger i\ni =\nend",
      "program t\ninteger i\ni = )\nend",
      "program t\ninteger i\ni = (1\nend",
      "program t\ninteger i\ni = 1 +\nend",
      "program t\ninteger i\ni = 1 + * 2\nend",
      "program t\ninteger i\ni = q\nend",              // undeclared
      "program t\ninteger i\nq = 1\nend",
      "program t\nreal a(5)\na(1, 2) = 0.0\nend",      // rank mismatch
      "program t\nreal a(5)\na = 0.0\nend",            // array as scalar
      "program t\ninteger i\ni = mod(1)\nend",         // arity
      "program t\ninteger i\ni = mod(1, 2, 3)\nend",
      "program t\ninteger i\ndo i = 1\nend do\nend",   // missing bound
      "program t\ninteger i\ndo i = , 10\nend do\nend",
      "program t\ndo 5 = 1, 10\nend do\nend",
      "program t\ninteger i\nmylabel mylabel: do i = 1, 2\nend do\nend",
      "program t\ninteger i\nwhile\nend",
      "program t\ninteger i\nwhile (i < 1\nend while\nend",
      // Junk and pathological inputs.
      "\0x\0y",
      "((((((((((",
      ")))))",
      "program t\n! comment only\nend",                // valid
      std::string(4096, '('),
      std::string(4096, 'x'),
      "program t\ninteger i\ni = " + std::string(512, '-') + "1\nend",
  };
  for (const std::string &Source : Cases)
    smoke(Source);
}

/// splitmix64: tiny, deterministic, well-distributed — the standard choice
/// for reproducible test-case derivation.
uint64_t splitmix64(uint64_t &State) {
  State += 0x9e3779b97f4a7c15ULL;
  uint64_t Z = State;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

TEST(ParserFuzz, SeededMutationsOfValidSources) {
  const std::string Seeds[] = {benchprogs::fig1aSource(),
                               benchprogs::fig3Source(),
                               benchprogs::fig14Source()};
  const char Replacements[] = {'(', ')', ',', '=', '+', '\n', ' ',
                               '0', 'q', ':', '!', '\t', '\0'};
  uint64_t State = 0x1aa2000ULL; // Fixed seed: the corpus never changes.
  unsigned Ran = 0;
  for (const std::string &Seed : Seeds) {
    for (int Round = 0; Round < 12; ++Round) {
      std::string Mutant = Seed;
      // 1-4 point mutations per round.
      unsigned Edits = 1 + splitmix64(State) % 4;
      for (unsigned E = 0; E < Edits; ++E) {
        size_t Pos = splitmix64(State) % Mutant.size();
        uint64_t R = splitmix64(State);
        switch (R % 3) {
        case 0: // replace
          Mutant[Pos] = Replacements[R % (sizeof(Replacements))];
          break;
        case 1: // delete
          Mutant.erase(Pos, 1 + R % 7);
          break;
        case 2: // truncate (prefixes exercise every partial construct)
          Mutant.resize(Pos);
          break;
        }
        if (Mutant.empty())
          break;
      }
      smoke(Mutant);
      ++Ran;
    }
  }
  EXPECT_GE(Ran, 36u);
}

} // namespace
