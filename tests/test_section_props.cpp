//===- tests/test_section_props.cpp - Property-based section algebra ------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// Property-style sweeps validating the section algebra against concrete
/// integer sets: every MAY operation must over-approximate the exact set,
/// every MUST operation must under-approximate it, across a grid of
/// constant intervals. These invariants are exactly what Sec. 3.2.3 demands
/// ("In order not to cause incorrect transformations, the approximation
/// must be conservative").
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "section/Section.h"

#include <set>
#include <tuple>

using namespace iaa;
using namespace iaa::sec;
using namespace iaa::sym;
using iaa::test::parseOrDie;

namespace {

using IntSet = std::set<int64_t>;

IntSet setOf(int64_t Lo, int64_t Hi) {
  IntSet S;
  for (int64_t V = Lo; V <= Hi; ++V)
    S.insert(V);
  return S;
}

IntSet unionOf(const IntSet &A, const IntSet &B) {
  IntSet R = A;
  R.insert(B.begin(), B.end());
  return R;
}

IntSet diffOf(const IntSet &A, const IntSet &B) {
  IntSet R;
  for (int64_t V : A)
    if (!B.count(V))
      R.insert(V);
  return R;
}

IntSet intersectOf(const IntSet &A, const IntSet &B) {
  IntSet R;
  for (int64_t V : A)
    if (B.count(V))
      R.insert(V);
  return R;
}

/// Concretizes a constant-bounded section (test inputs only).
IntSet concrete(const Section &S, int64_t Universe = 64) {
  if (S.isEmpty())
    return {};
  if (S.isUniverse())
    return setOf(-Universe, Universe);
  return setOf(S.lo().constValue(), S.hi().constValue());
}

Section ival(int64_t Lo, int64_t Hi) {
  return Section::interval(SymExpr::constant(Lo), SymExpr::constant(Hi));
}

bool superset(const IntSet &Big, const IntSet &Small) {
  for (int64_t V : Small)
    if (!Big.count(V))
      return false;
  return true;
}

/// The interval grid: (ALo, ALen, BLo, BLen).
class SectionAlgebra
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {
protected:
  void SetUp() override {
    auto [ALo, ALen, BLo, BLen] = GetParam();
    A = ival(ALo, ALo + ALen);
    B = ival(BLo, BLo + BLen);
    CA = concrete(A);
    CB = concrete(B);
  }
  RangeEnv Env;
  Section A, B;
  IntSet CA, CB;
};

TEST_P(SectionAlgebra, UnionMayOverApproximates) {
  Section U = Section::unionMay(A, B, Env);
  EXPECT_TRUE(superset(concrete(U), unionOf(CA, CB))) << U.str();
}

TEST_P(SectionAlgebra, UnionMustUnderApproximates) {
  Section U = Section::unionMust(A, B, Env);
  EXPECT_TRUE(superset(unionOf(CA, CB), concrete(U))) << U.str();
}

TEST_P(SectionAlgebra, SubtractMayOverApproximates) {
  Section D = Section::subtractMay(A, B, Env);
  EXPECT_TRUE(superset(concrete(D), diffOf(CA, CB))) << D.str();
}

TEST_P(SectionAlgebra, SubtractMustUnderApproximates) {
  Section D = Section::subtractMust(A, B, Env);
  IntSet CD = concrete(D);
  EXPECT_TRUE(superset(diffOf(CA, CB), CD)) << D.str();
  // Every MUST element must really be in A and not in B.
  for (int64_t V : CD) {
    EXPECT_TRUE(CA.count(V));
    EXPECT_FALSE(CB.count(V));
  }
}

TEST_P(SectionAlgebra, IntersectMustUnderApproximates) {
  Section I = Section::intersectMust(A, B, Env);
  EXPECT_TRUE(superset(intersectOf(CA, CB), concrete(I))) << I.str();
}

TEST_P(SectionAlgebra, DisjointnessIsSound) {
  if (Section::provablyDisjoint(A, B, Env))
    EXPECT_TRUE(intersectOf(CA, CB).empty());
}

TEST_P(SectionAlgebra, ContainmentIsSound) {
  if (Section::provablyContains(A, B, Env))
    EXPECT_TRUE(superset(CA, CB));
  if (Section::provablyContains(B, A, Env))
    EXPECT_TRUE(superset(CB, CA));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SectionAlgebra,
    ::testing::Combine(::testing::Values(-3, 0, 2, 7),
                       ::testing::Values(0, 1, 4, 9),
                       ::testing::Values(-5, 0, 3, 8),
                       ::testing::Values(0, 2, 6)));

//===----------------------------------------------------------------------===//
// Aggregation against brute force
//===----------------------------------------------------------------------===//

/// Sweep parameters: S(i) = [a*i + b : a*i + b + w], i in [1, N].
class AggregationSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(AggregationSweep, MayCoversMustIsCovered) {
  auto [AC, BC, W, N] = GetParam();
  auto P = parseOrDie("program t\ninteger i\ni = 0\nend");
  const mf::Symbol *I = P->findSymbol("i");

  SymExpr Lo = SymExpr::var(I) * AC + BC;
  SymExpr Hi = Lo + W;
  Section S = Section::interval(Lo, Hi);

  RangeEnv Env;
  Env.bindVar(I, SymRange::of(SymExpr::constant(1), SymExpr::constant(N)));

  // Brute-force union over the iteration space.
  IntSet Exact;
  for (int64_t It = 1; It <= N; ++It)
    for (int64_t V = AC * It + BC; V <= AC * It + BC + W; ++V)
      Exact.insert(V);

  Section May = Section::aggregateMay(S, I, SymExpr::constant(1),
                                      SymExpr::constant(N), Env);
  EXPECT_TRUE(superset(concrete(May, 4096), Exact)) << May.str();

  Section Must = Section::aggregateMust(S, I, SymExpr::constant(1),
                                        SymExpr::constant(N), Env);
  EXPECT_TRUE(superset(Exact, concrete(Must, 4096)))
      << Must.str() << " vs exact size " << Exact.size();
  // When the per-iteration windows leave no holes, MUST must be exact.
  if (std::abs(AC) <= W + 1 && !Must.isEmpty())
    EXPECT_EQ(concrete(Must, 4096).size(), Exact.size());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AggregationSweep,
    ::testing::Combine(::testing::Values(-2, -1, 1, 2, 3),
                       ::testing::Values(0, 5),
                       ::testing::Values(0, 1, 3),
                       ::testing::Values(1, 7, 16)));

} // namespace
