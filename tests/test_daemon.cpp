//===- tests/test_daemon.cpp - Compile-service daemon tests ---------------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// The mfpard compile service end to end: protocol fuzzing (malformed,
/// truncated, oversized, and type-confused frames must come back as
/// structured errors, never a crash), artifact-cache key correctness (same
/// program under different flags must miss; an edited program must not
/// reuse stale plans), per-session state isolation, and a concurrent soak
/// that interleaves healthy, faulting, deadline-blowing, and over-budget
/// requests across many clients — the daemon must survive all of it and
/// healthy results must be bit-identical to a one-shot in-process run.
///
/// Suite names here start with "Daemon" or "Session" so the CI
/// ThreadSanitizer job's --gtest_filter picks them up.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "interp/Interpreter.h"
#include "server/ArtifactCache.h"
#include "server/Client.h"
#include "server/Daemon.h"
#include "server/Protocol.h"
#include "server/Session.h"
#include "server/Watchdog.h"
#include "support/Json.h"
#include "xform/Parallelizer.h"

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace iaa;
using namespace iaa::server;

namespace {

/// A parallelizable irregular scatter with a deterministic result. The
/// \p Label lands in a comment, so differently-labeled copies hash to
/// different artifacts while computing the same values.
std::string healthySource(const std::string &Label = "t") {
  return "program p\n"
         "  ! " + Label + "\n"
         "  integer i, idx(2000)\n"
         "  real x(2000), y(2000)\n"
         "  fill: do i = 1, 2000\n"
         "    idx(i) = 2001 - i\n"
         "    y(i) = i * 0.5\n"
         "  end do\n"
         "  sc: do i = 1, 2000\n"
         "    x(idx(i)) = y(i) * 2.0 + 1.0\n"
         "  end do\n"
         "end\n";
}

/// 8M iterations over a 64 MB array: always outlives a small deadline and
/// always overflows a 1 MB memory budget (at allocation, before any
/// iteration runs).
const char *bigSource() {
  return "program p\n"
         "  integer i\n"
         "  real x(8000000)\n"
         "  lp: do i = 1, 8000000\n"
         "    x(i) = i * 1.0\n"
         "  end do\n"
         "end\n";
}

/// Scatters through an index array poisoned past the bound: a genuine
/// program bug that faults under any fault policy.
const char *oobSource() {
  return "program p\n"
         "  integer i, idx(100)\n"
         "  real x(100)\n"
         "  fill: do i = 1, 100\n"
         "    idx(i) = i\n"
         "  end do\n"
         "  idx(50) = 400\n"
         "  sc: do i = 1, 100\n"
         "    x(idx(i)) = i * 1.0\n"
         "  end do\n"
         "end\n";
}

/// An affine loop the pipeline certifies parallel that still runs out of
/// bounds at runtime: the fault is trapped mid-chunk, rolled back, and
/// replayed — producing a FaultReplay containment remark. Big enough
/// (100k iterations) to clear the MinParallelWork serial-dispatch cutoff.
const char *parallelOobSource() {
  return "program p\n"
         "  integer i\n"
         "  real x(100000)\n"
         "  sc: do i = 1, 100000\n"
         "    x(i + 50000) = i * 1.0\n"
         "  end do\n"
         "end\n";
}

std::string requestLine(const std::string &Id, const std::string &Op,
                        const std::string &Source,
                        const std::string &Extra = "") {
  std::string L = "{\"id\": " + json::str(Id) + ", \"op\": " + json::str(Op);
  if (!Source.empty())
    L += ", \"source\": " + json::str(Source);
  if (!Extra.empty())
    L += ", " + Extra;
  return L + "}";
}

/// The checksum a one-shot in-process run (the mfpar code path) produces
/// for \p Source under the daemon's default request options.
double referenceChecksum(const std::string &Source) {
  std::unique_ptr<mf::Program> P = test::parseOrDie(Source);
  xform::PipelineResult R = xform::parallelize(*P, xform::PipelineMode::Full);
  interp::Interpreter I(*P);
  interp::ExecOptions Opts;
  Opts.Plans = &R;
  Opts.Threads = 4;
  Opts.Simulate = true;
  interp::Memory Mem = I.run(Opts);
  EXPECT_FALSE(I.faultState().Faulted);
  return Mem.checksumExcluding(interp::deadPrivateIds(R));
}

std::string uniqueSocketPath(const char *Tag) {
  return "/tmp/iaa_daemon_test_" + std::to_string(::getpid()) + "_" + Tag +
         ".sock";
}

/// A Session wired to freshly-owned service machinery, for tests that
/// exercise sessions without a socket.
struct SessionHarness {
  ArtifactCache Artifacts;
  Watchdog Deadlines;
  interp::WorkerPool Pool{2};
  ServiceCounters Counters;
  std::atomic<bool> ShutdownFlag{false};

  SessionEnv env(size_t MaxRequestBytes = 1 << 20) {
    SessionEnv E;
    E.Artifacts = &Artifacts;
    E.Deadlines = &Deadlines;
    E.SharedPool = &Pool;
    E.Counters = &Counters;
    E.ShutdownFlag = &ShutdownFlag;
    E.MaxRequestBytes = MaxRequestBytes;
    return E;
  }
};

/// Feeds \p Line through a session and demands a well-formed single-line
/// JSON object with the given status in response.
void expectStatus(Session &S, const std::string &Line,
                  const std::string &Status) {
  std::string Out = S.handleLine(Line);
  ASSERT_EQ(Out.find('\n'), std::string::npos) << Out;
  std::optional<json::Value> V = json::parse(Out);
  ASSERT_TRUE(V.has_value()) << "unparseable response: " << Out;
  ASSERT_TRUE(V->isObject()) << Out;
  const json::Value *St = V->member("status");
  ASSERT_NE(St, nullptr) << Out;
  EXPECT_EQ(St->S, Status) << "for request: " << Line << "\nresponse: "
                           << Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// Protocol fuzzing
//===----------------------------------------------------------------------===//

TEST(DaemonProtocol, MalformedFramesAreStructuredErrors) {
  SessionHarness H;
  Session S(H.env());
  const char *Bad[] = {
      "",
      "{",
      "}",
      "not json at all",
      "123",
      "\"just a string\"",
      "[1, 2, 3]",
      "null",
      "true",
      "{}",
      "{\"op\": 42}",
      "{\"op\": \"frobnicate\"}",
      "{\"op\": \"run\"}",
      "{\"op\": \"compile\"}",
      "{\"op\": \"run\", \"source\": 17}",
      "{\"op\": \"run\", \"source\": [\"a\"]}",
      "{\"op\": \"run\", \"source\": \"program p\\nend\\n\", \"id\": []}",
      "{\"op\": \"run\", \"source\": \"x\", \"threads\": 0}",
      "{\"op\": \"run\", \"source\": \"x\", \"threads\": 100000}",
      "{\"op\": \"run\", \"source\": \"x\", \"threads\": 2.5}",
      "{\"op\": \"run\", \"source\": \"x\", \"threads\": -4}",
      "{\"op\": \"run\", \"source\": \"x\", \"mode\": \"bogus\"}",
      "{\"op\": \"run\", \"source\": \"x\", \"schedule\": \"gided\"}",
      "{\"op\": \"run\", \"source\": \"x\", \"engine\": \"jit\"}",
      "{\"op\": \"run\", \"source\": \"x\", \"locality\": \"maybe\"}",
      "{\"op\": \"run\", \"source\": \"x\", \"audit\": \"sometimes\"}",
      "{\"op\": \"run\", \"source\": \"x\", \"deadline_ms\": -1}",
      "{\"op\": \"run\", \"source\": \"x\", \"deadline_ms\": 1e300}",
      "{\"op\": \"run\", \"source\": \"x\", \"deadline_ms\": \"soon\"}",
      "{\"op\": \"run\", \"source\": \"x\", \"mem_limit_mb\": -9}",
      "{\"op\": \"run\", \"source\": \"x\", \"profile\": \"yes\"}",
      "{\"op\": \"run\", \"source\": \"x\"} trailing garbage",
  };
  for (const char *Line : Bad)
    expectStatus(S, Line, "error");
  // The session stayed usable through all of it.
  expectStatus(S, "{\"op\": \"ping\"}", "pong");
}

TEST(DaemonProtocol, AbortFaultActionIsRefused) {
  // A tenant must not be able to bring the whole service down; the abort
  // policy is rejected at the protocol boundary, not deep in the run.
  SessionHarness H;
  Session S(H.env());
  expectStatus(S,
               requestLine("a", "run", healthySource(),
                           "\"on_fault\": \"abort\""),
               "error");
  expectStatus(S,
               requestLine("a", "run", healthySource(),
                           "\"on_fault\": \"report\""),
               "ok");
}

TEST(DaemonProtocol, TruncatedFramesNeverCrash) {
  SessionHarness H;
  Session S(H.env());
  std::string Full = requestLine("t", "run", healthySource(),
                                 "\"counters\": true, \"remarks\": true");
  // Every prefix of a valid frame: either a structured error or (for the
  // rare prefix that is itself valid JSON) a normal response.
  for (size_t Len = 0; Len < Full.size(); ++Len) {
    std::string Out = S.handleLine(Full.substr(0, Len));
    std::optional<json::Value> V = json::parse(Out);
    ASSERT_TRUE(V.has_value()) << Out;
    ASSERT_NE(V->member("status"), nullptr) << Out;
  }
  expectStatus(S, Full, "ok");
}

TEST(DaemonProtocol, OversizedFrameIsBounded) {
  SessionHarness H;
  Session S(H.env(/*MaxRequestBytes=*/256));
  std::string Huge = requestLine("h", "run", std::string(4096, 'x'));
  std::string Out = S.handleLine(Huge);
  std::optional<json::Value> V = json::parse(Out);
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(V->member("status")->S, "error");
  EXPECT_NE(V->member("error")->S.find("exceeds"), std::string::npos)
      << Out;
  // A frame just under the bound goes through normally.
  expectStatus(S, "{\"op\": \"ping\"}", "pong");
}

TEST(DaemonProtocol, OversizedStreamIsDiscardedUntilResync) {
  // A client streaming past the frame bound with no newline gets exactly
  // one structured error when the bound is crossed; everything after that
  // is discarded (not buffered — the daemon's memory stays bounded) until
  // the newline resynchronizes the stream, after which the connection
  // serves normally again.
  DaemonConfig Config;
  Config.SocketPath = uniqueSocketPath("stream");
  Config.ServiceThreads = 1;
  Config.MaxRequestBytes = 512;
  Daemon D(Config);
  std::string Err;
  ASSERT_TRUE(D.start(&Err)) << Err;

  Client Cl;
  ASSERT_TRUE(Cl.connect(Config.SocketPath, &Err)) << Err;
  std::string Junk(1024, 'x');
  ASSERT_TRUE(Cl.sendRaw(Junk, &Err)) << Err;
  std::string Out;
  ASSERT_TRUE(Cl.readLine(Out, &Err)) << Err;
  std::optional<json::Value> V = json::parse(Out);
  ASSERT_TRUE(V.has_value()) << Out;
  EXPECT_EQ(V->member("status")->S, "error");
  EXPECT_NE(V->member("error")->S.find("exceeds"), std::string::npos)
      << Out;

  // 64 KB more of the same frame: were the daemon still buffering (or
  // re-answering), these sends would eventually stall against a reader
  // that stopped draining, and the ping below would see stale errors.
  for (int I = 0; I < 64; ++I)
    ASSERT_TRUE(Cl.sendRaw(Junk, &Err)) << Err;
  ASSERT_TRUE(Cl.sendRaw("\n", &Err)) << Err;
  ASSERT_TRUE(Cl.roundTrip("{\"op\": \"ping\", \"id\": \"after\"}", Out,
                           &Err))
      << Err;
  V = json::parse(Out);
  ASSERT_TRUE(V.has_value()) << Out;
  EXPECT_EQ(V->member("id")->S, "after");
  EXPECT_EQ(V->member("status")->S, "pong");
  D.stop();
}

TEST(DaemonProtocol, ResponsesEchoTheRequestId) {
  SessionHarness H;
  Session S(H.env());
  std::string Out =
      S.handleLine(requestLine("req-123", "compile", healthySource()));
  std::optional<json::Value> V = json::parse(Out);
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(V->member("id")->S, "req-123");
  // Numeric ids are accepted and echoed as their decimal spelling.
  Out = S.handleLine("{\"op\": \"ping\", \"id\": 7}");
  V = json::parse(Out);
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(V->member("id")->S, "7");
}

//===----------------------------------------------------------------------===//
// Artifact-cache correctness
//===----------------------------------------------------------------------===//

TEST(DaemonCache, SameSourceDifferentFlagsMiss) {
  ArtifactCache Cache;
  std::string Src = healthySource();
  bool Hit = true;
  auto Full = Cache.get(Src, xform::PipelineMode::Full,
                        verify::AuditMode::Off, Hit);
  EXPECT_FALSE(Hit);
  ASSERT_TRUE(Full->ok());

  // Identical key: hit, same artifact object.
  auto Again = Cache.get(Src, xform::PipelineMode::Full,
                         verify::AuditMode::Off, Hit);
  EXPECT_TRUE(Hit);
  EXPECT_EQ(Full.get(), Again.get());

  // Same hash, different pipeline mode: must be a distinct artifact — the
  // NoIAA pipeline produces different plans for the same program.
  auto NoIaa = Cache.get(Src, xform::PipelineMode::NoIAA,
                         verify::AuditMode::Off, Hit);
  EXPECT_FALSE(Hit);
  EXPECT_NE(Full.get(), NoIaa.get());

  // Same hash, different audit mode: also distinct (audits can demote).
  auto Audited = Cache.get(Src, xform::PipelineMode::Full,
                           verify::AuditMode::Strict, Hit);
  EXPECT_FALSE(Hit);
  EXPECT_NE(Full.get(), Audited.get());

  EXPECT_EQ(Cache.size(), 3u);
  EXPECT_EQ(Cache.hits(), 1u);
  EXPECT_EQ(Cache.misses(), 3u);
}

TEST(DaemonCache, EditedProgramDoesNotReuseStalePlans) {
  ArtifactCache Cache;
  bool Hit = false;
  auto A = Cache.get(healthySource("v1"), xform::PipelineMode::Full,
                     verify::AuditMode::Off, Hit);
  auto B = Cache.get(healthySource("v2"), xform::PipelineMode::Full,
                     verify::AuditMode::Off, Hit);
  EXPECT_FALSE(Hit);
  ASSERT_TRUE(A->ok());
  ASSERT_TRUE(B->ok());
  EXPECT_NE(A.get(), B.get());
  EXPECT_NE(A->Prog.get(), B->Prog.get());
  // Each artifact's plans point into its own program, not the other's.
  EXPECT_NE(&A->Plans, &B->Plans);
}

TEST(DaemonCache, EditedProgramChangesTheResult) {
  // The same session running an edited program must see the new program's
  // values; a stale plan or memory image would reproduce the old checksum.
  SessionHarness H;
  Session S(H.env());
  std::string V1 = "program p\n  integer i\n  real x(10)\n"
                   "  lp: do i = 1, 10\n    x(i) = i * 2.0\n  end do\nend\n";
  std::string V2 = "program p\n  integer i\n  real x(10)\n"
                   "  lp: do i = 1, 10\n    x(i) = i * 3.0\n  end do\nend\n";
  std::string Out1 = S.handleLine(requestLine("v1", "run", V1));
  std::string Out2 = S.handleLine(requestLine("v2", "run", V2));
  std::optional<json::Value> R1 = json::parse(Out1);
  std::optional<json::Value> R2 = json::parse(Out2);
  ASSERT_TRUE(R1 && R2);
  ASSERT_NE(R1->member("checksum"), nullptr) << Out1;
  ASSERT_NE(R2->member("checksum"), nullptr) << Out2;
  EXPECT_EQ(R1->member("checksum")->N, referenceChecksum(V1));
  EXPECT_EQ(R2->member("checksum")->N, referenceChecksum(V2));
  EXPECT_NE(R1->member("checksum")->N, R2->member("checksum")->N);
}

TEST(DaemonCache, ParseFailureIsNegativelyCached) {
  ArtifactCache Cache;
  bool Hit = true;
  auto Bad = Cache.get("program broken\n", xform::PipelineMode::Full,
                       verify::AuditMode::Off, Hit);
  EXPECT_FALSE(Hit);
  EXPECT_FALSE(Bad->ok());
  EXPECT_FALSE(Bad->BuildError.empty());
  auto Again = Cache.get("program broken\n", xform::PipelineMode::Full,
                         verify::AuditMode::Off, Hit);
  EXPECT_TRUE(Hit);
  EXPECT_EQ(Bad.get(), Again.get());
}

TEST(DaemonCache, EvictionKeepsTheCacheBounded) {
  ArtifactCache Cache(/*MaxEntries=*/4);
  bool Hit = false;
  for (int I = 0; I < 16; ++I)
    Cache.get(healthySource("evict" + std::to_string(I)),
              xform::PipelineMode::Full, verify::AuditMode::Off, Hit);
  EXPECT_LE(Cache.size(), 4u);
  // Still functional after evictions.
  auto A = Cache.get(healthySource("evict15"), xform::PipelineMode::Full,
                     verify::AuditMode::Off, Hit);
  EXPECT_TRUE(A->ok());
}

TEST(SessionPrograms, ResidentProgramStateIsBounded) {
  // A long-lived connection cycling through distinct programs must not
  // accumulate a ProgramState (artifact pin + interpreter) per program
  // forever; the per-session map LRU-recycles past its bound, and an
  // evicted program resubmits cleanly with its own values.
  SessionHarness H;
  Session S(H.env());
  auto src = [](int K) {
    return "program p\n  integer i\n  real x(10)\n"
           "  lp: do i = 1, 10\n    x(i) = i * " + std::to_string(K) +
           ".0\n  end do\nend\n";
  };
  const int Distinct = 40;
  for (int K = 1; K <= Distinct; ++K)
    expectStatus(S, requestLine("k" + std::to_string(K), "run", src(K)),
                 "ok");
  EXPECT_LE(S.programCount(), 16u);
  EXPECT_LT(S.programCount(), static_cast<size_t>(Distinct));

  std::string Out = S.handleLine(requestLine("again", "run", src(1)));
  std::optional<json::Value> V = json::parse(Out);
  ASSERT_TRUE(V.has_value());
  ASSERT_EQ(V->member("status")->S, "ok") << Out;
  EXPECT_EQ(V->member("checksum")->N, referenceChecksum(src(1)));
}

//===----------------------------------------------------------------------===//
// Session isolation
//===----------------------------------------------------------------------===//

TEST(SessionIsolation, CountersArePerSession) {
  SessionHarness H;
  Session A(H.env());
  Session B(H.env());
  std::string Req =
      requestLine("r", "run", healthySource(), "\"counters\": true");
  // A runs twice, B once; each session's counters must reflect only its
  // own requests even though both share the worker pool and cache.
  A.handleLine(Req);
  std::string OutA = A.handleLine(Req);
  std::string OutB = B.handleLine(Req);
  std::optional<json::Value> VA = json::parse(OutA);
  std::optional<json::Value> VB = json::parse(OutB);
  ASSERT_TRUE(VA && VB);
  const json::Value *CA = VA->member("counters");
  const json::Value *CB = VB->member("counters");
  ASSERT_NE(CA, nullptr) << OutA;
  ASSERT_NE(CB, nullptr) << OutB;
  const json::Value *RunsA = CA->member("interp.interp_runs");
  const json::Value *RunsB = CB->member("interp.interp_runs");
  ASSERT_NE(RunsA, nullptr);
  ASSERT_NE(RunsB, nullptr);
  EXPECT_EQ(RunsA->N, 2.0);
  EXPECT_EQ(RunsB->N, 1.0);
}

TEST(SessionIsolation, FaultRemarksStayInTheFaultingSession) {
  SessionHarness H;
  Session Faulty(H.env());
  Session Clean(H.env());
  Faulty.handleLine(requestLine("f", "run", parallelOobSource(),
                                "\"remarks\": true"));
  std::string Out = Clean.handleLine(
      requestLine("c", "run", healthySource(), "\"remarks\": true"));
  std::optional<json::Value> V = json::parse(Out);
  ASSERT_TRUE(V.has_value());
  const json::Value *Remarks = V->member("remarks_jsonl");
  ASSERT_NE(Remarks, nullptr) << Out;
  EXPECT_EQ(Remarks->S.find("fault"), std::string::npos)
      << "clean session leaked the faulting session's remarks";
  EXPECT_GE(Faulty.remarks().size(), 1u);
  EXPECT_EQ(Clean.remarks().size(), 0u);
}

TEST(SessionIsolation, FaultDoesNotPoisonSubsequentRuns) {
  // One session, alternating faulting and healthy requests: the write-set
  // rollback must leave each fresh run's memory image untouched.
  SessionHarness H;
  Session S(H.env());
  double Want = referenceChecksum(healthySource());
  for (int I = 0; I < 3; ++I) {
    std::string FOut = S.handleLine(requestLine("f", "run", oobSource()));
    std::optional<json::Value> FV = json::parse(FOut);
    ASSERT_TRUE(FV.has_value());
    EXPECT_EQ(FV->member("status")->S, "fault");
    EXPECT_EQ(FV->member("exit_equivalent")->N, 4.0);

    std::string HOut =
        S.handleLine(requestLine("h", "run", healthySource()));
    std::optional<json::Value> HV = json::parse(HOut);
    ASSERT_TRUE(HV.has_value());
    ASSERT_EQ(HV->member("status")->S, "ok") << HOut;
    EXPECT_EQ(HV->member("checksum")->N, Want);
  }
}

//===----------------------------------------------------------------------===//
// Daemon over a real socket
//===----------------------------------------------------------------------===//

TEST(DaemonSoak, ConcurrentMixedWorkload) {
  DaemonConfig Config;
  Config.SocketPath = uniqueSocketPath("soak");
  Config.PoolThreads = 4;
  Config.ServiceThreads = 8;
  Config.QueueCap = 64;
  Daemon D(Config);
  std::string Err;
  ASSERT_TRUE(D.start(&Err)) << Err;

  const unsigned Clients = 8;
  const unsigned Rounds = 3;
  std::vector<std::vector<std::string>> Failures(Clients);
  std::vector<std::thread> Threads;
  std::vector<double> WantChecksum(Clients);
  for (unsigned C = 0; C < Clients; ++C)
    WantChecksum[C] =
        referenceChecksum(healthySource("client" + std::to_string(C)));

  for (unsigned C = 0; C < Clients; ++C) {
    Threads.emplace_back([&, C] {
      auto fail = [&](const std::string &Why) {
        Failures[C].push_back(Why);
      };
      Client Cl;
      std::string E;
      if (!Cl.connect(Config.SocketPath, &E)) {
        fail("connect: " + E);
        return;
      }
      std::string Mine = healthySource("client" + std::to_string(C));
      for (unsigned R = 0; R < Rounds; ++R) {
        struct Step {
          std::string Id;
          std::string Line;
          std::string WantStatus;
          int WantExit; // -1: not a fault
        };
        std::string Tag =
            "c" + std::to_string(C) + "-r" + std::to_string(R);
        Step Steps[] = {
            {Tag + "-ok", requestLine(Tag + "-ok", "run", Mine), "ok", -1},
            {Tag + "-oob", requestLine(Tag + "-oob", "run", oobSource()),
             "fault", 4},
            {Tag + "-dl",
             requestLine(Tag + "-dl", "run", bigSource(),
                         "\"deadline_ms\": 5"),
             "fault", 5},
            {Tag + "-mem",
             requestLine(Tag + "-mem", "run", bigSource(),
                         "\"mem_limit_mb\": 1"),
             "fault", 6},
        };
        for (const Step &St : Steps) {
          std::string Out;
          if (!Cl.roundTrip(St.Line, Out, &E)) {
            fail(St.Id + ": round trip: " + E);
            return;
          }
          std::optional<json::Value> V = json::parse(Out);
          if (!V || !V->isObject()) {
            fail(St.Id + ": unparseable response: " + Out);
            continue;
          }
          const json::Value *Id = V->member("id");
          const json::Value *Status = V->member("status");
          if (!Id || Id->S != St.Id)
            fail(St.Id + ": wrong id in: " + Out);
          if (!Status || Status->S != St.WantStatus) {
            fail(St.Id + ": wrong status in: " + Out);
            continue;
          }
          if (St.WantExit >= 0) {
            const json::Value *Exit = V->member("exit_equivalent");
            if (!Exit || Exit->N != St.WantExit)
              fail(St.Id + ": wrong exit_equivalent in: " + Out);
          } else {
            const json::Value *Sum = V->member("checksum");
            if (!Sum || Sum->N != WantChecksum[C])
              fail(St.Id + ": checksum mismatch in: " + Out);
          }
        }
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();
  for (unsigned C = 0; C < Clients; ++C)
    for (const std::string &Why : Failures[C])
      ADD_FAILURE() << "client " << C << ": " << Why;

  // The daemon survived the storm: a fresh connection still gets served.
  Client After;
  std::string Out;
  ASSERT_TRUE(After.connect(Config.SocketPath, &Err)) << Err;
  ASSERT_TRUE(After.roundTrip("{\"op\": \"ping\", \"id\": \"post\"}", Out,
                              &Err))
      << Err;
  std::optional<json::Value> V = json::parse(Out);
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(V->member("status")->S, "pong");

  // And its own accounting saw the faults without counting them as deaths.
  ASSERT_TRUE(
      After.roundTrip("{\"op\": \"stats\", \"id\": \"st\"}", Out, &Err))
      << Err;
  V = json::parse(Out);
  ASSERT_TRUE(V.has_value());
  const json::Value *Service = V->member("service");
  ASSERT_NE(Service, nullptr) << Out;
  EXPECT_GE(Service->member("requests")->N, Clients * Rounds * 4.0);
  EXPECT_GE(Service->member("faults")->N, Clients * Rounds * 3.0);
  EXPECT_GE(Service->member("deadlines_fired")->N, 1.0);

  D.stop();
  EXPECT_FALSE(D.running());
}

TEST(DaemonSoak, ConnectionsAreServedWhileWaitForShutdownParks) {
  // mfpard's main thread parks in waitForShutdown() for the daemon's whole
  // life. Shutdown waiters must not share the service threads' condition
  // variable: when they did, the acceptor's notify_one for a freshly
  // queued connection could wake the parked waiter instead of a service
  // thread — the waiter re-checked its predicate and slept again, the
  // notification was consumed, and the connection sat unserved in the
  // queue (with one service thread, a coin flip per connection). Thirty
  // fresh connections make a regression essentially certain to trip the
  // recv timeout below.
  DaemonConfig Config;
  Config.SocketPath = uniqueSocketPath("parked");
  Config.ServiceThreads = 1;
  Daemon D(Config);
  std::string Err;
  ASSERT_TRUE(D.start(&Err)) << Err;

  std::atomic<bool> Parked{false}, Woke{false};
  std::thread Waiter([&] {
    Parked.store(true);
    D.waitForShutdown();
    Woke.store(true);
  });
  while (!Parked.load())
    std::this_thread::yield();

  for (int I = 0; I < 30; ++I) {
    Client Cl;
    std::string Out;
    ASSERT_TRUE(Cl.connect(Config.SocketPath, &Err)) << Err;
    ASSERT_TRUE(Cl.setRecvTimeoutMs(5000, &Err)) << Err;
    ASSERT_TRUE(Cl.roundTrip("{\"op\": \"ping\", \"id\": \"p" +
                                 std::to_string(I) + "\"}",
                             Out, &Err))
        << "connection " << I << " stranded: " << Err;
    std::optional<json::Value> V = json::parse(Out);
    ASSERT_TRUE(V.has_value()) << Out;
    EXPECT_EQ(V->member("status")->S, "pong");
  }

  // A shutdown request must still reach the parked waiter.
  Client Cl;
  std::string Out;
  ASSERT_TRUE(Cl.connect(Config.SocketPath, &Err)) << Err;
  ASSERT_TRUE(Cl.setRecvTimeoutMs(5000, &Err)) << Err;
  ASSERT_TRUE(Cl.roundTrip("{\"op\": \"shutdown\", \"id\": \"bye\"}", Out,
                           &Err))
      << Err;
  Waiter.join();
  EXPECT_TRUE(Woke.load());
  D.stop();
}

TEST(DaemonSoak, ShutdownRequestStopsTheDaemon) {
  DaemonConfig Config;
  Config.SocketPath = uniqueSocketPath("shutdown");
  Config.ServiceThreads = 2;
  Daemon D(Config);
  std::string Err;
  ASSERT_TRUE(D.start(&Err)) << Err;

  Client Cl;
  std::string Out;
  ASSERT_TRUE(Cl.connect(Config.SocketPath, &Err)) << Err;
  ASSERT_TRUE(Cl.roundTrip("{\"op\": \"shutdown\", \"id\": \"bye\"}", Out,
                           &Err))
      << Err;
  std::optional<json::Value> V = json::parse(Out);
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(V->member("status")->S, "bye");
  EXPECT_TRUE(D.waitForShutdown(5000));
  D.stop();
}

TEST(DaemonSoak, OverloadShedsWithRetryAfter) {
  // QueueCap 0: every connection is shed at accept time with a structured
  // backoff hint — bounded degradation, not an unbounded connection queue.
  DaemonConfig Config;
  Config.SocketPath = uniqueSocketPath("shed");
  Config.ServiceThreads = 1;
  Config.QueueCap = 0;
  Config.RetryAfterMs = 75;
  Daemon D(Config);
  std::string Err;
  ASSERT_TRUE(D.start(&Err)) << Err;

  Client Cl;
  std::string Out;
  ASSERT_TRUE(Cl.connect(Config.SocketPath, &Err)) << Err;
  ASSERT_TRUE(Cl.readLine(Out, &Err)) << Err;
  std::optional<json::Value> V = json::parse(Out);
  ASSERT_TRUE(V.has_value()) << Out;
  EXPECT_EQ(V->member("status")->S, "shed");
  ASSERT_NE(V->member("retry_after_ms"), nullptr) << Out;
  EXPECT_EQ(V->member("retry_after_ms")->N, 75.0);
  EXPECT_GE(D.counters().Shed.load(), 1u);
  D.stop();
}

