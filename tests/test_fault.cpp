//===- tests/test_fault.cpp - Fault-containment tests ---------------------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// The fault-containment subsystem end to end: serial faults unwind to the
/// interpreter's FaultState with exact source/loop/iteration attribution
/// (no process abort); the checked allocation path faults on overflowing
/// extents instead of wrapping; parallel-worker faults are trapped locally,
/// published first-fault-wins, cancel the chunk dispenser, and roll the
/// loop's transaction back bit-identically; serial replay either recovers
/// (the fault was a parallelism artifact) or reproduces the fault with
/// serial attribution (a genuinely faulting program, e.g. dispatched past a
/// lying inspector); and the whole machinery holds under every schedule and
/// thread count, with injected faults of every kind.
///
/// Suite names here start with "Fault" so the CI ThreadSanitizer job's
/// --gtest_filter picks them up.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "interp/Fault.h"
#include "interp/Interpreter.h"
#include "prof/Profiler.h"
#include "verify/FaultInjector.h"
#include "verify/PlanMutator.h"
#include "xform/Parallelizer.h"

#include <set>

using namespace iaa;
using namespace iaa::interp;
using namespace iaa::mf;
using iaa::test::parseOrDie;

namespace {

const Schedule AllSchedules[] = {Schedule::Static, Schedule::Dynamic,
                                 Schedule::Guided};
const unsigned ThreadCounts[] = {1, 2, 4, 7};

/// A certified-parallel loop over shared x: the injection target for the
/// containment tests (`lp` has no real fault of its own, so a serial
/// replay always recovers).
const char *SharedScale = R"(program t
    integer i, n
    real x(2000)
    n = 2000
    init: do i = 1, n
      x(i) = i * 0.5
    end do
    lp: do i = 1, n
      x(i) = x(i) * 2.0 + 1.0
    end do
  end)";

/// A genuinely faulting scatter: ind is a permutation except entry 500,
/// poisoned to 2000 past x's extent of 1000. Statically the scat loop is
/// serial (opaque index), so it reaches parallel execution only through a
/// runtime-check inspection — which the bounds check makes fail, unless a
/// lying inspector (FaultInjector::skipInspectionOf) vouches for it.
const char *PoisonedScatter = R"(program t
    integer i, n
    integer ind(1000)
    real x(1000)
    n = 1000
    fill: do i = 1, n
      ind(i) = mod(i * 7, n) + 1
      x(i) = i * 0.25
    end do
    ind(500) = 2000
    scat: do i = 1, n
      x(ind(i)) = x(ind(i)) + 1.0
    end do
  end)";

struct Harness {
  std::unique_ptr<Program> P;
  xform::PipelineResult Plan;

  explicit Harness(const std::string &Source) : P(parseOrDie(Source)) {
    Plan = xform::parallelize(*P, xform::PipelineMode::Full);
  }

  double serialChecksum() {
    Interpreter I(*P);
    Memory Serial = I.run(ExecOptions{});
    EXPECT_FALSE(I.faultState().Faulted) << I.faultState().str();
    return Serial.checksumExcluding(deadPrivateIds(Plan));
  }
};

//===----------------------------------------------------------------------===//
// Serial faults: structured attribution, no process abort
//===----------------------------------------------------------------------===//

TEST(FaultSerial, OutOfBoundsAttribution) {
  Harness H(PoisonedScatter);
  Interpreter I(*H.P);
  I.run(ExecOptions{});
  const FaultState &FS = I.faultState();
  ASSERT_TRUE(FS.Faulted);
  const RuntimeFault &F = FS.Fault;
  EXPECT_EQ(F.Kind, FaultKind::OutOfBounds);
  EXPECT_EQ(F.Loop, "scat");
  ASSERT_TRUE(F.HasIteration);
  EXPECT_EQ(F.Iteration, 500);
  EXPECT_EQ(F.Var, "x");
  ASSERT_TRUE(F.HasValue);
  EXPECT_EQ(F.Value, 2000);
  EXPECT_EQ(F.Bound, 1000);
  EXPECT_FALSE(F.InParallel);
  EXPECT_FALSE(F.DuringReplay);
  EXPECT_TRUE(F.Loc.isValid()) << "fault must carry a real source location";
  EXPECT_EQ(FS.FaultsObserved, 1u);
  EXPECT_EQ(FS.Rollbacks, 0u);
}

TEST(FaultSerial, FaultStateResetsAcrossRuns) {
  Harness Bad(PoisonedScatter);
  Interpreter I(*Bad.P);
  I.run(ExecOptions{});
  ASSERT_TRUE(I.faultState().Faulted);
  // The same interpreter is reusable and the state is per-invocation:
  // a clean serial run of the same program up to the fault does not exist,
  // so re-run and confirm identical fresh attribution (not accumulation).
  I.run(ExecOptions{});
  EXPECT_TRUE(I.faultState().Faulted);
  EXPECT_EQ(I.faultState().FaultsObserved, 1u);
}

TEST(FaultSerial, DivByZeroInLoopBody) {
  auto P = parseOrDie(R"(program t
    integer i, n, d
    real q(100)
    n = 100
    d = 0
    lp: do i = 1, n
      q(i) = 100 / d
    end do
  end)");
  Interpreter I(*P);
  I.run(ExecOptions{});
  const FaultState &FS = I.faultState();
  ASSERT_TRUE(FS.Faulted);
  EXPECT_EQ(FS.Fault.Kind, FaultKind::DivByZero);
  EXPECT_EQ(FS.Fault.Loop, "lp");
  ASSERT_TRUE(FS.Fault.HasIteration);
  EXPECT_EQ(FS.Fault.Iteration, 1);
  EXPECT_TRUE(FS.Fault.Loc.isValid());
}

//===----------------------------------------------------------------------===//
// Checked allocation: overflowing extents fault instead of wrapping
//===----------------------------------------------------------------------===//

TEST(FaultAlloc, ElementCountOverflowIsChecked) {
  // 100000 * 100000 = 1e10 elements: past the allocation cap. The checked
  // multiply must raise BadExtent, not wrap into an under-allocated buffer.
  auto P = parseOrDie(R"(program t
    real x(100000, 100000)
    x(1, 1) = 1.0
  end)");
  Interpreter I(*P);
  I.run(ExecOptions{});
  const FaultState &FS = I.faultState();
  ASSERT_TRUE(FS.Faulted);
  EXPECT_EQ(FS.Fault.Kind, FaultKind::BadExtent);
  EXPECT_EQ(FS.Fault.Var, "x");
  EXPECT_NE(FS.Fault.Detail.find("overflows the allocation limit"),
            std::string::npos)
      << FS.Fault.Detail;
}

TEST(FaultAlloc, SaturatedExtentExpressionFaults) {
  // The extent product saturates (no signed-overflow UB) and then trips
  // the allocation cap.
  auto P = parseOrDie(R"(program t
    integer n
    real x(n * n * n * n * n)
    n = 100000
    x(1) = 1.0
  end)");
  Interpreter I(*P);
  I.run(ExecOptions{});
  ASSERT_TRUE(I.faultState().Faulted);
  EXPECT_EQ(I.faultState().Fault.Kind, FaultKind::BadExtent);
}

//===----------------------------------------------------------------------===//
// Parallel containment: first-fault-wins, cancellation, rollback
//===----------------------------------------------------------------------===//

TEST(FaultContain, FirstFaultWinsUnderReport) {
  Harness H(SharedScale);
  verify::FaultInjector Inj;
  Inj.faultAt("lp", verify::InjectionPoint::EveryIteration);
  Interpreter I(*H.P);
  ExecOptions Opts;
  Opts.Plans = &H.Plan;
  Opts.Threads = 4;
  Opts.MinParallelWork = 0;
  Opts.OnFault = FaultAction::Report;
  Opts.Injector = &Inj;
  ExecStats Stats;
  I.run(Opts, &Stats);
  const FaultState &FS = I.faultState();
  ASSERT_TRUE(FS.Faulted);
  EXPECT_EQ(FS.Fault.Kind, FaultKind::Injected);
  EXPECT_TRUE(FS.Fault.InParallel);
  EXPECT_EQ(FS.Fault.Loop, "lp");
  // Every worker traps at most one fault (its loop ends there), at least
  // one trapped, and exactly one was published. The trapped count includes
  // the published winner.
  EXPECT_GE(Stats.WorkerFaults, 1u);
  EXPECT_LE(Stats.WorkerFaults, 4u);
  EXPECT_EQ(FS.FaultsObserved, Stats.WorkerFaults + 1) << "winner re-counted "
                                                          "at the top level";
  EXPECT_EQ(FS.Rollbacks, 1u);
  EXPECT_EQ(FS.Replays, 0u) << "report mode must not replay";

  // The interpreter (and a fresh worker pool) stays usable after a
  // cancelled, faulted dispatch.
  I.run(ExecOptions{});
  EXPECT_FALSE(I.faultState().Faulted);
}

TEST(FaultContain, RollbackIsBitIdentical) {
  Harness H(SharedScale);
  verify::FaultInjector Inj;
  Inj.faultAt("lp", 1500);
  Interpreter I(*H.P);
  ExecOptions Opts;
  Opts.Plans = &H.Plan;
  Opts.Threads = 4;
  Opts.MinParallelWork = 0;
  Opts.OnFault = FaultAction::Report;
  Opts.Injector = &Inj;
  Memory M = I.run(Opts);
  ASSERT_TRUE(I.faultState().Faulted);
  ASSERT_EQ(I.faultState().Rollbacks, 1u);
  // lp's transaction rolled back: x must hold exactly the init-loop values,
  // bit for bit, with no trace of the partially executed parallel loop.
  const Symbol *X = H.P->findSymbol("x");
  ASSERT_NE(X, nullptr);
  const Buffer &B = M.buffer(X);
  ASSERT_EQ(B.D.size(), 2000u);
  for (size_t E = 0; E < B.D.size(); ++E)
    ASSERT_EQ(B.D[E], (E + 1) * 0.5) << "element " << E;
}

//===----------------------------------------------------------------------===//
// Serial replay
//===----------------------------------------------------------------------===//

TEST(FaultReplayTest, RecoversParallelOnlyFault) {
  Harness H(SharedScale);
  double Want = H.serialChecksum();
  // The injected fault fires only inside a parallel chunk, so the serial
  // replay of the rolled-back loop deterministically recovers.
  verify::FaultInjector Inj;
  Inj.faultAt("lp", 1000, /*ParallelOnly=*/true);
  Interpreter I(*H.P);
  ExecOptions Opts;
  Opts.Plans = &H.Plan;
  Opts.Threads = 4;
  Opts.MinParallelWork = 0;
  Opts.Injector = &Inj;
  ASSERT_EQ(Opts.OnFault, FaultAction::Replay) << "replay is the default";
  ExecStats Stats;
  Memory M = I.run(Opts, &Stats);
  const FaultState &FS = I.faultState();
  EXPECT_FALSE(FS.Faulted) << FS.str();
  EXPECT_GE(FS.FaultsObserved, 1u);
  EXPECT_EQ(FS.Rollbacks, 1u);
  EXPECT_EQ(FS.Replays, 1u);
  EXPECT_EQ(FS.ReplaysRecovered, 1u);
  EXPECT_EQ(M.checksumExcluding(deadPrivateIds(H.Plan)), Want)
      << "recovered run must be bit-identical to serial";
  ASSERT_EQ(Stats.FaultRemarks.size(), 1u);
  EXPECT_EQ(Stats.FaultRemarks[0].K, Remark::Kind::FaultReplay);
  EXPECT_EQ(Stats.FaultRemarks[0].Loop, "lp");
  EXPECT_NE(Stats.FaultRemarks[0].Reason.find("recovered"),
            std::string::npos);
}

TEST(FaultReplayTest, StaleVerdictPoisonedIndexReproducedSerially) {
  // A lying inspector vouches for the poisoned scatter (the bounds
  // inspection would have rejected it), so the loop dispatches parallel
  // and some worker traps the out-of-bounds subscript. The rollback
  // restores the pre-loop state and the serial replay reproduces the
  // fault with exact serial attribution: iteration 500, value 2000.
  Harness H(PoisonedScatter);
  const xform::LoopReport *Rep = H.Plan.reportFor("scat");
  ASSERT_NE(Rep, nullptr);
  ASSERT_TRUE(Rep->RuntimeConditional)
      << "poisoned scatter must be runtime-conditional for this test";
  verify::FaultInjector Inj;
  Inj.skipInspectionOf("scat");
  Interpreter I(*H.P);
  ExecOptions Opts;
  Opts.Plans = &H.Plan;
  Opts.Threads = 4;
  Opts.MinParallelWork = 0;
  Opts.RuntimeChecks = true;
  Opts.Injector = &Inj;
  ExecStats Stats;
  I.run(Opts, &Stats);
  const FaultState &FS = I.faultState();
  ASSERT_TRUE(FS.Faulted);
  const RuntimeFault &F = FS.Fault;
  EXPECT_EQ(F.Kind, FaultKind::OutOfBounds);
  EXPECT_TRUE(F.DuringReplay);
  EXPECT_FALSE(F.InParallel);
  EXPECT_EQ(F.Loop, "scat");
  ASSERT_TRUE(F.HasIteration);
  EXPECT_EQ(F.Iteration, 500);
  ASSERT_TRUE(F.HasValue);
  EXPECT_EQ(F.Value, 2000);
  EXPECT_EQ(F.Bound, 1000);
  EXPECT_EQ(FS.Rollbacks, 1u);
  EXPECT_EQ(FS.Replays, 1u);
  EXPECT_EQ(FS.ReplaysRecovered, 0u);
  ASSERT_EQ(Stats.FaultRemarks.size(), 1u);
  EXPECT_NE(Stats.FaultRemarks[0].Reason.find("reproduced"),
            std::string::npos);
}

TEST(FaultReplayTest, WithoutLyingInspectorTheCheckCatchesIt) {
  // Sanity for the test above: with an honest inspection the bounds check
  // fails, the loop falls back to serial, and the genuine fault surfaces
  // with plain serial attribution (no rollback, no replay).
  Harness H(PoisonedScatter);
  Interpreter I(*H.P);
  ExecOptions Opts;
  Opts.Plans = &H.Plan;
  Opts.Threads = 4;
  Opts.MinParallelWork = 0;
  Opts.RuntimeChecks = true;
  ExecStats Stats;
  I.run(Opts, &Stats);
  const FaultState &FS = I.faultState();
  ASSERT_TRUE(FS.Faulted);
  EXPECT_FALSE(FS.Fault.DuringReplay);
  EXPECT_FALSE(FS.Fault.InParallel);
  EXPECT_EQ(FS.Rollbacks, 0u);
  EXPECT_GE(Stats.RuntimeCheckFails, 1u);
}

// Suite deliberately NOT named Fault*: the force-parallel dispatch below
// races on d by construction (that is the scenario — a mis-certified plan),
// so the CI ThreadSanitizer job must not pick it up; the ordinary and
// ASan/UBSan jobs run it.
TEST(ReplaySpeculation, ForceParallelDivZeroRecoversToSerialSemantics) {
  // LRPD-style mis-speculation: d(i) = 1 then q(i) = 100 / d(i-1) carries
  // a flow dependence, so serially the divisor is always 1. Force-marked
  // parallel, a worker starting mid-space may read a not-yet-written
  // d(i-1) = 0 and trap div-by-zero — a pure parallelism artifact. The
  // assertion holds whether or not the timing-dependent fault fires: the
  // final memory is bit-identical to serial and no fault survives, because
  // a faulted dispatch rolls back and replays serially and a clean dispatch
  // produced serial values anyway (the only racy outcome is the trap).
  auto P = parseOrDie(R"(program t
    integer i, n
    integer d(4000)
    real q(4000)
    n = 4000
    d(1) = 1
    lp: do i = 2, n
      d(i) = 1
      q(i) = 100 / d(i - 1)
    end do
  end)");
  xform::PipelineResult Plan = xform::parallelize(*P, xform::PipelineMode::Full);
  const xform::LoopReport *Rep = Plan.reportFor("lp");
  ASSERT_NE(Rep, nullptr);
  ASSERT_FALSE(Rep->Parallel) << "the dependence must be statically rejected";
  ASSERT_TRUE(verify::applyMutation(
      Plan, *P, {verify::MutationKind::ForceParallel, "lp", ""}));

  Interpreter Ref(*P);
  double Want = Ref.run(ExecOptions{}).checksum();
  ASSERT_FALSE(Ref.faultState().Faulted);

  for (Schedule S : AllSchedules) {
    Interpreter I(*P);
    ExecOptions Opts;
    Opts.Plans = &Plan;
    Opts.Threads = 4;
    Opts.Sched = S;
    Opts.MinParallelWork = 0;
    Memory M = I.run(Opts);
    const FaultState &FS = I.faultState();
    EXPECT_FALSE(FS.Faulted) << scheduleName(S) << ": " << FS.str();
    EXPECT_EQ(FS.Replays, FS.Rollbacks) << scheduleName(S);
    EXPECT_EQ(FS.ReplaysRecovered, FS.Replays) << scheduleName(S);
    EXPECT_EQ(M.checksum(), Want) << scheduleName(S);
  }
}

//===----------------------------------------------------------------------===//
// Injection sweeps: kind x schedule x thread count
//===----------------------------------------------------------------------===//

TEST(FaultSweep, ContainedUnderEveryScheduleAndThreadCount) {
  Harness H(SharedScale);
  double Want = H.serialChecksum();
  const FaultKind Kinds[] = {FaultKind::Injected, FaultKind::OutOfBounds,
                             FaultKind::DivByZero};
  for (FaultKind K : Kinds)
    for (Schedule S : AllSchedules)
      for (unsigned T : ThreadCounts) {
        verify::InjectionPoint Pt;
        Pt.Loop = "lp";
        Pt.Iteration = 1000;
        Pt.ParallelOnly = true;
        Pt.Kind = K;
        Pt.Detail = "sweep injection";
        verify::FaultInjector Inj;
        Inj.addPoint(Pt);
        Interpreter I(*H.P);
        ExecOptions Opts;
        Opts.Plans = &H.Plan;
        Opts.Threads = T;
        Opts.Sched = S;
        Opts.MinParallelWork = 0;
        Opts.Injector = &Inj;
        ExecStats Stats;
        Memory M = I.run(Opts, &Stats);
        const FaultState &FS = I.faultState();
        std::string Ctx = std::string(faultKindName(K)) + "/" +
                          scheduleName(S) + "/T=" + std::to_string(T);
        EXPECT_FALSE(FS.Faulted) << Ctx << ": " << FS.str();
        EXPECT_EQ(M.checksumExcluding(deadPrivateIds(H.Plan)), Want) << Ctx;
        if (T > 1) {
          // A parallel dispatch happened, trapped the injection, rolled
          // back, and recovered by serial replay.
          EXPECT_EQ(FS.Rollbacks, 1u) << Ctx;
          EXPECT_EQ(FS.ReplaysRecovered, 1u) << Ctx;
        } else {
          // T=1 executes serially; a parallel-only injection never fires.
          EXPECT_EQ(FS.FaultsObserved, 0u) << Ctx;
        }
      }
}

TEST(FaultSweep, AbortModePropagatesWithoutRollback) {
  Harness H(SharedScale);
  for (Schedule S : AllSchedules) {
    verify::FaultInjector Inj;
    Inj.faultAt("lp", 1000);
    Interpreter I(*H.P);
    ExecOptions Opts;
    Opts.Plans = &H.Plan;
    Opts.Threads = 4;
    Opts.Sched = S;
    Opts.MinParallelWork = 0;
    Opts.OnFault = FaultAction::Abort;
    Opts.Injector = &Inj;
    I.run(Opts);
    const FaultState &FS = I.faultState();
    ASSERT_TRUE(FS.Faulted) << scheduleName(S);
    EXPECT_EQ(FS.Fault.Kind, FaultKind::Injected) << scheduleName(S);
    EXPECT_EQ(FS.Rollbacks, 0u)
        << scheduleName(S) << ": abort mode must not snapshot or roll back";
    EXPECT_EQ(FS.Replays, 0u) << scheduleName(S);
  }
}

//===----------------------------------------------------------------------===//
// Stale-state regression pins
//===----------------------------------------------------------------------===//

TEST(FaultContain, RollbackPreservesInspectionCache) {
  // Regression: rollback used to bump every restored buffer's version
  // *past* the snapshot, although the restored bytes are exactly the
  // pre-loop bytes. That spuriously invalidated inspection verdicts cached
  // against those versions. The pin: `lp` MAY-writes ind (the guard never
  // fires, so the replay's serial stores touch only x) and faults in
  // parallel on both trips of the rep loop; the conditional scatter keyed
  // on ind must inspect once and hit the cache on the second trip.
  Harness H(R"(program t
    integer r, i, n
    integer ind(1000)
    real x(1000)
    n = 1000
    fill: do i = 1, n
      ind(i) = n + 1 - i
      x(i) = i * 0.5
    end do
    rep: do r = 1, 2
      lp: do i = 1, n
        if (x(i) < 0.0) then
          ind(i) = 1
        end if
        x(i) = x(i) + 1.0
      end do
      scat: do i = 1, n
        x(ind(i)) = x(ind(i)) + 1.0
      end do
    end do
  end)");
  const xform::LoopReport *Lp = H.Plan.reportFor("lp");
  ASSERT_NE(Lp, nullptr);
  ASSERT_TRUE(Lp->Parallel) << Lp->WhyNot;
  const xform::LoopReport *Scat = H.Plan.reportFor("scat");
  ASSERT_NE(Scat, nullptr);
  ASSERT_TRUE(Scat->RuntimeConditional) << Scat->WhyNot;
  double Want = H.serialChecksum();

  verify::FaultInjector Inj;
  Inj.faultAt("lp", 500, /*ParallelOnly=*/true);
  Interpreter I(*H.P);
  ExecOptions Opts;
  Opts.Plans = &H.Plan;
  Opts.Threads = 4;
  Opts.MinParallelWork = 0;
  Opts.RuntimeChecks = true;
  Opts.Injector = &Inj;
  ExecStats Stats;
  Memory M = I.run(Opts, &Stats);
  const FaultState &FS = I.faultState();
  EXPECT_FALSE(FS.Faulted) << FS.str();
  EXPECT_EQ(FS.Rollbacks, 2u) << "lp faults and recovers on both trips";
  EXPECT_EQ(FS.ReplaysRecovered, 2u);
  EXPECT_EQ(M.checksumExcluding(deadPrivateIds(H.Plan)), Want);
  // ind was never actually written after fill, so the scatter's verdict
  // from trip 1 is still valid on trip 2 — the rollbacks in between must
  // not have disturbed ind's version.
  EXPECT_EQ(Stats.InspectionsRun, 1u)
      << "rollback spuriously invalidated a cached inspection verdict";
  EXPECT_EQ(Stats.InspectionsCached, 1u);
}

TEST(FaultContain, ReplayedInvocationCountsOneTier) {
  // Regression: a faulted-then-replayed invocation used to count in its
  // original dispatch tier *and* implicitly as the replay, so the health
  // report's tier counts exceeded the invocation count. Pinned behavior:
  // one tier per invocation, with the recovered invocation attributed to
  // the replay tier.
  Harness H(SharedScale);
  verify::FaultInjector Inj;
  Inj.faultAt("lp", 1000, /*ParallelOnly=*/true);
  prof::Session Prof;
  Interpreter I(*H.P);
  ExecOptions Opts;
  Opts.Plans = &H.Plan;
  Opts.Threads = 4;
  Opts.MinParallelWork = 0;
  Opts.Injector = &Inj;
  Opts.Prof = &Prof;
  ExecStats Stats;
  I.run(Opts, &Stats);
  ASSERT_FALSE(I.faultState().Faulted) << I.faultState().str();
  ASSERT_EQ(I.faultState().ReplaysRecovered, 1u);
  // init dispatched statically; lp's only invocation is the replay.
  EXPECT_EQ(Stats.DispatchStatic, 1u) << "faulted invocation re-counted in "
                                         "its original tier";
  EXPECT_EQ(Stats.DispatchReplay, 1u);
  EXPECT_EQ(Stats.DispatchConditional, 0u);
  EXPECT_EQ(Stats.DispatchSerial, 0u);

  Prof.finalizeAnalysis();
  bool Saw = false;
  for (const prof::LoopHealth &LH : Prof.health(&H.Plan)) {
    EXPECT_EQ(LH.DispatchStatic + LH.DispatchConditional + LH.DispatchSerial +
                  LH.DispatchReplay,
              LH.Invocations)
        << LH.Label << ": tiers must sum to invocations";
    if (LH.Label == "lp") {
      Saw = true;
      EXPECT_EQ(LH.Invocations, 1u);
      EXPECT_EQ(LH.DispatchReplay, 1u);
      EXPECT_EQ(LH.DispatchStatic, 0u);
      EXPECT_EQ(LH.Verdict, "parallelized")
          << "a recovered fault must not demote the verdict";
    }
  }
  EXPECT_TRUE(Saw);
}

TEST(FaultContain, ReportedFaultStillCountsItsTier) {
  // Counterpart pin for the deferred tier accounting: under report mode
  // there is no replay, so the faulted invocation stays in the tier it
  // dispatched under.
  Harness H(SharedScale);
  verify::FaultInjector Inj;
  Inj.faultAt("lp", 1000);
  Interpreter I(*H.P);
  ExecOptions Opts;
  Opts.Plans = &H.Plan;
  Opts.Threads = 4;
  Opts.MinParallelWork = 0;
  Opts.OnFault = FaultAction::Report;
  Opts.Injector = &Inj;
  ExecStats Stats;
  I.run(Opts, &Stats);
  ASSERT_TRUE(I.faultState().Faulted);
  EXPECT_EQ(Stats.DispatchStatic, 2u) << "init and the faulted lp dispatch";
  EXPECT_EQ(Stats.DispatchReplay, 0u);
}

//===----------------------------------------------------------------------===//
// Plan write-effects export
//===----------------------------------------------------------------------===//

TEST(FaultPlan, WriteEffectsCoverLoopFootprint) {
  Harness H(SharedScale);
  const DoStmt *L = H.P->findLoop("lp");
  ASSERT_NE(L, nullptr);
  const xform::LoopPlan *Plan = H.Plan.planFor(L);
  ASSERT_NE(Plan, nullptr);
  const Symbol *X = H.P->findSymbol("x");
  const Symbol *Idx = H.P->findSymbol("i");
  ASSERT_NE(X, nullptr);
  ASSERT_NE(Idx, nullptr);
  EXPECT_TRUE(Plan->WriteEffects.count(X))
      << "the written array is the loop's write footprint";
  EXPECT_TRUE(Plan->WriteEffects.count(Idx))
      << "the index variable is always part of the footprint";
  const Symbol *N = H.P->findSymbol("n");
  ASSERT_NE(N, nullptr);
  EXPECT_FALSE(Plan->WriteEffects.count(N)) << "read-only symbols excluded";
}

} // namespace
