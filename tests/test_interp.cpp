//===- tests/test_interp.cpp - Interpreter tests --------------------------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "benchprogs/Benchmarks.h"
#include "interp/Interpreter.h"
#include "xform/Parallelizer.h"

using namespace iaa;
using namespace iaa::interp;
using namespace iaa::mf;
using iaa::test::parseOrDie;

namespace {

Memory runSerial(const Program &P) {
  Interpreter I(P);
  return I.run(ExecOptions{});
}

TEST(Interp, ScalarArithmetic) {
  auto P = parseOrDie(R"(program t
    integer a, b
    real x
    a = 2 + 3 * 4
    b = mod(a, 5) + min(a, 3) - max(1, 2)
    x = a * 0.5
  end)");
  Memory M = runSerial(*P);
  EXPECT_EQ(M.intScalar(P->findSymbol("a")), 14);
  EXPECT_EQ(M.intScalar(P->findSymbol("b")), 4 + 3 - 2);
  EXPECT_DOUBLE_EQ(M.realScalar(P->findSymbol("x")), 7.0);
}

TEST(Interp, IntegerDivisionTruncates) {
  auto P = parseOrDie(R"(program t
    integer a, b
    a = 7 / 2
    b = (0 - 7) / 2
  end)");
  Memory M = runSerial(*P);
  EXPECT_EQ(M.intScalar(P->findSymbol("a")), 3);
  EXPECT_EQ(M.intScalar(P->findSymbol("b")), -3);
}

TEST(Interp, DoLoopAndArray) {
  auto P = parseOrDie(R"(program t
    integer i, n, s
    integer a(10)
    n = 10
    do i = 1, n
      a(i) = i * i
    end do
    s = 0
    do i = 1, n
      s = s + a(i)
    end do
  end)");
  Memory M = runSerial(*P);
  EXPECT_EQ(M.intScalar(P->findSymbol("s")), 385);
  // Fortran semantics: the index is ub+1 after the loop.
  EXPECT_EQ(M.intScalar(P->findSymbol("i")), 11);
}

TEST(Interp, DoLoopWithStep) {
  auto P = parseOrDie(R"(program t
    integer i, s
    s = 0
    do i = 1, 10, 3
      s = s + i
    end do
  end)");
  Memory M = runSerial(*P);
  EXPECT_EQ(M.intScalar(P->findSymbol("s")), 1 + 4 + 7 + 10);
}

TEST(Interp, ZeroTripLoop) {
  auto P = parseOrDie(R"(program t
    integer i, s
    s = 5
    do i = 3, 1
      s = 99
    end do
  end)");
  Memory M = runSerial(*P);
  EXPECT_EQ(M.intScalar(P->findSymbol("s")), 5);
}

TEST(Interp, WhileLoop) {
  auto P = parseOrDie(R"(program t
    integer p, s
    p = 5
    s = 0
    while (p > 0)
      s = s + p
      p = p - 1
    end while
  end)");
  Memory M = runSerial(*P);
  EXPECT_EQ(M.intScalar(P->findSymbol("s")), 15);
}

TEST(Interp, IfElseAndLogic) {
  auto P = parseOrDie(R"(program t
    integer a, b, c
    a = 3
    if (a > 2 and a < 10) then
      b = 1
    else
      b = 2
    end if
    if (not (a == 3) or a >= 100) then
      c = 7
    else
      c = 8
    end if
  end)");
  Memory M = runSerial(*P);
  EXPECT_EQ(M.intScalar(P->findSymbol("b")), 1);
  EXPECT_EQ(M.intScalar(P->findSymbol("c")), 8);
}

TEST(Interp, ProcedureCallsShareGlobals) {
  auto P = parseOrDie(R"(program t
    integer a
    procedure bump
      a = a + 10
    end
    a = 1
    call bump
    call bump
  end)");
  Memory M = runSerial(*P);
  EXPECT_EQ(M.intScalar(P->findSymbol("a")), 21);
}

TEST(Interp, TwoDimensionalArrays) {
  auto P = parseOrDie(R"(program t
    integer i, j, s
    integer g(3, 4)
    do i = 1, 3
      do j = 1, 4
        g(i, j) = i * 10 + j
      end do
    end do
    s = g(2, 3) + g(3, 1)
  end)");
  Memory M = runSerial(*P);
  EXPECT_EQ(M.intScalar(P->findSymbol("s")), 23 + 31);
}

TEST(Interp, ArrayExtentFromConstant) {
  auto P = parseOrDie(R"(program t
    integer n
    real x(n)
    integer i
    n = 8
    do i = 1, n
      x(i) = i * 1.0
    end do
  end)");
  Memory M = runSerial(*P);
  const Buffer &B = M.buffer(P->findSymbol("x"));
  ASSERT_EQ(B.D.size(), 8u);
  EXPECT_DOUBLE_EQ(B.D[7], 8.0);
}

TEST(Interp, ChecksumIsDeterministic) {
  auto P = parseOrDie(benchprogs::fig3Source());
  Memory A = runSerial(*P);
  Memory B = runSerial(*P);
  EXPECT_DOUBLE_EQ(A.checksum(), B.checksum());
  EXPECT_NE(A.checksum(), 0.0);
}

//===----------------------------------------------------------------------===//
// Parallel execution equivalence
//===----------------------------------------------------------------------===//

class ParallelEquiv : public ::testing::TestWithParam<int> {};

TEST_P(ParallelEquiv, BenchmarksMatchSerial) {
  int Which = GetParam();
  std::vector<benchprogs::BenchmarkProgram> All =
      benchprogs::allBenchmarks(/*Scale=*/0.08);
  benchprogs::BenchmarkProgram &B = All[Which];

  auto P = parseOrDie(B.Source);
  xform::PipelineResult Plan =
      xform::parallelize(*P, xform::PipelineMode::Full);

  Interpreter I(*P);
  Memory Serial = I.run(ExecOptions{});

  ExecOptions Par;
  Par.Plans = &Plan;
  Par.Threads = 4;
  ExecStats Stats;
  Memory Parallel = I.run(Par, &Stats);

  EXPECT_GT(Stats.ParallelLoopRuns, 0u)
      << B.Name << ": expected at least one parallel loop execution";
  // Privatized dead arrays have unspecified post-loop contents (OpenMP
  // PRIVATE semantics); compare everything else.
  std::set<unsigned> Dead = deadPrivateIds(Plan);
  EXPECT_NEAR(Serial.checksumExcluding(Dead),
              Parallel.checksumExcluding(Dead),
              std::abs(Serial.checksum()) * 1e-9 + 1e-9)
      << B.Name << ": parallel result diverged";
}

std::string benchCaseName(const ::testing::TestParamInfo<int> &Info) {
  static const char *Names[] = {"TRFD", "DYFESM", "BDNA", "P3M", "TREE"};
  return Names[Info.param];
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, ParallelEquiv,
                         ::testing::Values(0, 1, 2, 3, 4), benchCaseName);

TEST(ParallelExec, FigureExamplesMatchSerial) {
  for (const std::string &Src :
       {benchprogs::fig1aSource(), benchprogs::fig1bSource(),
        benchprogs::fig14Source(), benchprogs::fig3Source()}) {
    auto P = parseOrDie(Src);
    xform::PipelineResult Plan =
        xform::parallelize(*P, xform::PipelineMode::Full);
    Interpreter I(*P);
    Memory Serial = I.run(ExecOptions{});
    ExecOptions Par;
    Par.Plans = &Plan;
    Par.Threads = 3;
    Memory Parallel = I.run(Par);
    std::set<unsigned> Dead = deadPrivateIds(Plan);
    EXPECT_NEAR(Serial.checksumExcluding(Dead),
                Parallel.checksumExcluding(Dead),
                std::abs(Serial.checksum()) * 1e-9 + 1e-9);
  }
}

TEST(ParallelExec, SingleThreadTakesSerialPath) {
  auto P = parseOrDie(benchprogs::fig14Source());
  xform::PipelineResult Plan =
      xform::parallelize(*P, xform::PipelineMode::Full);
  Interpreter I(*P);
  ExecOptions One;
  One.Plans = &Plan;
  One.Threads = 1;
  ExecStats Stats;
  Memory M = I.run(One, &Stats);
  EXPECT_EQ(Stats.ParallelLoopRuns, 0u);
  (void)M;
}

} // namespace
