//===- tests/test_symexpr.cpp - Symbolic expression tests -----------------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "symbolic/SymExpr.h"
#include "symbolic/SymRange.h"

using namespace iaa;
using namespace iaa::sym;
using iaa::test::parseOrDie;

namespace {

/// Fixture providing a program with a few symbols to build atoms from.
class SymExprTest : public ::testing::Test {
protected:
  void SetUp() override {
    P = parseOrDie(R"(program t
      integer i, j, n, m, p, q
      integer ind(100), len(100), off(101)
      real x(100)
      n = 1
    end)");
    I = P->findSymbol("i");
    J = P->findSymbol("j");
    N = P->findSymbol("n");
    Ind = P->findSymbol("ind");
    Len = P->findSymbol("len");
  }

  std::unique_ptr<mf::Program> P;
  mf::Symbol *I, *J, *N, *Ind, *Len;
};

TEST_F(SymExprTest, ConstantArithmetic) {
  SymExpr A = SymExpr::constant(3) + SymExpr::constant(4);
  EXPECT_TRUE(A.isConstant());
  EXPECT_EQ(A.constValue(), 7);
  EXPECT_EQ((A * 2).constValue(), 14);
  EXPECT_EQ((-A).constValue(), -7);
}

TEST_F(SymExprTest, LinearCombination) {
  SymExpr E = SymExpr::var(I) * 2 + SymExpr::var(J) - SymExpr::var(I);
  EXPECT_EQ(E.coeffOfVar(I), 1);
  EXPECT_EQ(E.coeffOfVar(J), 1);
  EXPECT_EQ(E.coeffOfVar(N), 0);
  SymExpr Zero = E - SymExpr::var(I) - SymExpr::var(J);
  EXPECT_TRUE(Zero.isZero());
}

TEST_F(SymExprTest, CancellationMakesZero) {
  SymExpr A = SymExpr::var(I) + SymExpr::constant(1);
  SymExpr B = SymExpr::constant(1) + SymExpr::var(I);
  EXPECT_TRUE(A.equals(B));
  EXPECT_TRUE((A - B).isZero());
}

TEST_F(SymExprTest, ArrayElemAtoms) {
  SymExpr E1 = SymExpr::arrayElem(Ind, {SymExpr::var(I)});
  SymExpr E2 = SymExpr::arrayElem(Ind, {SymExpr::var(I)});
  SymExpr E3 = SymExpr::arrayElem(Ind, {SymExpr::var(J)});
  EXPECT_TRUE(E1.equals(E2));
  EXPECT_FALSE(E1.equals(E3));
  EXPECT_TRUE((E1 - E2).isZero());
}

TEST_F(SymExprTest, NonLinearMulCanonicalizes) {
  SymExpr A = SymExpr::mul(SymExpr::var(I), SymExpr::var(J));
  SymExpr B = SymExpr::mul(SymExpr::var(J), SymExpr::var(I));
  EXPECT_TRUE(A.equals(B)) << A.str() << " vs " << B.str();
}

TEST_F(SymExprTest, MulByConstantStaysLinear) {
  SymExpr A = SymExpr::mul(SymExpr::var(I) + 1, SymExpr::constant(3));
  EXPECT_EQ(A.coeffOfVar(I), 3);
  EXPECT_EQ(A.constantTerm(), 3);
}

TEST_F(SymExprTest, DivExactlyDivisible) {
  SymExpr A = SymExpr::div(SymExpr::var(I) * 4 + 8, SymExpr::constant(4));
  EXPECT_EQ(A.coeffOfVar(I), 1);
  EXPECT_EQ(A.constantTerm(), 2);
}

TEST_F(SymExprTest, DivNonDivisibleIsOpaque) {
  SymExpr A = SymExpr::div(SymExpr::var(I), SymExpr::constant(2));
  EXPECT_EQ(A.coeffOfVar(I), 0);
  EXPECT_FALSE(A.isConstant());
  EXPECT_TRUE(A.references(I));
}

TEST_F(SymExprTest, SubstituteScalar) {
  SymExpr E = SymExpr::var(I) * 2 + SymExpr::var(J);
  SymExpr S = E.substituteVar(I, SymExpr::var(N) + 1);
  EXPECT_EQ(S.coeffOfVar(N), 2);
  EXPECT_EQ(S.coeffOfVar(J), 1);
  EXPECT_EQ(S.constantTerm(), 2);
}

TEST_F(SymExprTest, SubstituteInsideArraySubscript) {
  SymExpr E = SymExpr::arrayElem(Ind, {SymExpr::var(I) + 1});
  SymExpr S = E.substituteVar(I, SymExpr::constant(4));
  SymExpr Expected = SymExpr::arrayElem(Ind, {SymExpr::constant(5)});
  EXPECT_TRUE(S.equals(Expected)) << S.str();
}

TEST_F(SymExprTest, SubstituteCollapsesNonlinear) {
  // i*(i-1) with i := 3 must fold to 6.
  SymExpr E = SymExpr::mul(SymExpr::var(I), SymExpr::var(I) - 1);
  SymExpr S = E.substituteVar(I, SymExpr::constant(3));
  EXPECT_TRUE(S.isConstant());
  EXPECT_EQ(S.constValue(), 6);
}

TEST_F(SymExprTest, FromAstLowering) {
  auto Q = parseOrDie(R"(program t
    integer i, n, a
    integer ind(10)
    a = ind(i) + 2 * n - 1
  end)");
  const auto *AS = cast<mf::AssignStmt>(Q->mainProcedure()->body()[0]);
  SymExpr E = SymExpr::fromAst(AS->rhs());
  EXPECT_EQ(E.constantTerm(), -1);
  EXPECT_EQ(E.coeffOfVar(Q->findSymbol("n")), 2);
  EXPECT_TRUE(E.references(Q->findSymbol("ind")));
}

TEST_F(SymExprTest, FromAstFoldsConstants) {
  auto Q = parseOrDie(R"(program t
    integer a
    a = 2 * 3 + 10 / 2 - 1
  end)");
  const auto *AS = cast<mf::AssignStmt>(Q->mainProcedure()->body()[0]);
  SymExpr E = SymExpr::fromAst(AS->rhs());
  EXPECT_TRUE(E.isConstant());
  EXPECT_EQ(E.constValue(), 10);
}

TEST_F(SymExprTest, MinMaxFolding) {
  EXPECT_EQ(SymExpr::min(SymExpr::constant(3), SymExpr::constant(7))
                .constValue(),
            3);
  EXPECT_EQ(SymExpr::max(SymExpr::constant(3), SymExpr::constant(7))
                .constValue(),
            7);
  SymExpr V = SymExpr::var(I);
  EXPECT_TRUE(SymExpr::min(V, V).equals(V));
}

TEST_F(SymExprTest, KeyIsCanonical) {
  SymExpr A = SymExpr::var(I) + SymExpr::var(J) * 2 + 5;
  SymExpr B = SymExpr::constant(5) + SymExpr::var(J) * 2 + SymExpr::var(I);
  EXPECT_EQ(A.key(), B.key());
}

//===----------------------------------------------------------------------===//
// Ranges and the prover
//===----------------------------------------------------------------------===//

TEST_F(SymExprTest, EvalConstRangeWithBoundVar) {
  RangeEnv Env;
  Env.bindVar(I, SymRange::of(SymExpr::constant(1), SymExpr::constant(10)));
  ConstRange R = evalConstRange(SymExpr::var(I) * 2 + 1, Env);
  ASSERT_TRUE(R.Lo && R.Hi);
  EXPECT_EQ(*R.Lo, 3);
  EXPECT_EQ(*R.Hi, 21);
}

TEST_F(SymExprTest, EvalConstRangeUnboundIsInfinite) {
  RangeEnv Env;
  ConstRange R = evalConstRange(SymExpr::var(I), Env);
  EXPECT_FALSE(R.Lo);
  EXPECT_FALSE(R.Hi);
}

TEST_F(SymExprTest, EvalConstRangeChainsThroughSymbolicBounds) {
  // i in [1, n], n in [1, 100] -> i in [1, 100].
  RangeEnv Env;
  Env.bindVar(I, SymRange::of(SymExpr::constant(1), SymExpr::var(N)));
  Env.bindVar(N, SymRange::of(SymExpr::constant(1), SymExpr::constant(100)));
  ConstRange R = evalConstRange(SymExpr::var(I), Env);
  ASSERT_TRUE(R.Lo && R.Hi);
  EXPECT_EQ(*R.Lo, 1);
  EXPECT_EQ(*R.Hi, 100);
}

TEST_F(SymExprTest, EvalConstRangeMod) {
  RangeEnv Env;
  SymExpr M = SymExpr::mod(SymExpr::var(I), SymExpr::constant(8));
  Env.bindVar(I, SymRange::of(SymExpr::constant(0), SymExpr::constant(1000)));
  ConstRange R = evalConstRange(M, Env);
  ASSERT_TRUE(R.Lo && R.Hi);
  EXPECT_EQ(*R.Lo, 0);
  EXPECT_EQ(*R.Hi, 7);
}

TEST_F(SymExprTest, EvalConstRangeArrayValues) {
  RangeEnv Env;
  Env.bindArrayValues(Ind,
                      SymRange::of(SymExpr::constant(1), SymExpr::constant(50)));
  SymExpr E = SymExpr::arrayElem(Ind, {SymExpr::var(J)});
  ConstRange R = evalConstRange(E, Env);
  ASSERT_TRUE(R.Lo && R.Hi);
  EXPECT_EQ(*R.Lo, 1);
  EXPECT_EQ(*R.Hi, 50);
}

TEST_F(SymExprTest, ProvablyLE) {
  RangeEnv Env;
  Env.bindVar(I, SymRange::of(SymExpr::constant(1), SymExpr::var(N)));
  // i <= n + 1 given i in [1, n]: (n+1) - i has range [1, ...] with the
  // difference trick: n + 1 - i, i <= n  ->  >= 1.
  SymExpr Lhs = SymExpr::var(I);
  SymExpr Rhs = SymExpr::var(N) + 1;
  // The difference n + 1 - i still mentions n and i separately; bind i's
  // range in terms of n so the terms cancel.
  EXPECT_TRUE(provablyLE(Lhs, Rhs, Env));
  EXPECT_TRUE(provablyLT(Lhs, Rhs, Env));
}

TEST_F(SymExprTest, ProverIsSoundOnUnknowns) {
  RangeEnv Env;
  EXPECT_FALSE(provablyLE(SymExpr::var(I), SymExpr::var(J), Env));
  EXPECT_FALSE(provablyLE(SymExpr::var(J), SymExpr::var(I), Env));
  EXPECT_TRUE(provablyLE(SymExpr::var(I), SymExpr::var(I), Env));
}

TEST_F(SymExprTest, RangeOverVarAffine) {
  SymExpr E = SymExpr::var(I) * 3 + SymExpr::var(N);
  SymRange R = rangeOverVar(E, I, SymExpr::constant(1), SymExpr::constant(4));
  ASSERT_TRUE(R.Lo.isFinite() && R.Hi.isFinite());
  EXPECT_TRUE(R.Lo.E.equals(SymExpr::var(N) + 3));
  EXPECT_TRUE(R.Hi.E.equals(SymExpr::var(N) + 12));
}

TEST_F(SymExprTest, RangeOverVarNegativeCoeff) {
  SymExpr E = -SymExpr::var(I) + 10;
  SymRange R = rangeOverVar(E, I, SymExpr::constant(1), SymExpr::constant(4));
  ASSERT_TRUE(R.Lo.isFinite() && R.Hi.isFinite());
  EXPECT_TRUE(R.Lo.E.equals(SymExpr::constant(6)));
  EXPECT_TRUE(R.Hi.E.equals(SymExpr::constant(9)));
}

TEST_F(SymExprTest, RangeOverVarInsideSubscriptIsUnbounded) {
  SymExpr E = SymExpr::arrayElem(Ind, {SymExpr::var(I)});
  SymRange R = rangeOverVar(E, I, SymExpr::constant(1), SymExpr::constant(4));
  EXPECT_TRUE(R.isUnbounded());
}

TEST_F(SymExprTest, RangeOverVarIndependent) {
  SymExpr E = SymExpr::var(N) + 2;
  SymRange R = rangeOverVar(E, I, SymExpr::constant(1), SymExpr::constant(4));
  ASSERT_TRUE(R.Lo.isFinite());
  EXPECT_TRUE(R.Lo.E.equals(R.Hi.E));
}

} // namespace
