//===- tests/test_pipeline.cpp - Whole-pipeline analysis tests ------------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// These tests pin the paper's headline result: with the irregular array
/// access analyses on, the Table 3 loops of all five programs parallelize;
/// without them, none do.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "benchprogs/Benchmarks.h"
#include "xform/Parallelizer.h"
#include "xform/Passes.h"

using namespace iaa;
using namespace iaa::mf;
using namespace iaa::xform;
using iaa::test::parseOrDie;

namespace {

PipelineResult analyze(const std::string &Source, PipelineMode Mode) {
  auto P = parseOrDie(Source);
  PipelineResult R = parallelize(*P, Mode);
  // Keep the program alive only for the duration: the reports hold Symbol
  // pointers, so tests that need them must hold the program themselves.
  return R;
}

bool loopParallel(const PipelineResult &R, const std::string &Label) {
  const LoopReport *Rep = R.reportFor(Label);
  return Rep && Rep->Parallel;
}

//===----------------------------------------------------------------------===//
// Normalization passes
//===----------------------------------------------------------------------===//

TEST(Passes, ConstantPropagation) {
  auto P = parseOrDie(R"(program t
    integer n, a
    n = 100
    a = n + 1
  end)");
  unsigned Changes = propagateConstants(*P);
  EXPECT_GE(Changes, 1u);
  const auto *AS = cast<AssignStmt>(P->mainProcedure()->body()[1]);
  sym::SymExpr Rhs = sym::SymExpr::fromAst(AS->rhs());
  EXPECT_TRUE(Rhs.isConstant());
  EXPECT_EQ(Rhs.constValue(), 101);
}

TEST(Passes, ConstPropSkipsMultiplyAssigned) {
  auto P = parseOrDie(R"(program t
    integer n, a
    n = 100
    n = 200
    a = n
  end)");
  propagateConstants(*P);
  const auto *AS = cast<AssignStmt>(P->mainProcedure()->body()[2]);
  EXPECT_FALSE(sym::SymExpr::fromAst(AS->rhs()).isConstant());
}

TEST(Passes, ForwardSubstitution) {
  auto P = parseOrDie(R"(program t
    integer j, jj, n
    integer ind(10)
    real x(10), z(10)
    n = 10
    do j = 1, n
      jj = ind(j)
      z(jj) = x(jj) * 2.0
    end do
  end)");
  unsigned Changes = forwardSubstitute(*P);
  EXPECT_GE(Changes, 1u);
  auto *Loop = cast<DoStmt>(P->mainProcedure()->body()[1]);
  const auto *AS = cast<AssignStmt>(Loop->body()[1]);
  // z(jj) must have become z(ind(j)).
  const auto *T = AS->arrayTarget();
  ASSERT_NE(T, nullptr);
  EXPECT_TRUE(isa<mf::ArrayRef>(T->subscript(0)));
}

TEST(Passes, ForwardSubstitutionStopsAtRedefinition) {
  auto P = parseOrDie(R"(program t
    integer a, b, c, d
    b = 1
    a = b + 1
    b = 99
    c = a
    d = a
  end)");
  forwardSubstitute(*P);
  // c = a could not be replaced by b+1 because b changed.
  const auto *AS = cast<AssignStmt>(P->mainProcedure()->body()[3]);
  sym::SymExpr Rhs = sym::SymExpr::fromAst(AS->rhs());
  // After constant folding "a" may remain symbolic; the point is that it
  // must NOT reference b's stale value: either VarRef(a) or literal 2 via
  // chains, never b + 1.
  EXPECT_FALSE(Rhs.references(P->findSymbol("b")));
}

TEST(Passes, DeadCodeElimination) {
  auto P = parseOrDie(R"(program t
    integer a, b
    real x(5)
    a = 1
    b = a + 2
    x(1) = 1.0
  end)");
  // b is never read: its assignment dies; then a is never read either.
  unsigned Removed = eliminateDeadCode(*P);
  EXPECT_EQ(Removed, 2u);
  EXPECT_EQ(P->mainProcedure()->body().size(), 1u);
}

TEST(Passes, InductionSubstitution) {
  auto P = parseOrDie(R"(program t
    integer i, n, p
    real x(100)
    n = 50
    p = 0
    do i = 1, n
      p = p + 1
      x(p) = 1.0
    end do
  end)");
  unsigned Changes = substituteInductions(*P);
  EXPECT_EQ(Changes, 1u);
  auto *Loop = cast<DoStmt>(P->mainProcedure()->body()[2]);
  const auto *AS = cast<AssignStmt>(Loop->body()[1]);
  // x(p) became x(0 + 1*(i - 1 + 1)) = affine in i.
  sym::SymExpr Sub = sym::SymExpr::fromAst(AS->arrayTarget()->subscript(0));
  EXPECT_EQ(Sub.coeffOfVar(P->findSymbol("i")), 1);
  EXPECT_FALSE(Sub.references(P->findSymbol("p")));
}

TEST(Passes, InductionSubstitutionSkipsConditional) {
  auto P = parseOrDie(R"(program t
    integer i, n, p
    real x(100), y(100)
    n = 50
    p = 0
    do i = 1, n
      if (y(i) > 0) then
        p = p + 1
      end if
      x(p + 1) = 1.0
    end do
  end)");
  EXPECT_EQ(substituteInductions(*P), 0u);
}

//===----------------------------------------------------------------------===//
// Paper figure programs
//===----------------------------------------------------------------------===//

TEST(Pipeline, Fig1aParallelWithIAA) {
  auto P = parseOrDie(benchprogs::fig1aSource());
  PipelineResult R = parallelize(*P, PipelineMode::Full);
  ASSERT_NE(R.reportFor("dok"), nullptr);
  EXPECT_TRUE(loopParallel(R, "dok")) << R.str();
  // x must be privatized via the consecutively-written property.
  const LoopReport *Rep = R.reportFor("dok");
  bool FoundCW = false;
  for (const auto &O : Rep->PrivOutcomes)
    if (O.Array->name() == "x" && O.Privatizable && O.Reason == "CW")
      FoundCW = true;
  EXPECT_TRUE(FoundCW) << R.str();
}

TEST(Pipeline, Fig1aSerialWithoutIAA) {
  auto P = parseOrDie(benchprogs::fig1aSource());
  PipelineResult R = parallelize(*P, PipelineMode::NoIAA);
  EXPECT_FALSE(loopParallel(R, "dok")) << R.str();
}

TEST(Pipeline, Fig1bStackPrivatization) {
  auto P = parseOrDie(benchprogs::fig1bSource());
  PipelineResult R = parallelize(*P, PipelineMode::Full);
  EXPECT_TRUE(loopParallel(R, "doi")) << R.str();
  const LoopReport *Rep = R.reportFor("doi");
  bool FoundStack = false;
  for (const auto &O : Rep->PrivOutcomes)
    if (O.Array->name() == "t" && O.Privatizable && O.Reason == "STACK")
      FoundStack = true;
  EXPECT_TRUE(FoundStack) << R.str();
}

TEST(Pipeline, Fig3OffsetLengthTest) {
  auto P = parseOrDie(benchprogs::fig3Source());
  PipelineResult R = parallelize(*P, PipelineMode::Full);
  EXPECT_TRUE(loopParallel(R, "d200")) << R.str();
  const LoopReport *Rep = R.reportFor("d200");
  bool UsedOffsetLength = false;
  for (const auto &O : Rep->DepOutcomes)
    if (O.Test == deptest::TestKind::OffsetLength)
      UsedOffsetLength = true;
  EXPECT_TRUE(UsedOffsetLength) << R.str();
  // The inner loop is trivially parallel too (distinct j elements).
  EXPECT_TRUE(loopParallel(R, "d300")) << R.str();
}

TEST(Pipeline, Fig14GatherPrivatization) {
  auto P = parseOrDie(benchprogs::fig14Source());
  PipelineResult R = parallelize(*P, PipelineMode::Full);
  EXPECT_TRUE(loopParallel(R, "dok")) << R.str();
  EXPECT_TRUE(loopParallel(R, "doj")) << R.str();
}

//===----------------------------------------------------------------------===//
// The five benchmarks: Table 3's parallelization outcomes
//===----------------------------------------------------------------------===//

struct BenchCase {
  int Index;
  const char *Name;
};

class BenchmarkPipeline : public ::testing::TestWithParam<int> {};

TEST_P(BenchmarkPipeline, IrregularLoopsParallelOnlyWithIAA) {
  auto All = benchprogs::allBenchmarks(/*Scale=*/0.05);
  const benchprogs::BenchmarkProgram &B = All[GetParam()];

  auto P1 = parseOrDie(B.Source);
  PipelineResult Full = parallelize(*P1, PipelineMode::Full);
  for (const std::string &Label : B.IrregularLoops)
    EXPECT_TRUE(loopParallel(Full, Label))
        << B.Name << "/" << Label << " should parallelize with IAA\n"
        << Full.str();

  auto P2 = parseOrDie(B.Source);
  PipelineResult Base = parallelize(*P2, PipelineMode::NoIAA);
  for (const std::string &Label : B.IrregularLoops)
    EXPECT_FALSE(loopParallel(Base, Label))
        << B.Name << "/" << Label << " must stay serial without IAA";

  auto P3 = parseOrDie(B.Source);
  PipelineResult Apo = parallelize(*P3, PipelineMode::Apo);
  for (const std::string &Label : B.IrregularLoops)
    EXPECT_FALSE(loopParallel(Apo, Label))
        << B.Name << "/" << Label << " must stay serial under APO";
}

std::string pipelineCaseName(const ::testing::TestParamInfo<int> &Info) {
  static const char *Names[] = {"TRFD", "DYFESM", "BDNA", "P3M", "TREE"};
  return Names[Info.param];
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, BenchmarkPipeline,
                         ::testing::Values(0, 1, 2, 3, 4), pipelineCaseName);

TEST(Pipeline, TrfdUsesClosedFormDistance) {
  auto B = benchprogs::trfd(0.05);
  auto P = parseOrDie(B.Source);
  PipelineResult R = parallelize(*P, PipelineMode::Full);
  const LoopReport *Rep = R.reportFor("do140");
  ASSERT_NE(Rep, nullptr);
  bool UsedCFD = false;
  for (const auto &O : Rep->DepOutcomes)
    for (const std::string &Prop : O.PropertiesUsed)
      if (Prop.find("CFD") != std::string::npos)
        UsedCFD = true;
  EXPECT_TRUE(UsedCFD) << R.str();
  // TRFD's ia() additionally has a constant base: the paper reports CFV.
  EXPECT_TRUE(analysis::ClosedFormDistanceChecker::hasConstantBase(
      *P, P->findSymbol("ia")));
}

TEST(Pipeline, DyfesmUsesOffsetLengthWithCfb) {
  auto B = benchprogs::dyfesm(0.05);
  auto P = parseOrDie(B.Source);
  PipelineResult R = parallelize(*P, PipelineMode::Full);
  const LoopReport *Rep = R.reportFor("do4");
  ASSERT_NE(Rep, nullptr);
  bool OffsetLength = false, UsedCfb = false;
  for (const auto &O : Rep->DepOutcomes) {
    if (O.Test == deptest::TestKind::OffsetLength)
      OffsetLength = true;
    for (const std::string &Prop : O.PropertiesUsed)
      if (Prop.find("CFB") != std::string::npos)
        UsedCfb = true;
  }
  EXPECT_TRUE(OffsetLength) << R.str();
  EXPECT_TRUE(UsedCfb) << R.str();
  // pptr has no constant base (runtime istart): CFD, not CFV.
  EXPECT_FALSE(analysis::ClosedFormDistanceChecker::hasConstantBase(
      *P, P->findSymbol("pptr")));
}

TEST(Pipeline, BdnaPrivatizesThroughCfb) {
  auto B = benchprogs::bdna(0.05);
  auto P = parseOrDie(B.Source);
  PipelineResult R = parallelize(*P, PipelineMode::Full);
  const LoopReport *Rep = R.reportFor("do240");
  ASSERT_NE(Rep, nullptr);
  bool XdtViaCfb = false, IndViaCw = false;
  for (const auto &O : Rep->PrivOutcomes) {
    if (O.Array->name() == "xdt" && O.Privatizable &&
        O.Reason == "CFB-indirect")
      XdtViaCfb = true;
    if (O.Array->name() == "ind" && O.Privatizable && O.Reason == "CW")
      IndViaCw = true;
  }
  EXPECT_TRUE(XdtViaCfb) << R.str();
  EXPECT_TRUE(IndViaCw) << R.str();
  // The gather loop itself stays serial (carried counter).
  EXPECT_FALSE(loopParallel(R, "do236"));
}

TEST(Pipeline, TreePrivatizesStack) {
  auto B = benchprogs::tree(0.05);
  auto P = parseOrDie(B.Source);
  PipelineResult R = parallelize(*P, PipelineMode::Full);
  const LoopReport *Rep = R.reportFor("do10");
  ASSERT_NE(Rep, nullptr);
  EXPECT_TRUE(Rep->Parallel) << R.str();
  bool StackPriv = false;
  for (const auto &O : Rep->PrivOutcomes)
    if (O.Array->name() == "stack" && O.Privatizable && O.Reason == "STACK")
      StackPriv = true;
  EXPECT_TRUE(StackPriv) << R.str();
}

TEST(Pipeline, ReductionRecognition) {
  auto P = parseOrDie(R"(program t
    integer i, n
    real s
    real x(100)
    n = 100
    do i = 1, n
      x(i) = i * 0.5
    end do
    red: do i = 1, n
      s = s + x(i)
    end do
  end)");
  PipelineResult R = parallelize(*P, PipelineMode::Full);
  const LoopReport *Rep = R.reportFor("red");
  ASSERT_NE(Rep, nullptr);
  EXPECT_TRUE(Rep->Parallel) << R.str();
  EXPECT_EQ(Rep->Reductions.size(), 1u);
}

TEST(Pipeline, ApoRejectsReductions) {
  auto P = parseOrDie(R"(program t
    integer i, n
    real s
    real x(100)
    n = 100
    red: do i = 1, n
      s = s + x(i)
    end do
  end)");
  PipelineResult R = parallelize(*P, PipelineMode::Apo);
  EXPECT_FALSE(loopParallel(R, "red"));
}

TEST(Pipeline, CarriedScalarBlocks) {
  auto P = parseOrDie(R"(program t
    integer i, n
    real s
    real x(100)
    n = 100
    carry: do i = 1, n
      x(i) = s * 0.5
      s = x(i) + 1.0
    end do
  end)");
  PipelineResult R = parallelize(*P, PipelineMode::Full);
  EXPECT_FALSE(loopParallel(R, "carry")) << R.str();
}

TEST(Pipeline, TrueArrayDependenceBlocks) {
  auto P = parseOrDie(R"(program t
    integer i, n
    real x(101)
    n = 100
    rec: do i = 1, n
      x(i + 1) = x(i) * 0.5 + 1.0
    end do
  end)");
  PipelineResult R = parallelize(*P, PipelineMode::Full);
  EXPECT_FALSE(loopParallel(R, "rec")) << R.str();
}

} // namespace
