//===- tests/test_property_edge.cpp - Property solver edge cases ----------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "analysis/PropertySolver.h"
#include "cfg/Hcg.h"

using namespace iaa;
using namespace iaa::analysis;
using namespace iaa::mf;
using namespace iaa::sec;
using namespace iaa::sym;
using iaa::test::parseOrDie;

namespace {

struct Fixture {
  std::unique_ptr<Program> P;
  std::unique_ptr<SymbolUses> Uses;
  std::unique_ptr<cfg::Hcg> G;
  std::unique_ptr<PropertySolver> Solver;

  explicit Fixture(const std::string &Source) {
    P = iaa::test::parseOrDie(Source);
    Uses = std::make_unique<SymbolUses>(*P);
    G = std::make_unique<cfg::Hcg>(*P);
    Solver = std::make_unique<PropertySolver>(*G, *Uses);
  }

  PropertyResult cfb(const Stmt *At, const char *Array, const Section &S,
                     SymRange *BoundsOut = nullptr) {
    ClosedFormBoundChecker C(P->findSymbol(Array), *Uses);
    PropertyResult R = Solver->verifyBefore(At, C, S);
    if (BoundsOut)
      *BoundsOut = C.valueBounds();
    return R;
  }
};

TEST(PropertyEdge, QueryFromInsideLoopUsesDoHeaderRule) {
  // The use is inside an outer loop; the defs are *before* that loop. The
  // query escapes through QueryProp_doheader (Fig. 10): iterations before
  // the current one neither kill nor generate, so the remainder propagates
  // above the loop and meets the definitions.
  Fixture F(R"(program t
    integer i, k, n, t
    integer a(100)
    n = 100
    def: do i = 1, n
      a(i) = mod(i, 9) + 1
    end do
    outer: do k = 1, 50
      use: do i = 1, n
        t = a(i)
      end do
    end do
  end)");
  DoStmt *Use = F.P->findLoop("use");
  Section S = Section::interval(SymExpr::constant(1),
                                SymExpr::var(F.P->findSymbol("n")));
  SymRange B;
  PropertyResult R = F.cfb(Use->body()[0], "a", S, &B);
  EXPECT_TRUE(R.Verified);
}

TEST(PropertyEdge, KillInPreviousIterationsDefeatsQuery) {
  // The outer loop body itself scatters into a() before the use: the
  // doheader rule must notice that *previous iterations* may have killed
  // elements of the query section.
  Fixture F(R"(program t
    integer i, k, n, t
    integer a(100), perm(100)
    n = 100
    def: do i = 1, n
      a(i) = mod(i, 9) + 1
    end do
    outer: do k = 1, 50
      use: do i = 1, n
        t = a(i)
      end do
      a(perm(k)) = t
    end do
  end)");
  DoStmt *Use = F.P->findLoop("use");
  Section S = Section::interval(SymExpr::constant(1),
                                SymExpr::var(F.P->findSymbol("n")));
  PropertyResult R = F.cfb(Use->body()[0], "a", S);
  EXPECT_FALSE(R.Verified)
      << "a(perm(k)) from iteration k-1 may violate the bounds";
}

TEST(PropertyEdge, RegenerationInsideIterationSurvivesOwnKill) {
  // The body re-creates the whole property before the use in the *same*
  // iteration, so earlier iterations' kills do not matter.
  Fixture F(R"(program t
    integer i, k, n, t
    integer a(100), perm(100)
    n = 100
    outer: do k = 1, 50
      def: do i = 1, n
        a(i) = mod(i + k, 9) + 1
      end do
      use: do i = 1, n
        t = a(i)
      end do
      a(perm(k)) = 777
    end do
  end)");
  DoStmt *Use = F.P->findLoop("use");
  Section S = Section::interval(SymExpr::constant(1),
                                SymExpr::var(F.P->findSymbol("n")));
  SymRange B;
  PropertyResult R = F.cfb(Use->body()[0], "a", S, &B);
  EXPECT_TRUE(R.Verified);
  // The hull covers both branches of the def (mod+1 in [1,9]).
  RangeEnv Env;
  ConstRange Hi = evalConstRange(B.Hi.E, Env);
  ASSERT_TRUE(Hi.Hi);
  EXPECT_LE(*Hi.Hi, 9);
}

TEST(PropertyEdge, WhileLoopWritingTargetKills) {
  Fixture F(R"(program t
    integer i, n, p, t
    integer a(100)
    n = 100
    do i = 1, n
      a(i) = 5
    end do
    p = 3
    while (p > 0)
      a(p) = 99
      p = p - 1
    end while
    use: do i = 1, n
      t = a(i)
    end do
  end)");
  Section S = Section::interval(SymExpr::constant(1),
                                SymExpr::var(F.P->findSymbol("n")));
  PropertyResult R = F.cfb(F.P->findLoop("use"), "a", S);
  EXPECT_FALSE(R.Verified);
  EXPECT_TRUE(R.KilledEarly);
}

TEST(PropertyEdge, WhileLoopNotTouchingTargetIsTransparent) {
  Fixture F(R"(program t
    integer i, n, p, t
    integer a(100)
    real w(10)
    n = 100
    do i = 1, n
      a(i) = 5
    end do
    p = 3
    while (p > 0)
      w(p) = 1.0
      p = p - 1
    end while
    use: do i = 1, n
      t = a(i)
    end do
  end)");
  Section S = Section::interval(SymExpr::constant(1),
                                SymExpr::var(F.P->findSymbol("n")));
  EXPECT_TRUE(F.cfb(F.P->findLoop("use"), "a", S).Verified);
}

TEST(PropertyEdge, BranchDefinitionsBothGenerate) {
  // Defs on both arms of an if: each arm generates its own bounds; the
  // query must be satisfied on both paths and the hull must cover both.
  Fixture F(R"(program t
    integer i, n, t
    integer a(100)
    real sel(100)
    n = 100
    def: do i = 1, n
      if (sel(i) > 0) then
        a(i) = 3
      else
        a(i) = 7
      end if
    end do
    use: do i = 1, n
      t = a(i)
    end do
  end)");
  Section S = Section::interval(SymExpr::constant(1),
                                SymExpr::var(F.P->findSymbol("n")));
  SymRange B;
  PropertyResult R = F.cfb(F.P->findLoop("use"), "a", S, &B);
  EXPECT_TRUE(R.Verified);
  RangeEnv Env;
  ConstRange Lo = evalConstRange(B.Lo.E, Env);
  ConstRange Hi = evalConstRange(B.Hi.E, Env);
  ASSERT_TRUE(Lo.Lo && Hi.Hi);
  EXPECT_EQ(*Lo.Lo, 3);
  EXPECT_EQ(*Hi.Hi, 7);
}

TEST(PropertyEdge, OneArmedDefinitionDoesNotGenerate) {
  // A def under a condition is a MAY write: it cannot satisfy the query.
  Fixture F(R"(program t
    integer i, n, t
    integer a(100)
    real sel(100)
    n = 100
    def: do i = 1, n
      if (sel(i) > 0) then
        a(i) = 3
      end if
    end do
    use: do i = 1, n
      t = a(i)
    end do
  end)");
  Section S = Section::interval(SymExpr::constant(1),
                                SymExpr::var(F.P->findSymbol("n")));
  EXPECT_FALSE(F.cfb(F.P->findLoop("use"), "a", S).Verified);
}

TEST(PropertyEdge, QuerySplittingFailsForOneBadCaller) {
  // Two call sites of the using procedure; only one is preceded by the
  // definitions. Query splitting (Fig. 12) requires *all* callers to
  // satisfy the query.
  Fixture F(R"(program t
    integer i, n, t
    integer a(100)
    procedure defs
      do i = 1, n
        a(i) = mod(i, 9) + 1
      end do
    end
    procedure user
      use: do i = 1, n
        t = a(i)
      end do
    end
    n = 100
    call user
    call defs
    call user
  end)");
  Section S = Section::interval(SymExpr::constant(1),
                                SymExpr::var(F.P->findSymbol("n")));
  PropertyResult R = F.cfb(F.P->findLoop("use"), "a", S);
  EXPECT_FALSE(R.Verified) << "the first call precedes the definitions";
  EXPECT_GE(R.QueriesSplit, 2u);
}

TEST(PropertyEdge, QuerySplittingSucceedsWhenAllCallersCovered) {
  Fixture F(R"(program t
    integer i, n, t
    integer a(100)
    procedure defs
      do i = 1, n
        a(i) = mod(i, 9) + 1
      end do
    end
    procedure user
      use: do i = 1, n
        t = a(i)
      end do
    end
    n = 100
    call defs
    call user
    call user
  end)");
  Section S = Section::interval(SymExpr::constant(1),
                                SymExpr::var(F.P->findSymbol("n")));
  PropertyResult R = F.cfb(F.P->findLoop("use"), "a", S);
  EXPECT_TRUE(R.Verified);
  EXPECT_GE(R.QueriesSplit, 2u);
}

TEST(PropertyEdge, EmptyQuerySectionTriviallyTrue) {
  Fixture F(R"(program t
    integer i, n, t
    integer a(100)
    n = 100
    use: do i = 1, n
      t = a(i)
    end do
  end)");
  PropertyResult R =
      F.cfb(F.P->findLoop("use"), "a", Section::empty());
  EXPECT_TRUE(R.Verified);
}

TEST(PropertyEdge, UniverseQueryFailsFast) {
  Fixture F(R"(program t
    integer i, n, t
    integer a(100)
    n = 100
    use: do i = 1, n
      t = a(i)
    end do
  end)");
  PropertyResult R =
      F.cfb(F.P->findLoop("use"), "a", Section::universe());
  EXPECT_FALSE(R.Verified);
}

TEST(PropertyEdge, MainEntryReachedMeansUnavailable) {
  // No definitions at all: the query reaches the program entry with a
  // nonempty remainder (Fig. 12's program-entry case).
  Fixture F(R"(program t
    integer i, n, t
    integer a(100)
    n = 100
    use: do i = 1, n
      t = a(i)
    end do
  end)");
  // A literal section avoids the stale-scalar rule at `n = 100`.
  Section S = Section::interval(SymExpr::constant(1), SymExpr::constant(100));
  PropertyResult R = F.cfb(F.P->findLoop("use"), "a", S);
  EXPECT_FALSE(R.Verified);
  EXPECT_FALSE(R.KilledEarly) << "not killed — simply never generated";
}

} // namespace
