//===- tests/test_runtime.cpp - Scheduling-runtime tests ------------------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// Tests for the persistent parallel runtime: the WorkerPool fork/join
/// primitive, the ChunkDispenser scheduling policies, the empty-chunk
/// last-value regression (NIter=6 over T=4 used to write an idle worker's
/// untouched copy-in privates back to shared memory), and the
/// division-by-zero array-extent fault.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "interp/Interpreter.h"
#include "interp/ThreadPool.h"
#include "xform/Parallelizer.h"

#include <atomic>
#include <set>
#include <vector>

using namespace iaa;
using namespace iaa::interp;
using iaa::test::parseOrDie;

namespace {

//===----------------------------------------------------------------------===//
// WorkerPool
//===----------------------------------------------------------------------===//

TEST(WorkerPool, RunsEveryWorkerExactlyOnce) {
  WorkerPool Pool(4);
  EXPECT_EQ(Pool.maxWorkers(), 4u);
  std::vector<std::atomic<int>> Hits(4);
  for (auto &H : Hits)
    H = 0;
  Pool.run(4, [&](unsigned W) { ++Hits[W]; });
  for (unsigned W = 0; W < 4; ++W)
    EXPECT_EQ(Hits[W].load(), 1) << "worker " << W;
}

TEST(WorkerPool, ReusesThreadsAcrossInvocations) {
  // The structural point of the pool: many fork/joins, one thread spawn.
  WorkerPool Pool(3);
  std::atomic<int> Total{0};
  const int Rounds = 200;
  for (int R = 0; R < Rounds; ++R)
    Pool.run(3, [&](unsigned) { ++Total; });
  EXPECT_EQ(Total.load(), Rounds * 3);
  EXPECT_EQ(Pool.generation(), static_cast<uint64_t>(Rounds));
}

TEST(WorkerPool, RunWithFewerWorkersParksTheRest) {
  WorkerPool Pool(4);
  std::vector<std::atomic<int>> Hits(4);
  for (auto &H : Hits)
    H = 0;
  Pool.run(2, [&](unsigned W) { ++Hits[W]; });
  EXPECT_EQ(Hits[0].load(), 1);
  EXPECT_EQ(Hits[1].load(), 1);
  EXPECT_EQ(Hits[2].load(), 0);
  EXPECT_EQ(Hits[3].load(), 0);
}

TEST(WorkerPool, SingleWorkerRunsInline) {
  WorkerPool Pool(1);
  int Calls = 0;
  Pool.run(1, [&](unsigned W) {
    EXPECT_EQ(W, 0u);
    ++Calls;
  });
  EXPECT_EQ(Calls, 1);
  EXPECT_EQ(Pool.generation(), 0u) << "no fork generation for one worker";
}

//===----------------------------------------------------------------------===//
// ChunkDispenser
//===----------------------------------------------------------------------===//

/// Drains the dispenser single-threaded (round-robin over workers) and
/// checks that the chunks exactly partition [Lo, Up] in increasing order,
/// per worker and globally.
void expectExactCover(int64_t Lo, int64_t Up, unsigned Workers, Schedule S,
                      int64_t ChunkSize, int64_t Align = 1) {
  ChunkDispenser D(Lo, Up, Workers, S, ChunkSize, Align);
  std::set<int64_t> Seen;
  std::vector<int64_t> LastPerWorker(Workers, INT64_MIN);
  unsigned Chunks = 0;
  std::vector<bool> Done(Workers, false);
  bool Any = true;
  while (Any) {
    Any = false;
    for (unsigned W = 0; W < Workers; ++W) {
      if (Done[W])
        continue;
      int64_t First, Last;
      unsigned Id;
      if (!D.next(W, First, Last, Id)) {
        Done[W] = true;
        continue;
      }
      Any = true;
      ++Chunks;
      EXPECT_LE(First, Last) << "empty chunks must never be dispensed";
      EXPECT_GT(First, LastPerWorker[W])
          << "a worker's chunks must be increasing";
      if (Align > 1) {
        EXPECT_EQ((First - Lo) % Align, 0)
            << "chunk start " << First << " not aligned to " << Align;
        if (Last != Up) {
          EXPECT_EQ((Last - Lo + 1) % Align, 0)
              << "interior chunk end " << Last << " not aligned to " << Align;
        }
      }
      LastPerWorker[W] = Last;
      for (int64_t I = First; I <= Last; ++I)
        EXPECT_TRUE(Seen.insert(I).second)
            << "iteration " << I << " dispensed twice";
    }
  }
  EXPECT_EQ(Seen.size(), static_cast<size_t>(Up >= Lo ? Up - Lo + 1 : 0));
  if (Up >= Lo) {
    EXPECT_EQ(*Seen.begin(), Lo);
    EXPECT_EQ(*Seen.rbegin(), Up);
  }
  EXPECT_EQ(D.chunksDispensed(), Chunks);
}

TEST(ChunkDispenser, AllSchedulesPartitionExactly) {
  for (Schedule S : {Schedule::Static, Schedule::Dynamic, Schedule::Guided})
    for (unsigned T : {1u, 2u, 4u, 7u})
      for (int64_t ChunkSize : {int64_t(0), int64_t(1), int64_t(3)}) {
        expectExactCover(1, 6, T, S, ChunkSize);   // The regression shape.
        expectExactCover(1, 100, T, S, ChunkSize);
        expectExactCover(5, 5, T, S, ChunkSize);   // Single iteration.
        expectExactCover(-3, 11, T, S, ChunkSize); // Negative lower bound.
      }
}

TEST(ChunkDispenser, GuidedFloorTailNeverOvershootsOrStarves) {
  // The guided tail has two edges worth pinning: a chunk floor larger
  // than what remains (ChunkSize = NIter + 1) must clamp to the
  // remainder rather than dispense past Up, and a Remaining/Workers
  // quotient of zero must still drain every last iteration instead of
  // starving the trailing workers. expectExactCover checks both (no
  // duplicates, no gaps, max dispensed iteration == Up).
  const int64_t Lo = 1, Up = 37; // NIter = 37, prime-ish tail shapes.
  for (unsigned T : {1u, 2u, 4u, 7u})
    for (int64_t ChunkSize :
         {int64_t(0), int64_t(1), int64_t(5), int64_t(Up - Lo + 2)})
      expectExactCover(Lo, Up, T, Schedule::Guided, ChunkSize);
  // Same sweep on a space smaller than the worker count.
  for (unsigned T : {1u, 2u, 4u, 7u})
    for (int64_t ChunkSize : {int64_t(0), int64_t(1), int64_t(5), int64_t(4)})
      expectExactCover(1, 3, T, Schedule::Guided, ChunkSize);
}

TEST(ChunkDispenser, AlignedChunksStillPartitionExactly) {
  // The locality model asks for line-aligned chunk boundaries; alignment
  // must never change which iterations run, only where chunks break.
  for (Schedule S : {Schedule::Static, Schedule::Dynamic, Schedule::Guided})
    for (unsigned T : {1u, 2u, 4u, 7u})
      for (int64_t Align : {int64_t(2), int64_t(8)})
        for (int64_t ChunkSize : {int64_t(0), int64_t(1), int64_t(5)}) {
          expectExactCover(1, 100, T, S, ChunkSize, Align);
          expectExactCover(1, 6, T, S, ChunkSize, Align);
          expectExactCover(-3, 11, T, S, ChunkSize, Align);
          expectExactCover(5, 5, T, S, ChunkSize, Align);
        }
}

TEST(ChunkDispenser, AlignOneMatchesUnalignedDispensing) {
  // Align = 1 must be byte-for-byte the old dispenser: same chunk
  // sequence per worker, not merely the same coverage.
  for (Schedule S : {Schedule::Static, Schedule::Dynamic, Schedule::Guided}) {
    ChunkDispenser A(1, 100, 4, S, 5);
    ChunkDispenser B(1, 100, 4, S, 5, 1);
    for (unsigned W = 0; W < 4; ++W) {
      int64_t AF, AL, BF, BL;
      unsigned AI, BI;
      bool AOk, BOk;
      do {
        AOk = A.next(W, AF, AL, AI);
        BOk = B.next(W, BF, BL, BI);
        ASSERT_EQ(AOk, BOk);
        if (AOk) {
          EXPECT_EQ(AF, BF);
          EXPECT_EQ(AL, BL);
        }
      } while (AOk);
    }
  }
}

TEST(ChunkDispenser, ZeroTripSpaceDispensesNothing) {
  // Up < Lo (a zero- or negative-trip do loop): every policy must dispense
  // nothing, count zero chunks, and stay well-defined under arbitrarily
  // many repeated polls from every worker — the dynamic policy used to
  // advance its shared cursor on each exhausted poll.
  const std::pair<int64_t, int64_t> EmptyBounds[] = {{1, 0}, {5, 1}, {0, -3}};
  for (Schedule S : {Schedule::Static, Schedule::Dynamic, Schedule::Guided})
    for (int64_t ChunkSize : {int64_t(0), int64_t(1), int64_t(5)})
      for (auto [Lo, Up] : EmptyBounds) {
        ChunkDispenser D(Lo, Up, 3, S, ChunkSize);
        int64_t First, Last;
        unsigned Id;
        for (int Poll = 0; Poll < 100; ++Poll)
          for (unsigned W = 0; W < 3; ++W)
            EXPECT_FALSE(D.next(W, First, Last, Id))
                << scheduleName(S) << " [" << Lo << ", " << Up
                << "] chunk=" << ChunkSize;
        EXPECT_EQ(D.chunksDispensed(), 0u);
      }
}

TEST(ChunkDispenser, StaticCeilSplitLeavesTrailingWorkersEmpty) {
  // NIter=6, T=4: ceil(6/4)=2 → workers 0..2 get two iterations, worker 3
  // gets nothing. This is the decomposition behind the last-value bug.
  ChunkDispenser D(1, 6, 4, Schedule::Static, 0);
  int64_t First, Last;
  unsigned Id;
  ASSERT_TRUE(D.next(0, First, Last, Id));
  EXPECT_EQ(First, 1);
  EXPECT_EQ(Last, 2);
  ASSERT_TRUE(D.next(2, First, Last, Id));
  EXPECT_EQ(First, 5);
  EXPECT_EQ(Last, 6);
  EXPECT_FALSE(D.next(3, First, Last, Id)) << "worker 3's chunk is empty";
  EXPECT_FALSE(D.next(2, First, Last, Id));
  EXPECT_EQ(D.chunksDispensed(), 2u) << "only non-empty chunks count";
}

TEST(ChunkDispenser, GuidedChunksShrink) {
  ChunkDispenser D(1, 1000, 4, Schedule::Guided, 0);
  int64_t First, Last;
  unsigned Id;
  int64_t PrevSize = INT64_MAX;
  while (D.next(0, First, Last, Id)) {
    int64_t Size = Last - First + 1;
    EXPECT_LE(Size, PrevSize) << "guided chunks must not grow";
    PrevSize = Size;
  }
  EXPECT_EQ(PrevSize, 1) << "guided drains down to the floor";
}

TEST(ChunkDispenser, DynamicRespectsExplicitChunkSize) {
  ChunkDispenser D(1, 10, 2, Schedule::Dynamic, 4);
  int64_t First, Last;
  unsigned Id;
  ASSERT_TRUE(D.next(0, First, Last, Id));
  EXPECT_EQ(Last - First + 1, 4);
  ASSERT_TRUE(D.next(1, First, Last, Id));
  EXPECT_EQ(Last - First + 1, 4);
  ASSERT_TRUE(D.next(0, First, Last, Id));
  EXPECT_EQ(Last - First + 1, 2) << "tail chunk is clipped to Up";
  EXPECT_FALSE(D.next(0, First, Last, Id));
}

//===----------------------------------------------------------------------===//
// Empty-chunk last-value regression (the headline bug)
//===----------------------------------------------------------------------===//

// NIter=6 over T=4: the static ceil split hands worker 3 an empty chunk.
// The pre-rework runtime unconditionally wrote worker T-1's privates back,
// so `tmp` and `w` ended up with the idle worker's untouched copy-in (the
// pre-loop zeros) instead of iteration 6's values.
const char *LastValueSource = R"(program t
  integer i, j, n, tmp
  integer w(3)
  integer out(6), fin(4)
  n = 6
  lp: do i = 1, n
    tmp = i * 3
    do j = 1, 3
      w(j) = i * 10 + j
    end do
    out(i) = tmp + w(1)
  end do
  fin(1) = tmp
  fin(2) = i
  fin(3) = w(1)
  fin(4) = w(3)
end)";

TEST(LastValue, EmptyChunkDoesNotCorruptPrivates) {
  auto P = parseOrDie(LastValueSource);
  xform::PipelineResult Plan =
      xform::parallelize(*P, xform::PipelineMode::Full);
  ASSERT_NE(Plan.reportFor("lp"), nullptr);
  ASSERT_TRUE(Plan.reportFor("lp")->Parallel)
      << Plan.reportFor("lp")->WhyNot;

  Interpreter I(*P);
  ExecOptions Par;
  Par.Plans = &Plan;
  Par.Threads = 4; // ceil(6/4)=2 → three non-empty chunks, one idle worker.
  Par.MinParallelWork = 0;
  ExecStats Stats;
  Memory M = I.run(Par, &Stats);

  EXPECT_EQ(Stats.ParallelLoopRuns, 1u);
  EXPECT_EQ(Stats.ChunksRun, 3u)
      << "ChunksRun must count only non-empty chunks";
  EXPECT_EQ(Stats.WorkersEngaged, 3u)
      << "the fourth worker never ran an iteration";

  const Buffer &Fin = M.buffer(P->findSymbol("fin"));
  EXPECT_EQ(Fin.I[0], 18) << "privatized scalar: last value is iteration 6's";
  EXPECT_EQ(Fin.I[1], 7) << "do index is ub+1 after the loop";
  EXPECT_EQ(Fin.I[2], 61) << "privatized array: last value is iteration 6's";
  EXPECT_EQ(Fin.I[3], 63);
  const Buffer &Out = M.buffer(P->findSymbol("out"));
  for (int64_t It = 1; It <= 6; ++It)
    EXPECT_EQ(Out.I[It - 1], It * 3 + It * 10 + 1) << "iteration " << It;
}

TEST(LastValue, MatchesSerialUnderEverySchedule) {
  auto P = parseOrDie(LastValueSource);
  xform::PipelineResult Plan =
      xform::parallelize(*P, xform::PipelineMode::Full);
  Interpreter I(*P);
  Memory Serial = I.run(ExecOptions{});
  double Want = Serial.checksum();
  for (Schedule S : {Schedule::Static, Schedule::Dynamic, Schedule::Guided})
    for (bool Simulate : {false, true}) {
      ExecOptions Par;
      Par.Plans = &Plan;
      Par.Threads = 4;
      Par.MinParallelWork = 0;
      Par.Sched = S;
      Par.Simulate = Simulate;
      Memory M = I.run(Par);
      EXPECT_EQ(M.checksum(), Want)
          << scheduleName(S) << (Simulate ? " simulated" : " threaded");
    }
}

//===----------------------------------------------------------------------===//
// Runtime faults
//===----------------------------------------------------------------------===//

TEST(RuntimeFault, DivisionByZeroInArrayExtent) {
  // m is a whole-program constant 0; the extent n / m used to silently
  // evaluate to 0 and trip the unrelated "extent must be positive" fault.
  // Faults are structured values now, not process aborts: the run unwinds
  // cleanly and faultState() carries the attribution.
  auto P = parseOrDie(R"(program t
    integer n, m
    real x(n / m)
    n = 10
    m = 0
    x(1) = 1.0
  end)");
  Interpreter I(*P);
  I.run(ExecOptions{});
  const FaultState &FS = I.faultState();
  ASSERT_TRUE(FS.Faulted);
  EXPECT_EQ(FS.Fault.Kind, FaultKind::DivByZero);
  EXPECT_NE(FS.Fault.Detail.find("division by zero in array extent"),
            std::string::npos);
  EXPECT_TRUE(FS.Fault.Loc.isValid());
}

} // namespace
