//===- tests/test_diagnostics.cpp - Diagnostics engine tests --------------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "support/Diagnostics.h"
#include "xform/Parallelizer.h"

using namespace iaa;
using iaa::test::parseOrDie;

namespace {

TEST(Diagnostics, SeverityOrdering) {
  // Error outranks Warning outranks Note: smaller rank = more severe.
  EXPECT_LT(diagSeverityRank(DiagKind::Error),
            diagSeverityRank(DiagKind::Warning));
  EXPECT_LT(diagSeverityRank(DiagKind::Warning),
            diagSeverityRank(DiagKind::Note));

  DiagnosticEngine Diags;
  EXPECT_FALSE(Diags.maxSeverity().has_value());
  Diags.note({1, 1}, "context");
  EXPECT_EQ(*Diags.maxSeverity(), DiagKind::Note);
  Diags.warning({2, 1}, "suspicious");
  EXPECT_EQ(*Diags.maxSeverity(), DiagKind::Warning);
  Diags.error({3, 1}, "broken");
  EXPECT_EQ(*Diags.maxSeverity(), DiagKind::Error);
  // Severity never decreases when lower-severity entries follow.
  Diags.note({4, 1}, "more context");
  EXPECT_EQ(*Diags.maxSeverity(), DiagKind::Error);
}

TEST(Diagnostics, KindNames) {
  EXPECT_STREQ(diagKindName(DiagKind::Error), "error");
  EXPECT_STREQ(diagKindName(DiagKind::Warning), "warning");
  EXPECT_STREQ(diagKindName(DiagKind::Note), "note");
}

TEST(Diagnostics, PointFormatting) {
  Diagnostic D{DiagKind::Error, {4, 7}, "unexpected token", {}};
  EXPECT_EQ(D.str(), "4:7: error: unexpected token");

  Diagnostic Unknown{DiagKind::Warning, {}, "somewhere", {}};
  EXPECT_EQ(Unknown.str(), "<unknown>: warning: somewhere");
}

TEST(Diagnostics, RangeFormatting) {
  SourceRange R({2, 3}, {2, 11});
  EXPECT_TRUE(R.isValid());
  EXPECT_EQ(R.str(), "2:3-2:11");

  // A collapsed range renders as its single position.
  EXPECT_EQ(SourceRange({5, 1}).str(), "5:1");
  EXPECT_EQ(SourceRange().str(), "<unknown>");

  DiagnosticEngine Diags;
  Diags.error(R, "malformed subscript");
  ASSERT_EQ(Diags.diagnostics().size(), 1u);
  const Diagnostic &D = Diags.diagnostics().front();
  // The range's begin doubles as the anchor position.
  EXPECT_EQ(D.Loc, (SourceLoc{2, 3}));
  EXPECT_EQ(D.Range, R);
  EXPECT_EQ(D.str(), "2:3-2:11: error: malformed subscript");
}

TEST(Diagnostics, ErrorCountAndStr) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_EQ(Diags.errorCount(), 0u);

  Diags.warning({1, 1}, "w");
  EXPECT_FALSE(Diags.hasErrors()) << "warnings must not count as errors";

  Diags.error({2, 2}, "e1");
  Diags.error(SourceRange({3, 1}, {3, 9}), "e2");
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.errorCount(), 2u);

  const std::string All = Diags.str();
  EXPECT_NE(All.find("1:1: warning: w"), std::string::npos);
  EXPECT_NE(All.find("2:2: error: e1"), std::string::npos);
  EXPECT_NE(All.find("3:1-3:9: error: e2"), std::string::npos);
}

TEST(Diagnostics, ErrorCountPlumbedIntoPipelineResult) {
  // A clean program flows zero in-pipeline diagnostics into the result.
  auto P = parseOrDie(R"(program t
    integer i, n
    real a(100)
    n = 100
    do i = 1, n
      a(i) = i * 0.5
    end do
  end)");
  xform::PipelineResult R = xform::parallelize(*P, xform::PipelineMode::Full);
  EXPECT_EQ(R.ErrorCount, 0u);
}

} // namespace
