//===- tests/TestUtil.h - Shared helpers for the test suite -----*- C++ -*-===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#ifndef IAA_TESTS_TESTUTIL_H
#define IAA_TESTS_TESTUTIL_H

#include "mf/Parser.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace iaa {
namespace test {

/// Parses \p Source and fails the test on any diagnostic.
inline std::unique_ptr<mf::Program> parseOrDie(const std::string &Source) {
  DiagnosticEngine Diags;
  std::unique_ptr<mf::Program> P = mf::parseProgram(Source, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  EXPECT_NE(P, nullptr);
  return P;
}

/// Parses \p Source expecting at least one error; returns the diagnostics.
inline DiagnosticEngine parseExpectingErrors(const std::string &Source) {
  DiagnosticEngine Diags;
  std::unique_ptr<mf::Program> P = mf::parseProgram(Source, Diags);
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(P, nullptr);
  return Diags;
}

} // namespace test
} // namespace iaa

#endif // IAA_TESTS_TESTUTIL_H
