//===- tests/test_prover_props.cpp - Property-based prover tests ----------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// Soundness sweeps for the symbolic prover: whenever provablyLE/LT returns
/// true for expressions over a bounded variable, exhaustive evaluation over
/// the variable's range must confirm it. (The converse — completeness — is
/// not required; the prover may say "unknown".)
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "symbolic/SymRange.h"

#include <tuple>

using namespace iaa;
using namespace iaa::sym;
using iaa::test::parseOrDie;

namespace {

/// Compare a*i + b against c*i + d for i in [1, N].
class ProverSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(ProverSweep, LEandLTAreSound) {
  auto [A, B, C, D] = GetParam();
  const int N = 10;
  auto P = parseOrDie("program t\ninteger i\ni = 0\nend");
  const mf::Symbol *I = P->findSymbol("i");

  RangeEnv Env;
  Env.bindVar(I, SymRange::of(SymExpr::constant(1), SymExpr::constant(N)));

  SymExpr Lhs = SymExpr::var(I) * A + B;
  SymExpr Rhs = SymExpr::var(I) * C + D;

  bool AllLE = true, AllLT = true;
  for (int It = 1; It <= N; ++It) {
    int64_t L = static_cast<int64_t>(A) * It + B;
    int64_t R = static_cast<int64_t>(C) * It + D;
    AllLE &= L <= R;
    AllLT &= L < R;
  }

  if (provablyLE(Lhs, Rhs, Env))
    EXPECT_TRUE(AllLE) << Lhs.str() << " <= " << Rhs.str();
  if (provablyLT(Lhs, Rhs, Env))
    EXPECT_TRUE(AllLT) << Lhs.str() << " < " << Rhs.str();
  // The prover must be complete on variable-free differences.
  if (A == C) {
    EXPECT_EQ(provablyLE(Lhs, Rhs, Env), B <= D);
    EXPECT_EQ(provablyLT(Lhs, Rhs, Env), B < D);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ProverSweep,
    ::testing::Combine(::testing::Values(-2, 0, 1, 3),
                       ::testing::Values(-4, 0, 5),
                       ::testing::Values(-1, 0, 1, 3),
                       ::testing::Values(-2, 0, 6)));

/// Interval evaluation must contain every concrete value of mixed
/// mod/min/max expressions.
class IntervalSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(IntervalSweep, EvalConstRangeContainsAllValues) {
  auto [M, K] = GetParam();
  const int N = 12;
  auto P = parseOrDie("program t\ninteger i\ni = 0\nend");
  const mf::Symbol *I = P->findSymbol("i");
  RangeEnv Env;
  Env.bindVar(I, SymRange::of(SymExpr::constant(1), SymExpr::constant(N)));

  // E = min(mod(i*K, M) + 1, i) + max(i, 3)
  SymExpr IV = SymExpr::var(I);
  SymExpr E = SymExpr::min(
                  SymExpr::mod(IV * K, SymExpr::constant(M)) + 1, IV) +
              SymExpr::max(IV, SymExpr::constant(3));

  ConstRange R = evalConstRange(E, Env);
  ASSERT_TRUE(R.Lo && R.Hi) << "bounded inputs must give bounded results";
  for (int It = 1; It <= N; ++It) {
    int64_t Mod = (static_cast<int64_t>(It) * K) % M;
    int64_t V = std::min<int64_t>(Mod + 1, It) + std::max<int64_t>(It, 3);
    EXPECT_GE(V, *R.Lo) << "i=" << It;
    EXPECT_LE(V, *R.Hi) << "i=" << It;
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, IntervalSweep,
                         ::testing::Combine(::testing::Values(2, 5, 9),
                                            ::testing::Values(1, 3, 7)));

/// Division intervals: conservative containment for positive denominators.
class DivisionSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DivisionSweep, DivRangeContainsAllQuotients) {
  auto [Num, Den] = GetParam();
  auto P = parseOrDie("program t\ninteger i\ni = 0\nend");
  const mf::Symbol *I = P->findSymbol("i");
  RangeEnv Env;
  Env.bindVar(I, SymRange::of(SymExpr::constant(Num), SymExpr::constant(Num + 10)));
  SymExpr E = SymExpr::div(SymExpr::var(I), SymExpr::constant(Den));
  ConstRange R = evalConstRange(E, Env);
  ASSERT_TRUE(R.Lo && R.Hi);
  for (int V = Num; V <= Num + 10; ++V) {
    // MF division truncates toward zero; the interval must contain every
    // truncated quotient exactly.
    int64_t Trunc = V / Den;
    EXPECT_GE(Trunc, *R.Lo) << V << "/" << Den;
    EXPECT_LE(Trunc, *R.Hi) << V << "/" << Den;
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, DivisionSweep,
                         ::testing::Combine(::testing::Values(-9, 0, 4),
                                            ::testing::Values(1, 2, 5)));

} // namespace
