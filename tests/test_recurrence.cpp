//===- tests/test_recurrence.cpp - Recurrence-based promotion tests -------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// The recurrence solver end to end: index-array-building loops are
/// classified on the None ⊑ Bounded ⊑ MonotoneNonDec ⊑ StrictlyIncreasing
/// lattice (direct and accumulator shapes, conditional widening, reset and
/// negative-step bailouts), the derived facts promote previously
/// runtime-conditional loops to unconditionally parallel plans, promoted
/// loops never touch the inspection verdict cache, the auditor re-derives
/// every promotion from scratch, a forged recurrence fact is caught by both
/// the auditor and the race checker, and strict demotion restores the
/// conditional dispatch a promotion replaced.
///
/// Suite names here start with "Recurrence" so the CI ThreadSanitizer job's
/// --gtest_filter picks them up.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "analysis/RecurrenceSolver.h"
#include "analysis/SymbolUses.h"
#include "interp/Interpreter.h"
#include "support/Statistic.h"
#include "verify/PlanAudit.h"
#include "verify/PlanMutator.h"
#include "xform/Parallelizer.h"

#include <set>

using namespace iaa;
using namespace iaa::analysis;
using namespace iaa::interp;
using namespace iaa::mf;
using namespace iaa::verify;
using iaa::deptest::RuntimeCheck;
using iaa::deptest::RuntimeCheckKind;
using iaa::test::parseOrDie;

namespace {

const Schedule AllSchedules[] = {Schedule::Static, Schedule::Dynamic,
                                 Schedule::Guided};
const unsigned ThreadCounts[] = {1, 2, 4, 7};

/// Fused CCS build: colcnt is defined in the same body the colptr
/// recurrence reads it, which defeats the statement-level CFD walk but not
/// the recurrence solver (step mod(i*5,7)+1 >= 1, so colptr is strictly
/// increasing and the scale loop's segments are disjoint). The scale loop
/// must come out unconditionally parallel with the monotone/offset-length
/// inspections deleted.
const char *FusedCcs = R"(program t
    integer i, j, n
    integer colptr(101), colcnt(100)
    real vals(800)
    n = 100
    colptr(1) = 1
    build: do i = 1, n
      colcnt(i) = mod(i * 5, 7) + 1
      colptr(i + 1) = colptr(i) + colcnt(i)
    end do
    fill: do i = 1, 800
      vals(i) = mod(i, 13) * 0.125
    end do
    scale: do i = 1, n
      do j = 1, colcnt(i)
        vals(colptr(i) + j - 1) = vals(colptr(i) + j - 1) * 1.5 + 0.25
      end do
    end do
  end)";

/// Prefix sum through a scalar accumulator: every step is >= 1, so pos is
/// strictly increasing (hence injective) and the scatter through it needs
/// no injectivity inspection. x has 3100 >= 3n elements, so the bounds
/// check discharges statically too.
const char *PrefixSumScatter = R"(program t
    integer i, n, p
    integer pos(1000)
    real x(3100), y(1000)
    n = 1000
    p = 0
    build: do i = 1, n
      p = p + mod(i, 3) + 1
      pos(i) = p
    end do
    init: do i = 1, n
      y(i) = mod(i, 9) * 0.25
    end do
    scat: do i = 1, n
      x(pos(i)) = x(pos(i)) + y(i) * 0.5
    end do
  end)";

/// PrefixSumScatter with the scatter repeated three times — if a promoted
/// loop consulted the verdict cache, this is the program that would show
/// hits.
const char *PrefixSumScatterRep = R"(program t
    integer i, r, n, p
    integer pos(1000)
    real x(3100), y(1000)
    n = 1000
    p = 0
    build: do i = 1, n
      p = p + mod(i, 3) + 1
      pos(i) = p
    end do
    init: do i = 1, n
      y(i) = mod(i, 9) * 0.25
    end do
    rep: do r = 1, 3
      scat: do i = 1, n
        x(pos(i)) = x(pos(i)) + y(i) * 0.5
      end do
    end do
  end)";

/// Gather/scatter whose index array is a permutation of 1..n only at run
/// time: statically serial, parallel conditional on an injectivity
/// inspection. Repeated so demotion accounting (1 inspection + 2 cache
/// hits) is observable.
const char *PermutationScatterRep = R"(program t
    integer i, r, n
    integer ind(1000)
    real x(1000), y(1000)
    n = 1000
    init: do i = 1, n
      ind(i) = mod(i * 7, n) + 1
      x(i) = i * 0.5
      y(i) = mod(i, 9) * 0.25
    end do
    rep: do r = 1, 3
      scat: do i = 1, n
        x(ind(i)) = x(ind(i)) + y(i) * 0.5
      end do
    end do
  end)";

/// Every index value occurs twice: a forged promotion of this loop races.
const char *DuplicateScatter = R"(program t
    integer i, n
    integer ind(1000)
    real x(1000), y(1000)
    n = 1000
    init: do i = 1, n
      ind(i) = mod(i * 7, 500) + 1
      x(i) = i * 0.5
      y(i) = mod(i, 9) * 0.25
    end do
    scat: do i = 1, n
      x(ind(i)) = x(ind(i)) + y(i) * 0.5
    end do
  end)";

struct Harness {
  std::unique_ptr<Program> P;
  xform::PipelineResult Plan;

  explicit Harness(const std::string &Source) : P(parseOrDie(Source)) {
    Plan = xform::parallelize(*P, xform::PipelineMode::Full);
  }

  double serialChecksum() {
    Interpreter I(*P);
    Memory Serial = I.run(ExecOptions{});
    return Serial.checksumExcluding(deadPrivateIds(Plan));
  }

  ExecStats runChecked(Memory *OutMem = nullptr, unsigned Threads = 4,
                       Schedule S = Schedule::Static) {
    Interpreter I(*P);
    ExecOptions Opts;
    Opts.Plans = &Plan;
    Opts.Threads = Threads;
    Opts.Sched = S;
    Opts.MinParallelWork = 0;
    Opts.RuntimeChecks = true;
    ExecStats Stats;
    Memory M = I.run(Opts, &Stats);
    if (OutMem)
      *OutMem = std::move(M);
    return Stats;
  }
};

/// Catalog-only fixture for the classification unit tests.
struct CatalogFixture {
  std::unique_ptr<Program> P;
  std::unique_ptr<SymbolUses> Uses;
  std::unique_ptr<RecurrenceCatalog> C;

  explicit CatalogFixture(const std::string &Source) : P(parseOrDie(Source)) {
    Uses = std::make_unique<SymbolUses>(*P);
    C = std::make_unique<RecurrenceCatalog>(*P, *Uses);
  }

  const RecurrenceFact *fact(const char *Loop, const char *Array) {
    return C->factFor(P->findLoop(Loop), P->findSymbol(Array));
  }
};

//===----------------------------------------------------------------------===//
// Catalog: shape recognition and lattice classification
//===----------------------------------------------------------------------===//

TEST(RecurrenceCatalog, AccumulatorPrefixSumIsStrictlyIncreasing) {
  CatalogFixture F(PrefixSumScatter);
  const RecurrenceFact *R = F.fact("build", "pos");
  ASSERT_NE(R, nullptr);
  EXPECT_EQ(R->Class, RecurrenceClass::StrictlyIncreasing) << R->describe();
  EXPECT_TRUE(R->Accumulator);
  ASSERT_NE(R->AccumulatorSym, nullptr);
  EXPECT_EQ(R->AccumulatorSym->name(), "p");
  EXPECT_FALSE(R->Conditional);
  EXPECT_TRUE(R->beyondStatementAnalysis());
  EXPECT_TRUE(R->Deps.touches(F.P->findSymbol("p")))
      << "a later write to the accumulator must invalidate the fact";
}

TEST(RecurrenceCatalog, ConditionalIncrementWidensToNonStrict) {
  CatalogFixture F(R"(program t
    integer i, n, p
    integer pos(1000), y(1000)
    n = 1000
    mk: do i = 1, n
      y(i) = mod(i, 4)
    end do
    p = 0
    build: do i = 1, n
      if (y(i) > 0) then
        p = p + 1
      end if
      pos(i) = p
    end do
  end)");
  const RecurrenceFact *R = F.fact("build", "pos");
  ASSERT_NE(R, nullptr);
  EXPECT_EQ(R->Class, RecurrenceClass::MonotoneNonDec)
      << "a guarded increment may not fire: strictness is unprovable";
  EXPECT_TRUE(R->Conditional);
  EXPECT_TRUE(R->Accumulator);
}

TEST(RecurrenceCatalog, AccumulatorResetBails) {
  CatalogFixture F(R"(program t
    integer i, n, p
    integer pos(1000)
    n = 1000
    p = 0
    build: do i = 1, n
      p = p + 1
      if (mod(i, 10) == 0) then
        p = 0
      end if
      pos(i) = p
    end do
  end)");
  EXPECT_EQ(F.fact("build", "pos"), nullptr)
      << "a reset breaks monotonicity; no fact may be derived";
}

TEST(RecurrenceCatalog, NegativeAccumulatorStepBails) {
  CatalogFixture F(R"(program t
    integer i, n, p
    integer pos(1000)
    n = 1000
    p = 5000
    build: do i = 1, n
      p = p - 1
      pos(i) = p
    end do
  end)");
  EXPECT_EQ(F.fact("build", "pos"), nullptr);
}

TEST(RecurrenceCatalog, DirectShapeWithInBodyStep) {
  CatalogFixture F(FusedCcs);
  const RecurrenceFact *R = F.fact("build", "colptr");
  ASSERT_NE(R, nullptr);
  EXPECT_EQ(R->Class, RecurrenceClass::StrictlyIncreasing)
      << "mod(i*5,7)+1 >= 1 on every iteration: " << R->describe();
  EXPECT_FALSE(R->Accumulator);
  EXPECT_TRUE(R->StepDefinedInBody)
      << "colcnt is written in the same body the recurrence reads it";
  EXPECT_TRUE(R->StepReadsArray);
  EXPECT_TRUE(R->beyondStatementAnalysis());
}

TEST(RecurrenceCatalog, WholeProgramHullBoundsEarlierStepArray) {
  CatalogFixture F(R"(program t
    integer i, n, t
    integer off(101), len(100)
    n = 100
    mk: do i = 1, n
      len(i) = mod(i, 5)
    end do
    off(1) = 1
    build: do i = 1, n
      off(i + 1) = off(i) + len(i)
    end do
    use: do i = 1, n
      t = off(i)
    end do
  end)");
  const RecurrenceFact *R = F.fact("build", "off");
  ASSERT_NE(R, nullptr);
  EXPECT_EQ(R->Class, RecurrenceClass::MonotoneNonDec)
      << "len ranges over [0, 4] program-wide: nonneg but not strict";
  EXPECT_TRUE(R->StepReadsArray);
  EXPECT_FALSE(R->StepDefinedInBody);
}

TEST(RecurrenceCatalog, NonUnitStrideDerivesNoFact) {
  CatalogFixture F(R"(program t
    integer i, n
    integer off(102)
    n = 100
    off(1) = 1
    build: do i = 1, n, 2
      off(i + 1) = off(i) + 1
    end do
  end)");
  EXPECT_EQ(F.fact("build", "off"), nullptr)
      << "a stride-2 build orders only every other adjacent pair";
}

TEST(RecurrenceCatalog, PermutedStepWriteDerivesNoFact) {
  CatalogFixture F(R"(program t
    integer i, n
    integer colptr(101), colcnt(100), perm(100)
    n = 100
    colptr(1) = 1
    mkperm: do i = 1, n
      perm(i) = i
    end do
    build: do i = 1, n
      colcnt(perm(i)) = mod(i * 5, 7) + 1
      colptr(i + 1) = colptr(i) + colcnt(i)
    end do
  end)");
  EXPECT_EQ(F.fact("build", "colptr"), nullptr)
      << "colcnt written through a runtime permutation is unanalyzable";
}

//===----------------------------------------------------------------------===//
// Promotion: conditional plans become unconditional parallel
//===----------------------------------------------------------------------===//

/// Expects \p Label to be promoted in \p R and returns its plan.
const xform::LoopPlan *expectPromoted(Harness &R, const char *Label) {
  const xform::LoopReport *Rep = R.Plan.reportFor(Label);
  EXPECT_NE(Rep, nullptr);
  if (!Rep)
    return nullptr;
  EXPECT_TRUE(Rep->Parallel) << Label << ": " << Rep->WhyNot;
  EXPECT_TRUE(Rep->RecurrencePromoted) << Label;
  EXPECT_FALSE(Rep->RuntimeConditional);

  const DoStmt *L = R.P->findLoop(Label);
  EXPECT_NE(L, nullptr);
  const xform::LoopPlan *Plan = L ? R.Plan.planFor(L) : nullptr;
  EXPECT_NE(Plan, nullptr) << "promotion must yield an unconditional plan";
  if (Plan) {
    EXPECT_TRUE(Plan->RecurrencePromoted);
    EXPECT_TRUE(Plan->RuntimeChecks.empty())
        << "the deleted inspections may not linger as live checks";
    EXPECT_FALSE(Plan->FallbackChecks.empty())
        << "the plan must remember the checks it replaced for strict audits";
  }
  return Plan;
}

TEST(RecurrencePromotion, FusedCcsScaleBecomesUnconditional) {
  Harness R(FusedCcs);
  expectPromoted(R, "scale");

  // The proof must be flagged recurrence-backed with a -REC property tag.
  const xform::LoopReport *Rep = R.Plan.reportFor("scale");
  ASSERT_NE(Rep, nullptr);
  bool SawRecBacked = false, SawRecTag = false;
  for (const deptest::ArrayDepOutcome &O : Rep->DepOutcomes) {
    SawRecBacked |= O.RecurrenceBacked;
    for (const std::string &Prop : O.PropertiesUsed)
      if (Prop.find("REC") != std::string::npos)
        SawRecTag = true;
  }
  EXPECT_TRUE(SawRecBacked);
  EXPECT_TRUE(SawRecTag);
}

TEST(RecurrencePromotion, PrefixSumScatterBecomesUnconditional) {
  Harness R(PrefixSumScatter);
  expectPromoted(R, "scat");

  const xform::LoopReport *Rep = R.Plan.reportFor("scat");
  ASSERT_NE(Rep, nullptr);
  bool SawInjRec = false;
  for (const deptest::ArrayDepOutcome &O : Rep->DepOutcomes)
    for (const std::string &Prop : O.PropertiesUsed)
      if (Prop.find("INJ") != std::string::npos &&
          Prop.find("REC") != std::string::npos)
        SawInjRec = true;
  EXPECT_TRUE(SawInjRec)
      << "the scatter proof must rest on recurrence-backed injectivity";
}

TEST(RecurrencePromotion, InterveningWriteKillsFactAndBlocksPromotion) {
  // pos(3) is overwritten between the build and the scatter: the fact no
  // longer describes the array's contents on the query path, so the loop
  // must stay runtime-conditional.
  Harness R(R"(program t
    integer i, n, p
    integer pos(1000)
    real x(3100), y(1000)
    n = 1000
    p = 0
    build: do i = 1, n
      p = p + mod(i, 3) + 1
      pos(i) = p
    end do
    pos(3) = 7
    init: do i = 1, n
      y(i) = mod(i, 9) * 0.25
    end do
    scat: do i = 1, n
      x(pos(i)) = x(pos(i)) + y(i) * 0.5
    end do
  end)");
  const xform::LoopReport *Rep = R.Plan.reportFor("scat");
  ASSERT_NE(Rep, nullptr);
  EXPECT_FALSE(Rep->Parallel);
  EXPECT_FALSE(Rep->RecurrencePromoted);
  EXPECT_TRUE(Rep->RuntimeConditional) << Rep->WhyNot;
}

//===----------------------------------------------------------------------===//
// Cache non-interaction and dispatch-tier accounting
//===----------------------------------------------------------------------===//

TEST(RecurrenceCache, PromotedLoopNeverTouchesVerdictCache) {
  // Three invocations of the promoted scatter with checks enabled: a
  // conditional plan would inspect once and hit the cache twice; the
  // promoted plan must do neither and still run parallel each time.
  Harness R(PrefixSumScatterRep);
  expectPromoted(R, "scat");
  double Want = R.serialChecksum();

  Memory M(*R.P);
  ExecStats Stats = R.runChecked(&M);
  EXPECT_EQ(M.checksumExcluding(deadPrivateIds(R.Plan)), Want);
  EXPECT_EQ(Stats.InspectionsRun, 0u)
      << "a statically proven loop may not consult the inspector";
  EXPECT_EQ(Stats.InspectionsCached, 0u)
      << "nor populate or read the verdict cache";
  EXPECT_GE(Stats.ParallelLoopRuns, 3u);
  EXPECT_GE(Stats.DispatchStatic, 3u)
      << "every promoted invocation dispatches on the static tier";
  EXPECT_EQ(Stats.DispatchConditional, 0u);
}

TEST(RecurrenceCache, DispatchTiersPartitionInvocations) {
  // The duplicate-index kernel: init dispatches statically parallel, the
  // scatter is inspected (and fails) — a conditional-tier dispatch. A plain
  // serial run of the same program must count only serial-tier dispatches.
  Harness R(DuplicateScatter);
  ExecStats Checked = R.runChecked();
  EXPECT_GE(Checked.DispatchConditional, 1u)
      << "an inspector-decided dispatch counts as conditional even when "
         "the verdict is serial";
  EXPECT_GE(Checked.DispatchStatic, 1u);

  Interpreter I(*R.P);
  ExecStats Serial;
  I.run(ExecOptions{}, &Serial);
  EXPECT_EQ(Serial.DispatchStatic, 0u);
  EXPECT_EQ(Serial.DispatchConditional, 0u);
  EXPECT_GE(Serial.DispatchSerial, 2u);
}

//===----------------------------------------------------------------------===//
// Auditor: independent re-derivation, forged facts, strict demotion
//===----------------------------------------------------------------------===//

TEST(RecurrenceAudit, PromotionsCertifiedFromScratch) {
  for (const char *Source : {FusedCcs, PrefixSumScatter}) {
    Harness R(Source);
    const char *Label = Source == FusedCcs ? "scale" : "scat";
    PlanAuditor Auditor(*R.P);
    AuditResult A = Auditor.audit(R.Plan);
    const LoopAudit *LA = A.auditFor(Label);
    ASSERT_NE(LA, nullptr) << Label;
    EXPECT_EQ(LA->Verdict, AuditVerdict::Certified)
        << Label << ":\n" << LA->str();
    EXPECT_FALSE(LA->Conditional)
        << "a promoted plan must certify unconditionally — the auditor "
           "re-derives the recurrence facts, it does not trust them";
  }
}

TEST(RecurrenceAudit, ForgedFactCaughtByBothOracles) {
  // Promote the duplicate-index kernel's conditional plan as if the
  // recurrence solver had proven its index array injective. The auditor
  // must refuse the certificate, and the race checker must observe the
  // concrete write-write conflicts the duplicated indices produce.
  Harness R(DuplicateScatter);
  ASSERT_TRUE(applyMutation(
      R.Plan, *R.P, {MutationKind::ForgeRecurrenceFact, "scat", ""}));

  const DoStmt *L = R.P->findLoop("scat");
  ASSERT_NE(L, nullptr);
  const xform::LoopPlan *Forged = R.Plan.planFor(L);
  ASSERT_NE(Forged, nullptr)
      << "the mutation must leave an unconditionally parallel plan behind";
  EXPECT_TRUE(Forged->RecurrencePromoted);
  EXPECT_FALSE(Forged->FallbackChecks.empty());

  PlanAuditor Auditor(*R.P);
  AuditResult A = Auditor.audit(R.Plan);
  const LoopAudit *LA = A.auditFor("scat");
  ASSERT_NE(LA, nullptr);
  EXPECT_NE(LA->Verdict, AuditVerdict::Certified)
      << "auditor accepted a forged recurrence fact:\n" << LA->str();

  Interpreter I(*R.P);
  ExecOptions Opts;
  Opts.Plans = &R.Plan;
  Opts.RaceCheck = true;
  ExecStats Stats;
  I.run(Opts, &Stats);
  EXPECT_GT(Stats.RacesFound, 0u)
      << "duplicate indices must surface as dynamic conflicts";
}

TEST(RecurrenceAudit, StrictDemotionRestoresConditionalDispatch) {
  // A forged promotion of the permutation kernel, demoted under strict
  // audit: the plan must fall back to exactly the conditional dispatch it
  // replaced — and then run correctly with 1 inspection + 2 cache hits
  // across its three invocations.
  Harness R(PermutationScatterRep);
  double Want = R.serialChecksum();
  ASSERT_TRUE(applyMutation(
      R.Plan, *R.P, {MutationKind::ForgeRecurrenceFact, "scat", ""}));

  PlanAuditor Auditor(*R.P);
  AuditResult A = Auditor.audit(R.Plan);
  const LoopAudit *LA = A.auditFor("scat");
  ASSERT_NE(LA, nullptr);
  ASSERT_NE(LA->Verdict, AuditVerdict::Certified);

  unsigned Demoted = recordAudit(R.Plan, A, AuditMode::Strict);
  EXPECT_EQ(Demoted, 1u);

  const DoStmt *L = R.P->findLoop("scat");
  ASSERT_NE(L, nullptr);
  EXPECT_EQ(R.Plan.planFor(L), nullptr)
      << "the forged unconditional plan must be gone";
  const xform::LoopPlan *Cond = R.Plan.conditionalPlanFor(L);
  ASSERT_NE(Cond, nullptr)
      << "demotion must restore conditional dispatch, not serialize";
  bool SawInjective = false;
  for (const RuntimeCheck &C : Cond->RuntimeChecks)
    if (C.Kind == RuntimeCheckKind::InjectiveOnRange) {
      SawInjective = true;
      ASSERT_NE(C.Index, nullptr);
      EXPECT_EQ(C.Index->name(), "ind");
    }
  EXPECT_TRUE(SawInjective);
  const xform::LoopReport *Rep = R.Plan.reportFor("scat");
  ASSERT_NE(Rep, nullptr);
  EXPECT_FALSE(Rep->Parallel);
  EXPECT_FALSE(Rep->RecurrencePromoted);
  EXPECT_TRUE(Rep->RuntimeConditional);

  Memory M(*R.P);
  ExecStats Stats = R.runChecked(&M);
  EXPECT_EQ(M.checksumExcluding(deadPrivateIds(R.Plan)), Want);
  EXPECT_EQ(Stats.InspectionsRun, 1u);
  EXPECT_EQ(Stats.InspectionsCached, 2u);
  EXPECT_EQ(Stats.RuntimeCheckFails, 0u);
}

//===----------------------------------------------------------------------===//
// Execution: bit-identical across schedules and thread counts
//===----------------------------------------------------------------------===//

TEST(RecurrenceExec, PromotedLoopsBitIdenticalAcrossSchedulesAndThreads) {
  for (const char *Source : {FusedCcs, PrefixSumScatter}) {
    Harness R(Source);
    double Want = R.serialChecksum();
    std::set<unsigned> Dead = deadPrivateIds(R.Plan);

    for (Schedule S : AllSchedules)
      for (unsigned T : ThreadCounts) {
        Memory M(*R.P);
        ExecStats Stats = R.runChecked(&M, T, S);
        EXPECT_EQ(M.checksumExcluding(Dead), Want)
            << "schedule " << scheduleName(S) << ", T=" << T;
        EXPECT_EQ(Stats.InspectionsRun, 0u);
        EXPECT_EQ(Stats.RuntimeCheckFails, 0u);
      }
  }
}

//===----------------------------------------------------------------------===//
// Stats counters
//===----------------------------------------------------------------------===//

TEST(RecurrenceStats, CountersTrackDerivationConsumptionAndPromotion) {
  stat::resetAll();
  Harness R(PrefixSumScatter);
  ASSERT_NE(stat::find("recurrence_facts_derived"), nullptr);
  EXPECT_GT(stat::find("recurrence_facts_derived")->value(), 0u);
  EXPECT_GT(stat::find("recurrence_facts_consumed")->value(), 0u);
  EXPECT_GE(stat::find("recurrence_loops_promoted")->value(), 1u);
}

} // namespace
