//===- tests/test_deptest.cpp - Dependence test unit + property tests -----===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "cfg/Hcg.h"
#include "deptest/DependenceTest.h"

#include <set>

using namespace iaa;
using namespace iaa::deptest;
using namespace iaa::mf;
using iaa::test::parseOrDie;

namespace {

struct DepFixture {
  std::unique_ptr<Program> P;
  std::unique_ptr<analysis::SymbolUses> Uses;
  std::unique_ptr<cfg::Hcg> G;
  std::unique_ptr<DependenceTester> Tester;

  explicit DepFixture(const std::string &Source, bool EnableIAA = true) {
    P = iaa::test::parseOrDie(Source);
    Uses = std::make_unique<analysis::SymbolUses>(*P);
    G = std::make_unique<cfg::Hcg>(*P);
    Tester = std::make_unique<DependenceTester>(*G, *Uses, EnableIAA);
  }

  LoopDepResult test(const std::string &Label) {
    DoStmt *L = P->findLoop(Label);
    EXPECT_NE(L, nullptr);
    return Tester->testLoop(L, {});
  }
};

TEST(DepTest, DistinctDimension1D) {
  DepFixture F(R"(program t
    integer i, n
    real x(100)
    n = 100
    lp: do i = 1, n
      x(i) = x(i) + 1.0
    end do
  end)");
  LoopDepResult R = F.test("lp");
  EXPECT_TRUE(R.Independent);
  ASSERT_EQ(R.Arrays.size(), 1u);
  EXPECT_EQ(R.Arrays[0].Test, TestKind::DistinctDim);
}

TEST(DepTest, DistinctDimension2D) {
  DepFixture F(R"(program t
    integer i, j, n
    real z(100, 50)
    n = 100
    lp: do i = 1, n
      do j = 1, 50
        z(i, j) = z(i, j) * 2.0
      end do
    end do
  end)");
  EXPECT_TRUE(F.test("lp").Independent);
}

TEST(DepTest, ShiftedWriteIsDependent) {
  DepFixture F(R"(program t
    integer i, n
    real x(101)
    n = 100
    lp: do i = 1, n
      x(i + 1) = x(i) + 1.0
    end do
  end)");
  EXPECT_FALSE(F.test("lp").Independent);
}

TEST(DepTest, RangeTestBlockedAccess) {
  // Block-distributed access x(4i+j), j in [0,3]: disjoint blocks.
  DepFixture F(R"(program t
    integer i, j, n
    real x(500)
    n = 100
    lp: do i = 1, n
      do j = 0, 3
        x(4 * i + j) = x(4 * i + j) + 1.0
      end do
    end do
  end)");
  LoopDepResult R = F.test("lp");
  EXPECT_TRUE(R.Independent);
  ASSERT_EQ(R.Arrays.size(), 1u);
  EXPECT_EQ(R.Arrays[0].Test, TestKind::RangeTest);
}

TEST(DepTest, OverlappingBlocksDependent) {
  // x(4i+j), j in [0,4]: block i touches the first cell of block i+1.
  DepFixture F(R"(program t
    integer i, j, n
    real x(500)
    n = 100
    lp: do i = 1, n
      do j = 0, 4
        x(4 * i + j) = x(4 * i + j) + 1.0
      end do
    end do
  end)");
  EXPECT_FALSE(F.test("lp").Independent);
}

TEST(DepTest, ReadOnlyArraysIgnored) {
  DepFixture F(R"(program t
    integer i, n
    real x(100), y(100)
    n = 100
    lp: do i = 1, n
      x(i) = y(mod(i * 7, 90) + 1)
    end do
  end)");
  LoopDepResult R = F.test("lp");
  EXPECT_TRUE(R.Independent);
  for (const auto &O : R.Arrays)
    EXPECT_NE(O.Array->name(), "y");
}

TEST(DepTest, OffsetLengthDisabledWithoutIAA) {
  const char *Src = R"(program t
    integer i, j, n, t
    integer off(101), len(100)
    real x(2000), tot
    n = 100
    do i = 1, n
      len(i) = mod(i * 3, 7) + 1
    end do
    off(1) = 1
    do i = 1, n
      off(i + 1) = off(i) + len(i)
    end do
    lp: do i = 1, n
      do j = 1, len(i)
        x(off(i) + j - 1) = x(off(i) + j - 1) + 1.0
      end do
    end do
    tot = x(off(3))
  end)";
  DepFixture With(Src, /*EnableIAA=*/true);
  EXPECT_TRUE(With.test("lp").Independent);
  DepFixture Without(Src, /*EnableIAA=*/false);
  EXPECT_FALSE(Without.test("lp").Independent);
}

TEST(DepTest, NegativeDistanceDefeatsOffsetLength) {
  // The distance array may be negative: segments can overlap.
  DepFixture F(R"(program t
    integer i, j, n, t
    integer off(101), len(100)
    real x(2000), tot
    n = 100
    do i = 1, n
      len(i) = mod(i * 3, 7) - 3
    end do
    off(1) = 500
    do i = 1, n
      off(i + 1) = off(i) + len(i)
    end do
    lp: do i = 1, n
      do j = 1, 2
        x(off(i) + j - 1) = x(off(i) + j - 1) + 1.0
      end do
    end do
    tot = x(off(3))
  end)");
  EXPECT_FALSE(F.test("lp").Independent);
}

TEST(DepTest, ScalarSubscriptWrittenInBodyFails) {
  DepFixture F(R"(program t
    integer i, n, p
    real x(200)
    n = 100
    lp: do i = 1, n
      p = mod(i * 17, 100) + 1
      x(p) = x(p) + 1.0
    end do
  end)");
  // p is irregular and possibly colliding across iterations.
  EXPECT_FALSE(F.test("lp").Independent);
}

TEST(DepTest, InjectiveSubscriptIndependent) {
  DepFixture F(R"(program t
    integer k, n, i, q, p
    real x(500), y(500)
    integer ind(500)
    n = 400
    p = 400
    q = 0
    do i = 1, p
      if (x(i) > 0) then
        q = q + 1
        ind(q) = i
      end if
    end do
    lp: do i = 1, q
      y(ind(i)) = y(ind(i)) + 1.0
    end do
  end)");
  LoopDepResult R = F.test("lp");
  EXPECT_TRUE(R.Independent);
  ASSERT_EQ(R.Arrays.size(), 1u);
  EXPECT_EQ(R.Arrays[0].Test, TestKind::Injective);
}

TEST(DepTest, NonInjectiveIndexArrayDependent) {
  DepFixture F(R"(program t
    integer i, n
    real y(500)
    integer ind(500)
    n = 400
    do i = 1, n
      ind(i) = mod(i, 10) + 1
    end do
    lp: do i = 1, n
      y(ind(i)) = y(ind(i)) + 1.0
    end do
  end)");
  EXPECT_FALSE(F.test("lp").Independent);
}

TEST(DepTest, ArrayTouchedByCallOpaque) {
  DepFixture F(R"(program t
    integer i, n
    real x(100)
    procedure poke
      x(1) = x(1) + 1.0
    end
    n = 100
    lp: do i = 1, n
      call poke
    end do
  end)");
  EXPECT_FALSE(F.test("lp").Independent);
}

TEST(DepTest, ReadOnlyInsideWhileIsFine) {
  DepFixture F(R"(program t
    integer i, n, p
    real x(100), m(100)
    n = 50
    lp: do i = 1, n
      p = i
      while (p > 0)
        x(i) = x(i) + m(p)
        p = p - 10
      end while
    end do
  end)");
  // m is read-only; x is written only at subscript i (outside and inside
  // the while it is x(i)) — but writes inside a while are opaque, so the
  // loop must be reported dependent on x.
  EXPECT_FALSE(F.test("lp").Independent);
}

//===----------------------------------------------------------------------===//
// Property sweep: affine single-statement loops validated by brute force
//===----------------------------------------------------------------------===//

/// do i = 1, N: x(a*i + b) = x(c*i + d) — the tester's verdict must agree
/// with a brute-force conflict check whenever the tester says independent.
class AffinePairSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(AffinePairSweep, NoFalseIndependence) {
  auto [A, B, C, D] = GetParam();
  const int N = 12;
  // Keep subscripts in bounds [1, 400].
  auto Sub = [&](int Coef, int Off, int I) { return Coef * I + Off; };
  int MinSub = 1000, MaxSub = -1000;
  for (int I = 1; I <= N; ++I) {
    MinSub = std::min({MinSub, Sub(A, B, I), Sub(C, D, I)});
    MaxSub = std::max({MaxSub, Sub(A, B, I), Sub(C, D, I)});
  }
  if (MinSub < 1 || MaxSub > 400)
    GTEST_SKIP() << "subscripts out of the test harness bounds";

  std::string Src = "program t\ninteger i, n\nreal x(400), tot\nn = " +
                    std::to_string(N) + "\nlp: do i = 1, n\n  x(" +
                    std::to_string(A) + " * i + " + std::to_string(B) +
                    ") = x(" + std::to_string(C) + " * i + " +
                    std::to_string(D) + ") + 1.0\nend do\ntot = x(7)\nend";
  DepFixture F(Src);
  LoopDepResult R = F.test("lp");

  // Brute force: a loop-carried dependence exists when iteration I1 writes
  // what a different iteration I2 reads or writes.
  bool Carried = false;
  for (int I1 = 1; I1 <= N; ++I1)
    for (int I2 = 1; I2 <= N; ++I2) {
      if (I1 == I2)
        continue;
      if (Sub(A, B, I1) == Sub(C, D, I2) || Sub(A, B, I1) == Sub(A, B, I2))
        Carried = true;
    }

  if (R.Independent)
    EXPECT_FALSE(Carried) << "tester claimed independence, but iterations "
                             "conflict: "
                          << Src;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AffinePairSweep,
    ::testing::Combine(::testing::Values(1, 2, 3),   // write coefficient
                       ::testing::Values(0, 1, 5),   // write offset
                       ::testing::Values(0, 1, 2, 3),// read coefficient
                       ::testing::Values(0, 2, 7))); // read offset

} // namespace
