//===- tests/test_singleindex.cpp - Sec. 2 analysis tests -----------------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "analysis/GatherLoop.h"
#include "analysis/SingleIndex.h"

using namespace iaa;
using namespace iaa::analysis;
using namespace iaa::mf;
using iaa::test::parseOrDie;

namespace {

/// Returns the body of the first loop labeled \p Label.
const StmtList &loopBody(const mf::Program &P, const std::string &Label) {
  DoStmt *L = P.findLoop(Label);
  EXPECT_NE(L, nullptr) << "no loop labeled " << Label;
  return L->body();
}

TEST(SingleIndex, Fig1aConsecutivelyWritten) {
  // Fig. 1(a) of the paper: inside do k, the while loop writes x(p) at
  // monotonically increasing p. The region is the while-loop body's
  // enclosing sequence (we analyze the inner region between the reset of p
  // and the reads) — here the whole do-k body.
  auto P = parseOrDie(R"(program fig1a
    integer n, m, k, i, j, p
    real x(1000), y(1000), dz(100, 1000)
    integer link(1000, 100), cond(100, 1000)
    n = 10
    m = 5
    dok: do k = 1, n
      p = 0
      i = link(1, k)
      while (i /= 0)
        p = p + 1
        x(p) = y(i)
        if (cond(k, i) > 0) then
          p = p + 1
          x(p) = y(i)
        end if
        i = link(i, k)
      end while
      do j = 1, p
        dz(k, j) = x(j)
      end do
    end do
  end)");
  SymbolUses Uses(*P);
  // Analyze the while-loop body region: x is single-indexed by p there.
  auto *K = P->findLoop("dok");
  auto *Wh = dyn_cast<WhileStmt>(K->body()[2]);
  ASSERT_NE(Wh, nullptr);
  SingleIndexAnalysis SIA(Wh->body(), Uses);
  SingleIndexResult R = SIA.classify(P->findSymbol("x"));
  EXPECT_TRUE(R.IsSingleIndexed);
  EXPECT_EQ(R.IndexVar, P->findSymbol("p"));
  EXPECT_TRUE(R.ConsecutivelyWritten);
  EXPECT_FALSE(R.StackAccess);
}

TEST(SingleIndex, IncrementWithoutWriteBreaksCW) {
  // Two increments with no intervening write leave a hole.
  auto P = parseOrDie(R"(program holes
    integer i, n, p
    real x(100), y(100)
    n = 10
    p = 0
    lp: do i = 1, n
      p = p + 1
      if (y(i) > 0) then
        p = p + 1
      end if
      x(p) = y(i)
    end do
  end)");
  SymbolUses Uses(*P);
  SingleIndexAnalysis SIA(loopBody(*P, "lp"), Uses);
  SingleIndexResult R = SIA.classify(P->findSymbol("x"));
  EXPECT_TRUE(R.IsSingleIndexed);
  EXPECT_FALSE(R.ConsecutivelyWritten);
}

TEST(SingleIndex, NonUnitIncrementBreaksCW) {
  auto P = parseOrDie(R"(program stride
    integer i, n, p
    real x(100), y(100)
    n = 10
    p = 0
    lp: do i = 1, n
      p = p + 2
      x(p) = y(i)
    end do
  end)");
  SymbolUses Uses(*P);
  SingleIndexAnalysis SIA(loopBody(*P, "lp"), Uses);
  SingleIndexResult R = SIA.classify(P->findSymbol("x"));
  EXPECT_TRUE(R.IsSingleIndexed);
  EXPECT_FALSE(R.ConsecutivelyWritten);
}

TEST(SingleIndex, MixedSubscriptsNotSingleIndexed) {
  auto P = parseOrDie(R"(program mixed
    integer i, n, p, q
    real x(100), y(100)
    n = 10
    lp: do i = 1, n
      x(p) = y(i)
      x(q) = y(i)
    end do
  end)");
  SymbolUses Uses(*P);
  SingleIndexAnalysis SIA(loopBody(*P, "lp"), Uses);
  SingleIndexResult R = SIA.classify(P->findSymbol("x"));
  EXPECT_FALSE(R.IsSingleIndexed);
}

TEST(SingleIndex, AffineSubscriptNotSingleIndexed) {
  auto P = parseOrDie(R"(program affine
    integer i, n, p
    real x(100), y(100)
    n = 10
    lp: do i = 1, n
      x(p + 1) = y(i)
    end do
  end)");
  SymbolUses Uses(*P);
  SingleIndexAnalysis SIA(loopBody(*P, "lp"), Uses);
  EXPECT_FALSE(SIA.classify(P->findSymbol("x")).IsSingleIndexed);
}

TEST(SingleIndex, Fig1bStackAccess) {
  // Fig. 1(b): t() used as a stack with pointer p reset at the top of each
  // outer iteration.
  auto P = parseOrDie(R"(program fig1b
    integer n, m, i, j, p
    real t(1000), work(1000)
    n = 10
    m = 20
    outer: do i = 1, n
      p = 0
      p = p + 1
      t(p) = 1.5
      inner: do j = 1, m
        p = p + 1
        t(p) = work(j)
        if (work(j) > 0) then
          if (p >= 1) then
            work(j) = t(p)
            p = p - 1
          end if
        end if
      end do
    end do
  end)");
  SymbolUses Uses(*P);
  SingleIndexAnalysis SIA(loopBody(*P, "outer"), Uses);
  SingleIndexResult R = SIA.classify(P->findSymbol("t"));
  EXPECT_TRUE(R.IsSingleIndexed);
  EXPECT_TRUE(R.StackAccess) << "push/pop discipline should be recognized";
  ASSERT_NE(R.StackBottom, nullptr);
  EXPECT_FALSE(R.ConsecutivelyWritten); // resets and decrements present
}

TEST(SingleIndex, PopBeforeAnyPushStillStack) {
  // Reads guarded so that the Table 1 order read->dec holds; a read followed
  // by another read without a dec must fail.
  auto P = parseOrDie(R"(program doubleread
    integer i, n, p
    real t(100), w(100)
    n = 5
    outer: do i = 1, n
      p = 0
      p = p + 1
      t(p) = 1.0
      w(i) = t(p)
      w(i) = t(p)
      p = p - 1
    end do
  end)");
  SymbolUses Uses(*P);
  SingleIndexAnalysis SIA(loopBody(*P, "outer"), Uses);
  SingleIndexResult R = SIA.classify(P->findSymbol("t"));
  EXPECT_TRUE(R.IsSingleIndexed);
  EXPECT_FALSE(R.StackAccess) << "two pops of the same top violate Table 1";
}

TEST(SingleIndex, DecrementWithoutReadBreaksStack) {
  auto P = parseOrDie(R"(program badstack
    integer i, n, p
    real t(100)
    n = 5
    outer: do i = 1, n
      p = 0
      p = p + 1
      t(p) = 1.0
      p = p - 1
      p = p - 1
    end do
  end)");
  SymbolUses Uses(*P);
  SingleIndexAnalysis SIA(loopBody(*P, "outer"), Uses);
  SingleIndexResult R = SIA.classify(P->findSymbol("t"));
  EXPECT_FALSE(R.StackAccess) << "dec -> dec violates Table 1";
}

TEST(SingleIndex, MissingResetBreaksStack) {
  auto P = parseOrDie(R"(program noreset
    integer i, n, p
    real t(100), w(100)
    n = 5
    outer: do i = 1, n
      p = p + 1
      t(p) = 1.0
      w(i) = t(p)
      p = p - 1
    end do
  end)");
  SymbolUses Uses(*P);
  SingleIndexAnalysis SIA(loopBody(*P, "outer"), Uses);
  SingleIndexResult R = SIA.classify(P->findSymbol("t"));
  EXPECT_FALSE(R.StackAccess);
}

TEST(SingleIndex, CallTouchingArraySpoils) {
  auto P = parseOrDie(R"(program spoiled
    integer i, n, p
    real x(100), y(100)
    procedure helper
      x(1) = 0
    end
    n = 10
    p = 0
    lp: do i = 1, n
      p = p + 1
      x(p) = y(i)
      call helper
    end do
  end)");
  SymbolUses Uses(*P);
  SingleIndexAnalysis SIA(loopBody(*P, "lp"), Uses);
  EXPECT_FALSE(SIA.classify(P->findSymbol("x")).IsSingleIndexed);
}

TEST(SingleIndex, HarmlessCallDoesNotSpoil) {
  auto P = parseOrDie(R"(program fine
    integer i, n, p, other
    real x(100), y(100)
    procedure helper
      other = other + 1
    end
    n = 10
    p = 0
    lp: do i = 1, n
      p = p + 1
      x(p) = y(i)
      call helper
    end do
  end)");
  SymbolUses Uses(*P);
  SingleIndexAnalysis SIA(loopBody(*P, "lp"), Uses);
  SingleIndexResult R = SIA.classify(P->findSymbol("x"));
  EXPECT_TRUE(R.IsSingleIndexed);
  EXPECT_TRUE(R.ConsecutivelyWritten);
}

TEST(SingleIndex, EnumeratesSingleIndexedArrays) {
  auto P = parseOrDie(R"(program multi
    integer i, n, p, q
    real a(100), b(100), c(100)
    n = 10
    p = 0
    q = 0
    lp: do i = 1, n
      p = p + 1
      a(p) = 1.0
      q = q + 1
      b(q) = 2.0
      c(i) = 3.0
    end do
  end)");
  SymbolUses Uses(*P);
  SingleIndexAnalysis SIA(loopBody(*P, "lp"), Uses);
  std::vector<const Symbol *> Arrays = SIA.singleIndexedArrays();
  // a and b are single-indexed; c is subscripted by the loop index i, which
  // is also "a single variable" — the classification is per-definition
  // correct, but c's var is the loop index.
  bool HasA = false, HasB = false;
  for (const Symbol *S : Arrays) {
    HasA |= S == P->findSymbol("a");
    HasB |= S == P->findSymbol("b");
  }
  EXPECT_TRUE(HasA);
  EXPECT_TRUE(HasB);
}

//===----------------------------------------------------------------------===//
// Gather loops (Sec. 4, Fig. 14)
//===----------------------------------------------------------------------===//

TEST(GatherLoop, Fig14Recognized) {
  auto P = parseOrDie(R"(program fig14
    integer k, n, i, j, q, p, jj
    real x(1000), y(1000), z(100, 1000)
    integer ind(1000)
    n = 10
    p = 100
    outer: do k = 1, n
      q = 0
      gath: do i = 1, p
        if (x(i) > 0) then
          q = q + 1
          ind(q) = i
        end if
      end do
      use: do j = 1, q
        jj = ind(j)
        z(k, jj) = x(jj) * y(jj)
      end do
    end do
  end)");
  SymbolUses Uses(*P);
  GatherLoopInfo G =
      analyzeGatherLoop(P->findLoop("gath"), P->findSymbol("ind"), Uses);
  EXPECT_TRUE(G.IsGatherLoop);
  EXPECT_EQ(G.Counter, P->findSymbol("q"));
  EXPECT_TRUE(G.Injective);
  ASSERT_TRUE(G.ValueBounds.Lo.isFinite());
  EXPECT_TRUE(G.ValueBounds.Lo.E.equals(sym::SymExpr::constant(1)));
  EXPECT_TRUE(G.ValueBounds.Hi.E.equals(
      sym::SymExpr::var(P->findSymbol("p"))));
}

TEST(GatherLoop, NonIndexRhsRejected) {
  auto P = parseOrDie(R"(program notgather
    integer i, p, q
    real x(1000)
    integer ind(1000)
    p = 100
    q = 0
    gath: do i = 1, p
      if (x(i) > 0) then
        q = q + 1
        ind(q) = i + 1
      end if
    end do
  end)");
  SymbolUses Uses(*P);
  GatherLoopInfo G =
      analyzeGatherLoop(P->findLoop("gath"), P->findSymbol("ind"), Uses);
  EXPECT_FALSE(G.IsGatherLoop) << "RHS i+1 could collide with a later i";
}

TEST(GatherLoop, TwoStoresPerIterationRejected) {
  auto P = parseOrDie(R"(program doubled
    integer i, p, q
    real x(1000)
    integer ind(1000)
    p = 100
    q = 0
    gath: do i = 1, p
      if (x(i) > 0) then
        q = q + 1
        ind(q) = i
        q = q + 1
        ind(q) = i
      end if
    end do
  end)");
  SymbolUses Uses(*P);
  GatherLoopInfo G =
      analyzeGatherLoop(P->findLoop("gath"), P->findSymbol("ind"), Uses);
  EXPECT_FALSE(G.IsGatherLoop) << "condition (5): duplicate values gathered";
}

TEST(GatherLoop, UnconditionalGatherAccepted) {
  auto P = parseOrDie(R"(program uncond
    integer i, p, q
    integer ind(1000)
    p = 100
    q = 0
    gath: do i = 1, p
      q = q + 1
      ind(q) = i
    end do
  end)");
  SymbolUses Uses(*P);
  GatherLoopInfo G =
      analyzeGatherLoop(P->findLoop("gath"), P->findSymbol("ind"), Uses);
  EXPECT_TRUE(G.IsGatherLoop);
}

TEST(GatherLoop, ReadOfIndexArrayInsideRejected) {
  auto P = parseOrDie(R"(program readinside
    integer i, p, q, t
    real x(1000)
    integer ind(1000)
    p = 100
    q = 0
    gath: do i = 1, p
      if (x(i) > 0) then
        q = q + 1
        ind(q) = i
        t = ind(q)
      end if
    end do
  end)");
  SymbolUses Uses(*P);
  GatherLoopInfo G =
      analyzeGatherLoop(P->findLoop("gath"), P->findSymbol("ind"), Uses);
  EXPECT_FALSE(G.IsGatherLoop);
}

} // namespace
