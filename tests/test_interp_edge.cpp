//===- tests/test_interp_edge.cpp - Interpreter edge cases ----------------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "benchprogs/Benchmarks.h"
#include "interp/Interpreter.h"
#include "xform/Parallelizer.h"

using namespace iaa;
using namespace iaa::interp;
using namespace iaa::mf;
using iaa::test::parseOrDie;

namespace {

Memory runSerial(const Program &P, ExecStats *Stats = nullptr) {
  Interpreter I(P);
  return I.run(ExecOptions{}, Stats);
}

TEST(InterpEdge, NegativeStepLoop) {
  auto P = parseOrDie(R"(program t
    integer i, s
    s = 0
    do i = 10, 1, -2
      s = s + i
    end do
  end)");
  Memory M = runSerial(*P);
  EXPECT_EQ(M.intScalar(P->findSymbol("s")), 10 + 8 + 6 + 4 + 2);
}

TEST(InterpEdge, NestedProcedureCalls) {
  auto P = parseOrDie(R"(program t
    integer a
    procedure inner
      a = a * 2
    end
    procedure outer
      call inner
      call inner
    end
    a = 3
    call outer
  end)");
  Memory M = runSerial(*P);
  EXPECT_EQ(M.intScalar(P->findSymbol("a")), 12);
}

TEST(InterpEdge, MixedIntRealArithmetic) {
  auto P = parseOrDie(R"(program t
    integer i
    real r
    i = 3
    r = i / 2 + 0.5
  end)");
  Memory M = runSerial(*P);
  // i/2 is integer division (1), then promoted: 1 + 0.5.
  EXPECT_DOUBLE_EQ(M.realScalar(P->findSymbol("r")), 1.5);
}

TEST(InterpEdge, RealToIntAssignmentTruncates) {
  auto P = parseOrDie(R"(program t
    integer i
    real r
    r = 3.9
    i = r
  end)");
  Memory M = runSerial(*P);
  EXPECT_EQ(M.intScalar(P->findSymbol("i")), 3);
}

TEST(InterpEdge, FortranModSemantics) {
  auto P = parseOrDie(R"(program t
    integer a, b
    a = mod(0 - 7, 3)
    b = mod(7, 3)
  end)");
  Memory M = runSerial(*P);
  EXPECT_EQ(M.intScalar(P->findSymbol("a")), -1); // Sign of the numerator.
  EXPECT_EQ(M.intScalar(P->findSymbol("b")), 1);
}

TEST(InterpEdge, LoopBoundsEvaluatedOnce) {
  auto P = parseOrDie(R"(program t
    integer i, n, c
    n = 3
    c = 0
    do i = 1, n
      n = 100
      c = c + 1
    end do
  end)");
  Memory M = runSerial(*P);
  EXPECT_EQ(M.intScalar(P->findSymbol("c")), 3)
      << "Fortran do bounds are captured at loop entry";
}

TEST(InterpEdge, LabeledLoopTiming) {
  auto P = parseOrDie(R"(program t
    integer i, n
    real x(1000)
    n = 1000
    hot: do i = 1, n
      x(i) = i * 0.5
    end do
  end)");
  ExecStats Stats;
  runSerial(*P, &Stats);
  ASSERT_TRUE(Stats.LoopSeconds.count("hot"));
  EXPECT_GE(Stats.LoopSeconds.at("hot"), 0.0);
  EXPECT_LE(Stats.LoopSeconds.at("hot"), Stats.TotalSeconds + 1e-3);
}

TEST(InterpEdge, SimulatedModeMatchesThreadedResults) {
  for (int Which = 0; Which < 5; ++Which) {
    auto All = benchprogs::allBenchmarks(0.03);
    auto P = parseOrDie(All[Which].Source);
    xform::PipelineResult Plan =
        xform::parallelize(*P, xform::PipelineMode::Full);
    Interpreter I(*P);
    std::set<unsigned> Dead = deadPrivateIds(Plan);

    ExecOptions Threaded;
    Threaded.Plans = &Plan;
    Threaded.Threads = 3;
    Memory A = I.run(Threaded);

    ExecOptions Sim = Threaded;
    Sim.Simulate = true;
    Memory B = I.run(Sim);

    EXPECT_DOUBLE_EQ(A.checksumExcluding(Dead), B.checksumExcluding(Dead))
        << All[Which].Name;
  }
}

TEST(InterpEdge, ReductionMergesAcrossChunks) {
  auto P = parseOrDie(R"(program t
    integer i, n
    real s
    real x(1000)
    n = 1000
    do i = 1, n
      x(i) = 1.0
    end do
    s = 5.0
    red: do i = 1, n
      s = s + x(i)
    end do
  end)");
  xform::PipelineResult Plan =
      xform::parallelize(*P, xform::PipelineMode::Full);
  ASSERT_TRUE(Plan.reportFor("red")->Parallel);
  Interpreter I(*P);
  ExecOptions Par;
  Par.Plans = &Plan;
  Par.Threads = 4;
  Memory M = I.run(Par);
  // The pre-loop value of s must be preserved: 5 + 1000.
  EXPECT_DOUBLE_EQ(M.realScalar(P->findSymbol("s")), 1005.0);
}

TEST(InterpEdge, LastValueSemanticsForPrivateScalars) {
  auto P = parseOrDie(R"(program t
    integer i, n, tmp
    integer out(100), final(2)
    n = 100
    lp: do i = 1, n
      tmp = i * 3
      out(i) = tmp
    end do
    final(1) = tmp
    final(2) = i
  end)");
  xform::PipelineResult Plan =
      xform::parallelize(*P, xform::PipelineMode::Full);
  ASSERT_TRUE(Plan.reportFor("lp")->Parallel);
  Interpreter I(*P);
  ExecOptions Par;
  Par.Plans = &Plan;
  Par.Threads = 4;
  Par.MinParallelWork = 0; // Force the fork even for this small loop.
  ExecStats Stats;
  Memory M = I.run(Par, &Stats);
  EXPECT_EQ(Stats.ParallelLoopRuns, 1u);
  const Buffer &Final = M.buffer(P->findSymbol("final"));
  EXPECT_EQ(Final.I[0], 300)
      << "tmp must hold the last iteration's value after the loop";
  EXPECT_EQ(Final.I[1], 101) << "the do index must be ub+1 after the loop";
}

TEST(InterpEdge, TinyTripLoopStaysSerialUnderGuard) {
  auto P = parseOrDie(R"(program t
    integer i, r, n
    real x(4)
    n = 4
    do r = 1, 100
      small: do i = 1, n
        x(i) = x(i) + 1.0
      end do
    end do
  end)");
  xform::PipelineResult Plan =
      xform::parallelize(*P, xform::PipelineMode::Full);
  ASSERT_TRUE(Plan.reportFor("small")->Parallel);
  Interpreter I(*P);
  ExecOptions Par;
  Par.Plans = &Plan;
  Par.Threads = 4; // Work estimate 4*1 < MinParallelWork.
  ExecStats Stats;
  I.run(Par, &Stats);
  EXPECT_EQ(Stats.ParallelLoopRuns, 0u);
  Par.MinParallelWork = 0;
  ExecStats Stats2;
  I.run(Par, &Stats2);
  EXPECT_EQ(Stats2.ParallelLoopRuns, 100u);
}

TEST(InterpEdge, ChunkCountCappedByIterations) {
  auto P = parseOrDie(R"(program t
    integer i, n, c
    integer x(3000)
    n = 3
    lp: do i = 1, n
      do c = 1, 1000
        x((i - 1) * 1000 + c) = i
      end do
    end do
  end)");
  xform::PipelineResult Plan =
      xform::parallelize(*P, xform::PipelineMode::Full);
  ASSERT_TRUE(Plan.reportFor("lp")->Parallel);
  Interpreter I(*P);
  ExecOptions Par;
  Par.Plans = &Plan;
  Par.Threads = 16; // More threads than iterations.
  Memory M = I.run(Par);
  const Buffer &B = M.buffer(P->findSymbol("x"));
  EXPECT_EQ(B.I[0], 1);
  EXPECT_EQ(B.I[2999], 3);
}

TEST(InterpEdge, BenchmarkSourcesAllParse) {
  for (double Scale : {0.05, 1.0})
    for (const auto &B : benchprogs::allBenchmarks(Scale)) {
      DiagnosticEngine Diags;
      auto P = mf::parseProgram(B.Source, Diags);
      EXPECT_NE(P, nullptr) << B.Name << ": " << Diags.str();
      EXPECT_GT(B.lineCount(), 20u);
    }
  DiagnosticEngine Diags;
  EXPECT_NE(mf::parseProgram(benchprogs::dyfesmTiny().Source, Diags),
            nullptr);
}

} // namespace
