//===- tests/test_json_locale.cpp - Locale-proof JSON numbers -------------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// JSON requires '.' as the decimal separator regardless of the process
/// locale. These tests flip LC_NUMERIC to a comma-decimal locale (de_DE)
/// and assert the emitters still write valid JSON and the parser still
/// reads it — i.e. a BENCH_*.json produced by a host that touched
/// setlocale() round-trips bit-exactly. Skipped when no comma-decimal
/// locale is installed.
///
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <gtest/gtest.h>

#include <clocale>
#include <string>
#include <vector>

using namespace iaa;

namespace {

/// Switches LC_NUMERIC to a comma-decimal locale for the test's lifetime
/// and restores the previous locale on destruction.
struct CommaLocale {
  std::string Saved;
  bool Active = false;

  CommaLocale() {
    if (const char *Prev = std::setlocale(LC_NUMERIC, nullptr))
      Saved = Prev;
    for (const char *Name : {"de_DE.UTF-8", "de_DE.utf8", "de_DE"}) {
      if (std::setlocale(LC_NUMERIC, Name)) {
        // Only count it if the locale really uses a comma.
        std::lconv *Lc = std::localeconv();
        if (Lc && Lc->decimal_point && Lc->decimal_point[0] == ',') {
          Active = true;
          return;
        }
      }
    }
    restore();
  }

  ~CommaLocale() { restore(); }

  void restore() {
    if (!Saved.empty())
      std::setlocale(LC_NUMERIC, Saved.c_str());
  }
};

TEST(JsonLocale, NumbersUseDotUnderCommaLocale) {
  CommaLocale L;
  if (!L.Active)
    GTEST_SKIP() << "no comma-decimal locale installed";

  // Values typical of BENCH_*.json payloads: seconds, speedups, fractions.
  for (double V : {0.5, 1.5, 3.14159265, 0.000123456, 7.25e-6, 1234.0625,
                   -2.75, 9.999999e8}) {
    std::string Text = json::num(V);
    EXPECT_EQ(Text.find(','), std::string::npos)
        << "comma leaked into JSON number: " << Text;
    std::optional<json::Value> Parsed = json::parse(Text);
    ASSERT_TRUE(Parsed.has_value()) << Text;
    ASSERT_TRUE(Parsed->isNumber());
    EXPECT_DOUBLE_EQ(Parsed->N, V) << Text;
  }
}

TEST(JsonLocale, BenchPayloadRoundTripsUnderCommaLocale) {
  CommaLocale L;
  if (!L.Active)
    GTEST_SKIP() << "no comma-decimal locale installed";

  // A BENCH_-shaped document written and re-read entirely under the
  // comma locale.
  std::string Doc = "{\"bench\": \"runtime_check\", \"results\": [";
  std::vector<double> Vals = {0.125, 3.5e-4, 2.0, 17.625, 0.333333333};
  for (size_t I = 0; I < Vals.size(); ++I) {
    if (I)
      Doc += ", ";
    Doc += "{\"seconds\": " + json::num(Vals[I]) + "}";
  }
  Doc += "]}";

  std::optional<json::Value> V = json::parse(Doc);
  ASSERT_TRUE(V.has_value()) << Doc;
  const json::Value *Results = V->member("results");
  ASSERT_NE(Results, nullptr);
  ASSERT_TRUE(Results->isArray());
  ASSERT_EQ(Results->Elems.size(), Vals.size());
  for (size_t I = 0; I < Vals.size(); ++I) {
    const json::Value *S = Results->Elems[I].member("seconds");
    ASSERT_NE(S, nullptr);
    EXPECT_DOUBLE_EQ(S->N, Vals[I]);
  }
}

TEST(JsonLocale, ParserRejectsCommaDecimals) {
  // Even under a comma locale the parser must not accept "1,5" as a
  // number — JSON does not, and the old strtod-based parser effectively
  // did on some platforms.
  CommaLocale L; // Active or not, the outcome must be identical.
  EXPECT_FALSE(json::parse("1,5").has_value());
  std::optional<json::Value> V = json::parse("[1, 5]");
  ASSERT_TRUE(V.has_value());
  ASSERT_TRUE(V->isArray());
  ASSERT_EQ(V->Elems.size(), 2u);
}

} // namespace
