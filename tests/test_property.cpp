//===- tests/test_property.cpp - Array property analysis tests ------------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "analysis/PropertySolver.h"
#include "cfg/Hcg.h"

using namespace iaa;
using namespace iaa::analysis;
using namespace iaa::mf;
using namespace iaa::sec;
using namespace iaa::sym;
using iaa::test::parseOrDie;

namespace {

/// The Fig. 3 program: offset() built from length() in a do loop, then used
/// to traverse the host array segment by segment (CCS format).
const char *Fig3Source = R"(program fig3
  integer n, i, j
  real data(10000)
  integer offset(101), length(100)
  n = 100
  do i = 1, n
    length(i) = mod(i * 7, 13) + 1
  end do
  offset(1) = 1
  d100: do i = 1, n
    offset(i + 1) = offset(i) + length(i)
  end do
  d200: do i = 1, n
    d300: do j = 1, length(i)
      data(offset(i) + j - 1) = 1.0
    end do
  end do
end)";

class PropertyTest : public ::testing::Test {
protected:
  void build(const char *Source) {
    P = parseOrDie(Source);
    Uses = std::make_unique<SymbolUses>(*P);
    G = std::make_unique<cfg::Hcg>(*P);
    Solver = std::make_unique<PropertySolver>(*G, *Uses);
  }

  std::unique_ptr<mf::Program> P;
  std::unique_ptr<SymbolUses> Uses;
  std::unique_ptr<cfg::Hcg> G;
  std::unique_ptr<PropertySolver> Solver;
};

TEST_F(PropertyTest, DiscoverDistanceFig3) {
  build(Fig3Source);
  const Symbol *Offset = P->findSymbol("offset");
  auto D = ClosedFormDistanceChecker::discoverDistance(*P, Offset);
  ASSERT_TRUE(D.has_value());
  // Distance at position pos is length(pos).
  SymExpr Expected = SymExpr::arrayElem(
      P->findSymbol("length"), {SymExpr::var(placeholderSymbol())});
  EXPECT_TRUE(D->equals(Expected)) << D->str();
}

TEST_F(PropertyTest, VerifyDistanceBeforeUseLoop) {
  build(Fig3Source);
  const Symbol *Offset = P->findSymbol("offset");
  const Symbol *N = P->findSymbol("n");
  auto D = ClosedFormDistanceChecker::discoverDistance(*P, Offset);
  ASSERT_TRUE(D.has_value());
  ClosedFormDistanceChecker C(Offset, *D, *Uses);
  // Query: distance available on [1 : n] just before the d200 loop.
  Section S = Section::interval(SymExpr::constant(1), SymExpr::var(N));
  PropertyResult R = Solver->verifyBefore(P->findLoop("d200"), C, S);
  EXPECT_TRUE(R.Verified) << "nodes visited: " << R.NodesVisited;
}

TEST_F(PropertyTest, DistanceKilledByInterveningWrite) {
  // A scatter write to offset between definition and use kills the query.
  build(R"(program killed
    integer n, i, t
    integer offset(101), length(100), perm(100)
    n = 100
    do i = 1, n
      length(i) = 3
    end do
    offset(1) = 1
    d100: do i = 1, n
      offset(i + 1) = offset(i) + length(i)
    end do
    offset(perm(3)) = 17
    d200: do i = 1, n
      t = offset(i)
    end do
  end)");
  const Symbol *Offset = P->findSymbol("offset");
  auto D = ClosedFormDistanceChecker::discoverDistance(*P, Offset);
  ASSERT_TRUE(D.has_value());
  ClosedFormDistanceChecker C(Offset, *D, *Uses);
  Section S =
      Section::interval(SymExpr::constant(1), SymExpr::var(P->findSymbol("n")));
  PropertyResult R = Solver->verifyBefore(P->findLoop("d200"), C, S);
  EXPECT_FALSE(R.Verified);
  EXPECT_TRUE(R.KilledEarly);
}

TEST_F(PropertyTest, DistanceKilledByWriteToDistanceArray) {
  build(R"(program killdist
    integer n, i, t
    integer offset(101), length(100)
    n = 100
    do i = 1, n
      length(i) = 3
    end do
    offset(1) = 1
    d100: do i = 1, n
      offset(i + 1) = offset(i) + length(i)
    end do
    length(5) = 99
    d200: do i = 1, n
      t = offset(i)
    end do
  end)");
  const Symbol *Offset = P->findSymbol("offset");
  auto D = ClosedFormDistanceChecker::discoverDistance(*P, Offset);
  ASSERT_TRUE(D.has_value());
  ClosedFormDistanceChecker C(Offset, *D, *Uses);
  Section S =
      Section::interval(SymExpr::constant(1), SymExpr::var(P->findSymbol("n")));
  PropertyResult R = Solver->verifyBefore(P->findLoop("d200"), C, S);
  EXPECT_FALSE(R.Verified);
}

TEST_F(PropertyTest, InterproceduralDistance) {
  // The index arrays are defined in one procedure and used in another
  // (Sec. 3.2.6): the query dives through the call at the definition side
  // and splits at the procedure head on the use side.
  build(R"(program interproc
    integer n, i, j, t
    integer offset(101), length(100)
    real data(10000)
    procedure setup
      do i = 1, n
        length(i) = mod(i * 3, 7) + 1
      end do
      offset(1) = 1
      do i = 1, n
        offset(i + 1) = offset(i) + length(i)
      end do
    end
    procedure compute
      d200: do i = 1, n
        do j = 1, length(i)
          data(offset(i) + j - 1) = 2.0
        end do
      end do
    end
    n = 100
    call setup
    call compute
  end)");
  const Symbol *Offset = P->findSymbol("offset");
  auto D = ClosedFormDistanceChecker::discoverDistance(*P, Offset);
  ASSERT_TRUE(D.has_value());
  ClosedFormDistanceChecker C(Offset, *D, *Uses);
  Section S =
      Section::interval(SymExpr::constant(1), SymExpr::var(P->findSymbol("n")));
  PropertyResult R = Solver->verifyBefore(P->findLoop("d200"), C, S);
  EXPECT_TRUE(R.Verified);
  EXPECT_GE(R.QueriesSplit, 1u) << "the query must split at 'compute's head";
}

TEST_F(PropertyTest, Fig8ClosedFormValue) {
  // Fig. 8: a(i) = i*(i-1)/2 defined directly; st1 generates [n:n].
  build(R"(program fig8
    integer n, i, t
    integer a(100)
    n = 100
    do i = 1, n
      a(i) = i * (i - 1) / 2
    end do
    use: do i = 1, n
      t = a(i)
    end do
  end)");
  const Symbol *A = P->findSymbol("a");
  // Property: a(pos) == pos*(pos-1)/2.
  SymExpr Pos = SymExpr::var(placeholderSymbol());
  SymExpr Val = SymExpr::div(SymExpr::mul(Pos, Pos - 1), SymExpr::constant(2));
  ClosedFormValueChecker C(A, Val, *Uses);
  Section S =
      Section::interval(SymExpr::constant(1), SymExpr::var(P->findSymbol("n")));
  PropertyResult R = Solver->verifyBefore(P->findLoop("use"), C, S);
  EXPECT_TRUE(R.Verified);
}

TEST_F(PropertyTest, Fig8MismatchKills) {
  build(R"(program fig8bad
    integer n, i, t
    integer a(100)
    n = 100
    do i = 1, n
      a(i) = i * (i + 1) / 2
    end do
    use: do i = 1, n
      t = a(i)
    end do
  end)");
  const Symbol *A = P->findSymbol("a");
  SymExpr Pos = SymExpr::var(placeholderSymbol());
  SymExpr Val = SymExpr::div(SymExpr::mul(Pos, Pos - 1), SymExpr::constant(2));
  ClosedFormValueChecker C(A, Val, *Uses);
  Section S =
      Section::interval(SymExpr::constant(1), SymExpr::var(P->findSymbol("n")));
  PropertyResult R = Solver->verifyBefore(P->findLoop("use"), C, S);
  EXPECT_FALSE(R.Verified);
}

TEST_F(PropertyTest, GatherGivesBoundsAndInjectivity) {
  build(R"(program gcfb
    integer k, n, i, j, q, p, jj, t
    real x(1000)
    integer ind(1000)
    n = 10
    p = 100
    outer: do k = 1, n
      q = 0
      gath: do i = 1, p
        if (x(i) > 0) then
          q = q + 1
          ind(q) = i
        end if
      end do
      use: do j = 1, q
        t = ind(j)
      end do
    end do
  end)");
  const Symbol *Ind = P->findSymbol("ind");
  const Symbol *Q = P->findSymbol("q");
  // Query at the read site: bounds of ind over [1:q].
  DoStmt *UseLoop = P->findLoop("use");
  const Stmt *ReadStmt = UseLoop->body()[0];
  Section S = Section::interval(SymExpr::constant(1), SymExpr::var(Q));

  ClosedFormBoundChecker CFB(Ind, *Uses);
  PropertyResult R1 = Solver->verifyBefore(ReadStmt, CFB, S);
  EXPECT_TRUE(R1.Verified);
  ASSERT_TRUE(CFB.valueBounds().Lo.isFinite());
  EXPECT_TRUE(CFB.valueBounds().Lo.E.equals(SymExpr::constant(1)));
  EXPECT_TRUE(
      CFB.valueBounds().Hi.E.equals(SymExpr::var(P->findSymbol("p"))));

  InjectivityChecker Inj(Ind, *Uses);
  PropertyResult R2 = Solver->verifyBefore(ReadStmt, Inj, S);
  EXPECT_TRUE(R2.Verified);
  EXPECT_EQ(Inj.genSites(), 1u);
}

TEST_F(PropertyTest, CounterRedefinitionKillsGatherQuery) {
  build(R"(program qredef
    integer k, n, i, j, q, p, jj, t
    real x(1000)
    integer ind(1000)
    n = 10
    p = 100
    outer: do k = 1, n
      q = 0
      gath: do i = 1, p
        if (x(i) > 0) then
          q = q + 1
          ind(q) = i
        end if
      end do
      q = q / 2
      use: do j = 1, q
        t = ind(j)
      end do
    end do
  end)");
  const Symbol *Ind = P->findSymbol("ind");
  const Symbol *Q = P->findSymbol("q");
  DoStmt *UseLoop = P->findLoop("use");
  Section S = Section::interval(SymExpr::constant(1), SymExpr::var(Q));
  ClosedFormBoundChecker CFB(Ind, *Uses);
  // The section [1:q] refers to a q that was redefined after the gather:
  // the stale rule must reject the verification.
  PropertyResult R = Solver->verifyBefore(UseLoop->body()[0], CFB, S);
  EXPECT_FALSE(R.Verified);
}

TEST_F(PropertyTest, DirectDefsGiveBounds) {
  // iblen(i) = mod(..., m) + 1 gives bounds [1 : m].
  build(R"(program direct
    integer n, i, t
    integer iblen(100)
    n = 100
    def: do i = 1, n
      iblen(i) = mod(i * 11, 8) + 1
    end do
    use: do i = 1, n
      t = iblen(i)
    end do
  end)");
  const Symbol *Iblen = P->findSymbol("iblen");
  ClosedFormBoundChecker CFB(Iblen, *Uses);
  Section S =
      Section::interval(SymExpr::constant(1), SymExpr::var(P->findSymbol("n")));
  PropertyResult R = Solver->verifyBefore(P->findLoop("use"), CFB, S);
  EXPECT_TRUE(R.Verified);
  RangeEnv Env;
  ConstRange Lo = evalConstRange(CFB.valueBounds().Lo.E, Env);
  ConstRange Hi = evalConstRange(CFB.valueBounds().Hi.E, Env);
  ASSERT_TRUE(Lo.Lo && Hi.Hi);
  EXPECT_GE(*Lo.Lo, 1);
  EXPECT_LE(*Hi.Hi, 8);
}

TEST_F(PropertyTest, PartialDefinitionFails) {
  // Only [1 : n/2] defined but the query asks [1 : n].
  build(R"(program partial
    integer n, m, i, t
    integer a(100)
    n = 100
    m = 50
    def: do i = 1, m
      a(i) = i
    end do
    use: do i = 1, n
      t = a(i)
    end do
  end)");
  const Symbol *A = P->findSymbol("a");
  ClosedFormBoundChecker CFB(A, *Uses);
  Section S =
      Section::interval(SymExpr::constant(1), SymExpr::var(P->findSymbol("n")));
  PropertyResult R = Solver->verifyBefore(P->findLoop("use"), CFB, S);
  EXPECT_FALSE(R.Verified) << "m < n is not provable, so [m+1:n] is exposed";
}

TEST_F(PropertyTest, HasConstantBaseDistinguishesCfvFromCfd) {
  build(Fig3Source);
  EXPECT_TRUE(ClosedFormDistanceChecker::hasConstantBase(
      *P, P->findSymbol("offset")));
  build(R"(program nobase
    integer n, i, istart
    integer pptr(101), iblen(100)
    n = 100
    istart = mod(n, 3) + 1
    pptr(1) = istart
    do i = 1, n
      pptr(i + 1) = pptr(i) + iblen(i)
    end do
  end)");
  EXPECT_FALSE(ClosedFormDistanceChecker::hasConstantBase(
      *P, P->findSymbol("pptr")));
}

} // namespace
