//===- bench/bench_recurrence.cpp - Static promotion payoff ---------------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// Measures what the recurrence solver buys over the inspector/executor
/// path: kernels whose index arrays are built by analyzable recurrences (a
/// fused CCS build and a prefix-sum scatter) dispatch parallel on a static
/// proof — zero inspections, zero verdict-cache traffic — while a
/// permuted-build control with identical runtime behavior keeps paying for
/// the O(n) inspection. Each kernel runs serial, with runtime checks
/// enabled, and with them disabled (promoted loops stay parallel either
/// way; the control falls back to serial), in the simulated-multiprocessor
/// mode. A checksum sweep across all schedules and thread counts guards
/// bit-identical results. Emits BENCH_recurrence.json.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

#include <set>

using namespace iaa;
using namespace iaa::bench;

namespace {

/// Fused CCS segment scaling: colcnt is defined in the same body the
/// colptr recurrence reads it, so only the recurrence solver proves the
/// scale loop's segments disjoint — it promotes to unconditional parallel.
benchprogs::BenchmarkProgram ccsFused(int64_t Cols, int64_t Reps) {
  char Buf[1024];
  std::snprintf(Buf, sizeof(Buf), R"(program ccs
    integer i, j, r, n
    integer colptr(%lld), colcnt(%lld)
    real vals(%lld)
    n = %lld
    colptr(1) = 1
    build: do i = 1, n
      colcnt(i) = mod(i * 5, 7) + 1
      colptr(i + 1) = colptr(i) + colcnt(i)
    end do
    fill: do i = 1, %lld
      vals(i) = mod(i, 13) * 0.125
    end do
    rep: do r = 1, %lld
      scale: do i = 1, n
        do j = 1, colcnt(i)
          vals(colptr(i) + j - 1) = vals(colptr(i) + j - 1) * 1.0625 + 0.25
        end do
      end do
    end do
  end)",
                (long long)(Cols + 1), (long long)Cols, (long long)(Cols * 7),
                (long long)Cols, (long long)(Cols * 7), (long long)Reps);
  benchprogs::BenchmarkProgram B;
  B.Name = "ccs_fused";
  B.Source = Buf;
  return B;
}

/// Prefix-sum scatter: pos is strictly increasing (accumulator step >= 1),
/// so the scatter through it is injective by construction and promotes.
benchprogs::BenchmarkProgram prefixScatter(int64_t N, int64_t Reps) {
  char Buf[1024];
  std::snprintf(Buf, sizeof(Buf), R"(program pfx
    integer i, r, n, p
    integer pos(%lld)
    real x(%lld), y(%lld)
    n = %lld
    p = 0
    build: do i = 1, n
      p = p + mod(i, 3) + 1
      pos(i) = p
    end do
    init: do i = 1, n
      y(i) = mod(i, 9) * 0.25
    end do
    rep: do r = 1, %lld
      scat: do i = 1, n
        x(pos(i)) = x(pos(i)) + y(i) * 0.5
      end do
    end do
  end)",
                (long long)N, (long long)(N * 3 + 100), (long long)N,
                (long long)N, (long long)Reps);
  benchprogs::BenchmarkProgram B;
  B.Name = "prefix_scatter";
  B.Source = Buf;
  return B;
}

/// Control: the same CCS kernel with colcnt written through a runtime
/// permutation (the identity, but the solver cannot know that). No fact is
/// derived, the scale loop stays runtime-conditional, and every run pays
/// the inspection the promoted variants delete.
benchprogs::BenchmarkProgram ccsPermuted(int64_t Cols, int64_t Reps) {
  char Buf[1280];
  std::snprintf(Buf, sizeof(Buf), R"(program ccp
    integer i, j, r, n
    integer colptr(%lld), colcnt(%lld), perm(%lld)
    real vals(%lld)
    n = %lld
    colptr(1) = 1
    mkperm: do i = 1, n
      perm(i) = i
    end do
    build: do i = 1, n
      colcnt(perm(i)) = mod(i * 5, 7) + 1
      colptr(i + 1) = colptr(i) + colcnt(i)
    end do
    fill: do i = 1, %lld
      vals(i) = mod(i, 13) * 0.125
    end do
    rep: do r = 1, %lld
      scale: do i = 1, n
        do j = 1, colcnt(i)
          vals(colptr(i) + j - 1) = vals(colptr(i) + j - 1) * 1.0625 + 0.25
        end do
      end do
    end do
  end)",
                (long long)(Cols + 1), (long long)Cols, (long long)Cols,
                (long long)(Cols * 7), (long long)Cols, (long long)(Cols * 7),
                (long long)Reps);
  benchprogs::BenchmarkProgram B;
  B.Name = "ccs_permuted";
  B.Source = Buf;
  return B;
}

struct RunResult {
  double Seconds = 0;
  interp::ExecStats Stats;
};

RunResult runConfig(const Compiled &C, unsigned Threads, bool RuntimeChecks,
                    interp::Schedule S = interp::Schedule::Static,
                    interp::Memory *OutMem = nullptr) {
  interp::Interpreter I(*C.Program);
  interp::ExecOptions Opts;
  if (Threads > 1) {
    Opts.Plans = &C.Pipeline;
    Opts.Threads = Threads;
    Opts.Sched = S;
    Opts.Simulate = true;
    Opts.RuntimeChecks = RuntimeChecks;
  }
  RunResult R;
  interp::Memory M = I.run(Opts, &R.Stats);
  R.Seconds = R.Stats.TotalSeconds;
  if (OutMem)
    *OutMem = std::move(M);
  return R;
}

unsigned promotedLoops(const Compiled &C) {
  unsigned N = 0;
  for (const xform::LoopReport &Rep : C.Pipeline.Loops)
    if (Rep.Parallel && Rep.RecurrencePromoted)
      ++N;
  return N;
}

/// Serial-reference checksum compared against every schedule × thread
/// combination with checks enabled.
bool checksumSweepOk(const Compiled &C, double Want) {
  const interp::Schedule Schedules[] = {interp::Schedule::Static,
                                        interp::Schedule::Dynamic,
                                        interp::Schedule::Guided};
  std::set<unsigned> Dead = interp::deadPrivateIds(C.Pipeline);
  for (interp::Schedule S : Schedules)
    for (unsigned T : {1u, 2u, 4u, 7u}) {
      interp::Memory M(*C.Program);
      runConfig(C, T, /*RuntimeChecks=*/true, S, &M);
      if (M.checksumExcluding(Dead) != Want)
        return false;
    }
  return true;
}

void printRecurrenceBench() {
  std::printf("\n=== Recurrence-based static promotion vs. runtime "
              "inspection (simulated multiprocessor) ===\n\n");
  double Scale = benchScale();
  int64_t N = std::max<int64_t>(500, int64_t(20000 * Scale));
  int64_t Cols = std::max<int64_t>(100, int64_t(4000 * Scale));
  const int64_t Reps = 8;
  const std::vector<unsigned> Threads = {2, 4, 8};
  JsonReport Report("recurrence");

  for (const benchprogs::BenchmarkProgram &B :
       {ccsFused(Cols, Reps), prefixScatter(N, Reps), ccsPermuted(Cols, Reps)}) {
    Compiled C = compile(B, xform::PipelineMode::Full);
    unsigned Promoted = promotedLoops(C);

    interp::Interpreter I(*C.Program);
    interp::ExecStats SerialStats;
    interp::Memory SerialMem = I.run({}, &SerialStats);
    double Serial = SerialStats.TotalSeconds;
    double Want =
        SerialMem.checksumExcluding(interp::deadPrivateIds(C.Pipeline));
    bool ChecksumOk = checksumSweepOk(C, Want);

    Report.row({{"program", json::str(B.Name)},
                {"kind", json::str("summary")},
                {"promoted_loops", json::num(Promoted)},
                {"checksum_ok", ChecksumOk ? "true" : "false"},
                {"serial_seconds", json::num(Serial)}});

    std::printf("%s (serial %.4fs, %u promoted loop(s), %lld reps, "
                "checksums %s)\n",
                B.Name.c_str(), Serial, Promoted, (long long)Reps,
                ChecksumOk ? "bit-identical" : "MISMATCH");
    std::printf("  %-14s", "config");
    for (unsigned T : Threads)
      std::printf("  %6up", T);
    std::printf("\n");

    for (bool Checks : {false, true}) {
      const char *Config = Checks ? "runtime-check" : "static-only";
      std::printf("  %-14s", Config);
      for (unsigned T : Threads) {
        RunResult R = runConfig(C, T, Checks);
        std::printf("  %6.2f", Serial / R.Seconds);
        Report.row(
            {{"program", json::str(B.Name)},
             {"kind", json::str("run")},
             {"config", json::str(Config)},
             {"threads", json::num(T)},
             {"seconds", json::num(R.Seconds)},
             {"speedup", json::num(Serial / R.Seconds)},
             {"dispatch_static", json::num(R.Stats.DispatchStatic)},
             {"dispatch_conditional", json::num(R.Stats.DispatchConditional)},
             {"dispatch_serial", json::num(R.Stats.DispatchSerial)},
             {"inspections_run", json::num(R.Stats.InspectionsRun)},
             {"inspections_cached", json::num(R.Stats.InspectionsCached)}});
      }
      std::printf("\n");
    }
    std::printf("\n");
  }

  Report.write();
  std::printf("\nccs_fused and prefix_scatter carry recurrence-promoted "
              "plans: their irregular loops dispatch parallel on the static "
              "tier with zero inspections, whether or not runtime checks "
              "are enabled. ccs_permuted is the control — byte-for-byte the "
              "same runtime behavior, but the permuted build hides the "
              "recurrence, so its loop pays the inspection under "
              "runtime-check and stays serial without it.\n\n");
}

/// google-benchmark wrapper: one simulated 4-thread run of the promoted
/// prefix-sum scatter and of the conditional control.
void BM_RecurrenceRun(benchmark::State &State) {
  double Scale = benchScale();
  bool Promoted = State.range(0) != 0;
  int64_t N = std::max<int64_t>(500, int64_t(5000 * Scale));
  Compiled C = compile(Promoted ? prefixScatter(N, 4)
                                : ccsPermuted(std::max<int64_t>(
                                                  100, int64_t(1000 * Scale)),
                                              4),
                       xform::PipelineMode::Full);
  for (auto _ : State) {
    RunResult R = runConfig(C, 4, /*RuntimeChecks=*/true);
    benchmark::DoNotOptimize(R.Seconds);
  }
  State.SetLabel(Promoted ? "promoted" : "conditional-control");
}

BENCHMARK(BM_RecurrenceRun)->DenseRange(0, 1)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  printRecurrenceBench();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
