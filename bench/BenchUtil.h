//===- bench/BenchUtil.h - Shared helpers for the benchmark harness -------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the experiment binaries: parsing a benchmark, running
/// the pipeline in a given mode, and executing with a given thread count.
/// Each bench binary regenerates one table or figure of the paper; it
/// prints the same rows/series the paper reports, then (for CI purposes)
/// runs a token google-benchmark suite so the binaries behave uniformly.
///
//===----------------------------------------------------------------------===//

#ifndef IAA_BENCH_BENCHUTIL_H
#define IAA_BENCH_BENCHUTIL_H

#include "benchprogs/Benchmarks.h"
#include "interp/Interpreter.h"
#include "mf/Parser.h"
#include "support/Json.h"
#include "xform/Parallelizer.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace iaa {
namespace bench {

/// Parses MF source, aborting on errors (benchmark inputs are trusted).
inline std::unique_ptr<mf::Program> parseOrAbort(const std::string &Source) {
  DiagnosticEngine Diags;
  std::unique_ptr<mf::Program> P = mf::parseProgram(Source, Diags);
  if (!P) {
    std::fprintf(stderr, "benchmark program failed to parse:\n%s\n",
                 Diags.str().c_str());
    std::abort();
  }
  return P;
}

/// One compiled benchmark: program + pipeline result for a mode.
struct Compiled {
  std::unique_ptr<mf::Program> Program;
  xform::PipelineResult Pipeline;
};

inline Compiled compile(const benchprogs::BenchmarkProgram &B,
                        xform::PipelineMode Mode) {
  Compiled C;
  C.Program = parseOrAbort(B.Source);
  C.Pipeline = xform::parallelize(*C.Program, Mode);
  return C;
}

/// Executes \p C with \p Threads workers; returns wall seconds and fills
/// \p Stats when given.
inline double execute(const Compiled &C, unsigned Threads,
                      interp::ExecStats *Stats = nullptr) {
  interp::Interpreter I(*C.Program);
  interp::ExecOptions Opts;
  interp::ExecStats Local;
  if (!Stats)
    Stats = &Local;
  if (Threads > 1) {
    Opts.Plans = &C.Pipeline;
    Opts.Threads = Threads;
  }
  I.run(Opts, Stats);
  return Stats->TotalSeconds;
}

/// Reads the benchmark scale from IAA_BENCH_SCALE (default 1.0) so CI can
/// shrink runtimes.
inline double benchScale() {
  if (const char *Env = std::getenv("IAA_BENCH_SCALE"))
    return std::atof(Env);
  return 1.0;
}

/// Machine-readable mirror of a bench's printed table. Rows accumulate as
/// ordered (key, encoded-value) pairs — values must already be JSON-encoded
/// (json::str / json::num, or the literals true/false) — and write() emits
///
///   {"bench": "<name>", "rows": [{...}, ...]}
///
/// to BENCH_<name>.json in the working directory, so plots and CI checks
/// can consume the same numbers the text table shows.
class JsonReport {
public:
  explicit JsonReport(std::string Name) : Name(std::move(Name)) {}

  void row(const std::vector<std::pair<std::string, std::string>> &Fields) {
    std::string R = "{";
    for (size_t I = 0; I < Fields.size(); ++I) {
      if (I)
        R += ", ";
      R += json::str(Fields[I].first) + ": " + Fields[I].second;
    }
    Rows.push_back(R + "}");
  }

  /// Writes the report; prints the destination (or a warning on failure).
  void write() const {
    std::string Path = "BENCH_" + Name + ".json";
    std::ofstream Out(Path);
    if (!Out) {
      std::fprintf(stderr, "warning: cannot write %s\n", Path.c_str());
      return;
    }
    Out << "{\"bench\": " << json::str(Name) << ", \"rows\": [\n";
    for (size_t I = 0; I < Rows.size(); ++I)
      Out << "  " << Rows[I] << (I + 1 < Rows.size() ? ",\n" : "\n");
    Out << "]}\n";
    std::printf("bench JSON written to %s (%zu rows)\n", Path.c_str(),
                Rows.size());
  }

private:
  std::string Name;
  std::vector<std::string> Rows;
};

} // namespace bench
} // namespace iaa

#endif // IAA_BENCH_BENCHUTIL_H
