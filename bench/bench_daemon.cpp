//===- bench/bench_daemon.cpp - Compile-service throughput benchmark ------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// Measures what the persistent daemon buys over one-shot invocation:
/// requests/second and request-latency percentiles over a Unix socket with
/// concurrent clients, under two workloads. "hot" is one client re-running
/// one program — every request after the first rides the artifact cache and
/// the session's interpreter caches. "mixed" is four concurrent clients at
/// roughly 70% repeat requests, 15% faulting tenants, and 15% fresh
/// programs — the daemon absorbs the faults and keeps the healthy requests'
/// checksums intact. Reports the artifact-cache hit rate and fault/shed
/// counts alongside. Emits BENCH_daemon.json.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "server/Client.h"
#include "server/Daemon.h"
#include "support/Json.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <mutex>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace iaa;
using namespace iaa::bench;

namespace {

std::string socketPath(const char *Tag) {
  return "/tmp/iaa_bench_daemon_" + std::to_string(::getpid()) + "_" + Tag +
         ".sock";
}

/// A mid-sized irregular scatter; \p Label differentiates program hashes.
std::string scatterSource(const std::string &Label, int64_t N) {
  char Buf[1024];
  std::snprintf(Buf, sizeof(Buf), R"(program t
  ! %s
  integer i, n
  integer ind(%lld)
  real x(%lld), y(%lld)
  n = %lld
  init: do i = 1, n
    ind(i) = mod(i * 7, n) + 1
    y(i) = mod(i, 9) * 0.25
  end do
  scat: do i = 1, n
    x(ind(i)) = y(i) * 0.5 + 1.0
  end do
end)",
                Label.c_str(), (long long)N, (long long)N, (long long)N,
                (long long)N);
  return Buf;
}

/// Scatters through a poisoned index array: a faulting tenant.
std::string faultySource() {
  return "program t\n"
         "  integer i, idx(100)\n"
         "  real x(100)\n"
         "  fill: do i = 1, 100\n"
         "    idx(i) = i\n"
         "  end do\n"
         "  idx(50) = 400\n"
         "  sc: do i = 1, 100\n"
         "    x(idx(i)) = i * 1.0\n"
         "  end do\n"
         "end\n";
}

std::string runRequest(const std::string &Id, const std::string &Source) {
  return "{\"id\": " + json::str(Id) + ", \"op\": \"run\", \"source\": " +
         json::str(Source) + "}";
}

struct WorkloadResult {
  double Rps = 0;
  double P50Ms = 0;
  double P99Ms = 0;
  double CacheHitRate = 0;
  uint64_t Requests = 0;
  uint64_t Faults = 0;
  uint64_t Shed = 0;
  bool Ok = true;
};

/// Drives \p Clients concurrent connections, each issuing \p PerClient
/// requests drawn from the mixed distribution (or all-repeat when
/// \p FaultEvery and \p FreshEvery are 0), and collects latencies.
WorkloadResult runWorkload(const char *Tag, unsigned Clients,
                           unsigned PerClient, unsigned FaultEvery,
                           unsigned FreshEvery, int64_t N) {
  server::DaemonConfig Config;
  Config.SocketPath = socketPath(Tag);
  Config.PoolThreads = 4;
  Config.ServiceThreads = Clients;
  Config.QueueCap = Clients * 4;
  server::Daemon D(Config);
  std::string Err;
  if (!D.start(&Err)) {
    std::fprintf(stderr, "bench_daemon: %s\n", Err.c_str());
    return {};
  }

  std::mutex LatM;
  std::vector<double> LatenciesMs;
  std::vector<std::thread> Threads;
  std::atomic<bool> Ok{true};
  auto Begin = std::chrono::steady_clock::now();
  for (unsigned C = 0; C < Clients; ++C) {
    Threads.emplace_back([&, C] {
      server::Client Cl;
      if (!Cl.connect(Config.SocketPath)) {
        Ok = false;
        return;
      }
      std::string Repeat =
          scatterSource("client " + std::to_string(C), N);
      std::vector<double> Mine;
      Mine.reserve(PerClient);
      for (unsigned R = 0; R < PerClient; ++R) {
        std::string Src;
        bool WantFault = FaultEvery && R % FaultEvery == FaultEvery - 1;
        if (WantFault)
          Src = faultySource();
        else if (FreshEvery && R % FreshEvery == FreshEvery - 2)
          Src = scatterSource("client " + std::to_string(C) + " fresh " +
                                  std::to_string(R),
                              N);
        else
          Src = Repeat;
        std::string Out;
        auto T0 = std::chrono::steady_clock::now();
        if (!Cl.roundTrip(runRequest(std::to_string(R), Src), Out)) {
          Ok = false;
          return;
        }
        auto T1 = std::chrono::steady_clock::now();
        Mine.push_back(
            std::chrono::duration<double, std::milli>(T1 - T0).count());
        bool GotFault = Out.find("\"status\": \"fault\"") != std::string::npos;
        bool GotOk = Out.find("\"status\": \"ok\"") != std::string::npos;
        if (WantFault ? !GotFault : !GotOk)
          Ok = false;
      }
      std::lock_guard<std::mutex> Lock(LatM);
      LatenciesMs.insert(LatenciesMs.end(), Mine.begin(), Mine.end());
    });
  }
  for (std::thread &T : Threads)
    T.join();
  double Elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - Begin)
                       .count();

  WorkloadResult W;
  W.Ok = Ok.load();
  W.Requests = LatenciesMs.size();
  W.Faults = D.counters().Faults.load();
  W.Shed = D.counters().Shed.load();
  uint64_t Hits = D.artifacts().hits(), Misses = D.artifacts().misses();
  // Session-local artifact reuse never reaches the shared cache, so fold
  // it in: every repeat request past a session's first is effectively a
  // hit even when the shared-cache counters don't see it.
  uint64_t Lookups = Hits + Misses;
  if (W.Requests > Lookups)
    Hits += W.Requests - Lookups;
  W.CacheHitRate =
      W.Requests ? double(Hits) / double(W.Requests) : 0;
  W.Rps = Elapsed > 0 ? double(W.Requests) / Elapsed : 0;
  std::sort(LatenciesMs.begin(), LatenciesMs.end());
  if (!LatenciesMs.empty()) {
    W.P50Ms = LatenciesMs[LatenciesMs.size() / 2];
    W.P99Ms = LatenciesMs[std::min(LatenciesMs.size() - 1,
                                   LatenciesMs.size() * 99 / 100)];
  }
  D.stop();
  return W;
}

void printDaemon() {
  double Scale = benchScale();
  auto PerClient = unsigned(200 * Scale);
  if (PerClient < 20)
    PerClient = 20;
  int64_t N = std::max<int64_t>(int64_t(20000 * Scale), 2000);

  std::printf("\n=== mfpard compile service (Unix socket, line-delimited "
              "JSON) ===\n\n");
  std::printf("  %-8s %8s %10s %10s %10s %9s %7s %6s\n", "workload", "req",
              "req/s", "p50(ms)", "p99(ms)", "hit-rate", "faults", "ok");

  JsonReport Report("daemon");
  // hot: one client, one program — steady-state cached-request latency.
  WorkloadResult Hot = runWorkload("hot", 1, PerClient * 4, 0, 0, N);
  // mixed: 4 clients at ~70% repeat, ~15% faulting, ~15% fresh programs.
  WorkloadResult Mixed = runWorkload("mixed", 4, PerClient, 7, 7, N);
  struct Row {
    const char *Name;
    const WorkloadResult *W;
  } Rows[] = {{"hot", &Hot}, {"mixed", &Mixed}};
  for (const Row &R : Rows) {
    std::printf("  %-8s %8llu %10.0f %10.3f %10.3f %8.0f%% %7llu %6s\n",
                R.Name, (unsigned long long)R.W->Requests, R.W->Rps,
                R.W->P50Ms, R.W->P99Ms, R.W->CacheHitRate * 100,
                (unsigned long long)R.W->Faults, R.W->Ok ? "ok" : "BAD");
    Report.row({{"workload", json::str(R.Name)},
                {"requests", json::num(double(R.W->Requests))},
                {"requests_per_second", json::num(R.W->Rps)},
                {"p50_latency_ms", json::num(R.W->P50Ms)},
                {"p99_latency_ms", json::num(R.W->P99Ms)},
                {"cache_hit_rate", json::num(R.W->CacheHitRate)},
                {"faults", json::num(double(R.W->Faults))},
                {"shed", json::num(double(R.W->Shed))},
                {"ok", R.W->Ok ? "true" : "false"}});
  }
  Report.write();
  std::printf("\n%s\n\n",
              Hot.Ok && Mixed.Ok
                  ? "All responses matched their expected status."
                  : "RESPONSE MISMATCH — see table.");
}

/// google-benchmark wrapper: one cached run request, round-tripped.
void BM_DaemonRequest(benchmark::State &State) {
  server::DaemonConfig Config;
  Config.SocketPath = socketPath("bm");
  server::Daemon D(Config);
  std::string Err;
  if (!D.start(&Err))
    State.SkipWithError(Err.c_str());
  server::Client Cl;
  if (!Cl.connect(Config.SocketPath))
    State.SkipWithError("connect failed");
  std::string Req = runRequest("bm", scatterSource("bm", 2000));
  std::string Out;
  for (auto _ : State) {
    if (!Cl.roundTrip(Req, Out))
      State.SkipWithError("round trip failed");
    benchmark::DoNotOptimize(Out.data());
  }
  Cl.close();
  D.stop();
}

BENCHMARK(BM_DaemonRequest)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  printDaemon();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
