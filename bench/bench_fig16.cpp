//===- bench/bench_fig16.cpp - Reproduces Figure 16 -----------------------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// Fig. 16 of the paper plots speedups of the five programs on 1-32
/// processors under three configurations: Polaris with the irregular array
/// access analyses (IAA), Polaris without them, and the SGI APO
/// auto-parallelizer. This bench regenerates all six panels:
///
///  (a)-(d) TRFD, BDNA, P3M, TREE speedup series for the three configs;
///  (e)     DYFESM with a tiny input, where parallelization overhead makes
///          every parallel version *slower* (speedup < 1);
///  (f)     DYFESM on a small 4-processor machine with a normal input,
///          where the IAA version reaches a modest speedup (paper: 1.6).
///
/// The host may have a single core, so parallel loops run in the
/// interpreter's simulated-multiprocessor mode: chunk times are measured
/// individually and a loop costs max(chunks) + fork/join overhead, which
/// preserves the curve *shapes* (Amdahl fractions, load imbalance,
/// per-invocation overhead) if not the absolute Origin 2000 numbers.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

using namespace iaa;
using namespace iaa::bench;

namespace {

double runSim(const Compiled &C, unsigned Threads, bool Unguarded) {
  interp::Interpreter I(*C.Program);
  interp::ExecOptions Opts;
  interp::ExecStats Stats;
  if (Threads > 1) {
    Opts.Plans = &C.Pipeline;
    Opts.Threads = Threads;
    Opts.Simulate = true;
    if (Unguarded)
      Opts.MinParallelWork = 0; // Polaris-faithful: no profitability guard.
  }
  I.run(Opts, &Stats);
  return Stats.TotalSeconds;
}

/// Best of two runs to tame timer noise.
double runSimStable(const Compiled &C, unsigned Threads,
                    bool Unguarded = false) {
  double Best = runSim(C, Threads, Unguarded);
  Best = std::min(Best, runSim(C, Threads, Unguarded));
  return Best;
}

void printSeries(JsonReport &Report, const std::string &Panel,
                 const benchprogs::BenchmarkProgram &B,
                 const std::vector<unsigned> &ThreadCounts,
                 bool Unguarded = false) {
  static const xform::PipelineMode Modes[] = {xform::PipelineMode::Full,
                                              xform::PipelineMode::NoIAA,
                                              xform::PipelineMode::Apo};
  std::printf("%s\n", B.Name.c_str());
  std::printf("  %-12s", "config");
  for (unsigned T : ThreadCounts)
    std::printf(" %6up", T);
  std::printf("\n");
  // One serial baseline (identical for all configs).
  Compiled Base = compile(B, xform::PipelineMode::Full);
  double Serial = runSimStable(Base, 1);
  for (xform::PipelineMode Mode : Modes) {
    Compiled C = compile(B, Mode);
    std::printf("  %-12s", xform::pipelineModeName(Mode));
    for (unsigned T : ThreadCounts) {
      double Secs = T == 1 ? Serial : runSimStable(C, T, Unguarded);
      std::printf(" %6.2f", Serial / Secs);
      Report.row({{"panel", json::str(Panel)},
                  {"program", json::str(B.Name)},
                  {"config", json::str(xform::pipelineModeName(Mode))},
                  {"threads", json::num(T)},
                  {"seconds", json::num(Secs)},
                  {"speedup", json::num(Serial / Secs)}});
    }
    std::printf("\n");
  }
}

void printFig16() {
  std::printf("\n=== Figure 16: speedups (simulated multiprocessor, "
              "speedup vs 1 processor) ===\n\n");
  double Scale = benchScale();
  std::vector<unsigned> Threads = {1, 2, 4, 8, 16, 32};
  JsonReport Report("fig16");

  // Panels (a)-(d): TRFD, BDNA, P3M, TREE.
  for (auto &B : {benchprogs::trfd(Scale), benchprogs::bdna(Scale),
                  benchprogs::p3m(Scale), benchprogs::tree(Scale)})
    printSeries(Report, "a-d", B, Threads);

  // Panel (b)-analog: DYFESM with the normal input.
  printSeries(Report, "a-d", benchprogs::dyfesm(Scale), Threads);

  // Panel (e): DYFESM with a tiny input — parallelization overhead wins.
  // Polaris-generated code had no per-loop profitability guard; the tiny
  // input exposes the raw fork/join overhead (hence speedups below one).
  std::printf("DYFESM-tiny (Fig. 16(e): tiny input, overhead dominates)\n");
  printSeries(Report, "e", benchprogs::dyfesmTiny(), Threads,
              /*Unguarded=*/true);

  // Panel (f): DYFESM restricted to a 4-processor machine.
  std::printf("DYFESM-4p (Fig. 16(f): small machine)\n");
  printSeries(Report, "f", benchprogs::dyfesm(Scale), {1, 2, 4});

  Report.write();
  std::printf("\nPaper reference: with IAA the irregular loops parallelize "
              "and BDNA/P3M/TREE speed up significantly, TRFD improves from "
              "five to six at 16 processors; without IAA (and under APO) "
              "the key loops stay serial and the curves are flat; tiny-input "
              "DYFESM slows down under parallelization (16(e)) but reaches "
              "~1.6 on a 4-processor machine (16(f)).\n\n");
}

/// google-benchmark wrapper: one simulated 8-thread run per iteration.
void BM_SimulatedRun(benchmark::State &State) {
  auto All = benchprogs::allBenchmarks(0.1);
  const benchprogs::BenchmarkProgram &B = All[State.range(0)];
  Compiled C = compile(B, xform::PipelineMode::Full);
  for (auto _ : State) {
    double Secs = runSim(C, 8, /*Unguarded=*/false);
    benchmark::DoNotOptimize(Secs);
  }
  State.SetLabel(B.Name);
}

BENCHMARK(BM_SimulatedRun)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  printFig16();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
