//===- bench/bench_ablation_demand.cpp - Demand-driven ablation -----------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// Design-choice ablation for Sec. 3's "the analysis is demand-driven
/// because the cost of interprocedural array reaching definition analysis
/// and property checking is high": a program defines M index arrays, but
/// only one is used at the query site. The demand-driven analysis issues a
/// single query; an exhaustive analyzer would verify every property of
/// every index array at every loop.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "analysis/PropertySolver.h"
#include "cfg/Hcg.h"

#include <benchmark/benchmark.h>

using namespace iaa;
using namespace iaa::bench;
using namespace iaa::analysis;

namespace {

/// M offset arrays built in a setup procedure; only off0 is used.
std::string manyArraysSource(unsigned M) {
  std::string Decls, Defs;
  for (unsigned K = 0; K < M; ++K) {
    std::string Name = "off" + std::to_string(K);
    Decls += "  integer " + Name + "(101)\n";
    Defs += "    " + Name + "(1) = 1\n    do i = 1, n\n      " + Name +
            "(i + 1) = " + Name + "(i) + len(i)\n    end do\n";
  }
  return "program many\n  integer i, j, n\n  integer len(100)\n" + Decls +
         R"(  real data(2000)
  procedure setup
    do i = 1, n
      len(i) = mod(i * 3, 7) + 1
    end do
)" + Defs + R"(  end
  n = 100
  call setup
  use: do i = 1, n
    do j = 1, len(i)
      data(off0(i) + j - 1) = 1.0
    end do
  end do
end)";
}

struct Work {
  std::unique_ptr<mf::Program> P;
  std::unique_ptr<SymbolUses> Uses;
  std::unique_ptr<cfg::Hcg> G;
};

Work build(unsigned M) {
  Work W;
  W.P = parseOrAbort(manyArraysSource(M));
  W.Uses = std::make_unique<SymbolUses>(*W.P);
  W.G = std::make_unique<cfg::Hcg>(*W.P);
  return W;
}

/// Demand-driven: one CFD query for the one array the use site needs.
PropertyResult demandDriven(Work &W) {
  PropertySolver Solver(*W.G, *W.Uses);
  const mf::Symbol *Off = W.P->findSymbol("off0");
  auto D = ClosedFormDistanceChecker::discoverDistance(*W.P, Off);
  ClosedFormDistanceChecker C(Off, *D, *W.Uses);
  sec::Section S = sec::Section::interval(
      sym::SymExpr::constant(1),
      sym::SymExpr::var(W.P->findSymbol("n")) - 1);
  return Solver.verifyBefore(W.P->findLoop("use"), C, S);
}

/// Exhaustive: verify CFD and CFB of *every* index array at the loop.
unsigned exhaustive(Work &W, unsigned M) {
  PropertySolver Solver(*W.G, *W.Uses);
  sec::Section S = sec::Section::interval(
      sym::SymExpr::constant(1),
      sym::SymExpr::var(W.P->findSymbol("n")) - 1);
  unsigned Nodes = 0;
  for (unsigned K = 0; K < M; ++K) {
    const mf::Symbol *Off = W.P->findSymbol("off" + std::to_string(K));
    if (auto D = ClosedFormDistanceChecker::discoverDistance(*W.P, Off)) {
      ClosedFormDistanceChecker C(Off, *D, *W.Uses);
      Nodes += Solver.verifyBefore(W.P->findLoop("use"), C, S).NodesVisited;
    }
    ClosedFormBoundChecker B(Off, *W.Uses);
    Nodes += Solver.verifyBefore(W.P->findLoop("use"), B, S).NodesVisited;
  }
  return Nodes;
}

void printAblation() {
  std::printf("\n=== Ablation: demand-driven vs exhaustive property "
              "analysis (Sec. 3) ===\n");
  std::printf("%-14s %16s %18s %8s\n", "index arrays", "demand visits",
              "exhaustive visits", "ratio");
  for (unsigned M : {2u, 8u, 32u}) {
    Work W = build(M);
    PropertyResult R = demandDriven(W);
    unsigned E = exhaustive(W, M);
    std::printf("%-14u %16u %18u %7.1fx\n", M, R.NodesVisited, E,
                static_cast<double>(E) / std::max(1u, R.NodesVisited));
    if (!R.Verified)
      std::printf("  (unexpected: demand query failed)\n");
  }
  std::printf("\nDemand-driven cost is independent of how many index arrays "
              "the program defines.\n\n");
}

void BM_DemandDriven(benchmark::State &State) {
  Work W = build(static_cast<unsigned>(State.range(0)));
  for (auto _ : State)
    benchmark::DoNotOptimize(demandDriven(W).NodesVisited);
}

void BM_Exhaustive(benchmark::State &State) {
  unsigned M = static_cast<unsigned>(State.range(0));
  Work W = build(M);
  for (auto _ : State)
    benchmark::DoNotOptimize(exhaustive(W, M));
}

BENCHMARK(BM_DemandDriven)->Arg(2)->Arg(8)->Arg(32);
BENCHMARK(BM_Exhaustive)->Arg(2)->Arg(8)->Arg(32);

} // namespace

int main(int argc, char **argv) {
  printAblation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
