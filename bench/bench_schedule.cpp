//===- bench/bench_schedule.cpp - Scheduling-policy comparison ------------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// Compares the runtime scheduling policies (static, dynamic, guided) on the
/// Fig. 16 kernels in the simulated-multiprocessor mode: per-kernel speedup
/// over the serial run plus a load-imbalance figure derived from the chunk
/// timings (max * chunks / sum; 1.0 is perfectly balanced). The Fig. 16
/// kernels are mostly regular, so static scheduling is expected to hold its
/// own; the point of the table is that dynamic/guided close the gap on the
/// ragged loops without losing anything elsewhere. Emits
/// BENCH_schedule.json.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

using namespace iaa;
using namespace iaa::bench;

namespace {

struct SchedResult {
  double Seconds = 0;
  double Imbalance = 1.0;
  unsigned Chunks = 0;
};

SchedResult runSched(const Compiled &C, unsigned Threads, interp::Schedule S,
                     int64_t ChunkSize) {
  interp::Interpreter I(*C.Program);
  interp::ExecOptions Opts;
  Opts.Plans = &C.Pipeline;
  Opts.Threads = Threads;
  Opts.Sched = S;
  Opts.ChunkSize = ChunkSize;
  Opts.Simulate = true;
  interp::ExecStats Stats;
  I.run(Opts, &Stats);
  SchedResult R;
  R.Seconds = Stats.TotalSeconds;
  R.Chunks = Stats.ChunksRun;
  if (Stats.ChunkSecondsSum > 0 && Stats.ChunksRun > 0)
    R.Imbalance =
        Stats.ChunkSecondsMax * Stats.ChunksRun / Stats.ChunkSecondsSum;
  return R;
}

/// Best of two runs to tame timer noise (imbalance/chunks from the best).
SchedResult runSchedStable(const Compiled &C, unsigned Threads,
                           interp::Schedule S, int64_t ChunkSize) {
  SchedResult A = runSched(C, Threads, S, ChunkSize);
  SchedResult B = runSched(C, Threads, S, ChunkSize);
  return A.Seconds <= B.Seconds ? A : B;
}

void printSchedules() {
  std::printf("\n=== Scheduling policies on the Fig. 16 kernels "
              "(simulated multiprocessor, IAA pipeline) ===\n\n");
  double Scale = benchScale();
  const std::vector<unsigned> Threads = {2, 4, 8, 16};
  const interp::Schedule Schedules[] = {interp::Schedule::Static,
                                        interp::Schedule::Dynamic,
                                        interp::Schedule::Guided};
  JsonReport Report("schedule");

  for (const auto &B : benchprogs::allBenchmarks(Scale)) {
    Compiled C = compile(B, xform::PipelineMode::Full);
    interp::Interpreter I(*C.Program);
    interp::ExecStats SerialStats;
    I.run({}, &SerialStats);
    double Serial = SerialStats.TotalSeconds;

    std::printf("%s (serial %.3fs)\n", B.Name.c_str(), Serial);
    std::printf("  %-8s", "schedule");
    for (unsigned T : Threads)
      std::printf("    %3up (imbal)", T);
    std::printf("\n");
    for (interp::Schedule S : Schedules) {
      std::printf("  %-8s", interp::scheduleName(S));
      for (unsigned T : Threads) {
        SchedResult R = runSchedStable(C, T, S, /*ChunkSize=*/0);
        std::printf("  %6.2f (%5.2f)", Serial / R.Seconds, R.Imbalance);
        Report.row({{"program", json::str(B.Name)},
                    {"schedule", json::str(interp::scheduleName(S))},
                    {"threads", json::num(T)},
                    {"seconds", json::num(R.Seconds)},
                    {"speedup", json::num(Serial / R.Seconds)},
                    {"chunks", json::num(R.Chunks)},
                    {"imbalance", json::num(R.Imbalance)}});
      }
      std::printf("\n");
    }
  }

  Report.write();
  std::printf("\nImbalance is max-chunk-seconds * chunks / sum-chunk-seconds "
              "per run (1.0 = perfectly even chunks). Dynamic and guided "
              "trade a smaller worst chunk for more dispenser trips; on the "
              "regular Fig. 16 loops all three policies should land within "
              "noise of each other.\n\n");
}

/// google-benchmark wrapper: one simulated 8-thread run per schedule.
void BM_ScheduledRun(benchmark::State &State) {
  auto All = benchprogs::allBenchmarks(0.1);
  const benchprogs::BenchmarkProgram &B = All[1]; // DYFESM.
  Compiled C = compile(B, xform::PipelineMode::Full);
  auto S = static_cast<interp::Schedule>(State.range(0));
  for (auto _ : State) {
    SchedResult R = runSched(C, 8, S, /*ChunkSize=*/0);
    benchmark::DoNotOptimize(R.Seconds);
  }
  State.SetLabel(interp::scheduleName(S));
}

BENCHMARK(BM_ScheduledRun)->DenseRange(0, 2)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  printSchedules();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
