//===- bench/bench_vm.cpp - Bytecode VM vs tree-walk benchmark ------------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// Measures what the register-bytecode engine buys over the tree-walking
/// interpreter on the Fig. 16 benchmark reconstructions plus a hot
/// permutation-scatter microkernel. Every kernel runs at T=4 under both
/// --engine=interp and --engine=vm (best of three), reporting the time
/// spent in the paper's irregular loops (where the engines differ; serial
/// and analysis work is engine-invariant), whole-program time, the VM
/// speedup, how many loop bodies compiled to bytecode vs bailed to the
/// tree walk, and whether both engines' results stayed bit-identical to
/// the serial reference. Emits BENCH_vm.json; CI asserts every kernel's
/// checksum and that the VM is never slower on the irregular loops.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

#include <cinttypes>
#include <cstdio>
#include <limits>

using namespace iaa;
using namespace iaa::bench;

namespace {

/// Hot permutation scatter, repeated so the irregular loop dominates: ind
/// is a runtime permutation (mod(i*7, n)+1 with gcd(7, n) = 1), so the
/// loop parallelizes only via the injectivity inspection — whose verdict
/// is cached across the rep trips (ind never changes).
benchprogs::BenchmarkProgram scatterMicro(double Scale) {
  int64_t N = (int64_t)(400000 * Scale);
  if (N < 1000)
    N = 1000;
  while (N % 7 == 0 || N % 9 == 0)
    ++N;
  char Buf[1024];
  std::snprintf(Buf, sizeof(Buf), R"(program t
    integer i, r, n
    integer ind(%lld)
    real x(%lld), y(%lld)
    n = %lld
    init: do i = 1, n
      ind(i) = mod(i * 7, n) + 1
      x(i) = mod(i, 17) * 0.5
      y(i) = mod(i, 9) * 0.25
    end do
    rep: do r = 1, 12
      scat: do i = 1, n
        x(ind(i)) = x(ind(i)) + y(i) * 0.5
      end do
    end do
  end)",
                (long long)N, (long long)N, (long long)N, (long long)N);
  benchprogs::BenchmarkProgram B;
  B.Name = "pscatter";
  B.Source = Buf;
  B.IrregularLoops = {"scat"};
  return B;
}

struct EngineRun {
  double IrrSeconds = std::numeric_limits<double>::infinity();
  double TotalSeconds = std::numeric_limits<double>::infinity();
  unsigned VmLoops = 0, VmBailouts = 0;
  bool ChecksumOk = true;
};

EngineRun runEngine(const Compiled &C,
                    const std::vector<std::string> &IrrLoops,
                    interp::ExecEngine E, double Want, int Reps) {
  EngineRun Best;
  for (int Rep = 0; Rep < Reps; ++Rep) {
    interp::Interpreter I(*C.Program);
    interp::ExecOptions Opts;
    Opts.Plans = &C.Pipeline;
    Opts.Threads = 4;
    Opts.MinParallelWork = 0;
    Opts.RuntimeChecks = true;
    Opts.Engine = E;
    interp::ExecStats Stats;
    interp::Memory M = I.run(Opts, &Stats);
    Best.ChecksumOk =
        Best.ChecksumOk && !I.faultState().Faulted &&
        M.checksumExcluding(interp::deadPrivateIds(C.Pipeline)) == Want;
    double Irr = 0;
    for (const std::string &L : IrrLoops) {
      auto It = Stats.LoopSeconds.find(L);
      if (It != Stats.LoopSeconds.end())
        Irr += It->second;
    }
    if (Irr < Best.IrrSeconds) {
      Best.IrrSeconds = Irr;
      Best.TotalSeconds = Stats.TotalSeconds;
      Best.VmLoops = Stats.VmLoopsCompiled;
      Best.VmBailouts = Stats.VmBailouts;
    }
  }
  return Best;
}

void printVm() {
  double Scale = benchScale();
  std::vector<benchprogs::BenchmarkProgram> Kernels =
      benchprogs::allBenchmarks(Scale);
  Kernels.push_back(scatterMicro(Scale));

  std::printf("\n=== Register-bytecode VM vs tree-walk interpreter "
              "(irregular loops, T=4, best of 3) ===\n\n");
  std::printf("  %-10s %12s %12s %9s  %8s %9s  %s\n", "kernel", "interp(s)",
              "vm(s)", "speedup", "vm-loops", "bailouts", "checksum");

  JsonReport Report("vm");
  bool AllOk = true;
  double BestSpeedup = 0;
  for (const auto &B : Kernels) {
    Compiled C = compile(B, xform::PipelineMode::Full);
    interp::Interpreter Serial(*C.Program);
    interp::Memory SerialMem = Serial.run({});
    const double Want =
        SerialMem.checksumExcluding(interp::deadPrivateIds(C.Pipeline));

    EngineRun Interp =
        runEngine(C, B.IrregularLoops, interp::ExecEngine::Interp, Want, 3);
    EngineRun Vm =
        runEngine(C, B.IrregularLoops, interp::ExecEngine::Vm, Want, 3);
    bool Ok = Interp.ChecksumOk && Vm.ChecksumOk;
    AllOk = AllOk && Ok;
    double Speedup = Vm.IrrSeconds > 0 ? Interp.IrrSeconds / Vm.IrrSeconds : 0;
    if (Speedup > BestSpeedup)
      BestSpeedup = Speedup;

    std::printf("  %-10s %12.4f %12.4f %8.2fx  %8u %9u  %s\n", B.Name.c_str(),
                Interp.IrrSeconds, Vm.IrrSeconds, Speedup, Vm.VmLoops,
                Vm.VmBailouts, Ok ? "ok" : "MISMATCH");
    Report.row({{"kernel", json::str(B.Name)},
                {"threads", json::num(4)},
                {"interp_seconds", json::num(Interp.IrrSeconds)},
                {"vm_seconds", json::num(Vm.IrrSeconds)},
                {"speedup", json::num(Speedup)},
                {"interp_total_seconds", json::num(Interp.TotalSeconds)},
                {"vm_total_seconds", json::num(Vm.TotalSeconds)},
                {"vm_loops", json::num(Vm.VmLoops)},
                {"vm_bailouts", json::num(Vm.VmBailouts)},
                {"checksum_ok", Ok ? "true" : "false"}});
  }
  Report.write();

  std::printf("\nBest irregular-loop speedup: %.2fx. %s\n\n", BestSpeedup,
              AllOk ? "All checksums bit-identical to serial."
                    : "CHECKSUM MISMATCH — see table.");
}

/// google-benchmark wrapper: the scatter microkernel per engine at T=4.
void BM_Engine(benchmark::State &State) {
  benchprogs::BenchmarkProgram B = scatterMicro(0.05);
  Compiled C = compile(B, xform::PipelineMode::Full);
  interp::Interpreter Serial(*C.Program);
  const double Want = Serial.run({}).checksumExcluding(
      interp::deadPrivateIds(C.Pipeline));
  auto E = static_cast<interp::ExecEngine>(State.range(0));
  for (auto _ : State) {
    EngineRun R = runEngine(C, B.IrregularLoops, E, Want, 1);
    benchmark::DoNotOptimize(R.IrrSeconds);
  }
  State.SetLabel(interp::engineName(E));
}

BENCHMARK(BM_Engine)->DenseRange(0, 1)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  printVm();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
