//===- bench/bench_ablation_earlyterm.cpp - Early termination ablation ----===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// Design-choice ablation for the QuerySolver's worklist discipline
/// (Sec. 3.2.2): queries are processed in reverse topological order and the
/// whole solve *early-terminates* on the first kill. A kill site close to
/// the query point is therefore found after visiting only a handful of
/// nodes, no matter how much code lies between it and the definitions.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "analysis/PropertySolver.h"
#include "cfg/Hcg.h"

#include <benchmark/benchmark.h>

using namespace iaa;
using namespace iaa::bench;
using namespace iaa::analysis;

namespace {

/// \p Filler statements separate the offset definitions from the use; the
/// kill (a scatter write into off) sits either near the use or near the
/// definitions.
std::string killSource(unsigned Filler, bool KillNearUse) {
  std::string Pad;
  for (unsigned I = 0; I < Filler; ++I)
    Pad += "  y(" + std::to_string(I % 90 + 1) + ") = 0.5\n";
  std::string Kill = "  off(perm(2)) = 9\n";
  return R"(program killer
  integer i, j, n, t
  integer off(101), len(100), perm(10)
  real data(2000), y(100)
  n = 100
  do i = 1, n
    len(i) = mod(i * 3, 7) + 1
  end do
  off(1) = 1
  do i = 1, n
    off(i + 1) = off(i) + len(i)
  end do
)" + (KillNearUse ? "" : Kill) +
         Pad + (KillNearUse ? Kill : "") + R"(  use: do i = 1, n
    do j = 1, len(i)
      data(off(i) + j - 1) = 1.0
    end do
  end do
end)";
}

PropertyResult solve(const std::string &Source) {
  auto P = parseOrAbort(Source);
  SymbolUses Uses(*P);
  cfg::Hcg G(*P);
  PropertySolver Solver(G, Uses);
  const mf::Symbol *Off = P->findSymbol("off");
  auto D = ClosedFormDistanceChecker::discoverDistance(*P, Off);
  ClosedFormDistanceChecker C(Off, *D, Uses);
  sec::Section S = sec::Section::interval(
      sym::SymExpr::constant(1), sym::SymExpr::var(P->findSymbol("n")) - 1);
  return Solver.verifyBefore(P->findLoop("use"), C, S);
}

void printAblation() {
  std::printf("\n=== Ablation: early termination on kills (Fig. 5) ===\n");
  std::printf("%-10s %18s %18s\n", "filler", "kill-near-use",
              "kill-near-defs");
  std::printf("%-10s %18s %18s\n", "", "(visits)", "(visits)");
  for (unsigned Filler : {10u, 100u, 1000u}) {
    PropertyResult Near = solve(killSource(Filler, /*KillNearUse=*/true));
    PropertyResult Far = solve(killSource(Filler, /*KillNearUse=*/false));
    std::printf("%-10u %18u %18u\n", Filler, Near.NodesVisited,
                Far.NodesVisited);
    if (Near.Verified || Far.Verified)
      std::printf("  (unexpected: the kill should defeat the query)\n");
  }
  std::printf("\nA kill near the use point terminates the whole solve after "
              "a constant number of nodes; a kill near the definitions "
              "costs a walk over the intervening code either way.\n\n");
}

void BM_KillNearUse(benchmark::State &State) {
  std::string Src = killSource(static_cast<unsigned>(State.range(0)), true);
  for (auto _ : State)
    benchmark::DoNotOptimize(solve(Src).NodesVisited);
}

void BM_KillNearDefs(benchmark::State &State) {
  std::string Src = killSource(static_cast<unsigned>(State.range(0)), false);
  for (auto _ : State)
    benchmark::DoNotOptimize(solve(Src).NodesVisited);
}

BENCHMARK(BM_KillNearUse)->Arg(100)->Arg(1000);
BENCHMARK(BM_KillNearDefs)->Arg(100)->Arg(1000);

} // namespace

int main(int argc, char **argv) {
  printAblation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
