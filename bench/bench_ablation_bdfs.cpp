//===- bench/bench_ablation_bdfs.cpp - bDFS bounding ablation -------------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// Design-choice ablation: the *bounded* depth-first search of Fig. 2 stops
/// expanding at boundary nodes (fbound), so a consecutively-written check
/// touches only the region between an increment and the next array write.
/// This bench compares visited-node counts and times for the bounded search
/// against an unbounded DFS over the same CFGs as the region grows.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "analysis/BoundedDfs.h"
#include "cfg/FlatCfg.h"

#include <benchmark/benchmark.h>

using namespace iaa;
using namespace iaa::bench;

namespace {

/// A region with one increment + write up front and \p Tail trailing
/// statements: the bounded search stops at the write; the unbounded one
/// walks the whole tail.
std::string regionSource(unsigned Tail) {
  std::string Body;
  for (unsigned I = 0; I < Tail; ++I) {
    Body += "      y(" + std::to_string(I % 90 + 1) + ") = y(" +
            std::to_string(I % 90 + 2) + ") + 1.0\n";
  }
  return R"(program region
  integer i, n, p
  real x(200), y(200)
  n = 10
  p = 0
  lp: do i = 1, n
    p = p + 1
    x(p) = 1.0
)" + Body + R"(  end do
end)";
}

struct Prepared {
  std::unique_ptr<mf::Program> P;
  std::unique_ptr<cfg::FlatCfg> G;
  unsigned IncNode = 0;
  const mf::Symbol *X = nullptr;
  const mf::Symbol *Pvar = nullptr;
};

Prepared prepare(unsigned Tail) {
  Prepared R;
  R.P = parseOrAbort(regionSource(Tail));
  mf::DoStmt *L = R.P->findLoop("lp");
  R.G = std::make_unique<cfg::FlatCfg>(L->body(), true);
  R.X = R.P->findSymbol("x");
  R.Pvar = R.P->findSymbol("p");
  for (unsigned I = 0; I < R.G->size(); ++I) {
    const auto *AS =
        dyn_cast_if_present<mf::AssignStmt>(R.G->node(I).S);
    if (AS && !AS->arrayTarget() && AS->writtenSymbol() == R.Pvar)
      R.IncNode = I;
  }
  return R;
}

unsigned runOnce(const Prepared &R, bool Bounded, double *Seconds) {
  analysis::BdfsStats Stats;
  auto WritesX = [&](unsigned N) {
    const auto *AS = dyn_cast_if_present<mf::AssignStmt>(R.G->node(N).S);
    return AS && AS->arrayTarget() && AS->arrayTarget()->array() == R.X;
  };
  auto IsInc = [&](unsigned N) { return N == R.IncNode; };
  Timer T;
  analysis::boundedDfs(
      *R.G, R.IncNode,
      Bounded ? std::function<bool(unsigned)>(WritesX)
              : std::function<bool(unsigned)>([](unsigned) { return false; }),
      IsInc, &Stats);
  if (Seconds)
    *Seconds = T.seconds();
  return Stats.NodesVisited;
}

void printAblation() {
  std::printf("\n=== Ablation: bounded vs unbounded DFS (Fig. 2) ===\n");
  std::printf("%-12s %16s %18s %8s\n", "region size", "bounded visits",
              "unbounded visits", "ratio");
  for (unsigned Tail : {10u, 100u, 1000u, 10000u}) {
    Prepared R = prepare(Tail);
    unsigned B = runOnce(R, true, nullptr);
    unsigned U = runOnce(R, false, nullptr);
    std::printf("%-12u %16u %18u %7.1fx\n", Tail, B, U,
                static_cast<double>(U) / B);
  }
  std::printf("\nThe bounded search is O(distance to the next array write); "
              "the unbounded one is O(region).\n\n");
}

void BM_BoundedDfs(benchmark::State &State) {
  Prepared R = prepare(static_cast<unsigned>(State.range(0)));
  for (auto _ : State)
    benchmark::DoNotOptimize(runOnce(R, true, nullptr));
  State.SetLabel("bounded");
}

void BM_UnboundedDfs(benchmark::State &State) {
  Prepared R = prepare(static_cast<unsigned>(State.range(0)));
  for (auto _ : State)
    benchmark::DoNotOptimize(runOnce(R, false, nullptr));
  State.SetLabel("unbounded");
}

BENCHMARK(BM_BoundedDfs)->Arg(100)->Arg(1000)->Arg(10000);
BENCHMARK(BM_UnboundedDfs)->Arg(100)->Arg(1000)->Arg(10000);

} // namespace

int main(int argc, char **argv) {
  printAblation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
