//===- bench/bench_locality.cpp - Locality-aware scheduling benchmark -----===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// Measures what --locality buys on a skewed gather kernel: a scatter
/// x(ind(i)) whose index array walks the target lines round-robin, so a
/// block-static schedule hands every worker the *whole* x footprint while
/// the inspector's reorder pass can give each worker a disjoint slice of
/// lines. For each locality mode (off, model, reorder) x thread count the
/// bench reports the profiler's per-worker distinct-line sum (the quantity
/// the scheduler minimizes; exact at sample period 1), the union footprint
/// (schedule-invariant sanity row), LLC-miss deltas when perf counters are
/// available (containers routinely refuse them — then null), and whether
/// the checksum stayed bit-identical to the serial run. Emits
/// BENCH_locality.json.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "prof/Profiler.h"
#include "sched/FootprintModel.h"

#include <benchmark/benchmark.h>

#include <cinttypes>
#include <cstdio>

using namespace iaa;
using namespace iaa::bench;

namespace {

/// The skewed gather: with x split into M lines of 8 reals, iteration i
/// targets line mod(i-1, M) — index-adjacent iterations always touch
/// *different* lines, and the iterations sharing a line are exactly M
/// apart. ind is a permutation (runtime-checkable, statically opaque), so
/// the loop parallelizes only via the inspector.
std::string skewedGatherSource(int64_t M) {
  const int64_t N = M * 8;
  char Buf[1024];
  std::snprintf(Buf, sizeof(Buf), R"(program t
    integer i, n
    integer ind(%lld)
    real x(%lld), y(%lld)
    n = %lld
    init: do i = 1, n
      ind(i) = mod(i - 1, %lld) * 8 + (i - 1) / %lld + 1
      x(i) = mod(i, 17) * 0.5
      y(i) = mod(i, 11) * 0.25
    end do
    scat: do i = 1, n
      x(ind(i)) = x(ind(i)) + y(i) * 1.5
    end do
  end)",
                (long long)N, (long long)N, (long long)N, (long long)N,
                (long long)M, (long long)M);
  return Buf;
}

struct LocalityRun {
  double Seconds = 0;
  uint64_t WorkerLines = 0;    ///< Sum over workers of distinct lines.
  uint64_t FootprintLines = 0; ///< Union footprint (schedule-invariant).
  prof::PerfSample Perf;       ///< Deltas for the gather loop (may be invalid).
  unsigned Reorders = 0;
  bool ChecksumOk = false;
};

LocalityRun runMode(const Compiled &C, sched::LocalityMode L, unsigned Threads,
                    double SerialChecksum) {
  prof::SessionOptions PO;
  PO.SamplePeriod = 1; // Exact footprints: the model comparison needs them.
  PO.MaxSamplesPerArray = 1 << 22;
  prof::Session S(PO);

  interp::Interpreter I(*C.Program);
  interp::ExecOptions Opts;
  Opts.Plans = &C.Pipeline;
  Opts.Threads = Threads;
  Opts.MinParallelWork = 0;
  Opts.RuntimeChecks = true;
  Opts.Locality = L;
  Opts.Prof = &S;
  interp::ExecStats Stats;
  interp::Memory M = I.run(Opts, &Stats);
  S.finalizeAnalysis();

  LocalityRun R;
  R.Seconds = Stats.TotalSeconds;
  R.Reorders = Stats.LocalityReorders + Stats.LocalityReordersCached;
  R.ChecksumOk =
      M.checksumExcluding(interp::deadPrivateIds(C.Pipeline)) == SerialChecksum;
  for (const prof::LoopProfile &LP : S.invocations()) {
    if (LP.Label != "scat")
      continue;
    R.WorkerLines = LP.WorkerLinesSum;
    R.Perf = LP.Perf;
    for (const prof::ArrayProfile &A : LP.Arrays)
      R.FootprintLines += A.FootprintLines;
  }
  return R;
}

void printLocality() {
  double Scale = benchScale();
  int64_t M = (int64_t)(2048 * Scale);
  if (M < 64)
    M = 64;
  const int64_t N = M * 8;
  std::printf("\n=== Locality-aware scheduling on a skewed gather "
              "(n=%" PRId64 ", %" PRId64 " target lines) ===\n\n",
              N, M);

  benchprogs::BenchmarkProgram B;
  B.Name = "skewed-gather";
  B.Source = skewedGatherSource(M);
  Compiled C = compile(B, xform::PipelineMode::Full);
  interp::Interpreter Serial(*C.Program);
  interp::Memory SerialMem = Serial.run({});
  const double Want =
      SerialMem.checksumExcluding(interp::deadPrivateIds(C.Pipeline));

  const sched::LocalityMode Modes[] = {sched::LocalityMode::Off,
                                       sched::LocalityMode::Model,
                                       sched::LocalityMode::Reorder};
  const unsigned Threads[] = {2, 4, 8};
  JsonReport Report("locality");
  bool AllOk = true;
  uint64_t OffLines4 = 0, ReorderLines4 = 0;

  std::printf("  %-8s %3s  %12s  %10s  %10s  %8s  %s\n", "mode", "T",
              "worker-lines", "footprint", "llc-miss", "reorders", "checksum");
  for (sched::LocalityMode L : Modes) {
    for (unsigned T : Threads) {
      LocalityRun R = runMode(C, L, T, Want);
      AllOk = AllOk && R.ChecksumOk;
      if (T == 4 && L == sched::LocalityMode::Off)
        OffLines4 = R.WorkerLines;
      if (T == 4 && L == sched::LocalityMode::Reorder)
        ReorderLines4 = R.WorkerLines;
      char Miss[32];
      if (R.Perf.Valid)
        std::snprintf(Miss, sizeof(Miss), "%10" PRIu64, R.Perf.LlcMisses);
      else
        std::snprintf(Miss, sizeof(Miss), "%10s", "n/a");
      std::printf("  %-8s %3u  %12" PRIu64 "  %10" PRIu64 "  %s  %8u  %s\n",
                  sched::localityModeName(L), T, R.WorkerLines,
                  R.FootprintLines, Miss, R.Reorders,
                  R.ChecksumOk ? "ok" : "MISMATCH");
      Report.row(
          {{"mode", json::str(sched::localityModeName(L))},
           {"threads", json::num(T)},
           {"worker_lines", json::num(R.WorkerLines)},
           {"footprint_lines", json::num(R.FootprintLines)},
           {"llc_misses",
            R.Perf.Valid ? json::num(R.Perf.LlcMisses) : std::string("null")},
           {"seconds", json::num(R.Seconds)},
           {"reorders", json::num(R.Reorders)},
           {"checksum_ok", R.ChecksumOk ? "true" : "false"}});
    }
  }
  Report.write();

  if (OffLines4 && ReorderLines4)
    std::printf("\nReorder cuts the 4-thread per-worker line sum %.1fx "
                "(%" PRIu64 " -> %" PRIu64 "); the union footprint column "
                "must not move — only *which worker* touches each line "
                "does.\n",
                double(OffLines4) / double(ReorderLines4), OffLines4,
                ReorderLines4);
  std::printf("%s\n\n", AllOk ? "All checksums bit-identical to serial."
                              : "CHECKSUM MISMATCH — see table.");
}

/// google-benchmark wrapper: one 4-thread run per locality mode.
void BM_LocalityMode(benchmark::State &State) {
  benchprogs::BenchmarkProgram B;
  B.Name = "skewed-gather";
  B.Source = skewedGatherSource(256);
  Compiled C = compile(B, xform::PipelineMode::Full);
  interp::Interpreter Serial(*C.Program);
  interp::Memory SerialMem = Serial.run({});
  const double Want =
      SerialMem.checksumExcluding(interp::deadPrivateIds(C.Pipeline));
  auto L = static_cast<sched::LocalityMode>(State.range(0));
  for (auto _ : State) {
    LocalityRun R = runMode(C, L, 4, Want);
    benchmark::DoNotOptimize(R.WorkerLines);
  }
  State.SetLabel(sched::localityModeName(L));
}

BENCHMARK(BM_LocalityMode)->DenseRange(0, 2)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  printLocality();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
