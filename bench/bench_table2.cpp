//===- bench/bench_table2.cpp - Reproduces Table 2 ------------------------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// Table 2 of the paper reports, per program: lines of code, whole-program
/// compilation time, sequential execution time, the time spent in the
/// array property analysis, and that time as a percentage of compilation.
/// The paper measured 4.5%-10.9%; the claim reproduced here is the *shape*:
/// the demand-driven property analysis is a small single-/low-double-digit
/// fraction of total pipeline time.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/Trace.h"

#include <benchmark/benchmark.h>

using namespace iaa;
using namespace iaa::bench;

namespace {

void printTable2() {
  std::printf("\n=== Table 2: compilation time and array property analysis "
              "share ===\n");
  std::printf("%-8s %6s %12s %12s %16s %8s\n", "Program", "Lines",
              "SeqExec(s)", "Pipeline(s)", "PropAnalysis(s)", "Share");
  double Scale = benchScale();
  JsonReport Report("table2");
  for (const benchprogs::BenchmarkProgram &B :
       benchprogs::allBenchmarks(Scale)) {
    // Compile repeatedly for a stable timing (the pipeline is fast).
    const int Rounds = 20;
    double PipelineSecs = 0, PropSecs = 0;
    for (int R = 0; R < Rounds; ++R) {
      Compiled C = compile(B, xform::PipelineMode::Full);
      PipelineSecs += C.Pipeline.TotalSeconds;
      PropSecs += C.Pipeline.PropertySeconds;
    }
    PipelineSecs /= Rounds;
    PropSecs /= Rounds;

    Compiled C = compile(B, xform::PipelineMode::Full);
    interp::ExecStats Stats;
    double SeqSecs = execute(C, /*Threads=*/1, &Stats);

    // The same serial run with span collection switched on: the disabled
    // path costs one relaxed load per instrumentation site, so the two
    // timings should agree to noise (recorded in the JSON as evidence).
    trace::enable(true);
    interp::ExecStats TracedStats;
    double TracedSecs = execute(C, /*Threads=*/1, &TracedStats);
    trace::enable(false);
    size_t TraceEvents = trace::eventCount();
    trace::clear();

    std::printf("%-8s %6u %12.3f %12.5f %16.5f %7.1f%%\n", B.Name.c_str(),
                B.lineCount(), SeqSecs, PipelineSecs, PropSecs,
                100.0 * PropSecs / PipelineSecs);
    Report.row({{"program", json::str(B.Name)},
                {"lines", json::num(B.lineCount())},
                {"seq_exec_s", json::num(SeqSecs)},
                {"seq_exec_traced_s", json::num(TracedSecs)},
                {"trace_events", json::num(static_cast<double>(TraceEvents))},
                {"pipeline_s", json::num(PipelineSecs)},
                {"prop_analysis_s", json::num(PropSecs)},
                {"prop_share_pct",
                 json::num(100.0 * PropSecs / PipelineSecs)}});
  }
  Report.write();
  std::printf("\nPaper reference (Table 2): property analysis was 4.5%% "
              "(TRFD) to 10.9%% (P3M) of compilation time.\n\n");
}

/// google-benchmark wrapper: one pipeline compilation per iteration.
void BM_PipelineCompile(benchmark::State &State) {
  auto All = benchprogs::allBenchmarks(benchScale());
  const benchprogs::BenchmarkProgram &B = All[State.range(0)];
  for (auto _ : State) {
    Compiled C = compile(B, xform::PipelineMode::Full);
    benchmark::DoNotOptimize(C.Pipeline.Loops.size());
  }
  State.SetLabel(B.Name);
}

BENCHMARK(BM_PipelineCompile)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  printTable2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
