//===- bench/bench_table3.cpp - Reproduces Table 3 ------------------------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// Table 3 of the paper reports, per irregular loop: the arrays analyzed,
/// the property established (CW, STACK, CFV, CFD, CFB), which test consumed
/// it (DD = dependence test, PRIV = privatization test), the loop's share
/// of sequential execution time, and its share of parallel execution time
/// if it were left serial. This bench regenerates all of those columns from
/// the pipeline reports and the interpreter's per-loop timing.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

#include <set>

using namespace iaa;
using namespace iaa::bench;

namespace {

/// "CFD" is reported as "CFV" when the recurrence additionally has a
/// constant base (TRFD's ia(i) = i*(i-1)/2), matching the paper's labels.
std::string refineCfd(const mf::Program &P, const std::string &Entry) {
  // Entries look like "ia:CFD"; report "ia:CFV" when the recurrence has a
  // constant base (closed-form *value*, not just distance).
  size_t Colon = Entry.find(':');
  if (Colon == std::string::npos || Entry.substr(Colon + 1) != "CFD")
    return Entry;
  const mf::Symbol *Array = P.findSymbol(Entry.substr(0, Colon));
  if (Array && analysis::ClosedFormDistanceChecker::hasConstantBase(P, Array))
    return Entry.substr(0, Colon) + ":CFV";
  return Entry;
}

void printTable3() {
  std::printf("\n=== Table 3: irregular loops, properties, tests, and time "
              "shares ===\n");
  std::printf("%-8s %-8s %-10s %-24s %-6s %8s %10s\n", "Program", "Loop",
              "Parallel", "Array:property", "Test", "%seq",
              "%par-if-serial(8)");
  double Scale = benchScale();
  JsonReport Report("table3");
  for (const benchprogs::BenchmarkProgram &B :
       benchprogs::allBenchmarks(Scale)) {
    Compiled C = compile(B, xform::PipelineMode::Full);

    interp::ExecStats Seq;
    double Total = execute(C, 1, &Seq);

    std::vector<std::string> Labels = B.IrregularLoops;
    Labels.insert(Labels.end(), B.HelperLoops.begin(), B.HelperLoops.end());
    for (const std::string &Label : Labels) {
      const xform::LoopReport *Rep = C.Pipeline.reportFor(Label);
      if (!Rep)
        continue;

      // Property/test summary: dependence-test properties first, then
      // privatization properties.
      std::string Props;
      std::string Test;
      std::set<std::string> Seen;
      for (const auto &D : Rep->DepOutcomes)
        for (const std::string &Prop : D.PropertiesUsed) {
          std::string Entry = refineCfd(*C.Program, Prop);
          if (Seen.insert(Entry).second)
            Props += (Props.empty() ? "" : ",") + Entry;
          Test = "DD";
        }
      for (const auto &Pv : Rep->PrivOutcomes) {
        if (!Pv.Privatizable)
          continue;
        for (const std::string &Prop : Pv.PropertiesUsed) {
          if (Prop.find(":affine") != std::string::npos)
            continue;
          if (Seen.insert(Prop).second)
            Props += (Props.empty() ? "" : ",") + Prop;
          if (Test.empty())
            Test = "PRIV";
        }
      }
      if (Test.empty())
        Test = "-";

      double LoopSecs = 0;
      auto It = Seq.LoopSeconds.find(Label);
      if (It != Seq.LoopSeconds.end())
        LoopSecs = It->second;
      double SeqShare = Total > 0 ? 100.0 * LoopSecs / Total : 0;
      // Amdahl estimate of the loop's share of an 8-thread run if it were
      // the only serial part (the paper's column 11 analog).
      const double T = 8;
      double ParTime = LoopSecs + (Total - LoopSecs) / T;
      double ParShare = ParTime > 0 ? 100.0 * LoopSecs / ParTime : 0;

      std::printf("%-8s %-8s %-10s %-24s %-6s %7.1f%% %9.1f%%\n",
                  B.Name.c_str(), Label.c_str(),
                  Rep->Parallel ? "yes" : "no", Props.c_str(), Test.c_str(),
                  SeqShare, ParShare);
      Report.row({{"program", json::str(B.Name)},
                  {"loop", json::str(Label)},
                  {"parallel", Rep->Parallel ? "true" : "false"},
                  {"properties", json::str(Props)},
                  {"test", json::str(Test)},
                  {"seq_share_pct", json::num(SeqShare)},
                  {"par_if_serial_pct", json::num(ParShare)}});
    }
  }
  Report.write();
  std::printf("\nPaper reference (Table 3): TRFD do140 x:CFV DD 5%%; DYFESM "
              "SOLXDD loops pptr:CFD,iblen:CFB DD 20%%; BDNA do240 ind:CFB "
              "PRIV 32%%; P3M do100 jpr:CFB PRIV 74%%; TREE do10 "
              "stack:STACK 90%%.\n\n");
}

/// google-benchmark wrapper: a full Table 3 analysis pass per iteration.
void BM_AnalyzeProgram(benchmark::State &State) {
  auto All = benchprogs::allBenchmarks(0.05);
  const benchprogs::BenchmarkProgram &B = All[State.range(0)];
  for (auto _ : State) {
    Compiled C = compile(B, xform::PipelineMode::Full);
    unsigned Queries = 0;
    for (const auto &Rep : C.Pipeline.Loops)
      Queries += Rep.PropertyQueries;
    benchmark::DoNotOptimize(Queries);
  }
  State.SetLabel(B.Name);
}

BENCHMARK(BM_AnalyzeProgram)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  printTable3();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
