//===- bench/bench_runtime_check.cpp - Inspector/executor payoff ----------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// Measures what the runtime-check subsystem buys on kernels the static
/// analysis must leave serial: a gather/scatter whose index array is a
/// permutation only discoverable at run time, and a sparse-CCS segment
/// update whose column pointers come from an unanalyzable recurrence. Each
/// kernel runs serial, with the static pipeline only (the irregular loop
/// stays serial), and with --runtime-check on (the inspector licenses
/// parallel dispatch), in the simulated-multiprocessor mode. The irregular
/// loop repeats several times per run, so the verdict cache amortizes the
/// O(n) inspection the way repeated solver calls would in a real
/// application. Emits BENCH_runtime_check.json.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

using namespace iaa;
using namespace iaa::bench;

namespace {

/// Gather/scatter over a runtime permutation, repeated \p Reps times.
benchprogs::BenchmarkProgram gatherScatter(int64_t N, int64_t Reps) {
  char Buf[1024];
  std::snprintf(Buf, sizeof(Buf), R"(program gs
    integer i, r, n
    integer ind(%lld)
    real x(%lld), y(%lld)
    n = %lld
    init: do i = 1, n
      ind(i) = mod(i * 7, n) + 1
      x(i) = i * 0.5
      y(i) = mod(i, 9) * 0.25
    end do
    rep: do r = 1, %lld
      scat: do i = 1, n
        x(ind(i)) = x(ind(i)) + y(i) * 0.5
      end do
    end do
  end)",
                (long long)N, (long long)N, (long long)N, (long long)N,
                (long long)Reps);
  benchprogs::BenchmarkProgram B;
  B.Name = "gather_scatter";
  B.Source = Buf;
  return B;
}

/// CCS-style segment scaling with recurrence-built column pointers,
/// repeated \p Reps times. Segment lengths are mod(i*5, 7) + 1, so vals
/// needs at most 7 elements per column. colcnt is written through an
/// identity permutation so the recurrence solver cannot prove the build
/// statically and the scale loop keeps its runtime inspection (the
/// benchmark measures inspector overhead).
benchprogs::BenchmarkProgram ccsScale(int64_t Cols, int64_t Reps) {
  char Buf[1280];
  std::snprintf(Buf, sizeof(Buf), R"(program ccs
    integer i, j, r, n
    integer colptr(%lld), colcnt(%lld), perm(%lld)
    real vals(%lld)
    n = %lld
    colptr(1) = 1
    mkperm: do i = 1, n
      perm(i) = i
    end do
    build: do i = 1, n
      colcnt(perm(i)) = mod(i * 5, 7) + 1
      colptr(i + 1) = colptr(i) + colcnt(i)
    end do
    fill: do i = 1, %lld
      vals(i) = mod(i, 13) * 0.125
    end do
    rep: do r = 1, %lld
      scale: do i = 1, n
        do j = 1, colcnt(i)
          vals(colptr(i) + j - 1) = vals(colptr(i) + j - 1) * 1.0625 + 0.25
        end do
      end do
    end do
  end)",
                (long long)(Cols + 1), (long long)Cols, (long long)Cols,
                (long long)(Cols * 7), (long long)Cols, (long long)(Cols * 7),
                (long long)Reps);
  benchprogs::BenchmarkProgram B;
  B.Name = "sparse_ccs";
  B.Source = Buf;
  return B;
}

struct RunResult {
  double Seconds = 0;
  interp::ExecStats Stats;
};

RunResult runConfig(const Compiled &C, unsigned Threads, bool RuntimeChecks) {
  interp::Interpreter I(*C.Program);
  interp::ExecOptions Opts;
  if (Threads > 1) {
    Opts.Plans = &C.Pipeline;
    Opts.Threads = Threads;
    Opts.Simulate = true;
    Opts.RuntimeChecks = RuntimeChecks;
  }
  RunResult R;
  I.run(Opts, &R.Stats);
  R.Seconds = R.Stats.TotalSeconds;
  return R;
}

void printRuntimeCheckBench() {
  std::printf("\n=== Inspector/executor runtime checks on statically-serial "
              "irregular kernels (simulated multiprocessor) ===\n\n");
  double Scale = benchScale();
  int64_t N = std::max<int64_t>(500, int64_t(20000 * Scale));
  int64_t Cols = std::max<int64_t>(100, int64_t(4000 * Scale));
  const int64_t Reps = 8;
  const std::vector<unsigned> Threads = {2, 4, 8};
  JsonReport Report("runtime_check");

  for (const benchprogs::BenchmarkProgram &B :
       {gatherScatter(N, Reps), ccsScale(Cols, Reps)}) {
    Compiled C = compile(B, xform::PipelineMode::Full);
    interp::Interpreter I(*C.Program);
    interp::ExecStats SerialStats;
    I.run({}, &SerialStats);
    double Serial = SerialStats.TotalSeconds;
    Report.row({{"program", json::str(B.Name)},
                {"config", json::str("serial")},
                {"threads", json::num(1)},
                {"seconds", json::num(Serial)},
                {"speedup", json::num(1.0)}});

    std::printf("%s (serial %.4fs, %lld reps of the irregular loop)\n",
                B.Name.c_str(), Serial, (long long)Reps);
    std::printf("  %-14s", "config");
    for (unsigned T : Threads)
      std::printf("  %6up", T);
    std::printf("\n");

    for (bool Checks : {false, true}) {
      const char *Config = Checks ? "runtime-check" : "static-only";
      std::printf("  %-14s", Config);
      for (unsigned T : Threads) {
        RunResult R = runConfig(C, T, Checks);
        std::printf("  %6.2f", Serial / R.Seconds);
        Report.row(
            {{"program", json::str(B.Name)},
             {"config", json::str(Config)},
             {"threads", json::num(T)},
             {"seconds", json::num(R.Seconds)},
             {"speedup", json::num(Serial / R.Seconds)},
             {"inspections_run", json::num(R.Stats.InspectionsRun)},
             {"inspections_cached", json::num(R.Stats.InspectionsCached)},
             {"runtime_check_fails", json::num(R.Stats.RuntimeCheckFails)}});
      }
      std::printf("\n");
    }
    std::printf("\n");
  }

  Report.write();
  std::printf("\nstatic-only leaves the irregular loop serial (the index "
              "data is opaque to the compile-time tests); runtime-check "
              "inspects the index array once, caches the verdict on its "
              "version counter across the remaining reps, and dispatches "
              "the loop parallel. The gap between the two rows is the "
              "payoff of the inspector/executor path.\n\n");
}

/// google-benchmark wrapper: one simulated 4-thread run with and without
/// runtime checks.
void BM_RuntimeCheckRun(benchmark::State &State) {
  double Scale = benchScale();
  Compiled C = compile(
      gatherScatter(std::max<int64_t>(500, int64_t(5000 * Scale)), 4),
      xform::PipelineMode::Full);
  bool Checks = State.range(0) != 0;
  for (auto _ : State) {
    RunResult R = runConfig(C, 4, Checks);
    benchmark::DoNotOptimize(R.Seconds);
  }
  State.SetLabel(Checks ? "runtime-check" : "static-only");
}

BENCHMARK(BM_RuntimeCheckRun)->DenseRange(0, 1)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  printRuntimeCheckBench();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
