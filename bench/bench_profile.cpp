//===- bench/bench_profile.cpp - Memory-access profiling coverage ---------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// Profiles the Fig. 16 kernels plus the paper's motivating gather/scatter
/// and sparse-CCS shapes with the iaa::prof sampling profiler: per labeled
/// loop the health verdict, access-locality score (fraction of sampled
/// accesses reusing a cache line within 32 lines), cache-line footprint,
/// and worker imbalance — and, per program, the profiling overhead
/// (profiled vs. unprofiled process CPU time at the default sampling
/// rate, which the acceptance gate keeps under 10%). Emits
/// BENCH_profile.json, so
/// locality regressions become visible per PR the same way timing
/// regressions already are.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "prof/Profiler.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <ctime>

using namespace iaa;
using namespace iaa::bench;

namespace {

/// Process CPU seconds: unlike wall time, not inflated by whatever else
/// the machine is running, so overhead percentages stay meaningful on a
/// loaded CI box. Simulated-processor runs execute on the calling thread,
/// so process CPU time covers all the work.
double cpuSeconds() {
  timespec TS;
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &TS);
  return TS.tv_sec + TS.tv_nsec * 1e-9;
}

double runProfiled(const Compiled &C, unsigned Threads, prof::Session *S) {
  interp::Interpreter I(*C.Program);
  interp::ExecOptions Opts;
  Opts.Plans = &C.Pipeline;
  Opts.Threads = Threads;
  Opts.Simulate = true;
  Opts.Prof = S;
  double Begin = cpuSeconds();
  I.run(Opts, nullptr);
  return cpuSeconds() - Begin;
}

/// Min-of-\p Reps plain and profiled CPU times, interleaved so slow drift
/// in the machine's load hits both sides equally instead of biasing the
/// ratio. A fresh session per profiled rep keeps invocation caps out of
/// play. Returns {plain, profiled}.
std::pair<double, double> measureOverhead(const Compiled &C, unsigned Threads,
                                          int Reps) {
  double Plain = runProfiled(C, Threads, nullptr);
  double Profiled = 1e30;
  for (int R = 0; R < Reps; ++R) {
    prof::Session S;
    Profiled = std::min(Profiled, runProfiled(C, Threads, &S));
    if (R + 1 < Reps)
      Plain = std::min(Plain, runProfiled(C, Threads, nullptr));
  }
  return {Plain, Profiled};
}

void printProfiles() {
  std::printf("\n=== Memory-access profiles: Fig. 16 kernels + motivating "
              "shapes (4 simulated processors, IAA pipeline) ===\n\n");
  double Scale = benchScale();
  JsonReport Report("profile");

  std::vector<benchprogs::BenchmarkProgram> Programs =
      benchprogs::allBenchmarks(Scale);
  Programs.push_back({"Fig3-CCS", benchprogs::fig3Source(), {}, {}});
  Programs.push_back({"Fig14-gather", benchprogs::fig14Source(), {}, {}});

  for (const auto &B : Programs) {
    Compiled C = compile(B, xform::PipelineMode::Full);

    // Overhead: profiled vs. unprofiled process CPU time at the default
    // sampling rate. Separate sessions per run keep invocation caps out
    // of play. Sub-millisecond programs are all fixed per-invocation cost
    // (session setup, reuse-distance finalize) — a percentage of nothing —
    // so they are excluded from the overhead row rather than reported as
    // a scary number.
    auto [Plain, Profiled] = measureOverhead(C, 4, 5);
    bool OverheadMeaningful = Plain >= 1e-3;
    double OverheadPct =
        OverheadMeaningful ? (Profiled / Plain - 1.0) * 100.0 : 0.0;

    // The reported profile comes from one fresh session.
    prof::Session S;
    runProfiled(C, 4, &S);

    if (OverheadMeaningful)
      std::printf("%s (profiling overhead %+.1f%%)\n", B.Name.c_str(),
                  OverheadPct);
    else
      std::printf("%s (too short for a meaningful overhead percentage)\n",
                  B.Name.c_str());
    std::printf("%s", S.healthText(&C.Pipeline).c_str());
    std::printf("\n");

    for (const prof::LoopHealth &H : S.health(&C.Pipeline))
      Report.row({{"program", json::str(B.Name)},
                  {"loop", json::str(H.Label)},
                  {"verdict", json::str(H.Verdict)},
                  {"locality", json::num(H.LocalityScore)},
                  {"imbalance_pct", json::num(H.ImbalancePct)},
                  {"analysis_pct", json::num(H.AnalysisPct)},
                  {"footprint_lines",
                   json::num(static_cast<double>(H.FootprintLines))},
                  {"sampled",
                   json::num(static_cast<double>(H.SampledAccesses))},
                  {"invocations", json::num(H.Invocations)},
                  {"wall_us", json::num(H.WallUs)},
                  {"overhead_pct", json::num(OverheadPct)}});
  }

  Report.write();
  std::printf("\nLocality is the fraction of sampled accesses whose "
              "cache-line reuse distance is under 32 lines (cold first "
              "touches count against it); footprint is distinct 64-byte "
              "lines touched. Overhead compares profiled vs. unprofiled "
              "run time at the default 1-in-16 sampling rate.\n\n");
}

/// google-benchmark wrapper: one profiled simulated run (P3M's gathers).
void BM_ProfiledRun(benchmark::State &State) {
  auto All = benchprogs::allBenchmarks(0.1);
  Compiled C = compile(All[3], xform::PipelineMode::Full); // P3M.
  for (auto _ : State) {
    prof::Session S;
    double Wall = runProfiled(C, 4, &S);
    benchmark::DoNotOptimize(Wall);
  }
}

BENCHMARK(BM_ProfiledRun)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  printProfiles();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
