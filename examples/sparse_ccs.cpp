//===- examples/sparse_ccs.cpp - The offset-length test on CCS data -------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
//
// A deeper look at the paper's core dependence-test machinery on the
// Compressed Column Storage scenario from the introduction (Figs. 3, 13):
// the host array is traversed segment by segment through an offset array,
// and the offset-length test proves the segments disjoint by combining two
// verified properties of the index arrays:
//
//   - offset() has the closed-form distance length() (CFD);
//   - length() has a non-negative closed-form bound (CFB).
//
// This example drives the property analysis directly — the same calls the
// dependence test makes internally — and prints what it finds.
//
//===----------------------------------------------------------------------===//

#include "analysis/PropertySolver.h"
#include "cfg/Hcg.h"
#include "interp/Interpreter.h"
#include "mf/Parser.h"
#include "xform/Parallelizer.h"

#include <cstdio>

using namespace iaa;
using namespace iaa::analysis;

static const char *Source = R"(program spmv
  ! A sparse matrix-vector multiply in CCS format; the column pointers are
  ! built from per-column counts in a separate setup procedure (the
  ! interprocedural case of Sec. 3.2.6).
  integer n, i, j, nnztot
  integer colptr(257), colcnt(256), rowind(4000)
  real vals(4000), xvec(256), yvec(256)
  procedure buildptr
    do i = 1, n
      colcnt(i) = mod(i * 11, 13) + 1
    end do
    colptr(1) = 1
    do i = 1, n
      colptr(i + 1) = colptr(i) + colcnt(i)
    end do
  end
  n = 256
  call buildptr
  nnztot = 14 * n
  do i = 1, nnztot
    vals(i) = mod(i * 3, 17) * 0.125
    rowind(i) = mod(i * 7, n) + 1
  end do
  do i = 1, n
    xvec(i) = i * 0.01
    yvec(i) = 0.0
  end do
  spmv: do i = 1, n
    do j = 1, colcnt(i)
      yvec(i) = yvec(i) + vals(colptr(i) + j - 1) * xvec(i)
    end do
  end do
  scale: do i = 1, n
    do j = 1, colcnt(i)
      vals(colptr(i) + j - 1) = vals(colptr(i) + j - 1) * 0.99
    end do
  end do
end)";

int main() {
  DiagnosticEngine Diags;
  std::unique_ptr<mf::Program> P = mf::parseProgram(Source, Diags);
  if (!P) {
    std::fprintf(stderr, "parse failed:\n%s", Diags.str().c_str());
    return 1;
  }

  SymbolUses Uses(*P);
  cfg::Hcg G(*P);
  PropertySolver Solver(G, Uses);
  const mf::Symbol *ColPtr = P->findSymbol("colptr");
  const mf::Symbol *ColCnt = P->findSymbol("colcnt");
  const mf::Symbol *N = P->findSymbol("n");

  // --- Step 1: discover colptr's closed-form distance from the program
  // text (the recurrence colptr(i+1) = colptr(i) + colcnt(i)).
  auto Dist = ClosedFormDistanceChecker::discoverDistance(*P, ColPtr);
  if (!Dist) {
    std::printf("no closed-form distance discovered for colptr\n");
    return 1;
  }
  std::printf("discovered distance of colptr(pos): %s\n",
              Dist->str().c_str());

  // --- Step 2: verify the distance holds on [1 : n-1] at the scale loop
  // (reverse query propagation through the call to buildptr).
  ClosedFormDistanceChecker CFD(ColPtr, *Dist, Uses);
  sec::Section S = sec::Section::interval(sym::SymExpr::constant(1),
                                          sym::SymExpr::var(N) - 1);
  PropertyResult R1 = Solver.verifyBefore(P->findLoop("scale"), CFD, S);
  std::printf("CFD verified: %s (visited %u HCG nodes, %u query splits)\n",
              R1.Verified ? "yes" : "no", R1.NodesVisited, R1.QueriesSplit);

  // --- Step 3: bound the distance array (colcnt must be non-negative for
  // the segments to be non-overlapping).
  ClosedFormBoundChecker CFB(ColCnt, Uses);
  PropertyResult R2 = Solver.verifyBefore(P->findLoop("scale"), CFB, S);
  std::printf("CFB verified: %s, colcnt values in %s\n",
              R2.Verified ? "yes" : "no", CFB.valueBounds().str().c_str());

  // --- Step 4: the full pipeline puts it together.
  xform::PipelineResult Pipe =
      xform::parallelize(*P, xform::PipelineMode::Full);
  for (const char *Label : {"spmv", "scale"}) {
    const xform::LoopReport *Rep = Pipe.reportFor(Label);
    std::printf("loop %-6s -> %s", Label,
                Rep->Parallel ? "PARALLEL" : "serial");
    for (const auto &D : Rep->DepOutcomes)
      if (D.Test == deptest::TestKind::OffsetLength)
        std::printf("  (offset-length test on %s)", D.Array->name().c_str());
    std::printf("\n");
  }

  // --- Step 5: run it both ways and compare.
  interp::Interpreter I(*P);
  interp::Memory Serial = I.run({});
  interp::ExecOptions Par;
  Par.Plans = &Pipe;
  Par.Threads = 4;
  interp::Memory Parallel = I.run(Par);
  std::printf("serial/parallel checksums: %.6f / %.6f (%s)\n",
              Serial.checksum(), Parallel.checksum(),
              Serial.checksum() == Parallel.checksum() ? "match"
                                                       : "DIVERGE");
  return 0;
}
