//===- examples/mfpard.cpp - Persistent compile-service daemon ------------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
//
// mfpard: the long-running counterpart to mfpar. Listens on a Unix-domain
// socket for line-delimited JSON requests (see src/server/Protocol.h),
// shares one worker pool and one artifact cache across all clients, and
// contains tenant faults, blown deadlines, and over-budget allocations per
// request — the daemon itself survives them all.
//
//   mfpard --socket=/tmp/mfpard.sock
//   printf '{"op":"run","source":"program p\\nreal x(4)\\ndo i = 1, 4\\n  x(i) = i\\nend do\\nend\\n"}\n' \
//     | nc -U /tmp/mfpard.sock
//
//===----------------------------------------------------------------------===//

#include "server/Daemon.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace iaa;

namespace {

volatile std::sig_atomic_t GotSignal = 0;

void onSignal(int) { GotSignal = 1; }

void usage() {
  std::fprintf(
      stderr,
      "usage: mfpard --socket=PATH [options]\n"
      "\n"
      "Persistent compile-and-execute service for mf programs. Accepts\n"
      "line-delimited JSON requests on a Unix-domain stream socket; one\n"
      "response line per request. See DESIGN.md \"Compile service\".\n"
      "\n"
      "options:\n"
      "  --socket=PATH          Unix socket path to listen on (required)\n"
      "  --pool-threads=N       shared worker pool width (default 4)\n"
      "  --service-threads=N    concurrent connections served (default 4)\n"
      "  --queue-cap=N          pending-connection bound; beyond it new\n"
      "                         connections are shed with retry_after_ms\n"
      "                         (default 16)\n"
      "  --deadline-ms=N        default per-request wall-clock deadline\n"
      "                         (0 = untimed; requests may override)\n"
      "  --mem-limit-mb=N       default per-request array-memory budget\n"
      "                         (0 = unlimited; requests may override)\n"
      "  --cache-entries=N      artifact cache capacity (default 64)\n");
}

bool parseUnsigned(const char *S, uint64_t &Out) {
  if (!*S)
    return false;
  char *End = nullptr;
  errno = 0;
  unsigned long long V = std::strtoull(S, &End, 10);
  if (errno != 0 || *End || S[0] == '-')
    return false;
  Out = V;
  return true;
}

int badValue(const std::string &Flag, const std::string &Value,
             const char *Expected) {
  std::fprintf(stderr, "mfpard: bad value '%s' for %s (expected %s)\n\n",
               Value.c_str(), Flag.c_str(), Expected);
  usage();
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  server::DaemonConfig Config;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto numFlag = [&](const char *Prefix, uint64_t &Out,
                       const char *Expected) -> int {
      std::string Value = Arg.substr(std::strlen(Prefix));
      uint64_t V;
      if (!parseUnsigned(Value.c_str(), V))
        return badValue(std::string(Prefix, std::strlen(Prefix) - 1), Value,
                        Expected);
      Out = V;
      return -1;
    };
    uint64_t Tmp;
    int Rc;
    if (Arg.rfind("--socket=", 0) == 0) {
      Config.SocketPath = Arg.substr(9);
    } else if (Arg.rfind("--pool-threads=", 0) == 0) {
      if ((Rc = numFlag("--pool-threads=", Tmp, "a positive integer")) >= 0)
        return Rc;
      if (Tmp == 0 || Tmp > 256)
        return badValue("--pool-threads", std::to_string(Tmp), "1..256");
      Config.PoolThreads = static_cast<unsigned>(Tmp);
    } else if (Arg.rfind("--service-threads=", 0) == 0) {
      if ((Rc = numFlag("--service-threads=", Tmp, "a positive integer")) >=
          0)
        return Rc;
      if (Tmp == 0 || Tmp > 256)
        return badValue("--service-threads", std::to_string(Tmp), "1..256");
      Config.ServiceThreads = static_cast<unsigned>(Tmp);
    } else if (Arg.rfind("--queue-cap=", 0) == 0) {
      if ((Rc = numFlag("--queue-cap=", Tmp, "a non-negative integer")) >= 0)
        return Rc;
      Config.QueueCap = static_cast<size_t>(Tmp);
    } else if (Arg.rfind("--deadline-ms=", 0) == 0) {
      if ((Rc = numFlag("--deadline-ms=", Tmp, "milliseconds")) >= 0)
        return Rc;
      Config.DefaultDeadlineMs = Tmp;
    } else if (Arg.rfind("--mem-limit-mb=", 0) == 0) {
      if ((Rc = numFlag("--mem-limit-mb=", Tmp, "megabytes")) >= 0)
        return Rc;
      Config.DefaultMemLimitMb = Tmp;
    } else if (Arg.rfind("--cache-entries=", 0) == 0) {
      if ((Rc = numFlag("--cache-entries=", Tmp, "a positive integer")) >= 0)
        return Rc;
      if (Tmp == 0)
        return badValue("--cache-entries", "0", "a positive integer");
      Config.CacheEntries = static_cast<size_t>(Tmp);
    } else if (Arg == "--help" || Arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "mfpard: unknown flag '%s'\n\n", Arg.c_str());
      usage();
      return 2;
    }
  }

  if (Config.SocketPath.empty()) {
    std::fprintf(stderr, "mfpard: --socket=PATH is required\n\n");
    usage();
    return 2;
  }

  server::Daemon D(Config);
  std::string Err;
  if (!D.start(&Err)) {
    std::fprintf(stderr, "mfpard: %s\n", Err.c_str());
    return 1;
  }
  std::fprintf(stderr,
               "mfpard: listening on %s (%u service threads, pool %u)\n",
               Config.SocketPath.c_str(), Config.ServiceThreads,
               Config.PoolThreads);

  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);

  // Block until a client sends {"op":"shutdown"} or a signal arrives. A
  // signal cannot wake a condition-variable wait, so poll in short slices.
  while (!GotSignal) {
    if (D.waitForShutdown(200))
      break;
  }

  std::fprintf(stderr, "mfpard: shutting down\n");
  D.stop();
  return 0;
}
