//===- examples/quickstart.cpp - Five-minute tour of the library ----------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
//
// Quickstart: parse a small program with an irregular access, run the
// parallelization pipeline with and without the irregular array access
// analyses, and execute it.
//
//   $ ./quickstart
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "mf/Parser.h"
#include "xform/Parallelizer.h"

#include <cstdio>

using namespace iaa;

// Fig. 3 of the paper: a sparse-matrix traversal in Compressed Column
// Storage. The subscript data(offset(i)+j-1) has no closed form in the loop
// indices — classical dependence tests give up on loop d200.
static const char *Source = R"(program quickstart
  integer n, i, j
  real data(2200), total
  integer offset(201), length(200)
  n = 200
  do i = 1, n
    length(i) = mod(i * 7, 10) + 1
  end do
  offset(1) = 1
  do i = 1, n
    offset(i + 1) = offset(i) + length(i)
  end do
  d200: do i = 1, n
    do j = 1, length(i)
      data(offset(i) + j - 1) = i * 0.5 + j
    end do
  end do
  total = 0.0
  do i = 1, n
    total = total + data(offset(i))
  end do
end)";

int main() {
  // 1. Parse.
  DiagnosticEngine Diags;
  std::unique_ptr<mf::Program> P = mf::parseProgram(Source, Diags);
  if (!P) {
    std::fprintf(stderr, "parse failed:\n%s", Diags.str().c_str());
    return 1;
  }
  std::printf("parsed %u statements, %u symbols\n", P->numStmts(),
              P->numSymbols());

  // 2. Analyze twice: classical-only, then with the paper's analyses.
  {
    auto P2 = mf::parseProgram(Source, Diags);
    xform::PipelineResult Base =
        xform::parallelize(*P2, xform::PipelineMode::NoIAA);
    const xform::LoopReport *R = Base.reportFor("d200");
    std::printf("\nwithout irregular access analysis: d200 is %s (%s)\n",
                R->Parallel ? "PARALLEL" : "serial", R->WhyNot.c_str());
  }

  xform::PipelineResult Full =
      xform::parallelize(*P, xform::PipelineMode::Full);
  const xform::LoopReport *R = Full.reportFor("d200");
  std::printf("with irregular access analysis:    d200 is %s\n",
              R->Parallel ? "PARALLEL" : "serial");
  for (const auto &D : R->DepOutcomes) {
    std::printf("  array %s: %s via the %s test", D.Array->name().c_str(),
                D.Independent ? "independent" : "dependent",
                deptest::testKindName(D.Test));
    for (const std::string &Prop : D.PropertiesUsed)
      std::printf(" [%s]", Prop.c_str());
    std::printf("\n");
  }

  // 3. Execute serially and in parallel; results must agree.
  interp::Interpreter I(*P);
  interp::Memory Serial = I.run({});

  interp::ExecOptions Par;
  Par.Plans = &Full;
  Par.Threads = 4;
  interp::ExecStats Stats;
  interp::Memory Parallel = I.run(Par, &Stats);

  std::printf("\nserial checksum   = %.6f\n", Serial.checksum());
  std::printf("parallel checksum = %.6f (4 threads, %u parallel loop "
              "executions)\n",
              Parallel.checksum(), Stats.ParallelLoopRuns);
  std::printf("%s\n", Serial.checksum() == Parallel.checksum()
                          ? "results match"
                          : "RESULTS DIVERGE");
  return 0;
}
