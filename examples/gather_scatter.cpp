//===- examples/gather_scatter.cpp - Gather/scatter privatization ---------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
//
// The BDNA/P3M scenario (Sec. 4, Fig. 14): each iteration of the outer loop
// gathers a neighbor list, clears a work array, scatters contributions
// through the gathered indices, and consumes them. This example shows the
// three analyses cooperating:
//
//   - the single-indexed access analysis proves the gather loop writes
//     ind[1:q] consecutively (Sec. 2.2);
//   - the gather-loop recognizer adds injectivity and the value bounds
//     [1, p] (Sec. 4);
//   - the privatizer uses the closed-form bound to cover the indirect
//     reads of the work array (Sec. 5.1.4) and parallelizes the outer loop.
//
//===----------------------------------------------------------------------===//

#include "analysis/GatherLoop.h"
#include "analysis/SingleIndex.h"
#include "interp/Interpreter.h"
#include "mf/Parser.h"
#include "xform/Parallelizer.h"

#include <cstdio>

using namespace iaa;
using namespace iaa::analysis;

static const char *Source = R"(program nbody
  integer np, p, i, j, q, jj
  integer nbr(1000)
  real work(1000), charge(1000), dist(1000), force(200)
  np = 200
  p = 1000
  do j = 1, p
    charge(j) = mod(j * 29, 23) * 0.125 + 0.5
    dist(j) = mod(j * 31, 17) * 0.0625 + 0.25
  end do
  do i = 1, np
    force(i) = 0.0
  end do
  outer: do i = 1, np
    q = 0
    gather: do j = 1, p
      if (mod(j * 13 + i, 3) == 0) then
        q = q + 1
        nbr(q) = j
      end if
    end do
    do j = 1, p
      work(j) = 0.0
    end do
    do j = 1, q
      jj = nbr(j)
      work(jj) = work(jj) + charge(jj) * 0.5
    end do
    do j = 1, q
      jj = nbr(j)
      force(i) = force(i) + work(jj) / (dist(jj) + 1.0)
    end do
  end do
end)";

int main() {
  DiagnosticEngine Diags;
  std::unique_ptr<mf::Program> P = mf::parseProgram(Source, Diags);
  if (!P) {
    std::fprintf(stderr, "parse failed:\n%s", Diags.str().c_str());
    return 1;
  }

  SymbolUses Uses(*P);
  const mf::Symbol *Nbr = P->findSymbol("nbr");
  mf::DoStmt *Gather = P->findLoop("gather");

  // --- The single-indexed view of the gather loop.
  SingleIndexAnalysis SIA(Gather->body(), Uses);
  SingleIndexResult SR = SIA.classify(Nbr);
  std::printf("nbr() in the gather loop: single-indexed=%s (by %s), "
              "consecutively-written=%s\n",
              SR.IsSingleIndexed ? "yes" : "no",
              SR.IndexVar ? SR.IndexVar->name().c_str() : "-",
              SR.ConsecutivelyWritten ? "yes" : "no");

  // --- Full gather-loop recognition (Sec. 4's five conditions).
  GatherLoopInfo GI = analyzeGatherLoop(Gather, Nbr, Uses);
  std::printf("index gathering loop: %s; injective=%s; values in %s\n",
              GI.IsGatherLoop ? "recognized" : "not recognized",
              GI.Injective ? "yes" : "no", GI.ValueBounds.str().c_str());

  // --- The pipeline consumes both through the privatizer.
  xform::PipelineResult Pipe =
      xform::parallelize(*P, xform::PipelineMode::Full);
  const xform::LoopReport *Rep = Pipe.reportFor("outer");
  std::printf("\nouter loop: %s\n", Rep->Parallel ? "PARALLEL" : "serial");
  for (const auto &Pv : Rep->PrivOutcomes) {
    std::printf("  %-6s -> %s (%s)", Pv.Array->name().c_str(),
                Pv.Privatizable ? "private" : "exposed", Pv.Reason.c_str());
    for (const std::string &Prop : Pv.PropertiesUsed)
      std::printf(" [%s]", Prop.c_str());
    std::printf("\n");
  }

  // --- Execute and compare (excluding dead private arrays, whose post-loop
  // contents are unspecified, as with OpenMP PRIVATE).
  interp::Interpreter I(*P);
  interp::Memory Serial = I.run({});
  interp::ExecOptions Par;
  Par.Plans = &Pipe;
  Par.Threads = 4;
  interp::Memory Parallel = I.run(Par);
  std::set<unsigned> Dead = interp::deadPrivateIds(Pipe);
  double A = Serial.checksumExcluding(Dead);
  double B = Parallel.checksumExcluding(Dead);
  std::printf("\nserial/parallel checksums: %.6f / %.6f (%s)\n", A, B,
              A == B ? "match" : "DIVERGE");
  return 0;
}
