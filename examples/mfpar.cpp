//===- examples/mfpar.cpp - A command-line MF parallelizer ----------------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
//
// mfpar: a small driver exposing the whole toolchain on MF source files.
//
//   mfpar FILE.mf [--mode=full|noiaa|apo] [--run[=THREADS]] [--dump]
//         [--schedule=static|dynamic|guided] [--chunk=N]
//         [--engine=interp|vm|both] [--locality=off|model|reorder]
//         [--audit=off|warn|strict] [--race-check] [--runtime-check[=on|off]]
//         [--on-fault=abort|report|replay] [--stats] [--trace=out.json]
//         [--remarks=out.jsonl] [--profile[=out.jsonl]]
//
//   --mode     pipeline configuration (default full)
//   --run      execute the program (optionally in parallel with N threads)
//   --schedule loop scheduling policy for parallel runs (default static)
//   --chunk    chunk size for the scheduler (default: policy-dependent)
//   --engine   execution engine for parallel loop bodies (default interp):
//              vm compiles each certified loop body to register bytecode
//              with fused gather/scatter superinstructions and runs the
//              chunks through the VM (loops the compiler cannot lower keep
//              the tree walk); both runs the interpreter first as a
//              reference, then the VM, and reports a fault if the final
//              memory images or fault verdicts diverge
//   --locality locality-aware scheduling (default off): model lets the
//              static footprint model pick schedule, chunk size, and
//              line-aligned chunk boundaries per loop (overriding
//              --schedule/--chunk for parallel loops); reorder additionally
//              has the inspector bucket runtime-checked gather loops'
//              iterations by target cache line and execute them in the
//              permuted order (original last iteration stays last, so
//              results are bit-identical; implies the model's picks)
//   --dump     print the normalized program after the transformation passes
//   --annotate print the program with !$iaa parallel do directives
//   --audit    independently re-certify every parallel-marked loop before
//              running it: warn reports the verdicts, strict additionally
//              demotes every non-certified loop to serial (default off)
//   --race-check run the program serially under the shadow-memory race
//              checker and report every cross-iteration conflict the plans
//              fail to discharge (exit code 3 when one is found)
//   --runtime-check inspector/executor mode for --run: loops the pipeline
//              emitted as parallel *conditional on runtime checks* have
//              their index arrays inspected before first execution and run
//              parallel when every check passes (default off; plain
//              --runtime-check means on)
//   --on-fault what a parallel-worker fault does to the loop (default
//              replay): replay rolls the loop's shared write set back to
//              the pre-dispatch snapshot and re-executes it serially;
//              report rolls back and stops with the fault; abort skips the
//              snapshot and aborts the process (legacy behavior)
//   --stats    print the statistic counters and per-phase timings
//   --trace    write a Chrome trace-event JSON file (chrome://tracing)
//   --remarks  write optimization remarks as JSONL, one record per loop
//   --profile  sample memory accesses during the run (implies --run):
//              prints a per-loop health report (dispatch verdict, access
//              locality, imbalance, analysis-cost share) and writes the
//              full profile — reuse-distance histograms, cache-line
//              footprints, per-worker chunk timelines, optional hardware
//              counters — as JSONL (default profile.jsonl)
//
// With no file argument it analyzes the paper's Fig. 1(a) example.
//
// Exit codes: 0 success; 1 cannot open or parse the input; 2 bad flag or
// flag value; 3 the race checker found conflicts; 4 the program faulted at
// runtime (out-of-bounds subscript, division by zero, bad extent, ...).
//
//===----------------------------------------------------------------------===//

#include "benchprogs/Benchmarks.h"
#include "interp/Interpreter.h"
#include "mf/Parser.h"
#include "server/Watchdog.h"
#include "prof/Profiler.h"
#include "support/Remarks.h"
#include "support/Timer.h"
#include "support/Statistic.h"
#include "support/Trace.h"
#include "verify/PlanAudit.h"
#include "xform/Parallelizer.h"
#include "xform/Postpass.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace iaa;

static int usage() {
  std::fprintf(stderr,
               "usage: mfpar [FILE.mf] [--mode=full|noiaa|apo] "
               "[--run[=THREADS]] [--schedule=static|dynamic|guided] "
               "[--chunk=N] [--engine=interp|vm|both] "
               "[--locality=off|model|reorder] "
               "[--audit=off|warn|strict] [--race-check] "
               "[--runtime-check[=on|off]] [--on-fault=abort|report|replay] "
               "[--deadline-ms=N] [--mem-limit-mb=N] "
               "[--dump] [--annotate] [--stats] "
               "[--trace=FILE] [--remarks=FILE] [--profile[=FILE]]\n");
  return 2;
}

/// Rejecting an unrecognized flag value silently (exit 2 with nothing but
/// the usage line) cost real debugging time: --schedule=gided would run the
/// default schedule's numbers. Every value error now names the flag, the
/// offending value, and what would have been accepted.
static int badValue(const char *Flag, const std::string &Value,
                    const char *Expected) {
  std::fprintf(stderr, "mfpar: invalid value '%s' for %s (expected %s)\n",
               Value.c_str(), Flag, Expected);
  return usage();
}

/// Strict base-10 parse of an entire string: "4x" and "" are errors, not 4
/// and 0 the way atoi/atoll would read them.
static bool parseInt(const std::string &S, int64_t &Out) {
  if (S.empty())
    return false;
  errno = 0;
  char *End = nullptr;
  long long V = std::strtoll(S.c_str(), &End, 10);
  if (errno != 0 || End != S.c_str() + S.size())
    return false;
  Out = V;
  return true;
}

int main(int argc, char **argv) {
  std::string Path;
  xform::PipelineMode Mode = xform::PipelineMode::Full;
  bool Run = false;
  unsigned Threads = 4;
  interp::Schedule Sched = interp::Schedule::Static;
  int64_t ChunkSize = 0;
  interp::ExecEngine Engine = interp::ExecEngine::Interp;
  sched::LocalityMode Locality = sched::LocalityMode::Off;
  verify::AuditMode Audit = verify::AuditMode::Off;
  bool RaceCheck = false;
  bool RuntimeChecks = false;
  interp::FaultAction OnFault = interp::FaultAction::Replay;
  int64_t DeadlineMs = 0;  // 0 = untimed
  int64_t MemLimitMb = 0;  // 0 = unlimited
  bool Dump = false;
  bool Annotate = false;
  bool Stats = false;
  std::string TracePath;
  std::string RemarksPath;
  bool Profile = false;
  std::string ProfilePath = "profile.jsonl";

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("--mode=", 0) == 0) {
      std::string M = Arg.substr(7);
      if (M == "full")
        Mode = xform::PipelineMode::Full;
      else if (M == "noiaa")
        Mode = xform::PipelineMode::NoIAA;
      else if (M == "apo")
        Mode = xform::PipelineMode::Apo;
      else
        return badValue("--mode", M, "full, noiaa, or apo");
    } else if (Arg == "--run") {
      Run = true;
    } else if (Arg.rfind("--run=", 0) == 0) {
      Run = true;
      int64_t T = 0;
      if (!parseInt(Arg.substr(6), T) || T <= 0 || T > 1024)
        return badValue("--run", Arg.substr(6),
                        "a thread count between 1 and 1024");
      Threads = static_cast<unsigned>(T);
    } else if (Arg.rfind("--schedule=", 0) == 0) {
      if (!interp::parseSchedule(Arg.substr(11), Sched))
        return badValue("--schedule", Arg.substr(11),
                        "static, dynamic, or guided");
    } else if (Arg.rfind("--chunk=", 0) == 0) {
      if (!parseInt(Arg.substr(8), ChunkSize) || ChunkSize <= 0)
        return badValue("--chunk", Arg.substr(8), "a positive integer");
    } else if (Arg.rfind("--engine=", 0) == 0) {
      if (!interp::parseEngine(Arg.substr(9), Engine))
        return badValue("--engine", Arg.substr(9), "interp, vm, or both");
    } else if (Arg.rfind("--locality=", 0) == 0) {
      if (!sched::parseLocalityMode(Arg.substr(11), Locality))
        return badValue("--locality", Arg.substr(11),
                        "off, model, or reorder");
    } else if (Arg.rfind("--audit=", 0) == 0) {
      if (!verify::parseAuditMode(Arg.substr(8), Audit))
        return badValue("--audit", Arg.substr(8), "off, warn, or strict");
    } else if (Arg == "--race-check") {
      RaceCheck = true;
    } else if (Arg == "--runtime-check") {
      RuntimeChecks = true;
    } else if (Arg.rfind("--runtime-check=", 0) == 0) {
      std::string V = Arg.substr(16);
      if (V == "on")
        RuntimeChecks = true;
      else if (V == "off")
        RuntimeChecks = false;
      else
        return badValue("--runtime-check", V, "on or off");
    } else if (Arg.rfind("--on-fault=", 0) == 0) {
      if (!interp::parseFaultAction(Arg.substr(11), OnFault))
        return badValue("--on-fault", Arg.substr(11),
                        "abort, report, or replay");
    } else if (Arg.rfind("--deadline-ms=", 0) == 0) {
      if (!parseInt(Arg.substr(14), DeadlineMs) || DeadlineMs <= 0 ||
          DeadlineMs > 86400000)
        return badValue("--deadline-ms", Arg.substr(14),
                        "a positive number of milliseconds (at most a day)");
    } else if (Arg.rfind("--mem-limit-mb=", 0) == 0) {
      if (!parseInt(Arg.substr(15), MemLimitMb) || MemLimitMb <= 0 ||
          MemLimitMb > (int64_t(1) << 30))
        return badValue("--mem-limit-mb", Arg.substr(15),
                        "a positive number of megabytes");
    } else if (Arg == "--dump") {
      Dump = true;
    } else if (Arg == "--annotate") {
      Annotate = true;
    } else if (Arg == "--stats") {
      Stats = true;
    } else if (Arg.rfind("--trace=", 0) == 0) {
      TracePath = Arg.substr(8);
      if (TracePath.empty())
        return usage();
    } else if (Arg.rfind("--remarks=", 0) == 0) {
      RemarksPath = Arg.substr(10);
      if (RemarksPath.empty())
        return usage();
    } else if (Arg == "--profile") {
      Profile = true;
    } else if (Arg.rfind("--profile=", 0) == 0) {
      Profile = true;
      ProfilePath = Arg.substr(10);
      if (ProfilePath.empty())
        return badValue("--profile", ProfilePath,
                        "a non-empty output path");
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "mfpar: unknown option '%s'\n", Arg.c_str());
      return usage();
    } else {
      Path = Arg;
    }
  }

  if (Profile)
    Run = true; // A profile without a run would be empty.

  std::string Source;
  if (Path.empty()) {
    std::printf("no input file; analyzing the paper's Fig. 1(a) example\n\n");
    Source = benchprogs::fig1aSource();
  } else {
    std::ifstream In(Path);
    if (!In) {
      std::fprintf(stderr, "mfpar: cannot open %s\n", Path.c_str());
      return 1;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Source = Buf.str();
  }

  if (!TracePath.empty())
    trace::enable(true);

  DiagnosticEngine Diags;
  std::unique_ptr<mf::Program> P = mf::parseProgram(Source, Diags);
  if (!P) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }

  prof::Session ProfSession;
  xform::PipelineResult R = xform::parallelize(*P, Mode);
  if (Profile)
    ProfSession.notePhase("pipeline", R.TotalSeconds);
  std::printf("pipeline: %s\n", xform::pipelineModeName(Mode));
  std::printf("passes: %u constants propagated, %u forward substitutions, "
              "%u dead statements removed, %u inductions substituted\n",
              R.ConstantsPropagated, R.ForwardSubstitutions, R.DeadRemoved,
              R.InductionsSubstituted);
  std::printf("property analysis: %.2f ms of %.2f ms pipeline time\n\n",
              R.PropertySeconds * 1e3, R.TotalSeconds * 1e3);
  std::printf("%s", R.str().c_str());

  if (Audit != verify::AuditMode::Off) {
    Timer AuditTimer;
    verify::PlanAuditor Auditor(*P);
    verify::AuditResult A = Auditor.audit(R);
    unsigned Demoted = verify::recordAudit(R, A, Audit);
    if (Profile)
      ProfSession.notePhase("audit", AuditTimer.seconds());
    std::printf("\n--- plan audit (%s) ---\n%s",
                verify::auditModeName(Audit), A.str().c_str());
    if (Demoted)
      std::printf("%u non-certified loop%s demoted to serial\n", Demoted,
                  Demoted == 1 ? "" : "s");
  }

  // Reports a run that ended on an unrecovered runtime fault. Exit code 4,
  // except resource-limit faults, which get their own codes so scripts can
  // tell "the program is wrong" from "the budget was wrong": 5 for a blown
  // --deadline-ms, 6 for a blown --mem-limit-mb. Under --on-fault=abort the
  // process aborts instead (legacy behavior — the interpreter itself always
  // unwinds cleanly, the abort is ours).
  auto ReportFault = [&OnFault](const char *What,
                                const interp::FaultState &FS) {
    std::fprintf(stderr, "mfpar: %s faulted: %s\n", What,
                 FS.Fault.str().c_str());
    if (OnFault == interp::FaultAction::Abort)
      std::abort();
    switch (FS.Fault.Kind) {
    case interp::FaultKind::DeadlineExceeded:
      return 5;
    case interp::FaultKind::ResourceExhausted:
      return 6;
    default:
      return 4;
    }
  };

  if (RaceCheck) {
    interp::Interpreter I(*P);
    interp::ExecOptions Opts;
    Opts.Plans = &R;
    Opts.RaceCheck = true;
    Opts.OnFault = OnFault;
    interp::ExecStats CheckStats;
    I.run(Opts, &CheckStats);
    if (I.faultState().Faulted)
      return ReportFault("race-check run", I.faultState());
    std::printf("\n--- shadow-memory race check ---\n");
    if (CheckStats.RacesFound == 0) {
      std::printf("no cross-iteration conflicts observed\n");
    } else {
      for (const interp::RaceRecord &Rec : CheckStats.Races)
        std::printf("%s\n", Rec.str().c_str());
      if (CheckStats.RacesFound > CheckStats.Races.size())
        std::printf("... and %zu more\n",
                    CheckStats.RacesFound - CheckStats.Races.size());
      std::printf("%u conflict%s found\n", CheckStats.RacesFound,
                  CheckStats.RacesFound == 1 ? "" : "s");
      return 3;
    }
  }

  if (Dump) {
    std::printf("\n--- normalized program ---\n%s", P->str().c_str());
  }
  if (Annotate) {
    std::printf("\n--- annotated program (postpass) ---\n%s",
                xform::emitAnnotatedSource(*P, R).c_str());
  }

  if (Run) {
    // One wall-clock deadline covers the whole execution phase (serial +
    // parallel), the same watchdog the daemon arms per request. The token
    // is shared so a timer that fires during the serial run also cancels
    // the parallel one.
    auto Cancel = std::make_shared<interp::CancelToken>();
    server::Watchdog Watch;
    server::Watchdog::Scope Deadline(Watch, static_cast<uint64_t>(DeadlineMs),
                                     Cancel);
    size_t MemLimitBytes = static_cast<size_t>(MemLimitMb) << 20;

    interp::Interpreter I(*P);
    interp::ExecOptions Seq;
    Seq.OnFault = OnFault;
    Seq.Cancel = Cancel.get();
    Seq.MemLimitBytes = MemLimitBytes;
    interp::ExecStats SeqStats;
    interp::Memory Serial = I.run(Seq, &SeqStats);
    if (I.faultState().Faulted)
      return ReportFault("serial run", I.faultState());
    std::printf("\nserial run: %.3fs, checksum %.6f\n",
                SeqStats.TotalSeconds, Serial.checksum());
    interp::ExecOptions Par;
    Par.Plans = &R;
    Par.Threads = Threads;
    Par.Sched = Sched;
    Par.ChunkSize = ChunkSize;
    Par.Locality = Locality;
    Par.Engine = Engine;
    Par.RuntimeChecks = RuntimeChecks;
    Par.OnFault = OnFault;
    Par.Cancel = Cancel.get();
    Par.MemLimitBytes = MemLimitBytes;
    Par.Simulate = true; // Works on any host core count.
    if (Profile)
      Par.Prof = &ProfSession;
    interp::ExecStats ParStats;
    interp::Memory Parallel = I.run(Par, &ParStats);
    const interp::FaultState &ParFS = I.faultState();
    if (!ParStats.FaultRemarks.empty()) {
      std::printf("\n--- fault containment ---\n%s",
                  remarksText(ParStats.FaultRemarks).c_str());
      std::printf("%s\n", ParFS.str().c_str());
      R.Remarks.insert(R.Remarks.end(), ParStats.FaultRemarks.begin(),
                       ParStats.FaultRemarks.end());
    }
    if (ParFS.Faulted)
      return ReportFault("parallel run", ParFS);
    std::set<unsigned> Dead = interp::deadPrivateIds(R);
    std::printf("parallel run (%u simulated processors, %s schedule): %.3fs "
                "(speedup %.2f), checksum %.6f (%s)\n",
                Threads, interp::scheduleName(Sched), ParStats.TotalSeconds,
                SeqStats.TotalSeconds / ParStats.TotalSeconds,
                Parallel.checksumExcluding(Dead),
                Serial.checksumExcluding(Dead) ==
                        Parallel.checksumExcluding(Dead)
                    ? "matches serial"
                    : "DIVERGES");
    if (Engine != interp::ExecEngine::Interp) {
      std::printf("engine (%s): %u loop%s compiled to bytecode, %u bailout%s "
                  "to the tree walk, %u vm dispatch%s, %u vm chunk%s\n",
                  interp::engineName(Engine), ParStats.VmLoopsCompiled,
                  ParStats.VmLoopsCompiled == 1 ? "" : "s",
                  ParStats.VmBailouts, ParStats.VmBailouts == 1 ? "" : "s",
                  ParStats.VmParallelLoopRuns,
                  ParStats.VmParallelLoopRuns == 1 ? "" : "es",
                  ParStats.VmChunksRun, ParStats.VmChunksRun == 1 ? "" : "s");
      if (Engine == interp::ExecEngine::Both)
        std::printf("engine (both): %u differential comparison%s, "
                    "%u mismatch%s\n",
                    ParStats.BothComparisons,
                    ParStats.BothComparisons == 1 ? "" : "s",
                    ParStats.BothMismatches,
                    ParStats.BothMismatches == 1 ? "" : "es");
    }
    if (Locality != sched::LocalityMode::Off) {
      std::printf("locality (%s): %u model pick%s, %u reorder%s built, "
                  "%u cached\n",
                  sched::localityModeName(Locality),
                  ParStats.LocalityModelPicks,
                  ParStats.LocalityModelPicks == 1 ? "" : "s",
                  ParStats.LocalityReorders,
                  ParStats.LocalityReorders == 1 ? "" : "s",
                  ParStats.LocalityReordersCached);
    }
    if (RuntimeChecks) {
      std::printf("runtime checks: %u inspection%s run, %u cached verdict%s, "
                  "%u serial fallback%s\n",
                  ParStats.InspectionsRun,
                  ParStats.InspectionsRun == 1 ? "" : "s",
                  ParStats.InspectionsCached,
                  ParStats.InspectionsCached == 1 ? "" : "s",
                  ParStats.RuntimeCheckFails,
                  ParStats.RuntimeCheckFails == 1 ? "" : "s");
      for (const interp::ExecStats::RuntimeDecision &D :
           ParStats.RuntimeDecisions)
        std::printf("  %s\n", D.str().c_str());
    }
  }

  if (Profile) {
    std::printf("\n%s", ProfSession.healthText(&R).c_str());
    if (!ProfSession.writeJsonl(ProfilePath, &R)) {
      std::fprintf(stderr, "mfpar: cannot write %s\n", ProfilePath.c_str());
      return 1;
    }
    std::printf("profile written to %s (%zu loop records%s)\n",
                ProfilePath.c_str(), ProfSession.invocations().size(),
                ProfSession.countersAvailable() ? ", hardware counters on"
                                                : "");
  }

  if (!RemarksPath.empty()) {
    std::printf("\n--- optimization remarks ---\n%s",
                remarksText(R.Remarks).c_str());
    std::ofstream Out(RemarksPath);
    if (!Out) {
      std::fprintf(stderr, "mfpar: cannot write %s\n", RemarksPath.c_str());
      return 1;
    }
    Out << remarksJsonl(R.Remarks);
    std::printf("remarks written to %s (%zu records)\n", RemarksPath.c_str(),
                R.Remarks.size());
  }

  if (Stats) {
    std::printf("\n--- phase timings ---\n");
    for (const auto &[Phase, Secs] : R.PhaseSeconds)
      std::printf("%10.3f ms  %s\n", Secs * 1e3, Phase.c_str());
    std::printf("\n--- statistics ---\n%s", stat::table(true).c_str());
  }

  if (!TracePath.empty()) {
    if (!trace::writeJson(TracePath)) {
      std::fprintf(stderr, "mfpar: cannot write %s\n", TracePath.c_str());
      return 1;
    }
    std::printf("\ntrace written to %s (%zu events); load it in "
                "chrome://tracing or https://ui.perfetto.dev\n",
                TracePath.c_str(), trace::eventCount());
  }
  return 0;
}
