//===- examples/stack_walker.cpp - Array stacks in tree traversals --------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
//
// The TREE scenario (Sec. 2.3, Fig. 1(b)): an iterative tree walk keeps its
// worklist in an array used as a stack. The stack pointer is irregular — a
// conditional push/pop pattern with no closed form — but the Table 1
// discipline proves the array behaves as a stack, and a stack that is reset
// at the top of every iteration is privatizable.
//
//===----------------------------------------------------------------------===//

#include "analysis/SingleIndex.h"
#include "interp/Interpreter.h"
#include "mf/Parser.h"
#include "xform/Parallelizer.h"

#include <cstdio>

using namespace iaa;
using namespace iaa::analysis;

static const char *Source = R"(program walker
  integer nbody, nn, i, node, sptr
  integer left(511), right(511), stack(511)
  real mass(511), acc(256)
  real s
  procedure buildtree
    do i = 1, nn
      left(i) = i * 2
      right(i) = i * 2 + 1
      if (left(i) > nn) then
        left(i) = 0
      end if
      if (right(i) > nn) then
        right(i) = 0
      end if
      mass(i) = mod(i * 5, 7) * 0.5 + 1.0
    end do
  end
  nbody = 256
  nn = 511
  call buildtree
  do i = 1, nbody
    acc(i) = 0.0
  end do
  walk: do i = 1, nbody
    s = 0.0
    sptr = 0
    sptr = sptr + 1
    stack(sptr) = 1
    while (sptr > 0)
      node = stack(sptr)
      sptr = sptr - 1
      s = s + mass(node) * (mod(node + i, 5) + 1)
      if (left(node) > 0) then
        sptr = sptr + 1
        stack(sptr) = left(node)
      end if
      if (right(node) > 0) then
        sptr = sptr + 1
        stack(sptr) = right(node)
      end if
    end while
    acc(i) = acc(i) + s * 0.001
  end do
end)";

int main() {
  DiagnosticEngine Diags;
  std::unique_ptr<mf::Program> P = mf::parseProgram(Source, Diags);
  if (!P) {
    std::fprintf(stderr, "parse failed:\n%s", Diags.str().c_str());
    return 1;
  }

  // --- Classify stack() within the walk loop's body (Table 1 checks).
  SymbolUses Uses(*P);
  mf::DoStmt *Walk = P->findLoop("walk");
  SingleIndexAnalysis SIA(Walk->body(), Uses);
  SingleIndexResult SR = SIA.classify(P->findSymbol("stack"));
  std::printf("stack() in the walk body:\n");
  std::printf("  single-indexed by: %s\n",
              SR.IndexVar ? SR.IndexVar->name().c_str() : "-");
  std::printf("  stack access:      %s\n", SR.StackAccess ? "yes" : "no");
  if (SR.StackBottom)
    std::printf("  bottom value:      %s\n", SR.StackBottom->str().c_str());

  // --- The pipeline privatizes the stack and parallelizes the walk.
  xform::PipelineResult Pipe =
      xform::parallelize(*P, xform::PipelineMode::Full);
  const xform::LoopReport *Rep = Pipe.reportFor("walk");
  std::printf("\nwalk loop: %s\n", Rep->Parallel ? "PARALLEL" : "serial");
  for (const auto &Pv : Rep->PrivOutcomes)
    std::printf("  %-6s -> %s (%s)\n", Pv.Array->name().c_str(),
                Pv.Privatizable ? "private" : "exposed", Pv.Reason.c_str());

  // Without the stack analysis the loop must stay serial.
  auto P2 = mf::parseProgram(Source, Diags);
  xform::PipelineResult Base =
      xform::parallelize(*P2, xform::PipelineMode::NoIAA);
  std::printf("without IAA: walk is %s\n",
              Base.reportFor("walk")->Parallel ? "PARALLEL" : "serial");

  // --- Execute.
  interp::Interpreter I(*P);
  interp::Memory Serial = I.run({});
  interp::ExecOptions Par;
  Par.Plans = &Pipe;
  Par.Threads = 4;
  interp::Memory Parallel = I.run(Par);
  std::set<unsigned> Dead = interp::deadPrivateIds(Pipe);
  double A = Serial.checksumExcluding(Dead);
  double B = Parallel.checksumExcluding(Dead);
  std::printf("\nserial/parallel checksums: %.6f / %.6f (%s)\n", A, B,
              A == B ? "match" : "DIVERGE");
  return 0;
}
