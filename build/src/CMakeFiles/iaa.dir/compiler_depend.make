# Empty compiler generated dependencies file for iaa.
# This may be replaced when dependencies are built.
