file(REMOVE_RECURSE
  "libiaa.a"
)
