
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/ArrayProperty.cpp" "src/CMakeFiles/iaa.dir/analysis/ArrayProperty.cpp.o" "gcc" "src/CMakeFiles/iaa.dir/analysis/ArrayProperty.cpp.o.d"
  "/root/repo/src/analysis/BoundedDfs.cpp" "src/CMakeFiles/iaa.dir/analysis/BoundedDfs.cpp.o" "gcc" "src/CMakeFiles/iaa.dir/analysis/BoundedDfs.cpp.o.d"
  "/root/repo/src/analysis/GatherLoop.cpp" "src/CMakeFiles/iaa.dir/analysis/GatherLoop.cpp.o" "gcc" "src/CMakeFiles/iaa.dir/analysis/GatherLoop.cpp.o.d"
  "/root/repo/src/analysis/GlobalConstants.cpp" "src/CMakeFiles/iaa.dir/analysis/GlobalConstants.cpp.o" "gcc" "src/CMakeFiles/iaa.dir/analysis/GlobalConstants.cpp.o.d"
  "/root/repo/src/analysis/PropertySolver.cpp" "src/CMakeFiles/iaa.dir/analysis/PropertySolver.cpp.o" "gcc" "src/CMakeFiles/iaa.dir/analysis/PropertySolver.cpp.o.d"
  "/root/repo/src/analysis/SingleIndex.cpp" "src/CMakeFiles/iaa.dir/analysis/SingleIndex.cpp.o" "gcc" "src/CMakeFiles/iaa.dir/analysis/SingleIndex.cpp.o.d"
  "/root/repo/src/analysis/SymbolUses.cpp" "src/CMakeFiles/iaa.dir/analysis/SymbolUses.cpp.o" "gcc" "src/CMakeFiles/iaa.dir/analysis/SymbolUses.cpp.o.d"
  "/root/repo/src/benchprogs/Benchmarks.cpp" "src/CMakeFiles/iaa.dir/benchprogs/Benchmarks.cpp.o" "gcc" "src/CMakeFiles/iaa.dir/benchprogs/Benchmarks.cpp.o.d"
  "/root/repo/src/cfg/FlatCfg.cpp" "src/CMakeFiles/iaa.dir/cfg/FlatCfg.cpp.o" "gcc" "src/CMakeFiles/iaa.dir/cfg/FlatCfg.cpp.o.d"
  "/root/repo/src/cfg/Hcg.cpp" "src/CMakeFiles/iaa.dir/cfg/Hcg.cpp.o" "gcc" "src/CMakeFiles/iaa.dir/cfg/Hcg.cpp.o.d"
  "/root/repo/src/deptest/DependenceTest.cpp" "src/CMakeFiles/iaa.dir/deptest/DependenceTest.cpp.o" "gcc" "src/CMakeFiles/iaa.dir/deptest/DependenceTest.cpp.o.d"
  "/root/repo/src/interp/Interpreter.cpp" "src/CMakeFiles/iaa.dir/interp/Interpreter.cpp.o" "gcc" "src/CMakeFiles/iaa.dir/interp/Interpreter.cpp.o.d"
  "/root/repo/src/interp/ThreadPool.cpp" "src/CMakeFiles/iaa.dir/interp/ThreadPool.cpp.o" "gcc" "src/CMakeFiles/iaa.dir/interp/ThreadPool.cpp.o.d"
  "/root/repo/src/mf/Lexer.cpp" "src/CMakeFiles/iaa.dir/mf/Lexer.cpp.o" "gcc" "src/CMakeFiles/iaa.dir/mf/Lexer.cpp.o.d"
  "/root/repo/src/mf/Parser.cpp" "src/CMakeFiles/iaa.dir/mf/Parser.cpp.o" "gcc" "src/CMakeFiles/iaa.dir/mf/Parser.cpp.o.d"
  "/root/repo/src/mf/Program.cpp" "src/CMakeFiles/iaa.dir/mf/Program.cpp.o" "gcc" "src/CMakeFiles/iaa.dir/mf/Program.cpp.o.d"
  "/root/repo/src/section/Section.cpp" "src/CMakeFiles/iaa.dir/section/Section.cpp.o" "gcc" "src/CMakeFiles/iaa.dir/section/Section.cpp.o.d"
  "/root/repo/src/support/Diagnostics.cpp" "src/CMakeFiles/iaa.dir/support/Diagnostics.cpp.o" "gcc" "src/CMakeFiles/iaa.dir/support/Diagnostics.cpp.o.d"
  "/root/repo/src/symbolic/SymExpr.cpp" "src/CMakeFiles/iaa.dir/symbolic/SymExpr.cpp.o" "gcc" "src/CMakeFiles/iaa.dir/symbolic/SymExpr.cpp.o.d"
  "/root/repo/src/symbolic/SymRange.cpp" "src/CMakeFiles/iaa.dir/symbolic/SymRange.cpp.o" "gcc" "src/CMakeFiles/iaa.dir/symbolic/SymRange.cpp.o.d"
  "/root/repo/src/xform/Parallelizer.cpp" "src/CMakeFiles/iaa.dir/xform/Parallelizer.cpp.o" "gcc" "src/CMakeFiles/iaa.dir/xform/Parallelizer.cpp.o.d"
  "/root/repo/src/xform/Passes.cpp" "src/CMakeFiles/iaa.dir/xform/Passes.cpp.o" "gcc" "src/CMakeFiles/iaa.dir/xform/Passes.cpp.o.d"
  "/root/repo/src/xform/Postpass.cpp" "src/CMakeFiles/iaa.dir/xform/Postpass.cpp.o" "gcc" "src/CMakeFiles/iaa.dir/xform/Postpass.cpp.o.d"
  "/root/repo/src/xform/Privatization.cpp" "src/CMakeFiles/iaa.dir/xform/Privatization.cpp.o" "gcc" "src/CMakeFiles/iaa.dir/xform/Privatization.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
