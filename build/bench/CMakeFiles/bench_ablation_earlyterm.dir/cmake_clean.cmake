file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_earlyterm.dir/bench_ablation_earlyterm.cpp.o"
  "CMakeFiles/bench_ablation_earlyterm.dir/bench_ablation_earlyterm.cpp.o.d"
  "bench_ablation_earlyterm"
  "bench_ablation_earlyterm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_earlyterm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
