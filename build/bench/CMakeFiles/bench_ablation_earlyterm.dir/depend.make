# Empty dependencies file for bench_ablation_earlyterm.
# This may be replaced when dependencies are built.
