file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_demand.dir/bench_ablation_demand.cpp.o"
  "CMakeFiles/bench_ablation_demand.dir/bench_ablation_demand.cpp.o.d"
  "bench_ablation_demand"
  "bench_ablation_demand.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_demand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
