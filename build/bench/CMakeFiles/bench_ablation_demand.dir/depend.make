# Empty dependencies file for bench_ablation_demand.
# This may be replaced when dependencies are built.
