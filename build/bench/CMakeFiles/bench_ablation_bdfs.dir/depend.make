# Empty dependencies file for bench_ablation_bdfs.
# This may be replaced when dependencies are built.
