file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_bdfs.dir/bench_ablation_bdfs.cpp.o"
  "CMakeFiles/bench_ablation_bdfs.dir/bench_ablation_bdfs.cpp.o.d"
  "bench_ablation_bdfs"
  "bench_ablation_bdfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bdfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
