# Empty compiler generated dependencies file for iaa_tests.
# This may be replaced when dependencies are built.
