
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_benchmarks.cpp" "tests/CMakeFiles/iaa_tests.dir/test_benchmarks.cpp.o" "gcc" "tests/CMakeFiles/iaa_tests.dir/test_benchmarks.cpp.o.d"
  "/root/repo/tests/test_cfg.cpp" "tests/CMakeFiles/iaa_tests.dir/test_cfg.cpp.o" "gcc" "tests/CMakeFiles/iaa_tests.dir/test_cfg.cpp.o.d"
  "/root/repo/tests/test_deptest.cpp" "tests/CMakeFiles/iaa_tests.dir/test_deptest.cpp.o" "gcc" "tests/CMakeFiles/iaa_tests.dir/test_deptest.cpp.o.d"
  "/root/repo/tests/test_interp.cpp" "tests/CMakeFiles/iaa_tests.dir/test_interp.cpp.o" "gcc" "tests/CMakeFiles/iaa_tests.dir/test_interp.cpp.o.d"
  "/root/repo/tests/test_interp_edge.cpp" "tests/CMakeFiles/iaa_tests.dir/test_interp_edge.cpp.o" "gcc" "tests/CMakeFiles/iaa_tests.dir/test_interp_edge.cpp.o.d"
  "/root/repo/tests/test_monotonic.cpp" "tests/CMakeFiles/iaa_tests.dir/test_monotonic.cpp.o" "gcc" "tests/CMakeFiles/iaa_tests.dir/test_monotonic.cpp.o.d"
  "/root/repo/tests/test_parser.cpp" "tests/CMakeFiles/iaa_tests.dir/test_parser.cpp.o" "gcc" "tests/CMakeFiles/iaa_tests.dir/test_parser.cpp.o.d"
  "/root/repo/tests/test_passes_edge.cpp" "tests/CMakeFiles/iaa_tests.dir/test_passes_edge.cpp.o" "gcc" "tests/CMakeFiles/iaa_tests.dir/test_passes_edge.cpp.o.d"
  "/root/repo/tests/test_pipeline.cpp" "tests/CMakeFiles/iaa_tests.dir/test_pipeline.cpp.o" "gcc" "tests/CMakeFiles/iaa_tests.dir/test_pipeline.cpp.o.d"
  "/root/repo/tests/test_privatization.cpp" "tests/CMakeFiles/iaa_tests.dir/test_privatization.cpp.o" "gcc" "tests/CMakeFiles/iaa_tests.dir/test_privatization.cpp.o.d"
  "/root/repo/tests/test_property.cpp" "tests/CMakeFiles/iaa_tests.dir/test_property.cpp.o" "gcc" "tests/CMakeFiles/iaa_tests.dir/test_property.cpp.o.d"
  "/root/repo/tests/test_property_edge.cpp" "tests/CMakeFiles/iaa_tests.dir/test_property_edge.cpp.o" "gcc" "tests/CMakeFiles/iaa_tests.dir/test_property_edge.cpp.o.d"
  "/root/repo/tests/test_prover_props.cpp" "tests/CMakeFiles/iaa_tests.dir/test_prover_props.cpp.o" "gcc" "tests/CMakeFiles/iaa_tests.dir/test_prover_props.cpp.o.d"
  "/root/repo/tests/test_section.cpp" "tests/CMakeFiles/iaa_tests.dir/test_section.cpp.o" "gcc" "tests/CMakeFiles/iaa_tests.dir/test_section.cpp.o.d"
  "/root/repo/tests/test_section_props.cpp" "tests/CMakeFiles/iaa_tests.dir/test_section_props.cpp.o" "gcc" "tests/CMakeFiles/iaa_tests.dir/test_section_props.cpp.o.d"
  "/root/repo/tests/test_singleindex.cpp" "tests/CMakeFiles/iaa_tests.dir/test_singleindex.cpp.o" "gcc" "tests/CMakeFiles/iaa_tests.dir/test_singleindex.cpp.o.d"
  "/root/repo/tests/test_support.cpp" "tests/CMakeFiles/iaa_tests.dir/test_support.cpp.o" "gcc" "tests/CMakeFiles/iaa_tests.dir/test_support.cpp.o.d"
  "/root/repo/tests/test_symboluses.cpp" "tests/CMakeFiles/iaa_tests.dir/test_symboluses.cpp.o" "gcc" "tests/CMakeFiles/iaa_tests.dir/test_symboluses.cpp.o.d"
  "/root/repo/tests/test_symexpr.cpp" "tests/CMakeFiles/iaa_tests.dir/test_symexpr.cpp.o" "gcc" "tests/CMakeFiles/iaa_tests.dir/test_symexpr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/iaa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
