# Empty compiler generated dependencies file for gather_scatter.
# This may be replaced when dependencies are built.
