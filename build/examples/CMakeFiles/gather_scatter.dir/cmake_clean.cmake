file(REMOVE_RECURSE
  "CMakeFiles/gather_scatter.dir/gather_scatter.cpp.o"
  "CMakeFiles/gather_scatter.dir/gather_scatter.cpp.o.d"
  "gather_scatter"
  "gather_scatter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gather_scatter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
