file(REMOVE_RECURSE
  "CMakeFiles/sparse_ccs.dir/sparse_ccs.cpp.o"
  "CMakeFiles/sparse_ccs.dir/sparse_ccs.cpp.o.d"
  "sparse_ccs"
  "sparse_ccs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_ccs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
