# Empty dependencies file for sparse_ccs.
# This may be replaced when dependencies are built.
