file(REMOVE_RECURSE
  "CMakeFiles/mfpar.dir/mfpar.cpp.o"
  "CMakeFiles/mfpar.dir/mfpar.cpp.o.d"
  "mfpar"
  "mfpar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfpar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
