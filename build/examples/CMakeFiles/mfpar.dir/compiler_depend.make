# Empty compiler generated dependencies file for mfpar.
# This may be replaced when dependencies are built.
