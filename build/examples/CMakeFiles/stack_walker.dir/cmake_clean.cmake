file(REMOVE_RECURSE
  "CMakeFiles/stack_walker.dir/stack_walker.cpp.o"
  "CMakeFiles/stack_walker.dir/stack_walker.cpp.o.d"
  "stack_walker"
  "stack_walker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stack_walker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
