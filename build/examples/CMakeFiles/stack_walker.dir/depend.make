# Empty dependencies file for stack_walker.
# This may be replaced when dependencies are built.
