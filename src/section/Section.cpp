//===- section/Section.cpp - Symbolic array sections ----------------------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "section/Section.h"

using namespace iaa;
using namespace iaa::sec;
using namespace iaa::sym;

bool Section::equals(const Section &RHS) const {
  if (K != RHS.K)
    return false;
  if (K != Kind::Interval)
    return true;
  return Lo.equals(RHS.Lo) && Hi.equals(RHS.Hi);
}

std::string Section::str() const {
  switch (K) {
  case Kind::Empty:
    return "{}";
  case Kind::Universe:
    return "[-inf:+inf]";
  case Kind::Interval:
    return "[" + Lo.str() + ":" + Hi.str() + "]";
  }
  return "?";
}

bool Section::provablyDisjoint(const Section &A, const Section &B,
                               const RangeEnv &Env) {
  if (A.isEmpty() || B.isEmpty())
    return true;
  if (A.isUniverse() || B.isUniverse())
    return false;
  // An interval with provably inverted bounds is empty.
  if (provablyLT(A.Hi, A.Lo, Env) || provablyLT(B.Hi, B.Lo, Env))
    return true;
  return provablyLT(A.Hi, B.Lo, Env) || provablyLT(B.Hi, A.Lo, Env);
}

bool Section::provablyContains(const Section &A, const Section &B,
                               const RangeEnv &Env) {
  if (B.isEmpty() || A.isUniverse())
    return true;
  if (A.isEmpty() || B.isUniverse())
    return false;
  // Vacuous containment of a provably empty B.
  if (provablyLT(B.Hi, B.Lo, Env))
    return true;
  return provablyLE(A.Lo, B.Lo, Env) && provablyLE(B.Hi, A.Hi, Env);
}

Section Section::unionMay(const Section &A, const Section &B,
                          const RangeEnv &Env) {
  if (A.isEmpty())
    return B;
  if (B.isEmpty())
    return A;
  if (A.isUniverse() || B.isUniverse())
    return universe();
  // Pick the provably smaller lower bound and larger upper bound; if a
  // direction cannot be ordered the hull is not representable, so widen to
  // the universal section (sound for MAY).
  SymExpr Lo, Hi;
  if (provablyLE(A.Lo, B.Lo, Env))
    Lo = A.Lo;
  else if (provablyLE(B.Lo, A.Lo, Env))
    Lo = B.Lo;
  else
    return universe();
  if (provablyLE(A.Hi, B.Hi, Env))
    Hi = B.Hi;
  else if (provablyLE(B.Hi, A.Hi, Env))
    Hi = A.Hi;
  else
    return universe();
  return interval(Lo, Hi);
}

Section Section::unionMust(const Section &A, const Section &B,
                           const RangeEnv &Env) {
  if (A.isEmpty())
    return B;
  if (B.isEmpty())
    return A;
  if (A.isUniverse() || B.isUniverse())
    return universe();
  if (provablyContains(A, B, Env))
    return A;
  if (provablyContains(B, A, Env))
    return B;
  // Exact union when the pieces provably overlap or abut *and* the outer
  // bounds are provably ordered.
  bool AThenB = provablyLE(A.Lo, B.Lo, Env) &&
                provablyLE(B.Lo, A.Hi + 1, Env) &&
                provablyLE(A.Hi, B.Hi, Env);
  if (AThenB)
    return interval(A.Lo, B.Hi);
  bool BThenA = provablyLE(B.Lo, A.Lo, Env) &&
                provablyLE(A.Lo, B.Hi + 1, Env) &&
                provablyLE(B.Hi, A.Hi, Env);
  if (BThenA)
    return interval(B.Lo, A.Hi);
  // Cannot represent the union; either piece alone is a sound MUST result.
  return A;
}

Section Section::intersectMust(const Section &A, const Section &B,
                               const RangeEnv &Env) {
  if (A.isEmpty() || B.isEmpty())
    return empty();
  if (A.isUniverse())
    return B;
  if (B.isUniverse())
    return A;
  if (provablyContains(A, B, Env))
    return B;
  if (provablyContains(B, A, Env))
    return A;
  if (provablyDisjoint(A, B, Env))
    return empty();
  // Partial overlap with provable bound ordering.
  if (provablyLE(A.Lo, B.Lo, Env) && provablyLE(B.Lo, A.Hi, Env) &&
      provablyLE(A.Hi, B.Hi, Env))
    return interval(B.Lo, A.Hi);
  if (provablyLE(B.Lo, A.Lo, Env) && provablyLE(A.Lo, B.Hi, Env) &&
      provablyLE(B.Hi, A.Hi, Env))
    return interval(A.Lo, B.Hi);
  return empty(); // Unknown ordering: empty is the sound MUST answer.
}

Section Section::subtractMay(const Section &Q, const Section &G,
                             const RangeEnv &Env) {
  if (Q.isEmpty() || G.isEmpty())
    return Q;
  if (G.isUniverse())
    return empty();
  if (Q.isUniverse())
    return Q; // Cannot carve an interval out of the universe representably.
  if (provablyContains(G, Q, Env))
    return empty();
  if (provablyDisjoint(Q, G, Env))
    return Q;
  // Trim a covered prefix: G covers [Q.Lo, G.Hi].
  if (provablyLE(G.Lo, Q.Lo, Env) && provablyLE(Q.Lo, G.Hi, Env)) {
    if (provablyLT(Q.Hi, G.Hi + 1, Env))
      return empty();
    return interval(G.Hi + 1, Q.Hi);
  }
  // Trim a covered suffix: G covers [G.Lo, Q.Hi].
  if (provablyLE(Q.Hi, G.Hi, Env) && provablyLE(G.Lo, Q.Hi, Env)) {
    if (provablyLT(G.Lo - 1, Q.Lo, Env))
      return empty();
    return interval(Q.Lo, G.Lo - 1);
  }
  // A middle cut is not representable as one interval; returning Q keeps
  // every element of the exact difference (over-approximation).
  return Q;
}

Section Section::subtractMust(const Section &Q, const Section &G,
                              const RangeEnv &Env) {
  if (Q.isEmpty() || G.isEmpty())
    return Q;
  if (G.isUniverse())
    return empty();
  if (provablyDisjoint(Q, G, Env))
    return Q;
  if (Q.isUniverse())
    return empty(); // Unknown overlap with the universe: give up (MUST).
  if (provablyContains(G, Q, Env))
    return empty();
  // Provable prefix removal: G covers [Q.Lo, G.Hi] with G.Hi < Q.Hi.
  if (provablyLE(G.Lo, Q.Lo, Env) && provablyLE(Q.Lo, G.Hi, Env) &&
      provablyLT(G.Hi, Q.Hi, Env))
    return interval(G.Hi + 1, Q.Hi);
  // Provable suffix removal.
  if (provablyLE(Q.Hi, G.Hi, Env) && provablyLE(G.Lo, Q.Hi, Env) &&
      provablyLT(Q.Lo, G.Lo, Env))
    return interval(Q.Lo, G.Lo - 1);
  return empty(); // Unknown relation: empty is the sound MUST answer.
}

Section Section::aggregateMay(const Section &S, const mf::Symbol *I,
                              const SymExpr &Lo, const SymExpr &Up,
                              const RangeEnv &Env) {
  (void)Env;
  if (S.isEmpty() || S.isUniverse())
    return S;
  SymRange LoSweep = rangeOverVar(S.Lo, I, Lo, Up);
  SymRange HiSweep = rangeOverVar(S.Hi, I, Lo, Up);
  if (!LoSweep.Lo.isFinite() || !HiSweep.Hi.isFinite())
    return universe();
  return interval(LoSweep.Lo.E, HiSweep.Hi.E);
}

Section Section::aggregateMust(const Section &S, const mf::Symbol *I,
                               const SymExpr &Lo, const SymExpr &Up,
                               const RangeEnv &Env) {
  if (S.isEmpty())
    return empty();
  if (S.isUniverse())
    return universe();
  // The loop must provably execute at least once.
  if (!provablyLE(Lo, Up, Env))
    return empty();

  int64_t CoeffLo = S.Lo.coeffOfVar(I);
  int64_t CoeffHi = S.Hi.coeffOfVar(I);
  SymExpr RestLo = S.Lo - SymExpr::var(I) * CoeffLo;
  SymExpr RestHi = S.Hi - SymExpr::var(I) * CoeffHi;
  if (RestLo.references(I) || RestHi.references(I))
    return empty(); // Nonlinear in the loop index; no MUST statement.

  // Both bounds must move in the same (non-decreasing) direction, and
  // consecutive per-iteration sections must provably leave no hole:
  //   S.Lo(i+1) <= S.Hi(i) + 1.
  if (CoeffLo < 0 || CoeffHi < 0) {
    // Decreasing sweep: mirror the increasing case.
    if (CoeffLo > 0 || CoeffHi > 0)
      return empty();
    SymExpr LoAtUp = RestLo + Up * CoeffLo;
    SymExpr HiAtLo = RestHi + Lo * CoeffHi;
    // Hole check for a decreasing sweep: iteration i+1 sits below iteration
    // i, so require S.Hi(i+1) >= S.Lo(i) - 1.
    SymExpr Gap = (RestHi + SymExpr::var(I) * CoeffHi + CoeffHi) -
                  (RestLo + SymExpr::var(I) * CoeffLo);
    if (!provablyNonNegative(Gap + 1, Env))
      return empty();
    // Each per-iteration section must be provably nonempty.
    if (!provablyLE(S.Lo, S.Hi, Env))
      return empty();
    return interval(LoAtUp, HiAtLo);
  }

  SymExpr LoAtLo = RestLo + Lo * CoeffLo;
  SymExpr HiAtUp = RestHi + Up * CoeffHi;
  // Hole check between iteration i and i+1: Lo(i+1) <= Hi(i) + 1, i.e.
  // (RestLo + (i+1)*CoeffLo) - (RestHi + i*CoeffHi) <= 1.
  SymExpr HoleGap = (RestLo + SymExpr::var(I) * CoeffLo + CoeffLo) -
                    (RestHi + SymExpr::var(I) * CoeffHi);
  if (!provablyLE(HoleGap, SymExpr::constant(1), Env))
    return empty();
  if (!provablyLE(S.Lo, S.Hi, Env))
    return empty();
  return interval(LoAtLo, HiAtUp);
}
