//===- prof/PerfCounters.h - Hardware counters via perf_event ---*- C++ -*-===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal perf_event_open wrapper for the profiler: one event group on
/// the calling thread (cycles, instructions, LLC misses) read as running
/// totals so nested readers can take deltas. Containers and non-Linux
/// builds routinely refuse the syscall; every failure path degrades to
/// available() == false and invalid samples — never a diagnostic, never a
/// non-zero exit.
///
//===----------------------------------------------------------------------===//

#ifndef IAA_PROF_PERFCOUNTERS_H
#define IAA_PROF_PERFCOUNTERS_H

#include <cstdint>

namespace iaa {
namespace prof {

/// One reading of the counter group. Running totals, not deltas; subtract
/// two samples to charge an interval. Valid is false when the group never
/// opened (all counts zero).
struct PerfSample {
  bool Valid = false;
  uint64_t Cycles = 0;
  uint64_t Instructions = 0;
  uint64_t LlcMisses = 0;

  PerfSample operator-(const PerfSample &Begin) const {
    PerfSample D;
    D.Valid = Valid && Begin.Valid;
    if (D.Valid) {
      D.Cycles = Cycles - Begin.Cycles;
      D.Instructions = Instructions - Begin.Instructions;
      D.LlcMisses = LlcMisses - Begin.LlcMisses;
    }
    return D;
  }
};

/// Opens a {cycles, instructions, LLC misses} group on the calling thread.
/// The profiler runs loops on the calling thread in simulate mode, so this
/// covers all chunk work there; under real threading it measures the
/// coordinating thread only (documented caveat).
class PerfCounters {
public:
  PerfCounters();
  ~PerfCounters();

  PerfCounters(const PerfCounters &) = delete;
  PerfCounters &operator=(const PerfCounters &) = delete;

  /// True when the group opened and reads.
  bool available() const { return GroupFd >= 0; }

  /// Reads current running totals; an invalid sample when unavailable.
  PerfSample read() const;

private:
  int GroupFd = -1; ///< Cycles leader; -1 when unavailable.
  int InstrFd = -1;
  int MissFd = -1;
  uint64_t InstrId = 0;
  uint64_t MissId = 0;
  uint64_t CyclesId = 0;
};

} // namespace prof
} // namespace iaa

#endif // IAA_PROF_PERFCOUNTERS_H
