//===- prof/Profiler.cpp - Sampling memory-access profiler ----------------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "prof/Profiler.h"

#include "support/Json.h"
#include "support/Statistic.h"
#include "support/Trace.h"
#include "xform/Parallelizer.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <unordered_map>

using namespace iaa;
using namespace iaa::prof;

#define IAA_STAT_GROUP "prof"
IAA_STAT(prof_loops_recorded, "Loop invocations fully recorded");
IAA_STAT(prof_loops_light, "Loop invocations past the recording cap");
IAA_STAT(prof_accesses_sampled, "Element accesses admitted to line streams");

//===----------------------------------------------------------------------===//
// Reuse distances (Olken)
//===----------------------------------------------------------------------===//

namespace {

/// Fenwick tree over stream positions (1-based internally);
/// prefix(P) = # set flags in positions [0, P].
class Fenwick {
public:
  explicit Fenwick(size_t N) : Tree(N + 1, 0) {}

  void add(size_t Pos, int Delta) {
    for (size_t I = Pos + 1; I < Tree.size(); I += I & (0 - I))
      Tree[I] += Delta;
  }

  int64_t prefix(size_t Pos) const {
    int64_t S = 0;
    for (size_t I = Pos + 1; I > 0; I -= I & (0 - I))
      S += Tree[I];
    return S;
  }

private:
  std::vector<int64_t> Tree;
};

} // namespace

void iaa::prof::reuseDistances(const std::vector<uint32_t> &Lines,
                               ReuseHistogram &H) {
  // Olken: keep, per line, the position of its last access, and a Fenwick
  // tree with a 1 at every position that is currently someone's last
  // access. The number of distinct lines touched strictly between two
  // accesses to the same line is then a prefix-sum difference.
  Fenwick Live(Lines.size());
  std::unordered_map<uint32_t, size_t> Last;
  Last.reserve(Lines.size());
  for (size_t T = 0; T < Lines.size(); ++T) {
    uint32_t L = Lines[T];
    auto It = Last.find(L);
    if (It == Last.end()) {
      ++H.Cold;
    } else {
      size_t P = It->second;
      // Distinct live last-accesses in (P, T) = Sum(T-1) - Sum(P).
      uint64_t D = static_cast<uint64_t>(Live.prefix(T - 1) - Live.prefix(P));
      H.add(D);
      Live.add(P, -1);
    }
    Live.add(T, +1);
    Last[L] = T;
  }
}

//===----------------------------------------------------------------------===//
// Names and JSON helpers
//===----------------------------------------------------------------------===//

const char *iaa::prof::dispatchKindName(DispatchKind K) {
  switch (K) {
  case DispatchKind::Serial:
    return "serial";
  case DispatchKind::SerialSmall:
    return "serial-small";
  case DispatchKind::Parallel:
    return "parallel";
  case DispatchKind::CondParallel:
    return "conditional-parallel";
  case DispatchKind::CondSerial:
    return "conditional-serial";
  case DispatchKind::Replay:
    return "replay";
  }
  return "serial";
}

namespace {

std::string jsonArrayProfile(const ArrayProfile &A) {
  std::string Hist = "[";
  for (unsigned I = 0; I < ReuseHistogram::NumBuckets; ++I) {
    if (I)
      Hist += ",";
    Hist += std::to_string(A.Hist.Buckets[I]);
  }
  Hist += "]";
  return "{\"name\": " + json::str(A.Name) +
         ", \"reads\": " + std::to_string(A.Reads) +
         ", \"writes\": " + std::to_string(A.Writes) +
         ", \"sampled\": " + std::to_string(A.Sampled) +
         ", \"dropped\": " + std::to_string(A.SamplesDropped) +
         ", \"lines\": " + std::to_string(A.FootprintLines) +
         ", \"cold\": " + std::to_string(A.Hist.Cold) +
         ", \"reuse_hist\": " + Hist +
         ", \"locality\": " + json::num(A.Hist.localityScore()) + "}";
}

std::string jsonWorker(const WorkerTimeline &W) {
  return "{\"worker\": " + std::to_string(W.Worker) +
         ", \"chunks\": " + std::to_string(W.Chunks) +
         ", \"dispatch_us\": " + json::num(W.DispatchUs) +
         ", \"busy_us\": " + json::num(W.BusyUs) +
         ", \"stall_us\": " + json::num(W.StallUs) +
         ", \"lines\": " + std::to_string(W.FootprintLines) +
         ", \"first_iter\": " + std::to_string(W.FirstIter) +
         ", \"last_iter\": " + std::to_string(W.LastIter) +
         ", \"events_dropped\": " + std::to_string(W.EventsDropped) + "}";
}

std::string jsonChunk(unsigned Worker, const ChunkEvent &E) {
  return "{\"worker\": " + std::to_string(Worker) +
         ", \"chunk\": " + std::to_string(E.Chunk) +
         ", \"first\": " + std::to_string(E.First) +
         ", \"last\": " + std::to_string(E.Last) +
         ", \"start_us\": " + json::num(E.StartUs) +
         ", \"dur_us\": " + json::num(E.DurUs) + "}";
}

} // namespace

std::string LoopProfile::jsonLine() const {
  std::string Out = "{\"type\": \"loop\", \"label\": " + json::str(Label) +
                    ", \"invocation\": " + std::to_string(Invocation) +
                    ", \"dispatch\": " +
                    json::str(dispatchKindName(Kind)) +
                    ", \"detail\": " + json::str(Detail) +
                    ", \"engine\": " + json::str(Engine) +
                    ", \"lo\": " + std::to_string(Lo) +
                    ", \"up\": " + std::to_string(Up) +
                    ", \"niter\": " + std::to_string(NIter) +
                    ", \"threads\": " + std::to_string(Threads) +
                    ", \"schedule\": " + json::str(Schedule) +
                    ", \"locality\": " + json::str(Locality) +
                    ", \"worker_lines\": " + std::to_string(WorkerLinesSum) +
                    ", \"wall_us\": " + json::num(WallUs) +
                    ", \"inspect_us\": " + json::num(InspectUs) +
                    ", \"rollback_us\": " + json::num(RollbackUs) +
                    ", \"replay_us\": " + json::num(ReplayUs);
  if (Perf.Valid)
    Out += ", \"perf\": {\"cycles\": " + std::to_string(Perf.Cycles) +
           ", \"instructions\": " + std::to_string(Perf.Instructions) +
           ", \"llc_misses\": " + std::to_string(Perf.LlcMisses) + "}";
  else
    Out += ", \"perf\": null";
  Out += ", \"arrays\": [";
  for (size_t I = 0; I < Arrays.size(); ++I)
    Out += (I ? ", " : "") + jsonArrayProfile(Arrays[I]);
  Out += "], \"workers\": [";
  for (size_t I = 0; I < Workers.size(); ++I)
    Out += (I ? ", " : "") + jsonWorker(Workers[I]);
  Out += "], \"chunks\": [";
  bool First = true;
  for (const WorkerTimeline &W : Workers)
    for (const ChunkEvent &E : W.Events) {
      Out += (First ? "" : ", ") + jsonChunk(W.Worker, E);
      First = false;
    }
  Out += "]}";
  return Out;
}

std::string LoopHealth::jsonLine() const {
  return "{\"type\": \"health\", \"label\": " + json::str(Label) +
         ", \"verdict\": " + json::str(Verdict) +
         ", \"why\": " + json::str(Why) +
         ", \"invocations\": " + std::to_string(Invocations) +
         ", \"recorded\": " + std::to_string(Recorded) +
         ", \"threads_max\": " + std::to_string(ThreadsMax) +
         ", \"locality\": " + json::num(LocalityScore) +
         ", \"imbalance_pct\": " + json::num(ImbalancePct) +
         ", \"analysis_pct\": " + json::num(AnalysisPct) +
         ", \"wall_us\": " + json::num(WallUs) +
         ", \"footprint_lines\": " + std::to_string(FootprintLines) +
         ", \"worker_lines\": " + std::to_string(WorkerLines) +
         ", \"sampled\": " + std::to_string(SampledAccesses) +
         ", \"dispatch\": {\"static\": " + std::to_string(DispatchStatic) +
         ", \"conditional\": " + std::to_string(DispatchConditional) +
         ", \"serial\": " + std::to_string(DispatchSerial) +
         ", \"replay\": " + std::to_string(DispatchReplay) + "}}";
}

std::string LoopHealth::str() const {
  char Buf[512];
  std::snprintf(Buf, sizeof(Buf),
                "  %-10s %-20s locality %.2f  imbalance %5.1f%%  "
                "analysis %4.1f%%  wall %.0fus  lines %llu  x%u\n",
                Label.c_str(), Verdict.c_str(), LocalityScore, ImbalancePct,
                AnalysisPct, WallUs,
                static_cast<unsigned long long>(FootprintLines), Invocations);
  std::string Out = Buf;
  std::snprintf(Buf, sizeof(Buf),
                "             dispatch: static %u / conditional %u / "
                "serial %u / replay %u\n",
                DispatchStatic, DispatchConditional, DispatchSerial,
                DispatchReplay);
  Out += Buf;
  if (!Why.empty())
    Out += "             why: " + Why + "\n";
  return Out;
}

//===----------------------------------------------------------------------===//
// Session
//===----------------------------------------------------------------------===//

Session::Session(SessionOptions O) : Opts(O) {
  unsigned ElemsPerLine = Opts.LineBytes / 8; // 8-byte int64/double elems.
  LineShift = 0;
  while ((1u << (LineShift + 1)) <= ElemsPerLine)
    ++LineShift;
}

Session::~Session() = default;

bool Session::countersAvailable() const { return Perf && Perf->available(); }

LoopRecorder *Session::beginLoop(const std::string &Label, unsigned NumSymbols,
                                 unsigned MaxWorkers, int64_t Lo, int64_t Up,
                                 int64_t NIter) {
  if (Opts.HardwareCounters && !PerfTried) {
    PerfTried = true;
    Perf = std::make_unique<PerfCounters>();
  }
  LabelAgg &Agg = Aggregates[Label];
  auto *R = new LoopRecorder();
  R->Label = Label;
  R->Invocation = Agg.Invocations++;
  R->Light = R->Invocation >= Opts.MaxInvocationsPerLoop;
  R->NumSymbols = NumSymbols;
  R->Period = Opts.SamplePeriod == 0 ? 1 : Opts.SamplePeriod;
  R->MaxSamples = Opts.MaxSamplesPerArray;
  R->MaxChunkEvents = Opts.MaxChunkEventsPerWorker;
  R->LineShift = LineShift;
  R->Lo = Lo;
  R->Up = Up;
  R->NIter = NIter;
  if (!R->Light) {
    R->Wrk.resize(MaxWorkers == 0 ? 1 : MaxWorkers);
    // Distinct nonzero xorshift seeds per worker keep runs reproducible
    // while decorrelating the workers' sampling clocks.
    for (size_t W = 0; W < R->Wrk.size(); ++W)
      R->Wrk[W].Rng = 0x9E3779B9u ^ (static_cast<uint32_t>(W) * 0x85EBCA6Bu +
                                     0x27D4EB2Fu);
    if (Perf && Perf->available())
      R->PerfBegin = Perf->read();
  }
  R->Clock.reset();
  return R;
}

void Session::endLoop(LoopRecorder *R) {
  std::unique_ptr<LoopRecorder> Owner(R);
  double WallUs = R->nowUs();
  LabelAgg &Agg = Aggregates[R->Label];
  Agg.WallUs += WallUs;
  Agg.AnalysisUs += R->InspectUs + R->RollbackUs + R->ReplayUs;
  if (R->Threads > Agg.ThreadsMax)
    Agg.ThreadsMax = R->Threads;
  switch (R->Kind) {
  case DispatchKind::Parallel:
    Agg.SawParallel = true;
    ++Agg.TierStatic;
    break;
  case DispatchKind::CondParallel:
    Agg.SawCondPass = true;
    ++Agg.TierConditional;
    break;
  case DispatchKind::CondSerial:
    Agg.SawCondFail = true;
    ++Agg.TierConditional;
    break;
  case DispatchKind::SerialSmall:
    Agg.SawSerialSmall = true;
    ++Agg.TierSerial;
    break;
  case DispatchKind::Serial:
    ++Agg.TierSerial;
    break;
  case DispatchKind::Replay:
    // The invocation did dispatch in parallel before the fault; it counts
    // in the replay tier only (one tier per invocation), but the label
    // still reads as parallelized in the verdict.
    Agg.SawParallel = true;
    ++Agg.TierReplay;
    break;
  }
  if (!R->Detail.empty())
    Agg.Detail = R->Detail;
  if (R->Light) {
    ++prof_loops_light;
    return;
  }
  ++prof_loops_recorded;
  ++Agg.Recorded;

  LoopProfile P;
  P.Label = R->Label;
  P.Invocation = R->Invocation;
  P.Kind = R->Kind;
  P.Detail = R->Detail;
  P.Engine = R->Engine;
  P.Lo = R->Lo;
  P.Up = R->Up;
  P.NIter = R->NIter;
  P.Threads = R->Threads;
  P.Schedule = R->Schedule;
  P.Locality = R->Locality;
  P.WallUs = WallUs;
  P.InspectUs = R->InspectUs;
  P.RollbackUs = R->RollbackUs;
  P.ReplayUs = R->ReplayUs;
  if (Perf && Perf->available() && R->PerfBegin.Valid)
    P.Perf = Perf->read() - R->PerfBegin;

  // Merge per-worker array records. The sampled line streams are only
  // *stashed* here — the O(n log n) reuse-distance analysis is deferred
  // to finalizeAnalysis() so it never lands inside a measured loop wall
  // time. Streams stay separate per worker (each worker models its own
  // cache); footprints union across workers (lines are lines no matter
  // who touched them).
  std::map<unsigned, ArrayProfile> Merged; // By symbol id, so ordered.
  uint64_t InvocationFootprint = 0;
  for (auto &W : R->Wrk) {
    for (auto &A : W.Arrays) {
      if (!A.Sym)
        continue;
      ArrayProfile &Out = Merged[A.Sym->id()];
      if (Out.Name.empty())
        Out.Name = A.Sym->name();
      // Sampled counters scale back up by the period into estimated
      // totals (exact at period 1).
      Out.Reads += A.Reads * R->Period;
      Out.Writes += A.Writes * R->Period;
      Out.Sampled += A.Lines.size();
      Out.SamplesDropped += A.Dropped;
      Out.PendingLines.push_back(std::move(A.Lines));
    }
  }
  // Footprint over sampled accesses (exact at period 1): pop-count the
  // union of the per-worker bitmaps.
  for (auto &[Id, Out] : Merged) {
    std::vector<uint64_t> Union;
    for (const auto &W : R->Wrk) {
      if (Id >= W.Arrays.size() || !W.Arrays[Id].Sym)
        continue;
      const auto &Bits = W.Arrays[Id].LineBits;
      if (Union.size() < Bits.size())
        Union.resize(Bits.size(), 0);
      for (size_t I = 0; I < Bits.size(); ++I)
        Union[I] |= Bits[I];
    }
    for (uint64_t Word : Union)
      Out.FootprintLines += static_cast<uint64_t>(__builtin_popcountll(Word));
    InvocationFootprint += Out.FootprintLines;
    prof_accesses_sampled += Out.Sampled;
    P.Arrays.push_back(std::move(Out));
  }
  if (InvocationFootprint > Agg.FootprintLines)
    Agg.FootprintLines = InvocationFootprint;

  // Per-worker distinct-line counts. The union footprint above is
  // schedule-invariant; these per-worker pop-counts are what a
  // locality-aware schedule actually shrinks (fewer workers sharing the
  // same lines), so their sum is the measurable win metric.
  std::vector<uint64_t> WLines(R->Wrk.size(), 0);
  for (size_t WId = 0; WId < R->Wrk.size(); ++WId) {
    for (const auto &A : R->Wrk[WId].Arrays) {
      if (!A.Sym)
        continue;
      for (uint64_t Word : A.LineBits)
        WLines[WId] += static_cast<uint64_t>(__builtin_popcountll(Word));
    }
    P.WorkerLinesSum += WLines[WId];
  }
  if (P.WorkerLinesSum > Agg.WorkerLines)
    Agg.WorkerLines = P.WorkerLinesSum;

  // Worker timelines. Serial-dispatch invocations never saw a chunk grant;
  // synthesize a single worker-0 lane (busy = wall) so every loop record
  // has a timeline.
  bool AnyChunks = false;
  for (const auto &W : R->Wrk)
    if (W.Chunks > 0)
      AnyChunks = true;
  if (!AnyChunks) {
    WorkerTimeline T;
    T.Worker = 0;
    T.Chunks = 1;
    T.BusyUs = WallUs;
    T.FootprintLines = WLines.empty() ? 0 : WLines[0];
    T.FirstIter = R->Lo;
    T.LastIter = R->NIter > 0 ? R->Up : R->Lo - 1;
    P.Workers.push_back(std::move(T));
  } else {
    for (unsigned WId = 0; WId < R->Wrk.size(); ++WId) {
      const auto &W = R->Wrk[WId];
      if (W.Chunks == 0)
        continue;
      WorkerTimeline T;
      T.Worker = WId;
      T.Chunks = W.Chunks;
      T.BusyUs = W.BusyUs;
      T.FootprintLines = WLines[WId];
      // Clamp into [0, wall]: a worker whose first poll raced the
      // dispenser's cancellation (fault drain) can report a first-chunk
      // start at — or, with clock skew, fractionally past — the loop's
      // recorded wall time, which would otherwise push the derived stall
      // interval negative.
      T.DispatchUs =
          W.FirstStartUs < 0 ? 0 : std::min(W.FirstStartUs, WallUs);
      T.StallUs = std::max(0.0, WallUs - T.DispatchUs - T.BusyUs);
      T.FirstIter = W.FirstIter == INT64_MAX ? 0 : W.FirstIter;
      T.LastIter = W.LastIter == INT64_MIN ? 0 : W.LastIter;
      T.Events = W.Events;
      T.EventsDropped = W.EventsDropped;
      P.Workers.push_back(std::move(T));
    }
  }

  // Per-invocation imbalance feeds the label aggregate: sum of max worker
  // busy vs. sum of mean worker busy across invocations.
  double MaxBusy = 0, SumBusy = 0;
  for (const WorkerTimeline &T : P.Workers) {
    MaxBusy = std::max(MaxBusy, T.BusyUs);
    SumBusy += T.BusyUs;
  }
  if (!P.Workers.empty()) {
    Agg.MaxBusySumUs += MaxBusy;
    Agg.AvgBusySumUs += SumBusy / static_cast<double>(P.Workers.size());
  }

  // Counter samples for the Chrome tracer: one track per loop label. The
  // locality counter needs the reuse histograms, so this invocation's
  // deferred analysis runs now — tracing already opted into overhead.
  if (trace::enabled()) {
    analyzeArrays(P, Agg);
    trace::counter("loop-wall-us " + P.Label, P.WallUs);
    ReuseHistogram All;
    for (const ArrayProfile &A : P.Arrays)
      All.merge(A.Hist);
    trace::counter("loop-locality " + P.Label, All.localityScore());
    trace::counter("loop-footprint-lines " + P.Label,
                   static_cast<double>(InvocationFootprint));
    if (P.Perf.Valid)
      trace::counter("loop-llc-misses " + P.Label,
                     static_cast<double>(P.Perf.LlcMisses));
  }

  Profiles.push_back(std::move(P));
}

void Session::analyzeArrays(LoopProfile &P, LabelAgg &Agg) {
  for (ArrayProfile &A : P.Arrays) {
    if (A.PendingLines.empty())
      continue; // Already analyzed.
    for (const std::vector<uint32_t> &Stream : A.PendingLines)
      reuseDistances(Stream, A.Hist);
    A.PendingLines.clear();
    A.PendingLines.shrink_to_fit();
    Agg.Hist.merge(A.Hist);
  }
}

void Session::finalizeAnalysis() {
  for (LoopProfile &P : Profiles)
    analyzeArrays(P, Aggregates[P.Label]);
}

void Session::notePhase(const std::string &Name, double Seconds) {
  Phases.emplace_back(Name, Seconds);
}

std::vector<LoopHealth> Session::health(const xform::PipelineResult *Plans) {
  finalizeAnalysis();
  std::vector<LoopHealth> Out;
  for (const auto &[Label, Agg] : Aggregates) {
    LoopHealth H;
    H.Label = Label;
    if (Agg.SawParallel)
      H.Verdict = "parallelized";
    else if (Agg.SawCondPass || Agg.SawCondFail)
      H.Verdict = "conditional";
    else
      H.Verdict = "serial";
    if (Agg.SawCondPass && Agg.SawCondFail)
      H.Why = "inspection passed on some invocations, failed on others";
    else if (Agg.SawCondPass)
      H.Why = "runtime inspection passed";
    else if (Agg.SawCondFail)
      H.Why = "runtime inspection failed" +
              (Agg.Detail.empty() ? "" : ": " + Agg.Detail);
    else if (Agg.SawSerialSmall)
      H.Why = "below the parallel profitability threshold";
    else if (!Agg.Detail.empty())
      H.Why = Agg.Detail;
    if (H.Why.empty() && !Agg.SawParallel && Plans) {
      if (const xform::LoopReport *R = Plans->reportFor(Label))
        if (!R->Parallel && !R->WhyNot.empty())
          H.Why = R->WhyNot;
    }
    H.Invocations = Agg.Invocations;
    H.Recorded = Agg.Recorded;
    H.ThreadsMax = Agg.ThreadsMax;
    H.LocalityScore = Agg.Hist.localityScore();
    // Clamped at zero: when a fault cancels the dispenser before some
    // workers' first poll, the surviving busy intervals can be degenerate
    // (zero-length) and floating-point noise would otherwise let the ratio
    // dip fractionally below 1 — a negative imbalance is meaningless.
    H.ImbalancePct =
        Agg.AvgBusySumUs > 0
            ? std::max(0.0,
                       (Agg.MaxBusySumUs / Agg.AvgBusySumUs - 1.0) * 100.0)
            : 0.0;
    H.AnalysisPct = Agg.WallUs > 0 ? Agg.AnalysisUs / Agg.WallUs * 100.0 : 0.0;
    H.WallUs = Agg.WallUs;
    H.FootprintLines = Agg.FootprintLines;
    H.WorkerLines = Agg.WorkerLines;
    H.SampledAccesses = Agg.Hist.Total + Agg.Hist.Cold;
    H.DispatchStatic = Agg.TierStatic;
    H.DispatchConditional = Agg.TierConditional;
    H.DispatchSerial = Agg.TierSerial;
    H.DispatchReplay = Agg.TierReplay;
    Out.push_back(std::move(H));
  }
  return Out;
}

std::string Session::healthText(const xform::PipelineResult *Plans) {
  std::string Out = "--- per-loop health report ---\n";
  std::vector<LoopHealth> Hs = health(Plans);
  if (Hs.empty())
    Out += "  (no labeled loops executed)\n";
  for (const LoopHealth &H : Hs)
    Out += H.str();
  double AnalysisUs = 0;
  for (const auto &[Name, Secs] : Phases)
    AnalysisUs += Secs * 1e6;
  if (!Phases.empty()) {
    char Buf[160];
    std::snprintf(Buf, sizeof(Buf), "  analysis phases: %.0fus (", AnalysisUs);
    Out += Buf;
    for (size_t I = 0; I < Phases.size(); ++I) {
      std::snprintf(Buf, sizeof(Buf), "%s%s %.0fus", I ? ", " : "",
                    Phases[I].first.c_str(), Phases[I].second * 1e6);
      Out += Buf;
    }
    Out += ")\n";
  }
  return Out;
}

std::string Session::jsonl(const xform::PipelineResult *Plans) {
  finalizeAnalysis();
  std::string Out =
      "{\"type\": \"session\", \"sample_period\": " +
      std::to_string(Opts.SamplePeriod) +
      ", \"line_bytes\": " + std::to_string(Opts.LineBytes) +
      ", \"max_invocations_per_loop\": " +
      std::to_string(Opts.MaxInvocationsPerLoop) +
      ", \"perf_counters\": " + (countersAvailable() ? "true" : "false") +
      "}\n";
  for (const auto &[Name, Secs] : Phases)
    Out += "{\"type\": \"phase\", \"name\": " + json::str(Name) +
           ", \"seconds\": " + json::num(Secs) + "}\n";
  for (const LoopProfile &P : Profiles)
    Out += P.jsonLine() + "\n";
  for (const LoopHealth &H : health(Plans))
    Out += H.jsonLine() + "\n";
  return Out;
}

bool Session::writeJsonl(const std::string &Path,
                         const xform::PipelineResult *Plans) {
  std::ofstream Out(Path);
  if (!Out)
    return false;
  Out << jsonl(Plans);
  return static_cast<bool>(Out);
}
