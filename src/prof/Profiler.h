//===- prof/Profiler.h - Sampling memory-access profiler --------*- C++ -*-===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The measurement substrate for locality-aware scheduling (ROADMAP item 4):
/// a sampling memory-access profiler the interpreter feeds from its
/// gather/scatter element accesses. Per labeled-loop invocation it records
///
///  - per-array cache-line telemetry: a footprint count (a bitmap over the
///    array's lines fed by the sampled accesses; exact at sample period 1)
///    and a log2-bucketed reuse-distance histogram computed from the
///    sampled line stream (Olken stack distances over the samples, so
///    overhead stays bounded);
///  - a per-worker chunk timeline (dispatch delay, busy/stall seconds,
///    iteration ranges) derived from the ChunkDispenser's chunk grants;
///  - optional hardware counters (cycles, instructions, LLC misses) via
///    perf_event_open, with silent graceful fallback where the syscall is
///    unavailable (fields become JSON null);
///  - the analysis tax: seconds spent in inspector scans, fault rollback,
///    and serial replay attributed to the loop that paid them.
///
/// A Session aggregates invocations per loop label into a *health report*
/// (parallelized / conditional / serial, why, access-locality score,
/// imbalance %, analysis-cost share) and emits everything as JSONL
/// (`mfpar --profile`). When tracing is on, per-loop counter samples also
/// flow into the Chrome trace as "ph":"C" events.
///
/// The reuse-distance model here is deliberately the interface a future
/// locality-aware scheduler consumes: a loop whose sampled accesses mostly
/// reuse lines at small distances benefits from index-adjacent chunking; a
/// flat histogram says the gather is cache-hostile no matter the schedule.
///
//===----------------------------------------------------------------------===//

#ifndef IAA_PROF_PROFILER_H
#define IAA_PROF_PROFILER_H

#include "mf/Symbol.h"
#include "prof/PerfCounters.h"
#include "support/Timer.h"

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace iaa {

namespace xform {
struct PipelineResult;
} // namespace xform

namespace prof {

//===----------------------------------------------------------------------===//
// Reuse-distance histogram
//===----------------------------------------------------------------------===//

/// Log2-bucketed histogram of cache-line reuse distances. The distance of
/// an access is the number of *distinct other lines* touched since the
/// previous access to the same line: 0 means immediate re-touch (the line
/// is still hot), large distances mean the line was almost certainly
/// evicted in between. Bucket 0 holds distance 0; bucket k >= 1 holds
/// distances in [2^(k-1), 2^k). First-ever touches (infinite distance) are
/// counted separately as Cold.
struct ReuseHistogram {
  static constexpr unsigned NumBuckets = 20;
  std::array<uint64_t, NumBuckets> Buckets{};
  uint64_t Cold = 0;  ///< First-touch accesses (no prior access to the line).
  uint64_t Total = 0; ///< Reuses counted (sum over Buckets).

  /// The bucket index for \p Distance (clamped into the last bucket).
  static unsigned bucketFor(uint64_t Distance) {
    if (Distance == 0)
      return 0;
    unsigned B = 64 - static_cast<unsigned>(__builtin_clzll(Distance));
    return B < NumBuckets ? B : NumBuckets - 1;
  }

  void add(uint64_t Distance) {
    ++Buckets[bucketFor(Distance)];
    ++Total;
  }

  void merge(const ReuseHistogram &O) {
    for (unsigned I = 0; I < NumBuckets; ++I)
      Buckets[I] += O.Buckets[I];
    Cold += O.Cold;
    Total += O.Total;
  }

  /// Access-locality score in [0, 1]: the fraction of sampled accesses
  /// whose reuse distance is below 32 lines (buckets 0..5 — small enough to
  /// survive in L1/L2). Cold first touches count against the score; a
  /// stream with no samples scores a neutral 1.
  double localityScore() const {
    uint64_t All = Total + Cold;
    if (All == 0)
      return 1.0;
    uint64_t Near = 0;
    for (unsigned I = 0; I <= 5 && I < NumBuckets; ++I)
      Near += Buckets[I];
    return static_cast<double>(Near) / static_cast<double>(All);
  }
};

/// Computes exact reuse distances over one access stream of cache-line ids
/// and accumulates them into \p H (Olken's algorithm: a last-access map
/// plus a Fenwick tree over stream positions, O(n log n)).
void reuseDistances(const std::vector<uint32_t> &Lines, ReuseHistogram &H);

//===----------------------------------------------------------------------===//
// Finalized per-invocation profiles
//===----------------------------------------------------------------------===//

/// How the interpreter dispatched one profiled loop invocation.
enum class DispatchKind {
  Serial,       ///< No plan: the loop is statically serial.
  SerialSmall,  ///< A plan exists but the profitability guard kept it serial.
  Parallel,     ///< Statically-certified parallel dispatch.
  CondParallel, ///< Runtime-conditional plan; inspection passed.
  CondSerial,   ///< Runtime-conditional plan; inspection failed.
  Replay,       ///< Dispatched parallel, trapped a worker fault, rolled
                ///< back, and re-executed serially. One invocation, one
                ///< tier: the original parallel tier is not also counted.
};

const char *dispatchKindName(DispatchKind K);

/// Cache-line telemetry for one array within one loop invocation.
struct ArrayProfile {
  std::string Name;
  /// Estimated element reads/writes: sampled count scaled by the sample
  /// period (exact when the period is 1).
  uint64_t Reads = 0;
  uint64_t Writes = 0;
  uint64_t Sampled = 0;        ///< Accesses admitted to the line stream.
  uint64_t SamplesDropped = 0; ///< Samples past the per-array cap.
  /// Distinct cache lines among the sampled accesses (exact when the
  /// sample period is 1).
  uint64_t FootprintLines = 0;
  ReuseHistogram Hist;
  /// Per-worker sampled line streams awaiting the deferred reuse-distance
  /// analysis (each worker models its own cache, so streams stay
  /// separate). Consumed — and Hist filled — by
  /// Session::finalizeAnalysis(); empty afterwards.
  std::vector<std::vector<uint32_t>> PendingLines;
};

/// One chunk grant as seen by the profiler (times relative to loop entry).
struct ChunkEvent {
  unsigned Chunk = 0;
  int64_t First = 0, Last = 0;
  double StartUs = 0, DurUs = 0;
};

/// Per-worker dispatch/execute/stall accounting for one loop invocation.
struct WorkerTimeline {
  unsigned Worker = 0;
  unsigned Chunks = 0;
  double DispatchUs = 0; ///< Loop entry to this worker's first chunk start.
  double BusyUs = 0;     ///< Sum of chunk execution times.
  double StallUs = 0;    ///< Loop wall minus dispatch minus busy (>= 0).
  /// Distinct cache lines this worker's sampled accesses touched, summed
  /// over arrays (exact at sample period 1). The union across workers is
  /// schedule-invariant, but this per-worker count is not: a schedule that
  /// keeps index-adjacent iterations on one worker shrinks it.
  uint64_t FootprintLines = 0;
  int64_t FirstIter = 0, LastIter = 0;
  std::vector<ChunkEvent> Events; ///< Capped; EventsDropped counts the rest.
  unsigned EventsDropped = 0;
};

/// Everything measured for one invocation of one labeled loop.
struct LoopProfile {
  std::string Label;
  unsigned Invocation = 0; ///< 0-based per-label invocation number.
  DispatchKind Kind = DispatchKind::Serial;
  std::string Detail; ///< Failing check, fault note, ... (may be empty).
  std::string Engine = "interp"; ///< "interp" or "vm" (see LoopRecorder).
  int64_t Lo = 0, Up = 0, NIter = 0;
  unsigned Threads = 1;
  std::string Schedule;
  std::string Locality; ///< Locality mode in force ("off"/"model"/"reorder").
  /// Sum over workers of per-worker distinct sampled cache lines. Unlike
  /// the per-array footprint (a union, schedule-invariant), this sum drops
  /// when the schedule keeps line-sharing iterations on the same worker —
  /// the measured quantity the locality scheduler tries to minimize.
  uint64_t WorkerLinesSum = 0;
  double WallUs = 0;
  double InspectUs = 0;  ///< Inspector scans charged to this invocation.
  double RollbackUs = 0; ///< Fault-containment snapshot restore.
  double ReplayUs = 0;   ///< Serial replay after a rollback.
  PerfSample Perf;       ///< Valid only when hardware counters opened.
  std::vector<ArrayProfile> Arrays;
  std::vector<WorkerTimeline> Workers;

  /// One JSON object (single line, no trailing newline) for JSONL output.
  std::string jsonLine() const;
};

/// Aggregated per-label verdict for the health report.
struct LoopHealth {
  std::string Label;
  std::string Verdict; ///< "parallelized", "conditional", or "serial".
  std::string Why;     ///< Pipeline remark reason or dispatch detail.
  unsigned Invocations = 0; ///< All invocations, including past the cap.
  unsigned Recorded = 0;    ///< Fully recorded invocations.
  unsigned ThreadsMax = 1;
  double LocalityScore = 1.0;
  double ImbalancePct = 0;    ///< (sum max busy / sum avg busy - 1) * 100.
  double AnalysisPct = 0;     ///< Analysis tax share of loop wall time.
  double WallUs = 0;          ///< Total wall microseconds across invocations.
  uint64_t FootprintLines = 0; ///< Max per-invocation total footprint.
  uint64_t WorkerLines = 0;    ///< Max per-invocation worker-lines sum.
  uint64_t SampledAccesses = 0;
  /// Invocation counts by dispatch tier: static (parallel on a static
  /// proof, no inspection), conditional (inspector decided, pass or fail),
  /// serial (no plan, or the profitability guard kept a planned loop
  /// serial), replay (faulted in parallel, rolled back, serially
  /// replayed). One tier per invocation: the four counts sum to
  /// Invocations.
  unsigned DispatchStatic = 0;
  unsigned DispatchConditional = 0;
  unsigned DispatchSerial = 0;
  unsigned DispatchReplay = 0;

  std::string str() const;
  std::string jsonLine() const;
};

//===----------------------------------------------------------------------===//
// Recording
//===----------------------------------------------------------------------===//

struct SessionOptions {
  /// Admit one of every SamplePeriod element accesses (per worker, on
  /// average — skips are jittered to defeat stride aliasing) to the
  /// reuse-distance line stream. 1 records every access deterministically
  /// (tests); the default keeps profiling overhead in single-digit
  /// percent.
  uint32_t SamplePeriod = 16;
  /// Cap on sampled line-stream entries per (worker, array, invocation).
  /// Streams are retained until the deferred reuse-distance analysis at
  /// report time, so the cap bounds both the profiler's memory and the
  /// report-time O(n log n) analysis cost.
  size_t MaxSamplesPerArray = 1 << 13;
  /// Fully recorded invocations per loop label; later invocations are
  /// counted (wall time, dispatch kind) but not sampled.
  size_t MaxInvocationsPerLoop = 32;
  /// Cap on stored chunk events per worker per invocation.
  size_t MaxChunkEventsPerWorker = 64;
  /// Cache-line size in bytes; elements are 8 bytes (int64/double).
  unsigned LineBytes = 64;
  /// Attempt to open hardware counters (silently absent when unavailable).
  bool HardwareCounters = true;
};

/// The per-invocation recording object the interpreter writes into. Access
/// notes go to per-worker slots, so parallel workers record without
/// synchronization; the fork/join barrier publishes them to endLoop.
class LoopRecorder {
public:
  /// True for a past-the-cap invocation: only wall time and dispatch kind
  /// are kept, and the access/chunk hooks are no-ops.
  bool light() const { return Light; }

  /// Microseconds since loop entry (timeline timebase).
  double nowUs() const { return Clock.seconds() * 1e6; }

  /// Records one *sampled* element access to \p S at linear element
  /// \p Elem of a buffer with \p BufElems elements, and returns how many
  /// accesses the caller should skip before the next sample. The
  /// interpreter keeps the skip countdown in its per-worker frame, so
  /// the per-access cost of profiling is one pointer test plus one
  /// decrement; only sampled accesses (1-in-Period on average) reach this
  /// function and pay for counters, the footprint bitmap OR, and the
  /// line-stream push. Skips are jittered uniformly in [1, 2*Period-1]
  /// (mean Period), so strided access patterns cannot alias with the
  /// sampling clock. Contract: callers route accesses here through a
  /// pointer that is null for light invocations — no Light check needed.
  uint32_t noteSampledAccess(const mf::Symbol *S, size_t Elem,
                             size_t BufElems, bool IsWrite,
                             unsigned Worker) {
    WorkerRec &WR = Wrk[Worker < Wrk.size() ? Worker : 0];
    if (WR.Arrays.empty())
      WR.Arrays.resize(NumSymbols);
    ArrayRec &A = WR.Arrays[S->id()];
    if (!A.Sym) {
      A.Sym = S;
      A.LineBits.assign(((BufElems >> LineShift) >> 6) + 1, 0);
    }
    if (IsWrite)
      ++A.Writes;
    else
      ++A.Reads;
    size_t Line = Elem >> LineShift;
    A.LineBits[Line >> 6] |= uint64_t(1) << (Line & 63);
    if (A.Lines.size() < MaxSamples)
      A.Lines.push_back(static_cast<uint32_t>(Line));
    else
      ++A.Dropped;
    return nextSkip(WR);
  }

  /// Records one chunk grant executed by \p Worker.
  void noteChunk(unsigned Worker, unsigned ChunkId, int64_t First,
                 int64_t Last, double StartUs, double DurUs) {
    if (Light)
      return;
    WorkerRec &WR = Wrk[Worker < Wrk.size() ? Worker : 0];
    ++WR.Chunks;
    WR.BusyUs += DurUs;
    if (WR.FirstStartUs < 0)
      WR.FirstStartUs = StartUs;
    if (StartUs + DurUs > WR.LastEndUs)
      WR.LastEndUs = StartUs + DurUs;
    if (First < WR.FirstIter)
      WR.FirstIter = First;
    if (Last > WR.LastIter)
      WR.LastIter = Last;
    if (WR.Events.size() < MaxChunkEvents)
      WR.Events.push_back({ChunkId, First, Last, StartUs, DurUs});
    else
      ++WR.EventsDropped;
  }

  /// Dispatch context, filled in by the interpreter as decisions fall.
  DispatchKind Kind = DispatchKind::Serial;
  std::string Detail;
  /// Execution engine of the loop body ("interp" tree walk or "vm"
  /// register bytecode). VM loops have no AST frames, so this is how
  /// profiles stay attributable to an engine.
  std::string Engine = "interp";
  unsigned Threads = 1;
  std::string Schedule;
  std::string Locality;
  double InspectUs = 0;
  double RollbackUs = 0;
  double ReplayUs = 0;

private:
  friend class Session;

  struct ArrayRec {
    const mf::Symbol *Sym = nullptr;
    uint64_t Reads = 0, Writes = 0, Dropped = 0; ///< Sampled counts.
    std::vector<uint64_t> LineBits; ///< Footprint bitmap over samples.
    std::vector<uint32_t> Lines;    ///< Sampled line stream.
  };

  struct WorkerRec {
    uint32_t Rng = 0; ///< xorshift32 state for jittered sampling skips.
    std::vector<ArrayRec> Arrays; ///< Indexed by symbol id; lazily sized.
    unsigned Chunks = 0;
    double BusyUs = 0;
    double FirstStartUs = -1;
    double LastEndUs = 0;
    int64_t FirstIter = INT64_MAX, LastIter = INT64_MIN;
    std::vector<ChunkEvent> Events;
    unsigned EventsDropped = 0;
  };

  /// Accesses to skip until the next sample: always 1 at period 1 (exact
  /// recording for tests), otherwise uniform in [1, 2*Period-1] so the
  /// sample stream is an unbiased 1-in-Period subsample on average.
  uint32_t nextSkip(WorkerRec &WR) {
    if (Period <= 1)
      return 1;
    uint32_t X = WR.Rng;
    X ^= X << 13;
    X ^= X >> 17;
    X ^= X << 5;
    WR.Rng = X;
    return 1 + X % (2 * Period - 1);
  }

  std::string Label;
  unsigned Invocation = 0;
  bool Light = false;
  unsigned NumSymbols = 0;
  uint32_t Period = 8;
  size_t MaxSamples = 0;
  size_t MaxChunkEvents = 0;
  unsigned LineShift = 3;
  int64_t Lo = 0, Up = 0, NIter = 0;
  Timer Clock;
  PerfSample PerfBegin;
  std::vector<WorkerRec> Wrk;
};

//===----------------------------------------------------------------------===//
// Session
//===----------------------------------------------------------------------===//

/// One profiling session: owns the recorded invocations, the per-label
/// aggregates behind the health report, and the optional hardware-counter
/// group. beginLoop/endLoop are called from the interpreter's serial
/// context only (never from inside a parallel region); a session may span
/// several Interpreter::run calls and accumulates across them.
class Session {
public:
  explicit Session(SessionOptions O = {});
  ~Session();

  Session(const Session &) = delete;
  Session &operator=(const Session &) = delete;

  const SessionOptions &options() const { return Opts; }

  /// True when the hardware-counter group opened successfully.
  bool countersAvailable() const;

  /// Starts recording one invocation of the loop labeled \p Label. Returns
  /// a light recorder past the per-label invocation cap.
  LoopRecorder *beginLoop(const std::string &Label, unsigned NumSymbols,
                          unsigned MaxWorkers, int64_t Lo, int64_t Up,
                          int64_t NIter);

  /// Finalizes \p R (reuse histograms, timelines, counter deltas), stores
  /// the profile, folds it into the label aggregate, emits trace counter
  /// samples when tracing is on, and deletes the recorder.
  void endLoop(LoopRecorder *R);

  /// Attributes a program-level analysis cost (pipeline, audit, ...) to
  /// the session; shows up as a "phase" JSONL record.
  void notePhase(const std::string &Name, double Seconds);

  /// Runs the deferred reuse-distance analysis over every sampled line
  /// stream still pending. endLoop defers this O(n log n) work so it does
  /// not land inside the measured loop wall time; the report entry points
  /// below call it automatically, and it is idempotent. Until it runs,
  /// ArrayProfile::Hist and the per-label locality aggregates are empty.
  void finalizeAnalysis();

  /// Finalized invocations, in execution order. Reuse histograms are
  /// filled in once finalizeAnalysis() (or any report method) has run.
  const std::vector<LoopProfile> &invocations() const { return Profiles; }

  /// Per-label health verdicts, sorted by label. \p Plans (optional)
  /// supplies the pipeline's "why" for each loop.
  std::vector<LoopHealth> health(const xform::PipelineResult *Plans);

  /// Human-readable health report for terminals.
  std::string healthText(const xform::PipelineResult *Plans);

  /// The whole session as JSONL: a session header, phase records, one
  /// record per recorded invocation, then one health record per label.
  std::string jsonl(const xform::PipelineResult *Plans);

  /// Writes jsonl() to \p Path; false on I/O failure.
  bool writeJsonl(const std::string &Path, const xform::PipelineResult *Plans);

private:
  struct LabelAgg {
    unsigned Invocations = 0;
    unsigned Recorded = 0;
    unsigned ThreadsMax = 1;
    double WallUs = 0;
    double AnalysisUs = 0;
    double MaxBusySumUs = 0; ///< Sum over invocations of max worker busy.
    double AvgBusySumUs = 0; ///< Sum over invocations of mean worker busy.
    ReuseHistogram Hist;
    uint64_t FootprintLines = 0;
    uint64_t WorkerLines = 0;
    bool SawParallel = false, SawCondPass = false, SawCondFail = false,
         SawSerialSmall = false;
    /// Invocation counts by dispatch tier (static / conditional / serial /
    /// replay; see LoopHealth — one tier per invocation).
    unsigned TierStatic = 0, TierConditional = 0, TierSerial = 0,
             TierReplay = 0;
    std::string Detail;
  };

  /// Deferred per-array analysis for one profile: computes each pending
  /// stream's reuse histogram and folds it into the label aggregate.
  /// No-op when the profile was already analyzed.
  void analyzeArrays(LoopProfile &P, LabelAgg &Agg);

  SessionOptions Opts;
  unsigned LineShift = 3;
  std::unique_ptr<PerfCounters> Perf; ///< Lazily opened on first beginLoop.
  bool PerfTried = false;
  std::vector<LoopProfile> Profiles;
  std::map<std::string, LabelAgg> Aggregates;
  std::vector<std::pair<std::string, double>> Phases;
};

} // namespace prof
} // namespace iaa

#endif // IAA_PROF_PROFILER_H
