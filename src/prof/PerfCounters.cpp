//===- prof/PerfCounters.cpp - Hardware counters via perf_event -----------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "prof/PerfCounters.h"

#if defined(__linux__) && __has_include(<linux/perf_event.h>)
#define IAA_HAVE_PERF_EVENT 1
#include <cstring>
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace iaa {
namespace prof {

#ifdef IAA_HAVE_PERF_EVENT

namespace {

long perfEventOpen(perf_event_attr &Attr, int GroupFd) {
  // pid=0, cpu=-1: this thread, any CPU.
  return syscall(SYS_perf_event_open, &Attr, 0, -1, GroupFd, 0);
}

int openCounter(uint32_t Type, uint64_t Config, int GroupFd, uint64_t &IdOut) {
  perf_event_attr Attr;
  std::memset(&Attr, 0, sizeof(Attr));
  Attr.size = sizeof(Attr);
  Attr.type = Type;
  Attr.config = Config;
  Attr.disabled = GroupFd < 0 ? 1 : 0; // Leader starts the whole group.
  Attr.exclude_kernel = 1;
  Attr.exclude_hv = 1;
  Attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_ID;
  int Fd = static_cast<int>(perfEventOpen(Attr, GroupFd));
  if (Fd < 0)
    return -1;
  if (ioctl(Fd, PERF_EVENT_IOC_ID, &IdOut) < 0) {
    close(Fd);
    return -1;
  }
  return Fd;
}

} // namespace

PerfCounters::PerfCounters() {
  GroupFd = openCounter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES,
                        /*GroupFd=*/-1, CyclesId);
  if (GroupFd < 0)
    return;
  InstrFd = openCounter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS,
                        GroupFd, InstrId);
  MissFd = openCounter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES,
                       GroupFd, MissId);
  // Cycles + instructions are the useful core; LLC misses are best-effort
  // (some hosts multiplex them away). But a group with no members beyond a
  // leader that fails to read is useless — verify one read end to end and
  // fall back to unavailable if it fails.
  ioctl(GroupFd, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(GroupFd, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
  if (!read().Valid) {
    if (MissFd >= 0)
      close(MissFd);
    if (InstrFd >= 0)
      close(InstrFd);
    close(GroupFd);
    GroupFd = InstrFd = MissFd = -1;
  }
}

PerfCounters::~PerfCounters() {
  if (MissFd >= 0)
    close(MissFd);
  if (InstrFd >= 0)
    close(InstrFd);
  if (GroupFd >= 0)
    close(GroupFd);
}

PerfSample PerfCounters::read() const {
  PerfSample S;
  if (GroupFd < 0)
    return S;
  // PERF_FORMAT_GROUP | PERF_FORMAT_ID layout:
  //   u64 nr; { u64 value; u64 id; } values[nr];
  uint64_t Buf[1 + 2 * 8];
  ssize_t N = ::read(GroupFd, Buf, sizeof(Buf));
  if (N < static_cast<ssize_t>(sizeof(uint64_t)))
    return S;
  uint64_t Nr = Buf[0];
  if (Nr == 0 || N < static_cast<ssize_t>((1 + 2 * Nr) * sizeof(uint64_t)))
    return S;
  for (uint64_t I = 0; I < Nr; ++I) {
    uint64_t Value = Buf[1 + 2 * I];
    uint64_t Id = Buf[2 + 2 * I];
    if (Id == CyclesId)
      S.Cycles = Value;
    else if (Id == InstrId)
      S.Instructions = Value;
    else if (Id == MissId)
      S.LlcMisses = Value;
  }
  S.Valid = true;
  return S;
}

#else // !IAA_HAVE_PERF_EVENT

PerfCounters::PerfCounters() = default;
PerfCounters::~PerfCounters() = default;

PerfSample PerfCounters::read() const { return PerfSample{}; }

#endif

} // namespace prof
} // namespace iaa
