//===- mf/Lexer.cpp - Lexer for the MF language ---------------------------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "mf/Lexer.h"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

using namespace iaa;
using namespace iaa::mf;

const char *iaa::mf::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Eof:         return "end of file";
  case TokenKind::Identifier:  return "identifier";
  case TokenKind::IntLiteral:  return "integer literal";
  case TokenKind::RealLiteral: return "real literal";
  case TokenKind::KwProgram:   return "'program'";
  case TokenKind::KwProcedure: return "'procedure'";
  case TokenKind::KwInteger:   return "'integer'";
  case TokenKind::KwReal:      return "'real'";
  case TokenKind::KwDo:        return "'do'";
  case TokenKind::KwWhile:     return "'while'";
  case TokenKind::KwIf:        return "'if'";
  case TokenKind::KwThen:      return "'then'";
  case TokenKind::KwElse:      return "'else'";
  case TokenKind::KwEnd:       return "'end'";
  case TokenKind::KwCall:      return "'call'";
  case TokenKind::KwAnd:       return "'and'";
  case TokenKind::KwOr:        return "'or'";
  case TokenKind::KwNot:       return "'not'";
  case TokenKind::LParen:      return "'('";
  case TokenKind::RParen:      return "')'";
  case TokenKind::Comma:       return "','";
  case TokenKind::Colon:       return "':'";
  case TokenKind::Assign:      return "'='";
  case TokenKind::Plus:        return "'+'";
  case TokenKind::Minus:       return "'-'";
  case TokenKind::Star:        return "'*'";
  case TokenKind::Slash:       return "'/'";
  case TokenKind::EqEq:        return "'=='";
  case TokenKind::NotEq:       return "'/='";
  case TokenKind::Less:        return "'<'";
  case TokenKind::LessEq:      return "'<='";
  case TokenKind::Greater:     return "'>'";
  case TokenKind::GreaterEq:   return "'>='";
  }
  return "unknown token";
}

static const std::unordered_map<std::string, TokenKind> &keywordTable() {
  static const std::unordered_map<std::string, TokenKind> Table = {
      {"program", TokenKind::KwProgram},
      {"procedure", TokenKind::KwProcedure},
      {"integer", TokenKind::KwInteger},
      {"real", TokenKind::KwReal},
      {"do", TokenKind::KwDo},
      {"while", TokenKind::KwWhile},
      {"if", TokenKind::KwIf},
      {"then", TokenKind::KwThen},
      {"else", TokenKind::KwElse},
      {"end", TokenKind::KwEnd},
      {"call", TokenKind::KwCall},
      {"and", TokenKind::KwAnd},
      {"or", TokenKind::KwOr},
      {"not", TokenKind::KwNot},
  };
  return Table;
}

Lexer::Lexer(std::string Source, DiagnosticEngine &Diags)
    : Source(std::move(Source)), Diags(Diags) {}

char Lexer::peek(unsigned Ahead) const {
  return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
}

char Lexer::advance() {
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  return C;
}

void Lexer::skipTrivia() {
  while (!atEnd()) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '!' || C == '#') {
      while (!atEnd() && peek() != '\n')
        advance();
      continue;
    }
    break;
  }
}

Token Lexer::makeToken(TokenKind Kind) {
  Token T;
  T.Kind = Kind;
  T.Loc = currentLoc();
  return T;
}

Token Lexer::lexToken() {
  skipTrivia();
  if (atEnd())
    return makeToken(TokenKind::Eof);

  Token T = makeToken(TokenKind::Eof);
  char C = peek();

  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
    std::string Text;
    while (!atEnd() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                        peek() == '_'))
      Text += static_cast<char>(
          std::tolower(static_cast<unsigned char>(advance())));
    auto It = keywordTable().find(Text);
    if (It != keywordTable().end()) {
      T.Kind = It->second;
    } else {
      T.Kind = TokenKind::Identifier;
      T.Text = std::move(Text);
    }
    return T;
  }

  if (std::isdigit(static_cast<unsigned char>(C))) {
    std::string Digits;
    bool IsReal = false;
    while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
      Digits += advance();
    // A '.' followed by a digit makes this a real literal; a bare '.' (as in
    // "1." Fortran style) also does.
    if (peek() == '.' &&
        !std::isalpha(static_cast<unsigned char>(peek(1)))) {
      IsReal = true;
      Digits += advance();
      while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
        Digits += advance();
    }
    if (peek() == 'e' || peek() == 'E') {
      char Next = peek(1);
      if (std::isdigit(static_cast<unsigned char>(Next)) || Next == '+' ||
          Next == '-') {
        IsReal = true;
        Digits += advance();
        if (peek() == '+' || peek() == '-')
          Digits += advance();
        while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
          Digits += advance();
      }
    }
    if (IsReal) {
      T.Kind = TokenKind::RealLiteral;
      T.RealValue = std::strtod(Digits.c_str(), nullptr);
    } else {
      T.Kind = TokenKind::IntLiteral;
      T.IntValue = std::strtoll(Digits.c_str(), nullptr, 10);
    }
    return T;
  }

  advance();
  switch (C) {
  case '(': T.Kind = TokenKind::LParen; return T;
  case ')': T.Kind = TokenKind::RParen; return T;
  case ',': T.Kind = TokenKind::Comma; return T;
  case ':': T.Kind = TokenKind::Colon; return T;
  case '+': T.Kind = TokenKind::Plus; return T;
  case '-': T.Kind = TokenKind::Minus; return T;
  case '*': T.Kind = TokenKind::Star; return T;
  case '=':
    if (peek() == '=') {
      advance();
      T.Kind = TokenKind::EqEq;
    } else {
      T.Kind = TokenKind::Assign;
    }
    return T;
  case '/':
    if (peek() == '=') {
      advance();
      T.Kind = TokenKind::NotEq;
    } else {
      T.Kind = TokenKind::Slash;
    }
    return T;
  case '<':
    if (peek() == '=') {
      advance();
      T.Kind = TokenKind::LessEq;
    } else {
      T.Kind = TokenKind::Less;
    }
    return T;
  case '>':
    if (peek() == '=') {
      advance();
      T.Kind = TokenKind::GreaterEq;
    } else {
      T.Kind = TokenKind::Greater;
    }
    return T;
  default:
    Diags.error(T.Loc, std::string("invalid character '") + C + "'");
    return lexToken();
  }
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  for (;;) {
    Tokens.push_back(lexToken());
    if (Tokens.back().is(TokenKind::Eof))
      break;
  }
  return Tokens;
}
