//===- mf/Symbol.h - Variables and procedures of an MF program --*- C++ -*-===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Symbols of an MF program. Following the paper's interprocedural model
/// (Sec. 3.2.1: "we assume no parameter passing, values are passed by global
/// variables only"), every variable is a program-level global.
///
//===----------------------------------------------------------------------===//

#ifndef IAA_MF_SYMBOL_H
#define IAA_MF_SYMBOL_H

#include <cassert>
#include <string>
#include <vector>

namespace iaa {
namespace mf {

class Expr;

/// Element type of a scalar or array variable.
enum class ScalarKind { Int, Real };

/// A declared variable: a scalar (rank 0) or an array of rank 1 or 2.
class Symbol {
public:
  Symbol(std::string Name, ScalarKind Elem, std::vector<const Expr *> Extents,
         unsigned Id)
      : Name(std::move(Name)), Elem(Elem), Extents(std::move(Extents)),
        Id(Id) {}

  const std::string &name() const { return Name; }
  ScalarKind elementKind() const { return Elem; }
  bool isArray() const { return !Extents.empty(); }
  unsigned rank() const { return static_cast<unsigned>(Extents.size()); }

  /// Declared extent expression of dimension \p Dim (0-based). All MF arrays
  /// are 1-based, so dimension Dim spans [1 : extent(Dim)].
  const Expr *extent(unsigned Dim) const {
    assert(Dim < Extents.size() && "extent() dimension out of range");
    return Extents[Dim];
  }

  /// Dense program-unique id, usable as a vector index.
  unsigned id() const { return Id; }

private:
  std::string Name;
  ScalarKind Elem;
  std::vector<const Expr *> Extents;
  unsigned Id;
};

} // namespace mf
} // namespace iaa

#endif // IAA_MF_SYMBOL_H
