//===- mf/Stmt.h - Statement AST for the MF language ------------*- C++ -*-===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Statement nodes of the MF AST: assignment, if/then/else, do loops, while
/// loops, and parameterless procedure calls. Every statement carries a dense
/// program-unique id so analyses can use vectors instead of maps.
///
//===----------------------------------------------------------------------===//

#ifndef IAA_MF_STMT_H
#define IAA_MF_STMT_H

#include "mf/Expr.h"
#include "support/Casting.h"
#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace iaa {
namespace mf {

class Procedure;
class Stmt;

/// An ordered list of statements (one lexical block).
using StmtList = std::vector<Stmt *>;

/// Discriminator for the Stmt hierarchy.
enum class StmtKind {
  Assign,
  If,
  Do,
  While,
  Call,
};

/// Base class of all MF statements.
class Stmt {
public:
  StmtKind kind() const { return Kind; }
  SourceLoc loc() const { return Loc; }
  unsigned id() const { return Id; }

  /// The statement lexically enclosing this one (a Do/While/If), or null for
  /// top-level statements of a procedure body.
  Stmt *parent() const { return Parent; }
  void setParent(Stmt *P) { Parent = P; }

  /// The procedure whose body (transitively) contains this statement.
  Procedure *procedure() const { return Proc; }
  void setProcedure(Procedure *P) { Proc = P; }

  /// Renders the statement (and substatements) as indented MF source text.
  std::string str(unsigned Indent = 0) const;

  virtual ~Stmt() = default;

protected:
  Stmt(StmtKind Kind, SourceLoc Loc, unsigned Id)
      : Kind(Kind), Loc(Loc), Id(Id) {}

private:
  StmtKind Kind;
  SourceLoc Loc;
  unsigned Id;
  Stmt *Parent = nullptr;
  Procedure *Proc = nullptr;
};

/// An assignment `lhs = rhs` where lhs is a VarRef or ArrayRef.
class AssignStmt : public Stmt {
public:
  AssignStmt(const Expr *LHS, const Expr *RHS, SourceLoc Loc, unsigned Id)
      : Stmt(StmtKind::Assign, Loc, Id), LHS(LHS), RHS(RHS) {}

  const Expr *lhs() const { return LHS; }
  const Expr *rhs() const { return RHS; }
  void setRHS(const Expr *E) { RHS = E; }
  /// Replaces the target; \p E must be a VarRef or ArrayRef.
  void setLHS(const Expr *E) {
    assert((isa<VarRef>(E) || isa<ArrayRef>(E)) && "bad assignment target");
    LHS = E;
  }

  /// The symbol written by this assignment.
  const Symbol *writtenSymbol() const;
  /// Null unless the target is an array element.
  const ArrayRef *arrayTarget() const { return dyn_cast<ArrayRef>(LHS); }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Assign; }

private:
  const Expr *LHS;
  const Expr *RHS;
};

/// An if/then/else statement.
class IfStmt : public Stmt {
public:
  IfStmt(const Expr *Cond, StmtList Then, StmtList Else, SourceLoc Loc,
         unsigned Id)
      : Stmt(StmtKind::If, Loc, Id), Cond(Cond), Then(std::move(Then)),
        Else(std::move(Else)) {}

  const Expr *condition() const { return Cond; }
  void setCondition(const Expr *E) { Cond = E; }
  const StmtList &thenBody() const { return Then; }
  const StmtList &elseBody() const { return Else; }
  StmtList &thenBody() { return Then; }
  StmtList &elseBody() { return Else; }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::If; }

private:
  const Expr *Cond;
  StmtList Then;
  StmtList Else;
};

/// A counted `do i = lb, ub[, step]` loop; optionally labeled (`do140:`)
/// so experiments can refer to loops by the names used in the paper.
class DoStmt : public Stmt {
public:
  DoStmt(const Symbol *IndexVar, const Expr *Lower, const Expr *Upper,
         const Expr *Step, StmtList Body, std::string Label, SourceLoc Loc,
         unsigned Id)
      : Stmt(StmtKind::Do, Loc, Id), IndexVar(IndexVar), Lower(Lower),
        Upper(Upper), Step(Step), Body(std::move(Body)),
        Label(std::move(Label)) {}

  const Symbol *indexVar() const { return IndexVar; }
  const Expr *lower() const { return Lower; }
  const Expr *upper() const { return Upper; }
  /// Step expression; null means the default step of 1.
  const Expr *step() const { return Step; }
  /// Replaces the bound expressions (used by rewriting passes).
  void setBounds(const Expr *NewLower, const Expr *NewUpper,
                 const Expr *NewStep) {
    Lower = NewLower;
    Upper = NewUpper;
    Step = NewStep;
  }
  const StmtList &body() const { return Body; }
  StmtList &body() { return Body; }
  const std::string &label() const { return Label; }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Do; }

private:
  const Symbol *IndexVar;
  const Expr *Lower;
  const Expr *Upper;
  const Expr *Step;
  StmtList Body;
  std::string Label;
};

/// A `while (cond) ... end while` loop (Fig. 1(a) of the paper needs these;
/// they participate in the single-indexed analysis but are opaque to the HCG
/// aggregation, which per Sec. 3.2.1 assumes do loops).
class WhileStmt : public Stmt {
public:
  WhileStmt(const Expr *Cond, StmtList Body, SourceLoc Loc, unsigned Id)
      : Stmt(StmtKind::While, Loc, Id), Cond(Cond), Body(std::move(Body)) {}

  const Expr *condition() const { return Cond; }
  void setCondition(const Expr *E) { Cond = E; }
  const StmtList &body() const { return Body; }
  StmtList &body() { return Body; }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::While; }

private:
  const Expr *Cond;
  StmtList Body;
};

/// A parameterless procedure call; all communication is via globals.
class CallStmt : public Stmt {
public:
  CallStmt(std::string CalleeName, SourceLoc Loc, unsigned Id)
      : Stmt(StmtKind::Call, Loc, Id), CalleeName(std::move(CalleeName)) {}

  const std::string &calleeName() const { return CalleeName; }
  Procedure *callee() const { return Callee; }
  void setCallee(Procedure *P) { Callee = P; }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Call; }

private:
  std::string CalleeName;
  Procedure *Callee = nullptr;
};

} // namespace mf
} // namespace iaa

#endif // IAA_MF_STMT_H
