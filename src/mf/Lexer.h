//===- mf/Lexer.h - Lexer for the MF language -------------------*- C++ -*-===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A hand-written lexer for MF source buffers. Identifiers and keywords are
/// case-insensitive (lower-cased on the way in, matching Fortran convention);
/// comments run from '!' or '#' to end of line.
///
//===----------------------------------------------------------------------===//

#ifndef IAA_MF_LEXER_H
#define IAA_MF_LEXER_H

#include "mf/Token.h"
#include "support/Diagnostics.h"

#include <string>
#include <vector>

namespace iaa {
namespace mf {

/// Lexes a full MF buffer into a token vector (ending with Eof).
class Lexer {
public:
  Lexer(std::string Source, DiagnosticEngine &Diags);

  /// Lexes the whole buffer. Invalid characters produce diagnostics and are
  /// skipped so parsing can continue.
  std::vector<Token> lexAll();

private:
  Token lexToken();
  Token makeToken(TokenKind Kind);
  char peek(unsigned Ahead = 0) const;
  char advance();
  bool atEnd() const { return Pos >= Source.size(); }
  void skipTrivia();
  SourceLoc currentLoc() const { return {Line, Col}; }

  std::string Source;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  unsigned Line = 1;
  unsigned Col = 1;
};

} // namespace mf
} // namespace iaa

#endif // IAA_MF_LEXER_H
