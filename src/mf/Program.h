//===- mf/Program.h - Whole-program container for MF ------------*- C++ -*-===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Program class owns every AST node, symbol, and procedure of a parsed
/// MF program (arena style), numbers statements and symbols densely, and
/// offers factory methods used by the parser and by transformation passes.
///
//===----------------------------------------------------------------------===//

#ifndef IAA_MF_PROGRAM_H
#define IAA_MF_PROGRAM_H

#include "mf/Stmt.h"

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace iaa {
namespace mf {

/// A parameterless procedure. The body communicates with the rest of the
/// program through global variables (the paper's interprocedural model).
class Procedure {
public:
  Procedure(std::string Name, unsigned Id) : Name(std::move(Name)), Id(Id) {}

  const std::string &name() const { return Name; }
  unsigned id() const { return Id; }
  const StmtList &body() const { return Body; }
  StmtList &body() { return Body; }

private:
  std::string Name;
  unsigned Id;
  StmtList Body;
};

/// A whole MF program: global symbols, procedures, and a main body (stored
/// as the procedure named "main").
class Program {
public:
  Program() = default;
  Program(const Program &) = delete;
  Program &operator=(const Program &) = delete;

  /// \name Symbols
  /// @{

  /// Declares a new global variable. Returns null (and leaves the table
  /// unchanged) if the name is already taken.
  Symbol *declareSymbol(const std::string &Name, ScalarKind Elem,
                        std::vector<const Expr *> Extents);

  /// Finds a symbol by (lower-case) name, or null.
  Symbol *findSymbol(const std::string &Name) const;

  const std::vector<Symbol *> &symbols() const { return SymbolList; }
  /// @}

  /// \name Procedures
  /// @{
  Procedure *createProcedure(const std::string &Name);
  Procedure *findProcedure(const std::string &Name) const;
  const std::vector<Procedure *> &procedures() const { return ProcList; }

  /// The program entry: the procedure named "main".
  Procedure *mainProcedure() const { return findProcedure("main"); }
  /// @}

  /// \name Expression factories
  /// @{
  const IntLit *makeIntLit(int64_t Value, SourceLoc Loc = {});
  const RealLit *makeRealLit(double Value, SourceLoc Loc = {});
  const VarRef *makeVarRef(const Symbol *Var, SourceLoc Loc = {});
  const ArrayRef *makeArrayRef(const Symbol *Array,
                               std::vector<const Expr *> Subscripts,
                               SourceLoc Loc = {});
  const UnaryExpr *makeUnary(UnaryOp Op, const Expr *Operand,
                             SourceLoc Loc = {});
  const BinaryExpr *makeBinary(BinaryOp Op, const Expr *LHS, const Expr *RHS,
                               SourceLoc Loc = {});
  /// @}

  /// \name Statement factories
  /// @{
  AssignStmt *makeAssign(const Expr *LHS, const Expr *RHS, SourceLoc Loc = {});
  IfStmt *makeIf(const Expr *Cond, StmtList Then, StmtList Else,
                 SourceLoc Loc = {});
  DoStmt *makeDo(const Symbol *IndexVar, const Expr *Lower, const Expr *Upper,
                 const Expr *Step, StmtList Body, std::string Label = "",
                 SourceLoc Loc = {});
  WhileStmt *makeWhile(const Expr *Cond, StmtList Body, SourceLoc Loc = {});
  CallStmt *makeCall(std::string CalleeName, SourceLoc Loc = {});
  /// @}

  /// Total number of statements ever created (ids are in [0, numStmts())).
  unsigned numStmts() const { return NextStmtId; }
  /// Total number of symbols (ids are in [0, numSymbols())).
  unsigned numSymbols() const { return NextSymbolId; }

  /// Recomputes parent/procedure links for every statement. Must be called
  /// after parsing and after any structural transformation.
  void relinkParents();

  /// Visits every statement in the program in lexical order, recursing into
  /// if/do/while bodies. The callback may not mutate the structure.
  void forEachStmt(const std::function<void(Stmt *)> &Fn) const;

  /// Visits every statement of \p Body and its nested bodies.
  static void forEachStmtIn(const StmtList &Body,
                            const std::function<void(Stmt *)> &Fn);

  /// Finds the first Do loop with the given label anywhere in the program,
  /// or null. Labels are how benchmarks name loops ("do140", "do240", ...).
  DoStmt *findLoop(const std::string &Label) const;

  /// Renders the whole program as MF source text.
  std::string str() const;

private:
  template <typename T, typename... Args> T *alloc(Args &&...As);

  std::vector<std::unique_ptr<Expr>> ExprArena;
  std::vector<std::unique_ptr<Stmt>> StmtArena;
  std::vector<std::unique_ptr<Symbol>> SymbolArena;
  std::vector<std::unique_ptr<Procedure>> ProcArena;

  std::unordered_map<std::string, Symbol *> SymbolsByName;
  std::vector<Symbol *> SymbolList;
  std::unordered_map<std::string, Procedure *> ProcsByName;
  std::vector<Procedure *> ProcList;

  unsigned NextStmtId = 0;
  unsigned NextSymbolId = 0;
  unsigned NextProcId = 0;
};

} // namespace mf
} // namespace iaa

#endif // IAA_MF_PROGRAM_H
