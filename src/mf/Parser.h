//===- mf/Parser.h - Recursive-descent parser for MF ------------*- C++ -*-===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses MF source into a Program. The grammar:
///
/// \code
///   program  := 'program' IDENT decl* proc* stmt* 'end'
///   decl     := ('integer'|'real') item (',' item)*
///   item     := IDENT [ '(' expr (',' expr)* ')' ]
///   proc     := 'procedure' IDENT stmt* 'end'
///   stmt     := [IDENT ':'] 'do' IDENT '=' expr ',' expr [',' expr]
///                  stmt* 'end' 'do'
///             | 'while' '(' expr ')' stmt* 'end' 'while'
///             | 'if' '(' expr ')' 'then' stmt* ['else' stmt*] 'end' 'if'
///             | 'call' IDENT
///             | lvalue '=' expr
/// \endcode
///
/// Expressions use conventional precedence (or < and < not < comparison <
/// additive < multiplicative < unary). min/max/mod parse as intrinsic calls.
/// Semantic checks (declared-before-use, rank agreement, integer loop
/// indices, resolvable call targets) run inline and report into the
/// DiagnosticEngine.
///
//===----------------------------------------------------------------------===//

#ifndef IAA_MF_PARSER_H
#define IAA_MF_PARSER_H

#include "mf/Program.h"
#include "mf/Token.h"
#include "support/Diagnostics.h"

#include <memory>
#include <string>
#include <vector>

namespace iaa {
namespace mf {

/// Parses \p Source; returns null if any error was diagnosed.
std::unique_ptr<Program> parseProgram(const std::string &Source,
                                      DiagnosticEngine &Diags);

namespace detail {

/// The recursive-descent parser; exposed for white-box unit tests.
class Parser {
public:
  Parser(std::vector<Token> Tokens, DiagnosticEngine &Diags);

  std::unique_ptr<Program> parse();

private:
  const Token &peek(unsigned Ahead = 0) const;
  const Token &current() const { return peek(0); }
  Token consume();
  bool match(TokenKind Kind);
  bool expect(TokenKind Kind, const char *Context);
  void expectEnd(TokenKind Opener, const char *What);

  void parseDecl(Program &P);
  void parseProcedureBody(Program &P, Procedure *Proc);
  StmtList parseStmtList(Program &P);
  Stmt *parseStmt(Program &P);
  Stmt *parseDo(Program &P, std::string Label);
  Stmt *parseWhile(Program &P);
  Stmt *parseIf(Program &P);
  Stmt *parseCall(Program &P);
  Stmt *parseAssign(Program &P);

  const Expr *parseExpr(Program &P);
  const Expr *parseOr(Program &P);
  const Expr *parseAnd(Program &P);
  const Expr *parseNot(Program &P);
  const Expr *parseComparison(Program &P);
  const Expr *parseAdditive(Program &P);
  const Expr *parseMultiplicative(Program &P);
  const Expr *parseUnary(Program &P);
  const Expr *parsePrimary(Program &P);

  /// Parses IDENT or IDENT(subscripts) as a reference; used for both
  /// rvalues and assignment targets.
  const Expr *parseReference(Program &P);

  /// True when the current tokens begin a statement.
  bool atStmtStart() const;

  std::vector<Token> Tokens;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
};

} // namespace detail
} // namespace mf
} // namespace iaa

#endif // IAA_MF_PARSER_H
