//===- mf/Program.cpp - Whole-program container implementation -----------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "mf/Program.h"

#include <cassert>

using namespace iaa;
using namespace iaa::mf;

bool iaa::mf::isComparisonOp(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Eq:
  case BinaryOp::Ne:
  case BinaryOp::Lt:
  case BinaryOp::Le:
  case BinaryOp::Gt:
  case BinaryOp::Ge:
    return true;
  default:
    return false;
  }
}

bool iaa::mf::isLogicalOp(BinaryOp Op) {
  return Op == BinaryOp::And || Op == BinaryOp::Or;
}

const char *iaa::mf::binaryOpSpelling(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add: return "+";
  case BinaryOp::Sub: return "-";
  case BinaryOp::Mul: return "*";
  case BinaryOp::Div: return "/";
  case BinaryOp::Mod: return "mod";
  case BinaryOp::Min: return "min";
  case BinaryOp::Max: return "max";
  case BinaryOp::Eq:  return "==";
  case BinaryOp::Ne:  return "/=";
  case BinaryOp::Lt:  return "<";
  case BinaryOp::Le:  return "<=";
  case BinaryOp::Gt:  return ">";
  case BinaryOp::Ge:  return ">=";
  case BinaryOp::And: return "and";
  case BinaryOp::Or:  return "or";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// Expression printing
//===----------------------------------------------------------------------===//

std::string Expr::str() const {
  switch (kind()) {
  case ExprKind::IntLit:
    return std::to_string(cast<IntLit>(this)->value());
  case ExprKind::RealLit: {
    std::string S = std::to_string(cast<RealLit>(this)->value());
    return S;
  }
  case ExprKind::VarRef:
    return cast<VarRef>(this)->symbol()->name();
  case ExprKind::ArrayRef: {
    const auto *AR = cast<ArrayRef>(this);
    std::string S = AR->array()->name() + "(";
    for (unsigned I = 0; I < AR->rank(); ++I) {
      if (I)
        S += ", ";
      S += AR->subscript(I)->str();
    }
    return S + ")";
  }
  case ExprKind::Unary: {
    const auto *UE = cast<UnaryExpr>(this);
    const char *Op = UE->op() == UnaryOp::Neg ? "-" : "not ";
    return std::string(Op) + "(" + UE->operand()->str() + ")";
  }
  case ExprKind::Binary: {
    const auto *BE = cast<BinaryExpr>(this);
    BinaryOp Op = BE->op();
    if (Op == BinaryOp::Min || Op == BinaryOp::Max || Op == BinaryOp::Mod)
      return std::string(binaryOpSpelling(Op)) + "(" + BE->lhs()->str() +
             ", " + BE->rhs()->str() + ")";
    return "(" + BE->lhs()->str() + " " + binaryOpSpelling(Op) + " " +
           BE->rhs()->str() + ")";
  }
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// Statement helpers and printing
//===----------------------------------------------------------------------===//

const Symbol *AssignStmt::writtenSymbol() const {
  if (const auto *VR = dyn_cast<VarRef>(LHS))
    return VR->symbol();
  return cast<ArrayRef>(LHS)->array();
}

static void printBody(const StmtList &Body, unsigned Indent,
                      std::string &Out) {
  for (const Stmt *S : Body)
    Out += S->str(Indent);
}

std::string Stmt::str(unsigned Indent) const {
  std::string Pad(Indent * 2, ' ');
  std::string Out;
  switch (kind()) {
  case StmtKind::Assign: {
    const auto *AS = cast<AssignStmt>(this);
    Out = Pad + AS->lhs()->str() + " = " + AS->rhs()->str() + "\n";
    break;
  }
  case StmtKind::If: {
    const auto *IS = cast<IfStmt>(this);
    Out = Pad + "if (" + IS->condition()->str() + ") then\n";
    printBody(IS->thenBody(), Indent + 1, Out);
    if (!IS->elseBody().empty()) {
      Out += Pad + "else\n";
      printBody(IS->elseBody(), Indent + 1, Out);
    }
    Out += Pad + "end if\n";
    break;
  }
  case StmtKind::Do: {
    const auto *DS = cast<DoStmt>(this);
    Out = Pad;
    if (!DS->label().empty())
      Out += DS->label() + ": ";
    Out += "do " + DS->indexVar()->name() + " = " + DS->lower()->str() +
           ", " + DS->upper()->str();
    if (DS->step())
      Out += ", " + DS->step()->str();
    Out += "\n";
    printBody(DS->body(), Indent + 1, Out);
    Out += Pad + "end do\n";
    break;
  }
  case StmtKind::While: {
    const auto *WS = cast<WhileStmt>(this);
    Out = Pad + "while (" + WS->condition()->str() + ")\n";
    printBody(WS->body(), Indent + 1, Out);
    Out += Pad + "end while\n";
    break;
  }
  case StmtKind::Call: {
    const auto *CS = cast<CallStmt>(this);
    Out = Pad + "call " + CS->calleeName() + "\n";
    break;
  }
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Program
//===----------------------------------------------------------------------===//

template <typename T, typename... Args> T *Program::alloc(Args &&...As) {
  auto Owned = std::make_unique<T>(std::forward<Args>(As)...);
  T *Raw = Owned.get();
  if constexpr (std::is_base_of_v<Expr, T>)
    ExprArena.push_back(std::move(Owned));
  else
    StmtArena.push_back(std::move(Owned));
  return Raw;
}

Symbol *Program::declareSymbol(const std::string &Name, ScalarKind Elem,
                               std::vector<const Expr *> Extents) {
  if (SymbolsByName.count(Name))
    return nullptr;
  auto Owned =
      std::make_unique<Symbol>(Name, Elem, std::move(Extents), NextSymbolId++);
  Symbol *Raw = Owned.get();
  SymbolArena.push_back(std::move(Owned));
  SymbolsByName[Name] = Raw;
  SymbolList.push_back(Raw);
  return Raw;
}

Symbol *Program::findSymbol(const std::string &Name) const {
  auto It = SymbolsByName.find(Name);
  return It == SymbolsByName.end() ? nullptr : It->second;
}

Procedure *Program::createProcedure(const std::string &Name) {
  if (ProcsByName.count(Name))
    return nullptr;
  auto Owned = std::make_unique<Procedure>(Name, NextProcId++);
  Procedure *Raw = Owned.get();
  ProcArena.push_back(std::move(Owned));
  ProcsByName[Name] = Raw;
  ProcList.push_back(Raw);
  return Raw;
}

Procedure *Program::findProcedure(const std::string &Name) const {
  auto It = ProcsByName.find(Name);
  return It == ProcsByName.end() ? nullptr : It->second;
}

const IntLit *Program::makeIntLit(int64_t Value, SourceLoc Loc) {
  return alloc<IntLit>(Value, Loc);
}

const RealLit *Program::makeRealLit(double Value, SourceLoc Loc) {
  return alloc<RealLit>(Value, Loc);
}

const VarRef *Program::makeVarRef(const Symbol *Var, SourceLoc Loc) {
  assert(Var && "null symbol in VarRef");
  return alloc<VarRef>(Var, Loc);
}

const ArrayRef *Program::makeArrayRef(const Symbol *Array,
                                      std::vector<const Expr *> Subscripts,
                                      SourceLoc Loc) {
  assert(Array && Array->isArray() && "ArrayRef needs an array symbol");
  return alloc<ArrayRef>(Array, std::move(Subscripts), Loc);
}

const UnaryExpr *Program::makeUnary(UnaryOp Op, const Expr *Operand,
                                    SourceLoc Loc) {
  return alloc<UnaryExpr>(Op, Operand, Loc);
}

const BinaryExpr *Program::makeBinary(BinaryOp Op, const Expr *LHS,
                                      const Expr *RHS, SourceLoc Loc) {
  return alloc<BinaryExpr>(Op, LHS, RHS, Loc);
}

AssignStmt *Program::makeAssign(const Expr *LHS, const Expr *RHS,
                                SourceLoc Loc) {
  assert((isa<VarRef>(LHS) || isa<ArrayRef>(LHS)) &&
         "assignment target must be a variable or array element");
  return alloc<AssignStmt>(LHS, RHS, Loc, NextStmtId++);
}

IfStmt *Program::makeIf(const Expr *Cond, StmtList Then, StmtList Else,
                        SourceLoc Loc) {
  return alloc<IfStmt>(Cond, std::move(Then), std::move(Else), Loc,
                       NextStmtId++);
}

DoStmt *Program::makeDo(const Symbol *IndexVar, const Expr *Lower,
                        const Expr *Upper, const Expr *Step, StmtList Body,
                        std::string Label, SourceLoc Loc) {
  assert(IndexVar && !IndexVar->isArray() && "do index must be a scalar");
  return alloc<DoStmt>(IndexVar, Lower, Upper, Step, std::move(Body),
                       std::move(Label), Loc, NextStmtId++);
}

WhileStmt *Program::makeWhile(const Expr *Cond, StmtList Body, SourceLoc Loc) {
  return alloc<WhileStmt>(Cond, std::move(Body), Loc, NextStmtId++);
}

CallStmt *Program::makeCall(std::string CalleeName, SourceLoc Loc) {
  return alloc<CallStmt>(std::move(CalleeName), Loc, NextStmtId++);
}

static void relinkBody(StmtList &Body, Stmt *Parent, Procedure *Proc) {
  for (Stmt *S : Body) {
    S->setParent(Parent);
    S->setProcedure(Proc);
    if (auto *IS = dyn_cast<IfStmt>(S)) {
      relinkBody(IS->thenBody(), S, Proc);
      relinkBody(IS->elseBody(), S, Proc);
    } else if (auto *DS = dyn_cast<DoStmt>(S)) {
      relinkBody(DS->body(), S, Proc);
    } else if (auto *WS = dyn_cast<WhileStmt>(S)) {
      relinkBody(WS->body(), S, Proc);
    }
  }
}

void Program::relinkParents() {
  for (Procedure *P : ProcList)
    relinkBody(P->body(), /*Parent=*/nullptr, P);
}

void Program::forEachStmtIn(const StmtList &Body,
                            const std::function<void(Stmt *)> &Fn) {
  for (Stmt *S : Body) {
    Fn(S);
    if (auto *IS = dyn_cast<IfStmt>(S)) {
      forEachStmtIn(IS->thenBody(), Fn);
      forEachStmtIn(IS->elseBody(), Fn);
    } else if (auto *DS = dyn_cast<DoStmt>(S)) {
      forEachStmtIn(DS->body(), Fn);
    } else if (auto *WS = dyn_cast<WhileStmt>(S)) {
      forEachStmtIn(WS->body(), Fn);
    }
  }
}

void Program::forEachStmt(const std::function<void(Stmt *)> &Fn) const {
  for (Procedure *P : ProcList)
    forEachStmtIn(P->body(), Fn);
}

DoStmt *Program::findLoop(const std::string &Label) const {
  DoStmt *Found = nullptr;
  forEachStmt([&](Stmt *S) {
    if (Found)
      return;
    if (auto *DS = dyn_cast<DoStmt>(S))
      if (DS->label() == Label)
        Found = DS;
  });
  return Found;
}

std::string Program::str() const {
  std::string Out = "program p\n";
  for (const Symbol *Sym : SymbolList) {
    Out += Sym->elementKind() == ScalarKind::Int ? "  integer " : "  real ";
    Out += Sym->name();
    if (Sym->isArray()) {
      Out += "(";
      for (unsigned D = 0; D < Sym->rank(); ++D) {
        if (D)
          Out += ", ";
        Out += Sym->extent(D)->str();
      }
      Out += ")";
    }
    Out += "\n";
  }
  for (const Procedure *P : ProcList) {
    if (P->name() == "main")
      continue;
    Out += "  procedure " + P->name() + "\n";
    for (const Stmt *S : P->body())
      Out += S->str(2);
    Out += "  end\n";
  }
  if (const Procedure *Main = mainProcedure())
    for (const Stmt *S : Main->body())
      Out += S->str(1);
  Out += "end\n";
  return Out;
}
