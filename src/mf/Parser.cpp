//===- mf/Parser.cpp - Recursive-descent parser for MF --------------------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "mf/Parser.h"

#include "mf/Lexer.h"
#include "support/Statistic.h"
#include "support/Trace.h"

#include <cassert>

using namespace iaa;
using namespace iaa::mf;
using namespace iaa::mf::detail;

#define IAA_STAT_GROUP "frontend"
IAA_STAT(lex_tokens, "Tokens produced by the lexer");
IAA_STAT(parse_programs, "Programs parsed");
IAA_STAT(parse_stmts, "Statements parsed");

std::unique_ptr<Program> iaa::mf::parseProgram(const std::string &Source,
                                               DiagnosticEngine &Diags) {
  trace::TraceScope Span("parse-program", "frontend");
  std::vector<Token> Tokens;
  {
    trace::TraceScope LexSpan("lex", "frontend");
    Lexer Lex(Source, Diags);
    Tokens = Lex.lexAll();
    lex_tokens += Tokens.size();
  }
  std::unique_ptr<Program> Prog;
  {
    trace::TraceScope ParseSpan("parse", "frontend");
    Parser P(std::move(Tokens), Diags);
    Prog = P.parse();
  }
  if (Diags.hasErrors())
    return nullptr;
  if (Prog) {
    ++parse_programs;
    parse_stmts += Prog->numStmts();
    Span.arg("stmts", std::to_string(Prog->numStmts()));
  }
  return Prog;
}

Parser::Parser(std::vector<Token> Tokens, DiagnosticEngine &Diags)
    : Tokens(std::move(Tokens)), Diags(Diags) {
  assert(!this->Tokens.empty() && this->Tokens.back().is(TokenKind::Eof) &&
         "token stream must end with Eof");
}

const Token &Parser::peek(unsigned Ahead) const {
  size_t Idx = Pos + Ahead;
  if (Idx >= Tokens.size())
    Idx = Tokens.size() - 1; // Eof
  return Tokens[Idx];
}

Token Parser::consume() {
  Token T = Tokens[Pos];
  if (Pos + 1 < Tokens.size())
    ++Pos;
  return T;
}

bool Parser::match(TokenKind Kind) {
  if (!current().is(Kind))
    return false;
  consume();
  return true;
}

bool Parser::expect(TokenKind Kind, const char *Context) {
  if (match(Kind))
    return true;
  Diags.error(current().Loc, std::string("expected ") + tokenKindName(Kind) +
                                 " " + Context + ", found " +
                                 tokenKindName(current().Kind));
  return false;
}

void Parser::expectEnd(TokenKind Opener, const char *What) {
  expect(TokenKind::KwEnd, What);
  // 'end do' / 'end while' / 'end if' — the trailing keyword is required so
  // nesting errors are caught close to their source.
  if (!match(Opener))
    Diags.error(current().Loc,
                std::string("expected the matching keyword after 'end' ") +
                    What);
}

std::unique_ptr<Program> Parser::parse() {
  auto P = std::make_unique<Program>();

  expect(TokenKind::KwProgram, "at start of program");
  if (current().is(TokenKind::Identifier))
    consume(); // Program name is decorative.

  // Declarations.
  while (current().is(TokenKind::KwInteger) ||
         current().is(TokenKind::KwReal))
    parseDecl(*P);

  // Procedures.
  while (current().is(TokenKind::KwProcedure)) {
    consume();
    SourceLoc NameLoc = current().Loc;
    std::string Name = current().Text;
    if (!expect(TokenKind::Identifier, "as procedure name"))
      break;
    Procedure *Proc = P->createProcedure(Name);
    if (!Proc) {
      Diags.error(NameLoc, "redefinition of procedure '" + Name + "'");
      Proc = P->findProcedure(Name);
    }
    parseProcedureBody(*P, Proc);
  }

  // Main body.
  Procedure *Main = P->createProcedure("main");
  Main->body() = parseStmtList(*P);
  expect(TokenKind::KwEnd, "at end of program");

  // Resolve call targets now that every procedure has been seen.
  P->forEachStmt([&](Stmt *S) {
    auto *CS = dyn_cast<CallStmt>(S);
    if (!CS)
      return;
    Procedure *Callee = P->findProcedure(CS->calleeName());
    if (!Callee) {
      Diags.error(CS->loc(), "call to undefined procedure '" +
                                 CS->calleeName() + "'");
      return;
    }
    CS->setCallee(Callee);
  });

  P->relinkParents();
  return P;
}

void Parser::parseDecl(Program &P) {
  ScalarKind Elem = current().is(TokenKind::KwInteger) ? ScalarKind::Int
                                                       : ScalarKind::Real;
  consume();
  do {
    SourceLoc NameLoc = current().Loc;
    std::string Name = current().Text;
    if (!expect(TokenKind::Identifier, "in declaration"))
      return;
    std::vector<const Expr *> Extents;
    if (match(TokenKind::LParen)) {
      do {
        Extents.push_back(parseExpr(P));
      } while (match(TokenKind::Comma));
      expect(TokenKind::RParen, "after array extents");
      if (Extents.size() > 2)
        Diags.error(NameLoc, "MF arrays have rank 1 or 2");
    }
    if (!P.declareSymbol(Name, Elem, std::move(Extents)))
      Diags.error(NameLoc, "redeclaration of '" + Name + "'");
  } while (match(TokenKind::Comma));
}

void Parser::parseProcedureBody(Program &P, Procedure *Proc) {
  StmtList Body = parseStmtList(P);
  if (Proc)
    Proc->body() = std::move(Body);
  expect(TokenKind::KwEnd, "at end of procedure");
}

bool Parser::atStmtStart() const {
  switch (current().Kind) {
  case TokenKind::KwDo:
  case TokenKind::KwWhile:
  case TokenKind::KwIf:
  case TokenKind::KwCall:
  case TokenKind::Identifier:
    return true;
  default:
    return false;
  }
}

StmtList Parser::parseStmtList(Program &P) {
  StmtList Body;
  while (atStmtStart()) {
    Stmt *S = parseStmt(P);
    if (!S)
      break;
    Body.push_back(S);
  }
  return Body;
}

Stmt *Parser::parseStmt(Program &P) {
  // Labeled do loop: IDENT ':' 'do' ...
  if (current().is(TokenKind::Identifier) && peek(1).is(TokenKind::Colon)) {
    std::string Label = current().Text;
    consume();
    consume();
    if (!current().is(TokenKind::KwDo)) {
      Diags.error(current().Loc, "only do loops can be labeled");
      return nullptr;
    }
    consume();
    return parseDo(P, std::move(Label));
  }

  switch (current().Kind) {
  case TokenKind::KwDo:
    consume();
    return parseDo(P, "");
  case TokenKind::KwWhile:
    consume();
    return parseWhile(P);
  case TokenKind::KwIf:
    consume();
    return parseIf(P);
  case TokenKind::KwCall:
    consume();
    return parseCall(P);
  case TokenKind::Identifier:
    return parseAssign(P);
  default:
    Diags.error(current().Loc, "expected a statement");
    return nullptr;
  }
}

Stmt *Parser::parseDo(Program &P, std::string Label) {
  SourceLoc Loc = current().Loc;
  std::string IndexName = current().Text;
  if (!expect(TokenKind::Identifier, "as do-loop index"))
    return nullptr;
  Symbol *Index = P.findSymbol(IndexName);
  if (!Index) {
    Diags.error(Loc, "undeclared loop index '" + IndexName + "'");
    return nullptr;
  }
  if (Index->isArray() || Index->elementKind() != ScalarKind::Int)
    Diags.error(Loc, "do-loop index '" + IndexName +
                         "' must be an integer scalar");
  expect(TokenKind::Assign, "after do-loop index");
  const Expr *Lower = parseExpr(P);
  expect(TokenKind::Comma, "between do-loop bounds");
  const Expr *Upper = parseExpr(P);
  const Expr *Step = nullptr;
  if (match(TokenKind::Comma))
    Step = parseExpr(P);
  StmtList Body = parseStmtList(P);
  expectEnd(TokenKind::KwDo, "to close the do loop");
  return P.makeDo(Index, Lower, Upper, Step, std::move(Body),
                  std::move(Label), Loc);
}

Stmt *Parser::parseWhile(Program &P) {
  SourceLoc Loc = current().Loc;
  expect(TokenKind::LParen, "after 'while'");
  const Expr *Cond = parseExpr(P);
  expect(TokenKind::RParen, "after while condition");
  StmtList Body = parseStmtList(P);
  expectEnd(TokenKind::KwWhile, "to close the while loop");
  return P.makeWhile(Cond, std::move(Body), Loc);
}

Stmt *Parser::parseIf(Program &P) {
  SourceLoc Loc = current().Loc;
  expect(TokenKind::LParen, "after 'if'");
  const Expr *Cond = parseExpr(P);
  expect(TokenKind::RParen, "after if condition");
  expect(TokenKind::KwThen, "after if condition");
  StmtList Then = parseStmtList(P);
  StmtList Else;
  if (match(TokenKind::KwElse))
    Else = parseStmtList(P);
  expectEnd(TokenKind::KwIf, "to close the if statement");
  return P.makeIf(Cond, std::move(Then), std::move(Else), Loc);
}

Stmt *Parser::parseCall(Program &P) {
  SourceLoc Loc = current().Loc;
  std::string Name = current().Text;
  if (!expect(TokenKind::Identifier, "as call target"))
    return nullptr;
  return P.makeCall(std::move(Name), Loc);
}

Stmt *Parser::parseAssign(Program &P) {
  SourceLoc Loc = current().Loc;
  const Expr *LHS = parseReference(P);
  if (!LHS)
    return nullptr;
  expect(TokenKind::Assign, "in assignment");
  const Expr *RHS = parseExpr(P);
  if (!RHS)
    return nullptr;
  return P.makeAssign(LHS, RHS, Loc);
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

const Expr *Parser::parseExpr(Program &P) { return parseOr(P); }

const Expr *Parser::parseOr(Program &P) {
  const Expr *E = parseAnd(P);
  while (current().is(TokenKind::KwOr)) {
    SourceLoc Loc = consume().Loc;
    E = P.makeBinary(BinaryOp::Or, E, parseAnd(P), Loc);
  }
  return E;
}

const Expr *Parser::parseAnd(Program &P) {
  const Expr *E = parseNot(P);
  while (current().is(TokenKind::KwAnd)) {
    SourceLoc Loc = consume().Loc;
    E = P.makeBinary(BinaryOp::And, E, parseNot(P), Loc);
  }
  return E;
}

const Expr *Parser::parseNot(Program &P) {
  if (current().is(TokenKind::KwNot)) {
    SourceLoc Loc = consume().Loc;
    return P.makeUnary(UnaryOp::Not, parseNot(P), Loc);
  }
  return parseComparison(P);
}

const Expr *Parser::parseComparison(Program &P) {
  const Expr *E = parseAdditive(P);
  BinaryOp Op;
  switch (current().Kind) {
  case TokenKind::EqEq:      Op = BinaryOp::Eq; break;
  case TokenKind::NotEq:     Op = BinaryOp::Ne; break;
  case TokenKind::Less:      Op = BinaryOp::Lt; break;
  case TokenKind::LessEq:    Op = BinaryOp::Le; break;
  case TokenKind::Greater:   Op = BinaryOp::Gt; break;
  case TokenKind::GreaterEq: Op = BinaryOp::Ge; break;
  default:
    return E;
  }
  SourceLoc Loc = consume().Loc;
  return P.makeBinary(Op, E, parseAdditive(P), Loc);
}

const Expr *Parser::parseAdditive(Program &P) {
  const Expr *E = parseMultiplicative(P);
  for (;;) {
    BinaryOp Op;
    if (current().is(TokenKind::Plus))
      Op = BinaryOp::Add;
    else if (current().is(TokenKind::Minus))
      Op = BinaryOp::Sub;
    else
      return E;
    SourceLoc Loc = consume().Loc;
    E = P.makeBinary(Op, E, parseMultiplicative(P), Loc);
  }
}

const Expr *Parser::parseMultiplicative(Program &P) {
  const Expr *E = parseUnary(P);
  for (;;) {
    BinaryOp Op;
    if (current().is(TokenKind::Star))
      Op = BinaryOp::Mul;
    else if (current().is(TokenKind::Slash))
      Op = BinaryOp::Div;
    else
      return E;
    SourceLoc Loc = consume().Loc;
    E = P.makeBinary(Op, E, parseUnary(P), Loc);
  }
}

const Expr *Parser::parseUnary(Program &P) {
  if (current().is(TokenKind::Minus)) {
    SourceLoc Loc = consume().Loc;
    return P.makeUnary(UnaryOp::Neg, parseUnary(P), Loc);
  }
  if (current().is(TokenKind::Plus)) {
    consume();
    return parseUnary(P);
  }
  return parsePrimary(P);
}

const Expr *Parser::parsePrimary(Program &P) {
  const Token &T = current();
  switch (T.Kind) {
  case TokenKind::IntLiteral: {
    Token Lit = consume();
    return P.makeIntLit(Lit.IntValue, Lit.Loc);
  }
  case TokenKind::RealLiteral: {
    Token Lit = consume();
    return P.makeRealLit(Lit.RealValue, Lit.Loc);
  }
  case TokenKind::LParen: {
    consume();
    const Expr *E = parseExpr(P);
    expect(TokenKind::RParen, "after parenthesized expression");
    return E;
  }
  case TokenKind::Identifier:
    return parseReference(P);
  default:
    Diags.error(T.Loc, std::string("expected an expression, found ") +
                           tokenKindName(T.Kind));
    consume();
    return P.makeIntLit(0, T.Loc);
  }
}

const Expr *Parser::parseReference(Program &P) {
  Token Name = consume();
  assert(Name.is(TokenKind::Identifier) && "reference must be an identifier");

  // Binary intrinsics spelled like calls.
  if ((Name.Text == "min" || Name.Text == "max" || Name.Text == "mod") &&
      current().is(TokenKind::LParen) && !P.findSymbol(Name.Text)) {
    consume();
    const Expr *A = parseExpr(P);
    expect(TokenKind::Comma, "between intrinsic arguments");
    const Expr *B = parseExpr(P);
    expect(TokenKind::RParen, "after intrinsic arguments");
    BinaryOp Op = Name.Text == "min"   ? BinaryOp::Min
                  : Name.Text == "max" ? BinaryOp::Max
                                       : BinaryOp::Mod;
    return P.makeBinary(Op, A, B, Name.Loc);
  }

  Symbol *Sym = P.findSymbol(Name.Text);
  if (!Sym) {
    Diags.error(Name.Loc, "use of undeclared variable '" + Name.Text + "'");
    Sym = P.declareSymbol(Name.Text, ScalarKind::Int, {});
  }

  if (match(TokenKind::LParen)) {
    std::vector<const Expr *> Subs;
    do {
      Subs.push_back(parseExpr(P));
    } while (match(TokenKind::Comma));
    expect(TokenKind::RParen, "after array subscripts");
    if (!Sym->isArray()) {
      Diags.error(Name.Loc, "'" + Name.Text + "' is not an array");
      return P.makeVarRef(Sym, Name.Loc);
    }
    if (Subs.size() != Sym->rank())
      Diags.error(Name.Loc, "'" + Name.Text + "' has rank " +
                                std::to_string(Sym->rank()) + " but " +
                                std::to_string(Subs.size()) +
                                " subscripts were given");
    return P.makeArrayRef(Sym, std::move(Subs), Name.Loc);
  }

  if (Sym->isArray())
    Diags.error(Name.Loc,
                "array '" + Name.Text + "' used without subscripts");
  return P.makeVarRef(Sym, Name.Loc);
}
