//===- mf/Expr.h - Expression AST for the MF language -----------*- C++ -*-===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Expression nodes of the MF AST. Expressions are immutable once built and
/// owned by the enclosing Program's arena; analyses hold plain pointers.
///
//===----------------------------------------------------------------------===//

#ifndef IAA_MF_EXPR_H
#define IAA_MF_EXPR_H

#include "mf/Symbol.h"
#include "support/Casting.h"
#include "support/SourceLoc.h"

#include <cstdint>
#include <string>
#include <vector>

namespace iaa {
namespace mf {

/// Discriminator for the Expr hierarchy.
enum class ExprKind {
  IntLit,
  RealLit,
  VarRef,
  ArrayRef,
  Unary,
  Binary,
};

/// Base class of all MF expressions.
class Expr {
public:
  ExprKind kind() const { return Kind; }
  SourceLoc loc() const { return Loc; }

  /// Renders the expression as MF source text.
  std::string str() const;

  virtual ~Expr() = default;

protected:
  Expr(ExprKind Kind, SourceLoc Loc) : Kind(Kind), Loc(Loc) {}

private:
  ExprKind Kind;
  SourceLoc Loc;
};

/// An integer literal.
class IntLit : public Expr {
public:
  IntLit(int64_t Value, SourceLoc Loc)
      : Expr(ExprKind::IntLit, Loc), Value(Value) {}

  int64_t value() const { return Value; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::IntLit; }

private:
  int64_t Value;
};

/// A real (floating point) literal.
class RealLit : public Expr {
public:
  RealLit(double Value, SourceLoc Loc)
      : Expr(ExprKind::RealLit, Loc), Value(Value) {}

  double value() const { return Value; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::RealLit; }

private:
  double Value;
};

/// A reference to a scalar variable.
class VarRef : public Expr {
public:
  VarRef(const Symbol *Var, SourceLoc Loc)
      : Expr(ExprKind::VarRef, Loc), Var(Var) {}

  const Symbol *symbol() const { return Var; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::VarRef; }

private:
  const Symbol *Var;
};

/// A subscripted array reference a(e1[, e2]).
class ArrayRef : public Expr {
public:
  ArrayRef(const Symbol *Array, std::vector<const Expr *> Subscripts,
           SourceLoc Loc)
      : Expr(ExprKind::ArrayRef, Loc), Array(Array),
        Subscripts(std::move(Subscripts)) {}

  const Symbol *array() const { return Array; }
  unsigned rank() const { return static_cast<unsigned>(Subscripts.size()); }
  const Expr *subscript(unsigned Dim) const { return Subscripts[Dim]; }
  const std::vector<const Expr *> &subscripts() const { return Subscripts; }

  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::ArrayRef;
  }

private:
  const Symbol *Array;
  std::vector<const Expr *> Subscripts;
};

/// Unary operators.
enum class UnaryOp { Neg, Not };

/// A unary expression.
class UnaryExpr : public Expr {
public:
  UnaryExpr(UnaryOp Op, const Expr *Operand, SourceLoc Loc)
      : Expr(ExprKind::Unary, Loc), Op(Op), Operand(Operand) {}

  UnaryOp op() const { return Op; }
  const Expr *operand() const { return Operand; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Unary; }

private:
  UnaryOp Op;
  const Expr *Operand;
};

/// Binary operators, including comparisons, logical connectives, and the
/// min/max/mod intrinsics (which parse as calls but are binary operations).
enum class BinaryOp {
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  Min,
  Max,
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  And,
  Or,
};

/// True for ==, /=, <, <=, >, >=.
bool isComparisonOp(BinaryOp Op);
/// True for 'and' / 'or'.
bool isLogicalOp(BinaryOp Op);
/// MF source spelling of \p Op.
const char *binaryOpSpelling(BinaryOp Op);

/// A binary expression.
class BinaryExpr : public Expr {
public:
  BinaryExpr(BinaryOp Op, const Expr *LHS, const Expr *RHS, SourceLoc Loc)
      : Expr(ExprKind::Binary, Loc), Op(Op), LHS(LHS), RHS(RHS) {}

  BinaryOp op() const { return Op; }
  const Expr *lhs() const { return LHS; }
  const Expr *rhs() const { return RHS; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Binary; }

private:
  BinaryOp Op;
  const Expr *LHS;
  const Expr *RHS;
};

} // namespace mf
} // namespace iaa

#endif // IAA_MF_EXPR_H
