//===- mf/Token.h - Token definitions for the MF language -------*- C++ -*-===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokens of MF ("mini Fortran"), the small structured language this project
/// analyzes. MF covers exactly the subset of Fortran 77 that the paper's
/// formalization assumes: do/while/if statements, assignments, parameterless
/// procedure calls (communication through global variables), and integer and
/// real scalars and arrays.
///
//===----------------------------------------------------------------------===//

#ifndef IAA_MF_TOKEN_H
#define IAA_MF_TOKEN_H

#include "support/SourceLoc.h"

#include <cstdint>
#include <string>

namespace iaa {
namespace mf {

/// Kinds of MF tokens.
enum class TokenKind {
  Eof,
  Identifier,
  IntLiteral,
  RealLiteral,

  // Keywords.
  KwProgram,
  KwProcedure,
  KwInteger,
  KwReal,
  KwDo,
  KwWhile,
  KwIf,
  KwThen,
  KwElse,
  KwEnd,
  KwCall,
  KwAnd,
  KwOr,
  KwNot,

  // Punctuation and operators.
  LParen,
  RParen,
  Comma,
  Colon,
  Assign, // =
  Plus,
  Minus,
  Star,
  Slash,
  EqEq,   // ==
  NotEq,  // /= or !=
  Less,
  LessEq,
  Greater,
  GreaterEq,
};

/// Returns a human-readable spelling of \p Kind for diagnostics.
const char *tokenKindName(TokenKind Kind);

/// One lexed MF token.
struct Token {
  TokenKind Kind = TokenKind::Eof;
  SourceLoc Loc;
  std::string Text;    ///< Identifier spelling (lower-cased).
  int64_t IntValue = 0;
  double RealValue = 0;

  bool is(TokenKind K) const { return Kind == K; }
};

} // namespace mf
} // namespace iaa

#endif // IAA_MF_TOKEN_H
