//===- verify/PlanMutator.h - Seeded plan mutations for testing -*- C++ -*-===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded mutations that corrupt a pipeline result the way a planner bug
/// would: dropping a privatization, dropping a recognized reduction,
/// claiming an unproved last-value writeback, or force-marking a loop
/// parallel past a failed dependence proof. The differential harness
/// applies one mutation at a time and asserts that the plan auditor flags
/// it statically AND the shadow-memory race checker confirms it
/// dynamically.
///
//===----------------------------------------------------------------------===//

#ifndef IAA_VERIFY_PLANMUTATOR_H
#define IAA_VERIFY_PLANMUTATOR_H

#include "xform/Parallelizer.h"

#include <string>

namespace iaa {
namespace verify {

enum class MutationKind {
  /// Remove an array from the plan's privatized (and live-out) sets, as if
  /// the privatizer never ran: its accesses become shared.
  DropPrivatization,
  /// Remove a scalar from the plan's reduction set: the s = s + e updates
  /// become unprotected shared-scalar writes.
  DropReduction,
  /// Claim the last-value premise for a live-out array the planner refused
  /// to privatize (adds it to PrivateArrays/LiveOutArrays and force-marks
  /// the loop parallel).
  SkipLastValue,
  /// Force-mark a serial loop parallel, as if a dependence or injectivity
  /// proof succeeded when it did not (Symbol is ignored).
  ForceParallel,
  /// Strip a runtime-conditional plan's checks and mark the loop
  /// unconditionally parallel, as if the inspector had been skipped: the
  /// dependence the checks were guarding is now undischarged (Symbol is
  /// ignored).
  DropRuntimeCheck,
  /// Pretend the recurrence solver proved a fact it did not: promote a
  /// runtime-conditional plan to unconditional parallel, moving its checks
  /// into FallbackChecks as a genuine promotion would. The auditor must
  /// refuse to certify it (it re-derives recurrence facts from scratch) and
  /// the race checker must flag the undischarged dependence dynamically
  /// (Symbol is ignored).
  ForgeRecurrenceFact,
};

const char *mutationKindName(MutationKind K);

struct Mutation {
  MutationKind Kind = MutationKind::ForceParallel;
  std::string Loop;   ///< Label of the loop to corrupt.
  std::string Symbol; ///< Array/scalar name (unused for ForceParallel).
};

/// Applies \p M to \p R in place. Returns false when the loop or symbol
/// does not exist in \p P (the result is then unchanged).
bool applyMutation(xform::PipelineResult &R, const mf::Program &P,
                   const Mutation &M);

} // namespace verify
} // namespace iaa

#endif // IAA_VERIFY_PLANMUTATOR_H
