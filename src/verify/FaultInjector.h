//===- verify/FaultInjector.h - Deterministic fault injection ---*- C++ -*-===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic fault injection for the containment tests: an
/// interp::FaultInjectionHook implementation that forces a structured fault
/// at chosen (loop, iteration) points — optionally only when the iteration
/// runs inside a parallel chunk, so a serial replay of the rolled-back loop
/// deterministically recovers — and can instruct the interpreter to skip a
/// loop's runtime-check inspection entirely (a lying inspector / stale
/// verdict), dispatching the loop parallel against data the checks would
/// have rejected.
///
/// The injector is configured before the run and immutable during it, so
/// workers may consult it concurrently without synchronization.
///
//===----------------------------------------------------------------------===//

#ifndef IAA_VERIFY_FAULTINJECTOR_H
#define IAA_VERIFY_FAULTINJECTOR_H

#include "interp/Fault.h"

#include <cstdint>
#include <set>
#include <string>
#include <vector>

namespace iaa {
namespace verify {

/// One configured injection site.
struct InjectionPoint {
  /// Label of the target loop ("<unlabeled>" never matches; injection
  /// targets need labels).
  std::string Loop;
  /// Iteration to fault at; INT64_MIN faults every iteration (used by the
  /// first-fault-wins tests, where every worker must trap one).
  int64_t Iteration = 0;
  /// When set, the fault only fires inside a parallel chunk — the serial
  /// replay of the rolled-back loop then recovers deterministically.
  bool ParallelOnly = true;
  /// The fault to synthesize.
  interp::FaultKind Kind = interp::FaultKind::Injected;
  std::string Detail = "injected fault";

  static constexpr int64_t EveryIteration = INT64_MIN;
};

/// Test-only fault injector (see interp::FaultInjectionHook). Configure
/// with addPoint()/skipInspectionOf() before the run; const during it.
class FaultInjector final : public interp::FaultInjectionHook {
public:
  FaultInjector &addPoint(InjectionPoint P) {
    Points.push_back(std::move(P));
    return *this;
  }

  /// Convenience: fault loop \p Loop at \p Iteration (parallel chunks
  /// only), with the default Injected kind.
  FaultInjector &faultAt(std::string Loop, int64_t Iteration,
                         bool ParallelOnly = true) {
    InjectionPoint P;
    P.Loop = std::move(Loop);
    P.Iteration = Iteration;
    P.ParallelOnly = ParallelOnly;
    return addPoint(std::move(P));
  }

  /// Lying-inspector mode: the runtime-check inspection of \p Loop is
  /// skipped and the loop dispatches parallel unconditionally.
  FaultInjector &skipInspectionOf(std::string Loop) {
    SkippedInspections.insert(std::move(Loop));
    return *this;
  }

  std::optional<interp::InjectedFault>
  atIteration(const mf::DoStmt *Loop, int64_t Iteration, unsigned Worker,
              bool InParallel) const override;

  bool skipInspection(const mf::DoStmt *Loop) const override;

private:
  std::vector<InjectionPoint> Points;
  std::set<std::string> SkippedInspections;
};

} // namespace verify
} // namespace iaa

#endif // IAA_VERIFY_FAULTINJECTOR_H
