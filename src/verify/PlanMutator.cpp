//===- verify/PlanMutator.cpp - Seeded plan mutations for testing ---------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "verify/PlanMutator.h"

#include "mf/Program.h"

using namespace iaa;
using namespace iaa::verify;
using namespace iaa::mf;

const char *iaa::verify::mutationKindName(MutationKind K) {
  switch (K) {
  case MutationKind::DropPrivatization: return "drop-privatization";
  case MutationKind::DropReduction:     return "drop-reduction";
  case MutationKind::SkipLastValue:     return "skip-last-value";
  case MutationKind::ForceParallel:     return "force-parallel";
  case MutationKind::DropRuntimeCheck:  return "drop-runtime-check";
  case MutationKind::ForgeRecurrenceFact: return "forge-recurrence-fact";
  }
  return "?";
}

bool iaa::verify::applyMutation(xform::PipelineResult &R, const Program &P,
                                const Mutation &M) {
  const DoStmt *L = P.findLoop(M.Loop);
  if (!L)
    return false;
  auto PlanIt = R.Plans.find(L);
  if (PlanIt == R.Plans.end())
    return false;
  xform::LoopPlan &Plan = PlanIt->second;

  const Symbol *Sym = nullptr;
  if (M.Kind != MutationKind::ForceParallel &&
      M.Kind != MutationKind::DropRuntimeCheck &&
      M.Kind != MutationKind::ForgeRecurrenceFact) {
    for (const Symbol *S : P.symbols())
      if (S->name() == M.Symbol) {
        Sym = S;
        break;
      }
    if (!Sym)
      return false;
  }

  auto MarkParallel = [&] {
    Plan.Parallel = true;
    for (xform::LoopReport &Rep : R.Loops)
      if (Rep.Loop == L) {
        Rep.Parallel = true;
        Rep.RuntimeConditional = false;
        Rep.WhyNot.clear();
      }
  };

  switch (M.Kind) {
  case MutationKind::DropPrivatization:
    if (!Plan.PrivateArrays.erase(Sym))
      return false;
    Plan.LiveOutArrays.erase(Sym);
    break;
  case MutationKind::DropReduction:
    if (!Plan.Reductions.erase(Sym))
      return false;
    break;
  case MutationKind::SkipLastValue:
    Plan.PrivateArrays.insert(Sym);
    Plan.LiveOutArrays.insert(Sym);
    MarkParallel();
    break;
  case MutationKind::ForceParallel:
    MarkParallel();
    break;
  case MutationKind::DropRuntimeCheck:
    if (!Plan.RuntimeConditional || Plan.RuntimeChecks.empty() ||
        Plan.Parallel)
      return false;
    Plan.RuntimeChecks.clear();
    Plan.RuntimeConditional = false;
    MarkParallel();
    break;
  case MutationKind::ForgeRecurrenceFact:
    if (!Plan.RuntimeConditional || Plan.RuntimeChecks.empty() ||
        Plan.Parallel)
      return false;
    Plan.FallbackChecks = std::move(Plan.RuntimeChecks);
    Plan.RuntimeChecks.clear();
    Plan.RuntimeConditional = false;
    Plan.RecurrencePromoted = true;
    MarkParallel();
    for (xform::LoopReport &Rep : R.Loops)
      if (Rep.Loop == L)
        Rep.RecurrencePromoted = true;
    break;
  }
  return true;
}
