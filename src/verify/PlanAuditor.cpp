//===- verify/PlanAuditor.cpp - Independent certification of loop plans ---===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
//
// The auditor re-derives the cross-iteration conflict set of every loop the
// parallelizer marked parallel. It shares only the section/symbolic algebra
// and the property solver with the pipeline — never the dependence tester's
// conclusions — so a planner bug surfaces as a Rejected or Unknown verdict
// instead of a silent race at run time.
//
// Structure of one loop audit:
//
//   1. enumerate every array access of one iteration (reads and writes,
//      with the inner-loop nest each access sits in);
//   2. discharge scalars: private scalars and re-checked reductions are
//      race-free by construction, anything else written is a conflict;
//   3. discharge privatized arrays, re-proving the last-value premise for
//      the live-out ones;
//   4. prove the remaining shared written arrays iteration-disjoint with
//      an independent proof ladder (distinct dimension, injective/monotone
//      gather subscript, swept ranges, offset-length with re-verified
//      CFD/CFB properties);
//   5. when no proof exists, search for a *definite* adjacent-iteration
//      overlap to turn "don't know" into a counterexample.
//
//===----------------------------------------------------------------------===//

#include "verify/PlanAudit.h"

#include "analysis/ArrayProperty.h"
#include "mf/Expr.h"
#include "mf/Program.h"
#include "mf/Stmt.h"
#include "section/Section.h"
#include "support/Statistic.h"
#include "support/Trace.h"
#include "symbolic/SymRange.h"

#include <functional>
#include <map>

using namespace iaa;
using namespace iaa::verify;
using namespace iaa::analysis;
using namespace iaa::mf;
using namespace iaa::sec;
using namespace iaa::sym;

#define IAA_STAT_GROUP "verify"
IAA_STAT(verify_loops_audited, "Parallel-marked loops audited");
IAA_STAT(verify_certified, "Loops the auditor certified race-free");
IAA_STAT(verify_rejected, "Loops rejected with a counterexample");
IAA_STAT(verify_unknown, "Loops the auditor could not decide");
IAA_STAT(verify_property_queries, "Property-solver queries issued by audits");
IAA_STAT(verify_demoted, "Plans demoted to serial under --audit=strict");
IAA_STAT(verify_conditional_certified,
         "Loops certified conditional on their recorded runtime checks");

const char *iaa::verify::auditVerdictName(AuditVerdict V) {
  switch (V) {
  case AuditVerdict::Certified: return "certified";
  case AuditVerdict::Rejected:  return "rejected";
  case AuditVerdict::Unknown:   return "unknown";
  }
  return "?";
}

const char *iaa::verify::auditModeName(AuditMode M) {
  switch (M) {
  case AuditMode::Off:    return "off";
  case AuditMode::Warn:   return "warn";
  case AuditMode::Strict: return "strict";
  }
  return "?";
}

bool iaa::verify::parseAuditMode(const std::string &Name, AuditMode &M) {
  if (Name == "off") {
    M = AuditMode::Off;
    return true;
  }
  if (Name == "warn") {
    M = AuditMode::Warn;
    return true;
  }
  if (Name == "strict") {
    M = AuditMode::Strict;
    return true;
  }
  return false;
}

std::string AuditCounterexample::str() const {
  std::string Out = (Var ? Var->name() : std::string("?")) + ": " + IterA +
                    " touches " + SectionA + ", " + IterB + " touches " +
                    SectionB;
  if (!Note.empty())
    Out += " (" + Note + ")";
  return Out;
}

std::string LoopAudit::str() const {
  std::string Out = Label + ": " + auditVerdictName(Verdict);
  if (Conditional)
    Out += " (conditional on runtime checks)";
  if (PermutationSafe)
    Out += " [permutation-safe]";
  if (!Detail.empty())
    Out += " — " + Detail;
  for (const ObligationCheck &O : Obligations)
    Out += "\n    [" + std::string(O.Ok ? "ok" : "FAIL") + "] " + O.Kind +
           " " + O.Subject + (O.Detail.empty() ? "" : ": " + O.Detail);
  if (Counterexample)
    Out += "\n    counterexample: " + Counterexample->str();
  return Out;
}

unsigned AuditResult::numWithVerdict(AuditVerdict V) const {
  unsigned N = 0;
  for (const LoopAudit &A : Loops)
    N += A.Verdict == V;
  return N;
}

const LoopAudit *AuditResult::auditFor(const std::string &Label) const {
  for (const LoopAudit &A : Loops)
    if (A.Label == Label)
      return &A;
  return nullptr;
}

std::string AuditResult::str() const {
  std::string Out;
  for (const LoopAudit &A : Loops)
    Out += A.str() + "\n";
  return Out;
}

//===----------------------------------------------------------------------===//
// Access enumeration
//===----------------------------------------------------------------------===//

/// One array access of a single iteration of the audited loop.
struct PlanAuditor::AccessInfo {
  const mf::ArrayRef *Ref = nullptr;
  bool IsWrite = false;
  /// Inner do-loops enclosing the access, outermost first.
  std::vector<const mf::DoStmt *> Nest;
};

namespace {

/// Collects every ArrayRef read inside \p E, including subscript reads.
void arrayReadsIn(const Expr *E, std::vector<const ArrayRef *> &Out) {
  switch (E->kind()) {
  case ExprKind::IntLit:
  case ExprKind::RealLit:
  case ExprKind::VarRef:
    return;
  case ExprKind::ArrayRef: {
    const auto *AR = cast<ArrayRef>(E);
    Out.push_back(AR);
    for (const Expr *Sub : AR->subscripts())
      arrayReadsIn(Sub, Out);
    return;
  }
  case ExprKind::Unary:
    arrayReadsIn(cast<UnaryExpr>(E)->operand(), Out);
    return;
  case ExprKind::Binary:
    arrayReadsIn(cast<BinaryExpr>(E)->lhs(), Out);
    arrayReadsIn(cast<BinaryExpr>(E)->rhs(), Out);
    return;
  }
}

/// Rebuilds \p E with every occurrence of the atom keyed \p Key replaced by
/// \p Repl (scaled by the atom's coefficient).
SymExpr substAtom(const SymExpr &E, const std::string &Key,
                  const SymExpr &Repl) {
  SymExpr Out = SymExpr::constant(E.constantTerm());
  for (const auto &[K, Term] : E.terms())
    Out = Out + (K == Key ? Repl : SymExpr::atom(Term.first)) * Term.second;
  return Out;
}

/// True when the statement is the canonical sum-reduction update
/// `S = S + E` / `S = E + S` with E not reading S.
bool isReductionUpdate(const AssignStmt *AS, const Symbol *S) {
  const auto *VR = dyn_cast<VarRef>(AS->lhs());
  if (!VR || VR->symbol() != S)
    return false;
  const auto *B = dyn_cast<BinaryExpr>(AS->rhs());
  if (!B || B->op() != BinaryOp::Add)
    return false;
  const Expr *Other = nullptr;
  if (const auto *LV = dyn_cast<VarRef>(B->lhs()); LV && LV->symbol() == S)
    Other = B->rhs();
  else if (const auto *RV = dyn_cast<VarRef>(B->rhs()); RV && RV->symbol() == S)
    Other = B->lhs();
  if (!Other)
    return false;
  analysis::UseSet U;
  analysis::SymbolUses::exprReads(Other, U);
  return !U.reads(S);
}

} // namespace

//===----------------------------------------------------------------------===//
// LoopAuditContext: the workhorse for one loop
//===----------------------------------------------------------------------===//

class PlanAuditor::LoopAuditContext {
public:
  LoopAuditContext(PlanAuditor &Auditor, const DoStmt *L,
                   const xform::LoopPlan &Plan, LoopAudit &Out)
      : A(Auditor), L(L), Plan(Plan), Out(Out), I(L->indexVar()),
        LoL(SymExpr::fromAst(L->lower())), UpL(SymExpr::fromAst(L->upper())),
        BodyW(A.Uses.bodyUses(L->body())) {
    A.Consts.bindAll(EnvConsts);
    Env = EnvConsts;
    Env.bindVar(I, SymRange::of(LoL, UpL));
    // Adjacent-iteration counterexamples quantify over pairs (i, i+1), so
    // the witness environment clips the index one short of the upper bound.
    TwoIters = provablyLT(LoL, UpL, EnvConsts);
    Conditional =
        !Plan.Parallel && Plan.RuntimeConditional && !Plan.RuntimeChecks.empty();
    Out.Conditional = Conditional;
  }

  void run();

private:
  // --- verdict bookkeeping
  void ob(std::string Kind, std::string Subject, bool Ok, std::string Detail) {
    Out.Obligations.push_back(
        {std::move(Kind), std::move(Subject), Ok, std::move(Detail)});
  }
  void unknown(const std::string &Why) {
    if (Out.Verdict != AuditVerdict::Rejected)
      Out.Verdict = AuditVerdict::Unknown;
    if (Out.Detail.empty())
      Out.Detail = Why;
  }
  void reject(AuditCounterexample CE, const std::string &Why) {
    Out.Verdict = AuditVerdict::Rejected;
    if (!Out.Counterexample)
      Out.Counterexample = std::move(CE);
    Out.Detail = Why;
  }
  unsigned query() {
    ++verify_property_queries;
    return ++Out.PropertyQueries;
  }

  // --- enumeration
  void collect(const StmtList &Body);

  // --- scalar obligations
  void auditScalars();
  bool reductionPremiseOk(const Symbol *S, std::string &Why);

  // --- array obligations
  void auditArrays();
  bool lastValuePremiseOk(const Symbol *X, std::string &Why);
  struct WriteEffect {
    Section Must = Section::empty();
    Section May = Section::empty();
  };
  WriteEffect writeEffect(const StmtList &Body, const Symbol *X,
                          std::set<const Symbol *> &OpenIdx);

  // --- the independence proof ladder
  struct IterRange {
    SymExpr Lo, Hi;
    bool IsWrite = false;
  };
  bool invariantApartFromIndex(const SymExpr &E) const {
    for (const Symbol *W : BodyW.Writes)
      if (W != I && E.references(W))
        return false;
    return true;
  }
  bool sweptRange(const AccessInfo &Acc, SymExpr &Lo, SymExpr &Hi) const;
  bool sharedSubscript(const std::vector<AccessInfo> &Accs, unsigned D,
                       SymExpr &First) const;
  bool proveDistinctDim(const Symbol *X, const std::vector<AccessInfo> &Accs);
  bool proveGatherSubscript(const Symbol *X,
                            const std::vector<AccessInfo> &Accs);
  bool proveRanges(const Symbol *X, const std::vector<IterRange> &Ranges);
  bool proveOffsetLength(const Symbol *X, const std::vector<IterRange> &Ranges);

  // --- counterexample search
  void refuteArray(const Symbol *X, const std::vector<IterRange> &Ranges);

  PlanAuditor &A;
  const DoStmt *L;
  const xform::LoopPlan &Plan;
  LoopAudit &Out;

  const Symbol *I;
  SymExpr LoL, UpL;
  UseSet BodyW;
  RangeEnv EnvConsts; ///< Global constants only.
  RangeEnv Env;       ///< Constants + the loop index bound to [lo, up].
  bool TwoIters = false;
  /// Auditing a runtime-conditional plan: an obligation the static ladder
  /// cannot re-establish may instead be discharged against a recorded
  /// runtime check whose window covers the audited accesses.
  bool Conditional = false;

  /// The recorded runtime check of kind \p K over index array \p Q, if any.
  const deptest::RuntimeCheck *recordedCheck(deptest::RuntimeCheckKind K,
                                             const Symbol *Q) const {
    if (!Conditional)
      return nullptr;
    for (const deptest::RuntimeCheck &C : Plan.RuntimeChecks)
      if (C.Kind == K && C.Index == Q)
        return &C;
    return nullptr;
  }

  std::map<const Symbol *, std::vector<AccessInfo>> ByArray;
  std::set<const Symbol *> Opaque;
  std::set<const Symbol *> OpaqueReads;
  std::vector<const DoStmt *> Nest;
  bool UnknownCallee = false;

  /// Exported by the offset-length attempt for the counterexample search:
  /// a verified rewrite ptr(i+1) -> ptr(i) + dist(i) and the environment
  /// carrying the verified CFB value bounds.
  struct CfdRewrite {
    std::string ShiftKey;
    SymExpr Rewritten;
    RangeEnv Env2;
  };
  std::optional<CfdRewrite> Rewrite;
};

void PlanAuditor::LoopAuditContext::collect(const StmtList &Body) {
  auto AddReads = [&](const Expr *E) {
    std::vector<const ArrayRef *> Reads;
    arrayReadsIn(E, Reads);
    for (const ArrayRef *AR : Reads)
      ByArray[AR->array()].push_back({AR, false, Nest});
  };
  for (const Stmt *S : Body) {
    switch (S->kind()) {
    case StmtKind::Assign: {
      const auto *AS = cast<AssignStmt>(S);
      AddReads(AS->rhs());
      if (const ArrayRef *T = AS->arrayTarget()) {
        for (const Expr *Sub : T->subscripts())
          AddReads(Sub);
        ByArray[T->array()].push_back({T, true, Nest});
      }
      break;
    }
    case StmtKind::If: {
      const auto *IS = cast<IfStmt>(S);
      AddReads(IS->condition());
      collect(IS->thenBody());
      collect(IS->elseBody());
      break;
    }
    case StmtKind::Do: {
      const auto *DS = cast<DoStmt>(S);
      AddReads(DS->lower());
      AddReads(DS->upper());
      if (DS->step())
        AddReads(DS->step());
      Nest.push_back(DS);
      collect(DS->body());
      Nest.pop_back();
      break;
    }
    case StmtKind::While: {
      const auto *WS = cast<WhileStmt>(S);
      // Accesses under a data-dependent trip count have no per-iteration
      // section; the arrays they touch can only be discharged by
      // privatization.
      std::vector<const ArrayRef *> CondReads;
      arrayReadsIn(WS->condition(), CondReads);
      for (const ArrayRef *AR : CondReads)
        OpaqueReads.insert(AR->array());
      UseSet U = A.Uses.bodyUses(WS->body());
      for (const Symbol *Sym : U.Reads)
        if (Sym->isArray())
          OpaqueReads.insert(Sym);
      for (const Symbol *Sym : U.Writes)
        if (Sym->isArray())
          Opaque.insert(Sym);
      break;
    }
    case StmtKind::Call: {
      const auto *CS = cast<CallStmt>(S);
      if (!CS->callee()) {
        UnknownCallee = true;
        break;
      }
      const UseSet &U = A.Uses.procedureUses(CS->callee());
      for (const Symbol *Sym : U.Reads)
        if (Sym->isArray())
          OpaqueReads.insert(Sym);
      for (const Symbol *Sym : U.Writes)
        if (Sym->isArray())
          Opaque.insert(Sym);
      break;
    }
    }
  }
}

//===----------------------------------------------------------------------===//
// Scalars
//===----------------------------------------------------------------------===//

bool PlanAuditor::LoopAuditContext::reductionPremiseOk(const Symbol *S,
                                                       std::string &Why) {
  // Every statement that touches S must be the one canonical update; a read
  // in a condition, a bound, a subscript, or any other right-hand side means
  // merging per-worker partial sums would not reproduce serial semantics.
  bool SawUpdate = false;
  bool OK = true;
  Program::forEachStmtIn(L->body(), [&](Stmt *St) {
    if (!OK)
      return;
    UseSet Shallow;
    switch (St->kind()) {
    case StmtKind::Assign: {
      const auto *AS = cast<AssignStmt>(St);
      if (isReductionUpdate(AS, S)) {
        SawUpdate = true;
        return;
      }
      SymbolUses::exprReads(AS->rhs(), Shallow);
      if (const ArrayRef *T = AS->arrayTarget())
        for (const Expr *Sub : T->subscripts())
          SymbolUses::exprReads(Sub, Shallow);
      if (AS->writtenSymbol() == S) {
        OK = false;
        Why = "a non-reduction assignment writes " + S->name();
        return;
      }
      break;
    }
    case StmtKind::If:
      SymbolUses::exprReads(cast<IfStmt>(St)->condition(), Shallow);
      break;
    case StmtKind::Do: {
      const auto *DS = cast<DoStmt>(St);
      SymbolUses::exprReads(DS->lower(), Shallow);
      SymbolUses::exprReads(DS->upper(), Shallow);
      if (DS->step())
        SymbolUses::exprReads(DS->step(), Shallow);
      if (DS->indexVar() == S) {
        OK = false;
        Why = S->name() + " doubles as an inner loop index";
        return;
      }
      break;
    }
    case StmtKind::While:
      SymbolUses::exprReads(cast<WhileStmt>(St)->condition(), Shallow);
      break;
    case StmtKind::Call: {
      const auto *CS = cast<CallStmt>(St);
      if (CS->callee())
        Shallow.merge(A.Uses.procedureUses(CS->callee()));
      break;
    }
    }
    if (Shallow.touches(S)) {
      OK = false;
      Why = S->name() + " is used outside the reduction update";
    }
  });
  if (OK && !SawUpdate) {
    OK = false;
    Why = "no s = s + e update found for " + S->name();
  }
  return OK;
}

void PlanAuditor::LoopAuditContext::auditScalars() {
  for (const Symbol *S : BodyW.Writes) {
    if (S->isArray() || S == I)
      continue;
    if (Plan.PrivateScalars.count(S)) {
      ob("private-scalar", S->name(), true, "per-worker copy");
      continue;
    }
    if (Plan.Reductions.count(S)) {
      std::string Why;
      if (reductionPremiseOk(S, Why)) {
        ob("reduction", S->name(), true, "sum pattern is the only access");
      } else {
        ob("reduction", S->name(), false, Why);
        AuditCounterexample CE;
        CE.Var = S;
        CE.IterA = I->name() + " = " + LoL.str();
        CE.IterB = I->name() + " = " + (LoL + 1).str();
        CE.SectionA = CE.SectionB = "the scalar " + S->name();
        CE.Note = Why;
        reject(std::move(CE), "reduction premise fails for " + S->name());
      }
      continue;
    }
    // A shared scalar written by the body: a definite write in every
    // iteration is a provable write-write conflict; a conditional one is
    // at least undischargeable.
    bool Definite = false;
    for (const Stmt *St : L->body())
      if (const auto *AS = dyn_cast<AssignStmt>(St))
        if (AS->writtenSymbol() == S && !AS->arrayTarget())
          Definite = true;
    ob("private-scalar", S->name(), false,
       "written by the body but not in the plan's private/reduction sets");
    if (Definite && TwoIters) {
      AuditCounterexample CE;
      CE.Var = S;
      CE.IterA = I->name() + " = " + LoL.str();
      CE.IterB = I->name() + " = " + (LoL + 1).str();
      CE.SectionA = CE.SectionB = "the scalar " + S->name();
      CE.Note = "both iterations write the unprivatized scalar";
      reject(std::move(CE), "shared scalar " + S->name() +
                                " is written every iteration");
    } else {
      unknown("shared scalar " + S->name() + " may be written concurrently");
    }
  }
}

//===----------------------------------------------------------------------===//
// Live-out privatized arrays: the last-value premise
//===----------------------------------------------------------------------===//

PlanAuditor::LoopAuditContext::WriteEffect
PlanAuditor::LoopAuditContext::writeEffect(const StmtList &Body,
                                           const Symbol *X,
                                           std::set<const Symbol *> &OpenIdx) {
  WriteEffect E;
  auto Widen = [&] { E.May = Section::universe(); };
  auto SubscriptStable = [&](const SymExpr &Sub) {
    // A subscript whose value can change between the write and the end of
    // the iteration (it reads a body-written scalar other than an enclosing
    // loop index) has no stable per-iteration section.
    for (const Symbol *W : BodyW.Writes) {
      if (W == I || OpenIdx.count(W))
        continue;
      if (Sub.references(W))
        return false;
    }
    return true;
  };
  for (const Stmt *S : Body) {
    switch (S->kind()) {
    case StmtKind::Assign: {
      const auto *AS = cast<AssignStmt>(S);
      if (AS->writtenSymbol() != X)
        break;
      const ArrayRef *T = AS->arrayTarget();
      if (!T || X->rank() != 1 || T->subscripts().size() != 1) {
        Widen();
        break;
      }
      SymExpr Sub = SymExpr::fromAst(T->subscript(0));
      if (!SubscriptStable(Sub)) {
        Widen();
        break;
      }
      Section P = Section::point(Sub);
      E.Must = Section::unionMust(E.Must, P, Env);
      E.May = Section::unionMay(E.May, P, Env);
      break;
    }
    case StmtKind::If: {
      const auto *IS = cast<IfStmt>(S);
      WriteEffect T = writeEffect(IS->thenBody(), X, OpenIdx);
      WriteEffect F = writeEffect(IS->elseBody(), X, OpenIdx);
      E.Must = Section::unionMust(
          E.Must, Section::intersectMust(T.Must, F.Must, Env), Env);
      E.May = Section::unionMay(E.May, Section::unionMay(T.May, F.May, Env),
                                Env);
      break;
    }
    case StmtKind::Do: {
      const auto *DS = cast<DoStmt>(S);
      if (!A.Uses.bodyUses(DS->body()).writes(X))
        break;
      SymExpr Step =
          DS->step() ? SymExpr::fromAst(DS->step()) : SymExpr::constant(1);
      SymExpr Lo2 = SymExpr::fromAst(DS->lower());
      SymExpr Up2 = SymExpr::fromAst(DS->upper());
      if (!Step.isConstant() || Step.constValue() != 1 ||
          !SubscriptStable(Lo2) || !SubscriptStable(Up2)) {
        Widen();
        break;
      }
      OpenIdx.insert(DS->indexVar());
      WriteEffect Inner = writeEffect(DS->body(), X, OpenIdx);
      OpenIdx.erase(DS->indexVar());
      E.Must = Section::unionMust(
          E.Must,
          Section::aggregateMust(Inner.Must, DS->indexVar(), Lo2, Up2, Env),
          Env);
      E.May = Section::unionMay(
          E.May,
          Section::aggregateMay(Inner.May, DS->indexVar(), Lo2, Up2, Env),
          Env);
      break;
    }
    case StmtKind::While:
      if (A.Uses.bodyUses(cast<WhileStmt>(S)->body()).writes(X))
        Widen();
      break;
    case StmtKind::Call: {
      const auto *CS = cast<CallStmt>(S);
      if (!CS->callee() || A.Uses.procedureUses(CS->callee()).writes(X))
        Widen();
      break;
    }
    }
  }
  return E;
}

bool PlanAuditor::LoopAuditContext::lastValuePremiseOk(const Symbol *X,
                                                       std::string &Why) {
  // The writeback copies the final iteration's private copy over the shared
  // array. That reproduces serial contents only if every iteration
  // MUST-writes one index-invariant section covering all its MAY-writes.
  std::set<const Symbol *> OpenIdx;
  WriteEffect E = writeEffect(L->body(), X, OpenIdx);
  if (E.May.isEmpty())
    return true; // Never written: the writeback copies unchanged contents.
  if (E.Must.isEmpty()) {
    Why = "no provable MUST-write section";
    return false;
  }
  if (E.Must.referencesVar(I)) {
    Why = "MUST-write section varies with " + I->name();
    return false;
  }
  if (!Section::provablyContains(E.Must, E.May, Env)) {
    Why = "MAY-writes (" + E.May.str() + ") not covered by MUST-writes (" +
          E.Must.str() + ")";
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// The independence proof ladder
//===----------------------------------------------------------------------===//

bool PlanAuditor::LoopAuditContext::sharedSubscript(
    const std::vector<AccessInfo> &Accs, unsigned D, SymExpr &First) const {
  std::string Key;
  for (const AccessInfo &Acc : Accs) {
    if (D >= Acc.Ref->subscripts().size())
      return false;
    SymExpr E = SymExpr::fromAst(Acc.Ref->subscript(D));
    if (Key.empty()) {
      Key = E.key();
      First = E;
    } else if (E.key() != Key) {
      return false;
    }
  }
  return !Key.empty();
}

bool PlanAuditor::LoopAuditContext::proveDistinctDim(
    const Symbol *X, const std::vector<AccessInfo> &Accs) {
  for (unsigned D = 0; D < X->rank(); ++D) {
    SymExpr First;
    if (!sharedSubscript(Accs, D, First))
      continue;
    int64_t Coeff = First.coeffOfVar(I);
    SymExpr Rest = First - SymExpr::var(I) * Coeff;
    if (Coeff != 0 && !Rest.references(I) && invariantApartFromIndex(Rest)) {
      ob("distinct-dim", X->name(),
         true, "dimension " + std::to_string(D + 1) + " strides with " +
                   I->name());
      return true;
    }
  }
  return false;
}

bool PlanAuditor::LoopAuditContext::proveGatherSubscript(
    const Symbol *X, const std::vector<AccessInfo> &Accs) {
  for (unsigned D = 0; D < X->rank(); ++D) {
    SymExpr First;
    if (!sharedSubscript(Accs, D, First))
      continue;
    AtomRef At = First.asSingleAtom();
    if (!At || At->kind() != AtomKind::ArrayElem || At->operands().size() != 1)
      continue;
    const Symbol *Q = At->symbol();
    const SymExpr &Sub = At->operands()[0];
    int64_t Coeff = Sub.coeffOfVar(I);
    SymExpr Rest = Sub - SymExpr::var(I) * Coeff;
    if (Coeff == 0 || Rest.references(I) || !invariantApartFromIndex(Sub) ||
        BodyW.writes(Q))
      continue;
    SymRange SubRange = rangeOverVar(Sub, I, LoL, UpL);
    if (!SubRange.Lo.isFinite() || !SubRange.Hi.isFinite())
      continue;
    // Premise 1: the index array is injective over the swept positions,
    // *re-verified* against the program with the auditor's own solver.
    InjectivityChecker Inj(Q, A.Uses);
    query();
    PropertyResult PR = A.Solver.verifyBefore(
        L, Inj, Section::interval(SubRange.Lo.E, SubRange.Hi.E));
    if (PR.Verified && Inj.genSites() == 1) {
      ob("injective", X->name(), true,
         Q->name() + " re-verified injective over " + SubRange.Lo.E.str() +
             ".." + SubRange.Hi.E.str());
      return true;
    }
    // Premise 2 (fallback): strict monotonicity implies injectivity.
    MonotonicChecker Mono(Q, /*Strict=*/true, A.Uses);
    query();
    PropertyResult MR = A.Solver.verifyBefore(
        L, Mono, Section::interval(SubRange.Lo.E, SubRange.Hi.E - 1));
    if (MR.Verified) {
      ob("monotone", X->name(), true,
         Q->name() + " re-verified strictly increasing");
      return true;
    }
    // Premise 3 (conditional plans): a recorded injectivity check whose
    // window covers the audited subscript q(i + c) discharges the access —
    // conditional on the inspector passing it at run time. The auditor
    // re-derives the subscript shape itself; only the property is deferred.
    if (Conditional && Coeff == 1 && Rest.isConstant()) {
      int64_t Shift = Rest.constValue();
      if (const deptest::RuntimeCheck *C = recordedCheck(
              deptest::RuntimeCheckKind::InjectiveOnRange, Q);
          C && C->LoAdjust <= Shift && C->UpAdjust >= Shift) {
        ob("injective", X->name(), true,
           Q->name() + " injectivity deferred to the runtime check " +
               C->str());
        return true;
      }
    }
    ob("injective", X->name(), false,
       "gather subscript " + Q->name() +
           "(...) shared by all accesses, but neither injectivity nor "
           "strict monotonicity could be re-established");
  }
  return false;
}

bool PlanAuditor::LoopAuditContext::sweptRange(const AccessInfo &Acc,
                                               SymExpr &Lo,
                                               SymExpr &Hi) const {
  if (Acc.Ref->subscripts().size() != 1)
    return false;
  Lo = Hi = SymExpr::fromAst(Acc.Ref->subscript(0));
  for (auto It = Acc.Nest.rbegin(); It != Acc.Nest.rend(); ++It) {
    const DoStmt *DS = *It;
    if (DS->step()) {
      SymExpr Step = SymExpr::fromAst(DS->step());
      if (!Step.isConstant() || Step.constValue() != 1)
        return false;
    }
    SymExpr LB = SymExpr::fromAst(DS->lower());
    SymExpr UB = SymExpr::fromAst(DS->upper());
    SymRange LoSw = rangeOverVar(Lo, DS->indexVar(), LB, UB);
    SymRange HiSw = rangeOverVar(Hi, DS->indexVar(), LB, UB);
    if (!LoSw.Lo.isFinite() || !HiSw.Hi.isFinite())
      return false;
    Lo = LoSw.Lo.E;
    Hi = HiSw.Hi.E;
  }
  return true;
}

bool PlanAuditor::LoopAuditContext::proveRanges(
    const Symbol *X, const std::vector<IterRange> &Ranges) {
  auto Ascending = [&] {
    for (const IterRange &RA : Ranges)
      for (const IterRange &RB : Ranges)
        if (!provablyLT(RA.Hi,
                        RB.Lo.substituteVar(I, SymExpr::var(I) + 1), Env))
          return false;
    return true;
  };
  auto Descending = [&] {
    for (const IterRange &RA : Ranges)
      for (const IterRange &RB : Ranges)
        if (!provablyLT(RB.Hi.substituteVar(I, SymExpr::var(I) + 1),
                        RA.Lo, Env))
          return false;
    return true;
  };
  if (Ascending() || Descending()) {
    ob("range", X->name(), true, "per-iteration ranges provably disjoint");
    return true;
  }
  return false;
}

bool PlanAuditor::LoopAuditContext::proveOffsetLength(
    const Symbol *X, const std::vector<IterRange> &Ranges) {
  // Candidate index arrays: atoms ptr(i) appearing in the range bounds.
  std::set<const Symbol *> Candidates;
  for (const IterRange &Rg : Ranges)
    for (const SymExpr *E : {&Rg.Lo, &Rg.Hi})
      for (const auto &[Key, Term] : E->terms()) {
        const AtomRef &At = Term.first;
        if (At->kind() == AtomKind::ArrayElem && At->operands().size() == 1 &&
            At->operands()[0].equals(SymExpr::var(I)))
          Candidates.insert(At->symbol());
      }

  for (const Symbol *Ptr : Candidates) {
    // Premise 1: the recurrence ptr(i+1) = ptr(i) + dist(i), re-discovered
    // and re-verified from the program text.
    auto Dist = ClosedFormDistanceChecker::discoverDistance(A.Prog, Ptr);
    if (!Dist)
      continue;
    ClosedFormDistanceChecker CFD(Ptr, *Dist, A.Uses);
    query();
    if (!A.Solver.verifyBefore(L, CFD, Section::interval(LoL, UpL - 1))
             .Verified)
      continue;

    // Premise 2: the distance is non-negative (segments never move left).
    RangeEnv Env2 = Env;
    SymExpr DistAtI = Dist->substituteVar(placeholderSymbol(), SymExpr::var(I));
    bool NonNeg = false;
    if (AtomRef DA = DistAtI.asSingleAtom();
        DA && DA->kind() == AtomKind::ArrayElem) {
      const Symbol *Y = DA->symbol();
      ClosedFormBoundChecker CFB(Y, A.Uses);
      query();
      if (A.Solver.verifyBefore(L, CFB, Section::interval(LoL, UpL - 1))
              .Verified) {
        SymRange Bounds = CFB.valueBounds();
        if (Bounds.Lo.isFinite() &&
            provablyNonNegative(Bounds.Lo.E, Env2)) {
          NonNeg = true;
          Env2.bindArrayValues(Y, Bounds);
        }
      }
    } else {
      NonNeg = provablyNonNegative(DistAtI, Env2);
    }
    if (!NonNeg)
      continue;

    std::string ShiftKey = Atom::arrayElem(Ptr, {SymExpr::var(I) + 1})->key();
    SymExpr Rewritten = SymExpr::arrayElem(Ptr, {SymExpr::var(I)}) + DistAtI;
    // Export the verified rewrite for the counterexample search even when
    // the disjointness below fails (a widened section is refuted with it).
    Rewrite = CfdRewrite{ShiftKey, Rewritten, Env2};

    bool OK = true;
    for (const IterRange &RA : Ranges) {
      for (const IterRange &RB : Ranges) {
        SymExpr NextLo =
            substAtom(RB.Lo.substituteVar(I, SymExpr::var(I) + 1), ShiftKey,
                      Rewritten);
        if (!provablyLT(RA.Hi, NextLo, Env2)) {
          OK = false;
          break;
        }
      }
      if (!OK)
        break;
    }
    if (OK) {
      ob("offset-length", X->name(), true,
         "segments of " + Ptr->name() + " re-proved disjoint (CFD premise "
         "re-verified)");
      return true;
    }
  }

  // Conditional plans: when the CFD/CFB premises cannot be re-established
  // statically, a recorded monotonicity + segment-disjointness check pair
  // over the same pointer array discharges the accesses, provided the
  // auditor's independently derived per-iteration ranges all fit the
  // segment shape the recorded check inspects.
  if (!Conditional)
    return false;
  for (const Symbol *Ptr : Candidates) {
    const deptest::RuntimeCheck *Mono = recordedCheck(
        deptest::RuntimeCheckKind::MonotonicNonDecreasing, Ptr);
    const deptest::RuntimeCheck *OL = recordedCheck(
        deptest::RuntimeCheckKind::OffsetLengthDisjoint, Ptr);
    if (!Mono || !OL || BodyW.writes(Ptr) ||
        (OL->Length && BodyW.writes(OL->Length)))
      continue;
    SymExpr PtrAtI = SymExpr::arrayElem(Ptr, {SymExpr::var(I)});
    bool Covered = !Ranges.empty();
    for (const IterRange &Rg : Ranges) {
      SymExpr LoD = Rg.Lo - PtrAtI;
      SymExpr HiD = Rg.Hi - PtrAtI;
      // Start: ptr(i) + c with c no smaller than the inspected segment
      // start; end: either ptr(i) + c, or exactly ptr(i) + len(i) + c, no
      // larger than the inspected segment end.
      if (!LoD.isConstant() || LoD.constValue() < OL->AccessLo) {
        Covered = false;
        break;
      }
      if (HiD.isConstant()) {
        if (!OL->HasHiConst || HiD.constValue() > OL->AccessHiConst) {
          Covered = false;
          break;
        }
        continue;
      }
      if (HiD.terms().size() != 1) {
        Covered = false;
        break;
      }
      const auto &Term = HiD.terms().begin()->second;
      const AtomRef &At = Term.first;
      if (Term.second != 1 || At->kind() != AtomKind::ArrayElem ||
          At->symbol() != OL->Length || At->operands().size() != 1 ||
          !At->operands()[0].equals(SymExpr::var(I)) || !OL->HasHiLen ||
          HiD.constantTerm() > OL->AccessHiLen) {
        Covered = false;
        break;
      }
    }
    if (!Covered)
      continue;
    ob("offset-length", X->name(), true,
       "segment disjointness of " + Ptr->name() +
           " deferred to the runtime checks " + Mono->str() + " and " +
           OL->str());
    return true;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Counterexample search
//===----------------------------------------------------------------------===//

void PlanAuditor::LoopAuditContext::refuteArray(
    const Symbol *X, const std::vector<IterRange> &Ranges) {
  if (!TwoIters || Ranges.empty()) {
    unknown("accesses to " + X->name() + " not certified");
    return;
  }
  // Definite overlap between iteration i and i+1: some element of B's
  // section at i+1 provably lies inside A's section at i (or vice versa).
  RangeEnv PairEnv = Rewrite ? Rewrite->Env2 : Env;
  PairEnv.bindVar(I, SymRange::of(LoL, UpL - 1));
  auto Shift = [&](const SymExpr &E) {
    SymExpr Next = E.substituteVar(I, SymExpr::var(I) + 1);
    return Rewrite ? substAtom(Next, Rewrite->ShiftKey, Rewrite->Rewritten)
                   : Next;
  };
  for (const IterRange &RA : Ranges) {
    for (const IterRange &RB : Ranges) {
      if (!RA.IsWrite && !RB.IsWrite)
        continue;
      SymExpr NextLo = Shift(RB.Lo), NextHi = Shift(RB.Hi);
      SymExpr Witness;
      bool Found = false;
      if (provablyLE(RA.Lo, NextLo, PairEnv) &&
          provablyLE(NextLo, RA.Hi, PairEnv) &&
          provablyLE(NextLo, NextHi, PairEnv)) {
        Witness = NextLo;
        Found = true;
      } else if (provablyLE(NextLo, RA.Lo, PairEnv) &&
                 provablyLE(RA.Lo, NextHi, PairEnv) &&
                 provablyLE(RA.Lo, RA.Hi, PairEnv)) {
        Witness = RA.Lo;
        Found = true;
      }
      if (!Found)
        continue;
      AuditCounterexample CE;
      CE.Var = X;
      CE.IterA = I->name() + " = " + LoL.str();
      CE.IterB = I->name() + " = " + (LoL + 1).str();
      CE.SectionA = "[" + RA.Lo.str() + " : " + RA.Hi.str() + "]" +
                    std::string(RA.IsWrite ? " (write)" : " (read)");
      CE.SectionB = "[" + RB.Lo.str() + " : " + RB.Hi.str() + "] at " +
                    I->name() + "+1" +
                    std::string(RB.IsWrite ? " (write)" : " (read)");
      CE.Note = "element " + Witness.str() + " is provably in both sections" +
                " for every " + I->name() + " in [" + LoL.str() + ", " +
                (UpL - 1).str() + "]";
      reject(std::move(CE), "adjacent iterations overlap on " + X->name());
      return;
    }
  }
  unknown("accesses to " + X->name() + " not certified");
}

//===----------------------------------------------------------------------===//
// Arrays
//===----------------------------------------------------------------------===//

void PlanAuditor::LoopAuditContext::auditArrays() {
  // Reads inside a while/call only conflict when the loop also writes the
  // array somewhere.
  for (const Symbol *X : OpaqueReads)
    if (BodyW.writes(X))
      Opaque.insert(X);

  std::set<const Symbol *> Audited;
  auto AuditOne = [&](const Symbol *X) {
    if (!Audited.insert(X).second)
      return;
    if (Plan.PrivateArrays.count(X)) {
      ob("privatized", X->name(), true, "per-worker copies cannot race");
      if (Plan.LiveOutArrays.count(X)) {
        std::string Why;
        if (lastValuePremiseOk(X, Why)) {
          ob("live-out-reproducible", X->name(), true,
             "every iteration MUST-writes one invariant section covering "
             "all MAY-writes");
        } else {
          ob("live-out-reproducible", X->name(), false, Why);
          unknown("last-value premise fails for " + X->name() + ": " + Why);
        }
      }
      return;
    }
    auto It = ByArray.find(X);
    bool Written = Opaque.count(X) != 0;
    if (It != ByArray.end())
      for (const AccessInfo &Acc : It->second)
        Written |= Acc.IsWrite;
    if (!Written)
      return; // Read-only shared arrays carry no race.
    if (Opaque.count(X)) {
      ob("opaque", X->name(), false,
         "written inside a while loop or call without privatization");
      unknown("array " + X->name() +
              " is written in an unanalyzable context");
      return;
    }
    const std::vector<AccessInfo> &Accs = It->second;
    if (proveDistinctDim(X, Accs) || proveGatherSubscript(X, Accs))
      return;
    if (X->rank() != 1) {
      unknown("multi-dimensional accesses to " + X->name() +
              " not certified");
      return;
    }
    // Swept per-iteration ranges feed both the proofs and the refutation.
    std::vector<IterRange> Ranges;
    bool Bounded = true;
    for (const AccessInfo &Acc : Accs) {
      IterRange Rg;
      Rg.IsWrite = Acc.IsWrite;
      if (!sweptRange(Acc, Rg.Lo, Rg.Hi) ||
          !invariantApartFromIndex(Rg.Lo) ||
          !invariantApartFromIndex(Rg.Hi)) {
        Bounded = false;
        break;
      }
      Ranges.push_back(std::move(Rg));
    }
    if (!Bounded) {
      unknown("accesses to " + X->name() +
              " have no closed per-iteration section");
      return;
    }
    if (proveRanges(X, Ranges) || proveOffsetLength(X, Ranges))
      return;
    refuteArray(X, Ranges);
  };

  for (const auto &[X, Accs] : ByArray)
    AuditOne(X);
  for (const Symbol *X : Opaque)
    AuditOne(X);
}

void PlanAuditor::LoopAuditContext::run() {
  Out.Verdict = AuditVerdict::Certified;
  if (L->step()) {
    SymExpr Step = SymExpr::fromAst(L->step());
    if (!Step.isConstant() || Step.constValue() != 1) {
      unknown("non-unit step");
      return;
    }
  }
  collect(L->body());
  if (UnknownCallee) {
    unknown("call to an unresolved procedure");
    return;
  }
  auditScalars();
  auditArrays();
}

//===----------------------------------------------------------------------===//
// PlanAuditor
//===----------------------------------------------------------------------===//

PlanAuditor::PlanAuditor(Program &P)
    : Prog(P), Uses(P), G(P), Consts(P), Solver(G, Uses) {}

LoopAudit PlanAuditor::auditLoop(const DoStmt *L,
                                 const xform::LoopPlan &Plan) {
  trace::TraceScope Span("plan-audit", "verify");
  if (Span.active() && !L->label().empty())
    Span.arg("loop", L->label());
  LoopAudit Out;
  Out.Loop = L;
  Out.Label = L->label();
  LoopAuditContext Ctx(*this, L, Plan, Out);
  Ctx.run();
  // Permutation safety rides on the main verdict: a certified plan proved
  // every iteration pair independent (given its obligations and, for
  // conditional plans, its runtime checks), so any bijective execution
  // order is race-free, and the executor's reorder pass keeps last-value
  // semantics by pinning the original final iteration to the last slot.
  Out.PermutationSafe = Out.Verdict == AuditVerdict::Certified;
  {
    ObligationCheck Perm;
    Perm.Kind = "permutation";
    Perm.Subject = Out.Label;
    Perm.Ok = Out.PermutationSafe;
    Perm.Detail =
        Out.PermutationSafe
            ? "iterations pairwise independent; any execution order with "
              "the final iteration pinned last reproduces serial results"
            : "not certified, so a reordered schedule could realize a "
              "cross-iteration conflict";
    Out.Obligations.push_back(std::move(Perm));
  }
  ++verify_loops_audited;
  if (Out.Conditional && Out.Verdict == AuditVerdict::Certified)
    ++verify_conditional_certified;
  switch (Out.Verdict) {
  case AuditVerdict::Certified: ++verify_certified; break;
  case AuditVerdict::Rejected:  ++verify_rejected; break;
  case AuditVerdict::Unknown:   ++verify_unknown; break;
  }
  if (Span.active())
    Span.arg("verdict", auditVerdictName(Out.Verdict));
  return Out;
}

AuditResult PlanAuditor::audit(const xform::PipelineResult &R) {
  trace::TraceScope Span("plan-audit-all", "verify");
  AuditResult Result;
  for (const xform::LoopReport &Rep : R.Loops) {
    auto It = R.Plans.find(Rep.Loop);
    if (It == R.Plans.end())
      continue;
    const xform::LoopPlan &Plan = It->second;
    if (!Plan.Parallel &&
        !(Plan.RuntimeConditional && !Plan.RuntimeChecks.empty()))
      continue;
    Result.Loops.push_back(auditLoop(Rep.Loop, Plan));
  }
  return Result;
}

//===----------------------------------------------------------------------===//
// Feeding verdicts back into the pipeline result
//===----------------------------------------------------------------------===//

unsigned iaa::verify::recordAudit(xform::PipelineResult &R,
                                  const AuditResult &A, AuditMode Mode) {
  unsigned Demoted = 0;
  for (const LoopAudit &LA : A.Loops) {
    xform::PipelineResult::AuditOutcome O;
    O.Loop = LA.Label;
    O.Verdict = auditVerdictName(LA.Verdict);
    O.Detail = LA.Detail;
    bool ToConditional = false;
    if (Mode == AuditMode::Strict && LA.Verdict != AuditVerdict::Certified) {
      O.Demoted = true;
      ++Demoted;
      ++verify_demoted;
      auto It = R.Plans.find(LA.Loop);
      if (It != R.Plans.end()) {
        xform::LoopPlan &P = It->second;
        P.Parallel = false;
        if (P.RecurrencePromoted && !P.FallbackChecks.empty()) {
          // A recurrence promotion the auditor cannot re-derive falls back
          // to the conditional-dispatch plan it replaced: the inspections
          // the promotion deleted are restored, and the inspector decides
          // at run time what the facts claimed statically.
          P.RecurrencePromoted = false;
          P.RuntimeConditional = true;
          P.RuntimeChecks = std::move(P.FallbackChecks);
          P.FallbackChecks.clear();
          P.LocalityIndexArray = nullptr;
          for (const deptest::RuntimeCheck &C : P.RuntimeChecks) {
            if (!C.Index)
              continue;
            if (!P.LocalityIndexArray)
              P.LocalityIndexArray = C.Index;
            if (C.Kind == deptest::RuntimeCheckKind::InjectiveOnRange) {
              P.LocalityIndexArray = C.Index;
              break;
            }
          }
          ToConditional = true;
        } else {
          // Strict demotion means serial, full stop: an uncertifiable
          // runtime-conditional plan must not re-enter through the
          // inspector either.
          P.RuntimeConditional = false;
          P.RuntimeChecks.clear();
        }
      }
      for (xform::LoopReport &Rep : R.Loops)
        if (Rep.Loop == LA.Loop) {
          Rep.Parallel = false;
          Rep.RecurrencePromoted = false;
          Rep.RuntimeConditional = ToConditional;
          Rep.WhyNot = "audit " + std::string(auditVerdictName(LA.Verdict)) +
                       (LA.Detail.empty() ? "" : ": " + LA.Detail);
        }
    }
    Remark M;
    M.Loop = LA.Label;
    M.K = Remark::Kind::Audit;
    M.Reason = std::string(auditVerdictName(LA.Verdict)) +
               (LA.Detail.empty() ? "" : " — " + LA.Detail);
    M.Evidence.emplace_back("verdict", auditVerdictName(LA.Verdict));
    if (LA.Conditional)
      M.Evidence.emplace_back(
          "conditional",
          "certification holds when the recorded runtime checks pass; the "
          "serial fallback taken on failure is sound unconditionally");
    if (O.Demoted)
      M.Evidence.emplace_back(
          "action", ToConditional
                        ? "demoted to conditional dispatch on fallback checks"
                        : "demoted to serial");
    for (const ObligationCheck &Ob : LA.Obligations)
      M.Evidence.emplace_back("audit:" + Ob.Kind + ":" + Ob.Subject,
                              std::string(Ob.Ok ? "ok" : "FAIL") +
                                  (Ob.Detail.empty() ? "" : " — " + Ob.Detail));
    if (LA.Counterexample)
      M.Evidence.emplace_back("counterexample", LA.Counterexample->str());
    R.Remarks.push_back(std::move(M));
    R.AuditOutcomes.push_back(std::move(O));
  }
  return Demoted;
}
