//===- verify/FaultInjector.cpp - Deterministic fault injection -----------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "verify/FaultInjector.h"

#include "mf/Program.h"

using namespace iaa;
using namespace iaa::verify;

std::optional<interp::InjectedFault>
FaultInjector::atIteration(const mf::DoStmt *Loop, int64_t Iteration,
                           unsigned /*Worker*/, bool InParallel) const {
  if (Loop->label().empty())
    return std::nullopt;
  for (const InjectionPoint &P : Points) {
    if (P.Loop != Loop->label())
      continue;
    if (P.ParallelOnly && !InParallel)
      continue;
    if (P.Iteration != InjectionPoint::EveryIteration &&
        P.Iteration != Iteration)
      continue;
    interp::InjectedFault F;
    F.Kind = P.Kind;
    F.Detail = P.Detail;
    return F;
  }
  return std::nullopt;
}

bool FaultInjector::skipInspection(const mf::DoStmt *Loop) const {
  return !Loop->label().empty() && SkippedInspections.count(Loop->label());
}
