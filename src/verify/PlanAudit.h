//===- verify/PlanAudit.h - Independent certification of loop plans -*- C++ -*-//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A translation-validation style *plan auditor*: a second, independent
/// static analysis that certifies or rejects every loop the parallelizer
/// marked parallel, before the runtime executes the plan.
///
/// The auditor deliberately does not consult `DependenceTester`'s
/// conclusions. It re-derives, from the normalized AST and the shared
/// section/symbolic primitives only, the cross-iteration conflict set of
/// each parallel-marked loop: it enumerates per-iteration MAY-read and
/// MAY-write array sections, subtracts accesses discharged by a recorded
/// proof obligation — privatized arrays, recognized reductions, private
/// scalars — after re-checking the premises that obligation rests on (the
/// reduction pattern really is the only access, the last-value writeback of
/// a live-out privatized array really reproduces serial contents, the
/// injectivity of an index array really is established by PropertySolver),
/// and then proves the remaining shared accesses of different iterations
/// disjoint. Three verdicts:
///
///  - Certified: every shared access pair is provably iteration-disjoint;
///  - Rejected:  a definite cross-iteration overlap exists — the audit
///               carries a structured counterexample (two iterations and
///               the overlapping section);
///  - Unknown:   the auditor is weaker than the planner here (it could
///               neither certify nor refute); `--audit=strict` demotes such
///               loops to serial.
///
/// The differential harness in the tests cross-checks these verdicts
/// against the interpreter's shadow-memory dynamic race checker
/// (ExecOptions::RaceCheck).
///
//===----------------------------------------------------------------------===//

#ifndef IAA_VERIFY_PLANAUDIT_H
#define IAA_VERIFY_PLANAUDIT_H

#include "analysis/GlobalConstants.h"
#include "analysis/PropertySolver.h"
#include "analysis/SymbolUses.h"
#include "cfg/Hcg.h"
#include "xform/Parallelizer.h"

#include <optional>
#include <string>
#include <vector>

namespace iaa {
namespace verify {

/// Per-loop audit verdict.
enum class AuditVerdict { Certified, Rejected, Unknown };

const char *auditVerdictName(AuditVerdict V);

/// A concrete witness of a cross-iteration conflict: two iterations of the
/// audited loop and the section both of them touch (at least one writing).
struct AuditCounterexample {
  /// The conflicting symbol (array, or scalar for shared-scalar writes).
  const mf::Symbol *Var = nullptr;
  /// The two iterations, rendered as bindings of the loop index
  /// (e.g. "i = 1" and "i = 2").
  std::string IterA, IterB;
  /// The sections the two iterations access (SectionB after substituting
  /// the second iteration into the subscripts).
  std::string SectionA, SectionB;
  std::string Note;

  std::string str() const;
};

/// One discharged (or failed) proof obligation the audit examined.
struct ObligationCheck {
  /// "privatized", "live-out-reproducible", "reduction", "private-scalar",
  /// "distinct-dim", "injective", "monotone", "range", "offset-length",
  /// "opaque".
  std::string Kind;
  /// The array or scalar the obligation covers.
  std::string Subject;
  bool Ok = false;
  std::string Detail;
};

/// The audit of one parallel-marked loop.
struct LoopAudit {
  const mf::DoStmt *Loop = nullptr;
  std::string Label;
  AuditVerdict Verdict = AuditVerdict::Unknown;
  /// True for a runtime-conditional plan: a Certified verdict then means
  /// "race-free provided the plan's recorded runtime checks pass at run
  /// time" — the serial fallback taken when they fail is sound either way.
  bool Conditional = false;
  /// True when the audit certifies the plan *permutation-safe*: once the
  /// recorded obligations hold (and, for conditional plans, the runtime
  /// checks pass), iterations are pairwise independent, so the executor may
  /// run them in any bijective order — in particular the inspector's
  /// locality reorder, which permutes the iteration space and pins the
  /// original final iteration last to preserve last-value semantics.
  bool PermutationSafe = false;
  std::vector<ObligationCheck> Obligations;
  /// Present iff Verdict == Rejected.
  std::optional<AuditCounterexample> Counterexample;
  /// Why the loop is not Certified (empty when it is).
  std::string Detail;
  /// Property queries the audit issued through its own PropertySolver.
  unsigned PropertyQueries = 0;

  std::string str() const;
};

/// The audit of a whole pipeline result.
struct AuditResult {
  /// One entry per parallel-marked loop, in pipeline order.
  std::vector<LoopAudit> Loops;

  unsigned numWithVerdict(AuditVerdict V) const;
  bool allCertified() const {
    return numWithVerdict(AuditVerdict::Certified) == Loops.size();
  }

  /// The audit of the loop labeled \p Label, or null.
  const LoopAudit *auditFor(const std::string &Label) const;

  std::string str() const;
};

/// The auditor. Builds its own HCG, symbol-use summaries, constant table,
/// and property solver over \p P — nothing is shared with the pipeline that
/// produced the plans, so a planner bug cannot propagate into the audit.
class PlanAuditor {
public:
  explicit PlanAuditor(mf::Program &P);

  /// Audits every parallel-marked and runtime-conditional plan in \p R.
  AuditResult audit(const xform::PipelineResult &R);

  /// Audits one loop against \p Plan (marked parallel, or emitted as
  /// parallel conditional on runtime checks).
  LoopAudit auditLoop(const mf::DoStmt *L, const xform::LoopPlan &Plan);

private:
  struct AccessInfo;
  class LoopAuditContext;

  mf::Program &Prog;
  analysis::SymbolUses Uses;
  cfg::Hcg G;
  analysis::GlobalConstants Consts;
  analysis::PropertySolver Solver;
};

/// How audit verdicts feed back into execution (mfpar --audit=MODE).
enum class AuditMode {
  Off,    ///< No audit.
  Warn,   ///< Audit and report; plans run unchanged.
  Strict, ///< Demote every non-Certified loop to serial before running.
};

const char *auditModeName(AuditMode M);
bool parseAuditMode(const std::string &Name, AuditMode &M);

/// Records \p A into \p R: fills PipelineResult::AuditOutcomes and appends
/// one audit remark per audited loop. Under AuditMode::Strict every
/// non-Certified loop's plan is demoted: a recurrence-promoted plan falls
/// back to conditional dispatch on its FallbackChecks (the inspections the
/// promotion deleted are restored and re-decided at run time); every other
/// plan is demoted to serial (LoopPlan::Parallel and LoopReport::Parallel
/// cleared, and any runtime-conditional dispatch stripped along with its
/// checks). Returns the number of demoted loops.
unsigned recordAudit(xform::PipelineResult &R, const AuditResult &A,
                     AuditMode Mode);

} // namespace verify
} // namespace iaa

#endif // IAA_VERIFY_PLANAUDIT_H
