//===- server/Session.h - Per-connection compile-service state --*- C++ -*-===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One Session per client connection, owning every piece of state a request
/// used to find in process-wide globals:
///
///   | state                    | pre-daemon home      | session home       |
///   |--------------------------|----------------------|--------------------|
///   | statistic counters       | static registry      | stat::Collector    |
///   | trace events             | process ring buffer  | trace::Buffer      |
///   | optimization remarks     | stdout / files       | RemarkSink         |
///   | access profile           | caller's Session     | per-request        |
///   | interpreter caches       | per-run Exec         | per-Interpreter    |
///   | compiled bytecode        | per-run Exec         | per-artifact store |
///
/// handle() installs the session's collector and (when tracing) trace
/// buffer for the duration of the request; the WorkerPool re-installs them
/// inside its workers per fork/join generation, so even runs sharing the
/// daemon's pool attribute observability to the right session. Two
/// concurrent sessions therefore never see each other's counters, spans,
/// remarks, verdict caches, or memory — the zero-cross-contamination
/// guarantee the SessionIsolation tests pin down.
///
/// Sessions are not thread-safe; the daemon drives each from exactly one
/// service thread. Different sessions run fully concurrently.
///
//===----------------------------------------------------------------------===//

#ifndef IAA_SERVER_SESSION_H
#define IAA_SERVER_SESSION_H

#include "interp/Interpreter.h"
#include "server/ArtifactCache.h"
#include "server/Protocol.h"
#include "server/Watchdog.h"
#include "support/Remarks.h"
#include "support/Statistic.h"
#include "support/Trace.h"

#include <atomic>
#include <map>
#include <memory>
#include <string>

namespace iaa {
namespace server {

/// Process-wide request accounting, shared by every session.
struct ServiceCounters {
  std::atomic<uint64_t> Requests{0};
  std::atomic<uint64_t> Faults{0};
  std::atomic<uint64_t> Errors{0};
  std::atomic<uint64_t> Shed{0};
};

/// Everything a session borrows from its host (daemon or test harness).
/// All pointers may be null except Artifacts and Deadlines.
struct SessionEnv {
  ArtifactCache *Artifacts = nullptr;
  Watchdog *Deadlines = nullptr;
  /// Shared fork/join pool; a session-owned pool is created per program
  /// when absent (or too small for a request's thread count).
  interp::WorkerPool *SharedPool = nullptr;
  ServiceCounters *Counters = nullptr;
  /// Set by a shutdown request; the daemon's accept loop watches it.
  std::atomic<bool> *ShutdownFlag = nullptr;
  uint64_t DefaultDeadlineMs = 0; ///< Applied when a request sends none.
  uint64_t DefaultMemLimitMb = 0; ///< Applied when a request sends none.
  size_t MaxRequestBytes = 1 << 20;
};

class Session {
public:
  explicit Session(SessionEnv Env);

  Session(const Session &) = delete;
  Session &operator=(const Session &) = delete;

  /// Handles one validated request.
  Response handle(const Request &R);

  /// The full request cycle for one wire frame: parse (hostile input),
  /// dispatch, serialize. Never throws; every malformed frame becomes a
  /// structured error response. This is the fuzz-test entry point.
  std::string handleLine(const std::string &Line);

  /// Session-cumulative statistic counters (what "counters": true inlines).
  const stat::Collector &counters() const { return Stats; }

  /// Session-cumulative remark sink (pipeline + fault remarks).
  const RemarkSink &remarks() const { return Remarks; }

  /// Requests this session has handled.
  uint64_t requestsHandled() const { return Handled; }

  /// Resident per-program states (bounded by MaxPrograms).
  size_t programCount() const { return Programs.size(); }

private:
  Response handleRun(const Request &R);
  Response handleCompile(const Request &R);
  Response handleStats(const Request &R);

  /// Per-program execution state, kept across requests so repeat
  /// submissions reuse inspector verdicts, locality permutations, model
  /// picks, and the artifact's shared bytecode. Content-keyed (flags +
  /// full source) and bounded: past MaxPrograms entries the
  /// least-recently-used state is recycled — releasing its artifact pin
  /// and interpreter (with any private pool) — so a long-lived connection
  /// cycling through distinct programs cannot grow daemon memory without
  /// bound, mirroring the bounded trace ring.
  struct ProgramState {
    std::shared_ptr<const Artifact> Art; ///< Pins the Program + plans.
    std::unique_ptr<interp::Interpreter> Interp;
    uint64_t LastUse = 0; ///< Session-local LRU clock tick.
  };
  static constexpr size_t MaxPrograms = 16;
  ProgramState &stateFor(const Request &R, bool &CacheHit);

  SessionEnv Env;
  stat::Collector Stats;
  trace::Buffer Trace;
  RemarkSink Remarks;
  std::map<std::string, ProgramState> Programs;
  uint64_t ProgramClock = 0;
  uint64_t Handled = 0;
};

} // namespace server
} // namespace iaa

#endif // IAA_SERVER_SESSION_H
