//===- server/Daemon.h - mfpard Unix-socket compile service -----*- C++ -*-===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mfpard daemon: a Unix-domain stream socket accepting line-delimited
/// JSON requests (server/Protocol.h). One accept thread feeds a *bounded*
/// connection queue drained by a fixed set of service threads, each running
/// one Session per connection; when the queue is full the daemon sheds the
/// connection with {"status":"shed","retry_after_ms":N} instead of letting
/// load build unbounded — graceful degradation, not collapse.
///
/// Shared across every request: the fork/join WorkerPool (forks serialize,
/// observability context travels with each generation), the artifact cache,
/// and the deadline watchdog. Faults, blown deadlines, and over-budget
/// allocations are contained per request by the interpreter's transaction
/// machinery; the daemon itself never dies with a tenant.
///
//===----------------------------------------------------------------------===//

#ifndef IAA_SERVER_DAEMON_H
#define IAA_SERVER_DAEMON_H

#include "interp/ThreadPool.h"
#include "server/ArtifactCache.h"
#include "server/Session.h"
#include "server/Watchdog.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace iaa {
namespace server {

struct DaemonConfig {
  std::string SocketPath;
  unsigned PoolThreads = 4;    ///< Shared fork/join WorkerPool width.
  unsigned ServiceThreads = 4; ///< Connections served concurrently.
  size_t QueueCap = 16;        ///< Accepted-but-unserved connection bound.
  uint64_t RetryAfterMs = 50;  ///< Backoff hint on a shed response.
  uint64_t DefaultDeadlineMs = 0; ///< Per-request default; 0 = untimed.
  uint64_t DefaultMemLimitMb = 0; ///< Per-request default; 0 = unlimited.
  size_t MaxRequestBytes = 1 << 20;
  size_t CacheEntries = 64;
};

class Daemon {
public:
  explicit Daemon(DaemonConfig C);
  ~Daemon();

  Daemon(const Daemon &) = delete;
  Daemon &operator=(const Daemon &) = delete;

  /// Binds the socket and starts the accept + service threads. False (with
  /// \p Err set) when the socket cannot be created or bound.
  bool start(std::string *Err);

  /// Stops accepting, unblocks every service thread, joins them, and
  /// removes the socket file. Idempotent; also run by the destructor.
  void stop();

  bool running() const { return Running.load(std::memory_order_acquire); }

  /// Blocks until a shutdown request arrives or stop() is called. The timed
  /// overload returns after at most \p TimeoutMs; true when shutdown was
  /// requested or the daemon stopped (callers polling for signals use it).
  void waitForShutdown();
  bool waitForShutdown(uint64_t TimeoutMs);

  const DaemonConfig &config() const { return Config; }
  ServiceCounters &counters() { return Counters; }
  ArtifactCache &artifacts() { return Artifacts; }
  Watchdog &watchdog() { return Deadlines; }

private:
  void acceptLoop();
  void serviceLoop();
  void serveConnection(int Fd);

  DaemonConfig Config;
  ArtifactCache Artifacts;
  Watchdog Deadlines;
  std::unique_ptr<interp::WorkerPool> Pool;
  ServiceCounters Counters;
  std::atomic<bool> ShutdownRequested{false};
  std::atomic<bool> Running{false};
  std::atomic<bool> Stopping{false};
  int ListenFd = -1;

  std::mutex QueueM;
  std::condition_variable QueueCv;
  /// Shutdown waiters get their own cv: if waitForShutdown() waited on
  /// QueueCv, the acceptor's notify_one for a freshly queued connection
  /// could wake it instead of a service thread — it would re-check its
  /// predicate, go back to sleep, and the connection would sit in
  /// PendingFds until the next notify (a lost wakeup the mfpard binary,
  /// whose main thread parks in waitForShutdown, actually hit).
  std::condition_variable ShutdownCv;
  std::deque<int> PendingFds;

  std::thread Acceptor;
  std::vector<std::thread> Services;
};

} // namespace server
} // namespace iaa

#endif // IAA_SERVER_DAEMON_H
