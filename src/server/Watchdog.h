//===- server/Watchdog.h - Wall-clock deadline watchdog ---------*- C++ -*-===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One timer thread serving every in-flight request deadline: arm()
/// registers a CancelToken against an absolute steady-clock deadline,
/// disarm() withdraws it on completion. When a deadline passes, the
/// watchdog fires the token — the run then cancels cooperatively (the
/// interpreter polls at iteration granularity, the chunk dispenser drains
/// its workers) and surfaces a structured DeadlineExceeded fault. The
/// watchdog never touches the run's thread directly; there is nothing to
/// kill, so a fired deadline can never tear shared daemon state.
///
//===----------------------------------------------------------------------===//

#ifndef IAA_SERVER_WATCHDOG_H
#define IAA_SERVER_WATCHDOG_H

#include "interp/Fault.h"

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

namespace iaa {
namespace server {

class Watchdog {
public:
  Watchdog();
  ~Watchdog();

  Watchdog(const Watchdog &) = delete;
  Watchdog &operator=(const Watchdog &) = delete;

  /// Fires \p Token once \p Deadline passes (unless disarmed first).
  /// Returns a handle for disarm().
  uint64_t arm(std::chrono::steady_clock::time_point Deadline,
               std::shared_ptr<interp::CancelToken> Token);

  /// Withdraws a deadline; a no-op if it already fired. Idempotent.
  void disarm(uint64_t Id);

  /// Deadlines that fired before being disarmed.
  uint64_t fired() const;

  /// RAII arm/disarm for one request: arms only when \p Ms > 0.
  class Scope {
  public:
    Scope(Watchdog &W, uint64_t Ms,
          std::shared_ptr<interp::CancelToken> Token)
        : W(W),
          Id(Ms ? W.arm(std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(Ms),
                        std::move(Token))
                : 0) {}
    ~Scope() {
      if (Id)
        W.disarm(Id);
    }
    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

  private:
    Watchdog &W;
    uint64_t Id;
  };

private:
  void loop();

  mutable std::mutex M;
  std::condition_variable Cv;
  struct Armed {
    std::chrono::steady_clock::time_point Deadline;
    std::shared_ptr<interp::CancelToken> Token;
  };
  std::map<uint64_t, Armed> Pending;
  uint64_t NextId = 1;
  uint64_t Fired = 0;
  bool Stop = false;
  std::thread Th; ///< Last member: started after the state it reads.
};

} // namespace server
} // namespace iaa

#endif // IAA_SERVER_WATCHDOG_H
