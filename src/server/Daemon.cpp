//===- server/Daemon.cpp - mfpard Unix-socket compile service -------------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "server/Daemon.h"

#include <cerrno>
#include <cstring>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace iaa;
using namespace iaa::server;

namespace {

/// Writes all of \p Data; MSG_NOSIGNAL so a client that hung up mid-reply
/// costs an EPIPE, not a process-killing SIGPIPE.
bool sendAll(int Fd, const std::string &Data) {
  size_t Off = 0;
  while (Off < Data.size()) {
    ssize_t N =
        ::send(Fd, Data.data() + Off, Data.size() - Off, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

} // namespace

Daemon::Daemon(DaemonConfig C)
    : Config(std::move(C)),
      Artifacts(Config.CacheEntries ? Config.CacheEntries : 64) {
  if (Config.ServiceThreads == 0)
    Config.ServiceThreads = 1;
  if (Config.PoolThreads == 0)
    Config.PoolThreads = 1;
}

Daemon::~Daemon() { stop(); }

bool Daemon::start(std::string *Err) {
  if (Running.load(std::memory_order_acquire))
    return true;

  ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0) {
    if (Err)
      *Err = std::string("socket: ") + std::strerror(errno);
    return false;
  }

  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Config.SocketPath.size() >= sizeof(Addr.sun_path)) {
    if (Err)
      *Err = "socket path too long: " + Config.SocketPath;
    ::close(ListenFd);
    ListenFd = -1;
    return false;
  }
  std::strncpy(Addr.sun_path, Config.SocketPath.c_str(),
               sizeof(Addr.sun_path) - 1);
  ::unlink(Config.SocketPath.c_str()); // Stale socket from a dead daemon.
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
          0 ||
      ::listen(ListenFd, 64) < 0) {
    if (Err)
      *Err = std::string("bind/listen ") + Config.SocketPath + ": " +
             std::strerror(errno);
    ::close(ListenFd);
    ListenFd = -1;
    return false;
  }

  // The shared fork/join pool every non-simulated run dispatches on.
  Pool = std::make_unique<interp::WorkerPool>(Config.PoolThreads);

  Stopping.store(false, std::memory_order_release);
  ShutdownRequested.store(false, std::memory_order_release);
  Running.store(true, std::memory_order_release);
  Acceptor = std::thread([this] { acceptLoop(); });
  Services.reserve(Config.ServiceThreads);
  for (unsigned I = 0; I < Config.ServiceThreads; ++I)
    Services.emplace_back([this] { serviceLoop(); });
  return true;
}

void Daemon::stop() {
  if (!Running.exchange(false, std::memory_order_acq_rel))
    return;
  Stopping.store(true, std::memory_order_release);
  QueueCv.notify_all();
  ShutdownCv.notify_all();
  if (Acceptor.joinable())
    Acceptor.join();
  for (std::thread &T : Services)
    if (T.joinable())
      T.join();
  Services.clear();
  {
    std::lock_guard<std::mutex> Lock(QueueM);
    for (int Fd : PendingFds)
      ::close(Fd);
    PendingFds.clear();
  }
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ListenFd = -1;
  }
  ::unlink(Config.SocketPath.c_str());
  Pool.reset();
  ShutdownCv.notify_all(); // Wake waitForShutdown().
}

void Daemon::waitForShutdown() {
  std::unique_lock<std::mutex> Lock(QueueM);
  ShutdownCv.wait(Lock, [&] {
    return ShutdownRequested.load(std::memory_order_acquire) ||
           Stopping.load(std::memory_order_acquire) ||
           !Running.load(std::memory_order_acquire);
  });
}

bool Daemon::waitForShutdown(uint64_t TimeoutMs) {
  std::unique_lock<std::mutex> Lock(QueueM);
  return ShutdownCv.wait_for(Lock, std::chrono::milliseconds(TimeoutMs), [&] {
    return ShutdownRequested.load(std::memory_order_acquire) ||
           Stopping.load(std::memory_order_acquire) ||
           !Running.load(std::memory_order_acquire);
  });
}

void Daemon::acceptLoop() {
  while (!Stopping.load(std::memory_order_acquire)) {
    // Poll with a timeout so stop() (and a session's shutdown request) are
    // noticed without a connection arriving to unblock accept().
    pollfd P{ListenFd, POLLIN, 0};
    int R = ::poll(&P, 1, 200);
    if (ShutdownRequested.load(std::memory_order_acquire)) {
      ShutdownCv.notify_all();
      return;
    }
    if (R <= 0)
      continue;
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      continue;
    {
      std::lock_guard<std::mutex> Lock(QueueM);
      if (PendingFds.size() < Config.QueueCap) {
        PendingFds.push_back(Fd);
        Fd = -1;
      }
    }
    if (Fd >= 0) {
      // Queue full: shed with a structured response instead of stalling
      // the accept loop or queueing unboundedly. The client backs off and
      // retries; the daemon keeps serving what it already admitted.
      Counters.Shed.fetch_add(1, std::memory_order_relaxed);
      Response Shed;
      Shed.St = Response::Status::Shed;
      Shed.RetryAfterMs = Config.RetryAfterMs;
      sendAll(Fd, Shed.toJsonLine() + "\n");
      ::close(Fd);
      continue;
    }
    QueueCv.notify_one();
  }
}

void Daemon::serviceLoop() {
  while (true) {
    int Fd = -1;
    {
      std::unique_lock<std::mutex> Lock(QueueM);
      QueueCv.wait(Lock, [&] {
        return Stopping.load(std::memory_order_acquire) ||
               !PendingFds.empty();
      });
      if (Stopping.load(std::memory_order_acquire))
        return;
      Fd = PendingFds.front();
      PendingFds.pop_front();
    }
    serveConnection(Fd);
    ::close(Fd);
  }
}

void Daemon::serveConnection(int Fd) {
  SessionEnv Env;
  Env.Artifacts = &Artifacts;
  Env.Deadlines = &Deadlines;
  Env.SharedPool = Pool.get();
  Env.Counters = &Counters;
  Env.ShutdownFlag = &ShutdownRequested;
  Env.DefaultDeadlineMs = Config.DefaultDeadlineMs;
  Env.DefaultMemLimitMb = Config.DefaultMemLimitMb;
  Env.MaxRequestBytes = Config.MaxRequestBytes;
  Session S(Env);

  std::string Buf;
  char Chunk[4096];
  bool Discarding = false; // Oversized frame: drop bytes to the newline.
  while (!Stopping.load(std::memory_order_acquire)) {
    pollfd P{Fd, POLLIN, 0};
    int R = ::poll(&P, 1, 200);
    if (R < 0 && errno != EINTR)
      return;
    if (R <= 0)
      continue;
    ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (N == 0)
      return; // Client hung up.
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return;
    }
    Buf.append(Chunk, static_cast<size_t>(N));

    size_t Start = 0;
    for (size_t NL = Buf.find('\n', Start); NL != std::string::npos;
         NL = Buf.find('\n', Start)) {
      std::string Line = Buf.substr(Start, NL - Start);
      Start = NL + 1;
      if (Discarding) {
        Discarding = false; // The newline resynchronized the stream.
        continue;
      }
      if (!Line.empty() && Line.back() == '\r')
        Line.pop_back();
      if (Line.empty())
        continue;
      if (!sendAll(Fd, S.handleLine(Line) + "\n"))
        return;
      if (ShutdownRequested.load(std::memory_order_acquire)) {
        ShutdownCv.notify_all();
        return;
      }
    }
    Buf.erase(0, Start);

    // Still inside a discarded oversized frame (no newline yet): every
    // buffered byte belongs to that frame, so drop them all. Memory stays
    // bounded however much the client streams before the resynchronizing
    // newline arrives.
    if (Discarding) {
      Buf.clear();
      continue;
    }

    // A frame longer than the bound with no newline yet: answer the error
    // now and discard until the terminator, so one hostile client cannot
    // make the daemon buffer arbitrary bytes.
    if (Buf.size() > Config.MaxRequestBytes) {
      Counters.Requests.fetch_add(1, std::memory_order_relaxed);
      Counters.Errors.fetch_add(1, std::memory_order_relaxed);
      std::string Err = errorResponse("", "request frame exceeds " +
                                              std::to_string(
                                                  Config.MaxRequestBytes) +
                                              " bytes")
                            .toJsonLine();
      if (!sendAll(Fd, Err + "\n"))
        return;
      Buf.clear();
      Discarding = true;
    }
  }
}
