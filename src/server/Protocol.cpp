//===- server/Protocol.cpp - mfpard request/response protocol -------------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "server/Protocol.h"

#include "support/Json.h"

#include <cmath>

using namespace iaa;
using namespace iaa::server;

const char *server::opName(Op O) {
  switch (O) {
  case Op::Run:      return "run";
  case Op::Compile:  return "compile";
  case Op::Ping:     return "ping";
  case Op::Stats:    return "stats";
  case Op::Shutdown: return "shutdown";
  }
  return "?";
}

const char *server::statusName(Response::Status S) {
  switch (S) {
  case Response::Status::Ok:    return "ok";
  case Response::Status::Pong:  return "pong";
  case Response::Status::Bye:   return "bye";
  case Response::Status::Error: return "error";
  case Response::Status::Fault: return "fault";
  case Response::Status::Shed:  return "shed";
  }
  return "?";
}

std::string Request::flagKey() const {
  return std::string(xform::pipelineModeName(Mode)) + "|" +
         verify::auditModeName(Audit);
}

namespace {

/// Reads a JSON number as a bounded non-negative integer; false on
/// fractions, negatives, NaN, or anything past \p Max.
bool asBoundedU64(const json::Value &V, uint64_t Max, uint64_t &Out) {
  if (!V.isNumber() || !(V.N >= 0) || V.N != std::floor(V.N) ||
      V.N > static_cast<double>(Max))
    return false;
  Out = static_cast<uint64_t>(V.N);
  return true;
}

bool asBool(const json::Value &V, bool &Out) {
  if (V.K != json::Value::Kind::Bool)
    return false;
  Out = V.B;
  return true;
}

} // namespace

std::optional<Request> server::parseRequest(const std::string &Line,
                                            std::string &Err,
                                            size_t MaxBytes) {
  if (MaxBytes && Line.size() > MaxBytes) {
    Err = "request frame exceeds " + std::to_string(MaxBytes) + " bytes";
    return std::nullopt;
  }
  std::optional<json::Value> Doc = json::parse(Line);
  if (!Doc) {
    Err = "malformed JSON request frame";
    return std::nullopt;
  }
  if (!Doc->isObject()) {
    Err = "request must be a JSON object";
    return std::nullopt;
  }

  Request R;
  if (const json::Value *Id = Doc->member("id")) {
    if (Id->isString())
      R.Id = Id->S;
    else if (Id->isNumber())
      R.Id = json::num(Id->N);
    else {
      Err = "'id' must be a string or number";
      return std::nullopt;
    }
  }

  const json::Value *OpV = Doc->member("op");
  if (!OpV || !OpV->isString()) {
    Err = "missing or non-string 'op'";
    return std::nullopt;
  }
  if (OpV->S == "run")
    R.Kind = Op::Run;
  else if (OpV->S == "compile")
    R.Kind = Op::Compile;
  else if (OpV->S == "ping")
    R.Kind = Op::Ping;
  else if (OpV->S == "stats")
    R.Kind = Op::Stats;
  else if (OpV->S == "shutdown")
    R.Kind = Op::Shutdown;
  else {
    Err = "unknown op '" + OpV->S + "'";
    return std::nullopt;
  }

  if (const json::Value *V = Doc->member("source")) {
    if (!V->isString()) {
      Err = "'source' must be a string";
      return std::nullopt;
    }
    R.Source = V->S;
  }
  if ((R.Kind == Op::Run || R.Kind == Op::Compile) && R.Source.empty()) {
    Err = std::string("op '") + opName(R.Kind) + "' requires 'source'";
    return std::nullopt;
  }

  if (const json::Value *V = Doc->member("mode")) {
    if (V->isString() && V->S == "full")
      R.Mode = xform::PipelineMode::Full;
    else if (V->isString() && V->S == "noiaa")
      R.Mode = xform::PipelineMode::NoIAA;
    else if (V->isString() && V->S == "apo")
      R.Mode = xform::PipelineMode::Apo;
    else {
      Err = "'mode' must be full, noiaa, or apo";
      return std::nullopt;
    }
  }
  if (const json::Value *V = Doc->member("threads")) {
    uint64_t T = 0;
    if (!asBoundedU64(*V, 256, T) || T == 0) {
      Err = "'threads' must be an integer between 1 and 256";
      return std::nullopt;
    }
    R.Threads = static_cast<unsigned>(T);
  }
  if (const json::Value *V = Doc->member("schedule")) {
    if (!V->isString() || !interp::parseSchedule(V->S, R.Sched)) {
      Err = "'schedule' must be static, dynamic, or guided";
      return std::nullopt;
    }
  }
  if (const json::Value *V = Doc->member("chunk")) {
    uint64_t C = 0;
    if (!asBoundedU64(*V, uint64_t(1) << 32, C)) {
      Err = "'chunk' must be a non-negative integer";
      return std::nullopt;
    }
    R.ChunkSize = static_cast<int64_t>(C);
  }
  if (const json::Value *V = Doc->member("engine")) {
    if (!V->isString() || !interp::parseEngine(V->S, R.Engine)) {
      Err = "'engine' must be interp, vm, or both";
      return std::nullopt;
    }
  }
  if (const json::Value *V = Doc->member("locality")) {
    if (!V->isString() || !sched::parseLocalityMode(V->S, R.Locality)) {
      Err = "'locality' must be off, model, or reorder";
      return std::nullopt;
    }
  }
  if (const json::Value *V = Doc->member("audit")) {
    if (!V->isString() || !verify::parseAuditMode(V->S, R.Audit)) {
      Err = "'audit' must be off, warn, or strict";
      return std::nullopt;
    }
  }
  if (const json::Value *V = Doc->member("runtime_checks")) {
    if (!asBool(*V, R.RuntimeChecks)) {
      Err = "'runtime_checks' must be a boolean";
      return std::nullopt;
    }
  }
  if (const json::Value *V = Doc->member("on_fault")) {
    if (!V->isString() || !interp::parseFaultAction(V->S, R.OnFault)) {
      Err = "'on_fault' must be report or replay";
      return std::nullopt;
    }
    // A tenant must not disable the shared process's fault containment:
    // abort skips the rollback snapshot and kills the daemon on a fault.
    if (R.OnFault == interp::FaultAction::Abort) {
      Err = "'on_fault' abort is not allowed in the compile service";
      return std::nullopt;
    }
  }
  if (const json::Value *V = Doc->member("simulate")) {
    if (!asBool(*V, R.Simulate)) {
      Err = "'simulate' must be a boolean";
      return std::nullopt;
    }
  }
  if (const json::Value *V = Doc->member("profile")) {
    if (!asBool(*V, R.Profile)) {
      Err = "'profile' must be a boolean";
      return std::nullopt;
    }
  }
  if (const json::Value *V = Doc->member("counters")) {
    if (!asBool(*V, R.Counters)) {
      Err = "'counters' must be a boolean";
      return std::nullopt;
    }
  }
  if (const json::Value *V = Doc->member("remarks")) {
    if (!asBool(*V, R.Remarks)) {
      Err = "'remarks' must be a boolean";
      return std::nullopt;
    }
  }
  if (const json::Value *V = Doc->member("trace")) {
    if (!asBool(*V, R.Trace)) {
      Err = "'trace' must be a boolean";
      return std::nullopt;
    }
  }
  if (const json::Value *V = Doc->member("deadline_ms")) {
    if (!asBoundedU64(*V, 86400000, R.DeadlineMs)) {
      Err = "'deadline_ms' must be an integer between 0 and 86400000";
      return std::nullopt;
    }
  }
  if (const json::Value *V = Doc->member("mem_limit_mb")) {
    if (!asBoundedU64(*V, uint64_t(1) << 30, R.MemLimitMb)) {
      Err = "'mem_limit_mb' must be a non-negative integer";
      return std::nullopt;
    }
  }
  return R;
}

std::string Response::toJsonLine() const {
  std::string Out = "{\"id\": " + json::str(Id) +
                    ", \"status\": " + json::str(statusName(St));
  switch (St) {
  case Status::Error:
    Out += ", \"error\": " + json::str(Error);
    break;
  case Status::Fault:
    Out += ", \"fault\": " + json::str(FaultKind) +
           ", \"detail\": " + json::str(FaultDetail) +
           ", \"exit_equivalent\": " + std::to_string(ExitEquivalent);
    break;
  case Status::Shed:
    Out += ", \"retry_after_ms\": " + std::to_string(RetryAfterMs);
    break;
  case Status::Ok:
  case Status::Pong:
  case Status::Bye:
    break;
  }
  if (HasCache)
    Out += std::string(", \"cache\": ") + (CacheHit ? "\"hit\"" : "\"miss\"");
  if (HasChecksum)
    Out += ", \"checksum\": " + json::num(Checksum) +
           ", \"seconds\": " + json::num(Seconds);
  if (!PlanSummary.empty())
    Out += ", \"plan\": " + json::str(PlanSummary);
  if (!RemarksJsonl.empty())
    Out += ", \"remarks_jsonl\": " + json::str(RemarksJsonl);
  if (!ProfileJsonl.empty())
    Out += ", \"profile_jsonl\": " + json::str(ProfileJsonl);
  if (!CountersJson.empty())
    Out += ", \"counters\": " + CountersJson;
  if (!StatsJson.empty())
    Out += ", \"service\": " + StatsJson;
  if (HasTraceEvents)
    Out += ", \"trace_events\": " + std::to_string(TraceEvents);
  Out += "}";
  return Out;
}

Response server::errorResponse(const std::string &Id,
                               const std::string &Why) {
  Response R;
  R.Id = Id;
  R.St = Response::Status::Error;
  R.Error = Why;
  return R;
}
