//===- server/Client.h - Blocking mfpard client -----------------*- C++ -*-===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal blocking client for the mfpard wire protocol: connect to the
/// Unix socket, send one JSON line, read one JSON line back. Used by the
/// daemon tests, the daemon benchmark, and as the reference client example
/// in the README.
///
//===----------------------------------------------------------------------===//

#ifndef IAA_SERVER_CLIENT_H
#define IAA_SERVER_CLIENT_H

#include <string>

namespace iaa {
namespace server {

class Client {
public:
  Client() = default;
  ~Client() { close(); }

  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;

  /// Connects to the daemon socket; false (with \p Err) on failure.
  bool connect(const std::string &SocketPath, std::string *Err = nullptr);

  bool connected() const { return Fd >= 0; }

  /// Sends \p RequestLine (newline appended) and blocks for one response
  /// line. False on any I/O failure or peer hang-up. Note a daemon under
  /// load may answer a fresh connection with a "shed" line and close.
  bool roundTrip(const std::string &RequestLine, std::string &ResponseLine,
                 std::string *Err = nullptr);

  /// Sends \p Bytes with no framing at all — the seam the protocol tests
  /// use to stream hostile input (oversized frames, split frames) at the
  /// daemon byte by byte.
  bool sendRaw(const std::string &Bytes, std::string *Err = nullptr);

  /// Bounds every subsequent receive: readLine()/roundTrip() fail instead
  /// of blocking forever when no response arrives within \p Ms. Lets tests
  /// assert liveness (a served connection) without risking a hang.
  bool setRecvTimeoutMs(uint64_t Ms, std::string *Err = nullptr);

  /// Reads one response line without sending (for shed responses pushed
  /// on connect-time overload).
  bool readLine(std::string &Line, std::string *Err = nullptr);

  void close();

private:
  int Fd = -1;
  std::string Buf; ///< Bytes read past the last returned line.
};

} // namespace server
} // namespace iaa

#endif // IAA_SERVER_CLIENT_H
