//===- server/Client.cpp - Blocking mfpard client -------------------------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "server/Client.h"

#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

using namespace iaa;
using namespace iaa::server;

bool Client::connect(const std::string &SocketPath, std::string *Err) {
  close();
  Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    if (Err)
      *Err = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (SocketPath.size() >= sizeof(Addr.sun_path)) {
    if (Err)
      *Err = "socket path too long: " + SocketPath;
    close();
    return false;
  }
  std::strncpy(Addr.sun_path, SocketPath.c_str(), sizeof(Addr.sun_path) - 1);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    if (Err)
      *Err = std::string("connect ") + SocketPath + ": " +
             std::strerror(errno);
    close();
    return false;
  }
  return true;
}

bool Client::roundTrip(const std::string &RequestLine,
                       std::string &ResponseLine, std::string *Err) {
  if (!sendRaw(RequestLine + "\n", Err))
    return false;
  return readLine(ResponseLine, Err);
}

bool Client::sendRaw(const std::string &Bytes, std::string *Err) {
  if (Fd < 0) {
    if (Err)
      *Err = "not connected";
    return false;
  }
  size_t Off = 0;
  while (Off < Bytes.size()) {
    ssize_t N = ::send(Fd, Bytes.data() + Off, Bytes.size() - Off,
                       MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      if (Err)
        *Err = std::string("send: ") + std::strerror(errno);
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

bool Client::setRecvTimeoutMs(uint64_t Ms, std::string *Err) {
  if (Fd < 0) {
    if (Err)
      *Err = "not connected";
    return false;
  }
  timeval Tv{};
  Tv.tv_sec = static_cast<time_t>(Ms / 1000);
  Tv.tv_usec = static_cast<suseconds_t>((Ms % 1000) * 1000);
  if (::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv)) < 0) {
    if (Err)
      *Err = std::string("setsockopt: ") + std::strerror(errno);
    return false;
  }
  return true;
}

bool Client::readLine(std::string &Line, std::string *Err) {
  if (Fd < 0) {
    if (Err)
      *Err = "not connected";
    return false;
  }
  char Chunk[4096];
  while (true) {
    size_t NL = Buf.find('\n');
    if (NL != std::string::npos) {
      Line = Buf.substr(0, NL);
      Buf.erase(0, NL + 1);
      return true;
    }
    ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (N == 0) {
      if (Err)
        *Err = "connection closed by daemon";
      return false;
    }
    if (N < 0) {
      if (errno == EINTR)
        continue;
      if (Err)
        *Err = std::string("recv: ") + std::strerror(errno);
      return false;
    }
    Buf.append(Chunk, static_cast<size_t>(N));
  }
}

void Client::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
  Buf.clear();
}
