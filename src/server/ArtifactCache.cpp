//===- server/ArtifactCache.cpp - Shared compile-artifact cache -----------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "server/ArtifactCache.h"

#include "mf/Parser.h"
#include "support/Remarks.h"

using namespace iaa;
using namespace iaa::server;

std::string server::artifactKey(const std::string &Source,
                                xform::PipelineMode Mode,
                                verify::AuditMode Audit) {
  // Flags first: mode/audit names contain no '|', so the prefix parses
  // unambiguously no matter what bytes the source holds. Keying on the
  // full source text (not a 64-bit hash of it) is deliberate — a
  // non-cryptographic hash has constructible collisions, and a collision
  // would silently serve one tenant another program's compiled artifact.
  std::string Key = xform::pipelineModeName(Mode);
  Key += '|';
  Key += verify::auditModeName(Audit);
  Key += '|';
  Key += Source;
  return Key;
}

namespace {

std::shared_ptr<const Artifact> buildArtifact(const std::string &Source,
                                              xform::PipelineMode Mode,
                                              verify::AuditMode Audit) {
  auto Art = std::make_shared<Artifact>();
  Art->Bytecode = std::make_shared<vm::BytecodeCache>();

  DiagnosticEngine Diags;
  Art->Prog = mf::parseProgram(Source, Diags);
  if (!Art->Prog) {
    Art->BuildError = Diags.str();
    if (Art->BuildError.empty())
      Art->BuildError = "parse failed";
    return Art;
  }

  Art->Plans = xform::parallelize(*Art->Prog, Mode);
  Art->PlanSummary = Art->Plans.str();
  if (Audit != verify::AuditMode::Off) {
    verify::PlanAuditor Auditor(*Art->Prog);
    verify::AuditResult A = Auditor.audit(Art->Plans);
    unsigned Demoted = verify::recordAudit(Art->Plans, A, Audit);
    Art->PlanSummary += A.str();
    if (Demoted)
      Art->PlanSummary += std::to_string(Demoted) +
                          " non-certified loop(s) demoted to serial\n";
  }
  Art->RemarksJsonl = remarksJsonl(Art->Plans.Remarks);
  return Art;
}

} // namespace

std::shared_ptr<const Artifact>
ArtifactCache::get(const std::string &Source, xform::PipelineMode Mode,
                   verify::AuditMode Audit, bool &Hit) {
  std::string Key = artifactKey(Source, Mode, Audit);

  std::shared_ptr<Entry> E;
  {
    std::lock_guard<std::mutex> Lock(M);
    auto [It, Inserted] = Entries.try_emplace(Key);
    if (Inserted) {
      It->second = std::make_shared<Entry>();
      Misses.fetch_add(1, std::memory_order_relaxed);
      // LRU eviction on insert. Entries are shared_ptrs, so an evicted
      // artifact a session still pins (or whose build is in flight) stays
      // alive until the last reference drops; only the cache forgets it.
      while (Entries.size() > MaxEntries) {
        auto Victim = Entries.end();
        for (auto I = Entries.begin(); I != Entries.end(); ++I) {
          if (I->first == Key)
            continue;
          if (Victim == Entries.end() ||
              I->second->LastUse < Victim->second->LastUse)
            Victim = I;
        }
        if (Victim == Entries.end())
          break;
        Entries.erase(Victim);
      }
    } else {
      Hits.fetch_add(1, std::memory_order_relaxed);
    }
    Hit = !Inserted;
    It->second->LastUse = ++Clock;
    E = It->second;
  }

  // Build outside the cache lock, once, under the entry's own mutex:
  // latecomers for the same key block here until the artifact exists, and
  // requests for other keys are never stalled by this build.
  std::lock_guard<std::mutex> BuildLock(E->BuildM);
  if (!E->Art)
    E->Art = buildArtifact(Source, Mode, Audit);
  return E->Art;
}
