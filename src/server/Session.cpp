//===- server/Session.cpp - Per-connection compile-service state ----------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "server/Session.h"

#include "prof/Profiler.h"
#include "support/Json.h"

using namespace iaa;
using namespace iaa::server;

Session::Session(SessionEnv E) : Env(E) {
  // Bound the per-session trace ring: a long-lived connection tracing many
  // runs must not grow without limit (drops are counted, not silent).
  Trace.setMaxEvents(1 << 14);
}

Session::ProgramState &Session::stateFor(const Request &R, bool &CacheHit) {
  // Content-keyed like the artifact cache: the full source, never a hash
  // of it, so two distinct programs cannot alias one state slot.
  std::string Key = artifactKey(R.Source, R.Mode, R.Audit);

  auto [It, Inserted] = Programs.try_emplace(Key);
  ProgramState &PS = It->second;
  if (Inserted || !PS.Art) {
    PS.Art = Env.Artifacts->get(R.Source, R.Mode, R.Audit, CacheHit);
    if (PS.Art->ok()) {
      // The session's interpreter executes against the artifact's Program
      // (pinned by PS.Art against cache eviction) and shares the
      // artifact's bytecode store with every other session running it.
      PS.Interp = std::make_unique<interp::Interpreter>(*PS.Art->Prog);
      PS.Interp->setBytecodeCache(PS.Art->Bytecode);
    }
  } else {
    // This session already holds the artifact; the cross-session cache
    // was not consulted, but for the client it is still a hit.
    CacheHit = true;
  }
  PS.LastUse = ++ProgramClock;

  // LRU-recycle past the bound, never the state being returned. Erasing
  // releases the evictee's artifact pin and interpreter; a re-submission
  // rebuilds from the (still cached) artifact.
  while (Programs.size() > MaxPrograms) {
    auto Victim = Programs.end();
    for (auto I = Programs.begin(); I != Programs.end(); ++I) {
      if (I == It)
        continue;
      if (Victim == Programs.end() ||
          I->second.LastUse < Victim->second.LastUse)
        Victim = I;
    }
    if (Victim == Programs.end())
      break;
    Programs.erase(Victim);
  }
  return PS;
}

Response Session::handleRun(const Request &R) {
  bool CacheHit = false;
  ProgramState &PS = stateFor(R, CacheHit);

  Response Resp;
  Resp.Id = R.Id;
  Resp.HasCache = true;
  Resp.CacheHit = CacheHit;
  if (!PS.Art->ok()) {
    Resp.St = Response::Status::Error;
    Resp.Error = "compile failed: " + PS.Art->BuildError;
    if (Env.Counters)
      Env.Counters->Errors.fetch_add(1, std::memory_order_relaxed);
    return Resp;
  }

  // Per-request resource envelope: the request's own limits, else the
  // server defaults. The token outlives the Scope via shared_ptr, so a
  // deadline that fires exactly as the run finishes still has a live
  // target to cancel.
  uint64_t DeadlineMs = R.DeadlineMs ? R.DeadlineMs : Env.DefaultDeadlineMs;
  uint64_t MemLimitMb = R.MemLimitMb ? R.MemLimitMb : Env.DefaultMemLimitMb;
  auto Token = std::make_shared<interp::CancelToken>();
  Watchdog::Scope Deadline(*Env.Deadlines, DeadlineMs, Token);

  prof::Session Prof;
  interp::ExecOptions Opts;
  Opts.Plans = &PS.Art->Plans;
  Opts.Threads = R.Threads;
  Opts.Sched = R.Sched;
  Opts.ChunkSize = R.ChunkSize;
  Opts.Engine = R.Engine;
  Opts.Locality = R.Locality;
  Opts.RuntimeChecks = R.RuntimeChecks;
  Opts.OnFault = R.OnFault; // Abort was refused at the protocol boundary.
  Opts.Simulate = R.Simulate;
  Opts.Cancel = Token.get();
  Opts.MemLimitBytes = static_cast<size_t>(MemLimitMb) << 20;
  if (!R.Simulate)
    Opts.SharedPool = Env.SharedPool;
  if (R.Profile)
    Opts.Prof = &Prof;

  interp::ExecStats RunStats;
  interp::Memory Mem = PS.Interp->run(Opts, &RunStats);
  const interp::FaultState &FS = PS.Interp->faultState();

  if (!RunStats.FaultRemarks.empty())
    Remarks.add(RunStats.FaultRemarks);

  if (FS.Faulted) {
    Resp.St = Response::Status::Fault;
    Resp.FaultKind = interp::faultKindName(FS.Fault.Kind);
    Resp.FaultDetail = FS.Fault.str();
    switch (FS.Fault.Kind) {
    case interp::FaultKind::DeadlineExceeded:
      Resp.ExitEquivalent = 5;
      break;
    case interp::FaultKind::ResourceExhausted:
      Resp.ExitEquivalent = 6;
      break;
    default:
      Resp.ExitEquivalent = 4;
      break;
    }
    if (Env.Counters)
      Env.Counters->Faults.fetch_add(1, std::memory_order_relaxed);
  } else {
    Resp.HasChecksum = true;
    Resp.Checksum =
        Mem.checksumExcluding(interp::deadPrivateIds(PS.Art->Plans));
    Resp.Seconds = RunStats.TotalSeconds;
  }

  if (R.Remarks)
    Resp.RemarksJsonl =
        PS.Art->RemarksJsonl + remarksJsonl(RunStats.FaultRemarks);
  if (R.Profile)
    Resp.ProfileJsonl = Prof.jsonl(&PS.Art->Plans);
  if (R.Counters)
    Resp.CountersJson = Stats.json();
  if (R.Trace) {
    Resp.HasTraceEvents = true;
    Resp.TraceEvents = Trace.eventCount();
  }
  return Resp;
}

Response Session::handleCompile(const Request &R) {
  bool CacheHit = false;
  ProgramState &PS = stateFor(R, CacheHit);

  Response Resp;
  Resp.Id = R.Id;
  Resp.HasCache = true;
  Resp.CacheHit = CacheHit;
  if (!PS.Art->ok()) {
    Resp.St = Response::Status::Error;
    Resp.Error = "compile failed: " + PS.Art->BuildError;
    if (Env.Counters)
      Env.Counters->Errors.fetch_add(1, std::memory_order_relaxed);
    return Resp;
  }
  Resp.PlanSummary = PS.Art->PlanSummary;
  if (R.Remarks)
    Resp.RemarksJsonl = PS.Art->RemarksJsonl;
  return Resp;
}

Response Session::handleStats(const Request &R) {
  Response Resp;
  Resp.Id = R.Id;
  uint64_t Requests = 0, Faults = 0, Errors = 0, Shed = 0;
  if (Env.Counters) {
    Requests = Env.Counters->Requests.load(std::memory_order_relaxed);
    Faults = Env.Counters->Faults.load(std::memory_order_relaxed);
    Errors = Env.Counters->Errors.load(std::memory_order_relaxed);
    Shed = Env.Counters->Shed.load(std::memory_order_relaxed);
  }
  Resp.StatsJson = "{\"requests\": " + std::to_string(Requests) +
                   ", \"faults\": " + std::to_string(Faults) +
                   ", \"errors\": " + std::to_string(Errors) +
                   ", \"shed\": " + std::to_string(Shed) +
                   ", \"cache_hits\": " +
                   std::to_string(Env.Artifacts->hits()) +
                   ", \"cache_misses\": " +
                   std::to_string(Env.Artifacts->misses()) +
                   ", \"cache_entries\": " +
                   std::to_string(Env.Artifacts->size()) +
                   ", \"deadlines_fired\": " +
                   std::to_string(Env.Deadlines->fired()) + "}";
  return Resp;
}

Response Session::handle(const Request &R) {
  ++Handled;
  if (Env.Counters)
    Env.Counters->Requests.fetch_add(1, std::memory_order_relaxed);

  // Install the session's observability context for the request. The
  // worker pool re-installs it inside workers per fork/join generation,
  // so a shared pool still attributes to this session.
  stat::CollectorScope StatScope(&Stats);
  trace::BufferScope TraceScope(R.Trace ? &Trace : nullptr);

  switch (R.Kind) {
  case Op::Run:
    return handleRun(R);
  case Op::Compile:
    return handleCompile(R);
  case Op::Ping: {
    Response Resp;
    Resp.Id = R.Id;
    Resp.St = Response::Status::Pong;
    return Resp;
  }
  case Op::Stats:
    return handleStats(R);
  case Op::Shutdown: {
    Response Resp;
    Resp.Id = R.Id;
    Resp.St = Response::Status::Bye;
    if (Env.ShutdownFlag)
      Env.ShutdownFlag->store(true, std::memory_order_release);
    return Resp;
  }
  }
  return errorResponse(R.Id, "unhandled op");
}

std::string Session::handleLine(const std::string &Line) {
  std::string Err;
  std::optional<Request> R = parseRequest(Line, Err, Env.MaxRequestBytes);
  if (!R) {
    if (Env.Counters) {
      Env.Counters->Requests.fetch_add(1, std::memory_order_relaxed);
      Env.Counters->Errors.fetch_add(1, std::memory_order_relaxed);
    }
    return errorResponse("", Err).toJsonLine();
  }
  return handle(*R).toJsonLine();
}
