//===- server/ArtifactCache.h - Shared compile-artifact cache ---*- C++ -*-===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon's cross-session store of compile artifacts, content-keyed by
/// the full source text plus the artifact-shaping flags (pipeline mode,
/// audit mode) — not by a source hash, so two distinct programs can never
/// alias one cache slot and be served each other's compiles. An
/// artifact owns everything the pipeline produced for one source text: the
/// parsed (and pass-mutated) Program, its loop plans, the audit verdicts,
/// and the shared bytecode store the VM engine fills lazily. Sessions pin
/// artifacts with shared_ptr, so eviction can never dangle a Program out
/// from under a running Interpreter.
///
/// Build-once: concurrent requests for the same key serialize on a
/// per-entry mutex, so the pipeline runs once however many clients submit
/// the program simultaneously; the cache-wide lock is never held across a
/// build.
///
//===----------------------------------------------------------------------===//

#ifndef IAA_SERVER_ARTIFACTCACHE_H
#define IAA_SERVER_ARTIFACTCACHE_H

#include "mf/Program.h"
#include "verify/PlanAudit.h"
#include "vm/Compiler.h"
#include "xform/Parallelizer.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace iaa {
namespace server {

/// Everything one (source, flags) pair compiles to. Immutable once built
/// (the bytecode store's interior mutability is thread-safe), so any number
/// of sessions can execute against it concurrently.
struct Artifact {
  std::unique_ptr<mf::Program> Prog;
  xform::PipelineResult Plans;
  std::string PlanSummary;  ///< Pipeline counters + plan table + audit text.
  std::string RemarksJsonl; ///< Pipeline and audit remarks, one per line.
  /// Per-artifact bytecode store: every session of this artifact shares it,
  /// so each certified loop is lowered at most once process-wide.
  std::shared_ptr<vm::BytecodeCache> Bytecode;
  /// Non-empty when the source failed to parse; such artifacts are cached
  /// too (negative caching — a client retrying a broken program in a loop
  /// must not re-run the parser every time) but cannot be executed.
  std::string BuildError;

  bool ok() const { return BuildError.empty(); }
};

/// The cache key for (\p Source, \p Mode, \p Audit): flag names first
/// (they contain no '|'), then the full source text. Content keying makes
/// collisions between distinct programs impossible, unlike the FNV-1a
/// hash key this replaced.
std::string artifactKey(const std::string &Source, xform::PipelineMode Mode,
                        verify::AuditMode Audit);

class ArtifactCache {
public:
  /// \p MaxEntries bounds the resident artifact count; inserting past the
  /// bound evicts least-recently-used entries (pinned artifacts stay alive
  /// through their sessions' shared_ptrs until released).
  explicit ArtifactCache(size_t MaxEntries = 64)
      : MaxEntries(MaxEntries ? MaxEntries : 1) {}

  ArtifactCache(const ArtifactCache &) = delete;
  ArtifactCache &operator=(const ArtifactCache &) = delete;

  /// Returns the artifact for (\p Source, \p Mode, \p Audit), building it
  /// on first use. \p Hit reports whether the artifact (or its in-flight
  /// build) already existed. Never returns null.
  std::shared_ptr<const Artifact> get(const std::string &Source,
                                      xform::PipelineMode Mode,
                                      verify::AuditMode Audit, bool &Hit);

  uint64_t hits() const { return Hits.load(std::memory_order_relaxed); }
  uint64_t misses() const { return Misses.load(std::memory_order_relaxed); }

  size_t size() const {
    std::lock_guard<std::mutex> Lock(M);
    return Entries.size();
  }

private:
  struct Entry {
    std::mutex BuildM; ///< Serializes the one-time build.
    std::shared_ptr<const Artifact> Art;
    uint64_t LastUse = 0;
  };

  size_t MaxEntries;
  mutable std::mutex M;
  std::map<std::string, std::shared_ptr<Entry>> Entries;
  uint64_t Clock = 0;
  std::atomic<uint64_t> Hits{0}, Misses{0};
};

} // namespace server
} // namespace iaa

#endif // IAA_SERVER_ARTIFACTCACHE_H
