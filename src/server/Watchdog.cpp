//===- server/Watchdog.cpp - Wall-clock deadline watchdog -----------------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "server/Watchdog.h"

#include <vector>

using namespace iaa;
using namespace iaa::server;

Watchdog::Watchdog() : Th([this] { loop(); }) {}

Watchdog::~Watchdog() {
  {
    std::lock_guard<std::mutex> Lock(M);
    Stop = true;
  }
  Cv.notify_all();
  Th.join();
}

uint64_t Watchdog::arm(std::chrono::steady_clock::time_point Deadline,
                       std::shared_ptr<interp::CancelToken> Token) {
  uint64_t Id;
  {
    std::lock_guard<std::mutex> Lock(M);
    Id = NextId++;
    Pending.emplace(Id, Armed{Deadline, std::move(Token)});
  }
  Cv.notify_all(); // The new deadline may be the earliest.
  return Id;
}

void Watchdog::disarm(uint64_t Id) {
  std::lock_guard<std::mutex> Lock(M);
  Pending.erase(Id);
}

uint64_t Watchdog::fired() const {
  std::lock_guard<std::mutex> Lock(M);
  return Fired;
}

void Watchdog::loop() {
  std::unique_lock<std::mutex> Lock(M);
  while (!Stop) {
    // Sleep until the earliest pending deadline (or indefinitely when
    // idle); arm() and the destructor poke the condition variable.
    if (Pending.empty()) {
      Cv.wait(Lock, [&] { return Stop || !Pending.empty(); });
      continue;
    }
    auto Earliest = std::chrono::steady_clock::time_point::max();
    for (const auto &[Id, A] : Pending)
      Earliest = std::min(Earliest, A.Deadline);
    Cv.wait_until(Lock, Earliest);
    if (Stop)
      return;
    // Fire everything that expired. Tokens are fired while holding M,
    // which is fine: cancel() is just a relaxed store on an atomic, cheap
    // enough that holding the lock cannot stall arm()/disarm().
    auto Now = std::chrono::steady_clock::now();
    std::vector<uint64_t> Expired;
    for (auto &[Id, A] : Pending)
      if (A.Deadline <= Now) {
        A.Token->cancel();
        Expired.push_back(Id);
        ++Fired;
      }
    for (uint64_t Id : Expired)
      Pending.erase(Id);
  }
}
