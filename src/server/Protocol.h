//===- server/Protocol.h - mfpard request/response protocol -----*- C++ -*-===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire protocol of the mfpard compile service: line-delimited JSON over
/// a Unix stream socket, one request object per line, one response object
/// per line, in order. The grammar (see DESIGN.md "Compile service"):
///
///   request  := { "id"?: string|number, "op": "run" | "compile" | "ping"
///                 | "stats" | "shutdown",
///                 "source"?: string,            // run/compile
///                 "mode"?: "full"|"noiaa"|"apo",
///                 "threads"?: int, "schedule"?: string, "chunk"?: int,
///                 "engine"?: "interp"|"vm"|"both",
///                 "locality"?: "off"|"model"|"reorder",
///                 "audit"?: "off"|"warn"|"strict",
///                 "runtime_checks"?: bool, "on_fault"?: "report"|"replay",
///                 "simulate"?: bool, "profile"?: bool, "counters"?: bool,
///                 "remarks"?: bool,
///                 "deadline_ms"?: int, "mem_limit_mb"?: int }
///   response := { "id": string, "status": "ok" | "pong" | "bye" | "error"
///                 | "fault" | "shed", ... }
///
/// parseRequest() is the hostile-input boundary: it must map every
/// malformed, truncated, oversized, or type-confused frame to a structured
/// error — never crash, never accept an out-of-range value. The fuzz tests
/// (DaemonProtocol.*) hold it to that.
///
//===----------------------------------------------------------------------===//

#ifndef IAA_SERVER_PROTOCOL_H
#define IAA_SERVER_PROTOCOL_H

#include "interp/Interpreter.h"
#include "interp/ThreadPool.h"
#include "sched/FootprintModel.h"
#include "verify/PlanAudit.h"
#include "xform/Parallelizer.h"

#include <cstdint>
#include <optional>
#include <string>

namespace iaa {
namespace server {

/// What one request asks the service to do.
enum class Op {
  Run,      ///< Compile (or fetch from the artifact cache) and execute.
  Compile,  ///< Compile only; respond with the plan summary.
  Ping,     ///< Liveness probe; responds "pong".
  Stats,    ///< Service health: request/fault/shed/cache counters.
  Shutdown, ///< Ask the daemon to stop accepting and drain.
};

const char *opName(Op O);

/// One parsed, validated request. Defaults mirror mfpar's flag defaults.
struct Request {
  std::string Id;  ///< Echoed verbatim in the response ("" when absent).
  Op Kind = Op::Run;
  std::string Source;
  xform::PipelineMode Mode = xform::PipelineMode::Full;
  unsigned Threads = 4;
  interp::Schedule Sched = interp::Schedule::Static;
  int64_t ChunkSize = 0;
  interp::ExecEngine Engine = interp::ExecEngine::Interp;
  sched::LocalityMode Locality = sched::LocalityMode::Off;
  verify::AuditMode Audit = verify::AuditMode::Off;
  bool RuntimeChecks = false;
  /// Abort is refused at parse time: a tenant must never be able to ask
  /// the shared daemon process to skip fault containment.
  interp::FaultAction OnFault = interp::FaultAction::Replay;
  bool Simulate = false;
  bool Profile = false;  ///< Inline the per-loop profile JSONL in the reply.
  bool Counters = false; ///< Inline the session's statistic counters.
  bool Remarks = false;  ///< Inline optimization remarks JSONL.
  bool Trace = false;    ///< Record this run into the session trace buffer.
  uint64_t DeadlineMs = 0;  ///< 0 = use the server default.
  uint64_t MemLimitMb = 0;  ///< 0 = use the server default.

  /// Fingerprint of the flags that shape the compile *artifact* (pipeline
  /// mode and audit mode — execution flags do not participate, so runs
  /// that differ only in threads or schedule share one artifact).
  std::string flagKey() const;
};

/// Parses and validates one request line. On failure returns nullopt and
/// sets \p Err to a human-readable reason (always safe to echo back).
/// \p MaxBytes > 0 rejects frames longer than the bound before parsing.
std::optional<Request> parseRequest(const std::string &Line, std::string &Err,
                                    size_t MaxBytes = 0);

/// One response, serialized as a single JSON line by toJsonLine().
struct Response {
  enum class Status { Ok, Pong, Bye, Error, Fault, Shed };

  std::string Id;
  Status St = Status::Ok;
  std::string Error; ///< Status::Error: what was wrong with the request.

  // Status::Fault — the structured runtime fault of the tenant program.
  std::string FaultKind;
  std::string FaultDetail;
  /// The mfpar exit code this outcome maps to: 4 runtime fault, 5
  /// deadline exceeded, 6 resource exhausted (0 otherwise).
  int ExitEquivalent = 0;

  uint64_t RetryAfterMs = 0; ///< Status::Shed: suggested client backoff.

  bool HasCache = false; ///< Run/compile: whether Cache below is valid.
  bool CacheHit = false; ///< Artifact came from the cache.
  bool HasChecksum = false;
  double Checksum = 0; ///< Final-memory digest (dead privates excluded).
  double Seconds = 0;  ///< Tenant execution seconds (run only).
  std::string PlanSummary;   ///< Compile: pipeline + audit summary text.
  std::string RemarksJsonl;  ///< When requested: remarks, one per line.
  std::string ProfileJsonl;  ///< When requested: per-loop profile records.
  std::string CountersJson;  ///< When requested: session counters object.
  std::string StatsJson;     ///< Op::Stats: service health object.
  uint64_t TraceEvents = 0;  ///< When tracing: session trace buffer depth.
  bool HasTraceEvents = false;

  std::string toJsonLine() const;
};

const char *statusName(Response::Status S);

/// Builds the error response every malformed frame gets.
Response errorResponse(const std::string &Id, const std::string &Why);

} // namespace server
} // namespace iaa

#endif // IAA_SERVER_PROTOCOL_H
