//===- vm/Vm.h - Register-bytecode executor for loop chunks -----*- C++ -*-===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a LoopProgram over one dispensed iteration chunk. The VM is a
/// drop-in replacement for the interpreter's per-iteration tree walk inside
/// RunChunk: the surrounding machinery — WorkerPool, ChunkDispenser,
/// privatization overrides, locality reordering, fault containment — is
/// untouched. Slot pointers are resolved once per chunk (override else
/// shared buffer), which is where the speedup comes from; faults raise the
/// same structured FaultException the tree walk would, so the trap /
/// rollback / serial-replay pipeline works on VM chunks unchanged.
///
//===----------------------------------------------------------------------===//

#ifndef IAA_VM_VM_H
#define IAA_VM_VM_H

#include "interp/Interpreter.h"
#include "vm/Bytecode.h"

#include <cstdint>
#include <unordered_map>

namespace iaa {

namespace prof {
class LoopRecorder;
} // namespace prof

namespace vm {

/// Everything one chunk execution needs from the interpreter's dispatch
/// context. Pointers alias interpreter-owned state; the VM only reads the
/// configuration and writes through the resolved buffers (and the sampling
/// countdown).
struct ChunkContext {
  interp::Memory *Mem = nullptr;
  /// The worker's privatization overrides (null when none).
  std::unordered_map<unsigned, interp::Buffer> *Overrides = nullptr;
  /// Locality permutation: dispensed position -> original iteration
  /// (null when executing in dispensed order).
  const std::vector<int64_t> *Order = nullptr;
  int64_t Lo = 0;    ///< Loop lower bound (Order is indexed by Pos - Lo).
  int64_t First = 0; ///< Chunk bounds, inclusive, in dispensed positions.
  int64_t Last = 0;
  unsigned Worker = 0;
  /// Test-only fault injection (null in production).
  const interp::FaultInjectionHook *Injector = nullptr;
  /// Profiling recorder (null when off/light) and the worker's sampling
  /// countdown, kept across chunks like the interpreter's frame field.
  prof::LoopRecorder *Rec = nullptr;
  uint32_t *ProfSkip = nullptr;
};

/// Runs \p Prog for every iteration of the chunk described by \p C and
/// returns the highest *original* iteration number executed (the
/// last-value writeback needs it under reordering). Faults — bounds,
/// div-by-zero, bad step, injected — throw FaultException with the same
/// attribution the tree walk produces.
int64_t runChunk(const LoopProgram &Prog, const ChunkContext &C);

} // namespace vm
} // namespace iaa

#endif // IAA_VM_VM_H
