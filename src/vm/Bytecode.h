//===- vm/Bytecode.h - Register bytecode for hot loop plans -----*- C++ -*-===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The register-bytecode program format for certified loop plans. A
/// LoopProgram is the lowered body of ONE do loop iteration: the compiler
/// (vm/Compiler.h) flattens the AST walk into a linear instruction stream
/// over typed register files (int64 and double), and the VM (vm/Vm.h)
/// executes the stream once per iteration of a dispensed chunk. Everything
/// around the body — scheduling, privatization, reductions, locality
/// reordering, fault rollback — stays in the interpreter's parallel
/// dispatch; the bytecode only replaces the per-iteration tree walk.
///
/// Memory is addressed through *slots*: one per referenced symbol, resolved
/// once per chunk to a raw buffer pointer (the worker's private override or
/// the shared global), which removes the per-access hash lookup and Value
/// boxing that dominate the tree walker's cost. The irregular access
/// patterns the paper analyzes get fused superinstructions: Gth/Sct/SctAdd
/// execute a whole a(ind(e)+c) gather, scatter, or scatter-accumulate —
/// index load, both bounds checks, and the element access — as one opcode.
///
/// Bounds checks are bit-faithful to the interpreter: the same subscript
/// check against the same declared extents, raising the same structured
/// RuntimeFault (kind, location, loop, iteration, worker) through a
/// per-instruction FaultCtx table.
///
//===----------------------------------------------------------------------===//

#ifndef IAA_VM_BYTECODE_H
#define IAA_VM_BYTECODE_H

#include "mf/Symbol.h"
#include "support/SourceLoc.h"

#include <cstdint>
#include <string>
#include <vector>

namespace iaa {
namespace mf {
class DoStmt;
} // namespace mf

namespace vm {

/// Opcode set. Suffix I/D = int64 / double register file. Operand letters
/// refer to Instr fields; "slot" operands index LoopProgram::Slots.
enum class Op : uint8_t {
  Halt, ///< End of the iteration body.

  // Constants and moves.
  MovI,   ///< RI[A] = Imm
  MovD,   ///< RD[A] = bit_cast<double>(Imm)
  CopyI,  ///< RI[A] = RI[B]
  CopyD,  ///< RD[A] = RD[B]
  CastID, ///< RD[A] = double(RI[B])
  CastDI, ///< RI[A] = int64(RD[B]) (C truncation, as Value::asInt)

  // Scalar slots (element 0 of a size-1 buffer).
  LdScaI, ///< RI[A] = slotB[0]
  LdScaD, ///< RD[A] = slotB[0]
  StScaI, ///< slotA[0] = RI[B]
  StScaD, ///< slotA[0] = RD[B]

  // Rank-1 element access. Subscripts are 1-based Fortran values; every
  // access bounds-checks against the declared extent before touching the
  // buffer and faults through Ctx on violation.
  Ld1I, ///< RI[A] = slotB[RI[C]-1]
  Ld1D, ///< RD[A] = slotB[RI[C]-1]
  St1I, ///< slotA[RI[B]-1] = RI[C]
  St1D, ///< slotA[RI[B]-1] = RD[C]

  // Rank-2 element access (row-major, both dimensions checked).
  Ld2I, ///< RI[A] = slotB[(RI[C]-1)*ext1 + RI[D]-1]
  Ld2D, ///< RD[A] = slotB[(RI[C]-1)*ext1 + RI[D]-1]
  St2I, ///< slotA[(RI[B]-1)*ext1 + RI[C]-1] = RI[D]
  St2D, ///< slotA[(RI[B]-1)*ext1 + RI[C]-1] = RD[D]

  // Fused irregular superinstructions: data(ind(sub) + Imm) in one opcode.
  // sub = RI[C] is checked against slot E (the index array), the loaded
  // index plus Imm is checked against slot B/A (the data array). Ctx is the
  // first of TWO consecutive fault contexts: [Ctx] attributes the index
  // subscript check, [Ctx+1] the data subscript check.
  GthI,    ///< RI[A] = dataB[indE[RI[C]-1] + Imm - 1]
  GthD,    ///< RD[A] = dataB[indE[RI[C]-1] + Imm - 1]
  SctI,    ///< dataA[indE[RI[B]-1] + Imm - 1] = RI[C]
  SctD,    ///< dataA[indE[RI[B]-1] + Imm - 1] = RD[C]
  SctAddI, ///< dataA[indE[RI[B]-1] + Imm - 1] += RI[C]
  SctAddD, ///< dataA[indE[RI[B]-1] + Imm - 1] += RD[C]

  // Integer arithmetic (A = dst, B/C = operands).
  AddI, SubI, MulI,
  DivI, ///< Faults DivByZero through Ctx when RI[C] == 0.
  ModI, ///< Faults DivByZero through Ctx when RI[C] == 0.
  MinI, MaxI,
  NegI,    ///< RI[A] = -RI[B]
  NotI,    ///< RI[A] = RI[B] == 0
  BoolI,   ///< RI[A] = RI[B] != 0
  DNzI,    ///< RI[A] = RD[B] != 0  (truthiness of a real)
  AddIImm, ///< RI[A] = RI[B] + Imm

  // Double arithmetic.
  AddD, SubD, MulD, DivD, MinD, MaxD,
  NegD, ///< RD[A] = -RD[B]

  // Comparisons (int 0/1 result in RI[A]).
  EqI, NeI, LtI, LeI, GtI, GeI,
  EqD, NeD, LtD, LeD, GtD, GeD,

  // Control flow. Imm is an absolute instruction index.
  Jmp,   ///< pc = Imm
  JmpZ,  ///< if (RI[B] == 0) pc = Imm
  JmpNZ, ///< if (RI[B] != 0) pc = Imm

  // Counted-loop support for nested do loops (step of either sign).
  LoopTest, ///< if (RI[C] > 0 ? RI[A] > RI[B] : RI[A] < RI[B]) pc = Imm
  LoopBack, ///< RI[A] += RI[C]; if (!(done as above)) pc = Imm
  FaultZeroStep, ///< Fault BadStep through Ctx when RI[B] == 0; A is the
                 ///< loop's index-variable slot, for fault attribution.
};

const char *opName(Op K);

/// One instruction. Fields are operand slots whose meaning depends on the
/// opcode (see Op); Imm doubles as immediate constant, fused-access offset,
/// and jump target.
struct Instr {
  Op K = Op::Halt;
  uint16_t A = 0, B = 0, C = 0, D = 0, E = 0;
  /// Fault-context index for instructions that can fault (fused accesses
  /// use Ctx and Ctx+1).
  uint16_t Ctx = 0;
  int64_t Imm = 0;
};

/// Attribution for a fault raised by an instruction: where in the source,
/// inside which loop, and which register holds that loop's live iteration
/// number when the fault fires.
struct FaultCtx {
  SourceLoc Loc;
  std::string Loop; ///< Innermost enclosing loop label ("<unlabeled>").
  uint16_t IterReg = 0;
};

/// One referenced symbol: static shape, resolved to a raw buffer pointer
/// per chunk (worker override or shared global).
struct SlotInfo {
  const mf::Symbol *Sym = nullptr;
  mf::ScalarKind Kind = mf::ScalarKind::Int;
  unsigned Rank = 0;          ///< 0 = scalar.
  int64_t Ext0 = 0, Ext1 = 0; ///< Declared extents (run-resolved constants).
};

/// The lowered body of one loop iteration plus everything the VM needs to
/// run it: slot shapes, fault contexts, and register-file sizes.
struct LoopProgram {
  const mf::DoStmt *Loop = nullptr;
  std::vector<Instr> Code; ///< One iteration's body; terminated by Halt.
  std::vector<SlotInfo> Slots;
  std::vector<FaultCtx> Ctxs;
  unsigned NumIntRegs = 0;
  unsigned NumRealRegs = 0;
  /// Register the driver sets to the current outer iteration, and the slot
  /// of the outer index variable (stored per iteration, Fortran-style).
  uint16_t IterReg = 0;
  uint16_t IndexSlot = 0;
  /// Instruction-mix counters for stats and the disassembly.
  unsigned FusedGathers = 0;
  unsigned FusedScatters = 0;

  /// Human-readable disassembly (tests and --dump-bytecode style output).
  std::string str() const;
};

} // namespace vm
} // namespace iaa

#endif // IAA_VM_BYTECODE_H
