//===- vm/Compiler.cpp - AST-to-bytecode lowering for loop plans ----------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "vm/Compiler.h"

#include "mf/Program.h"
#include "support/Casting.h"

#include <cassert>
#include <cstring>
#include <map>
#include <unordered_map>
#include <utility>

using namespace iaa;
using namespace iaa::mf;
using namespace iaa::vm;

namespace {

/// Calls nest through globals only, so a cycle is the one way inlining can
/// diverge; real MF programs in this repo nest one or two levels deep.
constexpr int MaxInlineDepth = 8;

/// Thrown to abandon a lowering attempt; caught at the compileLoop boundary
/// and turned into CompileResult::Bailout.
struct Bailout {
  std::string Reason;
};

[[noreturn]] void bail(std::string Reason) { throw Bailout{std::move(Reason)}; }

/// Structural equality of expressions, used to recognize the
/// read-modify-write scatter pattern x(ind(e)) = x(ind(e)) + v.
bool exprEquals(const Expr *A, const Expr *B) {
  if (A->kind() != B->kind())
    return false;
  switch (A->kind()) {
  case ExprKind::IntLit:
    return cast<IntLit>(A)->value() == cast<IntLit>(B)->value();
  case ExprKind::RealLit:
    return cast<RealLit>(A)->value() == cast<RealLit>(B)->value();
  case ExprKind::VarRef:
    return cast<VarRef>(A)->symbol() == cast<VarRef>(B)->symbol();
  case ExprKind::ArrayRef: {
    const auto *AR = cast<ArrayRef>(A), *BR = cast<ArrayRef>(B);
    if (AR->array() != BR->array() || AR->rank() != BR->rank())
      return false;
    for (unsigned D = 0; D < AR->rank(); ++D)
      if (!exprEquals(AR->subscript(D), BR->subscript(D)))
        return false;
    return true;
  }
  case ExprKind::Unary: {
    const auto *AU = cast<UnaryExpr>(A), *BU = cast<UnaryExpr>(B);
    return AU->op() == BU->op() && exprEquals(AU->operand(), BU->operand());
  }
  case ExprKind::Binary: {
    const auto *AB = cast<BinaryExpr>(A), *BB = cast<BinaryExpr>(B);
    return AB->op() == BB->op() && exprEquals(AB->lhs(), BB->lhs()) &&
           exprEquals(AB->rhs(), BB->rhs());
  }
  }
  return false;
}

/// A recognized a(ind(e) + c) shape: the rank-1 integer index array, the
/// subscript expression feeding it, and the constant offset.
struct GatherShape {
  const ArrayRef *Ind = nullptr; ///< The inner ind(e) reference.
  const Expr *Sub = nullptr;     ///< e.
  int64_t Offset = 0;            ///< c (0 when absent).
};

/// Matches a rank-1 subscript of the fused-access shape ind(e) [+- c].
bool matchGather(const Expr *Subscript, GatherShape &Out) {
  const Expr *Core = Subscript;
  int64_t Off = 0;
  if (const auto *BE = dyn_cast<BinaryExpr>(Subscript)) {
    if (BE->op() == BinaryOp::Add) {
      if (const auto *L = dyn_cast<IntLit>(BE->rhs())) {
        Core = BE->lhs();
        Off = L->value();
      } else if (const auto *L2 = dyn_cast<IntLit>(BE->lhs())) {
        Core = BE->rhs();
        Off = L2->value();
      }
    } else if (BE->op() == BinaryOp::Sub) {
      if (const auto *L = dyn_cast<IntLit>(BE->rhs())) {
        Core = BE->lhs();
        Off = -L->value();
      }
    }
  }
  const auto *AR = dyn_cast<ArrayRef>(Core);
  if (!AR || AR->rank() != 1 ||
      AR->array()->elementKind() != ScalarKind::Int)
    return false;
  Out.Ind = AR;
  Out.Sub = AR->subscript(0);
  Out.Offset = Off;
  return true;
}

/// Shared structural walk behind structuralBailout(): returns the first
/// reason a statement list cannot lower, or null.
const char *structuralWalk(const StmtList &Body, int Depth) {
  if (Depth > MaxInlineDepth)
    return "call chain too deep to inline";
  for (const Stmt *S : Body) {
    switch (S->kind()) {
    case StmtKind::Assign:
      break;
    case StmtKind::While:
      return "while loop in body (unbounded trip count)";
    case StmtKind::Call: {
      const auto *CS = cast<CallStmt>(S);
      if (!CS->callee())
        return "call to unresolved procedure";
      if (const char *R = structuralWalk(CS->callee()->body(), Depth + 1))
        return R;
      break;
    }
    case StmtKind::If: {
      const auto *IS = cast<IfStmt>(S);
      if (const char *R = structuralWalk(IS->thenBody(), Depth))
        return R;
      if (const char *R = structuralWalk(IS->elseBody(), Depth))
        return R;
      break;
    }
    case StmtKind::Do: {
      const auto *DS = cast<DoStmt>(S);
      if (DS->indexVar()->elementKind() != ScalarKind::Int)
        return "non-integer loop index variable";
      if (DS->indexVar()->isArray())
        return "array used as loop index variable";
      if (const char *R = structuralWalk(DS->body(), Depth))
        return R;
      break;
    }
    }
  }
  return nullptr;
}

/// Register type of an expression under MF's static element kinds.
enum class Ty { I, D };

class Lowering {
public:
  Lowering(const DoStmt *DS,
           const std::vector<std::vector<int64_t>> &DimExtents)
      : Root(DS), Ext(DimExtents) {}

  LoopProgram run() {
    if (Root->indexVar()->elementKind() != ScalarKind::Int ||
        Root->indexVar()->isArray())
      bail("non-integer loop index variable");
    P.Loop = Root;
    P.IterReg = allocI();
    P.IndexSlot = slotOf(Root->indexVar());
    LoopStack.push_back(
        {Root->label().empty() ? "<unlabeled>" : Root->label(), P.IterReg});
    compileBody(Root->body(), 0);
    emit(Op::Halt);
    P.NumIntRegs = NextI;
    P.NumRealRegs = NextR;
    return std::move(P);
  }

private:
  const DoStmt *Root;
  const std::vector<std::vector<int64_t>> &Ext;
  LoopProgram P;
  unsigned NextI = 0, NextR = 0;
  std::unordered_map<unsigned, uint16_t> SlotIds;
  struct LoopCtx {
    std::string Label;
    uint16_t IterReg;
  };
  std::vector<LoopCtx> LoopStack;

  uint16_t allocI() {
    if (NextI >= 0xFFFF)
      bail("loop body too large (int register file)");
    return static_cast<uint16_t>(NextI++);
  }
  uint16_t allocR() {
    if (NextR >= 0xFFFF)
      bail("loop body too large (real register file)");
    return static_cast<uint16_t>(NextR++);
  }

  uint16_t slotOf(const Symbol *S) {
    auto [It, Inserted] = SlotIds.try_emplace(S->id(), 0);
    if (Inserted) {
      if (P.Slots.size() >= 0xFFFF)
        bail("loop body too large (slot table)");
      SlotInfo Info;
      Info.Sym = S;
      Info.Kind = S->elementKind();
      Info.Rank = S->rank();
      if (S->isArray()) {
        if (S->rank() > 2)
          bail("array of rank > 2");
        const auto &E = Ext[S->id()];
        Info.Ext0 = E.empty() ? 0 : E[0];
        Info.Ext1 = E.size() > 1 ? E[1] : 0;
      }
      It->second = static_cast<uint16_t>(P.Slots.size());
      P.Slots.push_back(Info);
    }
    return It->second;
  }

  /// Fault context for the innermost loop at this point in the lowering.
  uint16_t ctxAt(SourceLoc Loc) {
    FaultCtx C;
    C.Loc = Loc;
    C.Loop = LoopStack.back().Label;
    C.IterReg = LoopStack.back().IterReg;
    P.Ctxs.push_back(std::move(C));
    if (P.Ctxs.size() > 0xFFFF)
      bail("loop body too large (fault contexts)");
    return static_cast<uint16_t>(P.Ctxs.size() - 1);
  }

  size_t emit(Op K, uint16_t A = 0, uint16_t B = 0, uint16_t C = 0,
              uint16_t D = 0, uint16_t E = 0, uint16_t Ctx = 0,
              int64_t Imm = 0) {
    P.Code.push_back({K, A, B, C, D, E, Ctx, Imm});
    return P.Code.size() - 1;
  }

  void patchJump(size_t At) { P.Code[At].Imm = int64_t(P.Code.size()); }

  /// Result of one compiled expression: its static type and register.
  struct RV {
    Ty T;
    uint16_t R;
  };

  uint16_t toI(RV V) {
    if (V.T == Ty::I)
      return V.R;
    uint16_t R = allocI();
    emit(Op::CastDI, R, V.R);
    return R;
  }

  uint16_t toD(RV V) {
    if (V.T == Ty::D)
      return V.R;
    uint16_t R = allocR();
    emit(Op::CastID, R, V.R);
    return R;
  }

  /// Truthiness of a value as an int register (zero / nonzero), for
  /// branching.
  uint16_t truthy(RV V) {
    if (V.T == Ty::I)
      return V.R;
    uint16_t R = allocI();
    emit(Op::DNzI, R, V.R);
    return R;
  }

  /// Compiles the subscript of a rank-1 reference and emits the fused
  /// gather/scatter addressing when it matches ind(e)+c. Returns true and
  /// fills the operand fields shared by Gth/Sct/SctAdd; the caller picks
  /// the opcode. Ctx and Ctx+1 are allocated consecutively.
  bool tryFusedAddress(const ArrayRef *AR, uint16_t &SubReg,
                       uint16_t &IndSlot, uint16_t &Ctx, int64_t &Off) {
    GatherShape G;
    if (!matchGather(AR->subscript(0), G))
      return false;
    SubReg = toI(compileExpr(G.Sub));
    IndSlot = slotOf(G.Ind->array());
    Ctx = ctxAt(G.Ind->loc());
    uint16_t DataCtx = ctxAt(AR->loc());
    if (DataCtx != Ctx + 1)
      bail("internal: fused fault contexts not consecutive");
    Off = G.Offset;
    return true;
  }

  RV compileLoad(const ArrayRef *AR) {
    const Symbol *S = AR->array();
    if (!S->isArray())
      bail("subscripted scalar");
    uint16_t Slot = slotOf(S);
    Ty T = S->elementKind() == ScalarKind::Int ? Ty::I : Ty::D;
    if (AR->rank() == 1) {
      uint16_t SubReg, IndSlot, Ctx;
      int64_t Off;
      if (tryFusedAddress(AR, SubReg, IndSlot, Ctx, Off)) {
        uint16_t Dst = T == Ty::I ? allocI() : allocR();
        emit(T == Ty::I ? Op::GthI : Op::GthD, Dst, Slot, SubReg, 0, IndSlot,
             Ctx, Off);
        ++P.FusedGathers;
        return {T, Dst};
      }
      uint16_t Sub = toI(compileExpr(AR->subscript(0)));
      uint16_t Dst = T == Ty::I ? allocI() : allocR();
      emit(T == Ty::I ? Op::Ld1I : Op::Ld1D, Dst, Slot, Sub, 0, 0,
           ctxAt(AR->loc()));
      return {T, Dst};
    }
    if (AR->rank() != 2)
      bail("array reference of rank > 2");
    uint16_t S1 = toI(compileExpr(AR->subscript(0)));
    uint16_t S2 = toI(compileExpr(AR->subscript(1)));
    uint16_t Dst = T == Ty::I ? allocI() : allocR();
    emit(T == Ty::I ? Op::Ld2I : Op::Ld2D, Dst, Slot, S1, S2, 0,
         ctxAt(AR->loc()));
    return {T, Dst};
  }

  RV compileExpr(const Expr *E) {
    switch (E->kind()) {
    case ExprKind::IntLit: {
      uint16_t R = allocI();
      emit(Op::MovI, R, 0, 0, 0, 0, 0, cast<IntLit>(E)->value());
      return {Ty::I, R};
    }
    case ExprKind::RealLit: {
      uint16_t R = allocR();
      int64_t Bits;
      double V = cast<RealLit>(E)->value();
      std::memcpy(&Bits, &V, sizeof(Bits));
      emit(Op::MovD, R, 0, 0, 0, 0, 0, Bits);
      return {Ty::D, R};
    }
    case ExprKind::VarRef: {
      const Symbol *S = cast<VarRef>(E)->symbol();
      if (S->isArray())
        bail("array referenced without subscripts");
      uint16_t Slot = slotOf(S);
      if (S->elementKind() == ScalarKind::Int) {
        uint16_t R = allocI();
        emit(Op::LdScaI, R, Slot);
        return {Ty::I, R};
      }
      uint16_t R = allocR();
      emit(Op::LdScaD, R, Slot);
      return {Ty::D, R};
    }
    case ExprKind::ArrayRef:
      return compileLoad(cast<ArrayRef>(E));
    case ExprKind::Unary: {
      const auto *UE = cast<UnaryExpr>(E);
      RV V = compileExpr(UE->operand());
      if (UE->op() == UnaryOp::Neg) {
        if (V.T == Ty::I) {
          uint16_t R = allocI();
          emit(Op::NegI, R, V.R);
          return {Ty::I, R};
        }
        uint16_t R = allocR();
        emit(Op::NegD, R, V.R);
        return {Ty::D, R};
      }
      uint16_t R = allocI();
      emit(Op::NotI, R, truthy(V));
      return {Ty::I, R};
    }
    case ExprKind::Binary:
      return compileBinary(cast<BinaryExpr>(E));
    }
    bail("unhandled expression kind");
  }

  RV compileBinary(const BinaryExpr *BE) {
    // Short-circuit logicals, exactly like the tree walker: the right
    // operand must not be evaluated (and must not fault) when the left
    // decides.
    if (BE->op() == BinaryOp::And || BE->op() == BinaryOp::Or) {
      bool IsAnd = BE->op() == BinaryOp::And;
      uint16_t Res = allocI();
      uint16_t L = truthy(compileExpr(BE->lhs()));
      emit(Op::MovI, Res, 0, 0, 0, 0, 0, IsAnd ? 0 : 1);
      size_t Skip = emit(IsAnd ? Op::JmpZ : Op::JmpNZ, 0, L);
      uint16_t R = truthy(compileExpr(BE->rhs()));
      emit(Op::BoolI, Res, R);
      patchJump(Skip);
      return {Ty::I, Res};
    }

    RV L = compileExpr(BE->lhs());
    RV R = compileExpr(BE->rhs());
    bool BothInt = L.T == Ty::I && R.T == Ty::I;

    auto IntOp = [&](Op K, uint16_t Ctx = 0) -> RV {
      uint16_t Dst = allocI();
      emit(K, Dst, L.R, R.R, 0, 0, Ctx);
      return {Ty::I, Dst};
    };
    auto RealOp = [&](Op K) -> RV {
      uint16_t Dst = allocR();
      emit(K, Dst, toD(L), toD(R));
      return {Ty::D, Dst};
    };
    auto CmpOp = [&](Op KI, Op KD) -> RV {
      uint16_t Dst = allocI();
      if (BothInt)
        emit(KI, Dst, L.R, R.R);
      else
        emit(KD, Dst, toD(L), toD(R));
      return {Ty::I, Dst};
    };

    switch (BE->op()) {
    case BinaryOp::Add:
      return BothInt ? IntOp(Op::AddI) : RealOp(Op::AddD);
    case BinaryOp::Sub:
      return BothInt ? IntOp(Op::SubI) : RealOp(Op::SubD);
    case BinaryOp::Mul:
      return BothInt ? IntOp(Op::MulI) : RealOp(Op::MulD);
    case BinaryOp::Div:
      return BothInt ? IntOp(Op::DivI, ctxAt(BE->loc())) : RealOp(Op::DivD);
    case BinaryOp::Mod:
      if (!BothInt)
        bail("mod on real operands");
      return IntOp(Op::ModI, ctxAt(BE->loc()));
    case BinaryOp::Min:
      return BothInt ? IntOp(Op::MinI) : RealOp(Op::MinD);
    case BinaryOp::Max:
      return BothInt ? IntOp(Op::MaxI) : RealOp(Op::MaxD);
    case BinaryOp::Eq:
      return CmpOp(Op::EqI, Op::EqD);
    case BinaryOp::Ne:
      return CmpOp(Op::NeI, Op::NeD);
    case BinaryOp::Lt:
      return CmpOp(Op::LtI, Op::LtD);
    case BinaryOp::Le:
      return CmpOp(Op::LeI, Op::LeD);
    case BinaryOp::Gt:
      return CmpOp(Op::GtI, Op::GtD);
    case BinaryOp::Ge:
      return CmpOp(Op::GeI, Op::GeD);
    case BinaryOp::And:
    case BinaryOp::Or:
      break; // Handled above.
    }
    bail("unhandled binary operator");
  }

  /// Coerces \p V to the element kind of \p S and returns the source
  /// register for a store.
  uint16_t storeReg(RV V, const Symbol *S) {
    return S->elementKind() == ScalarKind::Int ? toI(V) : toD(V);
  }

  void compileAssign(const AssignStmt *AS) {
    if (const auto *VR = dyn_cast<VarRef>(AS->lhs())) {
      const Symbol *S = VR->symbol();
      if (S->isArray())
        bail("array assigned without subscripts");
      RV V = compileExpr(AS->rhs());
      emit(S->elementKind() == ScalarKind::Int ? Op::StScaI : Op::StScaD,
           slotOf(S), storeReg(V, S));
      return;
    }
    const auto *AR = cast<ArrayRef>(AS->lhs());
    const Symbol *S = AR->array();
    if (!S->isArray())
      bail("subscripted scalar");
    uint16_t Slot = slotOf(S);
    bool IsInt = S->elementKind() == ScalarKind::Int;

    if (AR->rank() == 1) {
      GatherShape G;
      if (matchGather(AR->subscript(0), G)) {
        // Read-modify-write scatter: x(ind(e)+c) = x(ind(e)+c) + v lowers
        // to one SctAdd — the addend v is evaluated, then the fused opcode
        // checks, reads, accumulates, and writes the shared element. The
        // tree walker evaluates the rhs gather before v; the fused form's
        // fault contexts therefore point at the *rhs* reference, keeping
        // out-of-bounds attribution identical for the common first-fault.
        const auto *RB = dyn_cast<BinaryExpr>(AS->rhs());
        if (RB && RB->op() == BinaryOp::Add &&
            exprEquals(RB->lhs(), AS->lhs())) {
          const auto *RhsRef = cast<ArrayRef>(RB->lhs());
          GatherShape RG;
          if (matchGather(RhsRef->subscript(0), RG)) {
            uint16_t SubReg = toI(compileExpr(RG.Sub));
            RV Addend = compileExpr(RB->rhs());
            uint16_t IndSlot = slotOf(RG.Ind->array());
            uint16_t Ctx = ctxAt(RG.Ind->loc());
            uint16_t DataCtx = ctxAt(RhsRef->loc());
            if (DataCtx != Ctx + 1)
              bail("internal: fused fault contexts not consecutive");
            emit(IsInt ? Op::SctAddI : Op::SctAddD, Slot, SubReg,
                 storeReg(Addend, S), 0, IndSlot, Ctx, RG.Offset);
            ++P.FusedGathers; // The read half.
            ++P.FusedScatters;
            return;
          }
        }
        // Plain scatter: evaluate the rhs first (any fault in it must win,
        // as in the tree walker), then one fused store.
        RV V = compileExpr(AS->rhs());
        uint16_t SubReg = toI(compileExpr(G.Sub));
        uint16_t IndSlot = slotOf(G.Ind->array());
        uint16_t Ctx = ctxAt(G.Ind->loc());
        uint16_t DataCtx = ctxAt(AR->loc());
        if (DataCtx != Ctx + 1)
          bail("internal: fused fault contexts not consecutive");
        emit(IsInt ? Op::SctI : Op::SctD, Slot, SubReg, storeReg(V, S), 0,
             IndSlot, Ctx, G.Offset);
        ++P.FusedScatters;
        return;
      }
      RV V = compileExpr(AS->rhs());
      uint16_t Sub = toI(compileExpr(AR->subscript(0)));
      emit(IsInt ? Op::St1I : Op::St1D, Slot, Sub, storeReg(V, S), 0, 0,
           ctxAt(AR->loc()));
      return;
    }
    if (AR->rank() != 2)
      bail("array reference of rank > 2");
    RV V = compileExpr(AS->rhs());
    uint16_t S1 = toI(compileExpr(AR->subscript(0)));
    uint16_t S2 = toI(compileExpr(AR->subscript(1)));
    emit(IsInt ? Op::St2I : Op::St2D, Slot, S1, S2, storeReg(V, S), 0,
         ctxAt(AR->loc()));
  }

  void compileDo(const DoStmt *DS) {
    if (DS->indexVar()->elementKind() != ScalarKind::Int ||
        DS->indexVar()->isArray())
      bail("non-integer loop index variable");
    uint16_t IndexSlot = slotOf(DS->indexVar());
    uint16_t Lo = toI(compileExpr(DS->lower()));
    uint16_t Up = toI(compileExpr(DS->upper()));
    uint16_t St;
    if (DS->step()) {
      St = toI(compileExpr(DS->step()));
      emit(Op::FaultZeroStep, IndexSlot, St, 0, 0, 0, ctxAt(DS->loc()));
    } else {
      St = allocI();
      emit(Op::MovI, St, 0, 0, 0, 0, 0, 1);
    }
    uint16_t I = allocI();
    emit(Op::CopyI, I, Lo);
    size_t Test = emit(Op::LoopTest, I, Up, St);
    size_t BodyStart = P.Code.size();
    emit(Op::StScaI, IndexSlot, I);
    LoopStack.push_back(
        {DS->label().empty() ? "<unlabeled>" : DS->label(), I});
    compileBody(DS->body(), 0);
    LoopStack.pop_back();
    emit(Op::LoopBack, I, Up, St, 0, 0, 0, int64_t(BodyStart));
    patchJump(Test);
    // Fortran exit value: the index variable holds Lo + NIter*Step after a
    // loop that ran, and Lo when it never entered — exactly the register's
    // final value under this lowering.
    emit(Op::StScaI, IndexSlot, I);
  }

  void compileBody(const StmtList &Body, int Depth) {
    if (Depth > MaxInlineDepth)
      bail("call chain too deep to inline");
    for (const Stmt *S : Body) {
      switch (S->kind()) {
      case StmtKind::Assign:
        compileAssign(cast<AssignStmt>(S));
        break;
      case StmtKind::If: {
        const auto *IS = cast<IfStmt>(S);
        uint16_t C = truthy(compileExpr(IS->condition()));
        size_t ToElse = emit(Op::JmpZ, 0, C);
        compileBody(IS->thenBody(), Depth);
        if (IS->elseBody().empty()) {
          patchJump(ToElse);
        } else {
          size_t ToEnd = emit(Op::Jmp);
          patchJump(ToElse);
          compileBody(IS->elseBody(), Depth);
          patchJump(ToEnd);
        }
        break;
      }
      case StmtKind::Do:
        compileDo(cast<DoStmt>(S));
        break;
      case StmtKind::While:
        bail("while loop in body (unbounded trip count)");
      case StmtKind::Call: {
        const auto *CS = cast<CallStmt>(S);
        if (!CS->callee())
          bail("call to unresolved procedure");
        compileBody(CS->callee()->body(), Depth + 1);
        break;
      }
      }
    }
  }
};

} // namespace

const char *vm::structuralBailout(const DoStmt *DS) {
  if (DS->indexVar()->elementKind() != ScalarKind::Int ||
      DS->indexVar()->isArray())
    return "non-integer loop index variable";
  return structuralWalk(DS->body(), 0);
}

CompileResult vm::compileLoop(
    const DoStmt *DS, const std::vector<std::vector<int64_t>> &DimExtents) {
  CompileResult R;
  try {
    Lowering L(DS, DimExtents);
    R.Prog = L.run();
    R.Ok = true;
  } catch (const Bailout &B) {
    R.Bailout = B.Reason;
  }
  return R;
}

const char *vm::opName(Op K) {
  switch (K) {
  case Op::Halt: return "halt";
  case Op::MovI: return "movi";
  case Op::MovD: return "movd";
  case Op::CopyI: return "cpyi";
  case Op::CopyD: return "cpyd";
  case Op::CastID: return "i2d";
  case Op::CastDI: return "d2i";
  case Op::LdScaI: return "ldsi";
  case Op::LdScaD: return "ldsd";
  case Op::StScaI: return "stsi";
  case Op::StScaD: return "stsd";
  case Op::Ld1I: return "ld1i";
  case Op::Ld1D: return "ld1d";
  case Op::St1I: return "st1i";
  case Op::St1D: return "st1d";
  case Op::Ld2I: return "ld2i";
  case Op::Ld2D: return "ld2d";
  case Op::St2I: return "st2i";
  case Op::St2D: return "st2d";
  case Op::GthI: return "gthi";
  case Op::GthD: return "gthd";
  case Op::SctI: return "scti";
  case Op::SctD: return "sctd";
  case Op::SctAddI: return "sctaddi";
  case Op::SctAddD: return "sctaddd";
  case Op::AddI: return "addi";
  case Op::SubI: return "subi";
  case Op::MulI: return "muli";
  case Op::DivI: return "divi";
  case Op::ModI: return "modi";
  case Op::MinI: return "mini";
  case Op::MaxI: return "maxi";
  case Op::NegI: return "negi";
  case Op::NotI: return "noti";
  case Op::BoolI: return "booli";
  case Op::DNzI: return "dnzi";
  case Op::AddIImm: return "addiimm";
  case Op::AddD: return "addd";
  case Op::SubD: return "subd";
  case Op::MulD: return "muld";
  case Op::DivD: return "divd";
  case Op::MinD: return "mind";
  case Op::MaxD: return "maxd";
  case Op::NegD: return "negd";
  case Op::EqI: return "eqi";
  case Op::NeI: return "nei";
  case Op::LtI: return "lti";
  case Op::LeI: return "lei";
  case Op::GtI: return "gti";
  case Op::GeI: return "gei";
  case Op::EqD: return "eqd";
  case Op::NeD: return "ned";
  case Op::LtD: return "ltd";
  case Op::LeD: return "led";
  case Op::GtD: return "gtd";
  case Op::GeD: return "ged";
  case Op::Jmp: return "jmp";
  case Op::JmpZ: return "jmpz";
  case Op::JmpNZ: return "jmpnz";
  case Op::LoopTest: return "looptest";
  case Op::LoopBack: return "loopback";
  case Op::FaultZeroStep: return "ckstep";
  }
  return "?";
}

std::string LoopProgram::str() const {
  std::string Out;
  Out += "loop " + (Loop && !Loop->label().empty() ? Loop->label()
                                                   : std::string("<unlabeled>"));
  Out += ": " + std::to_string(Code.size()) + " instrs, " +
         std::to_string(Slots.size()) + " slots, " +
         std::to_string(NumIntRegs) + "i+" + std::to_string(NumRealRegs) +
         "d regs, " + std::to_string(FusedGathers) + " fused gathers, " +
         std::to_string(FusedScatters) + " fused scatters\n";
  for (size_t I = 0; I < Code.size(); ++I) {
    const Instr &In = Code[I];
    Out += "  " + std::to_string(I) + ": " + opName(In.K);
    Out += " a=" + std::to_string(In.A) + " b=" + std::to_string(In.B) +
           " c=" + std::to_string(In.C);
    if (In.D || In.E)
      Out += " d=" + std::to_string(In.D) + " e=" + std::to_string(In.E);
    if (In.Imm)
      Out += " imm=" + std::to_string(In.Imm);
    Out += "\n";
  }
  return Out;
}
