//===- vm/Vm.cpp - Register-bytecode executor for loop chunks -------------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "vm/Vm.h"

#include "mf/Stmt.h"
#include "prof/Profiler.h"

#include <algorithm>
#include <cstring>
#include <limits>

using namespace iaa;
using namespace iaa::interp;
using namespace iaa::mf;
using namespace iaa::vm;

namespace {

/// One slot resolved against this chunk's memory view: the worker's private
/// override when present, the shared global otherwise.
struct ResolvedSlot {
  int64_t *I = nullptr;
  double *D = nullptr;
  size_t Size = 0;
};

/// The per-chunk execution state. A plain struct (not the exported entry
/// point) so fault raising can see the register files for iteration
/// attribution.
struct Machine {
  const LoopProgram &Prog;
  const ChunkContext &C;
  std::vector<ResolvedSlot> Slots;
  std::vector<int64_t> RI;
  std::vector<double> RD;

  Machine(const LoopProgram &Prog, const ChunkContext &C)
      : Prog(Prog), C(C), RI(Prog.NumIntRegs), RD(Prog.NumRealRegs) {
    Slots.reserve(Prog.Slots.size());
    for (const SlotInfo &S : Prog.Slots) {
      Buffer *B = nullptr;
      if (C.Overrides) {
        auto It = C.Overrides->find(S.Sym->id());
        if (It != C.Overrides->end())
          B = &It->second;
      }
      if (!B)
        B = &C.Mem->buffer(S.Sym);
      ResolvedSlot R;
      R.I = B->I.data();
      R.D = B->D.data();
      R.Size = B->size();
      Slots.push_back(R);
    }
  }

  /// Raises a structured fault with the same attribution the tree walk
  /// gives: source location and enclosing loop from the instruction's
  /// FaultCtx, live iteration from the context's iteration register.
  [[noreturn]] void fault(uint16_t CtxId, FaultKind Kind, std::string Detail,
                          const Symbol *Sym = nullptr, bool HasValue = false,
                          int64_t Value = 0, int64_t Bound = 0) const {
    const FaultCtx &FC = Prog.Ctxs[CtxId];
    RuntimeFault RF;
    RF.Kind = Kind;
    RF.Loc = FC.Loc;
    RF.Range = SourceRange(FC.Loc);
    RF.Loop = FC.Loop;
    RF.HasIteration = true;
    RF.Iteration = RI[FC.IterReg];
    RF.Worker = C.Worker;
    RF.InParallel = true;
    if (Sym)
      RF.Var = Sym->name();
    RF.HasValue = HasValue;
    RF.Value = Value;
    RF.Bound = Bound;
    RF.Detail = std::move(Detail);
    throw FaultException(std::move(RF));
  }

  /// Rank-1 subscript check, identical to the tree walk's linearIndex.
  void check1(int64_t Sub, uint16_t Slot, uint16_t CtxId) const {
    const SlotInfo &S = Prog.Slots[Slot];
    if (Sub < 1 || Sub > S.Ext0)
      fault(CtxId, FaultKind::OutOfBounds, "array subscript out of bounds",
            S.Sym, /*HasValue=*/true, Sub, S.Ext0);
  }

  void check2(int64_t Sub, int64_t Ext, unsigned Dim, uint16_t Slot,
              uint16_t CtxId) const {
    if (Sub < 1 || Sub > Ext)
      fault(CtxId, FaultKind::OutOfBounds,
            "array subscript out of bounds (dimension " +
                std::to_string(Dim) + ")",
            Prog.Slots[Slot].Sym, /*HasValue=*/true, Sub, Ext);
  }

  int64_t run() {
    prof::LoopRecorder *Rec = C.Rec;
    uint32_t LocalSkip = 1;
    uint32_t &Skip = C.ProfSkip ? *C.ProfSkip : LocalSkip;
    auto Sample = [&](uint16_t Slot, size_t Idx, bool IsWrite) {
      if (Rec && --Skip == 0)
        Skip = Rec->noteSampledAccess(Prog.Slots[Slot].Sym, Idx,
                                      Slots[Slot].Size, IsWrite, C.Worker);
    };

    const std::string RootLoop =
        Prog.Loop->label().empty() ? "<unlabeled>" : Prog.Loop->label();
    const Instr *Code = Prog.Code.data();
    int64_t MaxIter = std::numeric_limits<int64_t>::min();

    for (int64_t Pos = C.First; Pos <= C.Last; ++Pos) {
      int64_t Iter = C.Order ? (*C.Order)[Pos - C.Lo] : Pos;

      if (C.Injector) {
        if (auto Inj = C.Injector->atIteration(Prog.Loop, Iter, C.Worker,
                                               /*InParallel=*/true)) {
          RuntimeFault RF;
          RF.Kind = Inj->Kind;
          RF.Loc = Prog.Loop->loc();
          RF.Range = SourceRange(RF.Loc);
          RF.Loop = RootLoop;
          RF.HasIteration = true;
          RF.Iteration = Iter;
          RF.Worker = C.Worker;
          RF.InParallel = true;
          RF.Detail = Inj->Detail;
          throw FaultException(std::move(RF));
        }
      }

      RI[Prog.IterReg] = Iter;
      Slots[Prog.IndexSlot].I[0] = Iter;

      size_t Pc = 0;
      for (;;) {
        const Instr &In = Code[Pc++];
        switch (In.K) {
        case Op::Halt:
          goto IterDone;

        case Op::MovI:
          RI[In.A] = In.Imm;
          break;
        case Op::MovD: {
          double V;
          std::memcpy(&V, &In.Imm, sizeof(V));
          RD[In.A] = V;
          break;
        }
        case Op::CopyI:
          RI[In.A] = RI[In.B];
          break;
        case Op::CopyD:
          RD[In.A] = RD[In.B];
          break;
        case Op::CastID:
          RD[In.A] = static_cast<double>(RI[In.B]);
          break;
        case Op::CastDI:
          RI[In.A] = static_cast<int64_t>(RD[In.B]);
          break;

        case Op::LdScaI:
          RI[In.A] = Slots[In.B].I[0];
          break;
        case Op::LdScaD:
          RD[In.A] = Slots[In.B].D[0];
          break;
        case Op::StScaI:
          Slots[In.A].I[0] = RI[In.B];
          break;
        case Op::StScaD:
          Slots[In.A].D[0] = RD[In.B];
          break;

        case Op::Ld1I: {
          int64_t Sub = RI[In.C];
          check1(Sub, In.B, In.Ctx);
          Sample(In.B, size_t(Sub - 1), /*IsWrite=*/false);
          RI[In.A] = Slots[In.B].I[Sub - 1];
          break;
        }
        case Op::Ld1D: {
          int64_t Sub = RI[In.C];
          check1(Sub, In.B, In.Ctx);
          Sample(In.B, size_t(Sub - 1), /*IsWrite=*/false);
          RD[In.A] = Slots[In.B].D[Sub - 1];
          break;
        }
        case Op::St1I: {
          int64_t Sub = RI[In.B];
          check1(Sub, In.A, In.Ctx);
          Sample(In.A, size_t(Sub - 1), /*IsWrite=*/true);
          Slots[In.A].I[Sub - 1] = RI[In.C];
          break;
        }
        case Op::St1D: {
          int64_t Sub = RI[In.B];
          check1(Sub, In.A, In.Ctx);
          Sample(In.A, size_t(Sub - 1), /*IsWrite=*/true);
          Slots[In.A].D[Sub - 1] = RD[In.C];
          break;
        }

        case Op::Ld2I:
        case Op::Ld2D: {
          const SlotInfo &S = Prog.Slots[In.B];
          int64_t S1 = RI[In.C], S2 = RI[In.D];
          check2(S1, S.Ext0, 1, In.B, In.Ctx);
          check2(S2, S.Ext1, 2, In.B, In.Ctx);
          size_t Idx = size_t(S1 - 1) * size_t(S.Ext1) + size_t(S2 - 1);
          Sample(In.B, Idx, /*IsWrite=*/false);
          if (In.K == Op::Ld2I)
            RI[In.A] = Slots[In.B].I[Idx];
          else
            RD[In.A] = Slots[In.B].D[Idx];
          break;
        }
        case Op::St2I:
        case Op::St2D: {
          const SlotInfo &S = Prog.Slots[In.A];
          int64_t S1 = RI[In.B], S2 = RI[In.C];
          check2(S1, S.Ext0, 1, In.A, In.Ctx);
          check2(S2, S.Ext1, 2, In.A, In.Ctx);
          size_t Idx = size_t(S1 - 1) * size_t(S.Ext1) + size_t(S2 - 1);
          Sample(In.A, Idx, /*IsWrite=*/true);
          if (In.K == Op::St2I)
            Slots[In.A].I[Idx] = RI[In.D];
          else
            Slots[In.A].D[Idx] = RD[In.D];
          break;
        }

        case Op::GthI:
        case Op::GthD: {
          int64_t Sub = RI[In.C];
          check1(Sub, In.E, In.Ctx);
          Sample(In.E, size_t(Sub - 1), /*IsWrite=*/false);
          int64_t DataSub = Slots[In.E].I[Sub - 1] + In.Imm;
          check1(DataSub, In.B, In.Ctx + 1);
          Sample(In.B, size_t(DataSub - 1), /*IsWrite=*/false);
          if (In.K == Op::GthI)
            RI[In.A] = Slots[In.B].I[DataSub - 1];
          else
            RD[In.A] = Slots[In.B].D[DataSub - 1];
          break;
        }
        case Op::SctI:
        case Op::SctD: {
          int64_t Sub = RI[In.B];
          check1(Sub, In.E, In.Ctx);
          Sample(In.E, size_t(Sub - 1), /*IsWrite=*/false);
          int64_t DataSub = Slots[In.E].I[Sub - 1] + In.Imm;
          check1(DataSub, In.A, In.Ctx + 1);
          Sample(In.A, size_t(DataSub - 1), /*IsWrite=*/true);
          if (In.K == Op::SctI)
            Slots[In.A].I[DataSub - 1] = RI[In.C];
          else
            Slots[In.A].D[DataSub - 1] = RD[In.C];
          break;
        }
        case Op::SctAddI:
        case Op::SctAddD: {
          int64_t Sub = RI[In.B];
          check1(Sub, In.E, In.Ctx);
          Sample(In.E, size_t(Sub - 1), /*IsWrite=*/false);
          int64_t DataSub = Slots[In.E].I[Sub - 1] + In.Imm;
          check1(DataSub, In.A, In.Ctx + 1);
          Sample(In.A, size_t(DataSub - 1), /*IsWrite=*/false);
          Sample(In.A, size_t(DataSub - 1), /*IsWrite=*/true);
          if (In.K == Op::SctAddI)
            Slots[In.A].I[DataSub - 1] += RI[In.C];
          else
            Slots[In.A].D[DataSub - 1] += RD[In.C];
          break;
        }

        case Op::AddI:
          RI[In.A] = RI[In.B] + RI[In.C];
          break;
        case Op::SubI:
          RI[In.A] = RI[In.B] - RI[In.C];
          break;
        case Op::MulI:
          RI[In.A] = RI[In.B] * RI[In.C];
          break;
        case Op::DivI:
          if (RI[In.C] == 0)
            fault(In.Ctx, FaultKind::DivByZero, "integer division by zero");
          RI[In.A] = RI[In.B] / RI[In.C];
          break;
        case Op::ModI:
          if (RI[In.C] == 0)
            fault(In.Ctx, FaultKind::DivByZero, "mod by zero");
          RI[In.A] = RI[In.B] % RI[In.C];
          break;
        case Op::MinI:
          RI[In.A] = std::min(RI[In.B], RI[In.C]);
          break;
        case Op::MaxI:
          RI[In.A] = std::max(RI[In.B], RI[In.C]);
          break;
        case Op::NegI:
          RI[In.A] = -RI[In.B];
          break;
        case Op::NotI:
          RI[In.A] = RI[In.B] == 0;
          break;
        case Op::BoolI:
          RI[In.A] = RI[In.B] != 0;
          break;
        case Op::DNzI:
          RI[In.A] = RD[In.B] != 0;
          break;
        case Op::AddIImm:
          RI[In.A] = RI[In.B] + In.Imm;
          break;

        case Op::AddD:
          RD[In.A] = RD[In.B] + RD[In.C];
          break;
        case Op::SubD:
          RD[In.A] = RD[In.B] - RD[In.C];
          break;
        case Op::MulD:
          RD[In.A] = RD[In.B] * RD[In.C];
          break;
        case Op::DivD:
          RD[In.A] = RD[In.B] / RD[In.C];
          break;
        case Op::MinD:
          RD[In.A] = std::min(RD[In.B], RD[In.C]);
          break;
        case Op::MaxD:
          RD[In.A] = std::max(RD[In.B], RD[In.C]);
          break;
        case Op::NegD:
          RD[In.A] = -RD[In.B];
          break;

        case Op::EqI:
          RI[In.A] = RI[In.B] == RI[In.C];
          break;
        case Op::NeI:
          RI[In.A] = RI[In.B] != RI[In.C];
          break;
        case Op::LtI:
          RI[In.A] = RI[In.B] < RI[In.C];
          break;
        case Op::LeI:
          RI[In.A] = RI[In.B] <= RI[In.C];
          break;
        case Op::GtI:
          RI[In.A] = RI[In.B] > RI[In.C];
          break;
        case Op::GeI:
          RI[In.A] = RI[In.B] >= RI[In.C];
          break;
        case Op::EqD:
          RI[In.A] = RD[In.B] == RD[In.C];
          break;
        case Op::NeD:
          RI[In.A] = RD[In.B] != RD[In.C];
          break;
        case Op::LtD:
          RI[In.A] = RD[In.B] < RD[In.C];
          break;
        case Op::LeD:
          RI[In.A] = RD[In.B] <= RD[In.C];
          break;
        case Op::GtD:
          RI[In.A] = RD[In.B] > RD[In.C];
          break;
        case Op::GeD:
          RI[In.A] = RD[In.B] >= RD[In.C];
          break;

        case Op::Jmp:
          Pc = size_t(In.Imm);
          break;
        case Op::JmpZ:
          if (RI[In.B] == 0)
            Pc = size_t(In.Imm);
          break;
        case Op::JmpNZ:
          if (RI[In.B] != 0)
            Pc = size_t(In.Imm);
          break;
        case Op::LoopTest:
          if (RI[In.C] > 0 ? RI[In.A] > RI[In.B] : RI[In.A] < RI[In.B])
            Pc = size_t(In.Imm);
          break;
        case Op::LoopBack:
          RI[In.A] += RI[In.C];
          if (!(RI[In.C] > 0 ? RI[In.A] > RI[In.B] : RI[In.A] < RI[In.B]))
            Pc = size_t(In.Imm);
          break;
        case Op::FaultZeroStep:
          if (RI[In.B] == 0)
            fault(In.Ctx, FaultKind::BadStep, "do loop with zero step",
                  Prog.Slots[In.A].Sym, /*HasValue=*/true, /*Value=*/0);
          break;
        }
      }
    IterDone:
      MaxIter = std::max(MaxIter, Iter);
    }
    return MaxIter;
  }
};

} // namespace

int64_t vm::runChunk(const LoopProgram &Prog, const ChunkContext &C) {
  Machine M(Prog, C);
  return M.run();
}
