//===- vm/Compiler.h - AST-to-bytecode lowering for loop plans --*- C++ -*-===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers the body of a certified do loop to register bytecode
/// (vm/Bytecode.h). The compiler is deliberately conservative: anything it
/// cannot lower with bit-identical semantics — while loops, unresolved or
/// recursive calls, mod on real operands, non-integer index variables —
/// is a *bailout*, and the loop keeps running on the tree-walking
/// interpreter. Bailing out is always correct; compiling is only a speed
/// change, never a semantic one (the differential oracle in --engine=both
/// enforces exactly that).
///
/// structuralBailout() is the extent-free subset of the bailout taxonomy,
/// usable at pipeline time (xform marks LoopPlan::VmEligible with it);
/// compileLoop() is authoritative and can still bail on run-resolved facts.
///
//===----------------------------------------------------------------------===//

#ifndef IAA_VM_COMPILER_H
#define IAA_VM_COMPILER_H

#include "vm/Bytecode.h"

#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace iaa {
namespace vm {

/// Outcome of one lowering attempt: a runnable program, or the reason the
/// loop must stay on the interpreter.
struct CompileResult {
  bool Ok = false;
  LoopProgram Prog;
  std::string Bailout; ///< Why the loop cannot lower (empty when Ok).
};

/// Purely structural pre-check of the bailout taxonomy (no extents needed):
/// returns the first reason \p DS cannot lower, or null when the body looks
/// compilable. Used by the pipeline to mark plan eligibility; the compiler
/// below remains authoritative.
const char *structuralBailout(const mf::DoStmt *DS);

/// Lowers the body of \p DS against \p DimExtents (per-symbol declared
/// extents resolved to run constants, indexed by symbol id — the same table
/// the interpreter's subscript linearization uses).
CompileResult compileLoop(const mf::DoStmt *DS,
                          const std::vector<std::vector<int64_t>> &DimExtents);

/// Memoized compile results (successes *and* bailouts), keyed per loop.
/// One interpreter session owns a private store by default; the mfpard
/// artifact cache shares one store per cached program across sessions, so
/// a loop is lowered once no matter how many concurrent sessions run it.
/// Thread-safe; entry addresses are stable for the cache's lifetime.
class BytecodeCache {
public:
  /// Returns the memoized result for \p DS, invoking \p Compile under the
  /// cache lock on first use (duplicate concurrent compiles are thereby
  /// impossible; lowering is fast relative to execution).
  const CompileResult &
  getOrCompile(const mf::DoStmt *DS,
               const std::function<CompileResult()> &Compile) {
    std::lock_guard<std::mutex> Lock(M);
    auto It = Cache.find(DS);
    if (It == Cache.end())
      It = Cache.emplace(DS, Compile()).first;
    return It->second;
  }

  size_t size() const {
    std::lock_guard<std::mutex> Lock(M);
    return Cache.size();
  }

private:
  mutable std::mutex M;
  std::map<const mf::DoStmt *, CompileResult> Cache;
};

} // namespace vm
} // namespace iaa

#endif // IAA_VM_COMPILER_H
