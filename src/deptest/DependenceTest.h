//===- deptest/DependenceTest.h - Loop dependence testing -------*- C++ -*-===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Loop-carried dependence testing for do loops, in three tiers:
///
///  1. a *distinct-dimension* affine test: some dimension of every access is
///     the same affine function of the tested loop's index with nonzero
///     coefficient, so different iterations touch disjoint slices;
///  2. a symbolic *range test* (Blume & Eigenmann, used by Polaris): the
///     access ranges of iteration i and iteration i+1, swept over the inner
///     loops, provably do not overlap;
///  3. the *offset-length test* (Sec. 3.2.7): when the ranges are expressed
///     in terms of an index array x() — [x(i)+a : x(i)+y(i)+b] — the range
///     test is retried after rewriting x(i+1) to x(i) + y(i), which is
///     licensed by the closed-form distance property (CFD) of x verified by
///     the array property analysis, with y proven non-negative (CFB);
///  4. the *injective test* (Sec. 5.1.5): accesses a(p(i)) with p injective
///     over the iteration space touch distinct elements.
///
/// Tiers 3-4 are the paper's contribution and are disabled when the
/// irregular-access analysis (IAA) is off, which is the baseline
/// configuration of Fig. 16.
///
//===----------------------------------------------------------------------===//

#ifndef IAA_DEPTEST_DEPENDENCETEST_H
#define IAA_DEPTEST_DEPENDENCETEST_H

#include "analysis/GlobalConstants.h"
#include "analysis/PropertySolver.h"
#include "analysis/SymbolUses.h"
#include "cfg/Hcg.h"

#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

namespace iaa {
namespace deptest {

/// Which test disproved (or failed to disprove) dependences on one array.
enum class TestKind {
  None,          ///< No test applied (array not written, or privatized).
  DistinctDim,   ///< Affine distinct-dimension test.
  RangeTest,     ///< Symbolic range test.
  OffsetLength,  ///< Offset-length test (needs CFD, usually CFB too).
  Injective,     ///< Injective subscript test (needs INJ).
};

const char *testKindName(TestKind K);

/// A property the static analysis left Unknown but that is decidable by an
/// O(n) inspection of the index array's contents at run time.
enum class RuntimeCheckKind {
  InjectiveOnRange,       ///< Index values pairwise distinct on the window.
  MonotonicNonDecreasing, ///< Index(p) <= Index(p+1) on the window.
  BoundsWithin,           ///< Index values within [LoBound, UpBound].
  OffsetLengthDisjoint,   ///< Per-iteration segments pairwise disjoint.
};

const char *runtimeCheckKindName(RuntimeCheckKind K);

/// One runtime-check obligation attached to a loop plan. The inspected
/// window is Index positions [lo(L)+LoAdjust, up(L)+UpAdjust], where lo/up
/// are the loop bounds evaluated at run time.
struct RuntimeCheck {
  RuntimeCheckKind Kind = RuntimeCheckKind::InjectiveOnRange;
  /// The index array whose contents decide the property.
  const mf::Symbol *Index = nullptr;
  /// OffsetLengthDisjoint: the segment-length array (null when lengths do
  /// not participate).
  const mf::Symbol *Length = nullptr;
  /// Inspected window, relative to the loop bounds.
  int64_t LoAdjust = 0;
  int64_t UpAdjust = 0;
  /// BoundsWithin: required value range. When BoundedArray is set the upper
  /// bound is that rank-1 array's runtime extent instead of UpBound (extents
  /// may be symbolic at analysis time but are concrete once allocated).
  int64_t LoBound = 0;
  int64_t UpBound = 0;
  const mf::Symbol *BoundedArray = nullptr;
  /// OffsetLengthDisjoint: iteration i accesses positions starting at
  /// Index(i)+AccessLo and ending at Index(i)+Length(i)+AccessHiLen and/or
  /// Index(i)+AccessHiConst; disjointness requires every end to precede the
  /// next iteration's start.
  int64_t AccessLo = 0;
  bool HasHiLen = false;
  int64_t AccessHiLen = 0;
  bool HasHiConst = false;
  int64_t AccessHiConst = 0;

  /// Stable rendering, also used as the dedup key.
  std::string str() const;
};

/// Per-array outcome of dependence testing on one loop.
struct ArrayDepOutcome {
  const mf::Symbol *Array = nullptr;
  bool Independent = false;
  TestKind Test = TestKind::None;
  /// Property abbreviations used ("CFD", "CFB", "INJ", "CFV"), if any.
  std::vector<std::string> PropertiesUsed;
  std::string Detail;
  /// When the array stays dependent, the runtime checks that would settle
  /// it: if an inspector establishes all of them for the actual index-array
  /// contents, different iterations touch distinct elements and the loop
  /// may run in parallel (serial fallback otherwise). Empty when no
  /// inspectable shape was recognized.
  std::vector<RuntimeCheck> RuntimeCandidates;
  /// True when the static proof consumed a recurrence fact (the loop would
  /// have been runtime-conditional without the recurrence catalog). The
  /// planner marks such plans RecurrencePromoted.
  bool RecurrenceBacked = false;
  /// For a recurrence-backed proof: the runtime checks the loop would have
  /// carried without the fact. A strict audit that cannot re-derive the
  /// fact demotes the plan back to conditional dispatch on these.
  std::vector<RuntimeCheck> FallbackChecks;
};

/// Result of testing one loop.
struct LoopDepResult {
  bool Independent = false;
  std::vector<ArrayDepOutcome> Arrays;
  unsigned PropertyQueries = 0;
};

/// The dependence-test driver.
class DependenceTester {
public:
  DependenceTester(cfg::Hcg &G, const analysis::SymbolUses &Uses,
                   bool EnableIAA, bool EnableRangeTest = true)
      : G(G), Uses(Uses), Consts(G.program()), Solver(G, Uses),
        EnableIAA(EnableIAA), EnableRangeTest(EnableRangeTest) {}

  /// Routes property-analysis time into \p T (for Table 2).
  void setPropertyTimer(AccumulatingTimer *T) { Solver.setTimer(T); }

  /// Tests whether \p L carries dependences through array accesses.
  /// Arrays in \p Privatized are assumed handled by privatization.
  LoopDepResult testLoop(const mf::DoStmt *L,
                         const std::set<const mf::Symbol *> &Privatized);

private:
  struct Access {
    const mf::ArrayRef *Ref;
    const mf::Stmt *Site;
    bool IsWrite;
    /// Do loops strictly inside the tested loop enclosing this access.
    std::vector<const mf::DoStmt *> InnerLoops;
  };

  ArrayDepOutcome testArray(const mf::DoStmt *L, const mf::Symbol *X,
                            const std::vector<Access> &Accs,
                            LoopDepResult &R);

  /// Sweeps \p E over the access's inner loops; false if unboundable.
  bool accessRange(const Access &A, unsigned Dim, sym::SymExpr &Lo,
                   sym::SymExpr &Hi) const;

  cfg::Hcg &G;
  const analysis::SymbolUses &Uses;
  analysis::GlobalConstants Consts;
  analysis::PropertySolver Solver;
  bool EnableIAA;
  bool EnableRangeTest;

  /// Verified-property memo, keyed by (array, loop): the same pptr/iblen
  /// facts are needed for every host array of a loop nest, and re-verifying
  /// them would dominate analysis time (Table 2).
  struct PropKey {
    const mf::Symbol *Array;
    const mf::DoStmt *Loop;
    bool operator<(const PropKey &O) const {
      return std::tie(Array, Loop) < std::tie(O.Array, O.Loop);
    }
  };
  struct CfdFact {
    bool Verified = false;
    /// The verification consumed a recurrence-catalog fact.
    bool Recurrence = false;
    sym::SymExpr Distance;
  };
  struct CfbFact {
    bool Verified = false;
    sym::SymRange Bounds;
  };
  std::map<PropKey, CfdFact> CfdCache;
  std::map<PropKey, CfbFact> CfbCache;

  /// Memoized CFD verification of \p Ptr over [lo(L), up(L)-1] before L.
  const CfdFact &verifiedDistance(const mf::DoStmt *L, const mf::Symbol *Ptr,
                                  LoopDepResult &R);
  /// Memoized CFB verification of \p Y over the same section.
  const CfbFact &verifiedBounds(const mf::DoStmt *L, const mf::Symbol *Y,
                                LoopDepResult &R);
};

} // namespace deptest
} // namespace iaa

#endif // IAA_DEPTEST_DEPENDENCETEST_H
