//===- deptest/DependenceTest.cpp - Loop dependence testing ---------------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "deptest/DependenceTest.h"

#include "support/Statistic.h"
#include "support/Trace.h"
#include "symbolic/SymExpr.h"

#include <map>

using namespace iaa;
using namespace iaa::deptest;
using namespace iaa::analysis;
using namespace iaa::cfg;
using namespace iaa::mf;
using namespace iaa::sec;
using namespace iaa::sym;

#define IAA_STAT_GROUP "deptest"
IAA_STAT(deptest_loops_tested, "Loops run through the dependence tester");
IAA_STAT(deptest_arrays_tested, "Per-array dependence tests performed");
IAA_STAT(deptest_distinct_dim, "Arrays disproved by the distinct-dimension test");
IAA_STAT(deptest_range, "Arrays disproved by the symbolic range test");
IAA_STAT(deptest_offset_length, "Arrays disproved by the offset-length test");
IAA_STAT(deptest_injective, "Arrays disproved by the injective test");
IAA_STAT(deptest_dependent, "Arrays left dependent (no test succeeded)");
IAA_STAT(prop_cache_hits, "Verified-property memo hits (CFD/CFB facts)");
IAA_STAT(prop_cache_misses, "Verified-property memo misses (CFD/CFB facts)");

namespace {

/// Per-kind outcome counters feeding the statistics registry.
void countOutcome(const ArrayDepOutcome &O) {
  ++deptest_arrays_tested;
  if (!O.Independent) {
    ++deptest_dependent;
    return;
  }
  switch (O.Test) {
  case TestKind::None:         break;
  case TestKind::DistinctDim:  ++deptest_distinct_dim; break;
  case TestKind::RangeTest:    ++deptest_range; break;
  case TestKind::OffsetLength: ++deptest_offset_length; break;
  case TestKind::Injective:    ++deptest_injective; break;
  }
}

} // namespace

const char *iaa::deptest::testKindName(TestKind K) {
  switch (K) {
  case TestKind::None:         return "none";
  case TestKind::DistinctDim:  return "distinct-dim";
  case TestKind::RangeTest:    return "range";
  case TestKind::OffsetLength: return "offset-length";
  case TestKind::Injective:    return "injective";
  }
  return "?";
}

const char *iaa::deptest::runtimeCheckKindName(RuntimeCheckKind K) {
  switch (K) {
  case RuntimeCheckKind::InjectiveOnRange:       return "injective-on-range";
  case RuntimeCheckKind::MonotonicNonDecreasing: return "monotonic";
  case RuntimeCheckKind::BoundsWithin:           return "bounds-within";
  case RuntimeCheckKind::OffsetLengthDisjoint:   return "offset-length-disjoint";
  }
  return "?";
}

std::string RuntimeCheck::str() const {
  auto Adj = [](int64_t V) {
    if (V == 0)
      return std::string();
    return (V > 0 ? "+" : "") + std::to_string(V);
  };
  std::string S = runtimeCheckKindName(Kind);
  S += "(" + (Index ? Index->name() : std::string("?"));
  switch (Kind) {
  case RuntimeCheckKind::InjectiveOnRange:
  case RuntimeCheckKind::MonotonicNonDecreasing:
    S += "[lo" + Adj(LoAdjust) + ":up" + Adj(UpAdjust) + "]";
    break;
  case RuntimeCheckKind::BoundsWithin:
    S += "[lo" + Adj(LoAdjust) + ":up" + Adj(UpAdjust) + "] in [" +
         std::to_string(LoBound) + ":" +
         (BoundedArray ? "extent(" + BoundedArray->name() + ")"
                       : std::to_string(UpBound)) +
         "]";
    break;
  case RuntimeCheckKind::OffsetLengthDisjoint:
    S += ", start " + Index->name() + "(i)" + Adj(AccessLo) + ", end";
    if (HasHiLen)
      S += " " + Index->name() + "(i)+" + (Length ? Length->name() : "?") +
           "(i)" + Adj(AccessHiLen);
    if (HasHiConst)
      S += std::string(HasHiLen ? " and" : "") + " " + Index->name() + "(i)" +
           Adj(AccessHiConst);
    break;
  }
  S += ")";
  return S;
}

namespace {

/// Collects array references in \p E (reads).
void collectReads(const Expr *E, std::vector<const mf::ArrayRef *> &Out) {
  switch (E->kind()) {
  case ExprKind::IntLit:
  case ExprKind::RealLit:
  case ExprKind::VarRef:
    return;
  case ExprKind::ArrayRef: {
    const auto *AR = cast<mf::ArrayRef>(E);
    Out.push_back(AR);
    for (const Expr *Sub : AR->subscripts())
      collectReads(Sub, Out);
    return;
  }
  case ExprKind::Unary:
    collectReads(cast<UnaryExpr>(E)->operand(), Out);
    return;
  case ExprKind::Binary:
    collectReads(cast<BinaryExpr>(E)->lhs(), Out);
    collectReads(cast<BinaryExpr>(E)->rhs(), Out);
    return;
  }
}

/// Replaces every occurrence of the atom with key \p Key in \p E by \p Repl.
SymExpr replaceAtom(const SymExpr &E, const std::string &Key,
                    const SymExpr &Repl) {
  SymExpr Out = SymExpr::constant(E.constantTerm());
  for (const auto &[K, Term] : E.terms()) {
    if (K == Key)
      Out = Out + Repl * Term.second;
    else
      Out = Out + SymExpr::atom(Term.first) * Term.second;
  }
  return Out;
}

} // namespace

LoopDepResult
DependenceTester::testLoop(const DoStmt *L,
                           const std::set<const Symbol *> &Privatized) {
  trace::TraceScope Span("dep-test", "deptest");
  if (Span.active() && !L->label().empty())
    Span.arg("loop", L->label());
  ++deptest_loops_tested;
  LoopDepResult R;

  // Gather all accesses grouped by array, with their inner-loop context.
  std::map<const Symbol *, std::vector<Access>> ByArray;
  std::set<const Symbol *> Opaque;      // Written in an unanalyzable context.
  std::set<const Symbol *> OpaqueReads; // Read in an unanalyzable context.

  std::vector<const DoStmt *> LoopStack;
  std::function<void(const StmtList &)> Walk = [&](const StmtList &Body) {
    for (const Stmt *S : Body) {
      auto AddReads = [&](const Expr *E) {
        std::vector<const mf::ArrayRef *> Reads;
        collectReads(E, Reads);
        for (const mf::ArrayRef *AR : Reads)
          ByArray[AR->array()].push_back({AR, S, false, LoopStack});
      };
      switch (S->kind()) {
      case StmtKind::Assign: {
        const auto *AS = cast<AssignStmt>(S);
        AddReads(AS->rhs());
        if (const mf::ArrayRef *T = AS->arrayTarget()) {
          for (const Expr *Sub : T->subscripts())
            AddReads(Sub);
          ByArray[T->array()].push_back({T, S, true, LoopStack});
        }
        break;
      }
      case StmtKind::If: {
        const auto *IS = cast<IfStmt>(S);
        AddReads(IS->condition());
        Walk(IS->thenBody());
        Walk(IS->elseBody());
        break;
      }
      case StmtKind::Do: {
        const auto *DS = cast<DoStmt>(S);
        AddReads(DS->lower());
        AddReads(DS->upper());
        if (DS->step())
          AddReads(DS->step());
        LoopStack.push_back(DS);
        Walk(DS->body());
        LoopStack.pop_back();
        break;
      }
      case StmtKind::While: {
        const auto *WS = cast<WhileStmt>(S);
        AddReads(WS->condition());
        // Accesses inside a while loop cannot be range-analyzed: written
        // arrays become opaque; read arrays only matter if some other part
        // of the loop writes them (checked below).
        UseSet U = Uses.bodyUses(cast<WhileStmt>(S)->body());
        for (const Symbol *Sym : U.Reads)
          if (Sym->isArray())
            OpaqueReads.insert(Sym);
        for (const Symbol *Sym : U.Writes)
          if (Sym->isArray())
            Opaque.insert(Sym);
        break;
      }
      case StmtKind::Call: {
        const auto *CS = cast<CallStmt>(S);
        const UseSet &U = Uses.procedureUses(CS->callee());
        for (const Symbol *Sym : U.Reads)
          if (Sym->isArray())
            OpaqueReads.insert(Sym);
        for (const Symbol *Sym : U.Writes)
          if (Sym->isArray())
            Opaque.insert(Sym);
        break;
      }
      }
    }
  };
  Walk(L->body());

  // A read inside a while/call is only a problem when the array is written
  // somewhere in the loop.
  UseSet BodyU = Uses.bodyUses(L->body());
  for (const Symbol *X : OpaqueReads)
    if (BodyU.writes(X))
      Opaque.insert(X);

  R.Independent = true;
  for (auto &[X, Accs] : ByArray) {
    if (Privatized.count(X))
      continue;
    bool Written = false;
    for (const Access &A : Accs)
      Written |= A.IsWrite;
    if (!Written && !Opaque.count(X))
      continue; // Read-only arrays carry no dependence.
    ArrayDepOutcome O;
    if (Opaque.count(X)) {
      O.Array = X;
      O.Independent = false;
      O.Detail = "accessed inside a call or while loop";
    } else {
      O = testArray(L, X, Accs, R);
    }
    countOutcome(O);
    R.Independent &= O.Independent;
    R.Arrays.push_back(std::move(O));
  }
  for (const Symbol *X : Opaque) {
    if (ByArray.count(X) || Privatized.count(X))
      continue;
    ArrayDepOutcome O;
    O.Array = X;
    O.Independent = false;
    O.Detail = "accessed inside a call or while loop";
    countOutcome(O);
    R.Independent = false;
    R.Arrays.push_back(std::move(O));
  }
  Span.arg("independent", R.Independent ? "yes" : "no");
  return R;
}

const DependenceTester::CfdFact &
DependenceTester::verifiedDistance(const DoStmt *L, const Symbol *Ptr,
                                   LoopDepResult &R) {
  auto [It, Inserted] = CfdCache.try_emplace(PropKey{Ptr, L});
  if (!Inserted) {
    ++prop_cache_hits;
    return It->second;
  }
  ++prop_cache_misses;
  auto Dist = ClosedFormDistanceChecker::discoverDistance(G.program(), Ptr);
  if (!Dist)
    return It->second;
  ClosedFormDistanceChecker CFD(Ptr, *Dist, Uses);
  Section S = Section::interval(SymExpr::fromAst(L->lower()),
                                SymExpr::fromAst(L->upper()) - 1);
  ++R.PropertyQueries;
  if (Solver.verifyBefore(L, CFD, S).Verified) {
    It->second.Verified = true;
    It->second.Recurrence = CFD.consumedRecurrenceFacts() > 0;
    It->second.Distance = *Dist;
  }
  return It->second;
}

const DependenceTester::CfbFact &
DependenceTester::verifiedBounds(const DoStmt *L, const Symbol *Y,
                                 LoopDepResult &R) {
  auto [It, Inserted] = CfbCache.try_emplace(PropKey{Y, L});
  if (!Inserted) {
    ++prop_cache_hits;
    return It->second;
  }
  ++prop_cache_misses;
  ClosedFormBoundChecker CFB(Y, Uses);
  Section S = Section::interval(SymExpr::fromAst(L->lower()),
                                SymExpr::fromAst(L->upper()) - 1);
  ++R.PropertyQueries;
  if (Solver.verifyBefore(L, CFB, S).Verified) {
    It->second.Verified = true;
    It->second.Bounds = CFB.valueBounds();
  }
  return It->second;
}

bool DependenceTester::accessRange(const Access &A, unsigned Dim, SymExpr &Lo,
                                   SymExpr &Hi) const {
  SymExpr E = SymExpr::fromAst(A.Ref->subscript(Dim));
  Lo = E;
  Hi = E;
  // Sweep the inner loops, innermost first.
  for (auto It = A.InnerLoops.rbegin(); It != A.InnerLoops.rend(); ++It) {
    const DoStmt *DS = *It;
    if (DS->step()) {
      SymExpr Step = SymExpr::fromAst(DS->step());
      if (!Step.isConstant() || Step.constValue() != 1)
        return false;
    }
    SymExpr LB = SymExpr::fromAst(DS->lower());
    SymExpr UB = SymExpr::fromAst(DS->upper());
    SymRange LoSw = rangeOverVar(Lo, DS->indexVar(), LB, UB);
    SymRange HiSw = rangeOverVar(Hi, DS->indexVar(), LB, UB);
    if (!LoSw.Lo.isFinite() || !HiSw.Hi.isFinite())
      return false;
    Lo = LoSw.Lo.E;
    Hi = HiSw.Hi.E;
  }
  return true;
}

ArrayDepOutcome DependenceTester::testArray(const DoStmt *L, const Symbol *X,
                                            const std::vector<Access> &Accs,
                                            LoopDepResult &R) {
  ArrayDepOutcome O;
  O.Array = X;
  const Symbol *I = L->indexVar();
  UseSet BodyW = Uses.bodyUses(L->body());

  RangeEnv Env;
  Consts.bindAll(Env);
  SymExpr LoL = SymExpr::fromAst(L->lower());
  SymExpr UpL = SymExpr::fromAst(L->upper());
  Env.bindVar(I, SymRange::of(LoL, UpL));

  // An expression is iteration-invariant (apart from i itself) when it
  // mentions no symbol the body writes.
  auto InvariantApartFromI = [&](const SymExpr &E) {
    for (const Symbol *W : BodyW.Writes)
      if (W != I && E.references(W))
        return false;
    return true;
  };

  // --- Tier 1: distinct-dimension affine test.
  for (unsigned D = 0; D < X->rank(); ++D) {
    bool AllSame = true;
    std::string Key;
    SymExpr First;
    for (const Access &A : Accs) {
      SymExpr E = SymExpr::fromAst(A.Ref->subscript(D));
      if (Key.empty()) {
        Key = E.key();
        First = E;
      } else if (E.key() != Key) {
        AllSame = false;
        break;
      }
    }
    if (!AllSame || Key.empty())
      continue;
    int64_t Coeff = First.coeffOfVar(I);
    SymExpr Rest = First - SymExpr::var(I) * Coeff;
    if (Coeff != 0 && !Rest.references(I) && InvariantApartFromI(Rest)) {
      O.Independent = true;
      O.Test = TestKind::DistinctDim;
      O.Detail = "dimension " + std::to_string(D + 1) +
                 " is a per-iteration slice";
      return O;
    }
  }

  // Runtime-check obligations that would settle the dependence if an
  // inspector established them for the actual index-array contents.
  // Attached to the outcome only when every static tier fails.
  std::vector<RuntimeCheck> Cands;

  // --- Tier 4 (checked for every rank): identical subscript q(f(i)) in
  // some dimension with q injective over the iteration space. Hoisted here
  // so rank-2 accesses like z(k, ind(j)) benefit from it as well.
  if (EnableIAA) {
    for (unsigned D = 0; D < X->rank(); ++D) {
      bool AllSame = true;
      std::string Key;
      SymExpr First;
      for (const Access &A : Accs) {
        SymExpr E = SymExpr::fromAst(A.Ref->subscript(D));
        if (Key.empty()) {
          Key = E.key();
          First = E;
        } else if (E.key() != Key) {
          AllSame = false;
          break;
        }
      }
      if (!AllSame || Key.empty())
        continue;
      AtomRef A = First.asSingleAtom();
      if (!A || A->kind() != AtomKind::ArrayElem ||
          A->operands().size() != 1)
        continue;
      const Symbol *Q = A->symbol();
      const SymExpr &Sub = A->operands()[0];
      int64_t Coeff = Sub.coeffOfVar(I);
      SymExpr Rest = Sub - SymExpr::var(I) * Coeff;
      if (Coeff == 0 || Rest.references(I) || !InvariantApartFromI(Rest))
        continue;
      SymRange SubRange = rangeOverVar(Sub, I, LoL, UpL);
      if (!SubRange.Lo.isFinite() || !SubRange.Hi.isFinite())
        continue;
      // For the plain gather shape q(i + c) with q untouched by the body,
      // injectivity and bounds are decidable by an O(n) scan of q's
      // contents just before the loop runs. Built up front: they become the
      // conditional plan when the static queries below come back Unknown,
      // and the *fallback* checks when the proof rests on a recurrence
      // fact (a strict audit that cannot re-derive the fact demotes the
      // plan back onto them).
      std::vector<RuntimeCheck> DimCands;
      if (Coeff == 1 && Rest.isConstant() && !BodyW.writes(Q) &&
          Q->elementKind() == ScalarKind::Int && Q->rank() == 1) {
        int64_t Shift = Rest.constValue();
        RuntimeCheck CInj;
        CInj.Kind = RuntimeCheckKind::InjectiveOnRange;
        CInj.Index = Q;
        CInj.LoAdjust = CInj.UpAdjust = Shift;
        RuntimeCheck Bd;
        Bd.Kind = RuntimeCheckKind::BoundsWithin;
        Bd.Index = Q;
        Bd.LoAdjust = Bd.UpAdjust = Shift;
        Bd.LoBound = 1;
        bool HaveBound = false;
        if (X->rank() == 1) {
          Bd.BoundedArray = X;
          HaveBound = true;
        } else if (SymExpr Ext = SymExpr::fromAst(X->extent(D));
                   Ext.isConstant()) {
          Bd.UpBound = Ext.constValue();
          HaveBound = true;
        }
        DimCands.push_back(CInj);
        if (HaveBound)
          DimCands.push_back(Bd);
      }

      InjectivityChecker Inj(Q, Uses);
      ++R.PropertyQueries;
      Section S = Section::interval(SubRange.Lo.E, SubRange.Hi.E);
      PropertyResult PR = Solver.verifyBefore(L, Inj, S);
      if (PR.Verified && Inj.genSites() == 1) {
        bool Rec = Inj.consumedRecurrenceFacts() > 0;
        O.Independent = true;
        O.Test = TestKind::Injective;
        O.PropertiesUsed = {Q->name() + (Rec ? ":INJ-REC" : ":INJ")};
        O.Detail = "subscript " + Q->name() + "(...) is injective";
        if (Rec) {
          O.RecurrenceBacked = true;
          O.FallbackChecks = DimCands;
        }
        return O;
      }
      // Strict monotonicity implies injectivity and is available for
      // recurrence-built arrays that no gather loop produced (a Sec. 3
      // property the paper lists; an extension beyond Table 3's cases).
      MonotonicChecker Mono(Q, /*Strict=*/true, Uses);
      ++R.PropertyQueries;
      Section SM = Section::interval(SubRange.Lo.E, SubRange.Hi.E - 1);
      PropertyResult MR = Solver.verifyBefore(L, Mono, SM);
      if (MR.Verified) {
        bool Rec = Mono.consumedRecurrenceFacts() > 0;
        O.Independent = true;
        O.Test = TestKind::Injective;
        O.PropertiesUsed = {Q->name() + (Rec ? ":MONO-REC" : ":MONO")};
        O.Detail = "subscript " + Q->name() + "(...) is strictly increasing";
        if (Rec) {
          O.RecurrenceBacked = true;
          O.FallbackChecks = DimCands;
        }
        return O;
      }
      // Neither injectivity nor strict monotonicity was provable from the
      // program text (Unknown, not disproven): record the obligations so
      // the planner can emit a runtime-conditional plan.
      Cands.insert(Cands.end(), DimCands.begin(), DimCands.end());
    }
  }

  if (X->rank() != 1) {
    O.Detail = "multi-dimensional access with no distinct dimension";
    O.RuntimeCandidates = std::move(Cands);
    return O;
  }

  // --- Tier 2: symbolic range test over [lo_a(i), hi_a(i)].
  struct Range {
    SymExpr Lo, Hi;
  };
  std::vector<Range> Ranges;
  bool Bounded = true;
  for (const Access &A : Accs) {
    Range Rg;
    if (!accessRange(A, 0, Rg.Lo, Rg.Hi) || !InvariantApartFromI(Rg.Lo) ||
        !InvariantApartFromI(Rg.Hi)) {
      Bounded = false;
      break;
    }
    Ranges.push_back(std::move(Rg));
  }

  auto PairwiseAscending = [&](const RangeEnv &E) {
    for (const Range &A : Ranges)
      for (const Range &B : Ranges) {
        SymExpr NextLo = B.Lo.substituteVar(I, SymExpr::var(I) + 1);
        if (!provablyLT(A.Hi, NextLo, E))
          return false;
      }
    return true;
  };
  auto PairwiseDescending = [&](const RangeEnv &E) {
    for (const Range &A : Ranges)
      for (const Range &B : Ranges) {
        SymExpr NextHi = B.Hi.substituteVar(I, SymExpr::var(I) + 1);
        if (!provablyLT(NextHi, A.Lo, E))
          return false;
      }
    return true;
  };

  if (Bounded && !Ranges.empty() && EnableRangeTest) {
    if (PairwiseAscending(Env) || PairwiseDescending(Env)) {
      O.Independent = true;
      O.Test = TestKind::RangeTest;
      O.Detail = "iteration ranges provably disjoint";
      return O;
    }

    // --- Tier 3: offset-length test (Sec. 3.2.7), IAA only.
    if (EnableIAA) {
      // Candidate index arrays: x() atoms subscripted exactly by i.
      std::set<const Symbol *> Candidates;
      for (const Range &Rg : Ranges)
        for (const SymExpr *E : {&Rg.Lo, &Rg.Hi})
          for (const auto &[Key, Term] : E->terms()) {
            const AtomRef &A = Term.first;
            if (A->kind() == AtomKind::ArrayElem &&
                A->operands().size() == 1 &&
                A->operands()[0].equals(SymExpr::var(I)))
              Candidates.insert(A->symbol());
          }

      // Parses the common CRS/CCS access shape [ptr(i)+a : ptr(i)+len(i)+b]
      // (or a constant-offset end) into its runtime-check obligations:
      // disjointness holds iff ptr is non-decreasing, len non-negative, and
      // each segment ends before the next one starts -- all O(n)
      // inspectable. Used both as the conditional plan when CFD/CFB
      // verification comes back Unknown and as the fallback checks of a
      // recurrence-backed proof.
      auto ParseCrsChecks = [&](const Symbol *Ptr) -> std::vector<RuntimeCheck> {
        if (Ptr->elementKind() != ScalarKind::Int || Ptr->rank() != 1 ||
            BodyW.writes(Ptr))
          return {};
        SymExpr PtrAtI = SymExpr::arrayElem(Ptr, {SymExpr::var(I)});
        const Symbol *Len = nullptr;
        bool Parsed = true, Any = false;
        bool HasHiLen = false, HasHiConst = false;
        int64_t MinLo = 0, MaxHiLen = 0, MaxHiConst = 0;
        for (const Range &Rg : Ranges) {
          SymExpr LoD = Rg.Lo - PtrAtI;
          if (!LoD.isConstant()) {
            Parsed = false;
            break;
          }
          SymExpr HiD = Rg.Hi - PtrAtI;
          int64_t HiC = HiD.constantTerm();
          bool HiLen = false;
          if (!HiD.isConstant()) {
            // The end must be exactly ptr(i) + len(i) + c.
            if (HiD.terms().size() != 1) {
              Parsed = false;
              break;
            }
            const auto &Term = HiD.terms().begin()->second;
            const AtomRef &At = Term.first;
            const Symbol *Y =
                At->kind() == AtomKind::ArrayElem ? At->symbol() : nullptr;
            if (Term.second != 1 || !Y || At->operands().size() != 1 ||
                !At->operands()[0].equals(SymExpr::var(I)) ||
                Y->elementKind() != ScalarKind::Int || Y->rank() != 1 ||
                BodyW.writes(Y) || (Len && Y != Len)) {
              Parsed = false;
              break;
            }
            Len = Y;
            HiLen = true;
          }
          MinLo = Any ? std::min(MinLo, LoD.constValue()) : LoD.constValue();
          Any = true;
          if (HiLen) {
            MaxHiLen = HasHiLen ? std::max(MaxHiLen, HiC) : HiC;
            HasHiLen = true;
          } else {
            MaxHiConst = HasHiConst ? std::max(MaxHiConst, HiC) : HiC;
            HasHiConst = true;
          }
        }
        if (!Parsed || !Any)
          return {};
        RuntimeCheck Mono;
        Mono.Kind = RuntimeCheckKind::MonotonicNonDecreasing;
        Mono.Index = Ptr;
        RuntimeCheck OL;
        OL.Kind = RuntimeCheckKind::OffsetLengthDisjoint;
        OL.Index = Ptr;
        OL.Length = Len;
        OL.AccessLo = MinLo;
        OL.HasHiLen = HasHiLen;
        OL.AccessHiLen = MaxHiLen;
        OL.HasHiConst = HasHiConst;
        OL.AccessHiConst = MaxHiConst;
        return {Mono, OL};
      };

      for (const Symbol *Ptr : Candidates) {
        const CfdFact &Fact = verifiedDistance(L, Ptr, R);
        if (!Fact.Verified)
          continue;
        const SymExpr &Dist = Fact.Distance;

        // Distance non-negativity: either an affine distance with a provable
        // lower bound, or a distance array with a verified CFB lower bound.
        RangeEnv Env2 = Env;
        bool NonNeg = false;
        std::vector<std::string> Props = {Ptr->name() + ":CFD"};
        SymExpr DistAtI =
            Dist.substituteVar(placeholderSymbol(), SymExpr::var(I));
        if (AtomRef DA = DistAtI.asSingleAtom();
            DA && DA->kind() == AtomKind::ArrayElem) {
          const Symbol *Y = DA->symbol();
          const CfbFact &BFact = verifiedBounds(L, Y, R);
          if (BFact.Verified && BFact.Bounds.Lo.isFinite() &&
              provablyNonNegative(BFact.Bounds.Lo.E, Env2)) {
            NonNeg = true;
            Env2.bindArrayValues(Y, BFact.Bounds);
            Props.push_back(Y->name() + ":CFB");
          }
        } else {
          NonNeg = provablyNonNegative(DistAtI, Env2);
        }
        if (!NonNeg)
          continue;

        // Rewrite ptr(i+1) -> ptr(i) + dist(i) in the shifted bounds and
        // retry the pairwise checks.
        std::string ShiftKey =
            Atom::arrayElem(Ptr, {SymExpr::var(I) + 1})->key();
        SymExpr PtrAtI = SymExpr::arrayElem(Ptr, {SymExpr::var(I)});
        SymExpr Rewritten = PtrAtI + DistAtI;
        auto CheckWithRewrite = [&]() {
          for (const Range &A : Ranges)
            for (const Range &B : Ranges) {
              SymExpr NextLo = replaceAtom(
                  B.Lo.substituteVar(I, SymExpr::var(I) + 1), ShiftKey,
                  Rewritten);
              if (!provablyLT(A.Hi, NextLo, Env2))
                return false;
            }
          return true;
        };
        if (CheckWithRewrite()) {
          O.Independent = true;
          O.Test = TestKind::OffsetLength;
          if (Fact.Recurrence)
            Props[0] = Ptr->name() + ":CFD-REC";
          O.PropertiesUsed = std::move(Props);
          O.Detail = "segments of " + Ptr->name() + " provably disjoint";
          if (Fact.Recurrence) {
            O.RecurrenceBacked = true;
            O.FallbackChecks = ParseCrsChecks(Ptr);
          }
          return O;
        }
      }

      // Runtime-checkable fallback: every access range of the common
      // CRS/CCS shape [ptr(i)+a : ptr(i)+len(i)+b] (or a constant-offset
      // end) is disjoint from the next iteration's iff ptr is
      // non-decreasing, len non-negative, and each segment ends before the
      // next one starts -- all O(n) inspectable when CFD/CFB verification
      // came back Unknown. Skipped when tier 4 already recorded an
      // injectivity obligation: that alone discharges the dependence, and
      // the inspector requires every recorded check to pass, so stacking
      // the strictly stronger monotonicity demand on top would reject
      // index data (e.g. a permutation) the weaker obligation accepts.
      if (!Cands.empty())
        Candidates.clear();
      for (const Symbol *Ptr : Candidates) {
        std::vector<RuntimeCheck> Checks = ParseCrsChecks(Ptr);
        if (Checks.empty())
          continue;
        Cands.insert(Cands.end(), Checks.begin(), Checks.end());
        break;
      }
    }
  }

  O.Detail = "no test disproved the dependence";
  O.RuntimeCandidates = std::move(Cands);
  return O;
}
