//===- analysis/ArrayProperty.h - Index-array property framework -*- C++ -*-=//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The property framework of Sec. 3: properties of index arrays (closed-form
/// value, closed-form distance, closed-form bound, injectivity) that make
/// indirect array accesses analyzable. The three roles of Fig. 4:
///
///  - the *demand generator* (a dependence test or the privatizer) builds a
///    PropertyChecker and a query section;
///  - the *query checker* (PropertySolver.h) propagates the query backward
///    through the HCG;
///  - the *property checker* (subclasses here) supplies per-statement and
///    per-loop (Kill, Gen) summaries by pattern matching (Sec. 3.2.8) and by
///    recognizing index gathering loops (Sec. 4), reusing the
///    single-indexed access analysis of Sec. 2 as Sec. 4 prescribes.
///
//===----------------------------------------------------------------------===//

#ifndef IAA_ANALYSIS_ARRAYPROPERTY_H
#define IAA_ANALYSIS_ARRAYPROPERTY_H

#include "analysis/SymbolUses.h"
#include "mf/Program.h"
#include "section/Section.h"
#include "symbolic/SymRange.h"

#include <functional>
#include <optional>

namespace iaa {
namespace analysis {

class RecurrenceCatalog;

/// The effect of executing a node on a property, per Sec. 3.2.3: Kill is a
/// MAY over-approximation, Gen a MUST under-approximation.
struct Effect {
  sec::Section Kill;
  sec::Section Gen;

  static Effect none() { return {}; }
  static Effect killAll() {
    return {sec::Section::universe(), sec::Section::empty()};
  }
};

/// Context handed to whole-loop summarizers: lets a checker ask for the
/// value of a scalar immediately before the loop (e.g. the gather counter's
/// reset value).
struct LoopContext {
  std::function<std::optional<sym::SymExpr>(const mf::Symbol *)> ValueBefore;
  /// Recurrence facts derived from index-array-building loops
  /// (RecurrenceSolver.h); null when the solver runs without a catalog.
  /// Checkers consult it only for recurrences that are *beyond* the
  /// statement-level pattern matches, so the classic paths stay identical.
  const RecurrenceCatalog *Recurrences = nullptr;
};

/// The property kinds of Sec. 3 (Table 3 abbreviations in parentheses).
enum class PropertyKind {
  ClosedFormValue,    ///< CFV: a(i) = f(i) for a known f.
  ClosedFormDistance, ///< CFD: a(i+1) - a(i) = d(i) for a known d.
  ClosedFormBound,    ///< CFB: all values of a() lie in a known range.
  Injective,          ///< a(i) != a(j) for i != j within a section.
  Monotonic,          ///< a(i+1) >= a(i) (or > for the strict variant).
};

/// Printable name of \p K ("CFV", "CFD", "CFB", "INJ").
const char *propertyKindName(PropertyKind K);

/// Base class of the property checkers (Fig. 4's PropertyChecker).
///
/// Checkers are stateful: while the solver propagates a query they
/// accumulate the *facts* implied by the Gen sites encountered (e.g. value
/// bounds). After a successful verification the caller must cross-check
/// factDependencies() against the writes seen along the propagation path
/// (the solver reports them) — a fact expressed in terms of a symbol that
/// was overwritten between definition and use is stale.
class PropertyChecker {
public:
  explicit PropertyChecker(const mf::Symbol *Target, const SymbolUses &Uses)
      : Target(Target), Uses(Uses) {}
  virtual ~PropertyChecker() = default;

  const mf::Symbol *targetArray() const { return Target; }
  virtual PropertyKind kind() const = 0;

  /// (Kill, Gen) of one assignment (SummarizeSimpleNode of Sec. 3.2.4).
  virtual Effect summarizeAssign(const mf::AssignStmt *S) = 0;

  /// Whole-loop pattern match; std::nullopt lets the solver fall back to
  /// the generic aggregation of Sec. 3.2.5.
  virtual std::optional<Effect> summarizeLoop(const mf::DoStmt *L,
                                              const LoopContext &Ctx) {
    (void)L;
    (void)Ctx;
    return std::nullopt;
  }

  /// Symbols the accumulated facts depend on; a write to any of them along
  /// the propagation path invalidates the verification.
  virtual UseSet factDependencies() const { return {}; }

  /// Number of distinct sites whose Gen was nonempty during the solve.
  /// Injectivity consumers require exactly one (two separately injective
  /// sections are not jointly injective).
  unsigned genSites() const { return GenSites; }

  /// Number of recurrence-catalog facts this checker consumed during the
  /// solve. Nonzero marks the verification as recurrence-backed: the
  /// dependence tester records fallback runtime checks for it and the
  /// solver charges kill-shadow invalidations to the recurrence stats.
  virtual unsigned consumedRecurrenceFacts() const { return 0; }

protected:
  const mf::Symbol *Target;
  const SymbolUses &Uses;
  unsigned GenSites = 0;
};

/// Verifies a(pos+1) - a(pos) == Distance(pos) on the query section, where
/// Distance is expressed in terms of sym::placeholderSymbol(). Use
/// discoverDistance() to obtain the candidate from the program text.
class ClosedFormDistanceChecker : public PropertyChecker {
public:
  ClosedFormDistanceChecker(const mf::Symbol *Target, sym::SymExpr Distance,
                            const SymbolUses &Uses)
      : PropertyChecker(Target, Uses), Distance(std::move(Distance)) {}

  PropertyKind kind() const override {
    return PropertyKind::ClosedFormDistance;
  }
  Effect summarizeAssign(const mf::AssignStmt *S) override;
  std::optional<Effect> summarizeLoop(const mf::DoStmt *L,
                                      const LoopContext &Ctx) override;
  UseSet factDependencies() const override;
  unsigned consumedRecurrenceFacts() const override { return ConsumedFacts; }

  const sym::SymExpr &distance() const { return Distance; }

  /// Scans every assignment to \p Target for the recurrence pattern
  /// `x(e+1) = x(e) + d` (Sec. 3.2.8) and returns the common distance in
  /// terms of the placeholder, or nullopt when the defs disagree or no
  /// recurrence exists.
  static std::optional<sym::SymExpr>
  discoverDistance(const mf::Program &P, const mf::Symbol *Target);

  /// True when, additionally, a base definition `x(c) = const` exists, i.e.
  /// the array has a closed-form *value*, not just a distance (this is what
  /// distinguishes the CFV rows of Table 3 from the CFD rows).
  static bool hasConstantBase(const mf::Program &P, const mf::Symbol *Target);

private:
  /// Matches `x(e+1) = x(e) + d` and returns (position e, distance at e).
  std::optional<std::pair<sym::SymExpr, sym::SymExpr>>
  matchRecurrence(const mf::AssignStmt *S) const;

  sym::SymExpr Distance;
  UseSet ConsumedDeps;
  unsigned ConsumedFacts = 0;
};

/// Verifies a(pos) == Value(pos) on the query section (the Fig. 8 example);
/// Value is in terms of sym::placeholderSymbol().
class ClosedFormValueChecker : public PropertyChecker {
public:
  ClosedFormValueChecker(const mf::Symbol *Target, sym::SymExpr Value,
                         const SymbolUses &Uses)
      : PropertyChecker(Target, Uses), Value(std::move(Value)) {}

  PropertyKind kind() const override { return PropertyKind::ClosedFormValue; }
  Effect summarizeAssign(const mf::AssignStmt *S) override;
  UseSet factDependencies() const override;

private:
  sym::SymExpr Value;
};

/// Verifies that the values in the query section of the target array are
/// bounded, and *discovers* the bounds (accumulated as a hull over all Gen
/// sites: direct definitions and index gathering loops).
class ClosedFormBoundChecker : public PropertyChecker {
public:
  ClosedFormBoundChecker(const mf::Symbol *Target, const SymbolUses &Uses)
      : PropertyChecker(Target, Uses) {}

  PropertyKind kind() const override { return PropertyKind::ClosedFormBound; }
  Effect summarizeAssign(const mf::AssignStmt *S) override;
  std::optional<Effect> summarizeLoop(const mf::DoStmt *L,
                                      const LoopContext &Ctx) override;
  UseSet factDependencies() const override;

  /// The discovered value bounds (valid only after a successful solve).
  const sym::SymRange &valueBounds() const { return Bounds; }

private:
  void widen(const sym::SymRange &R);

  sym::SymRange Bounds = sym::SymRange::of(sym::SymExpr::constant(0),
                                           sym::SymExpr::constant(0));
  bool Sawany = false;
};

/// Verifies that the target array is monotonically non-decreasing (or
/// strictly increasing) across the query section. Sec. 3 lists
/// monotonicity among the useful index-array properties; a strictly
/// increasing subscript array makes accesses through it pairwise distinct,
/// which the dependence test uses as an alternative to injectivity (a
/// recurrence-built offset array is strictly increasing but is not the
/// product of a gather loop).
///
/// Generation sites: index gathering loops (gathered values are strictly
/// increasing by construction) and recurrences x(e+1) = x(e) + d with d
/// provably >= 1 (>= 0 for the non-strict variant) under the enclosing
/// loop bounds.
class MonotonicChecker : public PropertyChecker {
public:
  MonotonicChecker(const mf::Symbol *Target, bool Strict,
                   const SymbolUses &Uses)
      : PropertyChecker(Target, Uses), Strict(Strict) {}

  PropertyKind kind() const override { return PropertyKind::Monotonic; }
  Effect summarizeAssign(const mf::AssignStmt *S) override;
  std::optional<Effect> summarizeLoop(const mf::DoStmt *L,
                                      const LoopContext &Ctx) override;
  UseSet factDependencies() const override { return ConsumedDeps; }
  unsigned consumedRecurrenceFacts() const override { return ConsumedFacts; }

  bool strict() const { return Strict; }

private:
  bool Strict;
  UseSet ConsumedDeps;
  unsigned ConsumedFacts = 0;
};

/// Verifies that the values in the query section are pairwise distinct.
/// Only index gathering loops generate injectivity (Sec. 4).
class InjectivityChecker : public PropertyChecker {
public:
  InjectivityChecker(const mf::Symbol *Target, const SymbolUses &Uses)
      : PropertyChecker(Target, Uses) {}

  PropertyKind kind() const override { return PropertyKind::Injective; }
  Effect summarizeAssign(const mf::AssignStmt *S) override;
  std::optional<Effect> summarizeLoop(const mf::DoStmt *L,
                                      const LoopContext &Ctx) override;
  UseSet factDependencies() const override { return ConsumedDeps; }
  unsigned consumedRecurrenceFacts() const override { return ConsumedFacts; }

private:
  UseSet ConsumedDeps;
  unsigned ConsumedFacts = 0;
};

/// The symbolic value range of \p E at statement \p S, sweeping every
/// enclosing do-loop index over its bounds (innermost first). Used to bound
/// the right-hand sides of index-array definitions.
sym::SymRange valueRangeAt(const sym::SymExpr &E, const mf::Stmt *S);

/// A RangeEnv binding every do-loop index enclosing \p S to its bounds.
sym::RangeEnv envAt(const mf::Stmt *S);

} // namespace analysis
} // namespace iaa

#endif // IAA_ANALYSIS_ARRAYPROPERTY_H
