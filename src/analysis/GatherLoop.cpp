//===- analysis/GatherLoop.cpp - Index gathering loop recognition ---------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "analysis/GatherLoop.h"

#include "analysis/BoundedDfs.h"
#include "analysis/SingleIndex.h"
#include "symbolic/SymExpr.h"

using namespace iaa;
using namespace iaa::analysis;
using namespace iaa::cfg;
using namespace iaa::mf;

GatherLoopInfo iaa::analysis::analyzeGatherLoop(const DoStmt *L,
                                                const Symbol *X,
                                                const SymbolUses &Uses) {
  GatherLoopInfo Info;
  Info.Loop = L;
  Info.IndexArray = X;

  // Condition (1): a do loop with unit step.
  if (L->step()) {
    sym::SymExpr Step = sym::SymExpr::fromAst(L->step());
    if (!Step.isConstant() || Step.constValue() != 1)
      return Info;
  }

  // Conditions (2) and (3): single-indexed and consecutively written.
  SingleIndexAnalysis SIA(L->body(), Uses);
  SingleIndexResult SR = SIA.classify(X);
  if (!SR.IsSingleIndexed || !SR.ConsecutivelyWritten)
    return Info;
  // The gathered array must only be written in the loop (reads of ind()
  // inside the gathering loop would see partially built data).
  if (SR.HasReads)
    return Info;

  // Condition (4): every assignment to X stores exactly the loop index.
  sym::SymExpr LoopIndex = sym::SymExpr::var(L->indexVar());
  bool AllStoresAreIndex = true;
  Program::forEachStmtIn(L->body(), [&](Stmt *S) {
    const auto *AS = dyn_cast<AssignStmt>(S);
    if (!AS || !AS->arrayTarget() || AS->arrayTarget()->array() != X)
      return;
    if (!(sym::SymExpr::fromAst(AS->rhs()) - LoopIndex).isZero())
      AllStoresAreIndex = false;
  });
  if (!AllStoresAreIndex)
    return Info;

  // Condition (5): one assignment of X cannot reach another without first
  // reaching the loop header. On the body's flat CFG (whose back edges only
  // cover *inner* loops), reaching another write of X means two stores in
  // the same outer iteration — which could duplicate a gathered value.
  const FlatCfg &G = SIA.graph();
  auto WritesX = [&](unsigned N) {
    const auto *AS = dyn_cast_if_present<AssignStmt>(G.node(N).S);
    return AS && AS->arrayTarget() && AS->arrayTarget()->array() == X;
  };
  for (unsigned I = 0; I < G.size(); ++I) {
    if (!WritesX(I))
      continue;
    if (!boundedDfs(G, I, /*FBound=*/[](unsigned) { return false; },
                    /*FJailed=*/WritesX))
      return Info;
  }

  Info.IsGatherLoop = true;
  Info.Counter = SR.IndexVar;
  Info.Injective = true;
  Info.ValueBounds = sym::SymRange::of(sym::SymExpr::fromAst(L->lower()),
                                       sym::SymExpr::fromAst(L->upper()));
  return Info;
}
