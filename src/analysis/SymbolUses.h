//===- analysis/SymbolUses.h - Read/write symbol summaries ------*- C++ -*-===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cheap flow-insensitive summaries of which symbols a statement subtree or
/// a procedure (transitively, through calls) reads and writes. Used to keep
/// conservative analyses conservative: a call or while loop that touches a
/// tracked symbol invalidates the more precise pattern-based reasoning.
///
//===----------------------------------------------------------------------===//

#ifndef IAA_ANALYSIS_SYMBOLUSES_H
#define IAA_ANALYSIS_SYMBOLUSES_H

#include "mf/Program.h"

#include <set>
#include <unordered_map>

namespace iaa {
namespace analysis {

/// Sets of symbols read and written by some program fragment.
struct UseSet {
  std::set<const mf::Symbol *> Reads;
  std::set<const mf::Symbol *> Writes;

  bool reads(const mf::Symbol *S) const { return Reads.count(S) != 0; }
  bool writes(const mf::Symbol *S) const { return Writes.count(S) != 0; }
  bool touches(const mf::Symbol *S) const { return reads(S) || writes(S); }

  void merge(const UseSet &Other) {
    Reads.insert(Other.Reads.begin(), Other.Reads.end());
    Writes.insert(Other.Writes.begin(), Other.Writes.end());
  }
};

/// Computes and caches transitive read/write sets per procedure.
class SymbolUses {
public:
  explicit SymbolUses(const mf::Program &P);

  /// The transitive use set of procedure \p P (through nested calls).
  const UseSet &procedureUses(const mf::Procedure *P) const;

  /// The use set of one statement subtree (transitive through calls).
  UseSet stmtUses(const mf::Stmt *S) const;

  /// The use set of a statement list (transitive through calls).
  UseSet bodyUses(const mf::StmtList &Body) const;

  /// Collects symbols read by expression \p E (array symbols and all symbols
  /// inside subscripts) into \p Out.
  static void exprReads(const mf::Expr *E, UseSet &Out);

private:
  void accumulate(const mf::Stmt *S, UseSet &Out) const;

  std::unordered_map<const mf::Procedure *, UseSet> ProcUses;
};

} // namespace analysis
} // namespace iaa

#endif // IAA_ANALYSIS_SYMBOLUSES_H
