//===- analysis/RecurrenceSolver.cpp - Recurrence facts for index arrays --===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "analysis/RecurrenceSolver.h"

#include "analysis/ArrayProperty.h"
#include "support/Statistic.h"

#include <functional>
#include <set>

using namespace iaa;
using namespace iaa::analysis;
using namespace iaa::mf;
using namespace iaa::sym;

#define IAA_STAT_GROUP "recurrence"
IAA_STAT(recurrence_facts_derived,
         "Recurrence facts derived from index-array building loops");
IAA_STAT(recurrence_facts_consumed,
         "Recurrence facts consumed by property checkers");
IAA_STAT(recurrence_facts_killed,
         "Consumed recurrence facts invalidated by path writes");
IAA_STAT(recurrence_loops_promoted,
         "Loops promoted from runtime-conditional to static parallel");

void iaa::analysis::countRecurrenceFactConsumed() {
  ++recurrence_facts_consumed;
}
void iaa::analysis::countRecurrenceFactKilled() { ++recurrence_facts_killed; }
void iaa::analysis::countRecurrencePromotion() { ++recurrence_loops_promoted; }

const char *iaa::analysis::recurrenceClassName(RecurrenceClass C) {
  switch (C) {
  case RecurrenceClass::None:               return "none";
  case RecurrenceClass::Bounded:            return "bounded";
  case RecurrenceClass::MonotoneNonDec:     return "monotone-nondec";
  case RecurrenceClass::StrictlyIncreasing: return "strictly-increasing";
  }
  return "?";
}

SymExpr RecurrenceFact::elemHi() const { return PairHi + 1; }

std::string RecurrenceFact::describe() const {
  std::string S = Array->name();
  S += ": ";
  S += recurrenceClassName(Class);
  S += Accumulator ? " accumulator" : " direct";
  S += " recurrence, pairs [" + PairLo.str() + " : " + PairHi.str() + "]";
  if (Distance)
    S += ", distance " + Distance->str();
  if (StepBounds.Lo || StepBounds.Hi)
    S += ", step in " + StepBounds.str();
  if (Conditional)
    S += ", conditional";
  return S;
}

namespace {

/// Collects every program symbol mentioned by \p E (transitively through
/// atom operands and subscripts) into \p Out.Reads.
void collectExprSymbols(const SymExpr &E, UseSet &Out);

void collectAtomSyms(const AtomRef &A, UseSet &Out) {
  if (A->symbol())
    Out.Reads.insert(A->symbol());
  for (const SymExpr &Operand : A->operands())
    collectExprSymbols(Operand, Out);
}

void collectExprSymbols(const SymExpr &E, UseSet &Out) {
  for (const auto &[Key, Term] : E.terms())
    collectAtomSyms(Term.first, Out);
}

/// Matches `x(e+1) = x(e) + d` for array \p X; returns (read position e,
/// step d). Same pattern as ClosedFormDistanceChecker::matchRecurrence, but
/// usable without a checker instance.
std::optional<std::pair<SymExpr, SymExpr>>
matchDirectRecurrence(const AssignStmt *S, const Symbol *X) {
  const mf::ArrayRef *LHS = S->arrayTarget();
  if (!LHS || LHS->array() != X || LHS->rank() != 1)
    return std::nullopt;
  SymExpr E1 = SymExpr::fromAst(LHS->subscript(0));
  SymExpr Rhs = SymExpr::fromAst(S->rhs());
  AtomRef XTerm;
  for (const auto &[Key, Term] : Rhs.terms()) {
    const auto &[A, Coeff] = Term;
    if (!A->references(X))
      continue;
    if (XTerm || Coeff != 1 || A->kind() != AtomKind::ArrayElem ||
        A->symbol() != X)
      return std::nullopt;
    XTerm = A;
  }
  if (!XTerm)
    return std::nullopt;
  SymExpr E2 = XTerm->operands()[0];
  if (E2.references(X))
    return std::nullopt;
  if (!(E1 - E2 - 1).isZero())
    return std::nullopt;
  SymExpr D = Rhs - SymExpr::atom(XTerm);
  if (D.references(X))
    return std::nullopt;
  return std::make_pair(E2, D);
}

/// True when \p L has the default unit step (or a literal step of 1).
bool hasUnitStep(const DoStmt *L) {
  if (!L->step())
    return true;
  const auto *Lit = dyn_cast<IntLit>(L->step());
  return Lit && Lit->value() == 1;
}

/// The loop indices of \p L and every enclosing do loop — control variables
/// that must never appear in a fact's dependency set (they are rebound by
/// their loops, and later unrelated loops legitimately overwrite them).
std::set<const Symbol *> controlVars(const DoStmt *L) {
  std::set<const Symbol *> Out;
  Out.insert(L->indexVar());
  for (const Stmt *P = L->parent(); P; P = P->parent())
    if (const auto *DS = dyn_cast<DoStmt>(P))
      Out.insert(DS->indexVar());
  return Out;
}

/// Whole-program hull of every value ever assigned to array \p Y, widened
/// with 0 (unwritten elements read as zero-initialized memory). Sound
/// regardless of control flow: any element of Y holds either 0 or some
/// assigned value.
SymRange wholeProgramValueHull(const Program &P, const Symbol *Y) {
  SymRange Hull = SymRange::point(SymExpr::constant(0));
  bool Bail = false;
  P.forEachStmt([&](Stmt *S) {
    if (Bail)
      return;
    const auto *AS = dyn_cast<AssignStmt>(S);
    if (!AS || AS->writtenSymbol() != Y)
      return;
    SymRange R = valueRangeAt(SymExpr::fromAst(AS->rhs()), AS);
    if (!R.Lo.isFinite() || !R.Hi.isFinite()) {
      Bail = true;
      return;
    }
    Hull.Lo = SymBound::finite(SymExpr::min(Hull.Lo.E, R.Lo.E));
    Hull.Hi = SymBound::finite(SymExpr::max(Hull.Hi.E, R.Hi.E));
  });
  return Bail ? SymRange::all() : Hull;
}

} // namespace

//===----------------------------------------------------------------------===//
// RecurrenceCatalog
//===----------------------------------------------------------------------===//

RecurrenceCatalog::RecurrenceCatalog(const Program &P, const SymbolUses &Uses)
    : Prog(P) {
  P.forEachStmt([&](Stmt *S) {
    if (const auto *L = dyn_cast<DoStmt>(S))
      analyzeLoop(L, Uses);
  });
}

const RecurrenceFact *RecurrenceCatalog::factFor(const DoStmt *L,
                                                 const Symbol *X) const {
  auto It = Index.find({L, X});
  return It == Index.end() ? nullptr : &Facts[It->second];
}

void RecurrenceCatalog::addFact(RecurrenceFact F) {
  Index[{F.Loop, F.Array}] = static_cast<unsigned>(Facts.size());
  Facts.push_back(std::move(F));
  ++recurrence_facts_derived;
}

void RecurrenceCatalog::analyzeLoop(const DoStmt *L, const SymbolUses &Uses) {
  if (!hasUnitStep(L))
    return;
  const Symbol *I = L->indexVar();
  SymExpr Lo = SymExpr::fromAst(L->lower());
  SymExpr Up = SymExpr::fromAst(L->upper());

  // The loop-control contract: neither the index nor any symbol of the
  // bounds may be written by the body.
  UseSet BodyU = Uses.bodyUses(L->body());
  if (BodyU.writes(I))
    return;
  UseSet BoundReads;
  SymbolUses::exprReads(L->lower(), BoundReads);
  SymbolUses::exprReads(L->upper(), BoundReads);
  for (const Symbol *S : BoundReads.Reads)
    if (BodyU.writes(S))
      return;

  std::set<const Symbol *> Control = controlVars(L);

  // Per-top-level-statement transitive use sets, reused by both recognizers.
  std::vector<UseSet> StmtU;
  StmtU.reserve(L->body().size());
  for (const Stmt *S : L->body())
    StmtU.push_back(Uses.stmtUses(S));

  auto OnlyWriterOf = [&](const Symbol *X, unsigned Idx) {
    for (unsigned K = 0; K < StmtU.size(); ++K)
      if (K != Idx && StmtU[K].writes(X))
        return false;
    return true;
  };

  auto FactDeps = [&](const UseSet &StepSyms) {
    UseSet Deps;
    Deps.Reads = StepSyms.Reads;
    SymbolUses::exprReads(L->lower(), Deps);
    SymbolUses::exprReads(L->upper(), Deps);
    for (const Symbol *C : Control)
      Deps.Reads.erase(C);
    Deps.Reads.erase(placeholderSymbol());
    return Deps;
  };

  for (unsigned Idx = 0; Idx < L->body().size(); ++Idx) {
    const auto *AS = dyn_cast<AssignStmt>(L->body()[Idx]);
    if (!AS)
      continue;
    const Symbol *X = AS->writtenSymbol();
    if (!X || !X->isArray() || X->rank() != 1 ||
        X->elementKind() != ScalarKind::Int)
      continue;
    if (Index.count({L, X}) || !OnlyWriterOf(X, Idx))
      continue;

    // --- Shape 1: direct recurrence x(e+1) = x(e) + d. --------------------
    if (auto Match = matchDirectRecurrence(AS, X)) {
      const auto &[Pos, D] = *Match;
      SymExpr Rest = Pos - SymExpr::var(I);
      if (Pos.coeffOfVar(I) != 1 || !Rest.isConstant())
        continue;
      int64_t C = Rest.constValue();

      // Classify the step sources. Scalars must be loop-invariant; array
      // sources must either be defined earlier in this body at the same
      // subscript (the read sees exactly the final value) or be untouched
      // by the body (the read sees the pre-loop = post-loop value).
      UseSet StepSyms;
      collectExprSymbols(D, StepSyms);
      RangeEnv Env = envAt(AS);
      bool OK = true, ReadsArray = false, DefinedInBody = false;
      for (const Symbol *S : StepSyms.Reads) {
        if (!OK)
          break;
        if (Control.count(S))
          continue;
        if (!S->isArray()) {
          if (BodyU.writes(S))
            OK = false;
          continue;
        }
        ReadsArray = true;
        if (S->rank() != 1) {
          OK = false;
          continue;
        }
        if (!BodyU.writes(S)) {
          Env.bindArrayValues(S, wholeProgramValueHull(Prog, S));
          continue;
        }
        // Find the unique in-body definition: a preceding top-level
        // assignment y(sub) = rhs with sub bijective in the loop index.
        unsigned DefIdx = 0;
        while (DefIdx < StmtU.size() && !StmtU[DefIdx].writes(S))
          ++DefIdx;
        const AssignStmt *Def =
            DefIdx < Idx ? dyn_cast<AssignStmt>(L->body()[DefIdx]) : nullptr;
        if (!Def || !OnlyWriterOf(S, DefIdx)) {
          OK = false;
          continue;
        }
        const mf::ArrayRef *DefT = Def->arrayTarget();
        if (!DefT || DefT->array() != S || DefT->rank() != 1) {
          OK = false;
          continue;
        }
        SymExpr DefSub = SymExpr::fromAst(DefT->subscript(0));
        if (DefSub.coeffOfVar(I) != 1 ||
            !(DefSub - SymExpr::var(I)).isConstant()) {
          OK = false;
          continue;
        }
        // Every appearance of the array in the step must be exactly the
        // defined element.
        for (const auto &[Key, Term] : D.terms()) {
          const AtomRef &A = Term.first;
          if (!A->references(S))
            continue;
          if (A->kind() != AtomKind::ArrayElem || A->symbol() != S ||
              !A->operands()[0].equals(DefSub)) {
            OK = false;
            break;
          }
        }
        if (!OK)
          continue;
        DefinedInBody = true;
        Env.bindArrayValues(S,
                            valueRangeAt(SymExpr::fromAst(Def->rhs()), Def));
      }
      if (!OK)
        continue;

      RecurrenceFact F;
      F.Array = X;
      F.Loop = L;
      F.StepReadsArray = ReadsArray;
      F.StepDefinedInBody = DefinedInBody;
      F.PairLo = Lo + C;
      F.PairHi = Up + C;
      F.WriteLo = Lo + C + 1;
      F.WriteHi = Up + C + 1;
      F.Distance = D.substituteVar(
          I, SymExpr::var(placeholderSymbol()) - SymExpr::constant(C));
      F.StepBounds = evalConstRange(D, Env);
      if (provablyPositive(D, Env))
        F.Class = RecurrenceClass::StrictlyIncreasing;
      else if (provablyNonNegative(D, Env))
        F.Class = RecurrenceClass::MonotoneNonDec;
      else if (F.StepBounds.Lo && F.StepBounds.Hi)
        F.Class = RecurrenceClass::Bounded;
      else
        F.Class = RecurrenceClass::None;
      F.Deps = FactDeps(StepSyms);
      addFact(std::move(F));
      continue;
    }

    // --- Shape 2: accumulator prefix sum p = p + d ... x(e) = p. ----------
    SymExpr Rhs = SymExpr::fromAst(AS->rhs());
    AtomRef AccAtom = Rhs.asSingleAtom();
    if (!AccAtom || AccAtom->kind() != AtomKind::Var)
      continue;
    const Symbol *Acc = AccAtom->symbol();
    if (!Acc || Acc->isArray() || Acc->elementKind() != ScalarKind::Int ||
        Control.count(Acc))
      continue;
    const mf::ArrayRef *StoreT = AS->arrayTarget();
    if (!StoreT || StoreT->rank() != 1)
      continue;
    SymExpr E = SymExpr::fromAst(StoreT->subscript(0));
    if (E.coeffOfVar(I) != 1 || !(E - SymExpr::var(I)).isConstant())
      continue;
    int64_t C = (E - SymExpr::var(I)).constValue();

    // Every write to the accumulator anywhere in the body must be a
    // self-increment; track whether it executes unconditionally (a direct
    // child of the loop) or under a branch / inner loop. Whiles and calls
    // touching the accumulator are opaque: bail.
    bool OK = true, SawCondUpdate = false, AllNonNeg = true;
    bool HasUncondPositive = false;
    UseSet StepSyms;
    StepSyms.Reads.insert(Acc);
    std::function<void(const StmtList &, bool)> Scan =
        [&](const StmtList &Body, bool UnderCond) {
          for (const Stmt *S : Body) {
            if (!OK)
              return;
            if (S == AS)
              continue;
            switch (S->kind()) {
            case StmtKind::Assign: {
              const auto *A = cast<AssignStmt>(S);
              if (A->writtenSymbol() != Acc)
                continue;
              SymExpr R = SymExpr::fromAst(A->rhs());
              if (R.coeffOfVar(Acc) != 1) {
                OK = false; // reset or rescale: not a running sum
                return;
              }
              SymExpr D = R - SymExpr::var(Acc);
              if (D.references(Acc) || D.references(X)) {
                OK = false;
                return;
              }
              UseSet DS;
              collectExprSymbols(D, DS);
              for (const Symbol *Sym : DS.Reads)
                if (Sym->isArray() || (!Control.count(Sym) &&
                                       Sym != Acc && BodyU.writes(Sym))) {
                  OK = false;
                  return;
                }
              StepSyms.merge(DS);
              RangeEnv Env = envAt(A);
              bool NonNeg = provablyNonNegative(D, Env);
              AllNonNeg = AllNonNeg && NonNeg;
              if (!UnderCond && provablyPositive(D, Env))
                HasUncondPositive = true;
              SawCondUpdate = SawCondUpdate || UnderCond;
              continue;
            }
            case StmtKind::If: {
              const auto *IS = cast<IfStmt>(S);
              Scan(IS->thenBody(), /*UnderCond=*/true);
              Scan(IS->elseBody(), /*UnderCond=*/true);
              continue;
            }
            case StmtKind::Do:
              Scan(cast<DoStmt>(S)->body(), /*UnderCond=*/true);
              continue;
            case StmtKind::While:
            case StmtKind::Call:
              if (Uses.stmtUses(S).writes(Acc) || Uses.stmtUses(S).writes(X))
                OK = false;
              continue;
            }
          }
        };
    Scan(L->body(), /*UnderCond=*/false);
    if (!OK || !AllNonNeg)
      continue;

    RecurrenceFact F;
    F.Array = X;
    F.Loop = L;
    F.Accumulator = true;
    F.AccumulatorSym = Acc;
    F.Conditional = SawCondUpdate;
    F.PairLo = Lo + C;
    F.PairHi = Up + C - 1;
    F.WriteLo = Lo + C;
    F.WriteHi = Up + C;
    F.Class = HasUncondPositive ? RecurrenceClass::StrictlyIncreasing
                                : RecurrenceClass::MonotoneNonDec;
    F.Deps = FactDeps(StepSyms);
    F.Deps.Reads.insert(Acc);
    addFact(std::move(F));
  }
}
