//===- analysis/BoundedDfs.cpp - The bounded DFS of Fig. 2 ----------------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "analysis/BoundedDfs.h"

#include "support/Statistic.h"
#include "support/Trace.h"

#include <vector>

using namespace iaa;
using namespace iaa::analysis;
using namespace iaa::cfg;

#define IAA_STAT_GROUP "bdfs"
IAA_STAT(bdfs_searches, "Bounded DFS invocations");
IAA_STAT(bdfs_nodes_visited, "Nodes visited by the bounded DFS");
IAA_STAT(bdfs_early_terminations, "Bounded DFS runs ended by a jailed node");

bool iaa::analysis::boundedDfs(const FlatCfg &G, unsigned Start,
                               const std::function<bool(unsigned)> &FBound,
                               const std::function<bool(unsigned)> &FJailed,
                               BdfsStats *Stats) {
  trace::TraceScope Span("bdfs", "analysis");
  ++bdfs_searches;
  unsigned Nodes = 0;
  std::vector<bool> Visited(G.size(), false);
  std::vector<unsigned> Stack;

  // The iterative equivalent of Fig. 2: a node is pushed only after its
  // visited flag is set; successors are screened with fjailed before the
  // visited check.
  Visited[Start] = true;
  Stack.push_back(Start);
  while (!Stack.empty()) {
    unsigned U = Stack.back();
    Stack.pop_back();
    ++Nodes;
    if (Stats)
      ++Stats->NodesVisited;
    if (FBound(U))
      continue; // Boundary: do not expand U's successors.
    for (unsigned V : G.node(U).Succs) {
      if (FJailed(V)) {
        // Early termination: the whole bDFS fails.
        bdfs_nodes_visited += Nodes;
        ++bdfs_early_terminations;
        Span.arg("verdict", "jailed");
        return false;
      }
      if (!Visited[V]) {
        Visited[V] = true;
        Stack.push_back(V);
      }
    }
  }
  bdfs_nodes_visited += Nodes;
  Span.arg("verdict", "completed");
  return true;
}
