//===- analysis/BoundedDfs.cpp - The bounded DFS of Fig. 2 ----------------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "analysis/BoundedDfs.h"

#include <vector>

using namespace iaa;
using namespace iaa::analysis;
using namespace iaa::cfg;

bool iaa::analysis::boundedDfs(const FlatCfg &G, unsigned Start,
                               const std::function<bool(unsigned)> &FBound,
                               const std::function<bool(unsigned)> &FJailed,
                               BdfsStats *Stats) {
  std::vector<bool> Visited(G.size(), false);
  std::vector<unsigned> Stack;

  // The iterative equivalent of Fig. 2: a node is pushed only after its
  // visited flag is set; successors are screened with fjailed before the
  // visited check.
  Visited[Start] = true;
  Stack.push_back(Start);
  while (!Stack.empty()) {
    unsigned U = Stack.back();
    Stack.pop_back();
    if (Stats)
      ++Stats->NodesVisited;
    if (FBound(U))
      continue; // Boundary: do not expand U's successors.
    for (unsigned V : G.node(U).Succs) {
      if (FJailed(V))
        return false; // Early termination: the whole bDFS fails.
      if (!Visited[V]) {
        Visited[V] = true;
        Stack.push_back(V);
      }
    }
  }
  return true;
}
