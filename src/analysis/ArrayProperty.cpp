//===- analysis/ArrayProperty.cpp - Index-array property checkers ---------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "analysis/ArrayProperty.h"

#include "analysis/GatherLoop.h"
#include "analysis/RecurrenceSolver.h"

#include <set>

using namespace iaa;
using namespace iaa::analysis;
using namespace iaa::mf;
using namespace iaa::sec;
using namespace iaa::sym;

const char *iaa::analysis::propertyKindName(PropertyKind K) {
  switch (K) {
  case PropertyKind::ClosedFormValue:    return "CFV";
  case PropertyKind::ClosedFormDistance: return "CFD";
  case PropertyKind::ClosedFormBound:    return "CFB";
  case PropertyKind::Injective:          return "INJ";
  case PropertyKind::Monotonic:          return "MONO";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// Context helpers
//===----------------------------------------------------------------------===//

RangeEnv iaa::analysis::envAt(const Stmt *S) {
  RangeEnv Env;
  for (const Stmt *P = S->parent(); P; P = P->parent())
    if (const auto *DS = dyn_cast<DoStmt>(P))
      Env.bindVar(DS->indexVar(),
                  SymRange::of(SymExpr::fromAst(DS->lower()),
                               SymExpr::fromAst(DS->upper())));
  return Env;
}

/// Sweeps one symbolic bound over a loop index, keeping the requested side.
static SymBound sweepBound(const SymBound &B, const Symbol *I,
                           const SymExpr &Lo, const SymExpr &Up,
                           bool KeepLower) {
  if (!B.isFinite())
    return B;
  SymRange Swept = rangeOverVar(B.E, I, Lo, Up);
  return KeepLower ? Swept.Lo : Swept.Hi;
}

SymRange iaa::analysis::valueRangeAt(const SymExpr &E, const Stmt *S) {
  SymRange R = SymRange::point(E);
  for (const Stmt *P = S->parent(); P; P = P->parent()) {
    const auto *DS = dyn_cast<DoStmt>(P);
    if (!DS)
      continue;
    SymExpr Lo = SymExpr::fromAst(DS->lower());
    SymExpr Up = SymExpr::fromAst(DS->upper());
    R.Lo = sweepBound(R.Lo, DS->indexVar(), Lo, Up, /*KeepLower=*/true);
    R.Hi = sweepBound(R.Hi, DS->indexVar(), Lo, Up, /*KeepLower=*/false);
  }
  // A sweep fails when the loop index occurs nonlinearly (mod, products,
  // subscripts). Interval evaluation under the loop-bound environment can
  // still bound such expressions (e.g. mod(..., m) + 1 is in [1, m]).
  if (!R.Lo.isFinite() || !R.Hi.isFinite()) {
    ConstRange CR = evalConstRange(E, envAt(S));
    if (!R.Lo.isFinite() && CR.Lo)
      R.Lo = SymBound::finite(SymExpr::constant(*CR.Lo));
    if (!R.Hi.isFinite() && CR.Hi)
      R.Hi = SymBound::finite(SymExpr::constant(*CR.Hi));
  }
  return R;
}

/// Collects every program symbol mentioned by \p E (transitively through
/// atoms) into \p Out.Reads.
static void collectSymbols(const SymExpr &E, UseSet &Out);

static void collectAtomSymbols(const AtomRef &A, UseSet &Out) {
  if (A->symbol())
    Out.Reads.insert(A->symbol());
  for (const SymExpr &Operand : A->operands())
    collectSymbols(Operand, Out);
}

static void collectSymbols(const SymExpr &E, UseSet &Out) {
  for (const auto &[Key, Term] : E.terms())
    collectAtomSymbols(Term.first, Out);
}

//===----------------------------------------------------------------------===//
// ClosedFormDistanceChecker
//===----------------------------------------------------------------------===//

std::optional<std::pair<SymExpr, SymExpr>>
ClosedFormDistanceChecker::matchRecurrence(const AssignStmt *S) const {
  const mf::ArrayRef *LHS = S->arrayTarget();
  if (!LHS || LHS->array() != Target || LHS->rank() != 1)
    return std::nullopt;
  SymExpr E1 = SymExpr::fromAst(LHS->subscript(0));
  SymExpr Rhs = SymExpr::fromAst(S->rhs());
  // Find the unique x(e2) term with coefficient one.
  AtomRef XTerm;
  for (const auto &[Key, Term] : Rhs.terms()) {
    const auto &[A, Coeff] = Term;
    if (!A->references(Target))
      continue;
    if (XTerm || Coeff != 1 || A->kind() != AtomKind::ArrayElem ||
        A->symbol() != Target)
      return std::nullopt;
    XTerm = A;
  }
  if (!XTerm)
    return std::nullopt;
  SymExpr E2 = XTerm->operands()[0];
  if (E2.references(Target))
    return std::nullopt;
  if (!(E1 - E2 - 1).isZero())
    return std::nullopt;
  SymExpr D = Rhs - SymExpr::atom(XTerm);
  if (D.references(Target))
    return std::nullopt;
  return std::make_pair(E2, D);
}

Effect ClosedFormDistanceChecker::summarizeAssign(const AssignStmt *S) {
  const Symbol *Written = S->writtenSymbol();
  if (Written != Target) {
    // A write to anything the distance expression mentions is fatal.
    if (Distance.references(Written))
      return Effect::killAll();
    return Effect::none();
  }

  if (auto Match = matchRecurrence(S)) {
    const auto &[Pos, D] = *Match;
    SymExpr Expected =
        Distance.substituteVar(placeholderSymbol(), Pos);
    if ((Expected - D).isZero()) {
      ++GenSites;
      // Writing x(pos+1) redefines the pair (pos, pos+1) consistently and
      // breaks the pair (pos+1, pos+2) until that one is written in turn.
      return {Section::interval(Pos + 1, Pos + 1), Section::point(Pos)};
    }
  }

  // Any other write to the target: a base definition x(c) = v disturbs the
  // pairs touching element c; an unanalyzable subscript disturbs everything.
  const mf::ArrayRef *LHS = S->arrayTarget();
  if (LHS && LHS->rank() == 1) {
    SymExpr E = SymExpr::fromAst(LHS->subscript(0));
    bool Analyzable = true;
    for (const auto &[Key, Term] : E.terms())
      if (Term.first->kind() != AtomKind::Var)
        Analyzable = false;
    if (Analyzable)
      return {Section::interval(E - 1, E), Section::empty()};
  }
  return Effect::killAll();
}

std::optional<Effect>
ClosedFormDistanceChecker::summarizeLoop(const DoStmt *L,
                                         const LoopContext &Ctx) {
  // Only recurrences whose step array is defined in the building loop's own
  // body need the whole-loop fact: the statement-level walk above kills on
  // the in-body write to the step array. Everything else keeps the classic
  // per-statement path.
  const RecurrenceFact *F =
      Ctx.Recurrences ? Ctx.Recurrences->factFor(L, Target) : nullptr;
  if (!F || !F->StepDefinedInBody || !F->Distance ||
      !F->Distance->equals(Distance))
    return std::nullopt;
  ++GenSites;
  ++ConsumedFacts;
  ConsumedDeps.merge(F->Deps);
  countRecurrenceFactConsumed();
  return Effect{Section::interval(F->WriteLo - 1, F->WriteHi),
                Section::interval(F->PairLo, F->PairHi)};
}

UseSet ClosedFormDistanceChecker::factDependencies() const {
  UseSet U;
  collectSymbols(Distance, U);
  U.Reads.erase(placeholderSymbol());
  U.merge(ConsumedDeps);
  return U;
}

std::optional<SymExpr>
ClosedFormDistanceChecker::discoverDistance(const Program &P,
                                            const Symbol *Target) {
  // A throwaway checker instance gives access to the matcher; the Distance
  // member is unused during discovery.
  SymbolUses Uses(P);
  ClosedFormDistanceChecker Probe(Target, SymExpr(), Uses);

  std::optional<SymExpr> Discovered;
  bool Consistent = true;
  P.forEachStmt([&](Stmt *S) {
    const auto *AS = dyn_cast<AssignStmt>(S);
    if (!AS || !Consistent)
      return;
    auto Match = Probe.matchRecurrence(AS);
    if (!Match)
      return;
    const auto &[Pos, D] = *Match;
    // Normalize the distance to a function of the placeholder: Pos must be
    // v + c for a scalar v, giving D(pos) = D[v := pos - c].
    const Symbol *V = nullptr;
    int64_t VCoeff = 0;
    for (const auto &[Key, Term] : Pos.terms()) {
      if (Term.first->kind() != AtomKind::Var || V) {
        Consistent = false;
        return;
      }
      V = Term.first->symbol();
      VCoeff = Term.second;
    }
    SymExpr Norm;
    if (!V) {
      // Constant position: the distance applies to one point only; it
      // cannot define a whole closed form.
      Consistent = false;
      return;
    }
    if (VCoeff != 1) {
      Consistent = false;
      return;
    }
    int64_t Shift = Pos.constantTerm();
    Norm = D.substituteVar(
        V, SymExpr::var(placeholderSymbol()) - SymExpr::constant(Shift));
    if (!Discovered)
      Discovered = Norm;
    else if (!(Discovered->equals(Norm)))
      Consistent = false;
  });
  if (!Consistent)
    return std::nullopt;
  return Discovered;
}

bool ClosedFormDistanceChecker::hasConstantBase(const Program &P,
                                                const Symbol *Target) {
  bool Found = false;
  P.forEachStmt([&](Stmt *S) {
    const auto *AS = dyn_cast<AssignStmt>(S);
    if (!AS)
      return;
    const mf::ArrayRef *LHS = AS->arrayTarget();
    if (!LHS || LHS->array() != Target || LHS->rank() != 1)
      return;
    if (SymExpr::fromAst(LHS->subscript(0)).isConstant() &&
        SymExpr::fromAst(AS->rhs()).isConstant())
      Found = true;
  });
  return Found;
}

//===----------------------------------------------------------------------===//
// ClosedFormValueChecker
//===----------------------------------------------------------------------===//

Effect ClosedFormValueChecker::summarizeAssign(const AssignStmt *S) {
  const Symbol *Written = S->writtenSymbol();
  if (Written != Target)
    return Value.references(Written) ? Effect::killAll() : Effect::none();

  const mf::ArrayRef *LHS = S->arrayTarget();
  if (!LHS || LHS->rank() != 1)
    return Effect::killAll();
  SymExpr E = SymExpr::fromAst(LHS->subscript(0));
  SymExpr Expected = Value.substituteVar(placeholderSymbol(), E);
  if ((Expected - SymExpr::fromAst(S->rhs())).isZero()) {
    ++GenSites;
    return {Section::empty(), Section::point(E)};
  }
  // A mismatching definition kills the element it writes (Fig. 8's st2).
  bool Analyzable = true;
  for (const auto &[Key, Term] : E.terms())
    if (Term.first->kind() != AtomKind::Var)
      Analyzable = false;
  if (Analyzable)
    return {Section::point(E), Section::empty()};
  return Effect::killAll();
}

UseSet ClosedFormValueChecker::factDependencies() const {
  UseSet U;
  collectSymbols(Value, U);
  U.Reads.erase(placeholderSymbol());
  return U;
}

//===----------------------------------------------------------------------===//
// ClosedFormBoundChecker
//===----------------------------------------------------------------------===//

void ClosedFormBoundChecker::widen(const SymRange &R) {
  if (!Sawany) {
    Bounds = R;
    Sawany = true;
    return;
  }
  if (Bounds.Lo.isFinite() && R.Lo.isFinite())
    Bounds.Lo = SymBound::finite(SymExpr::min(Bounds.Lo.E, R.Lo.E));
  else
    Bounds.Lo = SymBound::negInf();
  if (Bounds.Hi.isFinite() && R.Hi.isFinite())
    Bounds.Hi = SymBound::finite(SymExpr::max(Bounds.Hi.E, R.Hi.E));
  else
    Bounds.Hi = SymBound::posInf();
}

Effect ClosedFormBoundChecker::summarizeAssign(const AssignStmt *S) {
  if (S->writtenSymbol() != Target)
    return Effect::none();
  const mf::ArrayRef *LHS = S->arrayTarget();
  if (!LHS || LHS->rank() != 1)
    return Effect::killAll();
  SymExpr E = SymExpr::fromAst(LHS->subscript(0));
  for (const auto &[Key, Term] : E.terms())
    if (Term.first->kind() != AtomKind::Var)
      return Effect::killAll(); // Scatter through another array: opaque.
  widen(valueRangeAt(SymExpr::fromAst(S->rhs()), S));
  ++GenSites;
  return {Section::point(E), Section::point(E)};
}

std::optional<Effect>
ClosedFormBoundChecker::summarizeLoop(const DoStmt *L, const LoopContext &Ctx) {
  GatherLoopInfo G = analyzeGatherLoop(L, Target, Uses);
  if (!G.IsGatherLoop)
    return std::nullopt;
  std::optional<SymExpr> Base = Ctx.ValueBefore(G.Counter);
  if (!Base)
    return Effect::killAll(); // Gathered section has an unknown start.
  widen(G.ValueBounds);
  ++GenSites;
  Section S = Section::interval(*Base + 1, SymExpr::var(G.Counter));
  return Effect{S, S};
}

UseSet ClosedFormBoundChecker::factDependencies() const {
  UseSet U;
  if (Bounds.Lo.isFinite())
    collectSymbols(Bounds.Lo.E, U);
  if (Bounds.Hi.isFinite())
    collectSymbols(Bounds.Hi.E, U);
  return U;
}

//===----------------------------------------------------------------------===//
// MonotonicChecker
//===----------------------------------------------------------------------===//

Effect MonotonicChecker::summarizeAssign(const AssignStmt *S) {
  if (S->writtenSymbol() != Target)
    return Effect::none();
  // Match the recurrence x(e+1) = x(e) + d.
  const mf::ArrayRef *LHS = S->arrayTarget();
  if (!LHS || LHS->rank() != 1)
    return Effect::killAll();
  SymExpr E1 = SymExpr::fromAst(LHS->subscript(0));
  SymExpr Rhs = SymExpr::fromAst(S->rhs());
  AtomRef XTerm;
  for (const auto &[Key, Term] : Rhs.terms()) {
    const auto &[A, Coeff] = Term;
    if (!A->references(Target))
      continue;
    if (XTerm || Coeff != 1 || A->kind() != AtomKind::ArrayElem ||
        A->symbol() != Target)
      return Effect::killAll();
    XTerm = A;
  }
  if (!XTerm)
    return Effect::killAll();
  SymExpr E2 = XTerm->operands()[0];
  if (E2.references(Target) || !(E1 - E2 - 1).isZero())
    return Effect::killAll();
  SymExpr D = Rhs - SymExpr::atom(XTerm);
  if (D.references(Target))
    return Effect::killAll();
  // The step must be provably positive (or non-negative) under the
  // enclosing loop bounds.
  RangeEnv Env = envAt(S);
  bool Ok = Strict ? provablyPositive(D, Env) : provablyNonNegative(D, Env);
  if (!Ok)
    return Effect::killAll();
  ++GenSites;
  // Pair (e2, e2+1) is ordered; writing x(e2+1) disturbs the next pair.
  return {Section::interval(E2 + 1, E2 + 1), Section::point(E2)};
}

std::optional<Effect>
MonotonicChecker::summarizeLoop(const DoStmt *L, const LoopContext &Ctx) {
  GatherLoopInfo G = analyzeGatherLoop(L, Target, Uses);
  if (!G.IsGatherLoop) {
    // A recurrence fact covers the monotone cases the per-statement match
    // cannot see: the accumulator (prefix-sum) shape and array-element
    // steps. Facts for plain scalar-step recurrences are deliberately not
    // consumed — summarizeAssign already proves those.
    const RecurrenceFact *F =
        Ctx.Recurrences ? Ctx.Recurrences->factFor(L, Target) : nullptr;
    RecurrenceClass Need = Strict ? RecurrenceClass::StrictlyIncreasing
                                  : RecurrenceClass::MonotoneNonDec;
    if (F && F->beyondStatementAnalysis() && F->Class >= Need) {
      ++GenSites;
      ++ConsumedFacts;
      ConsumedDeps.merge(F->Deps);
      countRecurrenceFactConsumed();
      return Effect{Section::interval(F->WriteLo - 1, F->WriteHi),
                    Section::interval(F->PairLo, F->PairHi)};
    }
    return std::nullopt;
  }
  // Gathered values are assigned in increasing order of the loop index, so
  // the section is strictly increasing (hence also non-decreasing).
  std::optional<SymExpr> Base = Ctx.ValueBefore(G.Counter);
  if (!Base)
    return Effect::killAll();
  ++GenSites;
  // The pair property spans [base+1 : counter-1] (pairs within the
  // gathered section).
  Section S =
      Section::interval(*Base + 1, SymExpr::var(G.Counter) - 1);
  return Effect{S, S};
}

//===----------------------------------------------------------------------===//
// InjectivityChecker
//===----------------------------------------------------------------------===//

Effect InjectivityChecker::summarizeAssign(const AssignStmt *S) {
  if (S->writtenSymbol() != Target)
    return Effect::none();
  // A lone store can duplicate an existing value; injectivity is a property
  // of whole sections, so be maximally conservative.
  return Effect::killAll();
}

std::optional<Effect>
InjectivityChecker::summarizeLoop(const DoStmt *L, const LoopContext &Ctx) {
  GatherLoopInfo G = analyzeGatherLoop(L, Target, Uses);
  if (!G.IsGatherLoop) {
    // Strictly increasing values are pairwise distinct, so a
    // StrictlyIncreasing recurrence generates injectivity over the whole
    // element cover [PairLo, PairHi + 1].
    const RecurrenceFact *F =
        Ctx.Recurrences ? Ctx.Recurrences->factFor(L, Target) : nullptr;
    if (F && F->beyondStatementAnalysis() &&
        F->Class == RecurrenceClass::StrictlyIncreasing) {
      ++GenSites;
      ++ConsumedFacts;
      ConsumedDeps.merge(F->Deps);
      countRecurrenceFactConsumed();
      return Effect{Section::interval(F->WriteLo, F->WriteHi),
                    Section::interval(F->elemLo(), F->elemHi())};
    }
    return std::nullopt;
  }
  std::optional<SymExpr> Base = Ctx.ValueBefore(G.Counter);
  if (!Base)
    return Effect::killAll();
  ++GenSites;
  Section S = Section::interval(*Base + 1, SymExpr::var(G.Counter));
  return Effect{S, S};
}
