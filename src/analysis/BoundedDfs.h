//===- analysis/BoundedDfs.h - The bounded DFS of Fig. 2 --------*- C++ -*-===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bounded depth-first search of Sec. 2.1 (Fig. 2). Two predicates
/// control the search over a (possibly cyclic) control flow graph:
///
///  - fbound(n): nodes at which the search stops expanding (the boundaries);
///  - fjailed(n): nodes whose *discovery as a successor* terminates the
///    whole search with failure.
///
/// Exactly as in the paper, fjailed is tested on successors before the
/// visited check, so even re-reaching the start node through a cycle fails
/// when the start is a jailed node.
///
//===----------------------------------------------------------------------===//

#ifndef IAA_ANALYSIS_BOUNDEDDFS_H
#define IAA_ANALYSIS_BOUNDEDDFS_H

#include "cfg/FlatCfg.h"

#include <functional>

namespace iaa {
namespace analysis {

/// Statistics for the ablation benchmarks.
struct BdfsStats {
  unsigned NodesVisited = 0;
};

/// Runs the bounded DFS of Fig. 2 from \p Start. The predicates receive node
/// indices into \p G. Returns true when the search completes (succeeded),
/// false when a jailed node was reached.
bool boundedDfs(const cfg::FlatCfg &G, unsigned Start,
                const std::function<bool(unsigned)> &FBound,
                const std::function<bool(unsigned)> &FJailed,
                BdfsStats *Stats = nullptr);

} // namespace analysis
} // namespace iaa

#endif // IAA_ANALYSIS_BOUNDEDDFS_H
