//===- analysis/PropertySolver.h - Demand-driven query solver ---*- C++ -*-===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The demand-driven interprocedural array property analysis of Sec. 3.2:
/// queries (node, section) are propagated in reverse over the HCG until they
/// are fully generated (answer: true) or a kill is met (early termination,
/// answer: false). The implementation mirrors the paper's figures:
///
///  - QuerySolver (Fig. 5): a worklist ordered by reverse topological
///    position; add_union merging of queries aimed at the same node.
///  - QueryProp (Fig. 6): remain := set - Gen; killed := Kill intersects
///    remain.
///  - SummarizeProgSection (Fig. 9): backward Gen/Kill summarization with
///    add_intersect merging and early termination on a universal kill.
///  - QueryProp_doheader (Fig. 10): a query escaping iteration i of a loop
///    is checked against the aggregated kills of iterations < i, reduced by
///    their aggregated gens, then aggregated over all i.
///  - Interprocedural propagation (Fig. 11) at call nodes and query
///    splitting (Fig. 12) at procedure heads.
///
/// One engineering deviation, documented here because it matters for
/// soundness: Fig. 9 accumulates Gen along a path as a plain union, which
/// can claim an element generated early and killed later. We additionally
/// thread a *kill shadow* (MAY) along each path and mask Gen contributions
/// with it, so the returned Gen is a true MUST set.
///
//===----------------------------------------------------------------------===//

#ifndef IAA_ANALYSIS_PROPERTYSOLVER_H
#define IAA_ANALYSIS_PROPERTYSOLVER_H

#include "analysis/ArrayProperty.h"
#include "analysis/GlobalConstants.h"
#include "analysis/RecurrenceSolver.h"
#include "cfg/Hcg.h"
#include "support/Timer.h"

namespace iaa {
namespace analysis {

/// Outcome and statistics of one property verification.
struct PropertyResult {
  bool Verified = false;
  /// True when the solve ended on a kill (the paper's early termination).
  bool KilledEarly = false;
  /// Symbols written by nodes the query passed through (excluding the
  /// interiors of pattern-matched generating loops); facts that mention any
  /// of these were invalidated and the result is forced to false.
  UseSet PathWrites;
  unsigned NodesVisited = 0;
  unsigned QueriesSplit = 0;
  unsigned LoopsSummarized = 0;
};

/// The QueryChecker of Fig. 4: drives reverse query propagation for one
/// PropertyChecker over the whole-program HCG.
class PropertySolver {
public:
  PropertySolver(cfg::Hcg &G, const SymbolUses &Uses)
      : G(G), Uses(Uses), Consts(G.program()),
        Recurrences(G.program(), Uses) {}

  /// The recurrence facts this solver derived from the program text. Each
  /// solver builds its own catalog (the auditor's solver re-derives every
  /// fact from scratch rather than trusting the planner's).
  const RecurrenceCatalog &recurrences() const { return Recurrences; }

  /// When set, verifyBefore accumulates its wall-clock time into \p T
  /// (Table 2 reports the fraction of compile time spent here).
  void setTimer(AccumulatingTimer *T) { Timer = T; }

  /// Verifies that the checker's property holds for \p S of the target
  /// array whenever control reaches the point *just before* statement
  /// \p At. This is where demand generators anchor their queries: a
  /// dependence test asks before the loop it is testing, the privatizer
  /// before the statement whose read it wants to bound.
  PropertyResult verifyBefore(const mf::Stmt *At, PropertyChecker &C,
                              const sec::Section &S);

private:
  struct SolveOutcome {
    bool Killed = false;
    sec::Section EntryRemain;
  };
  using InitList = std::vector<std::pair<cfg::HcgNode *, sec::Section>>;

  /// Solves within \p Sec and keeps climbing (loop headers per Fig. 10,
  /// procedure heads per Fig. 12) until the query is resolved.
  bool chainUp(cfg::HcgSection *Sec, InitList Init, PropertyChecker &C,
               PropertyResult &R, unsigned Depth);

  /// Fig. 5 within one section; stops at the section entry.
  SolveOutcome solveWithin(cfg::HcgSection *Sec, const InitList &Init,
                           PropertyChecker &C, PropertyResult &R,
                           unsigned Depth);

  /// Effect of a Loop node seen from outside (case 1 of Fig. 7): a
  /// whole-loop checker match or the generic aggregation of Sec. 3.2.5.
  Effect effectOfLoopNode(cfg::HcgNode *N, PropertyChecker &C,
                          PropertyResult &R, unsigned Depth, bool &Fatal);

  /// Fig. 9: per-execution (Kill, Gen) of a section.
  Effect summarizeSectionEffect(cfg::HcgSection *Sec, PropertyChecker &C,
                                PropertyResult &R, unsigned Depth);

  /// The value of scalar \p S immediately before node \p N, when a
  /// dominating constant assignment is visible in the same section.
  std::optional<sym::SymExpr> valueBefore(cfg::HcgNode *N,
                                          const mf::Symbol *S) const;

  /// RangeEnv binding the loop indices of every section enclosing \p Sec.
  sym::RangeEnv envOfSection(cfg::HcgSection *Sec) const;

  cfg::Hcg &G;
  const SymbolUses &Uses;
  /// Whole-program constants: the residue of the constant propagation phase
  /// Polaris runs before the analyses (Fig. 15); needed to prove loop
  /// bounds positive (zero-trip exclusion) during aggregation.
  GlobalConstants Consts;
  RecurrenceCatalog Recurrences;
  AccumulatingTimer *Timer = nullptr;
  static constexpr unsigned MaxDepth = 64;
};

} // namespace analysis
} // namespace iaa

#endif // IAA_ANALYSIS_PROPERTYSOLVER_H
