//===- analysis/SingleIndex.cpp - Irregular single-indexed accesses -------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "analysis/SingleIndex.h"

#include "analysis/BoundedDfs.h"
#include "symbolic/SymExpr.h"

#include <map>

using namespace iaa;
using namespace iaa::analysis;
using namespace iaa::cfg;
using namespace iaa::mf;

namespace {

/// Collects every ArrayRef of \p X inside \p E into \p Out.
void collectRefs(const Expr *E, const Symbol *X,
                 std::vector<const ArrayRef *> &Out) {
  switch (E->kind()) {
  case ExprKind::IntLit:
  case ExprKind::RealLit:
  case ExprKind::VarRef:
    return;
  case ExprKind::ArrayRef: {
    const auto *AR = cast<ArrayRef>(E);
    if (AR->array() == X)
      Out.push_back(AR);
    for (const Expr *Sub : AR->subscripts())
      collectRefs(Sub, X, Out);
    return;
  }
  case ExprKind::Unary:
    collectRefs(cast<UnaryExpr>(E)->operand(), X, Out);
    return;
  case ExprKind::Binary: {
    const auto *BE = cast<BinaryExpr>(E);
    collectRefs(BE->lhs(), X, Out);
    collectRefs(BE->rhs(), X, Out);
    return;
  }
  }
}

/// Expressions evaluated by the statement a node represents, *excluding*
/// nested bodies (those have their own nodes).
std::vector<const Expr *> nodeExprs(const FlatNode &N, bool &IsAssign,
                                    const AssignStmt *&AS) {
  IsAssign = false;
  AS = nullptr;
  std::vector<const Expr *> Exprs;
  if (!N.S)
    return Exprs;
  switch (N.S->kind()) {
  case StmtKind::Assign: {
    IsAssign = true;
    AS = cast<AssignStmt>(N.S);
    Exprs.push_back(AS->rhs());
    if (const mf::ArrayRef *Target = AS->arrayTarget())
      for (const Expr *Sub : Target->subscripts())
        Exprs.push_back(Sub);
    return Exprs;
  }
  case StmtKind::If:
    Exprs.push_back(cast<IfStmt>(N.S)->condition());
    return Exprs;
  case StmtKind::Do: {
    const auto *DS = cast<DoStmt>(N.S);
    Exprs.push_back(DS->lower());
    Exprs.push_back(DS->upper());
    if (DS->step())
      Exprs.push_back(DS->step());
    return Exprs;
  }
  case StmtKind::While:
    Exprs.push_back(cast<WhileStmt>(N.S)->condition());
    return Exprs;
  case StmtKind::Call:
    return Exprs;
  }
  return Exprs;
}

} // namespace

SingleIndexAnalysis::SingleIndexAnalysis(const StmtList &Region,
                                         const SymbolUses &Uses)
    : Region(Region), Uses(Uses), Cfg(Region, /*IncludeBackEdges=*/true) {}

std::optional<const Symbol *>
SingleIndexAnalysis::findSingleIndexVar(const Symbol *X) const {
  if (X->rank() != 1)
    return std::nullopt;
  const Symbol *IndexVar = nullptr;
  for (unsigned I = 0; I < Cfg.size(); ++I) {
    const FlatNode &N = Cfg.node(I);
    bool IsAssign;
    const AssignStmt *AS;
    std::vector<const Expr *> Exprs = nodeExprs(N, IsAssign, AS);
    std::vector<const mf::ArrayRef *> Refs;
    for (const Expr *E : Exprs)
      collectRefs(E, X, Refs);
    if (IsAssign && AS->arrayTarget() && AS->arrayTarget()->array() == X)
      Refs.push_back(AS->arrayTarget());
    for (const mf::ArrayRef *AR : Refs) {
      const auto *VR = dyn_cast<VarRef>(AR->subscript(0));
      if (!VR)
        return std::nullopt;
      if (IndexVar && IndexVar != VR->symbol())
        return std::nullopt;
      IndexVar = VR->symbol();
    }
    // A call that may touch X hides accesses from this region-level view.
    if (N.S && N.S->kind() == StmtKind::Call) {
      const auto *CS = cast<CallStmt>(N.S);
      if (CS->callee() && Uses.procedureUses(CS->callee()).touches(X))
        return std::nullopt;
    }
  }
  if (!IndexVar)
    return std::nullopt;
  return IndexVar;
}

std::vector<SingleIndexAnalysis::NodeFlags>
SingleIndexAnalysis::classifyNodes(const Symbol *X, const Symbol *P) const {
  std::vector<NodeFlags> Flags(Cfg.size());
  sym::SymExpr PVar = sym::SymExpr::var(P);
  for (unsigned I = 0; I < Cfg.size(); ++I) {
    const FlatNode &N = Cfg.node(I);
    NodeFlags &F = Flags[I];
    bool IsAssign;
    const AssignStmt *AS;
    std::vector<const Expr *> Exprs = nodeExprs(N, IsAssign, AS);

    // Reads of x(p) anywhere in the node's expressions.
    std::vector<const mf::ArrayRef *> Refs;
    for (const Expr *E : Exprs)
      collectRefs(E, X, Refs);
    F.ReadsX = !Refs.empty();

    if (N.S && N.S->kind() == StmtKind::Call) {
      const auto *CS = cast<CallStmt>(N.S);
      const UseSet &U =
          CS->callee() ? Uses.procedureUses(CS->callee()) : UseSet();
      if (U.touches(X) || U.writes(P))
        F.Spoil = true;
      if (U.reads(P)) {
        // Reading p in a callee is harmless for the evolution analysis.
      }
      continue;
    }

    if (N.S && N.S->kind() == StmtKind::Do &&
        cast<DoStmt>(N.S)->indexVar() == P)
      F.OtherDefP = true; // p reused as a loop index: a non-unit definition.

    if (!IsAssign)
      continue;

    if (AS->arrayTarget() && AS->arrayTarget()->array() == X)
      F.WritesX = true;

    if (!AS->arrayTarget() && AS->writtenSymbol() == P) {
      sym::SymExpr Rhs = sym::SymExpr::fromAst(AS->rhs());
      if ((Rhs - PVar - 1).isZero())
        F.IncP = true;
      else if ((Rhs - PVar + 1).isZero())
        F.DecP = true;
      else if (!Rhs.references(P))
        F.ResetP = true;
      else
        F.OtherDefP = true;
    }
  }
  return Flags;
}

SingleIndexResult SingleIndexAnalysis::classify(const Symbol *X) const {
  SingleIndexResult R;
  std::optional<const Symbol *> IndexVar = findSingleIndexVar(X);
  if (!IndexVar)
    return R;
  const Symbol *P = *IndexVar;
  R.IsSingleIndexed = true;
  R.IndexVar = P;

  std::vector<NodeFlags> Flags = classifyNodes(X, P);

  bool AnySpoil = false, AnyOtherDef = false, AnyDec = false, AnyReset = false;
  bool AnyInc = false, AnyReadWrite = false;
  const Expr *Bottom = nullptr;
  bool BottomConsistent = true;
  for (unsigned I = 0; I < Cfg.size(); ++I) {
    const NodeFlags &F = Flags[I];
    AnySpoil |= F.Spoil;
    AnyOtherDef |= F.OtherDefP;
    AnyDec |= F.DecP;
    AnyInc |= F.IncP;
    AnyReset |= F.ResetP;
    if (F.WritesX)
      R.HasWrites = true;
    if (F.ReadsX)
      R.HasReads = true;
    if (F.WritesX && F.ReadsX)
      AnyReadWrite = true;
    if (F.ResetP) {
      const auto *AS = cast<AssignStmt>(Cfg.node(I).S);
      if (!Bottom)
        Bottom = AS->rhs();
      else if (!(sym::SymExpr::fromAst(Bottom) -
                 sym::SymExpr::fromAst(AS->rhs()))
                    .isZero())
        BottomConsistent = false;
    }
  }

  if (AnySpoil || AnyOtherDef)
    return R;

  // --- Consecutively written (Sec. 2.2): p only incremented, and every
  // path between two increments writes x.
  if (!AnyDec && !AnyReset && AnyInc && !AnyReadWrite) {
    bool CW = true;
    for (unsigned I = 0; I < Cfg.size() && CW; ++I) {
      if (!Flags[I].IncP)
        continue;
      CW = boundedDfs(
          Cfg, I, [&](unsigned N) { return Flags[N].WritesX; },
          [&](unsigned N) { return Flags[N].IncP; });
    }
    R.ConsecutivelyWritten = CW && R.HasWrites;
  }

  // --- Stack access (Sec. 2.3, Table 1).
  if (AnyReset && BottomConsistent && !AnyReadWrite && Bottom) {
    // The bottom must be region-invariant.
    UseSet RegionWrites = Uses.bodyUses(Region);
    UseSet BottomReads;
    SymbolUses::exprReads(Bottom, BottomReads);
    bool Invariant = true;
    for (const Symbol *S : BottomReads.Reads)
      if (RegionWrites.writes(S))
        Invariant = false;

    if (Invariant) {
      // Table 1, plus the entry condition: from the region entry, p must be
      // reset before it is modified or used in a subscript of x.
      bool Ok = boundedDfs(
          Cfg, Cfg.entry(), [&](unsigned N) { return Flags[N].ResetP; },
          [&](unsigned N) {
            const NodeFlags &F = Flags[N];
            return F.IncP || F.DecP || F.WritesX || F.ReadsX;
          });
      struct Rule {
        bool NodeFlags::*Class;
        std::vector<bool NodeFlags::*> Bound;
        std::vector<bool NodeFlags::*> Failed;
      };
      // Sbound / Sfailed exactly as in Table 1:
      //   after a push increment, the new top must be written;
      //   after a pop decrement, the next stack event may be a push, a read
      //   of the new top, or a reset — never another decrement or a blind
      //   overwrite;
      //   after a top write, a push, a read, or a reset may follow;
      //   after a top read, the element must be popped (or the stack
      //   reset) before any other access.
      const Rule Rules[] = {
          {&NodeFlags::IncP,
           {&NodeFlags::WritesX, &NodeFlags::ResetP},
           {&NodeFlags::IncP, &NodeFlags::DecP, &NodeFlags::ReadsX}},
          {&NodeFlags::DecP,
           {&NodeFlags::IncP, &NodeFlags::ReadsX, &NodeFlags::ResetP},
           {&NodeFlags::DecP, &NodeFlags::WritesX}},
          {&NodeFlags::WritesX,
           {&NodeFlags::IncP, &NodeFlags::ReadsX, &NodeFlags::ResetP},
           {&NodeFlags::DecP, &NodeFlags::WritesX}},
          {&NodeFlags::ReadsX,
           {&NodeFlags::DecP, &NodeFlags::ResetP},
           {&NodeFlags::IncP, &NodeFlags::WritesX, &NodeFlags::ReadsX}},
      };
      for (const Rule &Ru : Rules) {
        if (!Ok)
          break;
        for (unsigned I = 0; I < Cfg.size() && Ok; ++I) {
          if (!(Flags[I].*(Ru.Class)))
            continue;
          Ok = boundedDfs(
              Cfg, I,
              [&](unsigned N) {
                const NodeFlags &F = Flags[N];
                for (auto M : Ru.Bound)
                  if (F.*M)
                    return true;
                return false;
              },
              [&](unsigned N) {
                const NodeFlags &F = Flags[N];
                for (auto M : Ru.Failed)
                  if (F.*M)
                    return true;
                return false;
              });
        }
      }
      if (Ok) {
        R.StackAccess = true;
        R.StackBottom = Bottom;
      }
    }
  }

  return R;
}

std::vector<const Symbol *> SingleIndexAnalysis::singleIndexedArrays() const {
  // Candidate arrays: every rank-1 array referenced in the region.
  UseSet U = Uses.bodyUses(Region);
  std::vector<const Symbol *> Result;
  auto Consider = [&](const Symbol *S) {
    if (S->rank() == 1 && findSingleIndexVar(S))
      Result.push_back(S);
  };
  std::map<unsigned, const Symbol *> Ordered;
  for (const Symbol *S : U.Reads)
    Ordered[S->id()] = S;
  for (const Symbol *S : U.Writes)
    Ordered[S->id()] = S;
  for (const auto &[Id, S] : Ordered)
    Consider(S);
  return Result;
}
