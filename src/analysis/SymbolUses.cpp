//===- analysis/SymbolUses.cpp - Read/write symbol summaries --------------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "analysis/SymbolUses.h"

using namespace iaa;
using namespace iaa::analysis;
using namespace iaa::mf;

void SymbolUses::exprReads(const Expr *E, UseSet &Out) {
  switch (E->kind()) {
  case ExprKind::IntLit:
  case ExprKind::RealLit:
    return;
  case ExprKind::VarRef:
    Out.Reads.insert(cast<VarRef>(E)->symbol());
    return;
  case ExprKind::ArrayRef: {
    const auto *AR = cast<ArrayRef>(E);
    Out.Reads.insert(AR->array());
    for (const Expr *Sub : AR->subscripts())
      exprReads(Sub, Out);
    return;
  }
  case ExprKind::Unary:
    exprReads(cast<UnaryExpr>(E)->operand(), Out);
    return;
  case ExprKind::Binary: {
    const auto *BE = cast<BinaryExpr>(E);
    exprReads(BE->lhs(), Out);
    exprReads(BE->rhs(), Out);
    return;
  }
  }
}

SymbolUses::SymbolUses(const Program &P) {
  // Procedures may call each other (non-recursively); iterate until the
  // transitive sets stabilize. MF programs are small, so a simple fixpoint
  // is fine.
  for (const Procedure *Proc : P.procedures())
    ProcUses[Proc] = UseSet();
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const Procedure *Proc : P.procedures()) {
      UseSet U;
      for (const Stmt *S : Proc->body())
        accumulate(S, U);
      UseSet &Slot = ProcUses[Proc];
      size_t Before = Slot.Reads.size() + Slot.Writes.size();
      Slot.merge(U);
      if (Slot.Reads.size() + Slot.Writes.size() != Before)
        Changed = true;
    }
  }
}

const UseSet &SymbolUses::procedureUses(const Procedure *P) const {
  static const UseSet EmptySet;
  auto It = ProcUses.find(P);
  return It == ProcUses.end() ? EmptySet : It->second;
}

void SymbolUses::accumulate(const Stmt *S, UseSet &Out) const {
  switch (S->kind()) {
  case StmtKind::Assign: {
    const auto *AS = cast<AssignStmt>(S);
    Out.Writes.insert(AS->writtenSymbol());
    if (const auto *AR = AS->arrayTarget())
      for (const Expr *Sub : AR->subscripts())
        exprReads(Sub, Out);
    exprReads(AS->rhs(), Out);
    return;
  }
  case StmtKind::If: {
    const auto *IS = cast<IfStmt>(S);
    exprReads(IS->condition(), Out);
    for (const Stmt *Sub : IS->thenBody())
      accumulate(Sub, Out);
    for (const Stmt *Sub : IS->elseBody())
      accumulate(Sub, Out);
    return;
  }
  case StmtKind::Do: {
    const auto *DS = cast<DoStmt>(S);
    Out.Writes.insert(DS->indexVar());
    exprReads(DS->lower(), Out);
    exprReads(DS->upper(), Out);
    if (DS->step())
      exprReads(DS->step(), Out);
    for (const Stmt *Sub : DS->body())
      accumulate(Sub, Out);
    return;
  }
  case StmtKind::While: {
    const auto *WS = cast<WhileStmt>(S);
    exprReads(WS->condition(), Out);
    for (const Stmt *Sub : WS->body())
      accumulate(Sub, Out);
    return;
  }
  case StmtKind::Call: {
    const auto *CS = cast<CallStmt>(S);
    if (const Procedure *Callee = CS->callee()) {
      auto It = ProcUses.find(Callee);
      if (It != ProcUses.end())
        Out.merge(It->second);
    }
    return;
  }
  }
}

UseSet SymbolUses::stmtUses(const Stmt *S) const {
  UseSet U;
  accumulate(S, U);
  return U;
}

UseSet SymbolUses::bodyUses(const StmtList &Body) const {
  UseSet U;
  for (const Stmt *S : Body)
    accumulate(S, U);
  return U;
}
