//===- analysis/PropertySolver.cpp - Demand-driven query solver -----------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "analysis/PropertySolver.h"

#include "support/Statistic.h"
#include "support/Trace.h"

#include <algorithm>
#include <map>
#include <queue>

using namespace iaa;
using namespace iaa::analysis;
using namespace iaa::cfg;
using namespace iaa::mf;
using namespace iaa::sec;
using namespace iaa::sym;

namespace {

/// A worklist keyed by topological index, popping the highest index first
/// (the paper's reverse topological order: successors before predecessors).
/// Entries aimed at the same node are merged with the provided combiner.
template <typename State> class RTopWorklist {
public:
  template <typename MergeFn>
  void push(HcgNode *N, State S, MergeFn Merge) {
    auto [It, Inserted] = Pending.try_emplace(N, std::move(S));
    if (!Inserted)
      It->second = Merge(It->second, S);
  }

  bool empty() const { return Pending.empty(); }

  std::pair<HcgNode *, State> pop() {
    auto Best = Pending.begin();
    for (auto It = Pending.begin(); It != Pending.end(); ++It)
      if (It->first->TopoIdx > Best->first->TopoIdx)
        Best = It;
    auto Out = std::make_pair(Best->first, std::move(Best->second));
    Pending.erase(Best);
    return Out;
  }

private:
  std::map<HcgNode *, State> Pending;
};

bool sectionReferences(const Section &S, const Symbol *Sym) {
  return S.referencesVar(Sym);
}

} // namespace

#define IAA_STAT_GROUP "property"
IAA_STAT(prop_queries, "Demand-driven property queries issued");
IAA_STAT(prop_queries_verified, "Property queries answered true");
IAA_STAT(prop_queries_killed_early, "Property queries ended by a kill");
IAA_STAT(prop_nodes_visited, "HCG nodes visited by query propagation");
IAA_STAT(prop_queries_split, "Query splits at procedure heads (Fig. 12)");
IAA_STAT(prop_loops_summarized, "Loop bodies summarized (Sec. 3.2.5)");

RangeEnv PropertySolver::envOfSection(HcgSection *Sec) const {
  RangeEnv Env;
  Consts.bindAll(Env);
  for (HcgSection *S = Sec; S;) {
    const DoStmt *L = S->loop();
    if (!L)
      break;
    Env.bindVar(L->indexVar(), SymRange::of(SymExpr::fromAst(L->lower()),
                                            SymExpr::fromAst(L->upper())));
    S = S->ownerNode() ? S->ownerNode()->Parent : nullptr;
  }
  return Env;
}

std::optional<SymExpr> PropertySolver::valueBefore(HcgNode *N,
                                                   const Symbol *S) const {
  HcgNode *Cur = N;
  while (Cur->Preds.size() == 1) {
    Cur = Cur->Preds[0];
    switch (Cur->K) {
    case HcgNode::Kind::Entry:
      return std::nullopt;
    case HcgNode::Kind::Assign: {
      const auto *AS = cast<AssignStmt>(Cur->S);
      if (AS->writtenSymbol() == S) {
        if (AS->arrayTarget())
          return std::nullopt;
        SymExpr V = SymExpr::fromAst(AS->rhs());
        if (V.isConstant())
          return V;
        return std::nullopt;
      }
      break;
    }
    case HcgNode::Kind::Branch:
      break;
    case HcgNode::Kind::Loop:
    case HcgNode::Kind::While:
    case HcgNode::Kind::Call:
      if (Uses.stmtUses(Cur->S).writes(S))
        return std::nullopt;
      break;
    case HcgNode::Kind::Exit:
      break;
    }
  }
  return std::nullopt;
}

PropertyResult PropertySolver::verifyBefore(const Stmt *At,
                                            PropertyChecker &C,
                                            const Section &S) {
  std::optional<TimeRegion> Timing;
  if (Timer)
    Timing.emplace(*Timer);
  trace::TraceScope Span("property-query", "property");
  if (Span.active()) {
    Span.arg("property", propertyKindName(C.kind()));
    if (C.targetArray())
      Span.arg("array", C.targetArray()->name());
  }
  ++prop_queries;
  PropertyResult R;
  HcgNode *N = G.nodeFor(At);
  if (!N || S.isUniverse()) {
    Span.arg("verdict", "unverified");
    return R;
  }
  if (S.isEmpty()) {
    R.Verified = true;
    ++prop_queries_verified;
    Span.arg("verdict", "verified");
    return R;
  }
  InitList Init;
  for (HcgNode *P : N->Preds)
    Init.push_back({P, S});
  R.Verified = chainUp(N->Parent, std::move(Init), C, R, /*Depth=*/0);

  // Facts expressed in terms of symbols overwritten along the way between
  // their generation site and the query point are stale.
  if (R.Verified) {
    UseSet Deps = C.factDependencies();
    for (const Symbol *Dep : Deps.Reads)
      if (R.PathWrites.writes(Dep))
        R.Verified = false;
    if (!R.Verified && C.consumedRecurrenceFacts() > 0)
      countRecurrenceFactKilled();
  }

  prop_nodes_visited += R.NodesVisited;
  prop_queries_split += R.QueriesSplit;
  prop_loops_summarized += R.LoopsSummarized;
  if (R.Verified)
    ++prop_queries_verified;
  if (R.KilledEarly)
    ++prop_queries_killed_early;
  if (Span.active()) {
    Span.arg("verdict", R.Verified      ? "verified"
                        : R.KilledEarly ? "killed-early"
                                        : "unverified");
    Span.arg("nodes", std::to_string(R.NodesVisited));
  }
  return R;
}

bool PropertySolver::chainUp(HcgSection *Sec, InitList Init,
                             PropertyChecker &C, PropertyResult &R,
                             unsigned Depth) {
  if (Depth > MaxDepth)
    return false;
  SolveOutcome Out = solveWithin(Sec, Init, C, R, Depth);
  if (Out.Killed) {
    R.KilledEarly = true;
    return false;
  }
  if (Out.EntryRemain.isEmpty())
    return true;

  if (const DoStmt *L = Sec->loop()) {
    // Fig. 10 (QueryProp_doheader): the query escapes iteration i. Check the
    // kills of iterations [lo, i-1], subtract their gens, and aggregate the
    // remainder over the whole iteration space.
    const Symbol *I = L->indexVar();
    SymExpr Lo = SymExpr::fromAst(L->lower());
    SymExpr Up = SymExpr::fromAst(L->upper());
    RangeEnv Env = envOfSection(Sec);
    Effect BodyEff = summarizeSectionEffect(Sec, C, R, Depth + 1);
    UseSet BodyU = Uses.bodyUses(L->body());
    for (const Symbol *W : BodyU.Writes) {
      if (W->isArray() || W == I)
        continue;
      if (BodyEff.Kill.referencesVar(W))
        BodyEff.Kill = Section::universe();
      if (BodyEff.Gen.referencesVar(W))
        BodyEff.Gen = Section::empty();
    }
    SymExpr IV = SymExpr::var(I);
    Section KillPrev =
        Section::aggregateMay(BodyEff.Kill, I, Lo, IV - 1, Env);
    if (Section::mayIntersect(Out.EntryRemain, KillPrev, Env)) {
      R.KilledEarly = true;
      return false;
    }
    Section GenPrev =
        Section::aggregateMust(BodyEff.Gen, I, Lo, IV - 1, Env);
    Section RemainI = Section::subtractMay(Out.EntryRemain, GenPrev, Env);
    Section Remain = Section::aggregateMay(RemainI, I, Lo, Up, Env);
    if (Remain.isEmpty())
      return true;
    HcgNode *Owner = Sec->ownerNode();
    InitList Up2;
    for (HcgNode *P : Owner->Preds)
      Up2.push_back({P, Remain});
    return chainUp(Owner->Parent, std::move(Up2), C, R, Depth + 1);
  }

  // Fig. 12 (query splitting): the query reaches a procedure head.
  Procedure *Proc = Sec->procedure();
  if (!Proc || Proc->name() == "main")
    return false; // Program entry reached with an unresolved remainder.
  const std::vector<HcgNode *> &Sites = G.callSites(Proc);
  if (Sites.empty())
    return false;
  R.QueriesSplit += static_cast<unsigned>(Sites.size());
  for (HcgNode *Site : Sites) {
    InitList SiteInit;
    for (HcgNode *P : Site->Preds)
      SiteInit.push_back({P, Out.EntryRemain});
    if (!chainUp(Site->Parent, std::move(SiteInit), C, R, Depth + 1))
      return false;
  }
  return true;
}

PropertySolver::SolveOutcome
PropertySolver::solveWithin(HcgSection *Sec, const InitList &Init,
                            PropertyChecker &C, PropertyResult &R,
                            unsigned Depth) {
  SolveOutcome Out;
  if (Depth > MaxDepth) {
    Out.Killed = true;
    return Out;
  }
  RangeEnv Env = envOfSection(Sec);
  RTopWorklist<Section> Worklist;
  auto MergeMay = [&](const Section &A, const Section &B) {
    return Section::unionMay(A, B, Env);
  };
  for (const auto &[N, S] : Init)
    Worklist.push(N, S, MergeMay);

  while (!Worklist.empty()) {
    auto [N, Set] = Worklist.pop();
    ++R.NodesVisited;

    if (N == Sec->entry()) {
      Out.EntryRemain = Section::unionMay(Out.EntryRemain, Set, Env);
      continue;
    }

    Effect Eff = Effect::none();
    // Symbols this node may write; a remainder still expressed in terms of
    // one of them refers to a value that changes across the node, so the
    // query must die (the stale-section rule).
    UseSet NodeWrites;
    switch (N->K) {
    case HcgNode::Kind::Entry:
    case HcgNode::Kind::Exit:
    case HcgNode::Kind::Branch:
      break;
    case HcgNode::Kind::Assign: {
      const auto *AS = cast<AssignStmt>(N->S);
      R.PathWrites.Writes.insert(AS->writtenSymbol());
      if (!AS->arrayTarget())
        NodeWrites.Writes.insert(AS->writtenSymbol());
      Eff = C.summarizeAssign(AS);
      break;
    }
    case HcgNode::Kind::While: {
      UseSet U = Uses.stmtUses(N->S);
      R.PathWrites.merge(U);
      NodeWrites = U;
      if (U.writes(C.targetArray()))
        Eff = Effect::killAll();
      break;
    }
    case HcgNode::Kind::Call: {
      const auto *CS = cast<CallStmt>(N->S);
      Procedure *Callee = CS->callee();
      if (!Callee) {
        Out.Killed = true;
        return Out;
      }
      // Fig. 11: a new query problem rooted at the callee's entry; the
      // query continues at this call's predecessors with whatever survives.
      HcgSection *CalleeSec = G.procSection(Callee);
      SolveOutcome Sub = solveWithin(
          CalleeSec, {{CalleeSec->exit(), Set}}, C, R, Depth + 1);
      if (Sub.Killed) {
        Out.Killed = true;
        return Out;
      }
      if (Sub.EntryRemain.isEmpty())
        continue;
      // The remainder continues above the call: it must not be expressed
      // in terms of anything the callee writes.
      for (const Symbol *W : Uses.procedureUses(Callee).Writes)
        if (sectionReferences(Sub.EntryRemain, W)) {
          Out.Killed = true;
          return Out;
        }
      for (HcgNode *P : N->Preds)
        Worklist.push(P, Sub.EntryRemain, MergeMay);
      continue;
    }
    case HcgNode::Kind::Loop: {
      bool Fatal = false;
      Eff = effectOfLoopNode(N, C, R, Depth + 1, Fatal);
      if (Fatal) {
        Out.Killed = true;
        return Out;
      }
      NodeWrites = Uses.stmtUses(N->S);
      break;
    }
    }

    // Fig. 6: remain := set - Gen; killed when Kill meets the remainder.
    Section Remain = Section::subtractMay(Set, Eff.Gen, Env);
    if (Section::mayIntersect(Eff.Kill, Remain, Env)) {
      Out.Killed = true;
      return Out;
    }
    if (Remain.isEmpty())
      continue;
    for (const Symbol *W : NodeWrites.Writes)
      if (sectionReferences(Remain, W)) {
        Out.Killed = true;
        return Out;
      }
    for (HcgNode *P : N->Preds)
      Worklist.push(P, Remain, MergeMay);
  }
  return Out;
}

Effect PropertySolver::effectOfLoopNode(HcgNode *N, PropertyChecker &C,
                                        PropertyResult &R, unsigned Depth,
                                        bool &Fatal) {
  const auto *L = cast<DoStmt>(N->S);
  LoopContext Ctx;
  Ctx.ValueBefore = [this, N](const Symbol *S) { return valueBefore(N, S); };
  Ctx.Recurrences = &Recurrences;

  // Whole-loop pattern match first (gather loops etc.). Its facts are
  // expressed in terms of post-loop values, so the loop's own writes are
  // deliberately *not* added to PathWrites here.
  if (std::optional<Effect> Whole = C.summarizeLoop(L, Ctx))
    return *Whole;

  // Generic path (Sec. 3.2.5): aggregate the body's per-iteration effect.
  UseSet BodyU = Uses.bodyUses(L->body());
  R.PathWrites.merge(BodyU);

  // The loop bounds must be loop-invariant and the step must be one.
  UseSet BoundReads;
  SymbolUses::exprReads(L->lower(), BoundReads);
  SymbolUses::exprReads(L->upper(), BoundReads);
  for (const Symbol *S : BoundReads.Reads)
    if (BodyU.writes(S))
      return Effect::killAll();
  if (L->step()) {
    SymExpr Step = SymExpr::fromAst(L->step());
    if (!Step.isConstant() || Step.constValue() != 1)
      return BodyU.writes(C.targetArray()) ? Effect::killAll()
                                           : Effect::none();
  }
  (void)Fatal;

  ++R.LoopsSummarized;
  Effect BodyEff = summarizeSectionEffect(N->BodySection, C, R, Depth + 1);

  const Symbol *I = L->indexVar();
  SymExpr Lo = SymExpr::fromAst(L->lower());
  SymExpr Up = SymExpr::fromAst(L->upper());
  RangeEnv Env = envOfSection(N->BodySection);

  // A per-iteration section whose bounds mention a scalar the body itself
  // writes is not a fixed function of the index: widen Kill, drop Gen.
  for (const Symbol *W : BodyU.Writes) {
    if (W->isArray() || W == I)
      continue;
    if (BodyEff.Kill.referencesVar(W))
      BodyEff.Kill = Section::universe();
    if (BodyEff.Gen.referencesVar(W))
      BodyEff.Gen = Section::empty();
  }

  Section Kill = Section::aggregateMay(BodyEff.Kill, I, Lo, Up, Env);
  // Gen: what iteration i generates and no later iteration kills,
  // aggregated over all iterations (Sec. 3.2.5).
  SymExpr IV = SymExpr::var(I);
  Section KillAfter =
      Section::aggregateMay(BodyEff.Kill, I, IV + 1, Up, Env);
  Section GenEff = Section::subtractMust(BodyEff.Gen, KillAfter, Env);
  Section Gen = Section::aggregateMust(GenEff, I, Lo, Up, Env);
  return {Kill, Gen};
}

Effect PropertySolver::summarizeSectionEffect(HcgSection *Sec,
                                              PropertyChecker &C,
                                              PropertyResult &R,
                                              unsigned Depth) {
  if (Depth > MaxDepth)
    return Effect::killAll();
  RangeEnv Env = envOfSection(Sec);

  struct GenState {
    Section Gen;        // MUST: generated after this node.
    Section KillShadow; // MAY: killed after this node.
  };
  RTopWorklist<GenState> Worklist;
  auto Merge = [&](const GenState &A, const GenState &B) {
    return GenState{Section::intersectMust(A.Gen, B.Gen, Env),
                    Section::unionMay(A.KillShadow, B.KillShadow, Env)};
  };

  Section Kill = Section::empty();
  Section GenResult = Section::empty();
  Worklist.push(Sec->exit(), GenState{}, Merge);

  while (!Worklist.empty()) {
    auto [N, State] = Worklist.pop();
    ++R.NodesVisited;
    if (N == Sec->entry()) {
      GenResult = State.Gen;
      break;
    }

    Effect Eff = Effect::none();
    switch (N->K) {
    case HcgNode::Kind::Entry:
    case HcgNode::Kind::Exit:
    case HcgNode::Kind::Branch:
      break;
    case HcgNode::Kind::Assign:
      R.PathWrites.Writes.insert(cast<AssignStmt>(N->S)->writtenSymbol());
      Eff = C.summarizeAssign(cast<AssignStmt>(N->S));
      break;
    case HcgNode::Kind::While: {
      UseSet U = Uses.stmtUses(N->S);
      R.PathWrites.merge(U);
      if (U.writes(C.targetArray()))
        Eff = Effect::killAll();
      break;
    }
    case HcgNode::Kind::Call: {
      const auto *CS = cast<CallStmt>(N->S);
      if (!CS->callee()) {
        Eff = Effect::killAll();
        break;
      }
      // SummarizeProcedure: with global-variable communication the callee's
      // body summary is the call's effect.
      Eff = summarizeSectionEffect(G.procSection(CS->callee()), C, R,
                                   Depth + 1);
      break;
    }
    case HcgNode::Kind::Loop: {
      bool Fatal = false;
      Eff = effectOfLoopNode(N, C, R, Depth + 1, Fatal);
      break;
    }
    }

    // Fig. 9 with a kill shadow: a Gen contribution only counts if no later
    // node may kill it.
    Section GenEffective = Section::subtractMust(Eff.Gen, State.KillShadow, Env);
    Section GenHere = Section::unionMust(State.Gen, GenEffective, Env);

    if (Eff.Kill.isUniverse()) {
      // Early termination (Fig. 9 lines 21-24): everything before this node
      // is masked. Only a node on all paths can vouch for the Gen snapshot.
      Kill = Section::universe();
      GenResult = N->OnAllPaths ? GenHere : Section::empty();
      return {Kill, GenResult};
    }

    Kill = Section::unionMay(Kill, Section::subtractMay(Eff.Kill, State.Gen, Env),
                             Env);
    GenState Next{GenHere,
                  Section::unionMay(State.KillShadow, Eff.Kill, Env)};
    for (HcgNode *P : N->Preds)
      Worklist.push(P, Next, Merge);
  }
  return {Kill, GenResult};
}
