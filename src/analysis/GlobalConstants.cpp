//===- analysis/GlobalConstants.cpp - Single-assignment constants ---------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "analysis/GlobalConstants.h"

#include "symbolic/SymExpr.h"

#include <map>

using namespace iaa;
using namespace iaa::analysis;
using namespace iaa::mf;

GlobalConstants::GlobalConstants(const Program &P) {
  struct Info {
    unsigned Defs = 0;
    bool IsLoopIndex = false;
    std::optional<int64_t> Value;
  };
  std::map<const Symbol *, Info> Scalars;

  P.forEachStmt([&](Stmt *S) {
    if (const auto *DS = dyn_cast<DoStmt>(S)) {
      Scalars[DS->indexVar()].IsLoopIndex = true;
      return;
    }
    const auto *AS = dyn_cast<AssignStmt>(S);
    if (!AS || AS->arrayTarget())
      return;
    Info &I = Scalars[AS->writtenSymbol()];
    ++I.Defs;
    sym::SymExpr V = sym::SymExpr::fromAst(AS->rhs());
    if (V.isConstant())
      I.Value = V.constValue();
    else
      I.Value = std::nullopt;
  });

  for (const auto &[S, I] : Scalars)
    if (I.Defs == 1 && !I.IsLoopIndex && I.Value)
      Values[S] = *I.Value;
}

std::optional<int64_t> GlobalConstants::valueOf(const Symbol *S) const {
  auto It = Values.find(S);
  if (It == Values.end())
    return std::nullopt;
  return It->second;
}

void GlobalConstants::bindAll(sym::RangeEnv &Env) const {
  for (const auto &[S, V] : Values)
    Env.bindVar(S, sym::SymRange::point(sym::SymExpr::constant(V)));
}
