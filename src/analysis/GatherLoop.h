//===- analysis/GatherLoop.h - Index gathering loop recognition -*- C++ -*-===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recognition of *index gathering loops* (Sec. 4, Fig. 14):
///
/// \code
///   q = 0
///   do i = 1, p
///     if (x(i) > 0) then
///       q = q + 1
///       ind(q) = i
///     end if
///   end do
/// \endcode
///
/// After such a loop the gathered section ind[1:q] is injective, and its
/// values are bounded by the do-loop bounds [1, p]. The five conditions of
/// Sec. 4 are checked: (1) a do loop, (2) the index array is single-indexed,
/// (3) consecutively written, (4) every right-hand side is the loop index,
/// and (5) no assignment of the index array reaches another without passing
/// the loop header (verified with a bDFS).
///
//===----------------------------------------------------------------------===//

#ifndef IAA_ANALYSIS_GATHERLOOP_H
#define IAA_ANALYSIS_GATHERLOOP_H

#include "analysis/SymbolUses.h"
#include "mf/Program.h"
#include "symbolic/SymRange.h"

namespace iaa {
namespace analysis {

/// The facts established by recognizing an index gathering loop.
struct GatherLoopInfo {
  bool IsGatherLoop = false;
  const mf::DoStmt *Loop = nullptr;
  /// The gathered index array (ind in Fig. 14).
  const mf::Symbol *IndexArray = nullptr;
  /// The counter variable (q in Fig. 14).
  const mf::Symbol *Counter = nullptr;
  /// Value bounds of the gathered elements: the do-loop bounds.
  sym::SymRange ValueBounds;
  /// The gathered elements are pairwise distinct.
  bool Injective = false;
};

/// Checks whether \p L is an index gathering loop for array \p X.
GatherLoopInfo analyzeGatherLoop(const mf::DoStmt *L, const mf::Symbol *X,
                                 const SymbolUses &Uses);

} // namespace analysis
} // namespace iaa

#endif // IAA_ANALYSIS_GATHERLOOP_H
