//===- analysis/GlobalConstants.h - Single-assignment constants -*- C++ -*-===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Whole-program constants: scalars assigned exactly once, with a constant
/// right-hand side, and never used as a loop index. This is the essential
/// payload of the interprocedural constant propagation phase that Polaris
/// runs before the analyses (Fig. 15); problem sizes and segment counts in
/// the benchmarks are set once at startup, and the provers need their
/// positivity (e.g. "n >= 1" to rule out zero-trip loops).
///
//===----------------------------------------------------------------------===//

#ifndef IAA_ANALYSIS_GLOBALCONSTANTS_H
#define IAA_ANALYSIS_GLOBALCONSTANTS_H

#include "mf/Program.h"
#include "symbolic/SymRange.h"

#include <cstdint>
#include <optional>
#include <unordered_map>

namespace iaa {
namespace analysis {

/// Scalars with one constant definition in the whole program.
class GlobalConstants {
public:
  explicit GlobalConstants(const mf::Program &P);

  /// The constant value of \p S, if it is a whole-program constant.
  std::optional<int64_t> valueOf(const mf::Symbol *S) const;

  /// Binds every known constant into \p Env as a point range.
  void bindAll(sym::RangeEnv &Env) const;

private:
  std::unordered_map<const mf::Symbol *, int64_t> Values;
};

} // namespace analysis
} // namespace iaa

#endif // IAA_ANALYSIS_GLOBALCONSTANTS_H
