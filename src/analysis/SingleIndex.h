//===- analysis/SingleIndex.h - Irregular single-indexed accesses -*- C++ -*-=//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Analysis of irregular single-indexed array accesses (Sec. 2): an array is
/// single-indexed in a region when it is always subscripted by one and the
/// same scalar variable. The analysis classifies the evolution of that index
/// variable with bounded depth-first searches over the region's cyclic CFG:
///
///  - *consecutively written* (Sec. 2.2): the index is only ever incremented
///    by one, and no path connects two increments without writing the array
///    in between — so the written section has no holes;
///  - *stack access* (Sec. 2.3, Table 1): the index is only incremented,
///    decremented, or reset to a region-invariant bottom, and every access
///    obeys the push/pop discipline of Table 1.
///
//===----------------------------------------------------------------------===//

#ifndef IAA_ANALYSIS_SINGLEINDEX_H
#define IAA_ANALYSIS_SINGLEINDEX_H

#include "analysis/SymbolUses.h"
#include "cfg/FlatCfg.h"
#include "mf/Program.h"

#include <optional>
#include <vector>

namespace iaa {
namespace analysis {

/// Classification of one array's accesses within a region.
struct SingleIndexResult {
  /// True when every reference to the array in the region is subscripted by
  /// the single scalar IndexVar.
  bool IsSingleIndexed = false;
  const mf::Symbol *IndexVar = nullptr;

  bool HasReads = false;
  bool HasWrites = false;

  /// Sec. 2.2: writes walk up the array with no holes.
  bool ConsecutivelyWritten = false;

  /// Sec. 2.3: the array is used as a stack.
  bool StackAccess = false;
  /// The bottom value the stack pointer is reset to (for StackAccess).
  const mf::Expr *StackBottom = nullptr;
};

/// Single-indexed access analysis for one region (a loop body). The region's
/// cyclic flat CFG is built once and shared across classifications.
class SingleIndexAnalysis {
public:
  SingleIndexAnalysis(const mf::StmtList &Region, const SymbolUses &Uses);

  /// Classifies array \p X within the region.
  SingleIndexResult classify(const mf::Symbol *X) const;

  /// All rank-1 arrays that are single-indexed in the region.
  std::vector<const mf::Symbol *> singleIndexedArrays() const;

  const cfg::FlatCfg &graph() const { return Cfg; }

private:
  /// Per-node classification relative to (X, p); the bDFS predicates of
  /// Sec. 2.2/2.3 are defined over these flags.
  struct NodeFlags {
    bool IncP = false;     ///< p = p + 1
    bool DecP = false;     ///< p = p - 1
    bool ResetP = false;   ///< p = Cbottom
    bool OtherDefP = false;///< any other definition of p
    bool WritesX = false;  ///< x(p) = ...
    bool ReadsX = false;   ///< ... = x(p) (incl. conditions and bounds)
    bool Spoil = false;    ///< call or construct that may touch X or p
  };

  /// Finds the single subscript variable of X in the region, if any.
  std::optional<const mf::Symbol *> findSingleIndexVar(const mf::Symbol *X) const;

  std::vector<NodeFlags> classifyNodes(const mf::Symbol *X,
                                       const mf::Symbol *P) const;

  const mf::StmtList &Region;
  const SymbolUses &Uses;
  cfg::FlatCfg Cfg;
};

} // namespace analysis
} // namespace iaa

#endif // IAA_ANALYSIS_SINGLEINDEX_H
