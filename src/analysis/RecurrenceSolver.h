//===- analysis/RecurrenceSolver.h - Recurrence facts for index arrays -*- C++//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recurrence analysis of index-array-constructing loops, after Bhosale &
/// Eigenmann (arXiv 1911.05839): instead of failing statically on an index
/// array whose defining step is invisible at statement level (an array
/// element read in the same body, or a scalar accumulator), analyze the
/// *whole recurrence* that builds the array and classify it on the lattice
///
///   None  ⊑  Bounded  ⊑  MonotoneNonDec  ⊑  StrictlyIncreasing
///
/// Two shapes are recognized:
///
///  - direct:       x(e+1) = x(e) + d      (e = i + c, one unconditional
///                                          write; d may read an array
///                                          defined earlier in the body)
///  - accumulator:  p = p + d ... x(e) = p (prefix sum through a scalar;
///                                          conditional increments widen the
///                                          class to non-strict, a reset or
///                                          any non-increment write bails)
///
/// The derived RecurrenceFacts are consumed by PropertySolver's property
/// checkers as whole-loop Gen facts (ArrayProperty.h), which makes them
/// flow interprocedurally through the HCG exactly like gather-loop facts.
/// Each fact carries its dependency set; the solver's kill-shadow rule
/// invalidates a consumed fact when the array, its accumulator, or any
/// step source is overwritten on the query path.
///
//===----------------------------------------------------------------------===//

#ifndef IAA_ANALYSIS_RECURRENCESOLVER_H
#define IAA_ANALYSIS_RECURRENCESOLVER_H

#include "analysis/SymbolUses.h"
#include "mf/Program.h"
#include "symbolic/SymRange.h"

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace iaa {
namespace analysis {

/// What the recurrence proves about adjacent elements of the built array.
/// The order is meaningful: every class implies all weaker ones.
enum class RecurrenceClass {
  None,               ///< Shape recognized but the step is unclassifiable.
  Bounded,            ///< Step values lie in a known finite range.
  MonotoneNonDec,     ///< Every step is provably >= 0.
  StrictlyIncreasing, ///< Every iteration advances by >= 1 (=> injective).
};

const char *recurrenceClassName(RecurrenceClass C);

/// A compile-time fact about how one loop builds one index array.
struct RecurrenceFact {
  const mf::Symbol *Array = nullptr;
  const mf::DoStmt *Loop = nullptr;
  RecurrenceClass Class = RecurrenceClass::None;

  /// True for the accumulator (prefix-sum) shape.
  bool Accumulator = false;
  const mf::Symbol *AccumulatorSym = nullptr;
  /// True when some increment is guarded (or nested) and was widened
  /// conservatively.
  bool Conditional = false;
  /// True when the step reads array elements — the case statement-level
  /// matching cannot bound.
  bool StepReadsArray = false;
  /// True when a step-source array is defined in the recurrence body itself
  /// (def-before-use at the same subscript) — the case the statement-level
  /// CFD walk kills on.
  bool StepDefinedInBody = false;

  /// Adjacent pairs (p, p+1) the recurrence orders: p in [PairLo, PairHi].
  sym::SymExpr PairLo, PairHi;
  /// Elements the loop writes: [WriteLo, WriteHi].
  sym::SymExpr WriteLo, WriteHi;

  /// Exact per-pair distance in terms of sym::placeholderSymbol(), when the
  /// step has a stable closed form (direct shape only).
  std::optional<sym::SymExpr> Distance;
  /// Constant bounds on the step, when interval evaluation found any.
  sym::ConstRange StepBounds;

  /// Symbols the fact depends on (loop bounds, step arrays, accumulator —
  /// never the built array itself or loop indices). A write to any of them
  /// between the building loop and the query invalidates the fact.
  UseSet Deps;

  /// Elements jointly covered by the ordering chain: [PairLo, PairHi + 1].
  sym::SymExpr elemLo() const { return PairLo; }
  sym::SymExpr elemHi() const;

  /// True when the fact proves something the per-statement pattern match
  /// cannot (accumulator shape, or an array-element step). Checkers only
  /// consume such facts, keeping the classic statement-level path — and its
  /// test surface — byte-identical where it already works.
  bool beyondStatementAnalysis() const {
    return Accumulator || StepReadsArray;
  }

  std::string describe() const;
};

/// Derives recurrence facts for every (loop, array) pair in the program.
/// Built by each PropertySolver over its own SymbolUses, so independent
/// solvers (the planner's vs. the auditor's) re-derive every fact from
/// scratch rather than trusting each other's state.
class RecurrenceCatalog {
public:
  RecurrenceCatalog(const mf::Program &P, const SymbolUses &Uses);

  /// The fact derived for array \p X from loop \p L, or null.
  const RecurrenceFact *factFor(const mf::DoStmt *L,
                                const mf::Symbol *X) const;

  /// All derived facts, in program order.
  const std::vector<RecurrenceFact> &facts() const { return Facts; }

private:
  void analyzeLoop(const mf::DoStmt *L, const SymbolUses &Uses);
  void addFact(RecurrenceFact F);

  const mf::Program &Prog;
  std::vector<RecurrenceFact> Facts;
  std::map<std::pair<const mf::DoStmt *, const mf::Symbol *>, unsigned> Index;
};

/// \name Counters of the "recurrence" stats group, incremented from the
/// consuming layers (checkers, solver, parallelizer).
/// @{
void countRecurrenceFactConsumed();
void countRecurrenceFactKilled();
void countRecurrencePromotion();
/// @}

} // namespace analysis
} // namespace iaa

#endif // IAA_ANALYSIS_RECURRENCESOLVER_H
