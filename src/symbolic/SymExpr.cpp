//===- symbolic/SymExpr.cpp - Symbolic integer expressions ---------------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "symbolic/SymExpr.h"

#include <algorithm>
#include <atomic>
#include <cassert>

using namespace iaa;
using namespace iaa::sym;

//===----------------------------------------------------------------------===//
// Atom
//===----------------------------------------------------------------------===//

static const char *nlOpName(NLOp Op) {
  switch (Op) {
  case NLOp::Mul:    return "mul";
  case NLOp::Div:    return "div";
  case NLOp::Mod:    return "mod";
  case NLOp::Min:    return "min";
  case NLOp::Max:    return "max";
  case NLOp::Opaque: return "opaque";
  }
  return "?";
}

AtomRef Atom::var(const mf::Symbol *S) {
  assert(S && !S->isArray() && "variable atom must name a scalar");
  auto A = std::shared_ptr<Atom>(new Atom());
  A->Kind = AtomKind::Var;
  A->Sym = S;
  A->Key = "v:" + S->name() + "#" + std::to_string(S->id());
  return A;
}

AtomRef Atom::arrayElem(const mf::Symbol *Array,
                        std::vector<SymExpr> Subscripts) {
  assert(Array && Array->isArray() && "array-element atom needs an array");
  auto A = std::shared_ptr<Atom>(new Atom());
  A->Kind = AtomKind::ArrayElem;
  A->Sym = Array;
  A->Operands = std::move(Subscripts);
  A->Key = "a:" + Array->name() + "#" + std::to_string(Array->id()) + "[";
  for (const SymExpr &Sub : A->Operands)
    A->Key += Sub.key() + ";";
  A->Key += "]";
  return A;
}

AtomRef Atom::nonLinear(NLOp Op, std::vector<SymExpr> Operands) {
  auto A = std::shared_ptr<Atom>(new Atom());
  A->Kind = AtomKind::NonLinear;
  A->Op = Op;
  A->Operands = std::move(Operands);
  // Mul/Min/Max are commutative; sort operand keys for a canonical form.
  if (Op == NLOp::Mul || Op == NLOp::Min || Op == NLOp::Max)
    std::sort(A->Operands.begin(), A->Operands.end(),
              [](const SymExpr &X, const SymExpr &Y) {
                return X.key() < Y.key();
              });
  A->Key = std::string("n:") + nlOpName(Op) + "(";
  for (const SymExpr &Operand : A->Operands)
    A->Key += Operand.key() + ";";
  A->Key += ")";
  return A;
}

AtomRef Atom::opaque(std::string Tag) {
  auto A = std::shared_ptr<Atom>(new Atom());
  A->Kind = AtomKind::NonLinear;
  A->Op = NLOp::Opaque;
  A->Tag = std::move(Tag);
  A->Key = "o:" + A->Tag;
  return A;
}

bool Atom::references(const mf::Symbol *S) const {
  if (Sym == S)
    return true;
  for (const SymExpr &Operand : Operands)
    if (Operand.references(S))
      return true;
  return false;
}

std::string Atom::str() const {
  switch (Kind) {
  case AtomKind::Var:
    return Sym->name();
  case AtomKind::ArrayElem: {
    std::string S = Sym->name() + "(";
    for (unsigned I = 0; I < Operands.size(); ++I) {
      if (I)
        S += ", ";
      S += Operands[I].str();
    }
    return S + ")";
  }
  case AtomKind::NonLinear: {
    if (Op == NLOp::Opaque)
      return "<" + Tag + ">";
    std::string S = std::string(nlOpName(Op)) + "(";
    for (unsigned I = 0; I < Operands.size(); ++I) {
      if (I)
        S += ", ";
      S += Operands[I].str();
    }
    return S + ")";
  }
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// SymExpr construction
//===----------------------------------------------------------------------===//

void SymExpr::addTerm(const AtomRef &A, int64_t Coeff) {
  if (Coeff == 0)
    return;
  auto [It, Inserted] = Terms.try_emplace(A->key(), A, Coeff);
  if (!Inserted) {
    It->second.second += Coeff;
    if (It->second.second == 0)
      Terms.erase(It);
  }
}

SymExpr SymExpr::constant(int64_t C) {
  SymExpr E;
  E.Constant = C;
  return E;
}

SymExpr SymExpr::var(const mf::Symbol *S) { return atom(Atom::var(S)); }

SymExpr SymExpr::arrayElem(const mf::Symbol *Array,
                           std::vector<SymExpr> Subscripts) {
  return atom(Atom::arrayElem(Array, std::move(Subscripts)));
}

SymExpr SymExpr::atom(AtomRef A) {
  SymExpr E;
  E.addTerm(A, 1);
  return E;
}

SymExpr SymExpr::opaque(std::string Tag) {
  return atom(Atom::opaque(std::move(Tag)));
}

//===----------------------------------------------------------------------===//
// Arithmetic
//===----------------------------------------------------------------------===//

SymExpr SymExpr::operator+(const SymExpr &RHS) const {
  SymExpr E = *this;
  E.Constant += RHS.Constant;
  for (const auto &[Key, Term] : RHS.Terms)
    E.addTerm(Term.first, Term.second);
  return E;
}

SymExpr SymExpr::operator-(const SymExpr &RHS) const {
  return *this + (-RHS);
}

SymExpr SymExpr::operator-() const {
  SymExpr E;
  E.Constant = -Constant;
  for (const auto &[Key, Term] : Terms)
    E.addTerm(Term.first, -Term.second);
  return E;
}

SymExpr SymExpr::operator*(int64_t C) const {
  SymExpr E;
  if (C == 0)
    return E;
  E.Constant = Constant * C;
  for (const auto &[Key, Term] : Terms)
    E.addTerm(Term.first, Term.second * C);
  return E;
}

SymExpr SymExpr::mul(const SymExpr &A, const SymExpr &B) {
  if (A.isConstant())
    return B * A.constValue();
  if (B.isConstant())
    return A * B.constValue();
  return atom(Atom::nonLinear(NLOp::Mul, {A, B}));
}

SymExpr SymExpr::div(const SymExpr &A, const SymExpr &B) {
  if (B.isConstant()) {
    int64_t C = B.constValue();
    if (C == 1)
      return A;
    // Divide exactly when every coefficient (and the constant) is divisible;
    // integer division does not distribute otherwise.
    if (C != 0 && A.Constant % C == 0) {
      bool AllDivisible = true;
      for (const auto &[Key, Term] : A.Terms)
        if (Term.second % C != 0) {
          AllDivisible = false;
          break;
        }
      if (AllDivisible) {
        SymExpr E;
        E.Constant = A.Constant / C;
        for (const auto &[Key, Term] : A.Terms)
          E.addTerm(Term.first, Term.second / C);
        return E;
      }
    }
  }
  if (A.isConstant() && B.isConstant() && B.constValue() != 0)
    return constant(A.constValue() / B.constValue());
  return atom(Atom::nonLinear(NLOp::Div, {A, B}));
}

SymExpr SymExpr::mod(const SymExpr &A, const SymExpr &B) {
  if (A.isConstant() && B.isConstant() && B.constValue() != 0)
    return constant(A.constValue() % B.constValue());
  return atom(Atom::nonLinear(NLOp::Mod, {A, B}));
}

SymExpr SymExpr::min(const SymExpr &A, const SymExpr &B) {
  if (A.isConstant() && B.isConstant())
    return constant(std::min(A.constValue(), B.constValue()));
  if (A.equals(B))
    return A;
  return atom(Atom::nonLinear(NLOp::Min, {A, B}));
}

SymExpr SymExpr::max(const SymExpr &A, const SymExpr &B) {
  if (A.isConstant() && B.isConstant())
    return constant(std::max(A.constValue(), B.constValue()));
  if (A.equals(B))
    return A;
  return atom(Atom::nonLinear(NLOp::Max, {A, B}));
}

//===----------------------------------------------------------------------===//
// Queries
//===----------------------------------------------------------------------===//

int64_t SymExpr::coeffOfVar(const mf::Symbol *S) const {
  auto It = Terms.find(Atom::var(S)->key());
  return It == Terms.end() ? 0 : It->second.second;
}

AtomRef SymExpr::asSingleAtom() const {
  if (Constant != 0 || Terms.size() != 1)
    return nullptr;
  const auto &Term = Terms.begin()->second;
  return Term.second == 1 ? Term.first : nullptr;
}

bool SymExpr::references(const mf::Symbol *S) const {
  for (const auto &[Key, Term] : Terms)
    if (Term.first->references(S))
      return true;
  return false;
}

//===----------------------------------------------------------------------===//
// Substitution
//===----------------------------------------------------------------------===//

static AtomRef substituteInAtom(const AtomRef &A, const mf::Symbol *S,
                                const SymExpr &Repl, SymExpr &LinearOut,
                                bool &BecameLinear);

SymExpr SymExpr::substituteVar(const mf::Symbol *S,
                               const SymExpr &Repl) const {
  SymExpr E = constant(Constant);
  for (const auto &[Key, Term] : Terms) {
    const auto &[A, Coeff] = Term;
    if (!A->references(S)) {
      E.addTerm(A, Coeff);
      continue;
    }
    SymExpr Linear;
    bool BecameLinear = false;
    AtomRef NewAtom = substituteInAtom(A, S, Repl, Linear, BecameLinear);
    if (BecameLinear)
      E = E + Linear * Coeff;
    else
      E.addTerm(NewAtom, Coeff);
  }
  return E;
}

/// Rewrites \p A with S := Repl. If the atom is the variable S itself the
/// result is the linear expression \p Repl (reported via \p BecameLinear);
/// otherwise a structurally substituted atom is returned.
static AtomRef substituteInAtom(const AtomRef &A, const mf::Symbol *S,
                                const SymExpr &Repl, SymExpr &LinearOut,
                                bool &BecameLinear) {
  switch (A->kind()) {
  case AtomKind::Var:
    if (A->symbol() == S) {
      LinearOut = Repl;
      BecameLinear = true;
      return nullptr;
    }
    return A;
  case AtomKind::ArrayElem: {
    std::vector<SymExpr> NewSubs;
    NewSubs.reserve(A->operands().size());
    for (const SymExpr &Sub : A->operands())
      NewSubs.push_back(Sub.substituteVar(S, Repl));
    return Atom::arrayElem(A->symbol(), std::move(NewSubs));
  }
  case AtomKind::NonLinear: {
    if (A->op() == NLOp::Opaque)
      return A;
    std::vector<SymExpr> NewOps;
    NewOps.reserve(A->operands().size());
    for (const SymExpr &Operand : A->operands())
      NewOps.push_back(Operand.substituteVar(S, Repl));
    // Re-run the smart constructors: substitution may make operands
    // constant, collapsing the nonlinearity (e.g. i*(i-1) with i:=3).
    switch (A->op()) {
    case NLOp::Mul: {
      SymExpr R = NewOps[0];
      for (size_t I = 1; I < NewOps.size(); ++I)
        R = SymExpr::mul(R, NewOps[I]);
      if (AtomRef Single = R.asSingleAtom())
        return Single;
      LinearOut = R;
      BecameLinear = true;
      return nullptr;
    }
    case NLOp::Div: {
      SymExpr R = SymExpr::div(NewOps[0], NewOps[1]);
      if (AtomRef Single = R.asSingleAtom())
        return Single;
      LinearOut = R;
      BecameLinear = true;
      return nullptr;
    }
    case NLOp::Mod: {
      SymExpr R = SymExpr::mod(NewOps[0], NewOps[1]);
      if (AtomRef Single = R.asSingleAtom())
        return Single;
      LinearOut = R;
      BecameLinear = true;
      return nullptr;
    }
    case NLOp::Min: {
      SymExpr R = SymExpr::min(NewOps[0], NewOps[1]);
      if (AtomRef Single = R.asSingleAtom())
        return Single;
      LinearOut = R;
      BecameLinear = true;
      return nullptr;
    }
    case NLOp::Max: {
      SymExpr R = SymExpr::max(NewOps[0], NewOps[1]);
      if (AtomRef Single = R.asSingleAtom())
        return Single;
      LinearOut = R;
      BecameLinear = true;
      return nullptr;
    }
    case NLOp::Opaque:
      return A;
    }
    return A;
  }
  }
  return A;
}

//===----------------------------------------------------------------------===//
// Rendering
//===----------------------------------------------------------------------===//

std::string SymExpr::key() const {
  std::string K = "{" + std::to_string(Constant);
  for (const auto &[AtomKey, Term] : Terms)
    K += "|" + std::to_string(Term.second) + "*" + AtomKey;
  return K + "}";
}

std::string SymExpr::str() const {
  if (Terms.empty())
    return std::to_string(Constant);
  std::string S;
  bool First = true;
  for (const auto &[Key, Term] : Terms) {
    const auto &[A, Coeff] = Term;
    if (!First)
      S += Coeff >= 0 ? " + " : " - ";
    else if (Coeff < 0)
      S += "-";
    int64_t Abs = Coeff < 0 ? -Coeff : Coeff;
    if (Abs != 1)
      S += std::to_string(Abs) + "*";
    S += A->str();
    First = false;
  }
  if (Constant > 0)
    S += " + " + std::to_string(Constant);
  else if (Constant < 0)
    S += " - " + std::to_string(-Constant);
  return S;
}

//===----------------------------------------------------------------------===//
// AST lowering
//===----------------------------------------------------------------------===//

static std::string freshOpaqueTag(const char *Prefix) {
  static std::atomic<unsigned> Counter{0};
  return std::string(Prefix) + "#" + std::to_string(Counter++);
}

SymExpr SymExpr::fromAst(const mf::Expr *E) {
  using namespace iaa::mf;
  switch (E->kind()) {
  case ExprKind::IntLit:
    return constant(cast<IntLit>(E)->value());
  case ExprKind::RealLit:
    return opaque(freshOpaqueTag("reallit"));
  case ExprKind::VarRef: {
    const Symbol *S = cast<VarRef>(E)->symbol();
    if (S->elementKind() != ScalarKind::Int)
      return opaque(freshOpaqueTag("realvar"));
    return var(S);
  }
  case ExprKind::ArrayRef: {
    const auto *AR = cast<ArrayRef>(E);
    if (AR->array()->elementKind() != ScalarKind::Int)
      return opaque(freshOpaqueTag("realelem"));
    std::vector<SymExpr> Subs;
    Subs.reserve(AR->rank());
    for (const Expr *Sub : AR->subscripts())
      Subs.push_back(fromAst(Sub));
    return arrayElem(AR->array(), std::move(Subs));
  }
  case ExprKind::Unary: {
    const auto *UE = cast<UnaryExpr>(E);
    if (UE->op() == UnaryOp::Neg)
      return -fromAst(UE->operand());
    return opaque(freshOpaqueTag("logical"));
  }
  case ExprKind::Binary: {
    const auto *BE = cast<BinaryExpr>(E);
    if (isComparisonOp(BE->op()) || isLogicalOp(BE->op()))
      return opaque(freshOpaqueTag("logical"));
    SymExpr L = fromAst(BE->lhs());
    SymExpr R = fromAst(BE->rhs());
    switch (BE->op()) {
    case BinaryOp::Add: return L + R;
    case BinaryOp::Sub: return L - R;
    case BinaryOp::Mul: return mul(L, R);
    case BinaryOp::Div: return div(L, R);
    case BinaryOp::Mod: return mod(L, R);
    case BinaryOp::Min: return min(L, R);
    case BinaryOp::Max: return max(L, R);
    default:
      return opaque(freshOpaqueTag("binop"));
    }
  }
  }
  return opaque(freshOpaqueTag("expr"));
}
