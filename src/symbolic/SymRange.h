//===- symbolic/SymRange.h - Symbolic ranges and the prover -----*- C++ -*-===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Symbolic value ranges, range environments, and the small prover used by
/// the range test (Blume & Eigenmann) and the offset-length test
/// (Sec. 3.2.7). A RangeEnv carries facts such as "loop index i is in
/// [1, n]" or "every element of iblen() is in [1, m]"; proofs reduce a
/// query like `a <= b` to interval-evaluating `b - a` down to constant
/// bounds and checking the sign.
///
//===----------------------------------------------------------------------===//

#ifndef IAA_SYMBOLIC_SYMRANGE_H
#define IAA_SYMBOLIC_SYMRANGE_H

#include "symbolic/SymExpr.h"

#include <map>
#include <optional>
#include <string>

namespace iaa {
namespace sym {

/// One end of a symbolic range: -inf, +inf, or a finite symbolic expression.
struct SymBound {
  enum class Kind { NegInf, Finite, PosInf };

  Kind K = Kind::NegInf;
  SymExpr E;

  static SymBound negInf() { return {Kind::NegInf, {}}; }
  static SymBound posInf() { return {Kind::PosInf, {}}; }
  static SymBound finite(SymExpr Expr) {
    return {Kind::Finite, std::move(Expr)};
  }

  bool isFinite() const { return K == Kind::Finite; }
  std::string str() const;
};

/// An inclusive symbolic interval [Lo, Hi].
struct SymRange {
  SymBound Lo = SymBound::negInf();
  SymBound Hi = SymBound::posInf();

  static SymRange all() { return {}; }
  static SymRange point(SymExpr E) {
    return {SymBound::finite(E), SymBound::finite(std::move(E))};
  }
  static SymRange of(SymExpr Lo, SymExpr Hi) {
    return {SymBound::finite(std::move(Lo)), SymBound::finite(std::move(Hi))};
  }
  static SymRange atLeast(SymExpr Lo) {
    return {SymBound::finite(std::move(Lo)), SymBound::posInf()};
  }
  static SymRange atMost(SymExpr Hi) {
    return {SymBound::negInf(), SymBound::finite(std::move(Hi))};
  }

  bool isUnbounded() const { return !Lo.isFinite() && !Hi.isFinite(); }
  std::string str() const;
};

/// Constant bounds produced by interval evaluation; nullopt means unbounded
/// in that direction.
struct ConstRange {
  std::optional<int64_t> Lo;
  std::optional<int64_t> Hi;

  static ConstRange unbounded() { return {}; }
  static ConstRange point(int64_t V) { return {V, V}; }

  std::string str() const;
};

/// A set of range facts about atoms: loop-index bounds, verified index-array
/// bounds (from the CFB property), and whole-array bounds.
class RangeEnv {
public:
  /// Binds the exact atom \p A to \p R (e.g. the loop index `i`).
  void bind(const AtomRef &A, SymRange R) { AtomRanges[A->key()] = std::move(R); }

  /// Binds the scalar variable \p S to \p R.
  void bindVar(const mf::Symbol *S, SymRange R) {
    bind(Atom::var(S), std::move(R));
  }

  /// Declares that *every* element of array \p A lies in \p R. Used when the
  /// array property analysis has verified a closed-form bound (CFB).
  void bindArrayValues(const mf::Symbol *A, SymRange R) {
    ArrayValueRanges[A->id()] = std::move(R);
  }

  const SymRange *lookupAtom(const std::string &Key) const;
  const SymRange *lookupArrayValues(const mf::Symbol *A) const;

private:
  std::map<std::string, SymRange> AtomRanges;
  std::map<unsigned, SymRange> ArrayValueRanges;
};

/// Interval-evaluates \p E down to constant bounds under \p Env. \p Depth
/// bounds recursion through symbolic bound expressions.
ConstRange evalConstRange(const SymExpr &E, const RangeEnv &Env,
                          unsigned Depth = 5);

/// \name Proof helpers (all sound: false means "could not prove").
/// @{
bool provablyNonNegative(const SymExpr &E, const RangeEnv &Env);
/// E >= 1.
bool provablyPositive(const SymExpr &E, const RangeEnv &Env);
/// A <= B.
bool provablyLE(const SymExpr &A, const SymExpr &B, const RangeEnv &Env);
/// A < B.
bool provablyLT(const SymExpr &A, const SymExpr &B, const RangeEnv &Env);
/// @}

/// The range of values \p E takes as the scalar \p I sweeps [Lo, Hi], with
/// all other atoms held fixed. Exact when E is affine in I (I appearing only
/// as a top-level variable atom); SymRange::all() otherwise.
SymRange rangeOverVar(const SymExpr &E, const mf::Symbol *I, const SymExpr &Lo,
                      const SymExpr &Hi);

/// A process-wide placeholder symbol ("$pos") used to express discovered
/// per-position properties such as "the distance of x() at position $pos is
/// iblen($pos)".
const mf::Symbol *placeholderSymbol();

} // namespace sym
} // namespace iaa

#endif // IAA_SYMBOLIC_SYMRANGE_H
