//===- symbolic/SymExpr.h - Symbolic integer expressions --------*- C++ -*-===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Symbolic integer expressions, the algebra underlying array sections, the
/// range test, and the offset-length test. A SymExpr is kept in canonical
/// *linear form*: an integer constant plus an integer-weighted sum of
/// *atoms*. Atoms are scalar symbols (`n`), symbolic array elements
/// (`pptr(i)`) — these are how index arrays enter the algebra, Sec. 3.2.7:
/// "the index arrays can be treated as symbolic terms in the range
/// computation" — and opaque nonlinear nodes (`i*(i-1)`, `q/2`, `min(a,b)`).
///
/// Linear forms make the common proof obligation — "is b - a provably
/// non-negative?" — a small interval-evaluation problem (see RangeEnv).
///
//===----------------------------------------------------------------------===//

#ifndef IAA_SYMBOLIC_SYMEXPR_H
#define IAA_SYMBOLIC_SYMEXPR_H

#include "mf/Expr.h"

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace iaa {
namespace sym {

class SymExpr;

/// Discriminator for atoms.
enum class AtomKind { Var, ArrayElem, NonLinear };

/// Operators of nonlinear atoms.
enum class NLOp { Mul, Div, Mod, Min, Max, Opaque };

/// An indivisible symbolic term. Atoms are immutable and shared; two atoms
/// are interchangeable iff their canonical keys are equal.
class Atom {
public:
  /// Scalar variable atom.
  static std::shared_ptr<const Atom> var(const mf::Symbol *S);
  /// Symbolic array element a(sub1[, sub2]).
  static std::shared_ptr<const Atom>
  arrayElem(const mf::Symbol *Array, std::vector<SymExpr> Subscripts);
  /// Nonlinear node op(operands...).
  static std::shared_ptr<const Atom> nonLinear(NLOp Op,
                                               std::vector<SymExpr> Operands);
  /// An unanalyzable value with a distinguishing tag. Two opaque atoms with
  /// the same tag are assumed equal; use unique tags for unknown values.
  static std::shared_ptr<const Atom> opaque(std::string Tag);

  AtomKind kind() const { return Kind; }
  NLOp op() const { return Op; }
  const mf::Symbol *symbol() const { return Sym; }
  const std::vector<SymExpr> &operands() const { return Operands; }
  const std::string &key() const { return Key; }
  const std::string &tag() const { return Tag; }

  /// True if this atom (transitively) mentions \p S.
  bool references(const mf::Symbol *S) const;

  std::string str() const;

private:
  Atom() = default;

  AtomKind Kind = AtomKind::Var;
  NLOp Op = NLOp::Opaque;
  const mf::Symbol *Sym = nullptr;
  std::vector<SymExpr> Operands; ///< Subscripts (ArrayElem) or operands.
  std::string Tag;
  std::string Key;
};

using AtomRef = std::shared_ptr<const Atom>;

/// A symbolic integer expression in canonical linear form:
///   Constant + sum(Coeff_k * Atom_k).
///
/// SymExpr has value semantics; all operations return new expressions.
class SymExpr {
public:
  /// The zero expression.
  SymExpr() = default;

  static SymExpr constant(int64_t C);
  static SymExpr var(const mf::Symbol *S);
  static SymExpr arrayElem(const mf::Symbol *Array,
                           std::vector<SymExpr> Subscripts);
  static SymExpr atom(AtomRef A);
  /// A fresh unanalyzable value.
  static SymExpr opaque(std::string Tag);

  /// Lowers an MF AST expression into symbolic form. Real-typed and logical
  /// subtrees become opaque atoms (they never appear in subscripts we care
  /// about); integer arithmetic is folded into the linear form.
  static SymExpr fromAst(const mf::Expr *E);

  bool isZero() const { return Terms.empty() && Constant == 0; }
  bool isConstant() const { return Terms.empty(); }
  int64_t constValue() const { return Constant; }

  /// The constant part of the linear form.
  int64_t constantTerm() const { return Constant; }

  /// The atom terms of the linear form, keyed by canonical atom key.
  const std::map<std::string, std::pair<AtomRef, int64_t>> &terms() const {
    return Terms;
  }

  /// Coefficient of the scalar-variable atom for \p S (0 if absent).
  int64_t coeffOfVar(const mf::Symbol *S) const;

  /// True when this expression is a single atom with coefficient 1 and no
  /// constant; returns the atom, else null.
  AtomRef asSingleAtom() const;

  /// True if any atom (transitively) mentions \p S.
  bool references(const mf::Symbol *S) const;

  /// \name Arithmetic
  /// @{
  SymExpr operator+(const SymExpr &RHS) const;
  SymExpr operator-(const SymExpr &RHS) const;
  SymExpr operator-() const;
  SymExpr operator*(int64_t C) const;
  SymExpr operator+(int64_t C) const { return *this + constant(C); }
  SymExpr operator-(int64_t C) const { return *this - constant(C); }

  static SymExpr mul(const SymExpr &A, const SymExpr &B);
  static SymExpr div(const SymExpr &A, const SymExpr &B);
  static SymExpr mod(const SymExpr &A, const SymExpr &B);
  static SymExpr min(const SymExpr &A, const SymExpr &B);
  static SymExpr max(const SymExpr &A, const SymExpr &B);
  /// @}

  /// Replaces every occurrence of scalar variable \p S (including inside
  /// array subscripts and nonlinear atoms) with \p Repl.
  SymExpr substituteVar(const mf::Symbol *S, const SymExpr &Repl) const;

  /// Structural equality (canonical forms compared termwise).
  bool equals(const SymExpr &RHS) const { return (*this - RHS).isZero(); }

  /// A canonical text key; equal expressions have equal keys.
  std::string key() const;

  /// Human-readable rendering.
  std::string str() const;

private:
  void addTerm(const AtomRef &A, int64_t Coeff);

  int64_t Constant = 0;
  std::map<std::string, std::pair<AtomRef, int64_t>> Terms;
};

} // namespace sym
} // namespace iaa

#endif // IAA_SYMBOLIC_SYMEXPR_H
