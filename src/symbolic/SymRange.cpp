//===- symbolic/SymRange.cpp - Symbolic ranges and the prover ------------===//
//
// Part of the IAA project, an open-source reproduction of
// "Compiler Analysis of Irregular Memory Accesses" (Lin & Padua, PLDI 2000).
//
//===----------------------------------------------------------------------===//

#include "symbolic/SymRange.h"

#include <algorithm>
#include <cassert>

using namespace iaa;
using namespace iaa::sym;

std::string SymBound::str() const {
  switch (K) {
  case Kind::NegInf:
    return "-inf";
  case Kind::PosInf:
    return "+inf";
  case Kind::Finite:
    return E.str();
  }
  return "?";
}

std::string SymRange::str() const {
  return "[" + Lo.str() + " : " + Hi.str() + "]";
}

std::string ConstRange::str() const {
  std::string S = "[";
  S += Lo ? std::to_string(*Lo) : "-inf";
  S += " : ";
  S += Hi ? std::to_string(*Hi) : "+inf";
  return S + "]";
}

const SymRange *RangeEnv::lookupAtom(const std::string &Key) const {
  auto It = AtomRanges.find(Key);
  return It == AtomRanges.end() ? nullptr : &It->second;
}

const SymRange *RangeEnv::lookupArrayValues(const mf::Symbol *A) const {
  auto It = ArrayValueRanges.find(A->id());
  return It == ArrayValueRanges.end() ? nullptr : &It->second;
}

//===----------------------------------------------------------------------===//
// Interval evaluation
//===----------------------------------------------------------------------===//

namespace {

/// Saturating helpers; nullopt = unbounded.
using OptInt = std::optional<int64_t>;

OptInt addOpt(OptInt A, OptInt B) {
  if (!A || !B)
    return std::nullopt;
  return *A + *B;
}

OptInt mulOpt(OptInt A, int64_t C) {
  if (!A)
    return std::nullopt;
  return *A * C;
}

ConstRange scaleRange(const ConstRange &R, int64_t C) {
  if (C == 0)
    return ConstRange::point(0);
  if (C > 0)
    return {mulOpt(R.Lo, C), mulOpt(R.Hi, C)};
  return {mulOpt(R.Hi, C), mulOpt(R.Lo, C)};
}

ConstRange addRange(const ConstRange &A, const ConstRange &B) {
  return {addOpt(A.Lo, B.Lo), addOpt(A.Hi, B.Hi)};
}

ConstRange mulRanges(const ConstRange &A, const ConstRange &B) {
  // Unbounded on any side makes products unbounded unless the other factor
  // is the constant zero; keep it simple and conservative.
  if (!A.Lo || !A.Hi || !B.Lo || !B.Hi)
    return ConstRange::unbounded();
  int64_t Products[4] = {*A.Lo * *B.Lo, *A.Lo * *B.Hi, *A.Hi * *B.Lo,
                         *A.Hi * *B.Hi};
  return {*std::min_element(Products, Products + 4),
          *std::max_element(Products, Products + 4)};
}

/// Floor division that rounds toward negative infinity.
int64_t floorDiv(int64_t A, int64_t B) {
  int64_t Q = A / B;
  if ((A % B != 0) && ((A < 0) != (B < 0)))
    --Q;
  return Q;
}

} // namespace

static ConstRange rangeOfBound(const SymBound &B, bool IsLower,
                               const RangeEnv &Env, unsigned Depth) {
  if (!B.isFinite())
    return ConstRange::unbounded();
  ConstRange R = evalConstRange(B.E, Env, Depth);
  // A lower bound only contributes its own lower bound (the value is >= E,
  // and E >= R.Lo); symmetrically for upper bounds.
  return IsLower ? ConstRange{R.Lo, std::nullopt}
                 : ConstRange{std::nullopt, R.Hi};
}

static ConstRange rangeOfSymRange(const SymRange &R, const RangeEnv &Env,
                                  unsigned Depth) {
  ConstRange LoPart = rangeOfBound(R.Lo, /*IsLower=*/true, Env, Depth);
  ConstRange HiPart = rangeOfBound(R.Hi, /*IsLower=*/false, Env, Depth);
  return {LoPart.Lo, HiPart.Hi};
}

static ConstRange rangeOfAtom(const AtomRef &A, const RangeEnv &Env,
                              unsigned Depth) {
  if (Depth == 0)
    return ConstRange::unbounded();

  if (const SymRange *R = Env.lookupAtom(A->key()))
    return rangeOfSymRange(*R, Env, Depth - 1);

  if (A->kind() == AtomKind::ArrayElem)
    if (const SymRange *R = Env.lookupArrayValues(A->symbol()))
      return rangeOfSymRange(*R, Env, Depth - 1);

  if (A->kind() != AtomKind::NonLinear)
    return ConstRange::unbounded();

  switch (A->op()) {
  case NLOp::Mul: {
    ConstRange R = ConstRange::point(1);
    for (const SymExpr &Operand : A->operands())
      R = mulRanges(R, evalConstRange(Operand, Env, Depth - 1));
    return R;
  }
  case NLOp::Div: {
    ConstRange Num = evalConstRange(A->operands()[0], Env, Depth - 1);
    ConstRange Den = evalConstRange(A->operands()[1], Env, Depth - 1);
    // Only handle a strictly positive denominator; anything else stays
    // unbounded (division through zero has no useful interval).
    if (!Den.Lo || *Den.Lo < 1)
      return ConstRange::unbounded();
    // MF division truncates toward zero, so for d > 0:
    //   floor(v/d) <= trunc(v/d) <= max(trunc over d), and for v < 0 the
    //   quotient *increases* toward 0 as d grows.
    OptInt Lo, Hi;
    if (Num.Lo)
      Lo = *Num.Lo >= 0 ? floorDiv(*Num.Lo, Den.Hi.value_or(*Den.Lo))
                        : floorDiv(*Num.Lo, *Den.Lo);
    if (Num.Hi) {
      if (*Num.Hi >= 0)
        Hi = floorDiv(*Num.Hi, *Den.Lo); // trunc == floor for v >= 0.
      else if (Den.Hi)
        Hi = *Num.Hi / *Den.Hi; // Truncating; largest d maximizes it.
      else
        Hi = 0; // v < 0, unbounded d: the quotient approaches 0 from below.
    }
    return {Lo, Hi};
  }
  case NLOp::Mod: {
    ConstRange Den = evalConstRange(A->operands()[1], Env, Depth - 1);
    if (!Den.Hi || *Den.Hi < 1 || !Den.Lo || *Den.Lo < 1)
      return ConstRange::unbounded();
    ConstRange Num = evalConstRange(A->operands()[0], Env, Depth - 1);
    // Fortran MOD has the sign of the numerator.
    if (Num.Lo && *Num.Lo >= 0)
      return {int64_t(0), *Den.Hi - 1};
    return {-(*Den.Hi - 1), *Den.Hi - 1};
  }
  case NLOp::Min: {
    ConstRange R0 = evalConstRange(A->operands()[0], Env, Depth - 1);
    ConstRange R1 = evalConstRange(A->operands()[1], Env, Depth - 1);
    OptInt Lo = (R0.Lo && R1.Lo) ? OptInt(std::min(*R0.Lo, *R1.Lo))
                                 : std::nullopt;
    OptInt Hi;
    if (R0.Hi && R1.Hi)
      Hi = std::min(*R0.Hi, *R1.Hi);
    else if (R0.Hi)
      Hi = R0.Hi;
    else
      Hi = R1.Hi;
    return {Lo, Hi};
  }
  case NLOp::Max: {
    ConstRange R0 = evalConstRange(A->operands()[0], Env, Depth - 1);
    ConstRange R1 = evalConstRange(A->operands()[1], Env, Depth - 1);
    OptInt Hi = (R0.Hi && R1.Hi) ? OptInt(std::max(*R0.Hi, *R1.Hi))
                                 : std::nullopt;
    OptInt Lo;
    if (R0.Lo && R1.Lo)
      Lo = std::max(*R0.Lo, *R1.Lo);
    else if (R0.Lo)
      Lo = R0.Lo;
    else
      Lo = R1.Lo;
    return {Lo, Hi};
  }
  case NLOp::Opaque:
    return ConstRange::unbounded();
  }
  return ConstRange::unbounded();
}

ConstRange iaa::sym::evalConstRange(const SymExpr &E, const RangeEnv &Env,
                                    unsigned Depth) {
  ConstRange R = ConstRange::point(E.constantTerm());
  for (const auto &[Key, Term] : E.terms()) {
    const auto &[A, Coeff] = Term;
    R = addRange(R, scaleRange(rangeOfAtom(A, Env, Depth), Coeff));
    if (!R.Lo && !R.Hi)
      return R;
  }
  return R;
}

//===----------------------------------------------------------------------===//
// Proofs
//===----------------------------------------------------------------------===//

/// Symbolic bound substitution: replaces every atom that has a finite bound
/// of the right polarity in \p Env with that bound *expression*. Unlike pure
/// interval evaluation this preserves correlations — `n + 1 - i` with
/// i <= n substitutes to `n + 1 - n = 1`. The result is a valid lower
/// (upper) bound of \p E when \p Lower is true (false).
static SymExpr boundSubstitute(const SymExpr &E, const RangeEnv &Env,
                               bool Lower, unsigned Depth) {
  if (Depth == 0)
    return E;
  SymExpr Out = SymExpr::constant(E.constantTerm());
  bool Changed = false;
  for (const auto &[Key, Term] : E.terms()) {
    const auto &[A, Coeff] = Term;
    const SymRange *R = Env.lookupAtom(A->key());
    if (!R && A->kind() == AtomKind::ArrayElem)
      R = Env.lookupArrayValues(A->symbol());
    bool WantLower = (Coeff > 0) == Lower;
    if (R) {
      const SymBound &B = WantLower ? R->Lo : R->Hi;
      if (B.isFinite()) {
        Out = Out + B.E * Coeff;
        Changed = true;
        continue;
      }
    }
    Out = Out + SymExpr::atom(A) * Coeff;
  }
  if (Changed)
    return boundSubstitute(Out, Env, Lower, Depth - 1);
  return Out;
}

/// A sound constant lower bound of \p E, if one can be established.
static std::optional<int64_t> constLowerBound(const SymExpr &E,
                                              const RangeEnv &Env) {
  SymExpr L = boundSubstitute(E, Env, /*Lower=*/true, 4);
  if (L.isConstant())
    return L.constValue();
  // The substituted form may still contain bounded nonlinear atoms (mod,
  // min, ...): fall back to interval evaluation on both forms.
  ConstRange R = evalConstRange(L, Env);
  if (R.Lo)
    return R.Lo;
  R = evalConstRange(E, Env);
  return R.Lo;
}

bool iaa::sym::provablyNonNegative(const SymExpr &E, const RangeEnv &Env) {
  std::optional<int64_t> Lo = constLowerBound(E, Env);
  return Lo && *Lo >= 0;
}

bool iaa::sym::provablyPositive(const SymExpr &E, const RangeEnv &Env) {
  std::optional<int64_t> Lo = constLowerBound(E, Env);
  return Lo && *Lo >= 1;
}

bool iaa::sym::provablyLE(const SymExpr &A, const SymExpr &B,
                          const RangeEnv &Env) {
  return provablyNonNegative(B - A, Env);
}

bool iaa::sym::provablyLT(const SymExpr &A, const SymExpr &B,
                          const RangeEnv &Env) {
  return provablyPositive(B - A, Env);
}

//===----------------------------------------------------------------------===//
// Sweeps
//===----------------------------------------------------------------------===//

SymRange iaa::sym::rangeOverVar(const SymExpr &E, const mf::Symbol *I,
                                const SymExpr &Lo, const SymExpr &Hi) {
  int64_t Coeff = E.coeffOfVar(I);
  SymExpr Rest = E - SymExpr::var(I) * Coeff;
  if (Rest.references(I))
    return SymRange::all(); // I occurs nonlinearly or inside another atom.
  if (Coeff == 0)
    return SymRange::point(E);
  if (Coeff > 0)
    return SymRange::of(Rest + Lo * Coeff, Rest + Hi * Coeff);
  return SymRange::of(Rest + Hi * Coeff, Rest + Lo * Coeff);
}

const mf::Symbol *iaa::sym::placeholderSymbol() {
  static const mf::Symbol Placeholder("$pos", mf::ScalarKind::Int, {},
                                      0x7fffffff);
  return &Placeholder;
}
